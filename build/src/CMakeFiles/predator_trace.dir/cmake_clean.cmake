file(REMOVE_RECURSE
  "CMakeFiles/predator_trace.dir/trace/trace_io.cpp.o"
  "CMakeFiles/predator_trace.dir/trace/trace_io.cpp.o.d"
  "libpredator_trace.a"
  "libpredator_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predator_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
