// Phoenix word_count (Table 1 row word_count-pthread.c:136): each thread
// tallies words from its private text slice into a per-thread slot of a
// shared accumulator array. Like reverse_index, the false sharing is real
// (it crosses the invalidation threshold) but low-impact (paper: 0.14%).
#include "common/check.hpp"
#include "common/prng.hpp"
#include "workloads/workload.hpp"

namespace pred::wl {
namespace {

struct WordTally {  // 16 bytes: 4 per line
  std::uint64_t words;
  std::uint64_t unique_hash;
};

class WordCount final : public WorkloadImpl<WordCount> {
 public:
  const Traits& traits() const override {
    static const Traits t{
        .name = "word_count",
        .suite = "phoenix",
        .sites = {{.where = "word_count-pthread.c:136",
                   .needs_prediction = false,
                   .newly_discovered = false,
                   .paper_improvement_pct = 0.14}},
    };
    return t;
  }

  template <class H>
  static Result kernel(H& h, const Params& p) {
    const std::uint32_t n = p.threads;
    const std::uint64_t chars_per_thread = 60000 * p.scale;
    const std::size_t stride = p.site_fixed(0) ? 64 : sizeof(WordTally);

    char* tallies = static_cast<char*>(
        h.alloc(stride * n, {"word_count-pthread.c:136"}));
    PRED_CHECK(tallies != nullptr);
    for (std::uint32_t t = 0; t < n; ++t) {
      auto* w = reinterpret_cast<WordTally*>(tallies + stride * t);
      w->words = w->unique_hash = 0;
    }

    std::vector<char*> text(n);
    Xorshift64 rng(p.seed);
    for (std::uint32_t t = 0; t < n; ++t) {
      text[t] = static_cast<char*>(
          h.alloc(chars_per_thread, {"word_count-pthread.c:text"}));
      PRED_CHECK(text[t] != nullptr);
      for (std::uint64_t i = 0; i < chars_per_thread; ++i) {
        // Lowercase letters with ~1/6 spaces.
        const std::uint64_t v = rng.next_below(32);
        text[t][i] = v < 5 ? ' ' : static_cast<char>('a' + (v % 26));
      }
    }

    h.parallel(n, [&](std::uint32_t t, auto& sink) {
      auto* w = reinterpret_cast<WordTally*>(tallies + stride * t);
      std::uint64_t hash = 0;
      bool in_word = false;
      for (std::uint64_t i = 0; i < chars_per_thread; ++i) {
        sink.think(60);  // tokenizing + hashing per character
        sink.read(&text[t][i], 1);
        const char ch = text[t][i];
        if (ch == ' ') {
          if (in_word) {
            // Only "interesting" words touch the shared tally (the rest
            // stay in this thread's private hash table, as in Phoenix).
            if ((hash & 0x7f) == 0) {
              sink.read(&w->words, 8);
              w->words += 1;
              sink.write(&w->words, 8);
              sink.read(&w->unique_hash, 8);
              w->unique_hash ^= hash;
              sink.write(&w->unique_hash, 8);
            }
            hash = 0;
          }
          in_word = false;
        } else {
          hash = hash * 31 + static_cast<std::uint64_t>(ch);
          in_word = true;
        }
      }
    });

    Result r;
    for (std::uint32_t t = 0; t < n; ++t) {
      auto* w = reinterpret_cast<WordTally*>(tallies + stride * t);
      r.checksum += w->words * 7 + w->unique_hash;
    }
    return r;
  }
};

}  // namespace

std::unique_ptr<Workload> make_word_count() {
  return std::make_unique<WordCount>();
}

}  // namespace pred::wl
