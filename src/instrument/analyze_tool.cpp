#include "instrument/analyze_tool.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "instrument/analysis/callgraph.hpp"
#include "instrument/analysis/cfg.hpp"
#include "instrument/analysis/constants.hpp"
#include "instrument/analysis/dominators.hpp"
#include "instrument/analysis/loops.hpp"
#include "instrument/analysis/predict.hpp"
#include "instrument/analysis/summaries.hpp"
#include "instrument/ir_parser.hpp"
#include "instrument/pass.hpp"
#include "report_io/json_writer.hpp"

namespace pred::ir {
namespace {

void append_fmt(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  *out += buf;
}

/// Everything the report needs, computed once and shared by the text and
/// JSON emitters so the two can never drift.
struct AnalyzeData {
  const Module* module = nullptr;
  PassStats s0;  ///< baseline: selective per-block dedup only
  PassStats s1;  ///< full pipeline (batching + merging + interproc + sync)
  SummaryTable summaries;
  StaticFsReport prediction;
  std::vector<RoleSpec> roles;
};

void emit_text(const AnalyzeOptions& opt, const AnalyzeData& d,
               std::string* out) {
  const Module& module = *d.module;
  append_fmt(out, "%s: %zu function(s)\n", opt.path.c_str(),
             module.functions.size());
  for (const Function& fn : module.functions) {
    const Cfg cfg(fn);
    const DomTree dom(cfg);
    const ConstantFacts consts = analyze_constants(fn, cfg);
    const auto loops = find_natural_loops(cfg, dom);
    std::size_t max_depth = 0;
    for (const auto& l : loops) {
      max_depth = std::max<std::size_t>(max_depth, l.depth);
    }
    append_fmt(out,
               "\nfunc %s: %zu blocks (%zu reachable), dom tree height %zu, "
               "%zu loop(s) (max depth %zu), %zu constant fact(s)\n",
               fn.name.c_str(), cfg.num_blocks(), cfg.num_reachable(),
               static_cast<std::size_t>(dom.tree_height()), loops.size(),
               max_depth, static_cast<std::size_t>(consts.facts));
    for (const auto& l : loops) {
      append_fmt(out,
                 "  loop @ bb%u: %zu block(s), depth %u, %zu latch(es), %s\n",
                 l.header, l.blocks.size(), l.depth, l.latches.size(),
                 l.preheader == NaturalLoop::kNone
                     ? "no preheader"
                     : ("preheader bb" + std::to_string(l.preheader)).c_str());
    }
  }

  const CallGraph cg(module);
  std::size_t recursive = 0;
  for (std::uint32_t fi = 0; fi < cg.num_functions(); ++fi) {
    if (cg.in_cycle(fi)) ++recursive;
  }
  append_fmt(out,
             "\ncall graph: %llu call site(s), %zu SCC(s), %zu recursive "
             "function(s)\n",
             static_cast<unsigned long long>(cg.num_call_sites()),
             cg.num_sccs(), recursive);
  for (std::uint32_t fi = 0; fi < cg.num_functions(); ++fi) {
    if (cg.callees(fi).empty()) continue;
    append_fmt(out, "  %s ->", module.functions[fi].name.c_str());
    for (const std::uint32_t c : cg.callees(fi)) {
      append_fmt(out, " %s", module.functions[c].name.c_str());
    }
    append_fmt(out, "%s\n", cg.in_cycle(fi) ? "  [cycle]" : "");
  }

  append_fmt(out, "\ncallee access summaries:\n");
  for (std::size_t fi = 0; fi < module.functions.size(); ++fi) {
    const AccessSummary& s = d.summaries.per_function[fi];
    if (s.exact) {
      append_fmt(out,
                 "  %-16s exact: %zu entr%s, %llu access(es)/invocation%s\n",
                 module.functions[fi].name.c_str(), s.entries.size(),
                 s.entries.size() == 1 ? "y" : "ies",
                 static_cast<unsigned long long>(s.total_accesses()),
                 s.syncs ? ", syncs" : "");
    } else {
      append_fmt(out, "  %-16s unsummarizable (T)\n",
                 module.functions[fi].name.c_str());
    }
  }

  append_fmt(out, "\ninstrumentation ledger (baseline -> pruned):\n");
  append_fmt(out, "  candidate accesses   %8llu\n",
             static_cast<unsigned long long>(d.s0.candidate_accesses));
  append_fmt(out, "  intrinsic sites      %8llu\n",
             static_cast<unsigned long long>(d.s0.intrinsic_accesses));
  append_fmt(out, "  instrumented         %8llu -> %llu\n",
             static_cast<unsigned long long>(d.s0.instrumented_accesses),
             static_cast<unsigned long long>(d.s1.instrumented_accesses));
  append_fmt(out, "  per-block duplicates %8llu\n",
             static_cast<unsigned long long>(d.s0.skipped_duplicates));
  append_fmt(out, "  loop batched         %8llu (reports inserted %llu)\n",
             static_cast<unsigned long long>(d.s1.loop_batched),
             static_cast<unsigned long long>(d.s1.reports_inserted));
  append_fmt(out, "  chain merged         %8llu\n",
             static_cast<unsigned long long>(d.s1.dominance_merged));
  append_fmt(out, "  calls batched        %8llu (bare clones %llu)\n",
             static_cast<unsigned long long>(d.s1.call_batched),
             static_cast<unsigned long long>(d.s1.bare_clones));
  append_fmt(out, "  sync scoped          %8llu\n",
             static_cast<unsigned long long>(d.s1.sync_scoped_skipped));
  if (d.s0.instrumented_accesses > 0) {
    append_fmt(out, "  static site reduction %.1f%%\n",
               100.0 *
                   static_cast<double>(d.s0.instrumented_accesses -
                                       d.s1.instrumented_accesses) /
                   static_cast<double>(d.s0.instrumented_accesses));
  }

  if (opt.predict) {
    // Appended verbatim: the report can exceed any fixed format buffer.
    out->push_back('\n');
    out->append(format_static_report(d.prediction));
  }
}

void emit_json(const AnalyzeOptions& opt, const AnalyzeData& d,
               std::string* out) {
  const Module& module = *d.module;
  JsonWriter w;
  w.begin_object();
  w.field("file", opt.path);

  w.key("functions").begin_array();
  for (std::size_t fi = 0; fi < module.functions.size(); ++fi) {
    const Function& fn = module.functions[fi];
    const Cfg cfg(fn);
    const DomTree dom(cfg);
    const ConstantFacts consts = analyze_constants(fn, cfg);
    const auto loops = find_natural_loops(cfg, dom);
    w.begin_object();
    w.field("name", fn.name);
    w.field("blocks", static_cast<std::uint64_t>(cfg.num_blocks()));
    w.field("reachable_blocks",
            static_cast<std::uint64_t>(cfg.num_reachable()));
    w.field("dom_tree_height", static_cast<std::uint64_t>(dom.tree_height()));
    w.field("constant_facts", static_cast<std::uint64_t>(consts.facts));
    w.key("loops").begin_array();
    for (const auto& l : loops) {
      w.begin_object();
      w.field("header", static_cast<std::uint64_t>(l.header));
      w.field("blocks", static_cast<std::uint64_t>(l.blocks.size()));
      w.field("depth", static_cast<std::uint64_t>(l.depth));
      w.field("latches", static_cast<std::uint64_t>(l.latches.size()));
      if (l.preheader == NaturalLoop::kNone) {
        w.key("preheader").null_value();
      } else {
        w.field("preheader", static_cast<std::uint64_t>(l.preheader));
      }
      w.end_object();
    }
    w.end_array();
    const AccessSummary& s = d.summaries.per_function[fi];
    w.key("summary").begin_object();
    w.field("exact", s.exact);
    w.field("syncs", s.syncs);
    if (s.exact) {
      w.field("accesses_per_invocation", s.total_accesses());
      w.key("entries").begin_array();
      for (const AccessSummary::Entry& e : s.entries) {
        w.begin_object();
        w.field("arg", static_cast<std::uint64_t>(e.arg));
        w.field("offset", static_cast<std::int64_t>(e.offset));
        w.field("width", static_cast<std::uint64_t>(e.width));
        w.field("write", e.is_write);
        w.field("count", e.count);
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();

  const CallGraph cg(module);
  std::uint64_t recursive = 0;
  for (std::uint32_t fi = 0; fi < cg.num_functions(); ++fi) {
    if (cg.in_cycle(fi)) ++recursive;
  }
  w.key("call_graph").begin_object();
  w.field("call_sites", cg.num_call_sites());
  w.field("sccs", static_cast<std::uint64_t>(cg.num_sccs()));
  w.field("recursive_functions", recursive);
  w.key("edges").begin_array();
  for (std::uint32_t fi = 0; fi < cg.num_functions(); ++fi) {
    if (cg.callees(fi).empty()) continue;
    w.begin_object();
    w.field("caller", module.functions[fi].name);
    w.key("callees").begin_array();
    for (const std::uint32_t c : cg.callees(fi)) {
      w.value(module.functions[c].name);
    }
    w.end_array();
    w.field("cycle", static_cast<bool>(cg.in_cycle(fi)));
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("ledger").begin_object();
  w.field("candidate_accesses", d.s0.candidate_accesses);
  w.field("intrinsic_sites", d.s0.intrinsic_accesses);
  w.field("instrumented_baseline", d.s0.instrumented_accesses);
  w.field("instrumented_pruned", d.s1.instrumented_accesses);
  w.field("per_block_duplicates", d.s0.skipped_duplicates);
  w.field("loop_batched", d.s1.loop_batched);
  w.field("reports_inserted", d.s1.reports_inserted);
  w.field("chain_merged", d.s1.dominance_merged);
  w.field("calls_batched", d.s1.call_batched);
  w.field("bare_clones", d.s1.bare_clones);
  w.field("sync_scoped", d.s1.sync_scoped_skipped);
  if (d.s0.instrumented_accesses > 0) {
    w.field("reduction_pct",
            100.0 *
                static_cast<double>(d.s0.instrumented_accesses -
                                    d.s1.instrumented_accesses) /
                static_cast<double>(d.s0.instrumented_accesses));
  }
  w.end_object();

  if (opt.predict) {
    const StaticFsReport& r = d.prediction;
    w.key("predict").begin_object();
    w.field("line_size", static_cast<std::uint64_t>(opt.line_size));
    w.field("opaque_sites", r.opaque_sites);
    w.key("roles").begin_array();
    for (const RoleSpec& spec : d.roles) {
      w.begin_object();
      w.field("role", static_cast<std::uint64_t>(spec.role));
      w.field("function", spec.function);
      w.field("region", static_cast<std::uint64_t>(spec.region));
      w.end_object();
    }
    w.end_array();
    w.key("footprints").begin_array();
    for (const RoleFootprint& fp : r.footprints) {
      w.begin_object();
      w.field("role", static_cast<std::uint64_t>(fp.role));
      w.field("function", fp.function);
      w.field("region", static_cast<std::uint64_t>(fp.region));
      w.field("intervals", static_cast<std::uint64_t>(fp.intervals.size()));
      w.field("weight", fp.resolved_weight);
      w.field("opaque", fp.opaque_sites);
      w.field("confined", fp.confined_skipped);
      w.field("segments", fp.segments);
      w.end_object();
    }
    w.end_array();
    w.key("regions").begin_array();
    for (std::size_t g = 0; g < r.region_extent.size(); ++g) {
      w.begin_object();
      w.field("region", static_cast<std::uint64_t>(g));
      w.field("extent", r.region_extent[g]);
      w.field("slot_stride", r.region_slot_stride[g]);
      w.end_object();
    }
    w.end_array();
    w.key("lines").begin_array();
    for (const PredictedLine& l : r.lines) {
      w.begin_object();
      w.field("region", static_cast<std::uint64_t>(l.region));
      w.field("line_index", static_cast<std::int64_t>(l.line_index));
      w.field("line_size", static_cast<std::uint64_t>(l.line_size));
      w.field("score", l.score);
      w.field("ww_weight", l.ww_weight);
      w.field("wr_weight", l.wr_weight);
      w.field("false_sharing", l.false_sharing);
      w.field("true_sharing", l.true_sharing);
      w.field("latent", l.latent);
      w.key("spans").begin_array();
      for (const RoleSpan& s : l.spans) {
        w.begin_object();
        w.field("role", static_cast<std::uint64_t>(s.role));
        w.field("lo", static_cast<std::uint64_t>(s.lo));
        w.field("hi", static_cast<std::uint64_t>(s.hi));
        w.field("writes", s.write_weight);
        w.field("reads", s.read_weight);
        w.field("handed_off_only", s.handed_off_only);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  w.end_object();
  *out += w.str();
  *out += '\n';
}

}  // namespace

bool parse_analyze_args(const std::vector<std::string>& args,
                        AnalyzeOptions* opt, std::string* err) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--json") {
      opt->json = true;
    } else if (a == "--predict") {
      opt->predict = true;
    } else if (a == "--line-size") {
      if (i + 1 >= args.size()) {
        *err = "analyze: --line-size needs a value";
        return false;
      }
      char* end = nullptr;
      const unsigned long v = std::strtoul(args[++i].c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || v == 0 || (v & (v - 1)) != 0) {
        *err = "analyze: --line-size needs a power-of-two byte count";
        return false;
      }
      opt->line_size = static_cast<std::size_t>(v);
    } else if (!a.empty() && a[0] == '-') {
      *err = "analyze: unknown argument '" + a + "'";
      return false;
    } else if (opt->path.empty()) {
      opt->path = a;
    } else {
      *err = "analyze: unexpected extra argument '" + a + "'";
      return false;
    }
  }
  if (opt->path.empty()) {
    *err = "analyze: missing <module.pir> path";
    return false;
  }
  return true;
}

int run_analyze(const AnalyzeOptions& opt, std::string* out,
                std::string* err) {
  std::FILE* f = std::fopen(opt.path.c_str(), "rb");
  if (f == nullptr) {
    *err += "cannot open " + opt.path + "\n";
    return 1;
  }
  std::string text;
  char buf[4096];
  for (std::size_t n = 0; (n = std::fread(buf, 1, sizeof buf, f)) > 0;) {
    text.append(buf, n);
  }
  std::fclose(f);

  const ParseResult parsed = parse_module(text);
  if (!parsed.ok) {
    *err += opt.path + ": " + parsed.error + "\n";
    return 1;
  }

  AnalyzeData d;
  d.module = &parsed.module;
  Module base = parsed.module;
  Module pruned = parsed.module;
  d.s0 = run_instrumentation_pass(base, {});
  PassOptions all;
  all.loop_batching = true;
  all.dominance_elim = true;
  all.interprocedural = true;
  all.sync_scoped = true;
  d.s1 = run_instrumentation_pass(pruned, all, &d.summaries);
  if (opt.predict) {
    d.roles = default_roles(parsed.module);
    PredictOptions popt;
    popt.line_size = opt.line_size;
    popt.extra_line_sizes = {opt.line_size * 2};
    d.prediction = predict_static_fs(parsed.module, d.roles, popt);
  }

  if (opt.json) {
    emit_json(opt, d, out);
  } else {
    emit_text(opt, d, out);
  }

  if (!d.s0.reconciles() || !d.s1.reconciles()) {
    *err += "pass statistics do not reconcile\n";
    return 1;
  }
  return 0;
}

}  // namespace pred::ir
