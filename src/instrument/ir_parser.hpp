// Textual IR parser (assembler): the inverse of ir.hpp's to_string()
// disassembler. Lets IR programs be written, versioned, and shipped as
// plain text, then instrumented and executed — and enables round-trip
// property tests (parse(print(m)) == m).
//
// Grammar (one construct per line; '#' starts a comment):
//
//   func NAME(N args, M regs):
//   bbK:
//     rD = const IMM
//     rD = rA
//     rD = rA (+|-|*|/|%|<|==) rB
//     rD = load.SZ [rA (+ OFF)?] (+Nr)? (+Nw)?
//     store.SZ [rA (+ OFF)?], rB (+Nr)? (+Nw)?
//     rD = call @F(rA .. N args)
//     memset [rA], VAL, len rB
//     memcpy [rA] <- [rB], len rC
//     report.SZ [rA (+ OFF)?] x rB, (read|write)
//     br bbK
//     br rA ? bbK : bbJ
//     ret rA
//
// A leading '*' before any instruction marks it instrumented (as the
// disassembler prints). The optional '+Nr'/'+Nw' suffixes on loads and
// stores are the merging pass's compensation counts; 'report' is the bulk
// delivery instruction planted by loop batching.
#pragma once

#include <string>

#include "instrument/ir.hpp"

namespace pred::ir {

struct ParseResult {
  Module module;
  bool ok = false;
  std::string error;  ///< "line N, col C: message" on failure
};

ParseResult parse_module(const std::string& text);

}  // namespace pred::ir
