// The `predator-cli analyze` subcommand as a library: argument parsing and
// report generation live here (not in tools/) so tests can drive the exact
// code path the CLI ships — including flag rejection and the --json /
// --predict output — without spawning a process.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pred::ir {

struct AnalyzeOptions {
  std::string path;       ///< textual IR module to analyze
  bool json = false;      ///< machine-readable output (single JSON document)
  bool predict = false;   ///< run the static false-sharing predictor
  std::size_t line_size = 64;  ///< base geometry for --predict
};

/// Parses everything AFTER the `analyze` subcommand word. Unknown flags, a
/// missing path, a duplicate path, or a malformed --line-size fail with a
/// one-line diagnostic in *err (the caller prints usage). Accepted:
///   <module.pir> [--json] [--predict] [--line-size N]
bool parse_analyze_args(const std::vector<std::string>& args,
                        AnalyzeOptions* opt, std::string* err);

/// Runs the analysis and appends the report to *out (human text, or one
/// JSON document with --json); diagnostics go to *err. Returns the process
/// exit code (0 on success).
int run_analyze(const AnalyzeOptions& opt, std::string* out, std::string* err);

}  // namespace pred::ir
