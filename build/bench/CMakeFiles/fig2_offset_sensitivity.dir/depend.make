# Empty dependencies file for fig2_offset_sensitivity.
# This may be replaced when dependencies are built.
