# Empty dependencies file for ablation_history_depth.
# This may be replaced when dependencies are built.
