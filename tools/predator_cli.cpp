// predator-cli: command-line driver for the PREDATOR library.
//
// Runs any registered workload under the detector with configurable
// thresholds, prediction, sampling, placement, and fixes; prints the report
// as text or JSON (optionally with fix-advisor prescriptions); can persist
// and reuse trace files; and can act as a CI gate (nonzero exit when false
// sharing is found).
//
// The `monitor` subcommand instead runs the workload live (real threads)
// with the session's monitor attached and prints rolling snapshot telemetry
// while it executes, then the final report.
//
// The `analyze` subcommand parses a textual IR module and prints, per
// function, the static-analysis view (CFG, dominators, natural loops,
// constant facts) plus what the instrumentation pruning passes would do to
// it: baseline selective instrumentation vs. loop batching + chain merging.
//
//   predator-cli --list
//   predator-cli --workload histogram --threads 8 --advise
//   predator-cli --workload linear_regression --offset 24 --json
//   predator-cli --workload mysql --no-prediction --fail-on-findings
//   predator-cli --workload boost --save-trace /tmp/boost.trace
//   predator-cli monitor histogram --repeat 50 --interval-ms 250
//   predator-cli analyze examples/ir/hammer.pir
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "advice/fix_advisor.hpp"
#include "instrument/analysis/callgraph.hpp"
#include "instrument/analysis/cfg.hpp"
#include "instrument/analysis/constants.hpp"
#include "instrument/analysis/dominators.hpp"
#include "instrument/analysis/loops.hpp"
#include "instrument/analysis/summaries.hpp"
#include "instrument/ir_parser.hpp"
#include "instrument/pass.hpp"
#include "report_io/report_diff.hpp"
#include "report_io/report_json.hpp"
#include "trace/trace_io.hpp"
#include "workloads/workload.hpp"

using namespace pred;

namespace {

struct CliOptions {
  std::string workload;
  std::string save_trace;
  wl::Params params;
  SessionOptions session;
  bool list = false;
  bool json = false;
  bool advise_fixes = false;
  bool fail_on_findings = false;
  bool no_prediction = false;
  bool diff_fix = false;
  std::size_t replay_quantum = 1;
  // `monitor` subcommand state.
  bool monitor_mode = false;
  std::uint64_t monitor_interval_ms = 200;
  std::uint64_t monitor_repeat = 1;
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s --workload NAME [options]\n"
      "       %s monitor NAME [--interval-ms N] [--repeat N] [options]\n"
      "       %s analyze FILE.pir\n"
      "       %s --list\n\n"
      "workload selection:\n"
      "  --list                 list available workloads and exit\n"
      "  --workload NAME        workload to analyze (required otherwise)\n"
      "  --threads N            logical threads (default 8)\n"
      "  --scale N              work multiplier (default 1)\n"
      "  --offset BYTES         placement offset for offset-sensitive "
      "kernels\n"
      "  --fix MASK             bitmask of sites to fix (site i -> bit i)\n\n"
      "detector configuration:\n"
      "  --no-prediction        run as PREDATOR-NP (observed-only)\n"
      "  --sampling RATE        sampling rate in (0,1], default 0.01\n"
      "  --tracking-threshold N writes before detailed tracking "
      "(default 100)\n"
      "  --report-threshold N   invalidations before reporting "
      "(default 100)\n"
      "  --quantum N            replay interleaving quantum (default 1)\n\n"
      "output:\n"
      "  --json                 print the report as JSON\n"
      "  --advise               append fix-advisor prescriptions\n"
      "  --save-trace FILE      also save the captured trace\n"
      "  --fail-on-findings     exit 2 when false sharing is reported\n"
      "  --diff-fix             also run the fixed variant and print the\n"
      "                         before/after report diff\n\n"
      "monitor subcommand (live run with rolling telemetry):\n"
      "  --interval-ms N        snapshot print period (default 200)\n"
      "  --repeat N             run the workload N times (default 1) to\n"
      "                         lengthen the observable window\n\n"
      "analyze subcommand (static analysis of a textual IR module):\n"
      "  prints per-function CFG/dominator/loop/constant statistics and\n"
      "  the baseline vs. fully-pruned instrumentation ledger\n",
      argv0, argv0, argv0, argv0);
}

bool parse_u64(const char* s, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_args(int argc, char** argv, CliOptions* opt) {
  int first = 1;
  if (argc > 1 && std::strcmp(argv[1], "monitor") == 0) {
    opt->monitor_mode = true;
    first = 2;
  }
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    std::uint64_t v = 0;
    if (arg == "--list") {
      opt->list = true;
    } else if (arg == "--workload") {
      const char* s = next("--workload");
      if (!s) return false;
      opt->workload = s;
    } else if (arg == "--threads") {
      const char* s = next("--threads");
      if (!s || !parse_u64(s, &v) || v == 0 || v > 64) return false;
      opt->params.threads = static_cast<std::uint32_t>(v);
    } else if (arg == "--scale") {
      const char* s = next("--scale");
      if (!s || !parse_u64(s, &v) || v == 0) return false;
      opt->params.scale = v;
    } else if (arg == "--offset") {
      const char* s = next("--offset");
      if (!s || !parse_u64(s, &v) || v >= 128) return false;
      opt->params.offset = v;
    } else if (arg == "--fix") {
      const char* s = next("--fix");
      if (!s || !parse_u64(s, &v)) return false;
      opt->params.fix_mask = static_cast<std::uint32_t>(v);
    } else if (arg == "--no-prediction") {
      opt->no_prediction = true;
    } else if (arg == "--sampling") {
      const char* s = next("--sampling");
      if (!s) return false;
      const double rate = std::atof(s);
      if (rate <= 0.0 || rate > 1.0) return false;
      opt->session.runtime.set_sampling_rate(rate);
    } else if (arg == "--tracking-threshold") {
      const char* s = next("--tracking-threshold");
      if (!s || !parse_u64(s, &v) || v == 0) return false;
      opt->session.runtime.tracking_threshold = v;
      if (opt->session.runtime.prediction_threshold < v) {
        opt->session.runtime.prediction_threshold = v;
      }
    } else if (arg == "--report-threshold") {
      const char* s = next("--report-threshold");
      if (!s || !parse_u64(s, &v)) return false;
      opt->session.runtime.report_invalidation_threshold = v;
    } else if (arg == "--quantum") {
      const char* s = next("--quantum");
      if (!s || !parse_u64(s, &v) || v == 0) return false;
      opt->replay_quantum = v;
    } else if (arg == "--json") {
      opt->json = true;
    } else if (arg == "--advise") {
      opt->advise_fixes = true;
    } else if (arg == "--save-trace") {
      const char* s = next("--save-trace");
      if (!s) return false;
      opt->save_trace = s;
    } else if (arg == "--fail-on-findings") {
      opt->fail_on_findings = true;
    } else if (arg == "--diff-fix") {
      opt->diff_fix = true;
    } else if (arg == "--interval-ms") {
      const char* s = next("--interval-ms");
      if (!s || !parse_u64(s, &v) || v == 0) return false;
      opt->monitor_interval_ms = v;
    } else if (arg == "--repeat") {
      const char* s = next("--repeat");
      if (!s || !parse_u64(s, &v) || v == 0) return false;
      opt->monitor_repeat = v;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      std::exit(0);
    } else if (opt->monitor_mode && arg.rfind("--", 0) != 0 &&
               opt->workload.empty()) {
      opt->workload = arg;  // `monitor NAME` positional
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

int list_workloads() {
  std::printf("%-20s %-8s %s\n", "name", "suite", "known sites");
  for (const auto& w : wl::all_workloads()) {
    std::string sites;
    for (const auto& s : w->traits().sites) {
      if (!sites.empty()) sites += ", ";
      sites += s.where;
      if (s.needs_prediction) sites += " [latent]";
    }
    std::printf("%-20s %-8s %s\n", w->traits().name.c_str(),
                w->traits().suite.c_str(),
                sites.empty() ? "(clean)" : sites.c_str());
  }
  return 0;
}

// `monitor` subcommand: run the workload live (real threads) with the
// session monitor attached, print a rolling snapshot every interval, then
// the final report. Demonstrates that snapshots are served while mutators
// run — the printing happens from the main thread with no pauses.
int run_monitor(const CliOptions& opt, const wl::Workload* w) {
  Session session(opt.session);
  session.monitor().start();

  std::atomic<bool> done{false};
  std::thread worker([&] {
    for (std::uint64_t r = 0; r < opt.monitor_repeat; ++r) {
      w->run_live(session, opt.params);
    }
    done.store(true, std::memory_order_release);
  });

  const auto interval = std::chrono::milliseconds(opt.monitor_interval_ms);
  while (!done.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(interval);
    std::printf("%s\n", session.monitor().snapshot_text().c_str());
    std::fflush(stdout);
  }
  worker.join();
  session.monitor().stop();

  std::printf("=== final snapshot ===\n%s\n",
              session.monitor().snapshot_text().c_str());
  std::printf("=== final report ===\n%s",
              format_report(session.report(),
                            session.runtime().callsites()).c_str());
  if (opt.fail_on_findings &&
      wl::false_sharing_findings(session.report()) > 0) {
    return 2;
  }
  return 0;
}

// `analyze` subcommand: static-analysis report for a textual IR module.
// For every function, the CFG/dominator/loop/constant view the pruning
// passes operate on; the call graph and each function's access summary;
// then the module-wide instrumentation ledger comparing baseline selective
// dedup against the full pipeline (loop batching + dominance/chain merging
// + interprocedural call batching), whose report-equivalence is proven in
// tests/test_analysis.cpp and tests/test_interprocedural.cpp.
int run_analyze(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::string text;
  char buf[4096];
  for (std::size_t n = 0; (n = std::fread(buf, 1, sizeof buf, f)) > 0;) {
    text.append(buf, n);
  }
  std::fclose(f);

  const ir::ParseResult parsed = ir::parse_module(text);
  if (!parsed.ok) {
    std::fprintf(stderr, "%s: %s\n", path, parsed.error.c_str());
    return 1;
  }

  std::printf("%s: %zu function(s)\n", path, parsed.module.functions.size());
  for (const ir::Function& fn : parsed.module.functions) {
    const ir::Cfg cfg(fn);
    const ir::DomTree dom(cfg);
    const ir::ConstantFacts consts = ir::analyze_constants(fn, cfg);
    const auto loops = ir::find_natural_loops(cfg, dom);
    std::size_t max_depth = 0;
    for (const auto& l : loops) max_depth = std::max<std::size_t>(max_depth, l.depth);
    std::printf(
        "\nfunc %s: %zu blocks (%zu reachable), dom tree height %zu, "
        "%zu loop(s) (max depth %zu), %zu constant fact(s)\n",
        fn.name.c_str(), cfg.num_blocks(), cfg.num_reachable(),
        static_cast<std::size_t>(dom.tree_height()), loops.size(), max_depth,
        static_cast<std::size_t>(consts.facts));
    for (const auto& l : loops) {
      std::printf("  loop @ bb%u: %zu block(s), depth %u, %zu latch(es), %s\n",
                  l.header, l.blocks.size(), l.depth, l.latches.size(),
                  l.preheader == ir::NaturalLoop::kNone
                      ? "no preheader"
                      : ("preheader bb" + std::to_string(l.preheader)).c_str());
    }
  }

  const ir::CallGraph cg(parsed.module);
  std::size_t recursive = 0;
  for (std::uint32_t fi = 0; fi < cg.num_functions(); ++fi) {
    if (cg.in_cycle(fi)) ++recursive;
  }
  std::printf(
      "\ncall graph: %llu call site(s), %zu SCC(s), %zu recursive "
      "function(s)\n",
      static_cast<unsigned long long>(cg.num_call_sites()), cg.num_sccs(),
      recursive);
  for (std::uint32_t fi = 0; fi < cg.num_functions(); ++fi) {
    if (cg.callees(fi).empty()) continue;
    std::printf("  %s ->", parsed.module.functions[fi].name.c_str());
    for (const std::uint32_t c : cg.callees(fi)) {
      std::printf(" %s", parsed.module.functions[c].name.c_str());
    }
    std::printf("%s\n", cg.in_cycle(fi) ? "  [cycle]" : "");
  }

  ir::Module base = parsed.module;
  ir::Module pruned = parsed.module;
  const ir::PassStats s0 = ir::run_instrumentation_pass(base, {});
  ir::PassOptions all;
  all.loop_batching = true;
  all.dominance_elim = true;
  all.interprocedural = true;
  ir::SummaryTable summaries;
  const ir::PassStats s1 =
      ir::run_instrumentation_pass(pruned, all, &summaries);

  std::printf("\ncallee access summaries:\n");
  for (std::size_t fi = 0; fi < parsed.module.functions.size(); ++fi) {
    const ir::AccessSummary& s = summaries.per_function[fi];
    if (s.exact) {
      std::printf("  %-16s exact: %zu entr%s, %llu access(es)/invocation\n",
                  parsed.module.functions[fi].name.c_str(), s.entries.size(),
                  s.entries.size() == 1 ? "y" : "ies",
                  static_cast<unsigned long long>(s.total_accesses()));
    } else {
      std::printf("  %-16s unsummarizable (T)\n",
                  parsed.module.functions[fi].name.c_str());
    }
  }

  std::printf("\ninstrumentation ledger (baseline -> pruned):\n");
  std::printf("  candidate accesses   %8llu\n",
              static_cast<unsigned long long>(s0.candidate_accesses));
  std::printf("  intrinsic sites      %8llu\n",
              static_cast<unsigned long long>(s0.intrinsic_accesses));
  std::printf("  instrumented         %8llu -> %llu\n",
              static_cast<unsigned long long>(s0.instrumented_accesses),
              static_cast<unsigned long long>(s1.instrumented_accesses));
  std::printf("  per-block duplicates %8llu\n",
              static_cast<unsigned long long>(s0.skipped_duplicates));
  std::printf("  loop batched         %8llu (reports inserted %llu)\n",
              static_cast<unsigned long long>(s1.loop_batched),
              static_cast<unsigned long long>(s1.reports_inserted));
  std::printf("  chain merged         %8llu\n",
              static_cast<unsigned long long>(s1.dominance_merged));
  std::printf("  calls batched        %8llu (bare clones %llu)\n",
              static_cast<unsigned long long>(s1.call_batched),
              static_cast<unsigned long long>(s1.bare_clones));
  if (s0.instrumented_accesses > 0) {
    std::printf("  static site reduction %.1f%%\n",
                100.0 *
                    static_cast<double>(s0.instrumented_accesses -
                                        s1.instrumented_accesses) /
                    static_cast<double>(s0.instrumented_accesses));
  }
  if (!s0.reconciles() || !s1.reconciles()) {
    std::fprintf(stderr, "pass statistics do not reconcile\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "analyze") == 0) {
    if (argc != 3) {
      usage(argv[0]);
      return 1;
    }
    return run_analyze(argv[2]);
  }
  CliOptions opt;
  opt.session.heap_size = 64 * 1024 * 1024;
  if (!parse_args(argc, argv, &opt)) {
    usage(argv[0]);
    return 1;
  }
  if (opt.list) return list_workloads();
  if (opt.workload.empty()) {
    usage(argv[0]);
    return 1;
  }
  const wl::Workload* w = wl::find_workload(opt.workload);
  if (w == nullptr) {
    std::fprintf(stderr, "unknown workload '%s' (try --list)\n",
                 opt.workload.c_str());
    return 1;
  }

  opt.session.runtime.prediction_enabled = !opt.no_prediction;
  if (opt.monitor_mode) return run_monitor(opt, w);
  Session session(opt.session);
  const auto traces = w->capture(session, opt.params);
  if (!opt.save_trace.empty()) {
    if (!save_traces_file(opt.save_trace, traces)) {
      std::fprintf(stderr, "cannot write trace to %s\n",
                   opt.save_trace.c_str());
      return 1;
    }
    std::fprintf(stderr, "trace: %zu events -> %s\n", total_events(traces),
                 opt.save_trace.c_str());
  }
  wl::replay_into_session(session, traces, opt.replay_quantum);

  const Report report = session.report();
  std::vector<FixSuggestion> suggestions;
  if (opt.advise_fixes) suggestions = advise(report);

  if (opt.json) {
    std::printf("%s\n",
                report_to_json(report, session.runtime().callsites(),
                               opt.advise_fixes ? &suggestions : nullptr)
                    .c_str());
  } else {
    std::printf("%s",
                format_report(report, session.runtime().callsites()).c_str());
    if (opt.advise_fixes) {
      std::printf("\n%s", format_suggestions(suggestions).c_str());
    }
  }

  if (opt.diff_fix) {
    Session fixed_session(opt.session);
    wl::Params fixed_params = opt.params;
    fixed_params.fix_mask = ~0u;
    w->run_replay(fixed_session, fixed_params, opt.replay_quantum);
    const Report fixed_report = fixed_session.report();
    const ReportDiff diff =
        diff_reports(report, session.runtime().callsites(), fixed_report,
                     fixed_session.runtime().callsites());
    std::printf("\n=== buggy -> fixed diff ===\n%s",
                format_diff(diff).c_str());
  }

  if (opt.fail_on_findings && wl::false_sharing_findings(report) > 0) {
    return 2;
  }
  return 0;
}
