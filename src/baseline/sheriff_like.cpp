#include "baseline/sheriff_like.hpp"

#include <algorithm>
#include <bit>
#include <mutex>

namespace pred {

void SheriffLikeDetector::on_write(Address addr, ThreadId tid) {
  const std::size_t line = geometry_.line_index(addr);
  const std::size_t word = geometry_.word_in_line(addr);
  std::lock_guard<Spinlock> g(lock_);
  LineInfo& info = lines_[line];
  ++info.writes;
  if (info.last_writer != kInvalidThread && info.last_writer != tid) {
    ++info.interleavings;
  }
  info.last_writer = tid;
  if (word < 32 && tid < 64) {
    info.word_writer_mask[word] |= 1ull << tid;
  }
}

std::vector<SheriffLikeDetector::LineReport> SheriffLikeDetector::report(
    std::uint64_t min_interleavings) const {
  std::vector<LineReport> out;
  std::lock_guard<Spinlock> g(lock_);
  for (const auto& [line, info] : lines_) {
    if (info.interleavings < min_interleavings) continue;
    LineReport r;
    r.line = line;
    r.writes = info.writes;
    r.interleavings = info.interleavings;

    std::uint64_t all_writers = 0;
    // Write-write false sharing: two words written by disjoint writers.
    for (std::size_t i = 0; i < 32; ++i) {
      const std::uint64_t wi = info.word_writer_mask[i];
      if (!wi) continue;
      all_writers |= wi;
      for (std::size_t j = i + 1; j < 32; ++j) {
        const std::uint64_t wj = info.word_writer_mask[j];
        if (!wj) continue;
        // False sharing between words i and j iff their combined writer set
        // has two distinct threads (some thread writes one word while a
        // different thread writes the other).
        if (std::popcount(wi | wj) >= 2) {
          r.write_write_false_sharing = true;
        }
      }
    }
    r.writer_threads = static_cast<std::uint32_t>(std::popcount(all_writers));
    out.push_back(r);
  }
  std::sort(out.begin(), out.end(),
            [](const LineReport& a, const LineReport& b) {
              return a.interleavings > b.interleavings;
            });
  return out;
}

}  // namespace pred
