// Figure 7 reproduction: execution-time overhead of PREDATOR and
// PREDATOR-NP (prediction disabled), normalized to the uninstrumented run.
//
// Each workload runs with real threads in three builds: Original (no-op
// sink), PREDATOR-NP, and PREDATOR. The paper reports an average ~5.4x with
// no noticeable NP/full difference; expect the same ordering and rough
// magnitudes here (absolute ratios differ — this host is not an 8-core
// Xeon, and the shims are calls rather than inlined instrumentation).
#include <cstdio>

#include "bench_util.hpp"

using namespace pred;
using namespace pred::bench;

namespace {

double time_native(const wl::Workload& w, const wl::Params& p, int reps) {
  std::vector<double> samples;
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    w.run_native(p);
    samples.push_back(sw.elapsed_seconds());
  }
  return trimmed_mean(samples);
}

double time_live(const wl::Workload& w, const wl::Params& p, bool prediction,
                 int reps) {
  std::vector<double> samples;
  for (int r = 0; r < reps; ++r) {
    SessionOptions opts = session_options();
    opts.runtime.prediction_enabled = prediction;
    Session session(opts);
    Stopwatch sw;
    w.run_live(session, p);
    samples.push_back(sw.elapsed_seconds());
  }
  return trimmed_mean(samples);
}

}  // namespace

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 3;
  std::printf("Figure 7: execution time overhead "
              "(normalized runtime; %d reps, trimmed mean)\n\n", reps);
  std::printf("%-20s %-8s %12s %14s %12s\n", "workload", "suite",
              "original(s)", "PREDATOR-NP", "PREDATOR");
  print_rule('-', 72);

  std::vector<double> np_ratios;
  std::vector<double> full_ratios;
  for (const auto& w : wl::all_workloads()) {
    wl::Params p = default_params();
    p.scale = 4;  // long enough that thread startup cost is amortized
    const double native = time_native(*w, p, reps);
    const double np = time_live(*w, p, /*prediction=*/false, reps);
    const double full = time_live(*w, p, /*prediction=*/true, reps);
    const double np_ratio = np / native;
    const double full_ratio = full / native;
    np_ratios.push_back(np_ratio);
    full_ratios.push_back(full_ratio);
    std::printf("%-20s %-8s %12.4f %13.2fx %11.2fx\n",
                w->traits().name.c_str(), w->traits().suite.c_str(), native,
                np_ratio, full_ratio);
  }
  print_rule('-', 72);
  std::printf("%-20s %-8s %12s %13.2fx %11.2fx   (paper avg: ~5.4x)\n",
              "GEOMEAN", "", "", geomean(np_ratios), geomean(full_ratios));
  return 0;
}
