// Internal invariant checking. PRED_CHECK stays on in release builds: the
// runtime's correctness claims (no false positives) rest on these holding.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace pred::detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) {
  std::fprintf(stderr, "PREDATOR check failed: %s at %s:%d\n", expr, file,
               line);
  std::abort();
}
}  // namespace pred::detail

#define PRED_CHECK(expr)                                          \
  do {                                                            \
    if (!(expr)) ::pred::detail::check_failed(#expr, __FILE__, __LINE__); \
  } while (0)
