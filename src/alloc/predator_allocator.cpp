#include "alloc/predator_allocator.hpp"

#include <cstring>

#include "common/check.hpp"

namespace pred {

namespace {
constexpr bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

PredatorAllocator::PredatorAllocator(Runtime& rt, std::size_t heap_size)
    : rt_(rt), region_(heap_size, rt.config().geometry.line_size) {
  shadow_ = rt_.register_region(region_.base(), region_.size());
  PRED_CHECK(shadow_ != nullptr);
}

PredatorAllocator::LockedHeap& PredatorAllocator::local_heap() {
  const std::thread::id me = std::this_thread::get_id();
  std::lock_guard<Spinlock> g(heaps_lock_);
  auto it = heaps_.find(me);
  if (it == heaps_.end()) {
    it = heaps_
             .emplace(me, std::make_unique<LockedHeap>(
                              region_, rt_.config().geometry.line_size))
             .first;
  }
  return *it->second;
}

void PredatorAllocator::install_repair_plan(
    std::shared_ptr<const repair::RepairPlan> plan) {
  std::lock_guard<Spinlock> g(plan_lock_);
  plan_ = std::move(plan);
  plan_memo_.clear();
}

const repair::PlanEntry* PredatorAllocator::plan_entry_for(
    CallsiteId callsite) {
  if (callsite == kNoCallsite) return nullptr;
  std::lock_guard<Spinlock> g(plan_lock_);
  if (plan_ == nullptr) return nullptr;
  const auto memo = plan_memo_.find(callsite);
  if (memo != plan_memo_.end()) return memo->second;
  const std::string key =
      repair::join_frames(rt_.callsites().get(callsite).frames);
  const repair::PlanEntry* e = plan_->find(/*is_global=*/false, key);
  plan_memo_.emplace(callsite, e);
  return e;
}

void* PredatorAllocator::finish_allocation(std::size_t size,
                                           CallsiteId callsite) {
  // Apply any installed repair plan: padding the request to a multiple of
  // pad_to pushes the block into a size class at least that large, and the
  // power-of-two classes then align it naturally — neighbours can no longer
  // share the object's lines.
  std::size_t request = size;
  if (const repair::PlanEntry* e = plan_entry_for(callsite);
      e != nullptr && e->pad_to > 1) {
    request = round_up(size ? size : 1, e->pad_to);
    std::lock_guard<Spinlock> g(stats_lock_);
    ++stats_.repairs_applied;
    stats_.repair_padding_bytes += request - size;
  }

  LockedHeap& lh = local_heap();
  Address a = 0;
  {
    std::lock_guard<Spinlock> g(lh.lock);
    a = lh.heap.allocate(request);
  }
  if (a == 0) return nullptr;
  {
    std::lock_guard<Spinlock> g(heaps_lock_);
    block_owner_[a] = &lh;
  }
  ObjectInfo info;
  info.start = a;
  info.size = request;  // padded size: deallocate must see the real block
  info.callsite = callsite;
  info.is_global = false;
  rt_.objects().add(std::move(info));
  live_bytes_.fetch_add(request, std::memory_order_relaxed);
  {
    std::lock_guard<Spinlock> g(stats_lock_);
    ++stats_.allocations;
  }
  return reinterpret_cast<void*>(a);
}

void* PredatorAllocator::allocate(std::size_t size,
                                  std::vector<std::string> callsite_frames) {
  const CallsiteId cs = rt_.callsites().intern(std::move(callsite_frames));
  return finish_allocation(size, cs);
}

void* PredatorAllocator::allocate(std::size_t size, CallsiteId callsite) {
  return finish_allocation(size, callsite);
}

void* PredatorAllocator::allocate_with_backtrace(std::size_t size) {
  const CallsiteId cs = rt_.callsites().capture_native(2);
  return finish_allocation(size, cs);
}

void* PredatorAllocator::allocate_zeroed(
    std::size_t count, std::size_t size,
    std::vector<std::string> callsite_frames) {
  if (count != 0 && size > static_cast<std::size_t>(-1) / count) {
    return nullptr;  // multiplication overflow, as calloc requires
  }
  const std::size_t total = count * size;
  void* p = allocate(total ? total : 1, std::move(callsite_frames));
  if (p != nullptr) std::memset(p, 0, total);
  return p;
}

void* PredatorAllocator::reallocate(void* p, std::size_t new_size,
                                    std::vector<std::string> callsite_frames) {
  {
    std::lock_guard<Spinlock> g(stats_lock_);
    ++stats_.reallocations;
  }
  if (p == nullptr) return allocate(new_size, std::move(callsite_frames));
  if (new_size == 0) {
    deallocate(p);
    return nullptr;
  }
  const auto old = rt_.objects().find(reinterpret_cast<Address>(p));
  if (!old || old->start != reinterpret_cast<Address>(p)) return nullptr;
  const std::size_t old_size = old->size;
  // Shrinking within the same size class keeps the block; everything else
  // moves (fresh block + copy + free of the original).
  if (new_size <= old_size &&
      SizeClasses::index_for(new_size) == SizeClasses::index_for(old_size)) {
    return p;
  }
  void* fresh = allocate(new_size, std::move(callsite_frames));
  if (fresh == nullptr) return nullptr;
  std::memcpy(fresh, p, std::min(old_size, new_size));
  deallocate(p);
  return fresh;
}

void* PredatorAllocator::allocate_aligned(
    std::size_t alignment, std::size_t size,
    std::vector<std::string> callsite_frames) {
  if (!is_pow2(alignment)) return nullptr;
  const std::size_t line = rt_.config().geometry.line_size;
  if (alignment <= line) {
    // Size classes >= alignment give natural alignment: round the request.
    const std::size_t rounded = round_up(size ? size : 1, alignment);
    void* p = allocate(std::max(rounded, alignment),
                       std::move(callsite_frames));
    PRED_CHECK(p == nullptr ||
               reinterpret_cast<Address>(p) % alignment == 0);
    return p;
  }
  // Stronger than a line: take a dedicated span with slack and register the
  // aligned interior as the object.
  Address span = region_.allocate_span(size + alignment);
  if (span == 0) return nullptr;
  const Address aligned = round_up(span, alignment);
  ObjectInfo info;
  info.start = aligned;
  info.size = size;
  info.callsite = rt_.callsites().intern(std::move(callsite_frames));
  rt_.objects().add(std::move(info));
  live_bytes_.fetch_add(size, std::memory_order_relaxed);
  {
    std::lock_guard<Spinlock> g(stats_lock_);
    ++stats_.allocations;
  }
  return reinterpret_cast<void*>(aligned);
}

bool PredatorAllocator::object_has_invalidations(Address start,
                                                 std::size_t size) const {
  const std::size_t first = shadow_->line_index(start);
  const std::size_t last = shadow_->line_index(start + (size ? size : 1) - 1);
  for (std::size_t i = first; i <= last && i < shadow_->num_lines(); ++i) {
    if (CacheTracker* t = shadow_->tracker(i)) {
      if (t->invalidations() > 0) return true;
    }
  }
  return false;
}

void PredatorAllocator::deallocate(void* p) {
  if (p == nullptr) return;
  const Address a = reinterpret_cast<Address>(p);
  auto obj = rt_.objects().find(a);
  if (!obj || obj->start != a || obj->is_global) return;

  live_bytes_.fetch_sub(obj->size, std::memory_order_relaxed);
  {
    std::lock_guard<Spinlock> g(stats_lock_);
    ++stats_.deallocations;
  }

  if (object_has_invalidations(obj->start, obj->size)) {
    // Involved in (possible) sharing: keep the record for reporting and
    // never hand this memory out again (Section 2.3.2).
    rt_.objects().mark_dead(a);
    {
      std::lock_guard<Spinlock> g(stats_lock_);
      ++stats_.leaked_for_reporting;
    }
    return;
  }

  // Clean object: reset line recording state so the next tenant starts
  // fresh, then recycle through the owning thread's heap.
  const std::size_t first = shadow_->line_index(obj->start);
  const std::size_t last =
      shadow_->line_index(obj->start + (obj->size ? obj->size : 1) - 1);
  for (std::size_t i = first; i <= last && i < shadow_->num_lines(); ++i) {
    if (CacheTracker* t = shadow_->tracker(i)) t->reset_for_reuse();
  }
  rt_.objects().remove(a);

  LockedHeap* owner = nullptr;
  {
    std::lock_guard<Spinlock> g(heaps_lock_);
    auto it = block_owner_.find(a);
    if (it != block_owner_.end()) {
      owner = it->second;
      block_owner_.erase(it);
    }
  }
  if (owner) {
    std::lock_guard<Spinlock> g(owner->lock);
    owner->heap.deallocate(a, obj->size);
  }
}

}  // namespace pred
