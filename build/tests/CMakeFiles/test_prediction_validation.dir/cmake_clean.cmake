file(REMOVE_RECURSE
  "CMakeFiles/test_prediction_validation.dir/test_prediction_validation.cpp.o"
  "CMakeFiles/test_prediction_validation.dir/test_prediction_validation.cpp.o.d"
  "test_prediction_validation"
  "test_prediction_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prediction_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
