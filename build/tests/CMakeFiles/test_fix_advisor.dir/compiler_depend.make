# Empty compiler generated dependencies file for test_fix_advisor.
# This may be replaced when dependencies are built.
