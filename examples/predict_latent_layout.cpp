// Prediction demo: find false sharing that is NOT happening (yet).
//
// Reproduces the paper's linear_regression case study (Sections 3.1/4.1.3):
// an array of 64-byte per-thread structs is perfectly line-aligned, so the
// current run has zero false sharing — an observed-only detector reports
// nothing. PREDATOR's virtual cache lines reveal that a different object
// placement (a different allocator, compiler, or malloc order) or a
// 128-byte-line machine would suffer a severe slowdown, and the cache
// simulator quantifies it.
//
// Build & run:  ./build/examples/predict_latent_layout
#include <cstdio>

#include "sim/cache_sim.hpp"
#include "workloads/workload.hpp"

using namespace pred;

namespace {

double modeled_seconds_at_offset(const wl::Workload& w, std::size_t offset) {
  SessionOptions opts;
  opts.heap_size = 32 * 1024 * 1024;
  Session scratch(opts);
  wl::Params p;
  p.threads = 8;
  p.offset = offset;
  const auto traces = w.capture(scratch, p);
  CacheSim sim;
  return simulate_concurrent(sim, traces).seconds();
}

}  // namespace

int main() {
  const wl::Workload* lreg = wl::find_workload("linear_regression");
  if (lreg == nullptr) return 1;

  // --- run at the clean placement (offset 0) under full PREDATOR ---
  SessionOptions opts;
  opts.heap_size = 32 * 1024 * 1024;
  Session session(opts);
  wl::Params params;
  params.threads = 8;
  params.offset = 0;
  lreg->run_replay(session, params);

  std::printf("=== linear_regression at a clean, line-aligned placement ===\n\n");
  std::printf("%s\n", session.report_text().c_str());

  const Report report = session.report();
  bool latent = false;
  for (const auto& f : report.findings) {
    latent |= f.predicted && !f.observed && f.is_false_sharing();
  }
  if (latent) {
    std::printf(
        "PREDATOR predicted latent false sharing with ZERO observed\n"
        "invalidations in this run. An observed-only tool reports nothing "
        "here.\n\n");
  }

  // --- quantify what the prediction is warning about ---
  std::printf("Modeled runtime under the cache simulator (8 cores):\n");
  const double clean = modeled_seconds_at_offset(*lreg, 0);
  for (std::size_t offset = 0; offset < 64; offset += 8) {
    const double t = modeled_seconds_at_offset(*lreg, offset);
    std::printf("  object offset %2zu: %.4fs  (%.1fx vs aligned)\n", offset,
                t, t / clean);
  }
  std::printf(
      "\nThe placement-dependent cliff is exactly what the predicted\n"
      "virtual-line finding above warns about (paper Figure 2).\n");
  return 0;
}
