#include "instrument/analysis/summaries.hpp"

#include <map>
#include <tuple>

#include "common/check.hpp"

namespace pred::ir {

namespace {

/// Abstract value of the summarizing interpreter. Mirrors the interpreter's
/// int64 register semantics exactly wherever it claims a constant.
struct SymVal {
  enum class Kind : std::uint8_t { kConst, kArgRel, kOpaque };
  Kind kind = Kind::kOpaque;
  std::uint32_t arg = 0;  ///< argument index (kArgRel)
  std::int64_t c = 0;     ///< constant, or offset from the argument value

  static SymVal constant(std::int64_t v) {
    return {Kind::kConst, 0, v};
  }
  static SymVal arg_rel(std::uint32_t a, std::int64_t off) {
    return {Kind::kArgRel, a, off};
  }
  static SymVal opaque() { return {}; }
  bool is_const() const { return kind == Kind::kConst; }
  bool is_arg() const { return kind == Kind::kArgRel; }
};

class Summarizer {
 public:
  /// Step budget: a summarizable callee follows one finite constant-decided
  /// path; anything longer than this is not worth describing exactly.
  static constexpr std::uint64_t kMaxSteps = 200'000;

  Summarizer(const Module& module, const CallGraph& cg,
             const SummaryTable& table)
      : module_(module), cg_(cg), table_(table) {}

  AccessSummary run(std::uint32_t f) {
    if (cg_.in_cycle(f)) return {};  // recursion: no bounded exact behavior
    if (!execute(module_.functions[f])) return {};
    AccessSummary s;
    s.exact = true;
    s.syncs = syncs_;
    s.entries.reserve(acc_.size());
    for (const auto& [key, count] : acc_) {
      const auto& [arg, offset, width, is_write] = key;
      s.entries.push_back({arg, offset, width, is_write, count});
    }
    return s;
  }

 private:
  using Key = std::tuple<std::uint32_t, std::int64_t, std::uint32_t, bool>;

  void deliver(std::uint32_t arg, std::int64_t offset, std::uint32_t width,
               bool is_write, std::uint64_t count) {
    if (count > 0) acc_[Key{arg, offset, width, is_write}] += count;
  }

  /// Follows the function's statically decided path, collecting deliveries.
  /// Returns false as soon as anything is not exactly describable.
  bool execute(const Function& fn) {
    std::vector<SymVal> regs(fn.num_regs, SymVal::constant(0));
    for (std::uint32_t a = 0; a < fn.num_args; ++a) {
      regs[a] = SymVal::arg_rel(a, 0);
    }

    std::uint32_t block = 0;
    std::size_t pc = 0;
    while (true) {
      if (++steps_ > kMaxSteps) return false;
      if (block >= fn.blocks.size()) return false;
      const auto& instrs = fn.blocks[block].instrs;
      if (pc >= instrs.size()) return false;
      const Instr& in = instrs[pc];

      switch (in.op) {
        case Opcode::kConst:
          regs[in.dst] = SymVal::constant(in.imm);
          break;
        case Opcode::kMove:
          regs[in.dst] = regs[in.a];
          break;
        case Opcode::kAdd:
          regs[in.dst] = add(regs[in.a], regs[in.b]);
          break;
        case Opcode::kSub:
          regs[in.dst] = sub(regs[in.a], regs[in.b]);
          break;
        case Opcode::kMul:
          regs[in.dst] = fold_binop(regs[in.a], regs[in.b],
                                    [](std::int64_t a, std::int64_t b) {
                                      return a * b;
                                    });
          break;
        case Opcode::kDiv:
        case Opcode::kRem: {
          const SymVal& d = regs[in.b];
          if (d.is_const() && d.c == 0) return false;  // would trap at runtime
          regs[in.dst] =
              in.op == Opcode::kDiv
                  ? fold_binop(regs[in.a], d,
                               [](std::int64_t a, std::int64_t b) {
                                 return a / b;
                               })
                  : fold_binop(regs[in.a], d,
                               [](std::int64_t a, std::int64_t b) {
                                 return a % b;
                               });
          break;
        }
        case Opcode::kCmpLt:
          regs[in.dst] = fold_binop(regs[in.a], regs[in.b],
                                    [](std::int64_t a, std::int64_t b) {
                                      return a < b ? 1 : 0;
                                    });
          break;
        case Opcode::kCmpEq:
          regs[in.dst] = fold_binop(regs[in.a], regs[in.b],
                                    [](std::int64_t a, std::int64_t b) {
                                      return a == b ? 1 : 0;
                                    });
          break;
        case Opcode::kLoad:
          if (in.instrumented &&
              !deliver_access(regs[in.a], in, /*is_store=*/false)) {
            return false;
          }
          regs[in.dst] = SymVal::opaque();  // memory contents are not modeled
          break;
        case Opcode::kStore:
          if (in.instrumented &&
              !deliver_access(regs[in.a], in, /*is_store=*/true)) {
            return false;
          }
          break;
        case Opcode::kCall: {
          const auto callee = static_cast<std::size_t>(in.imm);
          if (callee >= table_.per_function.size()) return false;
          const AccessSummary& inner = table_.per_function[callee];
          if (!inner.exact) return false;
          syncs_ |= inner.syncs;
          for (const AccessSummary::Entry& e : inner.entries) {
            const SymVal base = regs[in.a + e.arg];
            if (!base.is_arg()) return false;
            deliver(base.arg, base.c + e.offset, e.width, e.is_write,
                    e.count);
          }
          regs[in.dst] = SymVal::opaque();
          break;
        }
        case Opcode::kMemSet:
        case Opcode::kMemCopy:
          // Instrumented intrinsics deliver a dynamic, length-dependent
          // range; uninstrumented ones deliver nothing and define nothing.
          if (in.instrumented) return false;
          break;
        case Opcode::kReport: {
          if (in.instrumented) {
            const SymVal cnt = regs[in.b];
            if (!cnt.is_const()) return false;
            if (cnt.c > 0) {
              const SymVal base = regs[in.a];
              if (!base.is_arg()) return false;
              deliver(base.arg, base.c + in.imm, in.size, in.target != 0,
                      static_cast<std::uint64_t>(cnt.c));
            }
          }
          break;
        }
        case Opcode::kAcquire:
        case Opcode::kRelease:
        case Opcode::kHandoff:
          // Sync intrinsics deliver no instrumentation, so exactness is
          // preserved — but record their presence: batching a syncing
          // callee would collapse its epoch rotations and handoff claims.
          syncs_ = true;
          break;
        case Opcode::kBr:
          block = in.target;
          pc = 0;
          continue;
        case Opcode::kCondBr: {
          const SymVal cond = regs[in.a];
          if (!cond.is_const()) return false;  // data-dependent control flow
          block = cond.c != 0 ? in.target : in.target2;
          pc = 0;
          continue;
        }
        case Opcode::kRet:
          return true;
      }
      ++pc;
    }
  }

  bool deliver_access(const SymVal& base, const Instr& in, bool is_store) {
    if (!base.is_arg()) return false;  // data-dependent delivered address
    const std::int64_t addr_off = base.c + in.imm;
    deliver(base.arg, addr_off, in.size, is_store, 1);
    // Merge-compensation extras fire at the same address and width.
    deliver(base.arg, addr_off, in.size, /*is_write=*/false, in.extra_reads);
    deliver(base.arg, addr_off, in.size, /*is_write=*/true, in.extra_writes);
    return true;
  }

  static SymVal add(const SymVal& a, const SymVal& b) {
    if (a.is_const() && b.is_const()) return SymVal::constant(a.c + b.c);
    if (a.is_arg() && b.is_const()) return SymVal::arg_rel(a.arg, a.c + b.c);
    if (a.is_const() && b.is_arg()) return SymVal::arg_rel(b.arg, a.c + b.c);
    return SymVal::opaque();
  }

  static SymVal sub(const SymVal& a, const SymVal& b) {
    if (a.is_const() && b.is_const()) return SymVal::constant(a.c - b.c);
    if (a.is_arg() && b.is_const()) return SymVal::arg_rel(a.arg, a.c - b.c);
    if (a.is_arg() && b.is_arg() && a.arg == b.arg) {
      return SymVal::constant(a.c - b.c);
    }
    return SymVal::opaque();
  }

  template <typename Op>
  static SymVal fold_binop(const SymVal& a, const SymVal& b, Op op) {
    if (a.is_const() && b.is_const()) return SymVal::constant(op(a.c, b.c));
    return SymVal::opaque();
  }

  const Module& module_;
  const CallGraph& cg_;
  const SummaryTable& table_;
  std::map<Key, std::uint64_t> acc_;
  std::uint64_t steps_ = 0;
  bool syncs_ = false;  ///< saw a sync intrinsic (directly or via a callee)
};

}  // namespace

AccessSummary summarize_function(const Module& module, std::uint32_t f,
                                 const CallGraph& cg,
                                 const SummaryTable& table) {
  PRED_CHECK(f < module.functions.size());
  return Summarizer(module, cg, table).run(f);
}

SummaryTable summarize_module(const Module& module, const CallGraph& cg) {
  SummaryTable table;
  table.per_function.resize(module.functions.size());
  for (const std::uint32_t f : cg.bottom_up()) {
    table.per_function[f] = summarize_function(module, f, cg, table);
  }
  return table;
}

}  // namespace pred::ir
