// Report export: serializes a PREDATOR report (and optionally the fix
// advisor's suggestions) to JSON for CI gates, dashboards, and diffing
// across runs. Schema:
//
// {
//   "total_invalidations": N,
//   "findings": [{
//     "rank": 1, "kind": "FALSE SHARING", "observed": true,
//     "predicted": false,
//     "object": {"start": "0x...", "size": N, "global": false,
//                "name": "...", "callsite": ["frame", ...]},
//     "invalidations": N, "predicted_invalidations": N,
//     "accesses": N, "writes": N,
//     "words": [{"address": "0x...", "reads": N, "writes": N,
//                "owner": T | "shared"}, ...],
//     "virtual_lines": [{"start": "0x...", "size": N, "kind": "...",
//                        "invalidations": N}, ...]
//   }, ...],
//   "suggestions": [...],  // only when advice is supplied
//   "repair_plan": {       // only when a plan is supplied
//     "origin_uid": N,
//     "entries": [{"site": "...", "global": false, "action": "pad_slots",
//                  "pad_to": N, "alignment": N, "slot_stride": N,
//                  "object_size": N, "expected_eliminated": N,
//                  "evidence": [{"offset": N, "owner": T | "shared",
//                                "writes": N}, ...]}, ...]
//   }
// }
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "advice/fix_advisor.hpp"
#include "repair/plan.hpp"
#include "runtime/callsite.hpp"
#include "runtime/report.hpp"

namespace pred {

class JsonWriter;

std::string report_to_json(
    const Report& report, const CallsiteTable& callsites,
    const std::vector<FixSuggestion>* suggestions = nullptr,
    const repair::RepairPlan* plan = nullptr);

/// The "repair_plan" object alone (collector rollups and plan files embed
/// it under their own keys).
std::string plan_to_json(const repair::RepairPlan& plan);

/// Writes the members of the "repair_plan" object into an already-open
/// JSON object — shared by report_to_json, plan_to_json, and rollup_json.
void write_plan_fields(JsonWriter& w, const repair::RepairPlan& plan);

}  // namespace pred
