// Virtual cache line verification state (Sections 3.3-3.4).
//
// A virtual line is a contiguous byte range that stands in for a cache line
// of a *hypothetical* platform: either a double-sized line [2i, 2i+2) lines
// (predicting larger hardware lines) or a same-sized line at an arbitrary
// starting offset (predicting a different object placement). Once the
// predictor nominates a virtual line (from a hot access pair), the runtime
// feeds every sampled access in its range through a dedicated two-entry
// history table; the resulting invalidation count is the predicted severity.
#pragma once

#include <cstdint>

#include "common/cacheline.hpp"
#include "common/spinlock.hpp"
#include "runtime/history_table.hpp"

namespace pred {

class VirtualLineTracker {
 public:
  enum class Kind : std::uint8_t {
    kDoubleLine,  ///< models hardware with 2x line size (Figure 3b)
    kShifted,     ///< models a different object starting address (Figure 3c)
  };

  VirtualLineTracker(Address start, std::size_t size, Kind kind,
                     std::size_t origin_line, Address hot_x, Address hot_y)
      : start_(start),
        size_(size),
        hot_x_(hot_x),
        hot_y_(hot_y),
        origin_line_(origin_line),
        kind_(kind) {}

  bool covers(Address a) const { return a >= start_ && a < start_ + size_; }

  /// Feeds one (sampled) access; counts predicted invalidations.
  void access(Address a, AccessType type, ThreadId tid) {
    if (!covers(a)) return;
    std::lock_guard<Spinlock> g(lock_);
    ++accesses_;
    if (history_.access(tid, type) == HistoryOutcome::kInvalidation) {
      ++invalidations_;
    }
  }

  Address start() const { return start_; }
  std::size_t size() const { return size_; }
  Kind kind() const { return kind_; }
  std::size_t origin_line() const { return origin_line_; }
  Address hot_x() const { return hot_x_; }
  Address hot_y() const { return hot_y_; }

  std::uint64_t invalidations() const {
    std::lock_guard<Spinlock> g(lock_);
    return invalidations_;
  }
  std::uint64_t accesses() const {
    std::lock_guard<Spinlock> g(lock_);
    return accesses_;
  }

 private:
  mutable Spinlock lock_;
  HistoryTable history_;
  std::uint64_t invalidations_ = 0;
  std::uint64_t accesses_ = 0;
  const Address start_;
  const std::size_t size_;
  const Address hot_x_;
  const Address hot_y_;
  const std::size_t origin_line_;
  const Kind kind_;
};

}  // namespace pred
