// Generic forward dataflow engine: an iterative worklist solver over the
// CFG, parameterized by the analysis domain. The domain supplies the
// lattice; the engine supplies termination and evaluation order (reverse
// postorder seeding, then worklist-driven re-evaluation of successors).
//
// A Domain must provide:
//   using State = ...;                       // one lattice element
//   State entry_state(const Function&);      // state at the entry block
//   State top() const;                       // identity of meet
//   void meet(State* into, const State& from) const;
//   // Applies the block's instructions to `state` in place.
//   void transfer(const Function&, std::uint32_t block, State* state) const;
//   bool equal(const State&, const State&) const;
//
// The solver returns the *entry* state of every reachable block (the
// fixpoint of meet-over-preds); clients wanting a mid-block state re-run
// transfer over a prefix themselves. Unreachable blocks keep top().
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "instrument/analysis/cfg.hpp"

namespace pred::ir {

template <typename Domain>
std::vector<typename Domain::State> solve_forward(const Function& fn,
                                                  const Cfg& cfg,
                                                  const Domain& domain) {
  using State = typename Domain::State;
  const std::size_t n = cfg.num_blocks();
  std::vector<State> in(n, domain.top());
  if (n == 0) return in;
  in[Cfg::kEntry] = domain.entry_state(fn);

  std::vector<bool> queued(n, false);
  std::deque<std::uint32_t> worklist;
  for (std::uint32_t b : cfg.reverse_postorder()) {
    worklist.push_back(b);
    queued[b] = true;
  }

  while (!worklist.empty()) {
    const std::uint32_t b = worklist.front();
    worklist.pop_front();
    queued[b] = false;

    State out = in[b];
    domain.transfer(fn, b, &out);
    for (std::uint32_t s : cfg.succs(b)) {
      State merged = in[s];
      domain.meet(&merged, out);
      if (!domain.equal(merged, in[s])) {
        in[s] = std::move(merged);
        if (!queued[s]) {
          worklist.push_back(s);
          queued[s] = true;
        }
      }
    }
  }
  return in;
}

}  // namespace pred::ir
