
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/heap_region.cpp" "src/CMakeFiles/predator_alloc.dir/alloc/heap_region.cpp.o" "gcc" "src/CMakeFiles/predator_alloc.dir/alloc/heap_region.cpp.o.d"
  "/root/repo/src/alloc/predator_allocator.cpp" "src/CMakeFiles/predator_alloc.dir/alloc/predator_allocator.cpp.o" "gcc" "src/CMakeFiles/predator_alloc.dir/alloc/predator_allocator.cpp.o.d"
  "/root/repo/src/alloc/thread_heap.cpp" "src/CMakeFiles/predator_alloc.dir/alloc/thread_heap.cpp.o" "gcc" "src/CMakeFiles/predator_alloc.dir/alloc/thread_heap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/predator_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
