file(REMOVE_RECURSE
  "libpredator_workloads.a"
)
