#!/usr/bin/env python3
"""CI guard over microbench_tracked's JSON output.

Fails (exit 1) when a key throughput ratio drops below its floor, so a
regression on the tracked path or the sync-aware suppression fast path
turns the bench-smoke job red instead of sliding by as a number nobody
reads. Floors are deliberately conservative: CI machines are slow, shared,
and 2-core, so they sit well under the ratios seen on real hardware — the
guard catches "the fast path stopped being fast" (a lost suppression hit,
an accidental lock on the hit path), not single-digit noise.

Checked ratios (all at 8 threads, the acceptance-criteria point):
  speedup_t8           lock-free tracker over spinlock reference
  handoff_speedup_t8   epoch-passing over PR 3 signature on the lock-
                       handoff phase: the suppression WIN. Real hardware
                       shows >= 2x; the floor asks for 1.3x.
  multiline_ratio_t8   sync over base on the fall-through phase: the
                       suppression COST. >= 0.7 means the extra
                       load-and-CAS eats at most ~30% of throughput even
                       when it never hits (in practice scheduling streaks
                       make it win outright).

Usage: check_bench.py BENCH_tracked.json [more.json ...]
Stdlib only — CI and the local tree both have bare python3.
"""
import json
import sys

# key -> (floor, meaning of a failure)
FLOORS = {
    "speedup_t8": (
        1.0,
        "lock-free tracked path no faster than the spinlock reference",
    ),
    "handoff_speedup_t8": (
        1.3,
        "sync-aware suppression lost its win on the lock-handoff phase",
    ),
    "multiline_ratio_t8": (
        0.7,
        "suppression fall-through cost exceeds ~30% on unstable ownership",
    ),
    "predict_recall": (
        1.0,
        "static predictor missed a planted false-sharing line",
    ),
    "predict_modules_per_sec": (
        20.0,
        "whole-module static prediction throughput collapsed",
    ),
    # Deterministic latency-model ratios from microbench_sim: modeled cycles
    # are a pure function of the traces and topology, so these floors are
    # immune to CI machine speed.
    "sim_remote_local_ratio": (
        2.0,
        "two-level topology stopped pricing cross-socket ping-pong >= 2x",
    ),
    # The hierarchical model pays for 512-core sharer masks and directory
    # lookups; ~0.2x of flat is expected, the floor catches a collapse.
    "sim_numa_overhead_ratio": (
        0.08,
        "hierarchical simulator > ~12x slower than flat per access",
    ),
}


def check(path: str) -> int:
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_bench: cannot read {path}: {e}", file=sys.stderr)
        return 1
    failures = 0
    for key, (floor, meaning) in FLOORS.items():
        if key not in data:
            # Older bench binaries (or other bench JSONs passed alongside)
            # simply lack the key; only enforce what the file measures.
            continue
        value = float(data[key])
        status = "ok" if value >= floor else "FAIL"
        print(f"check_bench: {path}: {key} = {value:.2f} "
              f"(floor {floor:.2f}) {status}")
        if value < floor:
            print(f"check_bench:   -> {meaning}", file=sys.stderr)
            failures += 1
    return failures


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    return 1 if sum(check(p) for p in argv[1:]) else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
