// RepairPlan: the actionable half of a PREDATOR report (the ROADMAP's
// Huron-style closed loop). Where a FixSuggestion is prose for a programmer,
// a PlanEntry is a machine-applicable layout directive keyed by the stable
// identity of the offending data — an allocation callsite for heap objects,
// the variable name for globals — so a plan compiled from one process's
// report can be applied in a *different* process (or the next run of the
// same one) where concrete addresses and CallsiteIds have no meaning.
//
// Each entry carries the Section 2.4 word-ownership evidence that justified
// it, so a consumer (or an operator reading the emitted JSON) can audit why
// the layout is being changed.
//
// This header is intentionally dependency-free (plain structs): the
// allocator consumes plans without linking the repair subsystem.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pred::repair {

enum class PlanAction : std::uint8_t {
  kPadSlots = 1,    ///< pad each per-thread slot to `pad_to` bytes
  kAlignStart = 2,  ///< pin the object start to `alignment` bytes
  kPadChunks = 3,   ///< round per-thread chunks up to `pad_to` bytes
  kSplitFields = 4, ///< separate hot fields into `pad_to`-byte groups
};

inline const char* to_string(PlanAction a) {
  switch (a) {
    case PlanAction::kPadSlots: return "pad_slots";
    case PlanAction::kAlignStart: return "align_start";
    case PlanAction::kPadChunks: return "pad_chunks";
    case PlanAction::kSplitFields: return "split_fields";
  }
  return "?";
}

/// One touched word of the finding that justified the entry: byte offset
/// within its cache line, the owning thread, and how hot it was.
struct OffsetEvidence {
  std::uint64_t offset = 0;
  std::uint32_t owner = 0;  ///< ~0u when the word was written by many threads
  std::uint64_t writes = 0;

  bool operator==(const OffsetEvidence&) const = default;
};

inline constexpr std::uint32_t kSharedOwner = ~std::uint32_t{0};

struct PlanEntry {
  bool is_global = false;
  /// Stable identity: the global's name, or the allocation callsite's
  /// frames joined with '|' (outermost frame last, as interned).
  std::string site_key;
  PlanAction action = PlanAction::kAlignStart;
  /// Allocation requests at this site are rounded up to a multiple of this
  /// (the allocator backend); slot strides are widened to this (the IR
  /// rewrite backend). Always a multiple of the line size.
  std::uint64_t pad_to = 64;
  std::uint64_t alignment = 64;
  /// The packed per-thread stride the evidence showed (0: not slot-shaped).
  std::uint64_t slot_stride = 0;
  /// Size of the object the plan was compiled from (diagnostic).
  std::uint64_t object_size = 0;
  /// Invalidations (observed + predicted) the fix is expected to remove.
  std::uint64_t expected_eliminated = 0;
  std::vector<OffsetEvidence> evidence;

  bool operator==(const PlanEntry&) const = default;
};

struct RepairPlan {
  /// Session uid of the report the plan was compiled from (0: unknown).
  std::uint64_t origin_uid = 0;
  std::vector<PlanEntry> entries;

  bool empty() const { return entries.empty(); }

  const PlanEntry* find(bool is_global, std::string_view site_key) const {
    for (const PlanEntry& e : entries) {
      if (e.is_global == is_global && e.site_key == site_key) return &e;
    }
    return nullptr;
  }

  bool operator==(const RepairPlan&) const = default;
};

/// Canonical heap site key: callsite frames joined with '|'.
inline std::string join_frames(const std::vector<std::string>& frames) {
  std::string key;
  for (const std::string& f : frames) {
    if (!key.empty()) key += '|';
    key += f;
  }
  return key;
}

/// Union by (is_global, site_key); on collision the entry expected to
/// eliminate more invalidations wins (a fleet collector merging many
/// clients' plans keeps the best-evidenced directive per site).
inline void merge_plans(RepairPlan& into, const RepairPlan& from) {
  if (into.origin_uid == 0) into.origin_uid = from.origin_uid;
  for (const PlanEntry& e : from.entries) {
    bool merged = false;
    for (PlanEntry& have : into.entries) {
      if (have.is_global == e.is_global && have.site_key == e.site_key) {
        if (e.expected_eliminated > have.expected_eliminated) have = e;
        merged = true;
        break;
      }
    }
    if (!merged) into.entries.push_back(e);
  }
}

}  // namespace pred::repair
