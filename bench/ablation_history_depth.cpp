// Ablation: depth of the cache history table (Section 2.3.1).
//
// The paper fixes the table at two entries and argues this suffices to
// approximate invalidation traffic. This bench replays real workload traces
// through K-entry tables (K = 1, 2, 4, 8) and through the MESI simulator
// (ground truth), reporting total invalidations each sees. Expected: K = 1
// undercounts read-write sharing (a read never registers, so a write after
// a remote *read* is missed); K = 2 captures nearly everything the MESI
// model sees for these workloads; deeper tables add little.
#include <cstdio>
#include <unordered_map>

#include "bench_util.hpp"
#include "runtime/history_table.hpp"

using namespace pred;
using namespace pred::bench;

namespace {

template <int K>
std::uint64_t replay_with_depth(const std::vector<ThreadTrace>& traces) {
  std::unordered_map<std::size_t, BoundedHistoryTable<K>> tables;
  std::uint64_t invalidations = 0;
  std::vector<std::size_t> cursor(traces.size(), 0);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t t = 0; t < traces.size(); ++t) {
      if (cursor[t] >= traces[t].size()) continue;
      const TraceEvent& ev = traces[t][cursor[t]++];
      invalidations +=
          tables[ev.addr / 64].access(static_cast<ThreadId>(t), ev.type) ==
          HistoryOutcome::kInvalidation;
      progressed = true;
    }
  }
  return invalidations;
}

std::uint64_t mesi_ground_truth(const std::vector<ThreadTrace>& traces) {
  CacheSim sim;
  simulate_interleaved(sim, traces, 1);
  return sim.stats().invalidations_sent;
}

}  // namespace

int main() {
  std::printf("Ablation: history table depth K vs MESI ground truth\n");
  std::printf("(total invalidations seen on identical interleaved traces)\n\n");
  std::printf("%-20s %10s %10s %10s %10s %12s\n", "workload", "K=1", "K=2",
              "K=4", "K=8", "MESI");
  print_rule('-', 78);

  for (const char* name :
       {"histogram", "linear_regression", "mysql", "boost", "streamcluster",
        "memcached"}) {
    const wl::Workload* w = wl::find_workload(name);
    if (w == nullptr) continue;
    Session scratch(session_options());
    wl::Params p = default_params();
    if (w->traits().name == "linear_regression") p.offset = 24;
    const auto traces = w->capture(scratch, p);

    const std::uint64_t k1 = replay_with_depth<1>(traces);
    const std::uint64_t k2 = replay_with_depth<2>(traces);
    const std::uint64_t k4 = replay_with_depth<4>(traces);
    const std::uint64_t k8 = replay_with_depth<8>(traces);
    const std::uint64_t mesi = mesi_ground_truth(traces);
    std::printf("%-20s %10llu %10llu %10llu %10llu %12llu\n", name,
                static_cast<unsigned long long>(k1),
                static_cast<unsigned long long>(k2),
                static_cast<unsigned long long>(k4),
                static_cast<unsigned long long>(k8),
                static_cast<unsigned long long>(mesi));
  }
  print_rule('-', 78);
  std::printf("\nExpected: K=2 (the paper's choice) is close to MESI; K=1 "
              "misses read-write\nsharing; K>2 changes little — the design "
              "point is justified.\n");
  return 0;
}
