#include "instrument/pass.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <tuple>
#include <vector>

#include "instrument/analysis/cfg.hpp"
#include "instrument/analysis/constants.hpp"
#include "instrument/analysis/dominators.hpp"
#include "instrument/analysis/loops.hpp"
#include "instrument/analysis/value_numbering.hpp"

namespace pred::ir {

namespace {

bool contains(const std::vector<std::string>& names, const std::string& n) {
  return std::find(names.begin(), names.end(), n) != names.end();
}

bool defines_register(const Instr& in) {
  switch (in.op) {
    case Opcode::kConst:
    case Opcode::kMove:
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kRem:
    case Opcode::kCmpLt:
    case Opcode::kCmpEq:
    case Opcode::kLoad:
    case Opcode::kCall:
      return true;
    default:
      return false;
  }
}

// ---------------------------------------------------------------------------
// Stage 1: selective per-block dedup (Section 2.4.2)
// ---------------------------------------------------------------------------

/// Key identifying "the same address, same access type" within one block:
/// the address register, the constant offset, the access width, and whether
/// it is a load or a store.
struct AccessKey {
  Reg base;
  std::int64_t offset;
  std::uint32_t size;
  bool is_store;
  auto operator<=>(const AccessKey&) const = default;
};

void instrument_function(Function& fn, const PassOptions& options,
                         PassStats& stats) {
  for (BasicBlock& bb : fn.blocks) {
    std::set<AccessKey> seen;  // reset at block boundaries
    for (Instr& instr : bb.instrs) {
      if (is_memory_intrinsic(instr.op)) {
        // memset/memcpy touch a dynamic range: always instrumented (the
        // per-address dedup cannot apply), subject to writes-only mode for
        // the pure-read half handled at runtime. Counted apart from the
        // per-address candidates so the dedup/merge arithmetic reconciles.
        ++stats.intrinsic_accesses;
        instr.instrumented = true;
        continue;
      }
      if (is_memory_access(instr.op)) {
        ++stats.candidate_accesses;
        const bool is_store = instr.op == Opcode::kStore;
        if (!is_store && options.mode == InstrumentMode::kWritesOnly) {
          ++stats.skipped_reads;
        } else {
          const AccessKey key{instr.a, instr.imm, instr.size, is_store};
          if (options.selective && !seen.insert(key).second) {
            ++stats.skipped_duplicates;
          } else {
            instr.instrumented = true;
            ++stats.instrumented_accesses;
          }
        }
      }
      // A redefinition of a register invalidates remembered address
      // expressions built on it: "the same address" must mean the same
      // value, not merely the same register name. (kReport reads its
      // operands and defines nothing.)
      if (defines_register(instr)) {
        for (auto it = seen.begin(); it != seen.end();) {
          it = it->base == instr.dst ? seen.erase(it) : std::next(it);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Stage 2: loop batching
// ---------------------------------------------------------------------------

/// The canonical counted-loop shape batching recognizes:
///
///   preheader:  ... ; br header            (unique, outside the loop)
///   header:     c = ind < bound ; br c ? body : exit
///   body:       ... accesses, net effect ind += step ... ; br header
///
/// The body is the loop's only latch and ends in an *unconditional* branch
/// to the header (a conditional latch could exit before `ind` reaches
/// `bound`), `bound` is untouched inside the loop,
/// and the net effect of one body execution on `ind` — established by value
/// numbering, so any instruction mix qualifies — is exactly +step for a
/// positive constant step. Under those conditions the body executes exactly
/// max(0, ceil((bound - ind0) / step)) times per preheader visit, which is
/// the count the planted kReport computes at run time.
struct BatchableLoop {
  std::uint32_t header;
  std::uint32_t body;
  std::uint32_t preheader;
  Reg ind;
  Reg bound;
  std::int64_t step;
};

std::optional<BatchableLoop> match_batchable(const Function& fn,
                                             const NaturalLoop& loop,
                                             const ConstantFacts& consts) {
  if (loop.blocks.size() != 2 || loop.latches.size() != 1 ||
      loop.preheader == NaturalLoop::kNone) {
    return std::nullopt;
  }
  const std::uint32_t body = loop.latches[0];
  if (body == loop.header || !loop.contains(body)) return std::nullopt;

  // The header's comparison must be the *only* way out: the body has to
  // fall back into the header unconditionally. A conditional latch
  // (condbr c ? header : out) can leave the loop before `ind` reaches
  // `bound`, so the preheader trip count would over-deliver.
  const Instr& latch_term = fn.blocks[body].instrs.back();
  if (latch_term.op != Opcode::kBr || latch_term.target != loop.header) {
    return std::nullopt;
  }

  const auto& h = fn.blocks[loop.header].instrs;
  if (h.size() != 2 || h[0].op != Opcode::kCmpLt ||
      h[1].op != Opcode::kCondBr || h[1].a != h[0].dst ||
      h[1].target != body || loop.contains(h[1].target2)) {
    return std::nullopt;
  }
  const Reg ind = h[0].a;
  const Reg bound = h[0].b;
  if (ind == bound || h[0].dst == ind || h[0].dst == bound) {
    return std::nullopt;
  }

  // `bound` must be loop-invariant the strong way: never assigned inside.
  for (const std::uint32_t b : loop.blocks) {
    for (const Instr& in : fn.blocks[b].instrs) {
      if (defines_register(in) && in.dst == bound) return std::nullopt;
    }
  }

  // Net effect of one body execution on the induction register.
  ValueNumbering vn(fn);
  vn.seed_constants(consts.block_entry[body]);
  for (const Instr& in : fn.blocks[body].instrs) vn.apply(in);
  const ValueNumbering::Value v = vn.value_of(ind);
  if (v.base != ValueNumbering::Value::Base::kEntryReg || v.id != ind ||
      v.offset < 1) {
    return std::nullopt;
  }
  return BatchableLoop{loop.header, body, loop.preheader, ind, bound,
                       v.offset};
}

void batch_loops(Function& fn, PassStats& stats) {
  const Cfg cfg(fn);
  const DomTree dom(cfg);
  const ConstantFacts consts = analyze_constants(fn, cfg);
  const std::vector<NaturalLoop> loops = find_natural_loops(cfg, dom);

  for (const NaturalLoop& loop : loops) {
    const std::optional<BatchableLoop> m = match_batchable(fn, loop, consts);
    if (!m) continue;

    // Registers assigned anywhere in the loop; an address built only from
    // registers outside this set has the same value in every iteration —
    // and, because the preheader dominates the body with no intervening
    // assignment, the *same* value at the preheader's end.
    std::vector<bool> defined(fn.num_regs, false);
    for (const std::uint32_t b : loop.blocks) {
      for (const Instr& in : fn.blocks[b].instrs) {
        if (defines_register(in)) defined[in.dst] = true;
      }
    }

    struct Hoist {
      Instr* access;
      ValueNumbering::Value addr;
    };
    std::vector<Hoist> hoists;
    ValueNumbering vn(fn);
    vn.seed_constants(consts.block_entry[m->body]);
    for (Instr& in : fn.blocks[m->body].instrs) {
      if (is_memory_access(in.op) && in.instrumented && in.extra_reads == 0 &&
          in.extra_writes == 0) {
        const ValueNumbering::Value v = vn.address_of(in);
        if (v.base == ValueNumbering::Value::Base::kEntryReg &&
            !defined[v.id]) {
          hoists.push_back({&in, v});
        }
      }
      vn.apply(in);
    }
    if (hoists.empty()) continue;

    // Emit the trip count ahead of the preheader's terminator:
    //   cnt = (bound - ind + step - 1) / step
    // (signed; a non-positive result means "loop never entered" and the
    // interpreter delivers nothing for it).
    const Reg t_diff = fn.num_regs++;
    const Reg t_cm1 = fn.num_regs++;
    const Reg t_sum = fn.num_regs++;
    const Reg t_step = fn.num_regs++;
    const Reg t_cnt = fn.num_regs++;
    std::vector<Instr> planted;
    planted.push_back({.op = Opcode::kSub, .dst = t_diff, .a = m->bound,
                       .b = m->ind});
    planted.push_back({.op = Opcode::kConst, .dst = t_cm1,
                       .imm = m->step - 1});
    planted.push_back({.op = Opcode::kAdd, .dst = t_sum, .a = t_diff,
                       .b = t_cm1});
    planted.push_back({.op = Opcode::kConst, .dst = t_step, .imm = m->step});
    planted.push_back({.op = Opcode::kDiv, .dst = t_cnt, .a = t_sum,
                       .b = t_step});
    for (const Hoist& hst : hoists) {
      planted.push_back({.op = Opcode::kReport, .a = hst.addr.id,
                         .b = t_cnt, .imm = hst.addr.offset,
                         .size = hst.access->size,
                         .target = hst.access->op == Opcode::kStore ? 1u : 0u,
                         .instrumented = true});
      hst.access->instrumented = false;
      ++stats.loop_batched;
      --stats.instrumented_accesses;
      ++stats.reports_inserted;
    }
    auto& pre = fn.blocks[m->preheader].instrs;
    pre.insert(pre.end() - 1, planted.begin(), planted.end());
  }
}

// ---------------------------------------------------------------------------
// Stage 3: dominance/chain merging
// ---------------------------------------------------------------------------

/// Folds repeated instrumentation of one value-numbered (address, width)
/// into the first instrumented access along a linear block chain — a
/// maximal path B0 → B1 → ... where every edge is single-successor into
/// single-predecessor, so all blocks provably execute the same number of
/// times. The later access keeps running; only its runtime call moves onto
/// the first access as a +1r/+1w compensation extra. Within one block this
/// also subsumes what per-block dedup missed: aliased registers and offsets
/// split between register and immediate, which value numbering unifies.
///
/// Equivalence caveat: extras are delivered reads-then-writes at the kept
/// access, so an original per-address sequence like R,W,R reaches the
/// detector as R,R,W. Counts and kinds are conserved exactly, but the
/// within-thread order of same-address, same-width accesses is not. This is
/// sound for the current runtime — the history automaton and word histogram
/// are insensitive to permuting one thread's consecutive same-address R/W
/// deliveries (the property test in test_analysis.cpp checks bit-identical
/// reports) — and must be revisited if the detector ever becomes
/// order-sensitive within a thread.
void merge_chains(Function& fn, PassStats& stats) {
  const Cfg cfg(fn);
  const ConstantFacts consts = analyze_constants(fn, cfg);

  auto has_linear_pred = [&](std::uint32_t b) {
    for (const std::uint32_t p : cfg.preds(b)) {
      if (cfg.linear_edge(p, b)) return true;
    }
    return false;
  };

  for (const std::uint32_t head : cfg.reverse_postorder()) {
    if (has_linear_pred(head)) continue;  // interior of some chain

    using Key = std::tuple<ValueNumbering::Value::Base, std::uint32_t,
                           std::int64_t, std::uint32_t>;
    std::map<Key, Instr*> first;  // canonical (addr, width) → kept access
    ValueNumbering vn(fn);
    vn.seed_constants(consts.block_entry[head]);

    for (std::uint32_t cur = head;;) {
      for (Instr& in : fn.blocks[cur].instrs) {
        if (is_memory_access(in.op) && in.instrumented) {
          const ValueNumbering::Value v = vn.address_of(in);
          const Key key{v.base, v.id, v.offset, in.size};
          auto [it, inserted] = first.try_emplace(key, &in);
          if (!inserted) {
            Instr& kept = *it->second;
            if (in.op == Opcode::kStore) {
              kept.extra_writes += 1 + in.extra_writes;
              kept.extra_reads += in.extra_reads;
            } else {
              kept.extra_reads += 1 + in.extra_reads;
              kept.extra_writes += in.extra_writes;
            }
            in.instrumented = false;
            in.extra_reads = 0;
            in.extra_writes = 0;
            ++stats.dominance_merged;
            --stats.instrumented_accesses;
          }
        }
        vn.apply(in);
      }
      const auto& succs = cfg.succs(cur);
      if (succs.size() == 1 && cfg.linear_edge(cur, succs[0])) {
        cur = succs[0];
      } else {
        break;
      }
    }
  }
}

}  // namespace

PassStats run_instrumentation_pass(Module& module,
                                   const PassOptions& options) {
  PassStats stats;
  for (Function& fn : module.functions) {
    const bool allowed =
        (options.whitelist.empty() || contains(options.whitelist, fn.name)) &&
        !contains(options.blacklist, fn.name);
    if (!allowed) {
      ++stats.skipped_functions;
      continue;
    }
    instrument_function(fn, options, stats);
    // Batching runs before merging so hoisted accesses are out of the way:
    // merging an access and then multiplying its extras by a trip count
    // would double-deliver. In this order each access is claimed by at most
    // one whole-function transformation.
    if (options.loop_batching) batch_loops(fn, stats);
    if (options.dominance_elim) merge_chains(fn, stats);
  }
  return stats;
}

}  // namespace pred::ir
