file(REMOVE_RECURSE
  "libpredator_predict.a"
)
