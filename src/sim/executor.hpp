// Trace capture and deterministic interleaved execution.
//
// Workload kernels are generic over an access sink (see
// workloads/workload.hpp). Recording each logical thread's accesses into a
// TraceRecorder and replaying them round-robin through the CacheSim gives a
// deterministic model of the paper's parallel hardware runs — this is how
// Figure 2's offset-sensitivity curve and Table 1's "Improvement" column are
// produced on a machine where real false sharing cannot manifest.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/cacheline.hpp"
#include "sim/cache_sim.hpp"

namespace pred {

struct TraceEvent {
  Address addr = 0;
  /// Modeled cycles of *uninstrumented compute* preceding this access
  /// (hashing, arithmetic, branching). Only the simulator's timing model
  /// consumes this; detection replay ignores it.
  std::uint32_t think_cycles = 0;
  AccessType type = AccessType::kRead;
  std::uint8_t size = 8;  ///< access width in bytes
};

using ThreadTrace = std::vector<TraceEvent>;

/// Sink that records accesses (one logical thread's view).
class TraceRecorder {
 public:
  void on_read(const void* p, std::size_t size = 8) {
    trace_.push_back({reinterpret_cast<Address>(p), take_think(),
                      AccessType::kRead, static_cast<std::uint8_t>(size)});
  }
  void on_write(const void* p, std::size_t size = 8) {
    trace_.push_back({reinterpret_cast<Address>(p), take_think(),
                      AccessType::kWrite, static_cast<std::uint8_t>(size)});
  }
  /// Declares `cycles` of uninstrumented compute preceding the next access.
  void think(std::uint32_t cycles) { pending_think_ += cycles; }

  ThreadTrace take() { return std::move(trace_); }
  const ThreadTrace& trace() const { return trace_; }
  void reserve(std::size_t n) { trace_.reserve(n); }

 private:
  std::uint32_t take_think() {
    const std::uint32_t t = pending_think_;
    pending_think_ = 0;
    return t;
  }
  ThreadTrace trace_;
  std::uint32_t pending_think_ = 0;
};

/// Replays per-thread traces through a simulator, round-robin with the
/// given quantum (thread i runs on core i % num_cores). Works for any sim
/// exposing on_access/num_cores/stats — the flat CacheSim and the two-level
/// NumaCacheSim run the same schedules unchanged. Returns the simulator's
/// stats; timing comes from sim.max_core_cycles(). Ignores think_cycles
/// (pure coherence counting).
template <typename Sim>
typename Sim::Stats simulate_interleaved(Sim& sim,
                                         std::span<const ThreadTrace> traces,
                                         std::size_t quantum = 1) {
  if (quantum == 0) quantum = 1;
  std::vector<std::size_t> cursor(traces.size(), 0);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t t = 0; t < traces.size(); ++t) {
      const ThreadTrace& trace = traces[t];
      const std::uint32_t core =
          static_cast<std::uint32_t>(t % sim.num_cores());
      for (std::size_t q = 0; q < quantum && cursor[t] < trace.size(); ++q) {
        const TraceEvent& ev = trace[cursor[t]++];
        sim.on_access(core, ev.addr, ev.type);
        progressed = true;
      }
    }
  }
  return sim.stats();
}

/// Event-driven concurrent execution: each thread owns a clock; at every
/// step the globally-earliest thread issues its next access and advances by
/// its think time plus the access's modeled cost. This is the timing model
/// used for the paper's runtime figures — threads suffering coherence
/// misses fall behind exactly as real cores do. Returns the stats; modeled
/// runtime is the maximum finishing clock, exposed via `finish_cycles`.
struct ConcurrentResult {
  SimStats stats;
  std::uint64_t finish_cycles = 0;
  double seconds(double clock_ghz = 2.33) const {
    return static_cast<double>(finish_cycles) / (clock_ghz * 1e9);
  }
};
template <typename Sim>
ConcurrentResult simulate_concurrent(Sim& sim,
                                     std::span<const ThreadTrace> traces) {
  const std::size_t n = traces.size();
  std::vector<std::size_t> cursor(n, 0);
  std::vector<std::uint64_t> clock(n, 0);

  ConcurrentResult result;
  while (true) {
    // Pick the earliest thread that still has work.
    std::size_t best = n;
    for (std::size_t t = 0; t < n; ++t) {
      if (cursor[t] >= traces[t].size()) continue;
      if (best == n || clock[t] < clock[best]) best = t;
    }
    if (best == n) break;
    const TraceEvent& ev = traces[best][cursor[best]++];
    const std::uint32_t core =
        static_cast<std::uint32_t>(best % sim.num_cores());
    const std::uint64_t cost = sim.on_access(core, ev.addr, ev.type);
    clock[best] += ev.think_cycles + cost;
  }
  for (std::size_t t = 0; t < n; ++t) {
    result.finish_cycles = std::max(result.finish_cycles, clock[t]);
  }
  result.stats = sim.stats();
  return result;
}

}  // namespace pred
