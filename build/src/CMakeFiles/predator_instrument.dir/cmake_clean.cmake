file(REMOVE_RECURSE
  "CMakeFiles/predator_instrument.dir/instrument/interp.cpp.o"
  "CMakeFiles/predator_instrument.dir/instrument/interp.cpp.o.d"
  "CMakeFiles/predator_instrument.dir/instrument/ir.cpp.o"
  "CMakeFiles/predator_instrument.dir/instrument/ir.cpp.o.d"
  "CMakeFiles/predator_instrument.dir/instrument/ir_parser.cpp.o"
  "CMakeFiles/predator_instrument.dir/instrument/ir_parser.cpp.o.d"
  "CMakeFiles/predator_instrument.dir/instrument/pass.cpp.o"
  "CMakeFiles/predator_instrument.dir/instrument/pass.cpp.o.d"
  "libpredator_instrument.a"
  "libpredator_instrument.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predator_instrument.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
