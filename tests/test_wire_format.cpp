// Regression tests for the shared wire framing (trace/wire_format.hpp):
// every FrameError path (bad magic, version skew, truncation, CRC
// corruption), the incremental-parse contract FrameStreamParser relies on,
// and the tagged-field layer's unknown-field forward compatibility.
#include <gtest/gtest.h>

#include <sstream>

#include "collect/transport.hpp"
#include "trace/wire_format.hpp"

namespace pred {
namespace {

using wire::Field;
using wire::FieldReader;
using wire::FieldWriter;
using wire::Frame;
using wire::FrameError;
using wire::FrameType;

std::string sample_payload() {
  std::string payload;
  FieldWriter w(&payload);
  w.u64(1, 0xdeadbeefcafe1234ull);
  w.str(2, "hello, wire");
  return payload;
}

TEST(WireFormat, FrameRoundTrip) {
  const std::string payload = sample_payload();
  const std::string bytes = wire::encode_frame(FrameType::kSnapshot, payload);
  ASSERT_EQ(bytes.size(), wire::kFrameHeaderSize + payload.size());

  Frame frame;
  std::size_t consumed = 0;
  ASSERT_EQ(wire::parse_frame(bytes, &frame, &consumed), FrameError::kOk);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(frame.type, FrameType::kSnapshot);
  EXPECT_EQ(frame.payload, payload);
}

TEST(WireFormat, EmptyPayloadFrame) {
  const std::string bytes = wire::encode_frame(FrameType::kGoodbye, "");
  Frame frame;
  std::size_t consumed = 0;
  ASSERT_EQ(wire::parse_frame(bytes, &frame, &consumed), FrameError::kOk);
  EXPECT_EQ(frame.type, FrameType::kGoodbye);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(WireFormat, RejectsBadMagic) {
  std::string bytes = wire::encode_frame(FrameType::kHello, "x");
  bytes[0] ^= 0x5a;
  Frame frame;
  std::size_t consumed = 0;
  EXPECT_EQ(wire::parse_frame(bytes, &frame, &consumed),
            FrameError::kBadMagic);
}

TEST(WireFormat, RejectsVersionSkew) {
  std::string bytes = wire::encode_frame(FrameType::kHello, "x");
  bytes[4] = static_cast<char>(wire::kWireVersion + 1);  // version lo byte
  Frame frame;
  std::size_t consumed = 0;
  EXPECT_EQ(wire::parse_frame(bytes, &frame, &consumed),
            FrameError::kVersionSkew);
}

TEST(WireFormat, TruncationAtEveryPrefixLength) {
  const std::string bytes =
      wire::encode_frame(FrameType::kSnapshot, sample_payload());
  // Any strict prefix must report kTruncated — never a false kOk, never a
  // spurious corruption error.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    Frame frame;
    std::size_t consumed = 0;
    EXPECT_EQ(wire::parse_frame(std::string_view(bytes).substr(0, cut),
                                &frame, &consumed),
              FrameError::kTruncated)
        << "prefix length " << cut;
  }
}

TEST(WireFormat, RejectsPayloadCorruptionAnywhere) {
  const std::string clean =
      wire::encode_frame(FrameType::kSnapshot, sample_payload());
  // Flip one bit in each payload byte: the CRC must catch every one.
  for (std::size_t i = wire::kFrameHeaderSize; i < clean.size(); ++i) {
    std::string bytes = clean;
    bytes[i] ^= 0x01;
    Frame frame;
    std::size_t consumed = 0;
    EXPECT_EQ(wire::parse_frame(bytes, &frame, &consumed),
              FrameError::kBadCrc)
        << "corrupt byte " << i;
  }
}

TEST(WireFormat, ReadFrameFromStream) {
  const std::string a = wire::encode_frame(FrameType::kHello, "a");
  const std::string b = wire::encode_frame(FrameType::kGoodbye, "bb");
  std::stringstream in(a + b);

  Frame frame;
  ASSERT_EQ(wire::read_frame(in, &frame), FrameError::kOk);
  EXPECT_EQ(frame.type, FrameType::kHello);
  EXPECT_EQ(frame.payload, "a");
  ASSERT_EQ(wire::read_frame(in, &frame), FrameError::kOk);
  EXPECT_EQ(frame.type, FrameType::kGoodbye);
  EXPECT_EQ(frame.payload, "bb");
  EXPECT_EQ(wire::read_frame(in, &frame), FrameError::kTruncated);
}

TEST(WireFormat, FieldRoundTripAndLookup) {
  const std::string payload = sample_payload();
  const auto u = FieldReader::find(payload, 1);
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->as_u64(), 0xdeadbeefcafe1234ull);
  const auto s = FieldReader::find(payload, 2);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->bytes, "hello, wire");
  EXPECT_FALSE(FieldReader::find(payload, 99).has_value());
}

TEST(WireFormat, UnknownFieldsAreSkipped) {
  // A newer producer writes fields this reader has never heard of, of both
  // kinds, interleaved with known ones.
  std::string payload;
  FieldWriter w(&payload);
  w.u64(500, 7);
  w.u64(1, 42);
  w.str(501, std::string(1000, 'z'));
  w.str(2, "known");

  FieldReader r(payload);
  std::size_t fields = 0;
  while (auto f = r.next()) ++fields;
  EXPECT_EQ(fields, 4u);
  EXPECT_FALSE(r.malformed());
  EXPECT_EQ(FieldReader::find(payload, 1)->as_u64(), 42u);
  EXPECT_EQ(FieldReader::find(payload, 2)->bytes, "known");
}

TEST(WireFormat, MalformedFieldSequenceDetected) {
  std::string payload = sample_payload();
  payload.resize(payload.size() - 3);  // tear the last field's value
  FieldReader r(payload);
  while (r.next()) {
  }
  EXPECT_TRUE(r.malformed());
}

TEST(FrameStreamParser, ReassemblesAcrossArbitraryChunking) {
  std::string stream;
  for (int i = 0; i < 5; ++i) {
    stream += wire::encode_frame(FrameType::kSnapshot,
                                 std::string(17 * (i + 1), 'a' + i));
  }
  // Feed in every chunk size from 1 byte to the whole stream.
  for (std::size_t chunk = 1; chunk <= stream.size(); chunk += 7) {
    FrameStreamParser parser;
    std::size_t frames = 0;
    for (std::size_t off = 0; off < stream.size(); off += chunk) {
      parser.feed(std::string_view(stream).substr(
          off, std::min(chunk, stream.size() - off)));
      Frame frame;
      while (parser.next(&frame)) {
        EXPECT_EQ(frame.payload[0], 'a' + static_cast<char>(frames));
        ++frames;
      }
    }
    EXPECT_EQ(frames, 5u) << "chunk size " << chunk;
    EXPECT_FALSE(parser.poisoned());
    EXPECT_EQ(parser.pending_bytes(), 0u);
  }
}

TEST(FrameStreamParser, CorruptionPoisonsTheStream) {
  std::string stream = wire::encode_frame(FrameType::kHello, "first");
  stream += wire::encode_frame(FrameType::kSnapshot, "second");
  stream[wire::kFrameHeaderSize] ^= 0x40;  // corrupt the first payload

  FrameStreamParser parser;
  parser.feed(stream);
  Frame frame;
  EXPECT_FALSE(parser.next(&frame));
  EXPECT_TRUE(parser.poisoned());
  EXPECT_EQ(parser.error(), FrameError::kBadCrc);
  // The good second frame is unreachable — framing trust is gone.
  parser.feed(wire::encode_frame(FrameType::kGoodbye, ""));
  EXPECT_FALSE(parser.next(&frame));
}

TEST(FrameStreamParser, MidFrameEofLeavesPendingBytes) {
  const std::string bytes = wire::encode_frame(FrameType::kSnapshot, "abc");
  FrameStreamParser parser;
  parser.feed(std::string_view(bytes).substr(0, bytes.size() - 1));
  Frame frame;
  EXPECT_FALSE(parser.next(&frame));
  EXPECT_FALSE(parser.poisoned());
  EXPECT_GT(parser.pending_bytes(), 0u);
}

}  // namespace
}  // namespace pred
