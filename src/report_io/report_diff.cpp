#include "report_io/report_diff.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

namespace pred {

const char* to_string(DiffStatus status) {
  switch (status) {
    case DiffStatus::kFixed: return "FIXED";
    case DiffStatus::kNew: return "NEW";
    case DiffStatus::kImproved: return "improved";
    case DiffStatus::kRegressed: return "REGRESSED";
    case DiffStatus::kUnchanged: return "unchanged";
  }
  return "?";
}

std::string finding_identity(const ObjectFinding& finding,
                             const CallsiteTable& callsites) {
  if (finding.object.is_global && !finding.object.name.empty()) {
    return "global:" + finding.object.name;
  }
  if (finding.object.callsite != kNoCallsite) {
    std::string id = "heap:";
    for (const auto& frame : callsites.get(finding.object.callsite).frames) {
      id += frame;
      id += '|';
    }
    return id;
  }
  // Unattributed: fall back to the line offset within its region — stable
  // for our fixed-base heap, best-effort elsewhere.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "line:%" PRIxPTR,
                finding.object.start / 64);
  return buf;
}

namespace {

struct Side {
  std::uint64_t impact = 0;
  bool observed = false;
  bool present = false;
  SharingKind kind = SharingKind::kNone;
};

void collect(const Report& report, const CallsiteTable& callsites,
             const DiffOptions& options,
             std::map<std::string, Side>* out, bool after) {
  for (const ObjectFinding& f : report.findings) {
    if (!f.is_false_sharing() && !options.include_true_sharing) continue;
    Side& side = (*out)[finding_identity(f, callsites)];
    // Several physical objects can share an identity (same callsite):
    // aggregate them — that is also what a human reading the report does.
    side.present = true;
    side.impact += f.impact();
    side.observed |= f.observed;
    if (side.kind == SharingKind::kNone) side.kind = f.kind;
    (void)after;
  }
}

}  // namespace

ReportDiff diff_reports(const Report& before, const CallsiteTable& cs_before,
                        const Report& after, const CallsiteTable& cs_after,
                        const DiffOptions& options) {
  std::map<std::string, Side> lhs;
  std::map<std::string, Side> rhs;
  collect(before, cs_before, options, &lhs, false);
  collect(after, cs_after, options, &rhs, true);

  ReportDiff diff;
  std::map<std::string, std::pair<Side, Side>> merged;
  for (const auto& [id, side] : lhs) merged[id].first = side;
  for (const auto& [id, side] : rhs) merged[id].second = side;

  for (const auto& [id, pair] : merged) {
    const Side& b = pair.first;
    const Side& a = pair.second;
    FindingDiff entry;
    entry.identity = id;
    entry.impact_before = b.impact;
    entry.impact_after = a.impact;
    entry.was_observed = b.observed;
    entry.now_observed = a.observed;
    entry.kind = a.present ? a.kind : b.kind;

    if (b.present && !a.present) {
      entry.status = DiffStatus::kFixed;
      ++diff.fixed;
    } else if (!b.present && a.present) {
      entry.status = DiffStatus::kNew;
      ++diff.fresh;
    } else {
      const double lo = static_cast<double>(b.impact) *
                        (1.0 - options.noise_fraction);
      const double hi = static_cast<double>(b.impact) *
                        (1.0 + options.noise_fraction);
      if (static_cast<double>(a.impact) > hi) {
        entry.status = DiffStatus::kRegressed;
        ++diff.regressed;
      } else if (static_cast<double>(a.impact) < lo) {
        entry.status = DiffStatus::kImproved;
      } else {
        entry.status = DiffStatus::kUnchanged;
      }
    }
    diff.entries.push_back(std::move(entry));
  }

  // Regressions and new findings first, then by after-impact.
  std::sort(diff.entries.begin(), diff.entries.end(),
            [](const FindingDiff& x, const FindingDiff& y) {
              auto sev = [](const FindingDiff& d) {
                switch (d.status) {
                  case DiffStatus::kRegressed: return 0;
                  case DiffStatus::kNew: return 1;
                  case DiffStatus::kUnchanged: return 2;
                  case DiffStatus::kImproved: return 3;
                  case DiffStatus::kFixed: return 4;
                }
                return 5;
              };
              if (sev(x) != sev(y)) return sev(x) < sev(y);
              return x.impact_after > y.impact_after;
            });
  return diff;
}

std::string format_diff(const ReportDiff& diff) {
  if (diff.entries.empty()) {
    return "No false sharing findings on either side.\n";
  }
  std::string out;
  char buf[512];
  for (const FindingDiff& e : diff.entries) {
    std::snprintf(buf, sizeof(buf),
                  "[%-9s] %-60s  impact %" PRIu64 " -> %" PRIu64 "%s\n",
                  to_string(e.status), e.identity.c_str(), e.impact_before,
                  e.impact_after,
                  e.was_observed && !e.now_observed && e.impact_after > 0
                      ? "  (now latent only)"
                      : "");
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "summary: %zu fixed, %zu new, %zu regressed\n", diff.fixed,
                diff.fresh, diff.regressed);
  out += buf;
  return out;
}

}  // namespace pred
