# Empty compiler generated dependencies file for ablation_selective_instr.
# This may be replaced when dependencies are built.
