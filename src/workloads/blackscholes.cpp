// PARSEC blackscholes: no false sharing; low overhead in Figure 7 because
// each option price is written once per pass — per-line write counts stay
// under the tracking threshold, so PREDATOR's fast path handles the run.
#include "common/check.hpp"
#include "common/prng.hpp"
#include "workloads/workload.hpp"

namespace pred::wl {
namespace {

class Blackscholes final : public WorkloadImpl<Blackscholes> {
 public:
  const Traits& traits() const override {
    static const Traits t{
        .name = "blackscholes", .suite = "parsec", .sites = {}};
    return t;
  }

  template <class H>
  static Result kernel(H& h, const Params& p) {
    const std::uint32_t n = p.threads;
    const std::uint64_t options_per_thread = 3000 * p.scale;

    std::vector<double*> spot(n), strike(n), price(n);
    Xorshift64 rng(p.seed);
    for (std::uint32_t t = 0; t < n; ++t) {
      spot[t] = static_cast<double*>(
          h.alloc(options_per_thread * 8, {"blackscholes.c:spot"}));
      strike[t] = static_cast<double*>(
          h.alloc(options_per_thread * 8, {"blackscholes.c:strike"}));
      price[t] = static_cast<double*>(
          h.alloc(options_per_thread * 8, {"blackscholes.c:price"}));
      PRED_CHECK(spot[t] && strike[t] && price[t]);
      for (std::uint64_t i = 0; i < options_per_thread; ++i) {
        spot[t][i] = 20.0 + 100.0 * rng.next_unit();
        strike[t][i] = 20.0 + 100.0 * rng.next_unit();
      }
    }

    h.parallel(n, [&](std::uint32_t t, auto& sink) {
      for (std::uint64_t i = 0; i < options_per_thread; ++i) {
        sink.read(&spot[t][i], 8);
        sink.read(&strike[t][i], 8);
        const double s = spot[t][i];
        const double k = strike[t][i];
        // CNDF-flavored arithmetic; compute-heavy relative to accesses.
        double x = s / k;
        for (int iter = 0; iter < 8; ++iter) {
          x = 0.5 * (x + (s / k) / x);  // Newton sqrt, stand-in for exp/log
        }
        price[t][i] = (s - k) * 0.4 + x;
        sink.write(&price[t][i], 8);
      }
    });

    Result r;
    for (std::uint32_t t = 0; t < n; ++t) {
      for (std::uint64_t i = 0; i < options_per_thread; i += 17) {
        r.checksum += static_cast<std::uint64_t>(price[t][i] * 100.0);
      }
    }
    return r;
  }
};

}  // namespace

std::unique_ptr<Workload> make_blackscholes() {
  return std::make_unique<Blackscholes>();
}

}  // namespace pred::wl
