// Cache history table: the invalidation-counting automaton of
// Section 2.3.1. One instance exists per tracked physical line, and one per
// tracked *virtual* line during prediction verification (Section 3.4) — the
// rules are identical, which is why this is a standalone value type.
//
// The paper fixes the table at two entries; BoundedHistoryTable generalizes
// the same rules to K entries so the design point can be ablated
// (bench/ablation_history_depth). HistoryTable is the paper's K = 2.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/cacheline.hpp"
#include "common/check.hpp"

namespace pred {

/// Outcome of feeding one access into the table.
enum class HistoryOutcome : std::uint8_t {
  kNoEvent,       ///< access recorded (or ignored), no coherence event
  kInvalidation,  ///< this write invalidated another thread's cached copy
};

template <int K>
class BoundedHistoryTable {
  static_assert(K >= 1 && K <= 64);

 public:
  /// Applies the paper's update rules for one access and reports whether it
  /// counts as a cache invalidation.
  ///
  /// Writes: a write is an invalidation iff any resident entry belongs to a
  /// *different* thread (entries are distinct by thread, so a full table
  /// always qualifies). Every invalidation resets the table to just the
  /// invalidating write.
  ///
  /// Reads: recorded only when they add a *new* thread to a non-full table;
  /// reads never invalidate. The paper leaves the pre-first-write (empty)
  /// state unspecified; we record reads into an empty table so that the
  /// sequence "T2 reads, T1 writes" counts the invalidation of T2's copy,
  /// matching what real coherence hardware does.
  HistoryOutcome access(ThreadId tid, AccessType type) {
    if (type == AccessType::kRead) {
      if (size_ < K && !contains(tid)) {
        entries_[size_++] = Entry{tid, AccessType::kRead};
      }
      return HistoryOutcome::kNoEvent;
    }
    // Write access.
    if (contains_other(tid)) {
      entries_[0] = Entry{tid, AccessType::kWrite};
      size_ = 1;
      return HistoryOutcome::kInvalidation;
    }
    entries_[0] = Entry{tid, AccessType::kWrite};
    size_ = 1;
    return HistoryOutcome::kNoEvent;
  }

  void reset() { size_ = 0; }

  int size() const { return size_; }
  ThreadId thread_at(int i) const { return entries_[i].tid; }
  AccessType type_at(int i) const { return entries_[i].type; }

 private:
  struct Entry {
    ThreadId tid = kInvalidThread;
    AccessType type = AccessType::kRead;
  };

  bool contains(ThreadId tid) const {
    for (int i = 0; i < size_; ++i) {
      if (entries_[i].tid == tid) return true;
    }
    return false;
  }
  bool contains_other(ThreadId tid) const {
    for (int i = 0; i < size_; ++i) {
      if (entries_[i].tid != tid) return true;
    }
    return false;
  }

  Entry entries_[K];
  int size_ = 0;
};

/// The paper's design point: two entries.
using HistoryTable = BoundedHistoryTable<2>;

/// Lock-free K = 2 history table: the same Section 2.3.1 automaton as
/// HistoryTable, with the whole table packed into a single 64-bit word so
/// one CAS applies an access's update rules atomically. The CAS *winner* is
/// the access that performed the transition, so it alone reports the
/// invalidation — concurrent writers serialize through the word without a
/// lock and every coherence event is counted exactly once.
///
/// Encoding (low to high bits):
///   [0..29]   entry 0 thread id        [30] entry 0 type (1 = write)
///   [31..60]  entry 1 thread id        [61] entry 1 type
///   [62..63]  size (0, 1 or 2 resident entries)
/// State 0 is the empty table. Thread ids occupy 30 bits; the runtime hands
/// out dense ids, so ~10^9 threads fit (checked on every access).
///
/// Accesses that do not change the table — reads of a resident thread,
/// reads into a full table, repeated writes by the sole resident writer —
/// retire with a plain load and no RMW at all, which is what makes a
/// single-owner hot line contention-free even while fully sampled.
class PackedHistoryTable {
 public:
  static constexpr ThreadId kMaxThread = (ThreadId{1} << 30) - 1;

  HistoryOutcome access(ThreadId tid, AccessType type) {
    PRED_CHECK(tid <= kMaxThread);
    std::uint64_t cur = state_.load(std::memory_order_relaxed);
    for (;;) {
      std::uint64_t next;
      HistoryOutcome out;
      if (type == AccessType::kRead) {
        // Reads fill empty slots with new threads and never invalidate.
        if (size_of(cur) >= 2 || contains(cur, tid)) {
          return HistoryOutcome::kNoEvent;
        }
        next = append_read(cur, tid);
        out = HistoryOutcome::kNoEvent;
      } else {
        // A write resets the table to just the writer; it invalidates iff
        // another thread's entry was resident.
        next = encode_write(tid);
        out = contains_other(cur, tid) ? HistoryOutcome::kInvalidation
                                       : HistoryOutcome::kNoEvent;
        if (next == cur) return out;  // already exactly {tid, W}: no RMW
      }
      if (state_.compare_exchange_weak(cur, next, std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
        return out;
      }
      // cur reloaded by the failed CAS; re-derive the transition from it.
    }
  }

  void reset() { state_.store(0, std::memory_order_relaxed); }

  /// True iff the table is exactly {tid, W} — the one state in which *any*
  /// further access by `tid` (read or write) is a provable no-op: a repeat
  /// write finds no other resident thread (no invalidation, state
  /// unchanged), a read of a resident thread is ignored. One acquire load,
  /// no RMW; the sync-aware suppression fast path confirms this before
  /// retiring an access, which is what keeps invalidation counts exact
  /// under every interleaving (the load is the access's serialization
  /// point, and at that point the full path would have been a no-op).
  bool owned_write_by(ThreadId tid) const {
    return state_.load(std::memory_order_acquire) == encode_write(tid);
  }

  // Snapshot accessors (each call reads the word once; use raw() to decode
  // one consistent state under concurrency).
  int size() const { return size_of(raw()); }
  ThreadId thread_at(int i) const { return entry_tid(raw(), i); }
  AccessType type_at(int i) const { return entry_type(raw(), i); }
  std::uint64_t raw() const { return state_.load(std::memory_order_acquire); }

  // --- static decode helpers (shared with tests) ---
  static int size_of(std::uint64_t s) { return static_cast<int>(s >> 62); }
  static ThreadId entry_tid(std::uint64_t s, int i) {
    return static_cast<ThreadId>((s >> (i == 0 ? 0 : 31)) & kMaxThread);
  }
  static AccessType entry_type(std::uint64_t s, int i) {
    return ((s >> (i == 0 ? 30 : 61)) & 1) != 0 ? AccessType::kWrite
                                                : AccessType::kRead;
  }

 private:
  static bool contains(std::uint64_t s, ThreadId tid) {
    const int n = size_of(s);
    for (int i = 0; i < n; ++i) {
      if (entry_tid(s, i) == tid) return true;
    }
    return false;
  }
  static bool contains_other(std::uint64_t s, ThreadId tid) {
    const int n = size_of(s);
    for (int i = 0; i < n; ++i) {
      if (entry_tid(s, i) != tid) return true;
    }
    return false;
  }
  static std::uint64_t encode_entry(ThreadId tid, AccessType type, int i) {
    const std::uint64_t e =
        static_cast<std::uint64_t>(tid) |
        (type == AccessType::kWrite ? (std::uint64_t{1} << 30) : 0);
    return e << (i == 0 ? 0 : 31);
  }
  static std::uint64_t encode_write(ThreadId tid) {
    return (std::uint64_t{1} << 62) | encode_entry(tid, AccessType::kWrite, 0);
  }
  static std::uint64_t append_read(std::uint64_t s, ThreadId tid) {
    const int n = size_of(s);
    return (s & ~(std::uint64_t{3} << 62)) |
           (static_cast<std::uint64_t>(n + 1) << 62) |
           encode_entry(tid, AccessType::kRead, n);
  }

  std::atomic<std::uint64_t> state_{0};
};

}  // namespace pred
