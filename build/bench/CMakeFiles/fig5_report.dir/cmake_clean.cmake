file(REMOVE_RECURSE
  "CMakeFiles/fig5_report.dir/fig5_report.cpp.o"
  "CMakeFiles/fig5_report.dir/fig5_report.cpp.o.d"
  "fig5_report"
  "fig5_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
