#include "instrument/ir_parser.hpp"

#include <cctype>
#include <sstream>

namespace pred::ir {

namespace {

/// Cursor over one line of text with tiny combinators. Tracks the furthest
/// position any match attempt reached, so a failed parse can report the
/// column where progress stopped rather than just the line.
class LineScanner {
 public:
  explicit LineScanner(const std::string& line) : s_(line) {}

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(
                                   s_[pos_]))) {
      ++pos_;
    }
    if (pos_ > best_) best_ = pos_;
  }

  /// 1-based column of the furthest token boundary reached — where the
  /// first unparseable character sits when the line failed to parse.
  std::size_t column() const { return best_ + 1; }

  bool eat(const std::string& token) {
    skip_ws();
    if (s_.compare(pos_, token.size(), token) == 0) {
      pos_ += token.size();
      if (pos_ > best_) best_ = pos_;
      return true;
    }
    return false;
  }

  bool peek(const std::string& token) {
    skip_ws();
    return s_.compare(pos_, token.size(), token) == 0;
  }

  bool reg(Reg* out) {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != 'r') return false;
    ++pos_;
    return number_u32(out);
  }

  bool number_u32(std::uint32_t* out) {
    std::int64_t v = 0;
    if (!number_i64(&v) || v < 0) return false;
    *out = static_cast<std::uint32_t>(v);
    return true;
  }

  bool number_i64(std::int64_t* out) {
    skip_ws();
    std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    std::size_t digits = 0;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
      ++digits;
    }
    if (digits == 0) {
      pos_ = start;
      return false;
    }
    *out = std::stoll(s_.substr(start, pos_ - start));
    if (pos_ > best_) best_ = pos_;
    return true;
  }

  bool identifier(std::string* out) {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '_' || s_[pos_] == '.' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    *out = s_.substr(start, pos_ - start);
    if (pos_ > best_) best_ = pos_;
    return true;
  }

  bool at_end() {
    skip_ws();
    return pos_ >= s_.size() || s_[pos_] == '#';
  }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;
  std::size_t best_ = 0;  ///< furthest position reached (column reporting)
};

/// Parses "[rA]" or "[rA + OFF]" (also accepts negative offsets).
bool parse_address(LineScanner& sc, Reg* base, std::int64_t* offset) {
  *offset = 0;
  if (!sc.eat("[")) return false;
  if (!sc.reg(base)) return false;
  if (sc.eat("+")) {
    if (!sc.number_i64(offset)) return false;
  } else if (sc.peek("-")) {
    if (!sc.number_i64(offset)) return false;
  }
  return sc.eat("]");
}

/// "load.SZ" / "store.SZ" suffix.
bool parse_size_suffix(LineScanner& sc, std::uint32_t* size) {
  if (!sc.eat(".")) return false;
  return sc.number_u32(size) && *size >= 1 && *size <= 8;
}

bool parse_block_ref(LineScanner& sc, std::uint32_t* out) {
  if (!sc.eat("bb")) return false;
  return sc.number_u32(out);
}

/// Optional " +Nr +Nw" compensation suffix after a load or store.
bool parse_extras(LineScanner& sc, Instr* out) {
  while (sc.peek("+")) {
    sc.eat("+");
    std::uint32_t n = 0;
    if (!sc.number_u32(&n)) return false;
    if (sc.eat("r")) {
      out->extra_reads += n;
    } else if (sc.eat("w")) {
      out->extra_writes += n;
    } else {
      return false;
    }
  }
  return true;
}

/// Parses the right-hand side of "rD = ..." forms.
bool parse_assignment_rhs(LineScanner& sc, Reg dst, Instr* out) {
  out->dst = dst;
  if (sc.eat("const")) {
    out->op = Opcode::kConst;
    return sc.number_i64(&out->imm);
  }
  if (sc.eat("load")) {
    out->op = Opcode::kLoad;
    return parse_size_suffix(sc, &out->size) &&
           parse_address(sc, &out->a, &out->imm) && parse_extras(sc, out);
  }
  if (sc.eat("call")) {
    out->op = Opcode::kCall;
    if (!sc.eat("@")) return false;
    std::uint32_t callee = 0;
    if (!sc.number_u32(&callee)) return false;
    out->imm = callee;
    if (!sc.eat("(") || !sc.reg(&out->a) || !sc.eat("..")) return false;
    std::uint32_t nargs = 0;
    if (!sc.number_u32(&nargs)) return false;
    out->b = nargs;
    return sc.eat("args") && sc.eat(")");
  }
  // Binary or move: "rA" optionally followed by an operator and "rB".
  if (!sc.reg(&out->a)) return false;
  struct OpToken {
    const char* token;
    Opcode op;
  };
  // Two-character operator first so '==' is not parsed as two moves.
  static const OpToken kOps[] = {
      {"==", Opcode::kCmpEq}, {"+", Opcode::kAdd}, {"-", Opcode::kSub},
      {"*", Opcode::kMul},    {"/", Opcode::kDiv}, {"%", Opcode::kRem},
      {"<", Opcode::kCmpLt},
  };
  for (const OpToken& t : kOps) {
    if (sc.eat(t.token)) {
      out->op = t.op;
      return sc.reg(&out->b);
    }
  }
  out->op = Opcode::kMove;
  return true;
}

bool parse_instruction(LineScanner& sc, Instr* out) {
  out->instrumented = sc.eat("*");

  if (sc.eat("store")) {
    out->op = Opcode::kStore;
    return parse_size_suffix(sc, &out->size) &&
           parse_address(sc, &out->a, &out->imm) && sc.eat(",") &&
           sc.reg(&out->b) && parse_extras(sc, out);
  }
  if (sc.eat("report")) {
    // "report.SZ [rA (+ OFF)?] x rB, (read|write)"
    out->op = Opcode::kReport;
    if (!parse_size_suffix(sc, &out->size) ||
        !parse_address(sc, &out->a, &out->imm) || !sc.eat("x") ||
        !sc.reg(&out->b) || !sc.eat(",")) {
      return false;
    }
    if (sc.eat("write")) {
      out->target = 1;
    } else if (sc.eat("read")) {
      out->target = 0;
    } else {
      return false;
    }
    return true;
  }
  if (sc.eat("memset")) {
    out->op = Opcode::kMemSet;
    Reg addr = 0;
    std::int64_t zero_off = 0;
    return parse_address(sc, &addr, &zero_off) && (out->a = addr, true) &&
           sc.eat(",") && sc.number_i64(&out->imm) && sc.eat(",") &&
           sc.eat("len") && sc.reg(&out->b);
  }
  if (sc.eat("memcpy")) {
    out->op = Opcode::kMemCopy;
    std::int64_t zero_off = 0;
    Reg dst_addr = 0;
    Reg src_addr = 0;
    if (!parse_address(sc, &dst_addr, &zero_off)) return false;
    if (!sc.eat("<-")) return false;
    if (!parse_address(sc, &src_addr, &zero_off)) return false;
    out->a = dst_addr;
    out->b = src_addr;
    return sc.eat(",") && sc.eat("len") && sc.reg(&out->dst);
  }
  if (sc.eat("br")) {
    // "br bbK" or "br rA ? bbK : bbJ".
    if (sc.peek("bb")) {
      out->op = Opcode::kBr;
      return parse_block_ref(sc, &out->target);
    }
    out->op = Opcode::kCondBr;
    return sc.reg(&out->a) && sc.eat("?") &&
           parse_block_ref(sc, &out->target) && sc.eat(":") &&
           parse_block_ref(sc, &out->target2);
  }
  if (sc.eat("ret")) {
    out->op = Opcode::kRet;
    return sc.reg(&out->a);
  }
  if (sc.eat("acquire")) {
    out->op = Opcode::kAcquire;
    return true;
  }
  if (sc.eat("release")) {
    out->op = Opcode::kRelease;
    return true;
  }
  if (sc.eat("handoff")) {
    // "handoff [rA (+ OFF)?], len rB"
    out->op = Opcode::kHandoff;
    return parse_address(sc, &out->a, &out->imm) && sc.eat(",") &&
           sc.eat("len") && sc.reg(&out->b);
  }
  // Assignment form: "rD = ...".
  Reg dst = 0;
  if (!sc.reg(&dst)) return false;
  if (!sc.eat("=")) return false;
  return parse_assignment_rhs(sc, dst, out);
}

}  // namespace

ParseResult parse_module(const std::string& text) {
  ParseResult result;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  Function* fn = nullptr;
  BasicBlock* block = nullptr;

  // Columns point at where the scanner stopped making progress (1-based).
  auto fail = [&](const std::string& msg, std::size_t col) {
    result.ok = false;
    result.error = "line " + std::to_string(line_no) + ", col " +
                   std::to_string(col) + ": " + msg;
    return result;
  };

  while (std::getline(in, line)) {
    ++line_no;
    LineScanner sc(line);
    if (sc.at_end()) continue;

    if (sc.eat("func")) {
      Function f;
      std::string name;
      std::uint32_t args = 0;
      std::uint32_t regs = 0;
      if (!sc.identifier(&name) || !sc.eat("(") || !sc.number_u32(&args) ||
          !sc.eat("args") || !sc.eat(",") || !sc.number_u32(&regs) ||
          !sc.eat("regs") || !sc.eat(")") || !sc.eat(":")) {
        return fail("malformed function header", sc.column());
      }
      f.name = std::move(name);
      f.num_args = args;
      f.num_regs = regs;
      result.module.functions.push_back(std::move(f));
      fn = &result.module.functions.back();
      block = nullptr;
      continue;
    }

    if (sc.peek("bb")) {
      // Could be a block label "bbK:" — try it; otherwise fall through to
      // instruction parsing (no instruction starts with "bb").
      std::uint32_t index = 0;
      LineScanner label(line);
      if (label.eat("bb") && label.number_u32(&index) && label.eat(":") &&
          label.at_end()) {
        if (fn == nullptr) {
          return fail("block label outside a function", label.column());
        }
        if (index != fn->blocks.size()) {
          return fail("block labels must be dense and in order",
                      label.column());
        }
        fn->blocks.emplace_back();
        block = &fn->blocks.back();
        continue;
      }
    }

    if (fn == nullptr) return fail("instruction outside a function", 1);
    if (block == nullptr) return fail("instruction outside a block", 1);
    Instr instr;
    LineScanner body(line);
    if (!parse_instruction(body, &instr) || !body.at_end()) {
      return fail("cannot parse instruction: '" + line + "'", body.column());
    }
    block->instrs.push_back(instr);
  }

  const std::string err = verify(result.module);
  if (!err.empty()) {
    result.ok = false;
    result.error = "verification: " + err;
    return result;
  }
  result.ok = true;
  return result;
}

}  // namespace pred::ir
