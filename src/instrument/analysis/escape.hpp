// Thread-escape analysis: proves that the memory behind a pointer argument
// is confined to the invoking thread's private heap span, so accesses to it
// can never participate in a cross-thread cache-line invalidation (§2.3.1
// needs two threads on one line; per-thread spans are line-aligned and
// single-owner by construction, see alloc/thread_heap.hpp) — and therefore
// may skip instrumentation entirely without changing the detector report.
//
// The analysis has two halves:
//
//   * a HARNESS CONTRACT (EscapeBindings): the code that executes the module
//     declares every function it invokes directly (a "root") and, per
//     pointer argument, promises — verified against the allocator's
//     OwnershipMap at binding time — that every invocation passes an address
//     inside a span owned by the invoking thread, with a known number of
//     bytes of headroom;
//
//   * a WHOLE-MODULE PROPAGATION (analyze_escape): a greatest-fixpoint over
//     the call graph computes, per (function, argument), the headroom that
//     holds across ALL ways the function is ever entered — its root bindings
//     meet every call site, where a call site contributes only if it passes
//     a stable confined argument of its caller plus a non-negative constant
//     (headroom shrinks by that constant). An argument register that is ever
//     reassigned, an unanalyzable passed value, or an unbound root
//     invocation forces "shared".
//
// The pass then drops instrumentation from accesses whose value-numbered
// address is (stable confined argument + constant offset) with the whole
// access inside the proven headroom. tests/test_interprocedural.cpp checks
// soundness against an execution oracle: no address ever touched by two
// threads may be classified thread-private.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "alloc/ownership_map.hpp"
#include "instrument/analysis/callgraph.hpp"
#include "instrument/ir.hpp"

namespace pred::ir {

/// The harness contract for the functions it invokes directly.
class EscapeBindings {
 public:
  /// Declares `function` as invoked directly by the harness. Arguments
  /// without a successful bind() are treated as shared. Every function the
  /// harness runs MUST be declared, or the analysis would wrongly treat its
  /// unbound invocations as nonexistent.
  void declare_root(const std::string& function);

  /// Promises that an invocation of `function` on logical thread `tid`
  /// passes `addr` in argument `arg`, and verifies the promise against the
  /// ownership map: `addr` must lie in a span owned by `tid`. On success the
  /// argument's proven headroom becomes the min over all binds (span end
  /// minus addr). On failure (unowned address or owner mismatch) the
  /// argument is poisoned to shared for good, and false is returned.
  bool bind(const OwnershipMap& ownership, const std::string& function,
            std::uint32_t arg, Address addr, pred::ThreadId tid);

  /// Declares (function, arg) HANDOFF-MANAGED: invocations may legitimately
  /// pass spans owned by *different* threads over time because ownership
  /// migrates through kHandoff sync points, so an owner-mismatched bind()
  /// records headroom instead of poisoning. A transferable argument is
  /// never confined to one thread — bound_len() stays 0 and escape skipping
  /// never applies — but its proven headroom is reported separately through
  /// transfer_len() and propagated by analyze_escape() as a transfer fact.
  /// (An address outside any owned span still poisons: that is a broken
  /// harness promise, not a handoff.)
  void mark_transferable(const std::string& function, std::uint32_t arg);

  bool is_root(const std::string& function) const;
  /// Proven headroom of (function, arg) in bytes; 0 = shared/unbound.
  std::uint64_t bound_len(const std::string& function,
                          std::uint32_t arg) const;
  /// Proven headroom of a transferable (function, arg) across all binds
  /// regardless of the owning thread; 0 = not transferable/unbound/poisoned.
  std::uint64_t transfer_len(const std::string& function,
                             std::uint32_t arg) const;

 private:
  struct ArgBinding {
    std::uint64_t len = 0;
    bool bound = false;        ///< at least one successful bind()
    bool poisoned = false;     ///< a bind() failed: shared forever
    bool transferable = false; ///< ownership migrates via handoff syncs
  };
  std::map<std::string, std::map<std::uint32_t, ArgBinding>> roots_;
};

/// Result of the whole-module propagation.
struct EscapeFacts {
  /// Per function, per argument: proven confined headroom in bytes
  /// (0 = may be shared — never skip).
  std::vector<std::vector<std::uint64_t>> confined_len;
  /// Per function, per argument: proven handoff-managed headroom in bytes —
  /// the pointee is reached by multiple threads but only across kHandoff
  /// ownership transfers (0 = no such promise). Propagated through call
  /// sites exactly like confined_len; never merged into it, because a
  /// transfer fact licenses sync-scoped reasoning, not escape skipping.
  std::vector<std::vector<std::uint64_t>> transfer_len;
  std::uint64_t confined_args = 0;  ///< (function, arg) pairs proven private
  std::uint64_t transfer_args = 0;  ///< (function, arg) pairs handoff-managed
};

EscapeFacts analyze_escape(const Module& module, const CallGraph& cg,
                           const EscapeBindings& bindings);

/// Per argument index: true when the register is never reassigned anywhere
/// in the function, so a value-numbered `kEntryReg` of it — in any block —
/// is the argument itself. Shared by the propagation above and the pass's
/// skip application.
std::vector<bool> stable_args(const Function& fn);

/// One access the pass dropped as provably thread-private — enough for an
/// oracle to reconstruct the concrete address of every skipped delivery
/// given the arguments of an invocation.
struct EscapeSkip {
  std::string function;
  std::uint32_t arg = 0;     ///< argument the address is relative to
  std::int64_t offset = 0;
  std::uint32_t width = 0;
  bool is_write = false;
};

}  // namespace pred::ir
