// PARSEC fluidanimate (modeled): no false sharing. Threads own disjoint,
// line-aligned grid partitions; they *read* ghost cells of neighboring
// partitions (read-read sharing never invalidates) and write only their own
// cells.
#include "common/check.hpp"
#include "common/prng.hpp"
#include "workloads/workload.hpp"

namespace pred::wl {
namespace {

class FluidanimateLike final : public WorkloadImpl<FluidanimateLike> {
 public:
  const Traits& traits() const override {
    static const Traits t{
        .name = "fluidanimate", .suite = "parsec", .sites = {}};
    return t;
  }

  template <class H>
  static Result kernel(H& h, const Params& p) {
    const std::uint32_t n = p.threads;
    const std::uint64_t cells_per_thread = 512;  // 64 lines each
    const std::uint64_t steps = 12 * p.scale;
    const std::uint64_t total = cells_per_thread * n;

    // One shared grid; partitions are whole-line multiples, so writes never
    // cross partitions (the correct layout fluidanimate uses).
    auto* grid = static_cast<std::int64_t*>(
        h.alloc(total * 8, {"fluidanimate/pthreads.cpp:grid"}));
    PRED_CHECK(grid != nullptr);
    Xorshift64 rng(p.seed);
    for (std::uint64_t i = 0; i < total; ++i) {
      grid[i] = static_cast<std::int64_t>(rng.next_below(1000));
    }

    h.parallel(n, [&](std::uint32_t t, auto& sink) {
      const std::uint64_t begin = t * cells_per_thread;
      const std::uint64_t end = begin + cells_per_thread;
      for (std::uint64_t s = 0; s < steps; ++s) {
        for (std::uint64_t i = begin; i < end; ++i) {
          // Neighbor reads may reach into adjacent partitions (ghost
          // cells), but only as reads.
          const std::uint64_t left = i == 0 ? i : i - 1;
          const std::uint64_t right = i + 1 == total ? i : i + 1;
          sink.read(&grid[left], 8);
          sink.read(&grid[right], 8);
          sink.read(&grid[i], 8);
          grid[i] = (grid[left] + grid[right] + grid[i] * 2) / 4;
          sink.write(&grid[i], 8);
        }
      }
    });

    Result r;
    for (std::uint64_t i = 0; i < total; i += 11) {
      r.checksum += static_cast<std::uint64_t>(grid[i]);
    }
    return r;
  }
};

}  // namespace

std::unique_ptr<Workload> make_fluidanimate_like() {
  return std::make_unique<FluidanimateLike>();
}

}  // namespace pred::wl
