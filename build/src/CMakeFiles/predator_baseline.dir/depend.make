# Empty dependencies file for predator_baseline.
# This may be replaced when dependencies are built.
