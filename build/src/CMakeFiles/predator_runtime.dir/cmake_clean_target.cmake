file(REMOVE_RECURSE
  "libpredator_runtime.a"
)
