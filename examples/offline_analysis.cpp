// Offline analysis demo: record an execution once, analyze it many ways.
//
// Captures linear_regression's per-thread access traces, saves them to a
// binary trace file, and then — without re-running the program — analyzes
// the same file under three configurations: full PREDATOR, PREDATOR-NP
// (prediction off), and a write-only SHERIFF-style pass. This is the
// workflow the trace substrate enables on top of the paper's pipeline.
//
// Build & run:  ./build/examples/offline_analysis [trace-file]
#include <cstdio>

#include "baseline/sheriff_like.hpp"
#include "trace/trace_io.hpp"
#include "workloads/workload.hpp"

using namespace pred;

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/predator_lreg_trace.bin";

  SessionOptions opts;
  opts.heap_size = 32 * 1024 * 1024;

  // --- record once -------------------------------------------------------
  // (the recorder session stays alive: traces reference its heap)
  Session recorder(opts);
  const wl::Workload* lreg = wl::find_workload("linear_regression");
  if (lreg == nullptr) return 1;
  wl::Params params;
  params.threads = 8;
  params.offset = 0;  // the clean placement: nothing observable
  auto traces = lreg->capture(recorder, params);
  if (!save_traces_file(path, traces)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("recorded %zu events from %zu threads -> %s\n\n",
              total_events(traces), traces.size(), path.c_str());

  // --- analyze many ------------------------------------------------------
  std::vector<ThreadTrace> loaded;
  if (!load_traces_file(path, &loaded)) return 1;

  // 1) Full PREDATOR.
  wl::replay_into_session(recorder, loaded);
  bool only_predicted = false;
  const bool full = wl::report_mentions_site(
      recorder.report(), recorder.runtime().callsites(),
      lreg->traits().sites[0].where, &only_predicted);
  std::printf("PREDATOR            : %s%s\n", full ? "FOUND" : "missed",
              only_predicted ? " (prediction-only, as the paper reports)"
                             : "");

  // 2) PREDATOR-NP over the same file.
  SessionOptions np = opts;
  np.runtime.prediction_enabled = false;
  Session np_session(np);
  // Track the recorder's heap region so addresses resolve.
  np_session.runtime().register_region(
      recorder.allocator().region().base(),
      recorder.allocator().region().size());
  wl::replay_into_session(np_session, loaded);
  std::size_t np_findings = 0;
  for (const auto& f : build_report(np_session.runtime()).findings) {
    np_findings += f.is_false_sharing();
  }
  std::printf("PREDATOR-NP         : %zu false-sharing findings "
              "(latent bug invisible)\n", np_findings);

  // 3) SHERIFF-style write-write observed-only pass.
  SheriffLikeDetector sheriff;
  for (std::size_t t = 0; t < loaded.size(); ++t) {
    for (const TraceEvent& ev : loaded[t]) {
      sheriff.on_access(ev.addr, ev.type, static_cast<ThreadId>(t));
    }
  }
  std::size_t sheriff_fs = 0;
  for (const auto& line : sheriff.report(100)) {
    sheriff_fs += line.write_write_false_sharing;
  }
  std::printf("SHERIFF-style       : %zu write-write findings\n", sheriff_fs);

  std::printf("\nOne recording, three verdicts — only the predictive "
              "analysis exposes the latent bug.\n");
  return 0;
}
