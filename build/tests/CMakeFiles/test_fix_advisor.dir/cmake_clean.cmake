file(REMOVE_RECURSE
  "CMakeFiles/test_fix_advisor.dir/test_fix_advisor.cpp.o"
  "CMakeFiles/test_fix_advisor.dir/test_fix_advisor.cpp.o.d"
  "test_fix_advisor"
  "test_fix_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fix_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
