// Maps tracked addresses back to the program object they belong to, so a hot
// cache line can be reported as "heap object allocated at <callsite>" or
// "global <name>" (Section 2.3). The allocator registers heap objects here;
// workloads register their falsely-shareable globals directly.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "common/cacheline.hpp"
#include "common/spinlock.hpp"
#include "runtime/callsite.hpp"

namespace pred {

struct ObjectInfo {
  Address start = 0;
  std::size_t size = 0;
  CallsiteId callsite = kNoCallsite;
  std::string name;        ///< global variable name; empty for heap objects
  bool is_global = false;
  bool live = true;        ///< false once freed (kept if flagged, see below)
  std::uint64_t alloc_seq = 0;  ///< allocation order, for stable report sorting
};

class ObjectRegistry {
 public:
  void add(ObjectInfo info) {
    std::lock_guard<Spinlock> g(lock_);
    info.alloc_seq = next_seq_++;
    objects_[info.start] = std::move(info);
  }

  /// Removes the record for the object starting at `start` (used when a
  /// freed object's memory is recycled; objects involved in false sharing
  /// are never removed — Section 2.3.2's memory-reuse rule).
  void remove(Address start) {
    std::lock_guard<Spinlock> g(lock_);
    objects_.erase(start);
  }

  /// Marks the object dead but keeps its record for reporting.
  void mark_dead(Address start) {
    std::lock_guard<Spinlock> g(lock_);
    auto it = objects_.find(start);
    if (it != objects_.end()) it->second.live = false;
  }

  /// Returns a copy of the object record containing `addr`, if any.
  std::optional<ObjectInfo> find(Address addr) const {
    std::lock_guard<Spinlock> g(lock_);
    auto it = objects_.upper_bound(addr);
    if (it == objects_.begin()) return std::nullopt;
    --it;
    const ObjectInfo& o = it->second;
    if (addr >= o.start && addr < o.start + o.size) return o;
    return std::nullopt;
  }

  template <typename F>
  void for_each(F&& fn) const {
    std::lock_guard<Spinlock> g(lock_);
    for (const auto& [start, info] : objects_) fn(info);
  }

  std::size_t size() const {
    std::lock_guard<Spinlock> g(lock_);
    return objects_.size();
  }

 private:
  mutable Spinlock lock_;
  std::map<Address, ObjectInfo> objects_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace pred
