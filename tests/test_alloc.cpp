// Tests for the allocator substrate: size classes, the fixed heap region,
// per-thread heaps (Hoard-style no-shared-line invariant), callsite
// registration, and the Section 2.3.2 memory-reuse discipline.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>

#include "alloc/predator_allocator.hpp"
#include "alloc/size_class.hpp"

namespace pred {
namespace {

constexpr auto W = AccessType::kWrite;

TEST(SizeClasses, RoundTrip) {
  for (std::size_t size = 1; size <= SizeClasses::kMaxSize; ++size) {
    const std::size_t cls = SizeClasses::index_for(size);
    ASSERT_LT(cls, SizeClasses::kNumClasses);
    EXPECT_GE(SizeClasses::size_of(cls), size);
    if (cls > 0) {
      EXPECT_LT(SizeClasses::size_of(cls - 1), size);
    }
  }
}

TEST(HeapRegion, SpansAreLineAlignedAndDisjoint) {
  HeapRegion region(1 << 20);
  std::set<Address> starts;
  Address prev_end = 0;
  for (int i = 0; i < 100; ++i) {
    const Address a = region.allocate_span(100);
    ASSERT_NE(a, 0u);
    EXPECT_EQ(a % 64, 0u);
    EXPECT_GE(a, prev_end);
    prev_end = a + 128;  // 100 rounds to 128
    EXPECT_TRUE(starts.insert(a).second);
    EXPECT_TRUE(region.contains(a));
  }
}

TEST(HeapRegion, ExhaustionReturnsZero) {
  HeapRegion region(64 * 1024);
  Address a = 0;
  int spans = 0;
  while ((a = region.allocate_span(4096)) != 0) ++spans;
  EXPECT_GT(spans, 10);
  EXPECT_LE(spans, 16);
  EXPECT_EQ(region.allocate_span(4096), 0u);
}

struct AllocFixture : ::testing::Test {
  static RuntimeConfig config() {
    RuntimeConfig cfg;
    cfg.tracking_threshold = 2;
    cfg.report_invalidation_threshold = 10;
    return cfg;
  }
  AllocFixture() : rt(config()), alloc(rt, 8 * 1024 * 1024) {}
  Runtime rt;
  PredatorAllocator alloc;
};

TEST_F(AllocFixture, AllocationRegistersObjectWithCallsite) {
  void* p = alloc.allocate(200, {"file.c:10", "main.c:3"});
  ASSERT_NE(p, nullptr);
  auto obj = rt.objects().find(reinterpret_cast<Address>(p));
  ASSERT_TRUE(obj.has_value());
  EXPECT_EQ(obj->size, 200u);
  EXPECT_FALSE(obj->is_global);
  const auto& cs = rt.callsites().get(obj->callsite);
  ASSERT_EQ(cs.frames.size(), 2u);
  EXPECT_EQ(cs.frames[0], "file.c:10");
}

TEST_F(AllocFixture, AllocationsLandInTrackedRegion) {
  void* p = alloc.allocate(64, {"a.c:1"});
  EXPECT_EQ(rt.find_region(reinterpret_cast<Address>(p)), &alloc.shadow());
}

TEST_F(AllocFixture, BacktraceCaptureProducesFrames) {
  void* p = alloc.allocate_with_backtrace(64);
  ASSERT_NE(p, nullptr);
  auto obj = rt.objects().find(reinterpret_cast<Address>(p));
  ASSERT_TRUE(obj.has_value());
  EXPECT_NE(obj->callsite, kNoCallsite);
}

TEST_F(AllocFixture, DifferentThreadsNeverShareALine) {
  // The Hoard-style invariant of Section 2.3.2: concurrent small
  // allocations from different threads must land on disjoint cache lines.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::vector<Address>> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        void* p = alloc.allocate(24, {"worker.c:1"});
        ASSERT_NE(p, nullptr);
        per_thread[t].push_back(reinterpret_cast<Address>(p));
      }
    });
  }
  for (auto& th : threads) th.join();

  std::map<std::size_t, int> line_owner;
  for (int t = 0; t < kThreads; ++t) {
    for (Address a : per_thread[t]) {
      const std::size_t line = a / 64;
      auto [it, inserted] = line_owner.try_emplace(line, t);
      EXPECT_EQ(it->second, t) << "line " << line << " shared by threads "
                               << it->second << " and " << t;
    }
  }
}

TEST_F(AllocFixture, CleanObjectsAreRecycled) {
  void* p = alloc.allocate(64, {"clean.c:1"});
  const Address a = reinterpret_cast<Address>(p);
  alloc.deallocate(p);
  EXPECT_FALSE(rt.objects().find(a).has_value());
  // Same-thread realloc of the same class reuses the block.
  void* q = alloc.allocate(64, {"clean.c:2"});
  EXPECT_EQ(q, p);
}

TEST_F(AllocFixture, FalselySharedObjectsAreNeverRecycled) {
  void* p = alloc.allocate(64, {"dirty.c:1"});
  const Address a = reinterpret_cast<Address>(p);
  // Generate invalidations on the object's line.
  for (int i = 0; i < 50; ++i) {
    rt.handle_access(a, W, 0);
    rt.handle_access(a + 8, W, 1);
  }
  ASSERT_TRUE(alloc.object_has_invalidations(a, 64));
  alloc.deallocate(p);
  // The record survives (dead) for reporting...
  auto obj = rt.objects().find(a);
  ASSERT_TRUE(obj.has_value());
  EXPECT_FALSE(obj->live);
  // ...and the memory is not handed out again.
  void* q = alloc.allocate(64, {"dirty.c:2"});
  EXPECT_NE(q, p);
}

TEST_F(AllocFixture, ReuseResetsLineRecordingState) {
  void* p = alloc.allocate(64, {"reset.c:1"});
  const Address a = reinterpret_cast<Address>(p);
  // Single-thread traffic: hot but invalidation-free.
  for (int i = 0; i < 100; ++i) rt.handle_access(a, W, 3);
  CacheTracker* t = alloc.shadow().tracker(alloc.shadow().line_index(a));
  ASSERT_NE(t, nullptr);
  ASSERT_GT(t->sampled_accesses(), 0u);
  alloc.deallocate(p);
  // The word histogram was wiped: the next tenant starts clean (prevents
  // the "pseudo false sharing" false positives of Section 2.3.2).
  EXPECT_EQ(t->sampled_accesses(), 0u);
  for (const auto& w : t->words_snapshot()) EXPECT_FALSE(w.touched());
}

TEST_F(AllocFixture, CrossThreadFreeReturnsBlockToOwnerHeap) {
  void* p = alloc.allocate(32, {"xthread.c:1"});
  std::thread other([&] { alloc.deallocate(p); });
  other.join();
  // The block must be reusable by *this* thread's next allocation of the
  // class (it went back to the owning heap, not the freeing thread's).
  void* q = alloc.allocate(32, {"xthread.c:2"});
  EXPECT_EQ(q, p);
}

TEST_F(AllocFixture, LiveBytesTrackAllocations) {
  EXPECT_EQ(alloc.live_bytes(), 0u);
  void* p = alloc.allocate(1000, {"bytes.c:1"});
  EXPECT_EQ(alloc.live_bytes(), 1000u);
  alloc.deallocate(p);
  EXPECT_EQ(alloc.live_bytes(), 0u);
}

TEST_F(AllocFixture, LargeAllocationsGetDedicatedSpans) {
  void* p = alloc.allocate(100 * 1024, {"large.c:1"});
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<Address>(p) % 64, 0u);
  auto obj = rt.objects().find(reinterpret_cast<Address>(p) + 50000);
  ASSERT_TRUE(obj.has_value());
  EXPECT_EQ(obj->size, 100u * 1024);
}

TEST_F(AllocFixture, NullAndForeignFreesAreIgnored) {
  alloc.deallocate(nullptr);
  int local = 0;
  alloc.deallocate(&local);  // not from this heap: ignored
}

}  // namespace
}  // namespace pred
