# Chain-merging demo: a diamond whose join (bb3) and tail (bb4) form a
# linear block chain. Value numbering sees through the alias `r4 = r0`, so
# the tail's store and load of [r0 + 16] fold into the join's load as
# +1r/+1w compensation extras (2 chain merged in the analyze ledger).
#
#   r0 = buffer
func stencil(1 args, 6 regs):
bb0:
  r1 = const 2
  r2 = load.8 [r0 + 64]
  r3 = r2 < r1
  br r3 ? bb1 : bb2
bb1:
  store.8 [r0], r1
  br bb3
bb2:
  store.8 [r0 + 8], r1
  br bb3
bb3:
  r5 = load.8 [r0 + 16]
  br bb4
bb4:
  r4 = r0
  store.8 [r4 + 16], r5
  r5 = load.8 [r4 + 16]
  ret r5
