# Empty dependencies file for test_cache_tracker.
# This may be replaced when dependencies are built.
