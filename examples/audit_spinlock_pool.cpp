// Library audit demo: pinpoint false sharing inside a lock pool.
//
// Models the Boost spinlock_pool problem from Section 4.1.2: 41 four-byte
// spinlocks packed into ~3 cache lines, hammered by all threads. The report
// shows, word by word, which thread owns which lock slot — the information
// a developer needs to see that padding each lock to a line is the fix.
// The example then re-runs the padded pool to confirm the report is clean.
//
// Build & run:  ./build/examples/audit_spinlock_pool
#include <cstdio>

#include "workloads/workload.hpp"

using namespace pred;

namespace {

Report audit(bool padded, std::string* text) {
  SessionOptions opts;
  opts.heap_size = 32 * 1024 * 1024;
  Session session(opts);
  const wl::Workload* boost = wl::find_workload("boost");
  wl::Params p;
  p.threads = 8;
  p.fix_mask = padded ? ~0u : 0u;
  boost->run_replay(session, p);
  *text = session.report_text();
  return session.report();
}

}  // namespace

int main() {
  if (wl::find_workload("boost") == nullptr) return 1;

  std::printf("=== auditing the packed spinlock pool (4-byte locks) ===\n\n");
  std::string text;
  const Report buggy = audit(/*padded=*/false, &text);
  std::printf("%s\n", text.c_str());
  std::printf("false-sharing findings: %zu\n\n",
              wl::false_sharing_findings(buggy));

  std::printf("=== after padding each lock to its own cache line ===\n\n");
  const Report fixed = audit(/*padded=*/true, &text);
  std::size_t observed = 0;
  for (const auto& f : fixed.findings) {
    observed += f.observed && f.is_false_sharing();
  }
  std::printf("observed false-sharing findings: %zu (was %zu)\n", observed,
              wl::false_sharing_findings(buggy));
  if (observed == 0) {
    std::printf(
        "\nThe padded pool no longer false-shares on this hardware.\n"
        "(Any remaining PREDICTED findings warn about still-larger cache\n"
        "lines — the paper's Figure 3(b) scenario.)\n");
  }
  return 0;
}
