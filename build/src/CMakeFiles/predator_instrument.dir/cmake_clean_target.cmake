file(REMOVE_RECURSE
  "libpredator_instrument.a"
)
