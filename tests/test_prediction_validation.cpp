// Validation of the core contribution: PREDATOR's *predictions come true*.
//
// For each prediction kind, a clean run's predicted finding is checked
// against a ground-truth run of the same program under the predicted
// environment:
//   * double-line predictions (Figure 3b)  -> re-detect with the geometry's
//     line size doubled: the latent finding must become an OBSERVED one;
//   * shifted-placement predictions (3c)   -> re-run with the object placed
//     at the predicted-bad offset: observed again;
// and symmetric negative checks: where nothing was predicted, the altered
// environment must stay clean.
#include <gtest/gtest.h>

#include "sim/numa_cache_sim.hpp"
#include "workloads/workload.hpp"

namespace pred::wl {
namespace {

SessionOptions options(std::size_t line_size = 64) {
  SessionOptions o;
  o.heap_size = 32 * 1024 * 1024;
  o.runtime.geometry.line_size = line_size;
  return o;
}

bool observed_fs(const Report& rep) {
  for (const auto& f : rep.findings) {
    if (f.observed && f.is_false_sharing()) return true;
  }
  return false;
}

bool predicted_only_fs(const Report& rep) {
  bool any = false;
  for (const auto& f : rep.findings) {
    if (!f.is_false_sharing()) continue;
    if (f.observed) return false;
    any |= f.predicted;
  }
  return any;
}

TEST(PredictionComesTrue, DoubleLineSizePredictionVerifiedOn128ByteLines) {
  const Workload* lreg = find_workload("linear_regression");
  ASSERT_NE(lreg, nullptr);
  Params p;
  p.threads = 8;
  p.offset = 0;  // clean on 64-byte lines

  // Step 1: on 64-byte lines, the problem is prediction-only, and at least
  // one verified virtual line is a double-line candidate.
  Session host64(options(64));
  const auto traces = lreg->capture(host64, p);
  replay_into_session(host64, traces);
  ASSERT_TRUE(predicted_only_fs(host64.report())) << host64.report_text();
  bool double_line_predicted = false;
  for (const auto& f : host64.report().findings) {
    for (const auto& vl : f.predictions) {
      double_line_predicted |=
          vl.kind == VirtualLineTracker::Kind::kDoubleLine;
    }
  }
  ASSERT_TRUE(double_line_predicted);

  // Step 2: the *same traces* detected under 128-byte lines — the paper's
  // hypothetical larger-line machine. The prediction must materialize as
  // observed false sharing.
  Session host128(options(128));
  host128.runtime().register_region(host64.allocator().region().base(),
                                    host64.allocator().region().size());
  replay_into_session(host128, traces);
  const Report rep128 = build_report(host128.runtime());
  EXPECT_TRUE(observed_fs(rep128))
      << "double-line prediction did not come true";
}

TEST(PredictionComesTrue, ShiftedPlacementPredictionVerifiedAtBadOffset) {
  const Workload* lreg = find_workload("linear_regression");
  ASSERT_NE(lreg, nullptr);

  // Step 1: clean placement predicts shifted-placement false sharing.
  Session clean(options());
  Params p;
  p.threads = 8;
  p.offset = 0;
  lreg->run_replay(clean, p);
  bool shifted_predicted = false;
  for (const auto& f : clean.report().findings) {
    for (const auto& vl : f.predictions) {
      shifted_predicted |= vl.kind == VirtualLineTracker::Kind::kShifted;
    }
  }
  ASSERT_TRUE(shifted_predicted);

  // Step 2: actually place the object at a shifted offset: observed.
  Session shifted(options());
  p.offset = 24;
  lreg->run_replay(shifted, p);
  EXPECT_TRUE(observed_fs(shifted.report()))
      << "shifted-placement prediction did not come true";
}

TEST(PredictionComesTrue, PredictedInvalidationsApproximateTheRealOnes) {
  // The predicted (virtual-line) invalidation count at the clean placement
  // should be in the same ballpark as the observed count once the bad
  // placement actually happens — it is the same access stream hitting the
  // same line extents.
  const Workload* lreg = find_workload("linear_regression");
  Params p;
  p.threads = 8;

  // Compare the hottest single virtual line against the hottest single
  // physical line (a finding's predicted_invalidations field aggregates
  // many *overlapping* virtual lines and intentionally multi-counts).
  Session clean(options());
  p.offset = 0;
  lreg->run_replay(clean, p);
  std::uint64_t predicted = 0;
  for (const auto& f : clean.report().findings) {
    for (const auto& vl : f.predictions) {
      predicted = std::max(predicted, vl.invalidations);
    }
  }

  Session bad(options());
  p.offset = 24;
  lreg->run_replay(bad, p);
  std::uint64_t observed = 0;
  for (const auto& f : bad.report().findings) {
    for (const auto& lf : f.lines) {
      observed = std::max(observed, lf.invalidations);
    }
  }

  ASSERT_GT(predicted, 0u);
  ASSERT_GT(observed, 0u);
  // "Ballpark": within an order of magnitude either way. (Prediction uses
  // the conservative fully-interleaved assumption, so it sits above the
  // observed count; sampling clips both.)
  EXPECT_LT(predicted, observed * 10);
  EXPECT_GT(predicted * 10, observed);
}

// ---------------------------------------------------------------------------
// Predictions vs the two-level simulator: the §2.4 convictions produced
// from 64-byte traces are checked against *measured* ground truth from the
// NUMA simulator run at the predicted geometry (line_size=128) and topology
// (2 sockets). Recall must be 100% on the planted target across the
// Figure-2 offset sweep, and padded layouts must be silent on both sides.
// ---------------------------------------------------------------------------

/// Extent of the session object whose callsite frames mention `site`.
std::pair<Address, std::size_t> planted_object(Session& s,
                                               const std::string& site) {
  Address start = 0;
  std::size_t size = 0;
  s.runtime().objects().for_each([&](const ObjectInfo& o) {
    if (o.callsite == kNoCallsite) return;
    for (const auto& frame : s.runtime().callsites().get(o.callsite).frames) {
      if (frame.find(site) != std::string::npos) {
        start = o.start;
        size = o.size;
      }
    }
  });
  return {start, size};
}

NumaConfig ground_truth_config(std::size_t line_size, std::uint32_t sockets) {
  NumaConfig c;
  c.sockets = sockets;
  c.cores_per_socket = 8 / sockets;
  c.line_size = line_size;
  c.llc_line_size = line_size;
  c.placement = NumaPlacement::kScatter;
  return c;
}

TEST(SimGroundTruth, OffsetSweep128ByteConvictionsHave100PercentRecall) {
  const Workload* lreg = find_workload("linear_regression");
  ASSERT_NE(lreg, nullptr);
  const std::string site = lreg->traits().sites[0].where;
  // The detection/ground-truth agreement bar: a line must suffer at least
  // this many simulated invalidations to count as real false sharing (the
  // runtime's own report threshold).
  constexpr std::uint64_t kRealProblem = 100;

  for (const std::size_t offset :
       {std::size_t{0}, std::size_t{8}, std::size_t{24}, std::size_t{40},
        std::size_t{56}}) {
    Session session(options(64));
    Params p;
    p.threads = 8;
    p.offset = offset;
    const auto traces = lreg->capture(session, p);
    replay_into_session(session, traces);

    // The predictor convicts the site from the 64-byte trace (observed at
    // the bad offsets, double-line prediction at the clean ones).
    EXPECT_TRUE(report_mentions_site(session.report(),
                                     session.runtime().callsites(), site))
        << "offset " << offset;

    // Ground truth: the same traces on a 128-byte-line machine. Restrict
    // the measurement to the planted object so thread-private allocations
    // that merely become 128-byte neighbors don't pollute the verdict.
    const auto [start, size] = planted_object(session, site);
    ASSERT_NE(start, 0u);
    NumaCacheSim sim(ground_truth_config(128, 1));
    simulate_interleaved(sim, traces, 1);
    EXPECT_GT(sim.invalidations_in(start, size), kRealProblem)
        << "offset " << offset
        << ": conviction not backed by simulated 128B ground truth";
  }
}

TEST(SimGroundTruth, PaddedLayoutIsSilentInPredictorAndSimulatorAlike) {
  const Workload* lreg = find_workload("linear_regression");
  ASSERT_NE(lreg, nullptr);
  const std::string site = lreg->traits().sites[0].where;

  for (const std::size_t offset : {std::size_t{0}, std::size_t{56}}) {
    Session session(options(64));
    Params p;
    p.threads = 8;
    p.offset = offset;
    p.fix_mask = ~0u;  // full line-pair stride: immune to 128B geometry
    const auto traces = lreg->capture(session, p);
    replay_into_session(session, traces);
    EXPECT_FALSE(observed_fs(session.report())) << "offset " << offset;

    const auto [start, size] = planted_object(session, site);
    ASSERT_NE(start, 0u);
    NumaCacheSim sim(ground_truth_config(128, 1));
    simulate_interleaved(sim, traces, 1);
    EXPECT_EQ(sim.invalidations_in(start, size), 0u)
        << "offset " << offset << ": false positive would have been wrong — "
        << "the simulator sees no 128B sharing on the padded layout";
  }
}

TEST(SimGroundTruth, ObservedConvictionManifestsAsCrossSocketTraffic) {
  const Workload* w = find_workload("numa_pingpong");
  ASSERT_NE(w, nullptr);
  const std::string site = w->traits().sites[0].where;
  Params p;
  p.threads = 8;

  Session session(options(64));
  const auto traces = w->capture(session, p);
  replay_into_session(session, traces);
  ASSERT_TRUE(report_mentions_site(session.report(),
                                   session.runtime().callsites(), site));

  const auto [start, size] = planted_object(session, site);
  ASSERT_NE(start, 0u);
  NumaCacheSim one_socket(ground_truth_config(64, 1));
  NumaCacheSim two_socket(ground_truth_config(64, 2));
  simulate_interleaved(one_socket, traces, 1);
  simulate_interleaved(two_socket, traces, 1);

  // The convicted line really ping-pongs across the interconnect, and the
  // two-socket machine pays ≥2x for it.
  EXPECT_GT(two_socket.remote_invalidations_in(start, size), 0u);
  EXPECT_GE(two_socket.max_core_cycles(), 2 * one_socket.max_core_cycles());

  // And the repaired layout is quiet on the big machine as well.
  Session fixed_session(options(64));
  p.fix_mask = ~0u;
  const auto fixed_traces = w->capture(fixed_session, p);
  replay_into_session(fixed_session, fixed_traces);
  EXPECT_FALSE(observed_fs(fixed_session.report()));
  const auto [fstart, fsize] = planted_object(fixed_session, site);
  ASSERT_NE(fstart, 0u);
  NumaCacheSim fixed_sim(ground_truth_config(64, 2));
  simulate_interleaved(fixed_sim, fixed_traces, 1);
  EXPECT_EQ(fixed_sim.remote_invalidations_in(fstart, fsize), 0u);
}

TEST(PredictionStaysQuiet, PaddedLayoutSurvivesShiftedPlacements) {
  // The paper's fix (one full line *pair* per thread slot) must be immune
  // to placement: no observed false sharing at any offset.
  const Workload* lreg = find_workload("linear_regression");
  for (const std::size_t offset : {0ul, 8ul, 24ul, 56ul}) {
    Session session(options());
    Params p;
    p.threads = 8;
    p.offset = offset;
    p.fix_mask = ~0u;
    lreg->run_replay(session, p);
    EXPECT_FALSE(observed_fs(session.report()))
        << "padded layout false-shares at offset " << offset;
  }
}

TEST(PredictionStaysQuiet, CleanWorkloadStaysCleanUnderDoubledLines) {
  // string_match has no hot cross-thread neighbors: even on a 128-byte-line
  // machine nothing false-shares — and accordingly nothing was predicted.
  const Workload* w = find_workload("string_match");
  ASSERT_NE(w, nullptr);
  Params p;
  p.threads = 8;

  Session host64(options(64));
  const auto traces = w->capture(host64, p);
  replay_into_session(host64, traces);
  EXPECT_EQ(false_sharing_findings(host64.report()), 0u);

  Session host128(options(128));
  host128.runtime().register_region(host64.allocator().region().base(),
                                    host64.allocator().region().size());
  replay_into_session(host128, traces);
  EXPECT_FALSE(observed_fs(build_report(host128.runtime())));
}

}  // namespace
}  // namespace pred::wl
