#include "instrument/analysis/predict.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

#include "instrument/analysis/callgraph.hpp"
#include "instrument/analysis/cfg.hpp"
#include "instrument/analysis/constants.hpp"
#include "instrument/analysis/dominators.hpp"
#include "instrument/analysis/escape.hpp"
#include "instrument/analysis/loops.hpp"
#include "instrument/analysis/value_numbering.hpp"

namespace pred::ir {
namespace {

using Value = ValueNumbering::Value;

/// Weights saturate well below uint64 overflow so pair products (weight ×
/// weight) stay representable and the score keeps ordering deeply nested
/// loops sanely instead of wrapping.
constexpr std::uint64_t kWeightCap = 1ull << 40;

std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t r = a + b;
  return (r < a || r > kWeightCap * 2) ? kWeightCap * 2 : r;
}

std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > kWeightCap / b) return kWeightCap;
  return a * b;
}

std::int64_t floor_div(std::int64_t a, std::int64_t d) {
  return a >= 0 ? a / d : -((-a + d - 1) / d);
}

// ---------------------------------------------------------------------------
// Trip-count estimation
// ---------------------------------------------------------------------------

/// Recognizes the canonical counted loop at `loop.header`:
///     cmp = CmpLt(ind, bound);  CondBr cmp -> body | exit
/// with `bound` constant at header entry, the body on the true edge only.
/// Init is recovered by running the constant transfer through the preheader
/// (falling back to 0, the interpreter's zero-init, when unprovable); the
/// step by value-numbering every loop block and requiring each redefinition
/// of `ind` to be (header-entry ind + one positive constant). Anything else
/// returns `assumed_trip` — weights rank, they never prove.
std::uint64_t estimate_trip(const Function& fn, const NaturalLoop& loop,
                            const ConstantFacts& consts,
                            std::uint64_t assumed_trip) {
  const BasicBlock& header = fn.blocks[loop.header];
  if (header.instrs.empty()) return assumed_trip;
  const Instr& term = header.instrs.back();
  if (term.op != Opcode::kCondBr) return assumed_trip;
  if (!loop.contains(term.target) || loop.contains(term.target2)) {
    return assumed_trip;  // not the body-on-true shape
  }
  // Last definition of the branch condition inside the header must be the
  // compare itself.
  const Instr* cmp = nullptr;
  for (auto it = header.instrs.rbegin(); it != header.instrs.rend(); ++it) {
    if (&*it == &term) continue;
    const Instr& in = *it;
    const bool defines_cond =
        in.dst == term.a &&
        (in.op == Opcode::kConst || in.op == Opcode::kMove ||
         in.op == Opcode::kAdd || in.op == Opcode::kSub ||
         in.op == Opcode::kMul || in.op == Opcode::kDiv ||
         in.op == Opcode::kRem || in.op == Opcode::kCmpLt ||
         in.op == Opcode::kCmpEq || in.op == Opcode::kLoad ||
         in.op == Opcode::kCall);
    if (defines_cond) {
      if (in.op == Opcode::kCmpLt) cmp = &in;
      break;
    }
  }
  if (cmp == nullptr) return assumed_trip;
  const Reg ind = cmp->a;
  const Reg bound = cmp->b;
  if (loop.header >= consts.block_entry.size()) return assumed_trip;
  const ConstantAnalysis::State& at_header = consts.block_entry[loop.header];
  if (bound >= at_header.size() || !at_header[bound].is_const()) {
    return assumed_trip;
  }
  const std::int64_t bound_v = at_header[bound].value;

  std::int64_t init_v = 0;  // zero-init default; canonical loops count from 0
  if (loop.preheader != NaturalLoop::kNone &&
      loop.preheader < consts.block_entry.size() &&
      !consts.block_entry[loop.preheader].empty()) {
    ConstantAnalysis::State s = consts.block_entry[loop.preheader];
    for (const Instr& in : fn.blocks[loop.preheader].instrs) {
      ConstantAnalysis::transfer_instr(in, &s);
    }
    if (ind < s.size() && s[ind].is_const()) init_v = s[ind].value;
  }

  std::int64_t step = 0;
  for (const std::uint32_t b : loop.blocks) {
    ValueNumbering vn(fn);
    if (b < consts.block_entry.size()) {
      vn.seed_constants(consts.block_entry[b]);
    }
    for (const Instr& in : fn.blocks[b].instrs) {
      const bool redefines_ind =
          in.dst == ind &&
          (in.op == Opcode::kConst || in.op == Opcode::kMove ||
           in.op == Opcode::kAdd || in.op == Opcode::kSub ||
           in.op == Opcode::kMul || in.op == Opcode::kDiv ||
           in.op == Opcode::kRem || in.op == Opcode::kCmpLt ||
           in.op == Opcode::kCmpEq || in.op == Opcode::kLoad ||
           in.op == Opcode::kCall);
      if (redefines_ind) {
        vn.apply(in);
        const Value v = vn.value_of(ind);
        if (v.base != Value::Base::kEntryReg || v.id != ind || v.offset <= 0 ||
            (step != 0 && step != v.offset)) {
          return assumed_trip;
        }
        step = v.offset;
        continue;
      }
      vn.apply(in);
    }
  }
  if (step <= 0) return assumed_trip;
  if (bound_v <= init_v) return 1;  // header still evaluates once
  const std::uint64_t span = static_cast<std::uint64_t>(bound_v - init_v);
  const std::uint64_t trip =
      (span + static_cast<std::uint64_t>(step) - 1) /
      static_cast<std::uint64_t>(step);
  return std::min(std::max<std::uint64_t>(trip, 1), kWeightCap);
}

/// Per-block execution weight: the product of the trip estimates of every
/// enclosing loop (find_natural_loops lists a nest's blocks in each level,
/// so inner blocks pick up every level's factor).
std::vector<std::uint64_t> block_weights(const Function& fn, const Cfg& cfg,
                                         const ConstantFacts& consts,
                                         std::uint64_t assumed_trip) {
  std::vector<std::uint64_t> w(fn.blocks.size(), 1);
  const DomTree dom(cfg);
  for (const NaturalLoop& loop : find_natural_loops(cfg, dom)) {
    const std::uint64_t trip = estimate_trip(fn, loop, consts, assumed_trip);
    for (const std::uint32_t b : loop.blocks) {
      w[b] = sat_mul(w[b], trip);
    }
  }
  return w;
}

// ---------------------------------------------------------------------------
// Footprint collection
// ---------------------------------------------------------------------------

RoleFootprint collect_footprint(const Module& module, std::uint32_t fidx,
                                const RoleSpec& spec,
                                const SummaryTable& summaries,
                                const PredictOptions& options) {
  RoleFootprint fp;
  fp.role = spec.role;
  fp.region = spec.region;
  fp.function = spec.function;

  const Function& fn = module.functions[fidx];
  const Cfg cfg(fn);
  const ConstantFacts consts = analyze_constants(fn, cfg);
  const std::vector<std::uint64_t> weights =
      block_weights(fn, cfg, consts, options.assumed_trip);
  const std::vector<bool> stable = stable_args(fn);
  const bool arg_ok = spec.arg < fn.num_args && stable[spec.arg];
  std::uint32_t segment = 0;

  for (const std::uint32_t b : cfg.reverse_postorder()) {
    ValueNumbering vn(fn);
    if (b < consts.block_entry.size() && !consts.block_entry[b].empty()) {
      vn.seed_constants(consts.block_entry[b]);
    }
    // Block-local held handoff claims, mirroring apply_sync_scoped exactly:
    // the runtime suppression guarantee the pruner relies on is the same
    // happens-order evidence the predictor uses to exclude conflicts.
    struct Held {
      Value::Base base;
      std::uint32_t id;
      std::int64_t lo;
      std::int64_t hi;
    };
    std::vector<Held> held;
    const std::uint64_t bw = weights[b];

    // One resolved span: `len` bytes from `av`, single accesses of `width`.
    auto add_span = [&](const Value& av, std::int64_t len, std::uint32_t width,
                        bool is_write, std::uint64_t weight) {
      if (len <= 0) return;
      if (!arg_ok || av.base != Value::Base::kEntryReg || av.id != spec.arg) {
        ++fp.opaque_sites;
        return;
      }
      if (spec.confined_len > 0 && av.offset >= 0 &&
          static_cast<std::uint64_t>(av.offset) + len <= spec.confined_len) {
        ++fp.confined_skipped;
        return;
      }
      FootprintInterval iv;
      iv.lo = spec.region_offset + av.offset;
      iv.hi = iv.lo + len;
      iv.width = width;
      iv.is_write = is_write;
      for (const Held& h : held) {
        if (av.base == h.base && av.id == h.id && av.offset >= h.lo &&
            av.offset + len <= h.hi) {
          iv.handed_off = true;
          iv.claim_lo = spec.region_offset + h.lo;
          iv.claim_hi = spec.region_offset + h.hi;
          break;
        }
      }
      iv.segment = segment;
      iv.weight = weight == 0 ? 1 : weight;
      fp.resolved_weight = sat_add(fp.resolved_weight, iv.weight);
      fp.intervals.push_back(iv);
    };

    for (const Instr& in : fn.blocks[b].instrs) {
      switch (in.op) {
        case Opcode::kLoad:
          add_span(vn.address_of(in), in.size, in.size, /*is_write=*/false,
                   bw);
          break;
        case Opcode::kStore:
          add_span(vn.address_of(in), in.size, in.size, /*is_write=*/true, bw);
          break;
        case Opcode::kMemSet: {
          const Value len = vn.value_of(in.b);
          if (len.is_const() && len.offset > 0) {
            add_span(vn.value_of(in.a), len.offset, 8, /*is_write=*/true, bw);
          } else {
            ++fp.opaque_sites;
          }
          break;
        }
        case Opcode::kMemCopy: {
          const Value len = vn.value_of(in.dst);
          if (len.is_const() && len.offset > 0) {
            add_span(vn.value_of(in.a), len.offset, 8, /*is_write=*/true, bw);
            add_span(vn.value_of(in.b), len.offset, 8, /*is_write=*/false, bw);
          } else {
            fp.opaque_sites += 2;
          }
          break;
        }
        case Opcode::kCall: {
          const auto callee = static_cast<std::size_t>(in.imm);
          const AccessSummary* s = callee < summaries.per_function.size()
                                       ? &summaries.per_function[callee]
                                       : nullptr;
          // A syncing callee rotates epochs mid-call: close held claims
          // BEFORE rebasing its entries so they register as unordered.
          if (s == nullptr || !s->exact || s->syncs) {
            held.clear();
            if (s != nullptr && s->syncs) ++segment;
          }
          if (s != nullptr && s->exact) {
            for (const AccessSummary::Entry& e : s->entries) {
              if (e.arg >= in.b) continue;  // malformed summary entry
              Value av = vn.value_of(in.a + e.arg);
              av.offset += e.offset;
              add_span(av, e.width, e.width, e.is_write,
                       sat_mul(bw, e.count));
            }
          } else {
            ++fp.opaque_sites;
          }
          break;
        }
        case Opcode::kAcquire:
        case Opcode::kRelease:
          held.clear();
          ++segment;
          break;
        case Opcode::kHandoff: {
          held.clear();
          ++segment;
          const Value base = vn.address_of(in);
          const Value len = vn.value_of(in.b);
          if (len.is_const() && len.offset > 0) {
            held.push_back(
                {base.base, base.id, base.offset, base.offset + len.offset});
          }
          break;
        }
        case Opcode::kReport:
          // Detector feed only — the real traffic is the loads/stores
          // themselves, which this walk already counts. Counting reports
          // too would double every batched loop.
          break;
        default:
          break;
      }
      vn.apply(in);
    }
  }
  fp.segments = segment + 1;
  return fp;
}

// ---------------------------------------------------------------------------
// Conflict overlay
// ---------------------------------------------------------------------------

/// One role's accumulated traffic on one (region, line) cell.
struct Contrib {
  std::vector<bool> touched;
  std::vector<bool> written;
  std::uint32_t lo = 0xffffffffu;
  std::uint32_t hi = 0;
  std::uint64_t w_open = 0;  ///< write weight outside any handoff claim
  std::uint64_t w_hand = 0;  ///< write weight under a handoff claim
  std::uint64_t r_open = 0;
  std::uint64_t r_hand = 0;
  std::vector<std::pair<std::int64_t, std::int64_t>> claims;
};

using LineKey = std::pair<std::uint32_t, std::int64_t>;  // (region, line)
using LineGrid = std::map<LineKey, std::map<std::uint32_t, Contrib>>;

LineGrid build_grid(const std::vector<RoleFootprint>& footprints,
                    std::size_t line_size) {
  LineGrid grid;
  const auto ls = static_cast<std::int64_t>(line_size);
  for (const RoleFootprint& fp : footprints) {
    for (const FootprintInterval& iv : fp.intervals) {
      std::int64_t off = iv.lo;
      while (off < iv.hi) {
        const std::int64_t line = floor_div(off, ls);
        const std::int64_t line_start = line * ls;
        const std::int64_t end = std::min(iv.hi, line_start + ls);
        Contrib& c = grid[{fp.region, line}][fp.role];
        if (c.touched.empty()) {
          c.touched.resize(line_size, false);
          c.written.resize(line_size, false);
        }
        for (std::int64_t p = off; p < end; ++p) {
          const auto i = static_cast<std::size_t>(p - line_start);
          c.touched[i] = true;
          if (iv.is_write) c.written[i] = true;
        }
        c.lo = std::min(c.lo, static_cast<std::uint32_t>(off - line_start));
        c.hi = std::max(c.hi, static_cast<std::uint32_t>(end - line_start));
        if (iv.is_write) {
          (iv.handed_off ? c.w_hand : c.w_open) =
              sat_add(iv.handed_off ? c.w_hand : c.w_open, iv.weight);
        } else {
          (iv.handed_off ? c.r_hand : c.r_open) =
              sat_add(iv.handed_off ? c.r_hand : c.r_open, iv.weight);
        }
        if (iv.handed_off) c.claims.emplace_back(iv.claim_lo, iv.claim_hi);
        off = end;
      }
    }
  }
  return grid;
}

bool claims_overlap(const Contrib& a, const Contrib& b) {
  for (const auto& [alo, ahi] : a.claims) {
    for (const auto& [blo, bhi] : b.claims) {
      if (alo < bhi && blo < ahi) return true;
    }
  }
  return false;
}

/// Conflicting weight between one side's writes (split open/handed) and the
/// other side's traffic. Handed×handed drops out when the two roles' claim
/// ranges overlap: the shared claim range is the happens-order edge — both
/// sides only ever reach the bytes through the same ownership chain.
std::uint64_t cross(std::uint64_t x_open, std::uint64_t x_hand,
                    std::uint64_t y_open, std::uint64_t y_hand,
                    bool hand_hand_ordered) {
  std::uint64_t t = sat_mul(x_open, y_open);
  t = sat_add(t, sat_mul(x_open, y_hand));
  t = sat_add(t, sat_mul(x_hand, y_open));
  if (!hand_hand_ordered) t = sat_add(t, sat_mul(x_hand, y_hand));
  return t;
}

std::vector<PredictedLine> score_grid(const LineGrid& grid,
                                      std::size_t line_size) {
  std::vector<PredictedLine> out;
  for (const auto& [key, roles] : grid) {
    if (roles.size() < 2) continue;
    PredictedLine line;
    line.region = key.first;
    line.line_size = static_cast<std::uint32_t>(line_size);
    line.line_index = key.second;
    for (auto ia = roles.begin(); ia != roles.end(); ++ia) {
      for (auto ib = std::next(ia); ib != roles.end(); ++ib) {
        const Contrib& a = ia->second;
        const Contrib& b = ib->second;
        const bool ordered = claims_overlap(a, b);
        const std::uint64_t ww =
            cross(a.w_open, a.w_hand, b.w_open, b.w_hand, ordered);
        const std::uint64_t wr =
            sat_add(cross(a.w_open, a.w_hand, b.r_open, b.r_hand, ordered),
                    cross(b.w_open, b.w_hand, a.r_open, a.r_hand, ordered));
        if (ww + wr == 0) continue;
        line.ww_weight = sat_add(line.ww_weight, ww);
        line.wr_weight = sat_add(line.wr_weight, wr);
        // Byte-level classification of this conflicting pair.
        bool shared_byte = false;
        bool disjoint_write = false;
        for (std::size_t i = 0; i < line_size; ++i) {
          if ((a.written[i] && b.touched[i]) || (b.written[i] && a.touched[i])) {
            shared_byte = true;
          }
          if ((a.written[i] && !b.touched[i]) ||
              (b.written[i] && !a.touched[i])) {
            disjoint_write = true;
          }
        }
        line.true_sharing |= shared_byte;
        line.false_sharing |= disjoint_write;
      }
    }
    if (line.ww_weight + line.wr_weight == 0) continue;
    line.score = 2.0 * static_cast<double>(line.ww_weight) +
                 static_cast<double>(line.wr_weight);
    for (const auto& [role, c] : roles) {
      RoleSpan span;
      span.role = role;
      span.lo = c.lo == 0xffffffffu ? 0 : c.lo;
      span.hi = c.hi;
      span.write_weight = sat_add(c.w_open, c.w_hand);
      span.read_weight = sat_add(c.r_open, c.r_hand);
      span.handed_off_only = c.w_open + c.r_open == 0;
      line.spans.push_back(span);
    }
    out.push_back(std::move(line));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Region structure: stride + extent
// ---------------------------------------------------------------------------

void detect_region_structure(const std::vector<RoleFootprint>& footprints,
                             StaticFsReport* report) {
  std::uint32_t num_regions = 0;
  for (const RoleFootprint& fp : footprints) {
    num_regions = std::max(num_regions, fp.region + 1);
  }
  report->region_slot_stride.assign(num_regions, 0);
  report->region_extent.assign(num_regions, 0);

  for (std::uint32_t g = 0; g < num_regions; ++g) {
    // Per-role written span inside region g.
    std::vector<std::pair<std::int64_t, std::int64_t>> spans;
    std::int64_t extent = 0;
    for (const RoleFootprint& fp : footprints) {
      if (fp.region != g) continue;
      std::int64_t wlo = 0, whi = 0;
      bool has_write = false;
      for (const FootprintInterval& iv : fp.intervals) {
        extent = std::max(extent, iv.hi);
        if (!iv.is_write) continue;
        if (!has_write) {
          wlo = iv.lo;
          whi = iv.hi;
          has_write = true;
        } else {
          wlo = std::min(wlo, iv.lo);
          whi = std::max(whi, iv.hi);
        }
      }
      if (has_write) spans.emplace_back(wlo, whi);
    }
    report->region_extent[g] =
        extent > 0 ? static_cast<std::uint64_t>(extent) : 0;
    if (spans.size() < 2) continue;
    std::sort(spans.begin(), spans.end());
    const std::int64_t stride = spans[1].first - spans[0].first;
    if (stride <= 0) continue;
    bool uniform = true;
    for (std::size_t i = 0; i < spans.size(); ++i) {
      if (spans[i].second - spans[i].first > stride ||
          (i + 1 < spans.size() &&
           spans[i + 1].first - spans[i].first != stride)) {
        uniform = false;
        break;
      }
    }
    if (uniform) {
      report->region_slot_stride[g] = static_cast<std::uint64_t>(stride);
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

StaticFsReport predict_static_fs(const Module& module,
                                 const std::vector<RoleSpec>& roles,
                                 const PredictOptions& options) {
  StaticFsReport report;
  if (options.line_size == 0) return report;

  // Summarize a copy with every real access marked instrumented (and
  // detector-only kReports unmarked): summaries count instrumentation
  // deliveries, and the predictor wants the program's actual traffic
  // whether or not the input module ran the pass.
  Module marked = module;
  for (Function& fn : marked.functions) {
    for (BasicBlock& bb : fn.blocks) {
      for (Instr& in : bb.instrs) {
        if (is_memory_access(in.op) || is_memory_intrinsic(in.op)) {
          in.instrumented = true;
          in.extra_reads = 0;
          in.extra_writes = 0;
        } else if (is_report(in.op)) {
          in.instrumented = false;
        }
      }
    }
  }
  const CallGraph cg(marked);
  const SummaryTable summaries = summarize_module(marked, cg);

  for (const RoleSpec& spec : roles) {
    const Function* fn = module.find(spec.function);
    if (fn == nullptr) {
      RoleFootprint empty;
      empty.role = spec.role;
      empty.region = spec.region;
      empty.function = spec.function;
      report.footprints.push_back(std::move(empty));
      continue;
    }
    const auto fidx = static_cast<std::uint32_t>(fn - module.functions.data());
    report.footprints.push_back(
        collect_footprint(module, fidx, spec, summaries, options));
  }
  for (const RoleFootprint& fp : report.footprints) {
    report.opaque_sites += fp.opaque_sites;
  }
  detect_region_structure(report.footprints, &report);

  // Base geometry.
  const LineGrid base_grid = build_grid(report.footprints, options.line_size);
  std::vector<PredictedLine> lines = score_grid(base_grid, options.line_size);

  // Extra geometries: keep only lines with no conflicting base-size
  // sub-line — conflicts that exist ONLY on the larger-line hardware.
  std::map<LineKey, bool> base_conflicts;
  for (const PredictedLine& l : lines) {
    base_conflicts[{l.region, l.line_index}] = true;
  }
  for (const std::size_t ls : options.extra_line_sizes) {
    if (ls <= options.line_size || ls % options.line_size != 0) continue;
    const LineGrid grid = build_grid(report.footprints, ls);
    const auto factor =
        static_cast<std::int64_t>(ls / options.line_size);
    for (PredictedLine& l : score_grid(grid, ls)) {
      bool any_base = false;
      for (std::int64_t j = 0; j < factor; ++j) {
        if (base_conflicts.count({l.region, l.line_index * factor + j}) > 0) {
          any_base = true;
          break;
        }
      }
      if (any_base) continue;
      l.latent = true;
      lines.push_back(std::move(l));
    }
  }

  std::sort(lines.begin(), lines.end(),
            [](const PredictedLine& a, const PredictedLine& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.region != b.region) return a.region < b.region;
              if (a.line_size != b.line_size) return a.line_size < b.line_size;
              return a.line_index < b.line_index;
            });
  if (lines.size() > options.max_lines) lines.resize(options.max_lines);
  report.lines = std::move(lines);
  return report;
}

std::vector<RoleSpec> default_roles(const Module& module) {
  const CallGraph cg(module);
  std::vector<bool> called(module.functions.size(), false);
  for (std::uint32_t f = 0; f < module.functions.size(); ++f) {
    for (const std::uint32_t c : cg.callees(f)) {
      called[c] = true;
    }
  }
  std::vector<RoleSpec> roles;
  for (std::uint32_t f = 0; f < module.functions.size(); ++f) {
    const std::string& name = module.functions[f].name;
    if (called[f]) continue;
    if (name.size() >= 5 && name.compare(name.size() - 5, 5, "$bare") == 0) {
      continue;
    }
    RoleSpec spec;
    spec.function = name;
    spec.role = static_cast<std::uint32_t>(roles.size());
    roles.push_back(std::move(spec));
  }
  return roles;
}

std::string format_static_report(const StaticFsReport& report) {
  std::string out;
  char buf[256];
  auto emit = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    out += buf;
  };

  std::uint64_t conflicts = 0;
  for (const PredictedLine& l : report.lines) {
    if (!l.latent) ++conflicts;
  }
  emit("static prediction: %zu role(s), %zu region(s), %llu conflict "
       "line(s), %llu latent\n",
       report.footprints.size(), report.region_extent.size(),
       static_cast<unsigned long long>(conflicts),
       static_cast<unsigned long long>(report.lines.size() - conflicts));
  for (const RoleFootprint& fp : report.footprints) {
    emit("  role %u -> %s (region %u): %zu interval(s), weight %llu, "
         "opaque %llu, confined %llu, segments %llu\n",
         fp.role, fp.function.c_str(), fp.region, fp.intervals.size(),
         static_cast<unsigned long long>(fp.resolved_weight),
         static_cast<unsigned long long>(fp.opaque_sites),
         static_cast<unsigned long long>(fp.confined_skipped),
         static_cast<unsigned long long>(fp.segments));
  }
  for (std::size_t g = 0; g < report.region_extent.size(); ++g) {
    emit("  region %zu: extent %llu B, slot stride %llu B\n", g,
         static_cast<unsigned long long>(report.region_extent[g]),
         static_cast<unsigned long long>(report.region_slot_stride[g]));
  }
  if (report.lines.empty()) {
    out += "  no conflicts predicted\n";
    return out;
  }
  for (const PredictedLine& l : report.lines) {
    const char* kind = l.false_sharing && l.true_sharing ? "mixed sharing"
                       : l.false_sharing                 ? "false sharing"
                       : l.true_sharing                  ? "true sharing"
                                                         : "contention";
    emit("  region %u line %lld @%uB: score %.0f [%s%s] ww %llu wr %llu\n",
         l.region, static_cast<long long>(l.line_index), l.line_size, l.score,
         kind, l.latent ? ", latent" : "",
         static_cast<unsigned long long>(l.ww_weight),
         static_cast<unsigned long long>(l.wr_weight));
    for (const RoleSpan& s : l.spans) {
      emit("    role %u bytes [%u,%u) writes %llu reads %llu%s\n", s.role,
           s.lo, s.hi, static_cast<unsigned long long>(s.write_weight),
           static_cast<unsigned long long>(s.read_weight),
           s.handed_off_only ? " (handed off)" : "");
    }
  }
  return out;
}

}  // namespace pred::ir
