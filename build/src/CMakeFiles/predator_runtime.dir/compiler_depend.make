# Empty compiler generated dependencies file for predator_runtime.
# This may be replaced when dependencies are built.
