// Fix-advisor demo: from detection straight to a prescription.
//
// Runs three workloads with known problems (histogram's packed per-thread
// slots, the latent linear_regression layout, memcached's true-sharing
// counter) and prints the advisor's ranked, evidence-backed suggestions —
// the paper's Section 6 "Suggest Fixes" vision made concrete.
//
// Build & run:  ./build/examples/fix_advisor_demo
#include <cstdio>

#include "advice/fix_advisor.hpp"
#include "workloads/workload.hpp"

using namespace pred;

int main() {
  SessionOptions opts;
  opts.heap_size = 64 * 1024 * 1024;
  Session session(opts);

  wl::Params params;
  params.threads = 8;
  for (const char* name : {"histogram", "linear_regression", "memcached"}) {
    if (const wl::Workload* w = wl::find_workload(name)) {
      w->run_replay(session, params);
    }
  }

  const Report report = session.report();
  std::printf("=== findings (%zu) ===\n\n", report.findings.size());
  std::printf("%s", format_report(report, session.runtime().callsites()).c_str());

  std::printf("\n=== advisor prescriptions ===\n\n");
  std::printf("%s", format_suggestions(advise(report)).c_str());
  return 0;
}
