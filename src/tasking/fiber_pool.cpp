#include "tasking/fiber_pool.hpp"

#include "common/check.hpp"

namespace pred {

namespace {
// The pool currently executing on this OS thread (cooperative, single
// threaded by construction).
thread_local FiberPool* g_active_pool = nullptr;
}  // namespace

FiberPool::FiberPool(std::size_t stack_size) : stack_size_(stack_size) {
  PRED_CHECK(stack_size_ >= 16 * 1024);
}

FiberPool::~FiberPool() = default;

void FiberPool::spawn(std::function<void()> body) {
  auto fiber = std::make_unique<Fiber>();
  fiber->body = std::move(body);
  fiber->stack.resize(stack_size_);
  fibers_.push_back(std::move(fiber));
}

void FiberPool::trampoline() {
  FiberPool* pool = g_active_pool;
  PRED_CHECK(pool != nullptr);
  Fiber& fiber = *pool->fibers_[pool->running_];
  fiber.body();
  fiber.finished = true;
  // Return to the scheduler; this context is never resumed again.
  swapcontext(&fiber.context, &pool->scheduler_context_);
}

void FiberPool::switch_to(std::size_t index) {
  running_ = index;
  schedule_.push_back(index);
  Fiber& fiber = *fibers_[index];
  swapcontext(&scheduler_context_, &fiber.context);
  running_ = static_cast<std::size_t>(-1);
}

void FiberPool::prepare_contexts() {
  for (auto& fiber : fibers_) {
    PRED_CHECK(getcontext(&fiber->context) == 0);
    fiber->context.uc_stack.ss_sp = fiber->stack.data();
    fiber->context.uc_stack.ss_size = fiber->stack.size();
    fiber->context.uc_link = &scheduler_context_;
    makecontext(&fiber->context, reinterpret_cast<void (*)()>(&trampoline),
                0);
  }
}

void FiberPool::run() {
  PRED_CHECK(g_active_pool == nullptr);  // no nested pools
  g_active_pool = this;
  schedule_.clear();
  prepare_contexts();

  bool any_running = true;
  while (any_running) {
    any_running = false;
    for (std::size_t i = 0; i < fibers_.size(); ++i) {
      if (fibers_[i]->finished) continue;
      any_running = true;
      switch_to(i);
    }
  }
  g_active_pool = nullptr;
}

void FiberPool::run_seeded(std::uint64_t seed) {
  PRED_CHECK(g_active_pool == nullptr);  // no nested pools
  g_active_pool = this;
  schedule_.clear();
  prepare_contexts();

  // xorshift64: fully deterministic, no library RNG whose stream could
  // change underneath a pinned-schedule regression test.
  std::uint64_t state = seed != 0 ? seed : 0x9e3779b97f4a7c15ull;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };

  std::vector<std::size_t> runnable;
  runnable.reserve(fibers_.size());
  while (true) {
    runnable.clear();
    for (std::size_t i = 0; i < fibers_.size(); ++i) {
      if (!fibers_[i]->finished) runnable.push_back(i);
    }
    if (runnable.empty()) break;
    switch_to(runnable[next() % runnable.size()]);
  }
  g_active_pool = nullptr;
}

void FiberPool::yield() {
  FiberPool* pool = g_active_pool;
  if (pool == nullptr || pool->running_ == static_cast<std::size_t>(-1)) {
    return;
  }
  Fiber& fiber = *pool->fibers_[pool->running_];
  swapcontext(&fiber.context, &pool->scheduler_context_);
}

std::size_t FiberPool::current_fiber() {
  FiberPool* pool = g_active_pool;
  if (pool == nullptr) return static_cast<std::size_t>(-1);
  return pool->running_;
}

}  // namespace pred
