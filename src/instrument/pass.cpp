#include "instrument/pass.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <numeric>
#include <optional>
#include <set>
#include <tuple>
#include <vector>

#include "common/check.hpp"
#include "instrument/analysis/callgraph.hpp"
#include "instrument/analysis/cfg.hpp"
#include "instrument/analysis/constants.hpp"
#include "instrument/analysis/dominators.hpp"
#include "instrument/analysis/loops.hpp"
#include "instrument/analysis/value_numbering.hpp"

namespace pred::ir {

namespace {

bool contains(const std::vector<std::string>& names, const std::string& n) {
  return std::find(names.begin(), names.end(), n) != names.end();
}

bool defines_register(const Instr& in) {
  switch (in.op) {
    case Opcode::kConst:
    case Opcode::kMove:
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kRem:
    case Opcode::kCmpLt:
    case Opcode::kCmpEq:
    case Opcode::kLoad:
    case Opcode::kCall:
      return true;
    default:
      return false;
  }
}

// ---------------------------------------------------------------------------
// Stage 1: selective per-block dedup (Section 2.4.2)
// ---------------------------------------------------------------------------

/// Key identifying "the same address, same access type" within one block:
/// the address register, the constant offset, the access width, and whether
/// it is a load or a store.
struct AccessKey {
  Reg base;
  std::int64_t offset;
  std::uint32_t size;
  bool is_store;
  auto operator<=>(const AccessKey&) const = default;
};

void instrument_function(Function& fn, const PassOptions& options,
                         PassStats& stats) {
  for (BasicBlock& bb : fn.blocks) {
    std::set<AccessKey> seen;  // reset at block boundaries
    for (Instr& instr : bb.instrs) {
      if (is_memory_intrinsic(instr.op)) {
        // memset/memcpy touch a dynamic range: always instrumented (the
        // per-address dedup cannot apply), subject to writes-only mode for
        // the pure-read half handled at runtime. Counted apart from the
        // per-address candidates so the dedup/merge arithmetic reconciles.
        ++stats.intrinsic_accesses;
        instr.instrumented = true;
        continue;
      }
      if (is_memory_access(instr.op)) {
        ++stats.candidate_accesses;
        const bool is_store = instr.op == Opcode::kStore;
        if (!is_store && options.mode == InstrumentMode::kWritesOnly) {
          ++stats.skipped_reads;
        } else {
          const AccessKey key{instr.a, instr.imm, instr.size, is_store};
          if (options.selective && !seen.insert(key).second) {
            ++stats.skipped_duplicates;
          } else {
            instr.instrumented = true;
            ++stats.instrumented_accesses;
          }
        }
      }
      // A redefinition of a register invalidates remembered address
      // expressions built on it: "the same address" must mean the same
      // value, not merely the same register name. (kReport reads its
      // operands and defines nothing.)
      if (defines_register(instr)) {
        for (auto it = seen.begin(); it != seen.end();) {
          it = it->base == instr.dst ? seen.erase(it) : std::next(it);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Stage 2: loop batching
// ---------------------------------------------------------------------------

/// The canonical counted-loop shape batching recognizes:
///
///   preheader:  ... ; br header            (unique, outside the loop)
///   header:     c = ind < bound ; br c ? body : exit
///   body:       ... accesses, net effect ind += step ... ; br header
///
/// The body is the loop's only latch and ends in an *unconditional* branch
/// to the header (a conditional latch could exit before `ind` reaches
/// `bound`), `bound` is untouched inside the loop,
/// and the net effect of one body execution on `ind` — established by value
/// numbering, so any instruction mix qualifies — is exactly +step for a
/// positive constant step. Under those conditions the body executes exactly
/// max(0, ceil((bound - ind0) / step)) times per preheader visit, which is
/// the count the planted kReport computes at run time.
struct BatchableLoop {
  std::uint32_t header;
  std::uint32_t body;
  std::uint32_t preheader;
  Reg ind;
  Reg bound;
  std::int64_t step;
};

std::optional<BatchableLoop> match_batchable(const Function& fn,
                                             const NaturalLoop& loop,
                                             const ConstantFacts& consts) {
  if (loop.blocks.size() != 2 || loop.latches.size() != 1 ||
      loop.preheader == NaturalLoop::kNone) {
    return std::nullopt;
  }
  const std::uint32_t body = loop.latches[0];
  if (body == loop.header || !loop.contains(body)) return std::nullopt;

  // The header's comparison must be the *only* way out: the body has to
  // fall back into the header unconditionally. A conditional latch
  // (condbr c ? header : out) can leave the loop before `ind` reaches
  // `bound`, so the preheader trip count would over-deliver.
  const Instr& latch_term = fn.blocks[body].instrs.back();
  if (latch_term.op != Opcode::kBr || latch_term.target != loop.header) {
    return std::nullopt;
  }

  const auto& h = fn.blocks[loop.header].instrs;
  if (h.size() != 2 || h[0].op != Opcode::kCmpLt ||
      h[1].op != Opcode::kCondBr || h[1].a != h[0].dst ||
      h[1].target != body || loop.contains(h[1].target2)) {
    return std::nullopt;
  }
  const Reg ind = h[0].a;
  const Reg bound = h[0].b;
  if (ind == bound || h[0].dst == ind || h[0].dst == bound) {
    return std::nullopt;
  }

  // `bound` must be loop-invariant the strong way: never assigned inside.
  for (const std::uint32_t b : loop.blocks) {
    for (const Instr& in : fn.blocks[b].instrs) {
      if (defines_register(in) && in.dst == bound) return std::nullopt;
    }
  }

  // Net effect of one body execution on the induction register.
  ValueNumbering vn(fn);
  vn.seed_constants(consts.block_entry[body]);
  for (const Instr& in : fn.blocks[body].instrs) vn.apply(in);
  const ValueNumbering::Value v = vn.value_of(ind);
  if (v.base != ValueNumbering::Value::Base::kEntryReg || v.id != ind ||
      v.offset < 1) {
    return std::nullopt;
  }
  return BatchableLoop{loop.header, body, loop.preheader, ind, bound,
                       v.offset};
}

/// Shared state of the interprocedural stage, threaded into batch_loops so
/// a call inside a matched loop can be expanded through its callee summary.
struct InterprocCtx {
  Module& module;
  SummaryTable& summaries;          ///< grows as "$bare" clones are added
  std::vector<std::int32_t>& clone_of;  ///< original index → clone index
  std::size_t original_count;
};

/// Returns (building on demand) the uninstrumented "$bare" clone of `f`:
/// the same code with every instrumented flag and compensation extra
/// cleared, and every inner call retargeted to the callee's own clone, so
/// running it delivers nothing to the runtime, transitively. Clones are
/// appended after the original functions; the module's vector was reserved
/// for them up front, so references to earlier functions stay valid.
/// (Cycles cannot occur: a clone is only requested for a function with an
/// exact summary, and summarization refuses recursion.)
std::uint32_t ensure_bare_clone(InterprocCtx& ctx, std::uint32_t f,
                                PassStats& stats) {
  if (ctx.clone_of[f] >= 0) return static_cast<std::uint32_t>(ctx.clone_of[f]);
  Function copy = ctx.module.functions[f];
  copy.name += "$bare";
  for (BasicBlock& bb : copy.blocks) {
    for (Instr& in : bb.instrs) {
      in.instrumented = false;
      in.extra_reads = 0;
      in.extra_writes = 0;
    }
  }
  const auto idx = static_cast<std::uint32_t>(ctx.module.functions.size());
  PRED_CHECK(ctx.module.functions.capacity() > idx);  // reserved: no realloc
  ctx.clone_of[f] = static_cast<std::int32_t>(idx);
  ctx.module.functions.push_back(std::move(copy));
  // A clone delivers nothing, so its summary is exactly empty — recorded so
  // summarizing a caller that now calls the clone stays exact.
  ctx.summaries.per_function.resize(ctx.module.functions.size());
  ctx.summaries.per_function[idx].exact = true;
  ++stats.bare_clones;
  // Retarget inner calls by index: the recursive call below may append more
  // clones, so no references into the vector are held across it.
  for (std::size_t b = 0; b < ctx.module.functions[idx].blocks.size(); ++b) {
    const std::size_t n = ctx.module.functions[idx].blocks[b].instrs.size();
    for (std::size_t i = 0; i < n; ++i) {
      if (ctx.module.functions[idx].blocks[b].instrs[i].op == Opcode::kCall) {
        const auto inner = static_cast<std::uint32_t>(
            ctx.module.functions[idx].blocks[b].instrs[i].imm);
        const std::uint32_t inner_clone =
            inner < ctx.original_count ? ensure_bare_clone(ctx, inner, stats)
                                       : inner;  // already a clone
        ctx.module.functions[idx].blocks[b].instrs[i].imm = inner_clone;
      }
    }
  }
  return idx;
}

void batch_loops(Function& fn, PassStats& stats, InterprocCtx* ctx) {
  const Cfg cfg(fn);
  const DomTree dom(cfg);
  const ConstantFacts consts = analyze_constants(fn, cfg);
  const std::vector<NaturalLoop> loops = find_natural_loops(cfg, dom);

  for (const NaturalLoop& loop : loops) {
    const std::optional<BatchableLoop> m = match_batchable(fn, loop, consts);
    if (!m) continue;

    // Registers assigned anywhere in the loop; an address built only from
    // registers outside this set has the same value in every iteration —
    // and, because the preheader dominates the body with no intervening
    // assignment, the *same* value at the preheader's end.
    std::vector<bool> defined(fn.num_regs, false);
    for (const std::uint32_t b : loop.blocks) {
      for (const Instr& in : fn.blocks[b].instrs) {
        if (defines_register(in)) defined[in.dst] = true;
      }
    }

    struct Hoist {
      Instr* access;
      ValueNumbering::Value addr;
    };
    /// A call whose summarized per-invocation access set can be delivered
    /// wholesale from the preheader: the callee summary is exact and every
    /// argument any entry is relative to is loop-invariant.
    struct CallHoist {
      Instr* call;
      std::uint32_t callee;
      std::vector<ValueNumbering::Value> bases;  ///< per summary entry
    };
    std::vector<Hoist> hoists;
    std::vector<CallHoist> call_hoists;
    ValueNumbering vn(fn);
    vn.seed_constants(consts.block_entry[m->body]);
    for (Instr& in : fn.blocks[m->body].instrs) {
      if (is_memory_access(in.op) && in.instrumented && in.extra_reads == 0 &&
          in.extra_writes == 0) {
        const ValueNumbering::Value v = vn.address_of(in);
        if (v.base == ValueNumbering::Value::Base::kEntryReg &&
            !defined[v.id]) {
          hoists.push_back({&in, v});
        }
      } else if (ctx != nullptr && in.op == Opcode::kCall) {
        const auto callee = static_cast<std::uint32_t>(in.imm);
        const AccessSummary& s = ctx->summaries.per_function[callee];
        // A syncing callee (s.syncs) is still batchable: the "$bare" clone
        // keeps its kAcquire/kRelease/kHandoff ops — sync structure is
        // program semantics, not instrumentation — so epoch rotations and
        // handoff claims execute per iteration either way. Bulk delivery
        // relocates same-thread accesses across same-thread claims, which
        // can shift WHICH accesses the runtime suppresses (histogram
        // detail) but never the first-event transition that decides an
        // invalidation. The syncs bit matters to sync-scoped pruning (a
        // held range must not survive a syncing call), not to batching.
        if (s.exact && !s.entries.empty()) {
          CallHoist ch{&in, callee, {}};
          ch.bases.reserve(s.entries.size());
          bool invariant = true;
          for (const AccessSummary::Entry& e : s.entries) {
            const ValueNumbering::Value v = vn.value_of(in.a + e.arg);
            if (v.base != ValueNumbering::Value::Base::kEntryReg ||
                defined[v.id]) {
              invariant = false;
              break;
            }
            ch.bases.push_back(v);
          }
          if (invariant) call_hoists.push_back(std::move(ch));
        }
      }
      vn.apply(in);
    }
    if (hoists.empty() && call_hoists.empty()) continue;

    // Emit the trip count ahead of the preheader's terminator:
    //   cnt = (bound - ind + step - 1) / step
    // (signed; a non-positive result means "loop never entered" and the
    // interpreter delivers nothing for it).
    const Reg t_diff = fn.num_regs++;
    const Reg t_cm1 = fn.num_regs++;
    const Reg t_sum = fn.num_regs++;
    const Reg t_step = fn.num_regs++;
    const Reg t_cnt = fn.num_regs++;
    std::vector<Instr> planted;
    planted.push_back({.op = Opcode::kSub, .dst = t_diff, .a = m->bound,
                       .b = m->ind});
    planted.push_back({.op = Opcode::kConst, .dst = t_cm1,
                       .imm = m->step - 1});
    planted.push_back({.op = Opcode::kAdd, .dst = t_sum, .a = t_diff,
                       .b = t_cm1});
    planted.push_back({.op = Opcode::kConst, .dst = t_step, .imm = m->step});
    planted.push_back({.op = Opcode::kDiv, .dst = t_cnt, .a = t_sum,
                       .b = t_step});
    for (const Hoist& hst : hoists) {
      planted.push_back({.op = Opcode::kReport, .a = hst.addr.id,
                         .b = t_cnt, .imm = hst.addr.offset,
                         .size = hst.access->size,
                         .target = hst.access->op == Opcode::kStore ? 1u : 0u,
                         .instrumented = true});
      hst.access->instrumented = false;
      ++stats.loop_batched;
      --stats.instrumented_accesses;
      ++stats.reports_inserted;
    }
    for (CallHoist& ch : call_hoists) {
      // The call keeps running — return value and memory effects are real —
      // but against the silent clone; the preheader reports deliver what
      // the instrumented callee would have, times the trip count. A
      // non-positive trip count makes every planted count non-positive
      // (entry counts are >= 1), so a never-entered loop delivers nothing.
      const AccessSummary& s = ctx->summaries.per_function[ch.callee];
      for (std::size_t i = 0; i < s.entries.size(); ++i) {
        const AccessSummary::Entry& e = s.entries[i];
        Reg count_reg = t_cnt;
        if (e.count != 1) {
          const Reg t_ec = fn.num_regs++;
          const Reg t_n = fn.num_regs++;
          planted.push_back({.op = Opcode::kConst, .dst = t_ec,
                             .imm = static_cast<std::int64_t>(e.count)});
          planted.push_back({.op = Opcode::kMul, .dst = t_n, .a = t_cnt,
                             .b = t_ec});
          count_reg = t_n;
        }
        planted.push_back({.op = Opcode::kReport, .a = ch.bases[i].id,
                           .b = count_reg,
                           .imm = ch.bases[i].offset + e.offset,
                           .size = e.width,
                           .target = e.is_write ? 1u : 0u,
                           .instrumented = true});
        ++stats.reports_inserted;
      }
      ch.call->imm = ensure_bare_clone(*ctx, ch.callee, stats);
      ++stats.call_batched;
    }
    auto& pre = fn.blocks[m->preheader].instrs;
    pre.insert(pre.end() - 1, planted.begin(), planted.end());
  }
}

// ---------------------------------------------------------------------------
// Thread-escape skipping
// ---------------------------------------------------------------------------

/// Drops instrumentation from accesses proven confined to the invoking
/// thread's private heap span: the value-numbered address is (stable
/// argument k) + c with the whole [c, c + size) window inside the proven
/// headroom of (fn, k). Runs before batching/merging, so extras are still
/// zero and the later stages simply never see the dropped accesses.
void apply_escape(Function& fn, const std::vector<std::uint64_t>& confined,
                  const PassOptions& options, PassStats& stats) {
  bool any = false;
  for (const std::uint64_t len : confined) any = any || len > 0;
  if (!any) return;

  const std::vector<bool> stable = stable_args(fn);
  const Cfg cfg(fn);
  const ConstantFacts consts = analyze_constants(fn, cfg);
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    ValueNumbering vn(fn);
    vn.seed_constants(consts.block_entry[b]);
    for (Instr& in : fn.blocks[b].instrs) {
      if (is_memory_access(in.op) && in.instrumented) {
        const ValueNumbering::Value v = vn.address_of(in);
        if (v.base == ValueNumbering::Value::Base::kEntryReg &&
            v.id < fn.num_args && stable[v.id] && v.offset >= 0 &&
            confined[v.id] > 0 &&
            static_cast<std::uint64_t>(v.offset) + in.size <= confined[v.id]) {
          in.instrumented = false;
          ++stats.escape_skipped;
          --stats.instrumented_accesses;
          if (options.escape_log != nullptr) {
            options.escape_log->push_back({fn.name, v.id, v.offset, in.size,
                                           in.op == Opcode::kStore});
          }
        }
      }
      vn.apply(in);
    }
  }
}

// ---------------------------------------------------------------------------
// Sync-scoped pruning
// ---------------------------------------------------------------------------

/// Drops instrumentation from accesses that provably land inside a range the
/// executing thread claimed through a kHandoff earlier in the same block.
/// The runtime's handoff claim escalates every line the range overlaps and
/// pushes one synthetic same-thread write through each line's history
/// automaton, leaving it exactly in the {owner, W} state — the one state in
/// which any further access by that thread is a no-op for invalidation
/// detection. Dropping such an access therefore never loses an invalidation
/// (the claim stands in for the pruned first write); like escape skipping it
/// does drop the delivery itself, so sampled word counts shrink.
///
/// The proof obligation is temporal, so a held range dies at anything that
/// could republish ownership to another thread: a later kAcquire/kRelease
/// (epoch rotation), a call unless its callee summary is exact and
/// sync-free, and the end of the block. Ranges are tracked as value-numbered
/// (base, [lo, hi)) intervals, so aliased registers and offsets split
/// between register and immediate cannot defeat the membership test, and a
/// redefined register simply stops resolving to the held base value.
/// `transfer` (optional) is the function's per-argument handoff-managed
/// headroom from EscapeFacts::transfer_len: the harness promised — verified
/// at bind time and propagated through call sites — that every invocation
/// receives the argument's pointee through a kHandoff ownership transfer to
/// the invoking thread. That transfer IS the claim the block-local rule
/// needs, already standing when the function is entered, so the ENTRY block
/// opens with a held range per stable transferable argument: cross-call
/// handoff evidence prunes accesses no local kHandoff could cover. The
/// ranges obey the same lifetime rules as local claims (they die at syncs,
/// unsummarized calls, and the entry block's end — later blocks may execute
/// after an in-function epoch rotation, so the entry promise cannot reach
/// them).
void apply_sync_scoped(Function& fn, const SummaryTable* summaries,
                       const std::vector<std::uint64_t>* transfer,
                       PassStats& stats) {
  const Cfg cfg(fn);
  const ConstantFacts consts = analyze_constants(fn, cfg);
  const std::vector<bool> stable = stable_args(fn);

  struct Held {
    ValueNumbering::Value::Base base;
    std::uint32_t id;
    std::int64_t lo;
    std::int64_t hi;
  };

  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    ValueNumbering vn(fn);
    vn.seed_constants(consts.block_entry[b]);
    std::vector<Held> held;
    if (b == Cfg::kEntry && transfer != nullptr) {
      for (std::uint32_t a = 0; a < fn.num_args && a < transfer->size();
           ++a) {
        if ((*transfer)[a] > 0 && stable[a]) {
          held.push_back({ValueNumbering::Value::Base::kEntryReg, a, 0,
                          static_cast<std::int64_t>((*transfer)[a])});
        }
      }
    }
    for (Instr& in : fn.blocks[b].instrs) {
      switch (in.op) {
        case Opcode::kHandoff: {
          // A handoff bumps the receiving thread's epoch before claiming, so
          // sync words installed by EARLIER claims go stale on any line the
          // new claim does not re-cover — previously held ranges lose their
          // runtime suppression guarantee and must close here.
          held.clear();
          // Only a compile-time-constant positive length gives a provable
          // claimed range; a dynamic length opens nothing.
          const ValueNumbering::Value base = vn.address_of(in);
          const ValueNumbering::Value len = vn.value_of(in.b);
          if (len.is_const() && len.offset > 0) {
            held.push_back(
                {base.base, base.id, base.offset, base.offset + len.offset});
          }
          break;
        }
        case Opcode::kAcquire:
        case Opcode::kRelease:
          held.clear();
          break;
        case Opcode::kCall: {
          const auto callee = static_cast<std::size_t>(in.imm);
          const bool benign = summaries != nullptr &&
                              callee < summaries->per_function.size() &&
                              summaries->per_function[callee].exact &&
                              !summaries->per_function[callee].syncs;
          if (!benign) held.clear();
          break;
        }
        default:
          if (is_memory_access(in.op) && in.instrumented &&
              in.extra_reads == 0 && in.extra_writes == 0 && !held.empty()) {
            const ValueNumbering::Value v = vn.address_of(in);
            for (const Held& h : held) {
              if (v.base == h.base && v.id == h.id && v.offset >= h.lo &&
                  v.offset + in.size <= h.hi) {
                in.instrumented = false;
                ++stats.sync_scoped_skipped;
                --stats.instrumented_accesses;
                break;
              }
            }
          }
          break;
      }
      vn.apply(in);
    }
  }
}

// ---------------------------------------------------------------------------
// Stage 3: dominance/chain merging
// ---------------------------------------------------------------------------

/// Folds repeated instrumentation of one value-numbered (address, width)
/// into the first instrumented access along a linear block chain — a
/// maximal path B0 → B1 → ... where every edge is single-successor into
/// single-predecessor, so all blocks provably execute the same number of
/// times. The later access keeps running; only its runtime call moves onto
/// the first access as a +1r/+1w compensation extra. Within one block this
/// also subsumes what per-block dedup missed: aliased registers and offsets
/// split between register and immediate, which value numbering unifies.
///
/// Equivalence caveat: extras are delivered reads-then-writes at the kept
/// access, so an original per-address sequence like R,W,R reaches the
/// detector as R,R,W. Counts and kinds are conserved exactly, but the
/// within-thread order of same-address, same-width accesses is not. This is
/// sound for the current runtime — the history automaton and word histogram
/// are insensitive to permuting one thread's consecutive same-address R/W
/// deliveries (the property test in test_analysis.cpp checks bit-identical
/// reports) — and must be revisited if the detector ever becomes
/// order-sensitive within a thread.
void merge_chains(Function& fn, PassStats& stats) {
  const Cfg cfg(fn);
  const ConstantFacts consts = analyze_constants(fn, cfg);

  auto has_linear_pred = [&](std::uint32_t b) {
    for (const std::uint32_t p : cfg.preds(b)) {
      if (cfg.linear_edge(p, b)) return true;
    }
    return false;
  };

  for (const std::uint32_t head : cfg.reverse_postorder()) {
    if (has_linear_pred(head)) continue;  // interior of some chain

    using Key = std::tuple<ValueNumbering::Value::Base, std::uint32_t,
                           std::int64_t, std::uint32_t>;
    std::map<Key, Instr*> first;  // canonical (addr, width) → kept access
    ValueNumbering vn(fn);
    vn.seed_constants(consts.block_entry[head]);

    for (std::uint32_t cur = head;;) {
      for (Instr& in : fn.blocks[cur].instrs) {
        if (is_memory_access(in.op) && in.instrumented) {
          const ValueNumbering::Value v = vn.address_of(in);
          const Key key{v.base, v.id, v.offset, in.size};
          auto [it, inserted] = first.try_emplace(key, &in);
          if (!inserted) {
            Instr& kept = *it->second;
            if (in.op == Opcode::kStore) {
              kept.extra_writes += 1 + in.extra_writes;
              kept.extra_reads += in.extra_reads;
            } else {
              kept.extra_reads += 1 + in.extra_reads;
              kept.extra_writes += in.extra_writes;
            }
            in.instrumented = false;
            in.extra_reads = 0;
            in.extra_writes = 0;
            ++stats.dominance_merged;
            --stats.instrumented_accesses;
          }
        }
        vn.apply(in);
      }
      const auto& succs = cfg.succs(cur);
      if (succs.size() == 1 && cfg.linear_edge(cur, succs[0])) {
        cur = succs[0];
      } else {
        break;
      }
    }
  }
}

}  // namespace

PassStats run_instrumentation_pass(Module& module, const PassOptions& options,
                                   SummaryTable* summaries_out) {
  PassStats stats;
  const std::size_t original_count = module.functions.size();
  const bool interproc =
      options.interprocedural || options.escape != nullptr;

  // Without the interprocedural layer, functions are processed in module
  // order, exactly as before. With it, callees come first so every summary
  // a caller consults is already final — and the vector is reserved for one
  // clone per original up front, so Function references held while clones
  // are appended stay valid.
  std::unique_ptr<CallGraph> cg;
  std::vector<std::uint32_t> order(original_count);
  std::iota(order.begin(), order.end(), 0u);
  if (interproc) {
    cg = std::make_unique<CallGraph>(module);
    order = cg->bottom_up();
    module.functions.reserve(2 * original_count);
  }

  EscapeFacts escape_facts;
  if (options.escape != nullptr) {
    escape_facts = analyze_escape(module, *cg, *options.escape);
  }

  SummaryTable summaries;
  std::vector<std::int32_t> clone_of(original_count, -1);
  InterprocCtx ctx{module, summaries, clone_of, original_count};
  if (interproc) summaries.per_function.resize(original_count);

  for (const std::uint32_t f : order) {
    Function& fn = module.functions[f];
    const bool allowed =
        (options.whitelist.empty() || contains(options.whitelist, fn.name)) &&
        !contains(options.blacklist, fn.name);
    if (allowed) {
      instrument_function(fn, options, stats);
      if (options.escape != nullptr) {
        apply_escape(fn, escape_facts.confined_len[f], options, stats);
      }
      // Sync-scoped pruning runs while extras are still zero, before
      // batching/merging claim accesses: each access is dropped by at most
      // one whole-function transformation. With the interprocedural layer
      // on, callee summaries are final here (bottom-up order) so held
      // ranges can survive exact sync-free calls.
      if (options.sync_scoped) {
        // Harness-verified transfer facts extend the held-range rule across
        // calls: a transferable argument arrives pre-claimed (see
        // apply_sync_scoped).
        const std::vector<std::uint64_t>* transfer =
            options.escape != nullptr && f < escape_facts.transfer_len.size()
                ? &escape_facts.transfer_len[f]
                : nullptr;
        apply_sync_scoped(fn, interproc ? &summaries : nullptr, transfer,
                          stats);
      }
      // Batching runs before merging so hoisted accesses are out of the way:
      // merging an access and then multiplying its extras by a trip count
      // would double-deliver. In this order each access is claimed by at
      // most one whole-function transformation.
      if (options.loop_batching) {
        batch_loops(fn, stats, interproc ? &ctx : nullptr);
      }
      if (options.dominance_elim) merge_chains(fn, stats);
    } else {
      ++stats.skipped_functions;
    }
    // Summarize even excluded functions: uninstrumented code deliverably
    // does nothing, which is itself an exact (often empty) summary callers
    // can batch through.
    if (interproc) {
      summaries.per_function[f] = summarize_function(module, f, *cg, summaries);
      if (summaries.per_function[f].exact) {
        ++stats.callee_summaries;
      } else {
        ++stats.summary_top;
      }
    }
  }
  if (summaries_out != nullptr) *summaries_out = std::move(summaries);
  return stats;
}

PassStats run_instrumentation_pass(Module& module,
                                   const PassOptions& options) {
  return run_instrumentation_pass(module, options, nullptr);
}

RepairRewriteStats apply_repair_rewrite(Module& module,
                                        const RepairLayout& layout) {
  RepairRewriteStats stats;
  PRED_CHECK(layout.slot_stride > 0);
  PRED_CHECK(layout.pad_to >= layout.slot_stride);
  const std::int64_t stride = static_cast<std::int64_t>(layout.slot_stride);
  const std::int64_t pad_to = static_cast<std::int64_t>(layout.pad_to);

  for (Function& fn : module.functions) {
    if (layout.base_arg >= fn.num_args) continue;
    // An unstable base argument could alias the region through a rewritten
    // register; value numbering would no longer prove region membership.
    if (!stable_args(fn)[layout.base_arg]) continue;

    const Cfg cfg(fn);
    const ConstantFacts consts = analyze_constants(fn, cfg);
    for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
      ValueNumbering vn(fn);
      vn.seed_constants(consts.block_entry[b]);
      for (Instr& in : fn.blocks[b].instrs) {
        if (is_memory_intrinsic(in.op)) {
          ++stats.opaque;  // dynamic-range accesses are never relocated
        } else if (is_memory_access(in.op) || in.op == Opcode::kReport) {
          const ValueNumbering::Value v = vn.address_of(in);
          if (v.base == ValueNumbering::Value::Base::kEntryReg &&
              v.id == layout.base_arg) {
            const std::int64_t rel = v.offset - layout.region_offset;
            if (rel >= 0 &&
                static_cast<std::uint64_t>(rel) < layout.extent) {
              const std::int64_t slot = rel / stride;
              const std::int64_t within = rel % stride;
              if (within + in.size <= stride) {
                // Remapping the immediate moves the access no matter how
                // the original offset was split between registers and imm.
                in.imm += slot * pad_to + within - rel;
                ++stats.retargeted;
              } else {
                ++stats.straddling;  // spans two slots: cannot relocate
              }
            }
          } else if (v.base != ValueNumbering::Value::Base::kEntryReg) {
            ++stats.opaque;
          }
        }
        vn.apply(in);
      }
    }
  }
  return stats;
}

}  // namespace pred::ir
