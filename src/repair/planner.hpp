// Plan compilation: FixSuggestions (advice/fix_advisor) are matched back to
// the report findings they were derived from and lowered into RepairPlan
// entries keyed by stable site identity. Suggestions without a layout fix
// (true sharing) or without a stable identity (unattributed heap objects)
// compile to nothing.
#pragma once

#include <string>
#include <vector>

#include "advice/fix_advisor.hpp"
#include "repair/plan.hpp"
#include "runtime/callsite.hpp"
#include "runtime/report.hpp"

namespace pred::repair {

struct PlannerOptions {
  std::size_t line_size = 64;
  /// Offset-evidence words kept per entry (the hottest first).
  std::size_t max_evidence = 16;
};

/// Compiles suggestions into an applicable plan. `report` supplies the
/// word-level evidence; `callsites` resolves heap objects to their stable
/// site keys. Entries are deduplicated by site (several findings of one
/// callsite — e.g. many 16-byte counters packed by one allocation loop —
/// become one directive).
RepairPlan compile_plan(const Report& report,
                        const std::vector<FixSuggestion>& suggestions,
                        const CallsiteTable& callsites,
                        const PlannerOptions& options = {});

/// Human-readable plan listing (one block per entry).
std::string format_plan(const RepairPlan& plan);

}  // namespace pred::repair
