// Micro-benchmarks (google-benchmark) for the runtime's hot paths: the
// Figure 1 HandleAccess fast path, escalated-line detail tracking, the
// sampling fast-out, allocator throughput, and the two-entry history table.
// These quantify the per-access costs behind Figure 7's overheads.
#include <benchmark/benchmark.h>

#include "alloc/predator_allocator.hpp"
#include "runtime/history_table.hpp"
#include "runtime/runtime.hpp"

namespace pred {
namespace {

RuntimeConfig bench_config(std::uint64_t tracking_threshold) {
  RuntimeConfig cfg;
  cfg.tracking_threshold = tracking_threshold;
  cfg.prediction_threshold = ~std::uint64_t{0} >> 1;
  return cfg;
}

alignas(64) char g_mem[1 << 16];

void BM_HistoryTablePingPong(benchmark::State& state) {
  HistoryTable table;
  ThreadId tid = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.access(tid ^= 1, AccessType::kWrite));
  }
}
BENCHMARK(BM_HistoryTablePingPong);

void BM_HandleAccessUntrackedRegion(benchmark::State& state) {
  Runtime rt(bench_config(1 << 30));
  for (auto _ : state) {
    rt.handle_access(reinterpret_cast<Address>(g_mem), AccessType::kWrite, 0);
  }
}
BENCHMARK(BM_HandleAccessUntrackedRegion);

void BM_HandleAccessFastPath(benchmark::State& state) {
  // Below TrackingThreshold forever: the pure counting path of Figure 1.
  Runtime rt(bench_config(1 << 30));
  rt.register_region(reinterpret_cast<Address>(g_mem), sizeof(g_mem));
  for (auto _ : state) {
    rt.handle_access(reinterpret_cast<Address>(g_mem), AccessType::kWrite, 0);
  }
}
BENCHMARK(BM_HandleAccessFastPath);

void BM_HandleAccessTrackedLine(benchmark::State& state) {
  Runtime rt(bench_config(1));
  rt.register_region(reinterpret_cast<Address>(g_mem), sizeof(g_mem));
  rt.handle_access(reinterpret_cast<Address>(g_mem), AccessType::kWrite, 0);
  for (auto _ : state) {
    rt.handle_access(reinterpret_cast<Address>(g_mem), AccessType::kWrite, 0);
  }
}
BENCHMARK(BM_HandleAccessTrackedLine);

void BM_HandleAccessSampledOut(benchmark::State& state) {
  // Outside the sampling window: counter bump only.
  RuntimeConfig cfg = bench_config(1);
  cfg.sample_window = 1;
  cfg.sample_interval = 1 << 30;
  Runtime rt(cfg);
  rt.register_region(reinterpret_cast<Address>(g_mem), sizeof(g_mem));
  for (int i = 0; i < 4; ++i) {
    rt.handle_access(reinterpret_cast<Address>(g_mem), AccessType::kWrite, 0);
  }
  for (auto _ : state) {
    rt.handle_access(reinterpret_cast<Address>(g_mem), AccessType::kWrite, 0);
  }
}
BENCHMARK(BM_HandleAccessSampledOut);

void BM_AllocateFreeSmall(benchmark::State& state) {
  Runtime rt(bench_config(1 << 30));
  PredatorAllocator alloc(rt, 64 * 1024 * 1024);
  for (auto _ : state) {
    void* p = alloc.allocate(48, {"bench.c:1"});
    benchmark::DoNotOptimize(p);
    alloc.deallocate(p);
  }
}
BENCHMARK(BM_AllocateFreeSmall);

}  // namespace
}  // namespace pred
