// Fleet merge algebra for MonitorSnapshots.
//
// A fleet client streams *cumulative* snapshots (every counter in a
// MonitorSnapshot is monotone over the session's life, and `sequence`
// totally orders the snapshots of one client). That makes fleet
// aggregation a lattice join rather than a sum: the collector's state is a
// product of per-key "newest wins" semilattices —
//
//   (client uid)            -> the client's newest scalar totals
//   (client uid, line)      -> the newest top-K line entry seen for it
//   (client uid, site key)  -> the newest callsite rollup entry seen
//
// joined pointwise under a deterministic total order (sequence first, then
// full content as the tie-break). Join is commutative, associative, and
// idempotent — re-delivered frames, reordered transports, and arbitrary
// merge trees all converge to the same state, which is what lets the
// sharded collector (src/collect/) ingest in parallel and still match a
// sequential oracle fold bit-for-bit. tests/test_collector.cpp proves the
// algebra laws over randomized snapshot sets.
//
// Drop reconciliation: rings shed events visibly (`events_dropped`), and a
// shed event could have been an invalidation or sample anywhere, so the
// rollup reports every count as a conservative interval
// [exact, exact + dropped] — exact sums what survived aggregation, the
// upper bound charges every dropped event in the fleet against the count.
// A lossless oracle run always lands inside the interval.
//
// One subtlety the per-line decomposition handles: a line can fall out of
// a client's top-K between snapshots. Whole-snapshot newest-wins would
// forget it; per-(client, line) newest-wins retains its last published
// counts, which — counters being monotone — remain a valid lower bound.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "monitor/monitor.hpp"

namespace pred {

// ---------------------------------------------------------------------------
// Records and their total orders
// ---------------------------------------------------------------------------

/// Deterministic total order over snapshots: sequence, then every scalar,
/// then the entry vectors lexicographically. Returns <0, 0, >0.
int compare_snapshots(const MonitorSnapshot& a, const MonitorSnapshot& b);

/// One client's newest whole-snapshot scalars (top_lines/callsites kept for
/// rollup label resolution; the per-key maps below are authoritative for
/// lines and sites).
struct ClientRec {
  std::uint64_t pid = 0;
  MonitorSnapshot latest;
};

struct LineRec {
  std::uint64_t sequence = 0;  ///< snapshot the entry was published in
  MonitorSnapshot::LineEntry entry;
};

struct SiteRec {
  std::uint64_t sequence = 0;
  MonitorSnapshot::CallsiteEntry entry;
};

int compare_line_recs(const LineRec& a, const LineRec& b);
int compare_site_recs(const SiteRec& a, const SiteRec& b);

/// Stable per-client key of a callsite rollup entry ("c:<id>" for interned
/// callsites, "g:<label>" for globals) — id spaces are per-process, so the
/// key is only ever compared within one client.
std::string site_key(const MonitorSnapshot::CallsiteEntry& ce);

/// A snapshot decomposed into the records the join operates on. The
/// sharded collector routes `lines`/`sites` to shards by key hash; the
/// sequential oracle absorbs them directly — both through the exact same
/// join rules, which is the agreement argument.
struct SnapshotRecords {
  std::uint64_t client_uid = 0;
  ClientRec client;
  std::vector<std::pair<Address, LineRec>> lines;
  std::vector<std::pair<std::string, SiteRec>> sites;
};

SnapshotRecords decompose(std::uint64_t client_uid, std::uint64_t client_pid,
                          const MonitorSnapshot& snap);

// ---------------------------------------------------------------------------
// Fleet state (the sequential / oracle implementation of the join)
// ---------------------------------------------------------------------------

/// The fleet-wide rollup served to operators: exact counts plus
/// conservative [exact, upper] bounds that absorb ring drops.
struct FleetRollup {
  std::uint64_t clients = 0;
  std::uint64_t events_seen = 0;
  std::uint64_t events_dropped = 0;
  std::uint64_t escalations = 0;
  std::uint64_t invalidations = 0;        ///< exact (aggregated events only)
  std::uint64_t invalidations_upper = 0;  ///< + events_dropped
  std::uint64_t samples = 0;
  std::uint64_t samples_upper = 0;
  std::uint64_t predictions = 0;
  std::uint64_t virtual_lines = 0;
  std::uint64_t lines_tracked = 0;  ///< across clients

  struct Line {
    std::uint64_t client_uid = 0;
    std::uint64_t client_pid = 0;
    Address line_start = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t invalidations_upper = 0;
    std::uint64_t samples = 0;
    std::uint64_t sample_writes = 0;
    std::uint64_t predictions = 0;
    bool escalated = false;
    bool attributed = false;
    bool is_global = false;
    std::string label;
  };
  /// Fleet-wide top-K lines by exact invalidations (then samples, then
  /// (uid, line) for determinism).
  std::vector<Line> top_lines;

  struct Site {
    std::string label;  ///< symbolic source location, stable fleet-wide
    std::uint64_t invalidations = 0;
    std::uint64_t invalidations_upper = 0;
    std::uint64_t samples = 0;
    std::uint64_t samples_upper = 0;
    std::uint64_t lines = 0;    ///< distinct hot lines across the fleet
    std::uint64_t clients = 0;  ///< clients reporting this site
  };
  /// Callsite rollup grouped by label across clients, sorted by exact
  /// invalidations descending.
  std::vector<Site> sites;
};

std::string format_rollup(const FleetRollup& rollup);

/// Sequential fleet state: the reference implementation of the join. The
/// collector's sharded state must agree with this exactly for any
/// interleaving of the same frames.
class FleetState {
 public:
  /// Joins one snapshot into the state.
  void absorb(std::uint64_t client_uid, std::uint64_t client_pid,
              const MonitorSnapshot& snap);
  void absorb(const SnapshotRecords& records);

  /// Joins another fleet state (e.g. a sub-collector's) into this one.
  void merge(const FleetState& other);

  FleetRollup rollup(std::size_t top_k) const;

  std::size_t num_clients() const { return clients_.size(); }

  /// Structural equality (used by the algebra-law and shard-consistency
  /// tests).
  bool operator==(const FleetState& other) const;

 private:
  friend class Collector;
  std::map<std::uint64_t, ClientRec> clients_;
  std::map<std::pair<std::uint64_t, Address>, LineRec> lines_;
  std::map<std::pair<std::uint64_t, std::string>, SiteRec> sites_;
};

/// Fold lines/sites/clients maps into a rollup — shared by FleetState and
/// the sharded Collector (which passes its shards' map fragments).
FleetRollup build_rollup(
    const std::map<std::uint64_t, ClientRec>& clients,
    const std::map<std::pair<std::uint64_t, Address>, LineRec>& lines,
    const std::map<std::pair<std::uint64_t, std::string>, SiteRec>& sites,
    std::size_t top_k);

}  // namespace pred
