file(REMOVE_RECURSE
  "CMakeFiles/predict_latent_layout.dir/predict_latent_layout.cpp.o"
  "CMakeFiles/predict_latent_layout.dir/predict_latent_layout.cpp.o.d"
  "predict_latent_layout"
  "predict_latent_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predict_latent_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
