// Tests for the prediction engine (Section 3): hot-word extraction, the
// pair search with its three eligibility conditions, the invalidation
// estimate, virtual-line placement (Figure 4), and the two Figure 3
// scenarios end-to-end (double line size; shifted object placement).
#include <gtest/gtest.h>

#include "predict/hot_access.hpp"
#include "predict/predictor.hpp"
#include "runtime/report.hpp"

namespace pred {
namespace {

constexpr auto R = AccessType::kRead;
constexpr auto W = AccessType::kWrite;
constexpr LineGeometry kGeo{};

HotWord hw(Address addr, std::uint64_t reads, std::uint64_t writes,
           ThreadId owner, bool shared = false) {
  return HotWord{addr, reads, writes, owner, shared};
}

TEST(HotAccess, AverageWordAccesses) {
  std::vector<WordAccess> words(8);
  words[0].reads = 80;
  words[3].writes = 80;
  EXPECT_EQ(average_word_accesses(words, 8), 20u);
  EXPECT_EQ(average_word_accesses({}, 8), 0u);
}

TEST(HotAccess, HotWordsExceedThreshold) {
  std::vector<WordAccess> words(8);
  words[1].writes = 100;
  words[1].owner = 3;
  words[2].reads = 5;
  words[2].owner = 1;
  const auto hot = hot_words(words, 640, kGeo, 10);
  ASSERT_EQ(hot.size(), 1u);
  EXPECT_EQ(hot[0].address, 648u);
  EXPECT_EQ(hot[0].writes, 100u);
  EXPECT_EQ(hot[0].owner, 3u);
}

TEST(HotAccess, PairEligibilityRules) {
  // (2) at least one write:
  EXPECT_FALSE(pair_eligible(hw(0, 100, 0, 0), hw(64, 100, 0, 1)));
  EXPECT_TRUE(pair_eligible(hw(0, 0, 100, 0), hw(64, 100, 0, 1)));
  // (3) different threads:
  EXPECT_FALSE(pair_eligible(hw(0, 0, 100, 2), hw(64, 100, 0, 2)));
  // shared words count as any-thread:
  EXPECT_TRUE(pair_eligible(hw(0, 0, 100, 2),
                            hw(64, 100, 0, WordAccess::kSharedWord, true)));
}

TEST(HotAccess, InvalidationEstimateIsConservativeInterleaving) {
  // Both write 100 times with ample opposite traffic: 200 estimated.
  EXPECT_EQ(estimate_pair_invalidations(hw(0, 0, 100, 0), hw(64, 0, 100, 1)),
            200u);
  // One-sided writes capped by the other side's traffic.
  EXPECT_EQ(estimate_pair_invalidations(hw(0, 0, 100, 0), hw(64, 5, 0, 1)),
            5u);
}

TEST(HotAccess, FindHotPairsOrdersByAddress) {
  const auto pairs =
      find_hot_pairs({hw(648, 0, 100, 0)}, {hw(600, 100, 50, 1)});
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].x.address, 600u);
  EXPECT_EQ(pairs[0].y.address, 648u);
  EXPECT_GT(pairs[0].estimated_invalidations, 0u);
}

// --- end-to-end scenarios over a real runtime ------------------------------

struct PredictorFixture : ::testing::Test {
  static RuntimeConfig config() {
    RuntimeConfig cfg;
    cfg.tracking_threshold = 2;
    cfg.prediction_threshold = 64;
    cfg.report_invalidation_threshold = 50;
    return cfg;
  }

  PredictorFixture() : rt(config()) {
    predictor.attach(rt);
    region = rt.register_region(reinterpret_cast<Address>(buf), 8192);
  }

  Address addr(std::size_t off) const {
    return reinterpret_cast<Address>(buf) + off;
  }
  /// Line-aligned base offset inside the buffer with an even line index,
  /// so double-line candidates are possible.
  std::size_t even_base() const {
    const std::size_t idx0 = reinterpret_cast<Address>(buf) / 64;
    return idx0 % 2 == 0 ? 0 : 64;
  }

  alignas(64) char buf[8192] = {};
  Runtime rt;
  Predictor predictor;
  ShadowSpace* region;
};

TEST_F(PredictorFixture, Figure3bDoubleLinePrediction) {
  // Thread 0 hammers the end of even line L; thread 1 hammers the start of
  // line L+1. No physical sharing — but doubling the line size merges them.
  const std::size_t base = even_base();
  for (int i = 0; i < 400; ++i) {
    rt.handle_access(addr(base + 56), W, 0);
    rt.handle_access(addr(base + 64), W, 1);
  }
  ASSERT_GT(predictor.candidates_nominated(), 0u);
  bool found_double = false;
  bool found_shifted = false;
  for (const auto& vl : rt.virtual_lines()) {
    if (vl.kind() == VirtualLineTracker::Kind::kDoubleLine) {
      found_double = true;
      EXPECT_EQ(vl.size(), 128u);
      EXPECT_EQ(vl.start() % 128, 0u);  // aligned pair (2i, 2i+1)
      EXPECT_GT(vl.invalidations(), 50u);
    }
    if (vl.kind() == VirtualLineTracker::Kind::kShifted) {
      found_shifted = true;
      EXPECT_EQ(vl.size(), 64u);
      // Figure 4 placement: equal slack around the hot pair. d = 8, so the
      // line starts 28 bytes (word-aligned: 32) before X.
      EXPECT_LE(vl.start(), addr(base + 56));
      EXPECT_GT(vl.start() + vl.size(), addr(base + 64));
      EXPECT_GT(vl.invalidations(), 50u);
    }
  }
  EXPECT_TRUE(found_double);
  EXPECT_TRUE(found_shifted);

  // And the report surfaces it as a predicted false sharing finding.
  const Report rep = build_report(rt);
  ASSERT_FALSE(rep.findings.empty());
  EXPECT_TRUE(rep.findings[0].predicted);
  EXPECT_FALSE(rep.findings[0].observed);
}

TEST_F(PredictorFixture, NoPredictionForSameThreadNeighbors) {
  const std::size_t base = even_base();
  for (int i = 0; i < 400; ++i) {
    rt.handle_access(addr(base + 56), W, 7);
    rt.handle_access(addr(base + 64), W, 7);  // same thread
  }
  EXPECT_EQ(predictor.candidates_nominated(), 0u);
}

TEST_F(PredictorFixture, NoPredictionForReadOnlyNeighbors) {
  const std::size_t base = even_base();
  // Writes by one thread confined to one line; the neighbor only reads its
  // own line: hot pair exists but read-read between the two... actually the
  // writer word pairs with the reader word — eligible. Make both sides
  // read-only instead; reads alone never even escalate.
  for (int i = 0; i < 400; ++i) {
    rt.handle_access(addr(base + 56), R, 0);
    rt.handle_access(addr(base + 64), R, 1);
  }
  EXPECT_EQ(predictor.candidates_nominated(), 0u);
  EXPECT_TRUE(build_report(rt).findings.empty());
}

TEST_F(PredictorFixture, ColdNeighborsProduceNoCandidates) {
  // A hot line whose neighbors are never touched: nothing to pair with.
  const std::size_t base = even_base();
  for (int i = 0; i < 400; ++i) {
    rt.handle_access(addr(base + 0), W, 0);
    rt.handle_access(addr(base + 8), W, 0);  // same thread, same line
  }
  EXPECT_EQ(predictor.candidates_nominated(), 0u);
}

TEST_F(PredictorFixture, VerificationRejectsNonInterleavedCandidates) {
  // Hot pair from different threads, but the threads are active in
  // disjoint phases — nomination happens (conservatively), verification
  // then sees few invalidations on the virtual line.
  const std::size_t base = even_base();
  for (int i = 0; i < 300; ++i) rt.handle_access(addr(base + 56), W, 0);
  for (int i = 0; i < 300; ++i) rt.handle_access(addr(base + 64), W, 1);
  // Candidates may exist...
  // (thread 1's line crossed the prediction threshold after thread 0 went
  // quiet)
  for (const auto& vl : rt.virtual_lines()) {
    // ...but the verified invalidation counts stay tiny.
    EXPECT_LE(vl.invalidations(), 2u);
  }
  const Report rep = build_report(rt);
  for (const auto& f : rep.findings) {
    EXPECT_FALSE(f.predicted) << "phase-disjoint access must not verify";
  }
}

TEST_F(PredictorFixture, DedupNominatesEachVirtualLineOnce) {
  const std::size_t base = even_base();
  for (int i = 0; i < 2000; ++i) {
    rt.handle_access(addr(base + 56), W, 0);
    rt.handle_access(addr(base + 64), W, 1);
  }
  // Both lines cross PredictionThreshold and analyze; the shared candidate
  // set must be deduplicated.
  std::size_t doubles = 0;
  for (const auto& vl : rt.virtual_lines()) {
    doubles += vl.kind() == VirtualLineTracker::Kind::kDoubleLine;
  }
  EXPECT_LE(doubles, 1u);
}

TEST_F(PredictorFixture, AnalyzeLineDirectlyIsSafeOnColdLines) {
  predictor.analyze_line(rt, *region, 5);  // no tracker: no-op
  EXPECT_EQ(predictor.candidates_nominated(), 0u);
}

TEST_F(PredictorFixture, WholeObjectAdjustmentCoversOtherHotLines) {
  // Section 3.4: the shifted placement must be applied to the entire
  // object, not just the hot pair's window. A 4-line object with hot pairs
  // at one boundary must grow shifted virtual lines over its *other* hot
  // lines too.
  const std::size_t base = even_base();
  ObjectInfo obj;
  obj.start = addr(base);
  obj.size = 256;  // 4 lines
  obj.callsite = rt.callsites().intern({"whole.c:1"});
  rt.objects().add(obj);

  for (int i = 0; i < 400; ++i) {
    rt.handle_access(addr(base + 56), AccessType::kWrite, 0);
    rt.handle_access(addr(base + 64), AccessType::kWrite, 1);
    // A third thread hammering the object's last line (not part of any hot
    // pair: its neighbors inside the object are these same threads').
    rt.handle_access(addr(base + 192), AccessType::kWrite, 2);
  }
  // Shifted virtual lines must exist beyond the pair's own window —
  // covering the line the third thread owns, at the same delta.
  bool covers_far_line = false;
  for (const auto& vl : rt.virtual_lines()) {
    if (vl.kind() != VirtualLineTracker::Kind::kShifted) continue;
    if (vl.start() >= addr(base + 128) && vl.start() < addr(base + 256)) {
      covers_far_line = true;
      EXPECT_NE(vl.start() % 64, 0u) << "adjusted lines must be shifted";
    }
  }
  EXPECT_TRUE(covers_far_line);
}

TEST_F(PredictorFixture, WholeObjectAdjustmentCanBeDisabled) {
  PredictorConfig cfg;
  cfg.adjust_whole_object = false;
  Predictor local(cfg);
  Runtime rt2(config());
  local.attach(rt2);
  auto* region2 = rt2.register_region(reinterpret_cast<Address>(buf), 8192);
  (void)region2;
  ObjectInfo obj;
  obj.start = addr(0);
  obj.size = 256;
  rt2.objects().add(obj);
  const std::size_t base = even_base();
  for (int i = 0; i < 400; ++i) {
    rt2.handle_access(addr(base + 56), AccessType::kWrite, 0);
    rt2.handle_access(addr(base + 64), AccessType::kWrite, 1);
    rt2.handle_access(addr(base + 192), AccessType::kWrite, 2);
  }
  for (const auto& vl : rt2.virtual_lines()) {
    if (vl.kind() != VirtualLineTracker::Kind::kShifted) continue;
    // Without whole-object adjustment every shifted line must stay within
    // one line of the hot pair's addresses.
    EXPECT_LE(vl.start(), addr(base + 64));
    EXPECT_GE(vl.start() + vl.size(), addr(base + 56));
  }
}

}  // namespace
}  // namespace pred
