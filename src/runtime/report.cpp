#include "runtime/report.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>

namespace pred {

const char* to_string(SharingKind kind) {
  switch (kind) {
    case SharingKind::kNone: return "NONE";
    case SharingKind::kFalseSharing: return "FALSE SHARING";
    case SharingKind::kTrueSharing: return "TRUE SHARING";
    case SharingKind::kMixed: return "MIXED SHARING";
  }
  return "?";
}

SharingKind classify_words(const std::vector<WordReport>& words) {
  // True sharing: a word written by more than one thread (a shared word with
  // writes). False sharing: a word *owned and written* by one thread while a
  // different thread touches another word of the same line. Requiring the
  // writer word to be owned (not shared) keeps a pure contended counter plus
  // incidental private words classified as true sharing, which is how the
  // paper avoids false positives on true-sharing lines.
  bool true_sharing = false;
  bool false_sharing = false;
  for (const WordReport& a : words) {
    if (a.writes == 0) continue;
    if (a.shared) {
      true_sharing = true;
      continue;
    }
    for (const WordReport& b : words) {
      if (&a == &b) continue;
      if (b.reads + b.writes == 0) continue;
      if (b.shared || b.owner != a.owner) {
        false_sharing = true;
        break;
      }
    }
  }
  if (true_sharing && false_sharing) return SharingKind::kMixed;
  if (false_sharing) return SharingKind::kFalseSharing;
  if (true_sharing) return SharingKind::kTrueSharing;
  return SharingKind::kNone;
}

namespace {

/// Attribution key: the object's start address, or the line start for lines
/// we cannot map to a registered object.
struct Accumulator {
  std::map<Address, ObjectFinding> by_object;

  ObjectFinding& finding_for(const Runtime& rt, Address hot_addr,
                             Address fallback_start, std::size_t fallback_size) {
    auto obj = rt.objects().find(hot_addr);
    Address key = obj ? obj->start : fallback_start;
    auto [it, inserted] = by_object.try_emplace(key);
    if (inserted) {
      if (obj) {
        it->second.object = *obj;
        it->second.attributed = true;
      } else {
        it->second.object.start = fallback_start;
        it->second.object.size = fallback_size;
        it->second.attributed = false;
      }
    }
    return it->second;
  }
};

/// The hottest touched word's address, used to attribute a line that may
/// contain several objects to the object users most care about.
Address hottest_word(const LineFinding& lf) {
  Address best = lf.line_start;
  std::uint64_t best_count = 0;
  for (const WordReport& w : lf.words) {
    if (w.reads + w.writes > best_count) {
      best_count = w.reads + w.writes;
      best = w.address;
    }
  }
  return best;
}

}  // namespace

Report build_report(const Runtime& rt) {
  // Publish the calling thread's staged write counters so `writes_count`
  // below reflects every write this thread issued. Worker threads drain on
  // unbind/exit, so a report built after join sees all counts.
  flush_staged_writes();
  const RuntimeConfig& cfg = rt.config();
  const LineGeometry& geo = cfg.geometry;
  Report report;
  Accumulator acc;

  rt.for_each_region([&](const ShadowSpace& region) {
    region.for_each_tracker([&](std::size_t idx, CacheTracker* t) {
      const std::uint64_t inv = t->invalidations();
      report.total_invalidations += inv;
      if (inv < cfg.report_invalidation_threshold) return;

      LineFinding lf;
      lf.line_index = idx;
      lf.line_start = region.line_start(idx);
      lf.invalidations = inv;
      lf.sampled_accesses = t->sampled_accesses();
      lf.sampled_writes = t->sampled_writes();
      lf.total_accesses = t->total_accesses();
      lf.total_writes = region.writes_count(idx);
      const auto words = t->words_snapshot();
      for (std::size_t w = 0; w < words.size(); ++w) {
        if (!words[w].touched()) continue;
        WordReport wr;
        wr.address = lf.line_start + w * geo.word_size;
        wr.line_index = geo.line_index(wr.address);
        wr.reads = words[w].reads;
        wr.writes = words[w].writes;
        wr.owner = words[w].owner;
        wr.shared = words[w].shared();
        lf.words.push_back(wr);
      }
      lf.kind = classify_words(lf.words);

      ObjectFinding& of = acc.finding_for(rt, hottest_word(lf), lf.line_start,
                                          geo.line_size);
      of.observed = true;
      of.invalidations += lf.invalidations;
      of.sampled_accesses += lf.sampled_accesses;
      of.sampled_writes += lf.sampled_writes;
      of.total_accesses += lf.total_accesses;
      of.total_writes += lf.total_writes;
      of.lines.push_back(std::move(lf));
    });
  });

  for (const VirtualLineTracker& vl : rt.virtual_lines()) {
    const std::uint64_t inv = vl.invalidations();
    if (inv < cfg.report_invalidation_threshold) continue;
    PredictedFinding pf;
    pf.start = vl.start();
    pf.size = vl.size();
    pf.kind = vl.kind();
    pf.invalidations = inv;
    pf.accesses = vl.accesses();
    pf.hot_x = vl.hot_x();
    pf.hot_y = vl.hot_y();

    ObjectFinding& of =
        acc.finding_for(rt, pf.hot_x, vl.start(), vl.size());
    of.predicted = true;
    of.predicted_invalidations += inv;
    of.predictions.push_back(pf);
  }

  // Prediction-only findings have no hot physical line, but Figure 5 still
  // shows the object's access totals and word histogram: pull them from the
  // (escalated, invalidation-free) trackers covering the object.
  for (auto& [key, of] : acc.by_object) {
    if (of.observed || !of.predicted || !of.attributed) continue;
    const ShadowSpace* region = rt.find_region(of.object.start);
    if (!region) continue;
    const std::size_t first = region->line_index(of.object.start);
    const std::size_t last = region->line_index(
        of.object.start + (of.object.size ? of.object.size : 1) - 1);
    LineFinding words_only;
    for (std::size_t i = first; i <= last && i < region->num_lines(); ++i) {
      CacheTracker* t = region->tracker(i);
      if (!t) continue;
      of.total_accesses += t->total_accesses();
      of.total_writes += region->writes_count(i);
      of.sampled_accesses += t->sampled_accesses();
      of.sampled_writes += t->sampled_writes();
      const Address line_start = region->line_start(i);
      const auto words = t->words_snapshot();
      for (std::size_t wi = 0; wi < words.size(); ++wi) {
        if (!words[wi].touched()) continue;
        WordReport wr;
        wr.address = line_start + wi * geo.word_size;
        wr.line_index = geo.line_index(wr.address);
        wr.reads = words[wi].reads;
        wr.writes = words[wi].writes;
        wr.owner = words[wi].owner;
        wr.shared = words[wi].shared();
        words_only.words.push_back(wr);
      }
    }
    if (!words_only.words.empty()) {
      words_only.line_index = first;
      words_only.line_start = region->line_start(first);
      words_only.kind = SharingKind::kNone;  // no observed invalidations
      of.lines.push_back(std::move(words_only));
    }
  }

  for (auto& [key, of] : acc.by_object) {
    // The object's classification combines all of its hot lines.
    bool fs = false;
    bool ts = false;
    for (const LineFinding& lf : of.lines) {
      fs |= lf.kind == SharingKind::kFalseSharing ||
            lf.kind == SharingKind::kMixed;
      ts |= lf.kind == SharingKind::kTrueSharing ||
            lf.kind == SharingKind::kMixed;
    }
    // A verified virtual line is false sharing by construction: its hot pair
    // consists of different words from different threads (Section 3.3).
    fs |= !of.predictions.empty();
    of.kind = fs && ts   ? SharingKind::kMixed
              : fs       ? SharingKind::kFalseSharing
              : ts       ? SharingKind::kTrueSharing
                         : SharingKind::kNone;
    std::sort(of.predictions.begin(), of.predictions.end(),
              [](const PredictedFinding& a, const PredictedFinding& b) {
                return a.invalidations > b.invalidations;
              });
    report.findings.push_back(std::move(of));
  }

  std::sort(report.findings.begin(), report.findings.end(),
            [](const ObjectFinding& a, const ObjectFinding& b) {
              if (a.impact() != b.impact()) return a.impact() > b.impact();
              return a.object.start < b.object.start;
            });
  return report;
}

namespace {

void append_fmt(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

const char* vl_kind_name(VirtualLineTracker::Kind k) {
  return k == VirtualLineTracker::Kind::kDoubleLine ? "double line size"
                                                    : "shifted placement";
}

}  // namespace

std::string format_finding(const ObjectFinding& f,
                           const CallsiteTable& callsites) {
  std::string out;
  const char* what = f.object.is_global ? "GLOBAL VARIABLE" : "HEAP OBJECT";
  const char* status = f.observed ? (f.predicted ? "OBSERVED+PREDICTED"
                                                 : "OBSERVED")
                                  : "PREDICTED";
  append_fmt(out, "%s %s: start 0x%" PRIxPTR
             " end 0x%" PRIxPTR " (with size %zu). [%s]\n",
             to_string(f.kind), what, f.object.start,
             f.object.start + f.object.size, f.object.size, status);
  append_fmt(out,
             "Number of accesses: %" PRIu64 "; Number of invalidations: %" PRIu64
             "; Number of writes: %" PRIu64 ".\n",
             f.total_accesses, f.invalidations, f.total_writes);
  if (f.predicted) {
    append_fmt(out, "Predicted invalidations (virtual lines): %" PRIu64 ".\n",
               f.predicted_invalidations);
  }
  if (f.object.is_global && !f.object.name.empty()) {
    append_fmt(out, "Global name: %s\n", f.object.name.c_str());
  }
  if (!f.object.is_global && f.object.callsite != kNoCallsite) {
    out += "Callsite stack:\n";
    out += format_callsite(callsites.get(f.object.callsite), "");
  }
  if (!f.lines.empty()) {
    out += "Word level information:\n";
    for (const LineFinding& lf : f.lines) {
      for (const WordReport& w : lf.words) {
        if (w.shared) {
          append_fmt(out,
                     "Address 0x%" PRIxPTR " (line %zu): reads %" PRIu64
                     " writes %" PRIu64 " [shared by multiple threads]\n",
                     w.address, w.line_index, w.reads, w.writes);
        } else {
          append_fmt(out,
                     "Address 0x%" PRIxPTR " (line %zu): reads %" PRIu64
                     " writes %" PRIu64 " by thread %u\n",
                     w.address, w.line_index, w.reads, w.writes, w.owner);
        }
      }
    }
  }
  // Virtual lines are ranked by predicted invalidations; show the leaders.
  constexpr std::size_t kMaxShownPredictions = 6;
  const std::size_t shown =
      std::min(f.predictions.size(), kMaxShownPredictions);
  for (std::size_t i = 0; i < shown; ++i) {
    const PredictedFinding& p = f.predictions[i];
    append_fmt(out,
               "Predicted virtual line [0x%" PRIxPTR ", 0x%" PRIxPTR
               ") (%s): invalidations %" PRIu64 ", hot pair 0x%" PRIxPTR
               " / 0x%" PRIxPTR "\n",
               p.start, p.start + p.size, vl_kind_name(p.kind),
               p.invalidations, p.hot_x, p.hot_y);
  }
  if (f.predictions.size() > shown) {
    append_fmt(out, "... and %zu more verified virtual lines\n",
               f.predictions.size() - shown);
  }
  return out;
}

std::string format_report(const Report& report,
                          const CallsiteTable& callsites) {
  if (report.findings.empty()) {
    return "No false sharing problems detected.\n";
  }
  std::string out;
  int rank = 1;
  for (const ObjectFinding& f : report.findings) {
    append_fmt(out, "--- Finding #%d ---\n", rank++);
    out += format_finding(f, callsites);
    out += '\n';
  }
  return out;
}

}  // namespace pred
