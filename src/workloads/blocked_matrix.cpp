// blocked_matrix: an Eigen-ish blocked GEMM with a layout/partition
// mismatch. C (row-major, 16x16 doubles: each row exactly two cache lines)
// is accumulated over the inner dimension with k as the outer loop, and the
// buggy variant parallelizes over *columns* — every thread updates a short
// column strip of every row, so all threads write adjacent segments of the
// same C lines in lockstep on every k iteration. The fix re-partitions by
// rows (each thread owns whole, line-aligned rows), which eliminates the
// sharing without touching the arithmetic: C[i][j] is the same dot product
// either way, so the checksum is unchanged.
#include "common/check.hpp"
#include "common/prng.hpp"
#include "workloads/workload.hpp"

namespace pred::wl {
namespace {

constexpr std::uint64_t kDim = 16;    // C is kDim x kDim, row = 128 bytes
constexpr std::uint64_t kInner = 32;  // inner (k) dimension of A x B

class BlockedMatrix final : public WorkloadImpl<BlockedMatrix> {
 public:
  const Traits& traits() const override {
    static const Traits t{
        .name = "blocked_matrix",
        .suite = "numa",
        .sites = {{.where = "blocked_matrix.cc:C",
                   .needs_prediction = false,
                   .newly_discovered = false,
                   .paper_improvement_pct = 0.0}},
    };
    return t;
  }

  template <class H>
  static Result kernel(H& h, const Params& p) {
    const std::uint64_t n = p.threads;
    const std::uint64_t inner = kInner * p.scale;
    const bool by_rows = p.site_fixed(0);

    auto* a = static_cast<double*>(
        h.alloc(kDim * inner * sizeof(double), {"blocked_matrix.cc:A"}));
    auto* b = static_cast<double*>(
        h.alloc(inner * kDim * sizeof(double), {"blocked_matrix.cc:B"}));
    auto* c = static_cast<double*>(
        h.alloc(kDim * kDim * sizeof(double), {"blocked_matrix.cc:C"}));
    PRED_CHECK(a != nullptr && b != nullptr && c != nullptr);

    Xorshift64 rng(p.seed);
    for (std::uint64_t i = 0; i < kDim * inner; ++i) {
      a[i] = static_cast<double>(rng.next_below(16));
    }
    for (std::uint64_t i = 0; i < inner * kDim; ++i) {
      b[i] = static_cast<double>(rng.next_below(16));
    }
    for (std::uint64_t i = 0; i < kDim * kDim; ++i) c[i] = 0.0;

    h.parallel(static_cast<std::uint32_t>(n), [&](std::uint32_t t,
                                                  auto& sink) {
      // Buggy: thread t owns columns [j0, j1) of every row. Fixed: thread t
      // owns rows [i0, i1) in full — rows are two whole cache lines, so row
      // partitioning shares nothing.
      const std::uint64_t j0 = by_rows ? 0 : kDim * t / n;
      const std::uint64_t j1 = by_rows ? kDim : kDim * (t + 1) / n;
      const std::uint64_t i0 = by_rows ? kDim * t / n : 0;
      const std::uint64_t i1 = by_rows ? kDim * (t + 1) / n : kDim;
      for (std::uint64_t k = 0; k < inner; ++k) {
        for (std::uint64_t i = i0; i < i1; ++i) {
          sink.read(&a[i * inner + k], 8);
          const double aik = a[i * inner + k];
          for (std::uint64_t j = j0; j < j1; ++j) {
            sink.think(3);  // fused multiply-add + index arithmetic
            sink.read(&b[k * kDim + j], 8);
            sink.read(&c[i * kDim + j], 8);
            c[i * kDim + j] += aik * b[k * kDim + j];
            sink.write(&c[i * kDim + j], 8);
          }
        }
      }
    });

    Result r;
    for (std::uint64_t i = 0; i < kDim * kDim; ++i) {
      r.checksum += static_cast<std::uint64_t>(c[i]) * (i + 1);
    }
    return r;
  }
};

}  // namespace

std::unique_ptr<Workload> make_blocked_matrix() {
  return std::make_unique<BlockedMatrix>();
}

}  // namespace pred::wl
