// O(1) region resolution (the redesigned hot-path front end).
//
// The seed runtime resolved every instrumented access with a linear scan
// over all registered regions — acquire-ordered loads plus a `contains`
// check per region, on every access. This map replaces the scan with a flat
// shadow page table: at registration time every 4 KiB page a region overlaps
// is entered into an open-addressed hash table (page -> ShadowSpace*), so a
// lookup is one hash, ~one probe, and one bounds check regardless of how
// many regions exist.
//
// Concurrency model: registration is rare and serialized by the runtime's
// registration lock; each rebuild constructs a fresh immutable table and
// publishes it with a release store. Lookups are wait-free — they read the
// current table pointer with an acquire load and probe immutable slots.
// Retired tables are kept until the map is destroyed (bounded by
// Runtime::kMaxRegions rebuilds), so readers never chase freed memory.
//
// A page that straddles two regions keeps its first registrant; `lookup`
// then returns a region whose `contains` check fails for addresses in the
// second region, and the runtime falls back to the (correct, rare) linear
// scan. Pages with no entry are guaranteed untracked.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/cacheline.hpp"

namespace pred {

class ShadowSpace;

class RegionMap {
 public:
  static constexpr std::size_t kPageShift = 12;  // 4 KiB map granularity

  /// Region whose page entry covers `addr`, or nullptr when no region
  /// overlaps the page (then the address is definitely untracked). The
  /// caller must still verify `contains(addr)` — a straddled page maps to
  /// only one of its regions.
  ShadowSpace* lookup(Address addr) const {
    const Table* t = table_.load(std::memory_order_acquire);
    if (t == nullptr) return nullptr;
    const Address page = addr >> kPageShift;
    std::size_t i = hash(page) & t->mask;
    while (t->slots[i].region != nullptr) {
      if (t->slots[i].page == page) return t->slots[i].region;
      i = (i + 1) & t->mask;
    }
    return nullptr;
  }

  struct RegionExtent {
    ShadowSpace* region;
    Address begin;  ///< first tracked byte
    Address end;    ///< one past the last tracked byte
  };

  /// Rebuilds the table from the full region list and publishes it.
  /// Caller must serialize rebuilds (the runtime's registration lock).
  void rebuild(const std::vector<RegionExtent>& regions) {
    std::size_t pages = 0;
    for (const RegionExtent& r : regions) {
      pages += ((r.end - 1) >> kPageShift) - (r.begin >> kPageShift) + 1;
    }
    std::size_t cap = 16;
    while (cap < 2 * pages + 1) cap <<= 1;
    auto fresh = std::make_unique<Table>();
    fresh->mask = cap - 1;
    fresh->slots.resize(cap);
    for (const RegionExtent& r : regions) {
      const Address first = r.begin >> kPageShift;
      const Address last = (r.end - 1) >> kPageShift;
      for (Address page = first; page <= last; ++page) {
        std::size_t i = hash(page) & fresh->mask;
        while (fresh->slots[i].region != nullptr &&
               fresh->slots[i].page != page) {
          i = (i + 1) & fresh->mask;
        }
        if (fresh->slots[i].region == nullptr) {
          fresh->slots[i] = Slot{page, r.region};
        }
        // else: the page straddles two regions; the first keeps the entry
        // and the runtime's fallback scan resolves the other.
      }
    }
    const Table* next = fresh.get();
    tables_.push_back(std::move(fresh));
    table_.store(next, std::memory_order_release);
  }

  /// Bytes held by the live table (metadata accounting).
  std::size_t bytes() const {
    const Table* t = table_.load(std::memory_order_acquire);
    return t ? t->slots.size() * sizeof(Slot) : 0;
  }

 private:
  struct Slot {
    Address page = 0;
    ShadowSpace* region = nullptr;  ///< nullptr marks an empty slot
  };
  struct Table {
    std::size_t mask = 0;
    std::vector<Slot> slots;
  };

  static std::size_t hash(Address page) {
    std::uint64_t h = static_cast<std::uint64_t>(page) * 0x9E3779B97F4A7C15ull;
    return static_cast<std::size_t>(h ^ (h >> 29));
  }

  std::atomic<const Table*> table_{nullptr};
  std::vector<std::unique_ptr<Table>> tables_;  // live + retired
};

}  // namespace pred
