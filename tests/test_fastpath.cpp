// Tests for the redesigned hot path: O(1) region resolution (shadow page
// map + per-thread cache) and thread-local write staging. The fast path is
// on by default; every test here either checks it against the seed-behavior
// ablation (fast_region_lookup / staged_write_counters = false) or pins a
// concurrency property the redesign introduced.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "api/predator.hpp"
#include "workloads/workload.hpp"

namespace pred {
namespace {

constexpr AccessType W = AccessType::kWrite;

alignas(64) char g_page_a[4096];
alignas(64) char g_page_b[4096];

RuntimeConfig small_config() {
  RuntimeConfig cfg;
  cfg.tracking_threshold = 4;
  cfg.prediction_threshold = 8;
  cfg.sample_window = 4;
  cfg.sample_interval = 4;
  return cfg;
}

// --- determinism: the staged fast path must report exactly what the seed
// --- per-access path reports, access for access.

std::string replay_report(const char* workload, bool fast) {
  SessionOptions o;
  o.heap_size = 32 * 1024 * 1024;
  o.runtime.fast_region_lookup = fast;
  o.runtime.staged_write_counters = fast;
  Session session(o);
  const wl::Workload* w = wl::find_workload(workload);
  EXPECT_NE(w, nullptr);
  wl::Params p;
  p.threads = 8;
  w->run_replay(session, p);
  return session.report_text();
}

TEST(FastPathDeterminism, HistogramReplayMatchesSeedPath) {
  // Sessions run sequentially, so the heap maps at the same base and the
  // two report texts are comparable byte for byte.
  const std::string fast = replay_report("histogram", true);
  const std::string seed = replay_report("histogram", false);
  EXPECT_FALSE(fast.empty());
  EXPECT_EQ(fast, seed);
}

TEST(FastPathDeterminism, LinearRegressionReplayMatchesSeedPath) {
  const std::string fast = replay_report("linear_regression", true);
  const std::string seed = replay_report("linear_regression", false);
  EXPECT_FALSE(fast.empty());
  EXPECT_EQ(fast, seed);
}

// --- concurrent registration: the seed read-then-store slot claim lost
// --- regions under contention; the fetch_add claim must not.

TEST(FastPathRegistration, ConcurrentRegisterRegionClaimsDistinctSlots) {
  constexpr std::size_t kThreads = 8;
  static char buffers[kThreads][4096];
  Runtime rt(small_config());
  std::atomic<int> ready{0};
  std::vector<ShadowSpace*> out(kThreads, nullptr);
  std::vector<std::thread> ts;
  for (std::size_t t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < static_cast<int>(kThreads)) {
      }
      out[t] = rt.register_region(reinterpret_cast<Address>(buffers[t]),
                                  sizeof(buffers[t]));
    });
  }
  for (auto& th : ts) th.join();
  for (std::size_t t = 0; t < kThreads; ++t) {
    ASSERT_NE(out[t], nullptr);
    // Every region must survive registration and resolve by address.
    EXPECT_EQ(rt.find_region(reinterpret_cast<Address>(buffers[t]) + 128),
              out[t]);
    for (std::size_t u = t + 1; u < kThreads; ++u) {
      EXPECT_NE(out[t], out[u]) << "two registrations shared a slot";
    }
  }
}

// --- page-map fallback: two regions inside one 4 KiB page must both
// --- resolve even though the page entry can only name one of them.

TEST(FastPathRegionMap, TwoRegionsOnOnePageBothResolve) {
  alignas(4096) static char page[4096];
  Runtime rt(small_config());
  ShadowSpace* lo = rt.register_region(reinterpret_cast<Address>(page), 1024);
  ShadowSpace* hi =
      rt.register_region(reinterpret_cast<Address>(page) + 2048, 1024);
  ASSERT_NE(lo, nullptr);
  ASSERT_NE(hi, nullptr);
  EXPECT_EQ(rt.find_region(reinterpret_cast<Address>(page) + 64), lo);
  EXPECT_EQ(rt.find_region(reinterpret_cast<Address>(page) + 2048 + 64), hi);
  // The gap between the regions is untracked.
  EXPECT_EQ(rt.find_region(reinterpret_cast<Address>(page) + 1536), nullptr);
}

TEST(FastPathRegionMap, MissIsDefinitelyUntracked) {
  Runtime rt(small_config());
  rt.register_region(reinterpret_cast<Address>(g_page_a), sizeof(g_page_a));
  EXPECT_EQ(rt.find_region(reinterpret_cast<Address>(g_page_b)), nullptr);
  // And accessing it is a no-op, not a crash.
  rt.handle_access(reinterpret_cast<Address>(g_page_b), W, 0);
}

TEST(FastPathRegionMap, ThreadCacheTracksTheCurrentRuntime) {
  // Alternating lookups against two runtimes through one thread's cache
  // must never leak a region across runtimes.
  Runtime rt1(small_config());
  Runtime rt2(small_config());
  ShadowSpace* r1 =
      rt1.register_region(reinterpret_cast<Address>(g_page_a), 4096);
  ShadowSpace* r2 =
      rt2.register_region(reinterpret_cast<Address>(g_page_a), 4096);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(rt1.find_region(reinterpret_cast<Address>(g_page_a) + 8), r1);
    EXPECT_EQ(rt2.find_region(reinterpret_cast<Address>(g_page_a) + 8), r2);
  }
}

// --- staged counters: multi-threaded totals drain exactly.

TEST(FastPathStaging, MultiThreadedDrainLosesNoWrites) {
  constexpr std::uint32_t kThreads = 4;
  constexpr std::uint64_t kWritesPerThread = 10'000;
  RuntimeConfig cfg;
  cfg.tracking_threshold = 1'000'000;  // never escalate: pure counting
  cfg.prediction_threshold = 1'000'000;
  SessionOptions o;
  o.heap_size = 8 * 1024 * 1024;
  o.runtime = cfg;
  Session session(o);
  // 8 lines, all threads hammer all of them (staged slots collide and
  // evict constantly).
  auto* data = static_cast<long*>(
      session.alloc(8 * 64, session.intern_frames({"fastpath.c:1"})));
  ASSERT_NE(data, nullptr);
  std::vector<std::thread> ts;
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      ScopedThread guard(session, t);
      for (std::uint64_t i = 0; i < kWritesPerThread; ++i) {
        session.record(&data[((i + t) % 8) * 8], W, t, 8);
      }
    });  // unbind drains the thread's staged counters
  }
  for (auto& th : ts) th.join();
  auto& shadow = session.allocator().shadow();
  std::uint64_t total = 0;
  const std::size_t first =
      shadow.line_index(reinterpret_cast<Address>(data));
  for (std::size_t i = 0; i < 8; ++i) {
    total += shadow.writes_count(first + i);
  }
  EXPECT_EQ(total, kThreads * kWritesPerThread);
}

TEST(FastPathStaging, EscalationHappensOnTheCrossingAccess) {
  // Single-writer stream: the staged path must escalate on exactly the
  // same access as the seed path — the tracking_threshold-th write.
  Runtime rt(small_config());
  auto* region =
      rt.register_region(reinterpret_cast<Address>(g_page_a), 4096);
  const Address a = reinterpret_cast<Address>(g_page_a) + 640;
  const std::size_t idx = region->line_index(a);
  for (std::uint64_t i = 1; i < small_config().tracking_threshold; ++i) {
    rt.handle_access(a, W, 0);
    EXPECT_EQ(region->tracker(idx), nullptr) << "escalated early at " << i;
  }
  rt.handle_access(a, W, 0);
  EXPECT_NE(region->tracker(idx), nullptr) << "missed the crossing access";
}

TEST(FastPathStaging, SessionFlushPublishesStagedCounts) {
  SessionOptions o;
  o.heap_size = 8 * 1024 * 1024;
  o.runtime.tracking_threshold = 1'000'000;
  o.runtime.prediction_threshold = 1'000'000;
  Session session(o);
  auto* data = static_cast<long*>(
      session.alloc(64, session.intern_frames({"fastpath.c:2"})));
  auto& shadow = session.allocator().shadow();
  const std::size_t idx = shadow.line_index(reinterpret_cast<Address>(data));
  for (int i = 0; i < 7; ++i) session.record(&data[0], W, 0, 8);
  session.flush();
  EXPECT_EQ(shadow.writes_count(idx), 7u);
}

TEST(FastPathStaging, RuntimeDestructionInvalidatesStagedSlots) {
  // Stage writes into a runtime, destroy it without draining, then stage
  // into a fresh runtime: the stale slots must be dropped, not applied.
  {
    Runtime rt(small_config());
    rt.register_region(reinterpret_cast<Address>(g_page_a), 4096);
    rt.handle_access(reinterpret_cast<Address>(g_page_a), W, 0);
  }  // dies with one staged write outstanding
  Runtime rt2(small_config());
  auto* region =
      rt2.register_region(reinterpret_cast<Address>(g_page_a), 4096);
  rt2.handle_access(reinterpret_cast<Address>(g_page_a), W, 0);
  flush_staged_writes();
  EXPECT_EQ(region->writes_count(0), 1u);
}

}  // namespace
}  // namespace pred
