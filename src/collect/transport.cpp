#include "collect/transport.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "collect/collector.hpp"

namespace pred {

bool LoopbackSink::send(std::string_view frame_bytes) {
  return collector_->ingest_frame(frame_bytes);
}

FdSink::~FdSink() {
  if (owned_ && fd_ >= 0) ::close(fd_);
}

bool FdSink::send(std::string_view frame_bytes) {
  return write_all_fd(fd_, frame_bytes);
}

void FrameStreamParser::feed(std::string_view bytes) {
  if (poisoned()) return;  // discard; the stream is unrecoverable anyway
  // Compact once the consumed prefix dominates the buffer, so long-lived
  // streams don't grow without bound.
  if (consumed_ > 4096 && consumed_ * 2 > buf_.size()) {
    buf_.erase(0, consumed_);
    consumed_ = 0;
  }
  buf_.append(bytes.data(), bytes.size());
}

bool FrameStreamParser::next(wire::Frame* out) {
  if (poisoned()) return false;
  std::size_t consumed = 0;
  const std::string_view rest =
      std::string_view(buf_).substr(consumed_);
  error_ = wire::parse_frame(rest, out, &consumed);
  if (error_ == wire::FrameError::kOk) {
    consumed_ += consumed;
    return true;
  }
  return false;  // kTruncated: wait for feed(); anything else: poisoned
}

bool write_all_fd(int fd, std::string_view bytes) {
  const char* p = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

bool make_socketpair(int fds[2]) {
  return ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0;
}

int listen_unix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) return -1;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  // Reclaim only STALE sockets: a path left by a crashed daemon is removed
  // so bind() succeeds, but a live listener (something accepts our probe
  // connect) or a non-socket file at the path is left alone and the listen
  // fails — unconditionally unlinking would silently unseat a running
  // collector or delete a user's file.
  struct stat st{};
  if (::lstat(path.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) return -1;
    const int probe = connect_unix(path);
    if (probe >= 0) {
      ::close(probe);  // someone is serving here
      return -1;
    }
    ::unlink(path.c_str());
  }

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, backlog) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) return -1;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace pred
