// Trace persistence: serialize per-thread access traces to a compact binary
// file and load them back. This enables the record-once / analyze-many
// workflow: capture an execution a single time, then re-run detection under
// different thresholds, sampling rates, line sizes, or predictor settings
// without re-executing the program — the offline analogue of the paper's
// runtime pipeline (and the representation its prediction machinery really
// consumes).
//
// Format (little-endian):
//   magic   u32 = 0x50525452 ("PRTR")
//   version u32 = 1
//   threads u32
//   per thread: count u64, then count * { addr u64, think u32, type u8,
//                                         size u8, pad u16 }
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/executor.hpp"

namespace pred {

inline constexpr std::uint32_t kTraceMagic = 0x50525452u;
inline constexpr std::uint32_t kTraceVersion = 1;

/// Writes traces to a stream/file. Returns false on I/O failure.
bool save_traces(std::ostream& out, const std::vector<ThreadTrace>& traces);
bool save_traces_file(const std::string& path,
                      const std::vector<ThreadTrace>& traces);

/// Reads traces back. Returns false on I/O failure, bad magic/version, or a
/// truncated stream; `traces` is cleared first and left empty on failure.
bool load_traces(std::istream& in, std::vector<ThreadTrace>* traces);
bool load_traces_file(const std::string& path,
                      std::vector<ThreadTrace>* traces);

/// Total event count across threads (reporting convenience).
std::size_t total_events(const std::vector<ThreadTrace>& traces);

}  // namespace pred
