#include "trace/trace_io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "trace/wire_format.hpp"

namespace pred {

namespace {

struct WireEvent {
  std::uint64_t addr;
  std::uint32_t think;
  std::uint8_t type;
  std::uint8_t size;
  std::uint16_t pad;
};
static_assert(sizeof(WireEvent) == 16);

// Field ids inside kTraceHeader / kThreadTrace payloads.
enum : std::uint16_t {
  kFieldThreadCount = 1,
  kFieldTotalEvents = 2,
  kFieldThreadIndex = 1,
  kFieldEventCount = 2,
  kFieldEvents = 3,
};

template <typename T>
bool read_pod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

// v1 body reader, entered after the "PRTR" magic has been consumed.
bool load_traces_v1(std::istream& in, std::vector<ThreadTrace>* traces) {
  std::uint32_t version = 0;
  std::uint32_t threads = 0;
  if (!read_pod(in, &version) || version != 1) return false;
  if (!read_pod(in, &threads)) return false;
  std::vector<ThreadTrace> loaded;
  loaded.resize(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    std::uint64_t count = 0;
    if (!read_pod(in, &count)) return false;
    loaded[t].reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      WireEvent wire;
      if (!read_pod(in, &wire)) return false;
      TraceEvent ev;
      ev.addr = static_cast<Address>(wire.addr);
      ev.think_cycles = wire.think;
      ev.type = wire.type == 0 ? AccessType::kRead : AccessType::kWrite;
      ev.size = wire.size;
      loaded[t].push_back(ev);
    }
  }
  *traces = std::move(loaded);
  return true;
}

}  // namespace

std::string pack_events(const ThreadTrace& trace) {
  std::string out;
  out.reserve(trace.size() * sizeof(WireEvent));
  for (const TraceEvent& ev : trace) {
    WireEvent wire{static_cast<std::uint64_t>(ev.addr), ev.think_cycles,
                   static_cast<std::uint8_t>(ev.type), ev.size, 0};
    out.append(reinterpret_cast<const char*>(&wire), sizeof wire);
  }
  return out;
}

bool unpack_events(std::string_view bytes, ThreadTrace* out) {
  if (bytes.size() % sizeof(WireEvent) != 0) return false;
  const std::size_t n = bytes.size() / sizeof(WireEvent);
  out->clear();
  out->reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    WireEvent wire;
    std::memcpy(&wire, bytes.data() + i * sizeof(WireEvent), sizeof wire);
    TraceEvent ev;
    ev.addr = static_cast<Address>(wire.addr);
    ev.think_cycles = wire.think;
    ev.type = wire.type == 0 ? AccessType::kRead : AccessType::kWrite;
    ev.size = wire.size;
    out->push_back(ev);
  }
  return true;
}

bool save_traces(std::ostream& out, const std::vector<ThreadTrace>& traces) {
  std::string header;
  wire::FieldWriter hw(&header);
  hw.u64(kFieldThreadCount, traces.size());
  hw.u64(kFieldTotalEvents, total_events(traces));
  const std::string hframe =
      wire::encode_frame(wire::FrameType::kTraceHeader, header);
  out.write(hframe.data(), static_cast<std::streamsize>(hframe.size()));
  if (!out.good()) return false;

  for (std::size_t t = 0; t < traces.size(); ++t) {
    std::string payload;
    wire::FieldWriter fw(&payload);
    fw.u64(kFieldThreadIndex, t);
    fw.u64(kFieldEventCount, traces[t].size());
    fw.bytes(kFieldEvents, pack_events(traces[t]));
    const std::string frame =
        wire::encode_frame(wire::FrameType::kThreadTrace, payload);
    out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
    if (!out.good()) return false;
  }
  return out.good();
}

bool save_traces_file(const std::string& path,
                      const std::vector<ThreadTrace>& traces) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  return out.is_open() && save_traces(out, traces);
}

bool load_traces(std::istream& in, std::vector<ThreadTrace>* traces) {
  traces->clear();

  // Dispatch on the magic: "PRTR" selects the legacy v1 body, anything else
  // must parse as a v2 frame stream (read_frame re-checks the magic).
  std::uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  if (!in.good()) return false;
  if (magic == kTraceMagic) return load_traces_v1(in, traces);
  in.seekg(-static_cast<std::streamoff>(sizeof magic), std::ios::cur);

  wire::Frame frame;
  if (wire::read_frame(in, &frame) != wire::FrameError::kOk ||
      frame.type != wire::FrameType::kTraceHeader) {
    return false;
  }
  const auto threads_field =
      wire::FieldReader::find(frame.payload, kFieldThreadCount);
  if (!threads_field) return false;
  const std::uint64_t threads = threads_field->as_u64();

  std::vector<ThreadTrace> loaded(threads);
  for (std::uint64_t i = 0; i < threads; ++i) {
    if (wire::read_frame(in, &frame) != wire::FrameError::kOk ||
        frame.type != wire::FrameType::kThreadTrace) {
      return false;
    }
    const auto index = wire::FieldReader::find(frame.payload, kFieldThreadIndex);
    const auto count = wire::FieldReader::find(frame.payload, kFieldEventCount);
    const auto events = wire::FieldReader::find(frame.payload, kFieldEvents);
    if (!index || !count || !events || index->as_u64() >= threads) {
      return false;
    }
    ThreadTrace& slot = loaded[index->as_u64()];
    if (!unpack_events(events->bytes, &slot)) return false;
    if (slot.size() != count->as_u64()) return false;
  }
  *traces = std::move(loaded);
  return true;
}

bool load_traces_file(const std::string& path,
                      std::vector<ThreadTrace>* traces) {
  std::ifstream in(path, std::ios::binary);
  return in.is_open() && load_traces(in, traces);
}

std::size_t total_events(const std::vector<ThreadTrace>& traces) {
  std::size_t n = 0;
  for (const auto& t : traces) n += t.size();
  return n;
}

}  // namespace pred
