// PARSEC dedup (modeled): no false sharing. Threads chunk and fingerprint
// private data streams; each thread's dedup table is private and
// guard-separated.
#include "common/check.hpp"
#include "common/prng.hpp"
#include "workloads/workload.hpp"

namespace pred::wl {
namespace {

class DedupLike final : public WorkloadImpl<DedupLike> {
 public:
  const Traits& traits() const override {
    static const Traits t{.name = "dedup", .suite = "parsec", .sites = {}};
    return t;
  }

  template <class H>
  static Result kernel(H& h, const Params& p) {
    const std::uint32_t n = p.threads;
    const std::uint64_t bytes_per_thread = 16000 * p.scale;
    constexpr std::uint64_t kChunk = 256;
    constexpr std::uint64_t kTable = 128;

    std::vector<unsigned char*> data(n);
    std::vector<std::uint64_t*> table(n);
    Xorshift64 rng(p.seed);
    for (std::uint32_t t = 0; t < n; ++t) {
      data[t] = static_cast<unsigned char*>(
          h.alloc(bytes_per_thread, {"dedup/encoder.c:data"}));
      table[t] = static_cast<std::uint64_t*>(
          h.alloc(kTable * 8 + 64, {"dedup/hashtable.c:table"}));
      PRED_CHECK(data[t] && table[t]);
      for (std::uint64_t i = 0; i < bytes_per_thread; ++i) {
        data[t][i] = static_cast<unsigned char>(rng.next_below(64));
      }
      for (std::uint64_t i = 0; i < kTable; ++i) table[t][i] = 0;
    }

    h.parallel(n, [&](std::uint32_t t, auto& sink) {
      std::uint64_t dupes = 0;
      for (std::uint64_t off = 0; off + kChunk <= bytes_per_thread;
           off += kChunk) {
        std::uint64_t fp = 1469598103934665603ull;  // FNV-ish fingerprint
        for (std::uint64_t i = 0; i < kChunk; i += 8) {
          sink.read(&data[t][off + i], 1);
          fp = (fp ^ data[t][off + i]) * 1099511628211ull;
        }
        std::uint64_t* slot = &table[t][fp % kTable];
        sink.read(slot, 8);
        if (*slot == fp) {
          ++dupes;
        } else {
          *slot = fp;
          sink.write(slot, 8);
        }
      }
      (void)dupes;
    });

    Result r;
    for (std::uint32_t t = 0; t < n; ++t) {
      for (std::uint64_t i = 0; i < kTable; i += 3) r.checksum ^= table[t][i];
    }
    return r;
  }
};

}  // namespace

std::unique_ptr<Workload> make_dedup_like() {
  return std::make_unique<DedupLike>();
}

}  // namespace pred::wl
