// MySQL (modeled): the famous InnoDB scalability bug (Section 4.1.2). A
// global statistics object packs per-thread counters 8 bytes apart; every
// "transaction" bumps several of them, so up to 8 threads ping-pong each
// line. The fix — padding each slot to a cache line — is what bought the
// MySQL team their reported ~6x (paper quotes Mikael Ronstrom).
#include <cstring>

#include "common/check.hpp"
#include "common/prng.hpp"
#include "workloads/workload.hpp"

namespace pred::wl {
namespace {

class MysqlLike final : public WorkloadImpl<MysqlLike> {
 public:
  const Traits& traits() const override {
    static const Traits t{
        .name = "mysql",
        .suite = "real",
        .sites = {{.where = "storage/innobase/srv/srv0srv.cc:srv_stats",
                   .needs_prediction = false,
                   .newly_discovered = false,
                   .paper_improvement_pct = 500.0}},  // "6x" in the paper
    };
    return t;
  }

  template <class H>
  static Result kernel(H& h, const Params& p) {
    const std::uint32_t n = p.threads;
    const std::uint64_t transactions = 4000 * p.scale;
    // srv_stats counter array: one 8-byte slot per thread (buggy) vs one
    // line per thread (the ib_counter_t padding fix).
    const std::size_t stride = p.site_fixed(0) ? 64 : 8;

    char* stats = static_cast<char*>(
        h.alloc(stride * n, {"storage/innobase/srv/srv0srv.cc:srv_stats"}));
    PRED_CHECK(stats != nullptr);
    std::memset(stats, 0, stride * n);

    // Private row buffers standing in for buffer-pool pages.
    std::vector<std::int64_t*> rows(n);
    Xorshift64 rng(p.seed);
    for (std::uint32_t t = 0; t < n; ++t) {
      rows[t] = static_cast<std::int64_t*>(
          h.alloc(256 * 8, {"storage/innobase/buf/buf0buf.cc:pages"}));
      PRED_CHECK(rows[t] != nullptr);
      for (int i = 0; i < 256; ++i) {
        rows[t][i] = static_cast<std::int64_t>(rng.next_below(4096));
      }
    }

    h.parallel(n, [&](std::uint32_t t, auto& sink) {
      auto* my_stat = reinterpret_cast<std::int64_t*>(stats + stride * t);
      Xorshift64 local(p.seed + 7 * t);
      for (std::uint64_t txn = 0; txn < transactions; ++txn) {
        // "Execute" the transaction against private pages...
        sink.think(150);  // parse + B-tree walk per statement
        const std::uint64_t row = local.next_below(256);
        sink.read(&rows[t][row], 8);
        const std::int64_t v = rows[t][row];
        rows[t][row] = v + 1;
        sink.write(&rows[t][row], 8);
        // ...then bump the global per-thread activity counter.
        sink.read(my_stat, 8);
        *my_stat += 1;
        sink.write(my_stat, 8);
      }
    });

    Result r;
    for (std::uint32_t t = 0; t < n; ++t) {
      r.checksum +=
          static_cast<std::uint64_t>(*reinterpret_cast<std::int64_t*>(
              stats + stride * t));
    }
    return r;
  }
};

}  // namespace

std::unique_ptr<Workload> make_mysql_like() {
  return std::make_unique<MysqlLike>();
}

}  // namespace pred::wl
