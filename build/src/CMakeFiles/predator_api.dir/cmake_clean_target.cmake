file(REMOVE_RECURSE
  "libpredator_api.a"
)
