# Empty dependencies file for microbench_fastpath.
# This may be replaced when dependencies are built.
