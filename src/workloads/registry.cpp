#include "workloads/workload.hpp"

namespace pred::wl {

void replay_into_session(Session& session,
                         const std::vector<ThreadTrace>& traces,
                         std::size_t quantum) {
  if (quantum == 0) quantum = 1;
  std::vector<std::size_t> cursor(traces.size(), 0);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t t = 0; t < traces.size(); ++t) {
      const ThreadTrace& trace = traces[t];
      for (std::size_t q = 0; q < quantum && cursor[t] < trace.size(); ++q) {
        const TraceEvent& ev = trace[cursor[t]++];
        session.runtime().handle_access(ev.addr, ev.type,
                                        static_cast<ThreadId>(t), ev.size);
        progressed = true;
      }
    }
  }
}

// Factory functions implemented in the per-workload translation units.
std::unique_ptr<Workload> make_histogram();
std::unique_ptr<Workload> make_linear_regression();
std::unique_ptr<Workload> make_reverse_index();
std::unique_ptr<Workload> make_word_count();
std::unique_ptr<Workload> make_string_match();
std::unique_ptr<Workload> make_matrix_multiply();
std::unique_ptr<Workload> make_kmeans();
std::unique_ptr<Workload> make_pca();
std::unique_ptr<Workload> make_streamcluster();
std::unique_ptr<Workload> make_blackscholes();
std::unique_ptr<Workload> make_bodytrack_like();
std::unique_ptr<Workload> make_fluidanimate_like();
std::unique_ptr<Workload> make_swaptions_like();
std::unique_ptr<Workload> make_dedup_like();
std::unique_ptr<Workload> make_ferret_like();
std::unique_ptr<Workload> make_x264_like();
std::unique_ptr<Workload> make_mysql_like();
std::unique_ptr<Workload> make_boost_spinlock();
std::unique_ptr<Workload> make_memcached_like();
std::unique_ptr<Workload> make_aget_like();
std::unique_ptr<Workload> make_pbzip2_like();
std::unique_ptr<Workload> make_pfscan_like();
std::unique_ptr<Workload> make_numa_pingpong();
std::unique_ptr<Workload> make_tensor_parallel();
std::unique_ptr<Workload> make_blocked_matrix();

const std::vector<std::unique_ptr<Workload>>& all_workloads() {
  static const std::vector<std::unique_ptr<Workload>> registry = [] {
    std::vector<std::unique_ptr<Workload>> v;
    // Phoenix
    v.push_back(make_histogram());
    v.push_back(make_kmeans());
    v.push_back(make_linear_regression());
    v.push_back(make_matrix_multiply());
    v.push_back(make_pca());
    v.push_back(make_reverse_index());
    v.push_back(make_string_match());
    v.push_back(make_word_count());
    // PARSEC
    v.push_back(make_blackscholes());
    v.push_back(make_bodytrack_like());
    v.push_back(make_dedup_like());
    v.push_back(make_ferret_like());
    v.push_back(make_fluidanimate_like());
    v.push_back(make_streamcluster());
    v.push_back(make_swaptions_like());
    v.push_back(make_x264_like());
    // Real applications
    v.push_back(make_aget_like());
    v.push_back(make_boost_spinlock());
    v.push_back(make_memcached_like());
    v.push_back(make_mysql_like());
    v.push_back(make_pbzip2_like());
    v.push_back(make_pfscan_like());
    // Big-machine / NUMA scenario kernels (beyond the paper's Table 1 —
    // these exercise the two-level simulator's topology path).
    v.push_back(make_blocked_matrix());
    v.push_back(make_numa_pingpong());
    v.push_back(make_tensor_parallel());
    return v;
  }();
  return registry;
}

const Workload* find_workload(std::string_view name) {
  for (const auto& w : all_workloads()) {
    if (w->traits().name == name) return w.get();
  }
  return nullptr;
}

bool report_mentions_site(const Report& report, const CallsiteTable& callsites,
                          const std::string& site, bool* only_predicted) {
  bool found = false;
  bool all_prediction_only = true;
  for (const ObjectFinding& f : report.findings) {
    if (!f.is_false_sharing()) continue;
    bool matches = false;
    if (f.object.is_global) {
      matches = f.object.name.find(site) != std::string::npos;
    } else if (f.object.callsite != kNoCallsite) {
      for (const auto& frame : callsites.get(f.object.callsite).frames) {
        if (frame.find(site) != std::string::npos) {
          matches = true;
          break;
        }
      }
    }
    if (!matches) continue;
    found = true;
    if (f.observed) all_prediction_only = false;
  }
  if (only_predicted) *only_predicted = found && all_prediction_only;
  return found;
}

std::size_t false_sharing_findings(const Report& report) {
  std::size_t n = 0;
  for (const ObjectFinding& f : report.findings) {
    if (f.is_false_sharing()) ++n;
  }
  return n;
}

}  // namespace pred::wl
