// Repair subsystem microbench: what the closed loop costs.
//
// Phase A — codec: encode/decode of a realistic RepairPlan frame (4 sites,
//   16 evidence words each), bounding the per-publish cost of `--emit-to`
//   plan streaming and the collector's per-frame merge overhead.
//
// Phase B — planner: compile_plan on a real counter_pool detection report
//   (detect once, compile repeatedly) — the cost of lowering advice to
//   machine-applicable directives.
//
// Phase C — allocator backend: ns/allocation through PredatorAllocator
//   with no plan installed, with a plan whose entry matches the hot
//   callsite (pad applied), and with a plan that matches nothing (memoized
//   miss) — the steady-state tax a deployed plan puts on malloc.
//
// Phase D — the loop itself: run_repair_loop end to end on both planted
//   targets, reporting the phase split and the invalidation drop.
//
// Usage: microbench_repair [iters] [--json FILE]
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "advice/fix_advisor.hpp"
#include "bench_util.hpp"
#include "repair/plan_codec.hpp"
#include "repair/planner.hpp"
#include "repair/targets.hpp"
#include "repair/verifier.hpp"
#include "trace/wire_format.hpp"
#include "workloads/workload.hpp"

namespace {

using pred::Session;
namespace repair = pred::repair;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

repair::RepairPlan make_plan() {
  repair::RepairPlan plan;
  plan.origin_uid = 0xbe9c;
  for (int s = 0; s < 4; ++s) {
    repair::PlanEntry e;
    e.is_global = s % 2 == 0;
    e.site_key = "bench.c:" + std::to_string(10 + s) + "|main.c:1";
    e.action = repair::PlanAction::kPadSlots;
    e.pad_to = 64;
    e.slot_stride = 16;
    e.object_size = 16;
    e.expected_eliminated = 1000 + s;
    for (std::uint64_t w = 0; w < 16; ++w) {
      e.evidence.push_back({8 * (w % 8), static_cast<std::uint32_t>(w % 4),
                            500 - w});
    }
    plan.entries.push_back(e);
  }
  return plan;
}

struct CodecRates {
  double encodes_per_sec = 0;
  double decodes_per_sec = 0;
  std::size_t frame_bytes = 0;
};

CodecRates bench_codec(std::uint64_t iters) {
  const repair::RepairPlan plan = make_plan();
  CodecRates out;
  std::string frame;
  auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    frame = repair::encode_plan_frame(plan);
  }
  out.encodes_per_sec = static_cast<double>(iters) / seconds_since(start);
  out.frame_bytes = frame.size();

  pred::wire::Frame parsed;
  std::size_t consumed = 0;
  if (pred::wire::parse_frame(frame, &parsed, &consumed) !=
      pred::wire::FrameError::kOk) {
    std::fprintf(stderr, "frame does not parse\n");
    std::exit(1);
  }
  start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    repair::RepairPlan decoded;
    if (!repair::decode_plan_payload(parsed.payload, &decoded) ||
        decoded.entries.size() != plan.entries.size()) {
      std::fprintf(stderr, "plan does not decode\n");
      std::exit(1);
    }
  }
  out.decodes_per_sec = static_cast<double>(iters) / seconds_since(start);
  return out;
}

double bench_planner(std::uint64_t iters) {
  const repair::RepairTarget* target =
      repair::find_repair_target("counter_pool");
  Session session(repair::detection_session_options());
  repair::RunResult run = target->run(session, nullptr, 8, 1);
  pred::wl::replay_into_session(session, run.traces, 1);
  const pred::Report report = session.report();
  const auto suggestions = pred::advise(report);

  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    const repair::RepairPlan plan = repair::compile_plan(
        report, suggestions, session.runtime().callsites());
    if (plan.empty()) {
      std::fprintf(stderr, "planner produced an empty plan\n");
      std::exit(1);
    }
  }
  return static_cast<double>(iters) / seconds_since(start);
}

/// ns/allocation of 16-byte requests at one interned callsite. `mode` 0:
/// no plan installed; 1: plan entry matches the callsite; 2: plan installed
/// but no entry matches.
double bench_alloc_ns(std::uint64_t iters, int mode) {
  pred::SessionOptions opts;
  opts.heap_size = 256 * 1024 * 1024;
  Session session(opts);
  const pred::CallsiteId cs = session.intern_frames({"bench_alloc.c:1"});
  if (mode != 0) {
    auto plan = std::make_shared<repair::RepairPlan>();
    repair::PlanEntry e;
    e.site_key = mode == 1 ? "bench_alloc.c:1" : "elsewhere.c:9";
    e.action = repair::PlanAction::kPadSlots;
    e.pad_to = 64;
    plan->entries.push_back(e);
    session.allocator().install_repair_plan(plan);
  }

  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    void* p = session.alloc(16, cs);
    if (p == nullptr) {
      std::fprintf(stderr, "allocator exhausted at %" PRIu64 "\n", i);
      std::exit(1);
    }
  }
  return 1e9 * seconds_since(start) / static_cast<double>(iters);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t iters = 100'000;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      iters = std::strtoull(argv[i], nullptr, 10);
      if (iters == 0) {
        std::fprintf(stderr, "usage: %s [iters > 0] [--json FILE]\n",
                     argv[0]);
        return 1;
      }
    }
  }

  const CodecRates codec = bench_codec(iters);
  std::printf("phase A: plan codec (%zu-byte frame, 4 sites)\n",
              codec.frame_bytes);
  std::printf("  %-28s %15.0f plans/sec\n", "encode", codec.encodes_per_sec);
  std::printf("  %-28s %15.0f plans/sec\n", "decode", codec.decodes_per_sec);

  const double plans_per_sec = bench_planner(iters / 10);
  std::printf("\nphase B: planner (counter_pool report)\n");
  std::printf("  %-28s %15.0f plans/sec\n", "compile_plan", plans_per_sec);

  const std::uint64_t allocs = std::min<std::uint64_t>(iters * 10, 2'000'000);
  const double ns_none = bench_alloc_ns(allocs, 0);
  const double ns_hit = bench_alloc_ns(allocs, 1);
  const double ns_miss = bench_alloc_ns(allocs, 2);
  std::printf("\nphase C: allocator backend (16 B requests)\n");
  std::printf("  %-28s %15.1f ns/alloc\n", "no plan", ns_none);
  std::printf("  %-28s %15.1f ns/alloc  (pad to 64 B)\n", "plan hit", ns_hit);
  std::printf("  %-28s %15.1f ns/alloc\n", "plan miss (memoized)", ns_miss);

  std::printf("\nphase D: closed loop\n");
  double drops[2] = {0, 0};
  double totals[2] = {0, 0};
  const char* names[2] = {"counter_pool", "global_grid"};
  for (int t = 0; t < 2; ++t) {
    const repair::RepairTarget* target = repair::find_repair_target(names[t]);
    const repair::RepairOutcome out = repair::run_repair_loop(*target);
    drops[t] = 100.0 * out.drop_pct();
    totals[t] = out.detect_ms + out.plan_ms + out.apply_ms + out.verify_ms;
    std::printf("  %-28s %8.2f ms (detect %.2f, plan %.2f, apply %.2f, "
                "verify %.2f), drop %.1f%%, %s\n",
                names[t], totals[t], out.detect_ms, out.plan_ms, out.apply_ms,
                out.verify_ms, drops[t],
                out.repaired(0.9) ? "REPAIRED" : "NOT REPAIRED");
    if (!out.repaired(0.9)) {
      std::fprintf(stderr, "%s failed to repair\n", names[t]);
      return 1;
    }
  }

  if (!json_path.empty()) {
    pred::bench::JsonWriter json;
    json.add("plan_frame_bytes", static_cast<double>(codec.frame_bytes));
    json.add("plan_encode_per_sec", codec.encodes_per_sec);
    json.add("plan_decode_per_sec", codec.decodes_per_sec);
    json.add("compile_plan_per_sec", plans_per_sec);
    json.add("alloc_ns_no_plan", ns_none);
    json.add("alloc_ns_plan_hit", ns_hit);
    json.add("alloc_ns_plan_miss", ns_miss);
    json.add("counter_pool_drop_pct", drops[0]);
    json.add("counter_pool_loop_ms", totals[0]);
    json.add("global_grid_drop_pct", drops[1]);
    json.add("global_grid_loop_ms", totals[1]);
    if (!json.write_file(json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "json: %s\n", json_path.c_str());
  }
  return 0;
}
