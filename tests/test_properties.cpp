// Parameterized property suites: invariants that must hold across sweeps of
// placement offsets, thread counts, sampling rates, and replay quanta —
// pinning down the behaviors the paper's evaluation relies on.
#include <gtest/gtest.h>

#include "workloads/workload.hpp"

namespace pred::wl {
namespace {

SessionOptions options_with(double sampling_rate = 0.01,
                            std::uint64_t report_threshold = 100) {
  SessionOptions o;
  o.heap_size = 32 * 1024 * 1024;
  o.runtime.set_sampling_rate(sampling_rate);
  o.runtime.report_invalidation_threshold = report_threshold;
  return o;
}

// --- Figure 2 family: every lreg placement offset is caught somehow --------

class OffsetSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OffsetSweep, LinearRegressionCaughtAtEveryOffset) {
  const Workload* w = find_workload("linear_regression");
  ASSERT_NE(w, nullptr);
  Session session(options_with());
  Params p;
  p.threads = 8;
  p.offset = GetParam();
  w->run_replay(session, p);
  EXPECT_TRUE(report_mentions_site(session.report(),
                                   session.runtime().callsites(),
                                   w->traits().sites[0].where))
      << "offset " << GetParam() << "\n"
      << session.report_text();
}

INSTANTIATE_TEST_SUITE_P(AllOffsets, OffsetSweep,
                         ::testing::Values(0, 8, 16, 24, 32, 40, 48, 56),
                         [](const auto& info) {
                           return "offset" + std::to_string(info.param);
                         });

// --- thread-count sweeps ----------------------------------------------------

class ThreadSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ThreadSweep, HistogramFalseSharingFoundAtAnyConcurrency) {
  const Workload* w = find_workload("histogram");
  ASSERT_NE(w, nullptr);
  Session session(options_with());
  Params p;
  p.threads = GetParam();
  w->run_replay(session, p);
  EXPECT_TRUE(report_mentions_site(session.report(),
                                   session.runtime().callsites(),
                                   w->traits().sites[0].where))
      << session.report_text();
}

TEST_P(ThreadSweep, CleanWorkloadStaysCleanAtAnyConcurrency) {
  const Workload* w = find_workload("string_match");
  ASSERT_NE(w, nullptr);
  Session session(options_with());
  Params p;
  p.threads = GetParam();
  w->run_replay(session, p);
  EXPECT_EQ(false_sharing_findings(session.report()), 0u)
      << session.report_text();
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadSweep, ::testing::Values(2, 4, 8),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

// --- the single-thread invariant -------------------------------------------

class SingleThread : public ::testing::TestWithParam<std::string> {};

TEST_P(SingleThread, OneThreadNeverFalseShares) {
  const Workload* w = find_workload(GetParam());
  ASSERT_NE(w, nullptr);
  Session session(options_with());
  Params p;
  p.threads = 1;
  w->run_replay(session, p);
  EXPECT_EQ(false_sharing_findings(session.report()), 0u)
      << session.report_text();
  // Stronger: no invalidations at all can occur with one thread.
  EXPECT_EQ(session.report().total_invalidations, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Buggy, SingleThread,
    ::testing::Values("linear_regression", "histogram", "streamcluster",
                      "mysql", "boost", "memcached"),
    [](const auto& info) { return info.param; });

// --- sampling-rate sweeps (Figure 10's effectiveness claim) -----------------

class SamplingSweep : public ::testing::TestWithParam<double> {};

TEST_P(SamplingSweep, DetectionSurvivesLowSamplingRates) {
  const double rate = GetParam();
  // Lower rates report fewer invalidations (the paper's observation), so
  // scale the report threshold with the rate, as the paper's fixed default
  // effectively does for its longer executions.
  const auto threshold =
      static_cast<std::uint64_t>(100.0 * (rate < 1.0 ? rate : 1.0));
  const Workload* w = find_workload("histogram");
  ASSERT_NE(w, nullptr);
  Session session(options_with(rate, threshold < 5 ? 5 : threshold));
  Params p;
  p.threads = 8;
  p.scale = 4;  // longer run: gives sparse samples enough to accumulate
  w->run_replay(session, p);
  EXPECT_TRUE(report_mentions_site(session.report(),
                                   session.runtime().callsites(),
                                   w->traits().sites[0].where))
      << "sampling rate " << rate << "\n"
      << session.report_text();
}

INSTANTIATE_TEST_SUITE_P(Rates, SamplingSweep,
                         ::testing::Values(0.001, 0.01, 0.1, 1.0),
                         [](const auto& info) {
                           return "rate" +
                                  std::to_string(
                                      static_cast<int>(info.param * 1000));
                         });

// --- monotonicity properties ------------------------------------------------

TEST(Monotonicity, CoarserReplayQuantumNeverIncreasesInvalidations) {
  const Workload* w = find_workload("mysql");
  ASSERT_NE(w, nullptr);
  std::uint64_t prev = ~0ull;
  for (const std::size_t quantum : {1, 8, 64, 512}) {
    Session session(options_with());
    Params p;
    p.threads = 8;
    const auto traces = w->capture(session, p);
    replay_into_session(session, traces, quantum);
    const std::uint64_t inv = session.report().total_invalidations;
    EXPECT_LE(inv, prev) << "quantum " << quantum;
    prev = inv;
  }
}

TEST(Monotonicity, HigherReportThresholdNeverAddsFindings) {
  const Workload* w = find_workload("streamcluster");
  ASSERT_NE(w, nullptr);
  std::size_t prev = ~std::size_t{0};
  for (const std::uint64_t threshold : {10ull, 100ull, 10000ull, 10000000ull}) {
    Session session(options_with(0.01, threshold));
    Params p;
    p.threads = 8;
    w->run_replay(session, p);
    const std::size_t n = session.report().findings.size();
    EXPECT_LE(n, prev) << "threshold " << threshold;
    prev = n;
  }
}

TEST(Monotonicity, MoreWorkMeansMoreInvalidationsForBuggyRuns) {
  // Needs 100% sampling: at the default 1% rate the per-window cap makes
  // invalidation counts saturate, which is exactly the Figure 10
  // "lower rates report fewer invalidations" behavior.
  const Workload* w = find_workload("histogram");
  ASSERT_NE(w, nullptr);
  std::uint64_t prev = 0;
  for (const std::uint64_t scale : {1ull, 2ull, 4ull}) {
    Session session(options_with(1.0));
    Params p;
    p.threads = 8;
    p.scale = scale;
    w->run_replay(session, p);
    const std::uint64_t inv = session.report().total_invalidations;
    EXPECT_GT(inv, prev) << "scale " << scale;
    prev = inv;
  }
}

// --- detection is robust to the instrument mode ----------------------------

TEST(WritesOnlyMode, StillCatchesWriteWriteFalseSharing) {
  SessionOptions o = options_with();
  o.runtime.instrument_mode = InstrumentMode::kWritesOnly;
  const Workload* w = find_workload("histogram");
  ASSERT_NE(w, nullptr);
  Session session(o);
  Params p;
  p.threads = 8;
  w->run_replay(session, p);
  EXPECT_TRUE(report_mentions_site(session.report(),
                                   session.runtime().callsites(),
                                   w->traits().sites[0].where))
      << session.report_text();
}

// --- prediction disabled == PREDATOR-NP ------------------------------------

TEST(PredictionToggle, NpMissesLatentLinearRegressionBug) {
  const Workload* w = find_workload("linear_regression");
  ASSERT_NE(w, nullptr);
  SessionOptions o = options_with();
  o.runtime.prediction_enabled = false;
  Session session(o);
  Params p;
  p.threads = 8;
  p.offset = 0;  // clean placement: only prediction can catch it
  w->run_replay(session, p);
  EXPECT_FALSE(report_mentions_site(session.report(),
                                    session.runtime().callsites(),
                                    w->traits().sites[0].where))
      << "PREDATOR-NP must miss the latent problem (Table 1)";
}

}  // namespace
}  // namespace pred::wl
