// Control-flow graph over a mini-IR Function: successor/predecessor edges
// derived from block terminators, plus reachability from the entry block.
// This is the substrate every whole-function analysis (dominators, loops,
// dataflow) builds on; the seed instrumentation pass never looked past a
// single basic block.
#pragma once

#include <cstdint>
#include <vector>

#include "instrument/ir.hpp"

namespace pred::ir {

class Cfg {
 public:
  static constexpr std::uint32_t kEntry = 0;

  explicit Cfg(const Function& fn);

  std::size_t num_blocks() const { return succs_.size(); }
  const std::vector<std::uint32_t>& succs(std::uint32_t b) const {
    return succs_[b];
  }
  const std::vector<std::uint32_t>& preds(std::uint32_t b) const {
    return preds_[b];
  }
  bool reachable(std::uint32_t b) const { return reachable_[b]; }
  std::size_t num_reachable() const { return num_reachable_; }

  /// Reverse postorder over the *reachable* blocks (entry first). Forward
  /// dataflow converges fastest visiting blocks in this order.
  const std::vector<std::uint32_t>& reverse_postorder() const { return rpo_; }

  /// True when control transferred into `from` always continues into `to`
  /// and into nothing else: `from` ends in an unconditional branch to `to`
  /// and `to` has no other predecessor. Blocks linked this way execute
  /// exactly equally often, which is what makes cross-block instrumentation
  /// merging count-exact (see pass.cpp). The entry block is never the `to`
  /// side: function entry arrives without a CFG edge, so even with a single
  /// predecessor the entry block runs once more than that predecessor.
  bool linear_edge(std::uint32_t from, std::uint32_t to) const {
    return to != kEntry && succs_[from].size() == 1 &&
           succs_[from][0] == to && preds_[to].size() == 1;
  }

 private:
  std::vector<std::vector<std::uint32_t>> succs_;
  std::vector<std::vector<std::uint32_t>> preds_;
  std::vector<bool> reachable_;
  std::vector<std::uint32_t> rpo_;
  std::size_t num_reachable_ = 0;
};

}  // namespace pred::ir
