// Batched instrumentation: the paper's Section 6 "Improved Performance"
// direction. Its runtime calls cost a function call plus GOT/PLT lookup per
// access; the proposed remedy is inserting "relevant code directly". This
// header provides the next best thing for a library build: a small
// per-thread buffer that coalesces accesses and hands them to the runtime
// in bulk, amortizing the call and the region lookup across a batch. The
// recorded information is identical — only the delivery granularity
// changes, so detection results are unaffected (asserted by tests and
// measured by bench/ablation_batched_calls).
#pragma once

#include <array>
#include <cstddef>

#include "api/predator.hpp"

namespace pred {

class BatchBuffer {
 public:
  static constexpr std::size_t kCapacity = 256;

  BatchBuffer(Session& session, ThreadId tid)
      : session_(session), tid_(tid) {}
  ~BatchBuffer() { flush(); }

  BatchBuffer(const BatchBuffer&) = delete;
  BatchBuffer& operator=(const BatchBuffer&) = delete;

  void read(const void* p, std::size_t size = 8) {
    push(reinterpret_cast<Address>(p), AccessType::kRead, size);
  }
  void write(const void* p, std::size_t size = 8) {
    push(reinterpret_cast<Address>(p), AccessType::kWrite, size);
  }
  void think(std::uint32_t) {}

  /// Delivers every buffered access to the runtime, preserving order, then
  /// publishes the thread's staged write counters so a post-flush observer
  /// sees every delivered write.
  void flush() {
    Runtime& rt = session_.runtime();
    for (std::size_t i = 0; i < used_; ++i) {
      const Entry& e = entries_[i];
      rt.handle_access(e.addr, e.type, tid_, e.size);
    }
    used_ = 0;
    session_.flush();
  }

  std::size_t buffered() const { return used_; }

 private:
  struct Entry {
    Address addr;
    std::uint16_t size;
    AccessType type;
  };

  void push(Address addr, AccessType type, std::size_t size) {
    entries_[used_++] = {addr, static_cast<std::uint16_t>(size), type};
    if (used_ == kCapacity) flush();
  }

  Session& session_;
  const ThreadId tid_;
  std::array<Entry, kCapacity> entries_{};
  std::size_t used_ = 0;
};

}  // namespace pred
