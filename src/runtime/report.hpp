// Report construction (Section 2.3.2): walks the shadow spaces, keeps lines
// whose invalidation count crosses the report threshold, separates false
// from true sharing using the per-word histograms, attributes lines to
// program objects, folds in predicted (virtual-line) findings, and ranks
// everything by invalidation count — the paper's proxy for performance
// impact. format_report() renders the Figure 5 layout.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/cacheline.hpp"
#include "runtime/object_registry.hpp"
#include "runtime/runtime.hpp"
#include "runtime/virtual_line.hpp"
#include "runtime/word_access.hpp"

namespace pred {

enum class SharingKind : std::uint8_t {
  kNone,          ///< no multi-thread word pattern (e.g. sampling artifacts)
  kFalseSharing,  ///< distinct threads own distinct words of the line
  kTrueSharing,   ///< a single word is written by multiple threads
  kMixed,         ///< both patterns present on the same line(s)
};

const char* to_string(SharingKind kind);

/// One touched word of a hot line, as shown in Figure 5's word-level block.
struct WordReport {
  Address address = 0;
  std::size_t line_index = 0;  ///< global line number (address / line size)
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  ThreadId owner = kInvalidThread;  ///< WordAccess::kSharedWord when shared
  bool shared = false;
};

/// One hot physical cache line.
struct LineFinding {
  std::size_t line_index = 0;  ///< region-relative index
  Address line_start = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t sampled_accesses = 0;
  std::uint64_t sampled_writes = 0;
  std::uint64_t total_accesses = 0;  ///< unsampled access count
  std::uint64_t total_writes = 0;    ///< unsampled write count
  SharingKind kind = SharingKind::kNone;
  std::vector<WordReport> words;
};

/// One verified virtual line: latent false sharing predicted for a larger
/// line size or a shifted object placement (Section 3.4).
struct PredictedFinding {
  Address start = 0;
  std::size_t size = 0;
  VirtualLineTracker::Kind kind = VirtualLineTracker::Kind::kShifted;
  std::uint64_t invalidations = 0;
  std::uint64_t accesses = 0;
  Address hot_x = 0;
  Address hot_y = 0;
};

/// All findings attributed to one program object (heap or global).
struct ObjectFinding {
  ObjectInfo object;       ///< object.size == 0 when attribution failed
  bool attributed = false;
  SharingKind kind = SharingKind::kNone;
  bool observed = false;   ///< hot physical lines exist (detected today)
  bool predicted = false;  ///< hot virtual lines exist (latent problem)
  std::uint64_t invalidations = 0;            ///< observed, physical lines
  std::uint64_t predicted_invalidations = 0;  ///< virtual lines
  std::uint64_t sampled_accesses = 0;
  std::uint64_t sampled_writes = 0;
  std::uint64_t total_accesses = 0;
  std::uint64_t total_writes = 0;
  std::vector<LineFinding> lines;
  std::vector<PredictedFinding> predictions;

  /// Ranking key: projected performance impact.
  std::uint64_t impact() const {
    return invalidations + predicted_invalidations;
  }
  bool is_false_sharing() const {
    return kind == SharingKind::kFalseSharing || kind == SharingKind::kMixed ||
           (predicted && kind == SharingKind::kNone);
  }
};

struct Report {
  std::vector<ObjectFinding> findings;  ///< ranked by impact, descending
  std::uint64_t total_invalidations = 0;
};

/// Classifies a word histogram. `words` is one line's (or one object's
/// lines') touched-word list.
SharingKind classify_words(const std::vector<WordReport>& words);

/// Builds the ranked report from the runtime's current state.
Report build_report(const Runtime& rt);

/// Renders one finding / a whole report in the Figure 5 textual layout.
std::string format_finding(const ObjectFinding& finding,
                           const CallsiteTable& callsites);
std::string format_report(const Report& report, const CallsiteTable& callsites);

}  // namespace pred
