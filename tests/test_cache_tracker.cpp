// Unit tests for the per-line detail tracker: word histogram placement,
// invalidation counting, the Section 2.4.3 sampling window, reuse reset, and
// virtual-line fan-out.
#include <gtest/gtest.h>

#include "runtime/cache_tracker.hpp"

namespace pred {
namespace {

constexpr auto R = AccessType::kRead;
constexpr auto W = AccessType::kWrite;
constexpr LineGeometry kGeo{};  // 64-byte lines, 8-byte words

// Line 10 covers [640, 704).
constexpr Address kLineBase = 640;

CacheTracker make_tracker() { return CacheTracker(10, kGeo); }

TEST(CacheTracker, RecordsWordHistogram) {
  auto t = make_tracker();
  t.handle_access(kLineBase + 0, W, 0, 10'000, 1'000'000);
  t.handle_access(kLineBase + 8, W, 1, 10'000, 1'000'000);
  t.handle_access(kLineBase + 8, R, 1, 10'000, 1'000'000);
  const auto words = t.words_snapshot();
  ASSERT_EQ(words.size(), 8u);
  EXPECT_EQ(words[0].writes, 1u);
  EXPECT_EQ(words[0].owner, 0u);
  EXPECT_EQ(words[1].writes, 1u);
  EXPECT_EQ(words[1].reads, 1u);
  EXPECT_EQ(words[1].owner, 1u);
  EXPECT_FALSE(words[2].touched());
}

TEST(CacheTracker, CountsInvalidationsAcrossWords) {
  auto t = make_tracker();
  // Different threads writing *different words* of one line still
  // invalidate: that is precisely false sharing.
  for (int i = 0; i < 10; ++i) {
    t.handle_access(kLineBase + 0, W, 0, 10'000, 1'000'000);
    t.handle_access(kLineBase + 8, W, 1, 10'000, 1'000'000);
  }
  EXPECT_EQ(t.invalidations(), 19u);  // every write after the first
}

TEST(CacheTracker, SamplingWindowLimitsDetailedTracking) {
  auto t = make_tracker();
  // Window 10 of every 100: out of 1000 accesses, 100 are recorded.
  int sampled = 0;
  for (int i = 0; i < 1000; ++i) {
    sampled += t.handle_access(kLineBase, W, 0, 10, 100).sampled ? 1 : 0;
  }
  EXPECT_EQ(sampled, 100);
  EXPECT_EQ(t.sampled_accesses(), 100u);
  EXPECT_EQ(t.total_accesses(), 1000u);
}

TEST(CacheTracker, FullSamplingRecordsEverything) {
  auto t = make_tracker();
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(t.handle_access(kLineBase, R, 0, 100, 100).sampled);
  }
  EXPECT_EQ(t.sampled_accesses(), 500u);
  EXPECT_EQ(t.sampled_reads(), 500u);
}

TEST(CacheTracker, SampledInvalidationsScaleWithRate) {
  // The paper observes lower sampling rates report fewer invalidations but
  // still detect the problem. Compare 100% vs 10% sampling on a ping-pong.
  auto full = make_tracker();
  auto sampled = make_tracker();
  for (int i = 0; i < 10000; ++i) {
    const ThreadId tid = i % 2;
    full.handle_access(kLineBase, W, tid, 1'000'000, 1'000'000);
    sampled.handle_access(kLineBase, W, tid, 100, 1000);
  }
  EXPECT_GT(full.invalidations(), 9000u);
  EXPECT_GT(sampled.invalidations(), 500u);
  EXPECT_LT(sampled.invalidations(), 2000u);
}

TEST(CacheTracker, ResetForReuseClearsRecordingState) {
  auto t = make_tracker();
  t.handle_access(kLineBase, W, 0, 10'000, 1'000'000);
  t.handle_access(kLineBase, W, 1, 10'000, 1'000'000);
  ASSERT_GT(t.invalidations(), 0u);
  t.reset_for_reuse();
  EXPECT_EQ(t.invalidations(), 0u);
  EXPECT_EQ(t.sampled_accesses(), 0u);
  for (const auto& w : t.words_snapshot()) EXPECT_FALSE(w.touched());
  // History is also clear: the next write is not an invalidation.
  t.handle_access(kLineBase, W, 2, 10'000, 1'000'000);
  EXPECT_EQ(t.invalidations(), 0u);
}

TEST(CacheTracker, VirtualLineFanOut) {
  auto t = make_tracker();
  VirtualLineTracker vl(kLineBase + 32, 64, VirtualLineTracker::Kind::kShifted,
                        10, kLineBase + 32, kLineBase + 72);
  EXPECT_FALSE(t.has_virtual_lines());
  t.add_virtual_line(&vl);
  EXPECT_TRUE(t.has_virtual_lines());
  // Only accesses inside the virtual range reach the virtual table.
  t.update_virtual_lines(kLineBase + 40, W, 0);
  t.update_virtual_lines(kLineBase + 8, W, 1);  // outside [672, 736)
  EXPECT_EQ(vl.accesses(), 1u);
}

TEST(CacheTracker, PredictionBeginsExactlyOnce) {
  auto t = make_tracker();
  EXPECT_TRUE(t.try_begin_prediction());
  EXPECT_FALSE(t.try_begin_prediction());
  EXPECT_FALSE(t.try_begin_prediction());
}

TEST(VirtualLineTracker, CountsInvalidationsLikePhysicalLines) {
  VirtualLineTracker vl(128, 64, VirtualLineTracker::Kind::kDoubleLine, 2,
                        128, 184);
  for (int i = 0; i < 100; ++i) {
    vl.access(130 + (i % 2) * 50, AccessType::kWrite,
              static_cast<ThreadId>(i % 2));
  }
  EXPECT_EQ(vl.invalidations(), 99u);
  EXPECT_EQ(vl.accesses(), 100u);
}

TEST(VirtualLineTracker, IgnoresOutOfRange) {
  VirtualLineTracker vl(128, 64, VirtualLineTracker::Kind::kShifted, 2, 128,
                        184);
  vl.access(127, W, 0);
  vl.access(192, W, 1);
  EXPECT_EQ(vl.accesses(), 0u);
  vl.access(128, R, 0);
  vl.access(191, R, 1);
  EXPECT_EQ(vl.accesses(), 2u);
}

}  // namespace
}  // namespace pred
