// Tests for the whole-function static analysis pipeline
// (src/instrument/analysis/) and the pruning passes built on it: CFG and
// reachability, dominators, the dataflow engine via constant propagation,
// value numbering, natural loops, the random module generator — and the
// headline property: modules pruned by loop batching + dominance merging
// produce BIT-IDENTICAL detector reports to selectively-instrumented ones,
// while making strictly fewer runtime calls.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "instrument/analysis/cfg.hpp"
#include "instrument/analysis/constants.hpp"
#include "instrument/analysis/dominators.hpp"
#include "instrument/analysis/generator.hpp"
#include "instrument/analysis/loops.hpp"
#include "instrument/analysis/value_numbering.hpp"
#include "instrument/interp.hpp"
#include "instrument/ir.hpp"
#include "instrument/pass.hpp"
#include "report_io/report_json.hpp"

namespace pred::ir {
namespace {

// ---------------------------------------------------------------------------
// Shared builders
// ---------------------------------------------------------------------------

/// bb0 --cond--> bb1 / bb2 --> bb3 (join) --> bb4 (tail); bb5 unreachable.
Function make_diamond() {
  FunctionBuilder b("diamond", 2);
  const Reg c = b.cmp_lt(b.arg(0), b.arg(1));
  const std::uint32_t then_bb = b.new_block();
  const std::uint32_t else_bb = b.new_block();
  const std::uint32_t join = b.new_block();
  b.cond_br(c, then_bb, else_bb);
  b.set_block(then_bb);
  b.br(join);
  b.set_block(else_bb);
  b.br(join);
  b.set_block(join);
  const std::uint32_t tail = b.new_block();
  b.br(tail);
  b.set_block(tail);
  b.ret(b.const_val(0));
  const std::uint32_t dead = b.new_block();
  b.set_block(dead);
  b.ret(b.const_val(0));
  return b.take();
}

/// Canonical counted loop: bb0 (preheader) -> bb1 (header) -> bb2 (body,
/// latch) -> bb1; bb3 exit. Body stores two loop-invariant slots, reads one
/// of them, and stores one induction-dependent slot.
Module make_loop_module() {
  Module m;
  FunctionBuilder b("loopy", 2);
  const Reg buf = b.arg(0);
  const Reg n = b.arg(1);
  const Reg i = b.fresh_reg();
  b.move(i, b.const_val(0));
  const std::uint32_t header = b.new_block();
  const std::uint32_t body = b.new_block();
  const std::uint32_t exit = b.new_block();
  b.br(header);
  b.set_block(header);
  b.cond_br(b.cmp_lt(i, n), body, exit);
  b.set_block(body);
  b.store(buf, i, 0);                       // invariant address
  b.store(buf, i, 8);                       // invariant address
  (void)b.load(buf, 8);                     // invariant address (read)
  const Reg scaled = b.mul(i, b.const_val(8));
  const Reg addr = b.add(buf, scaled);
  b.store(addr, i, 0);                      // induction-dependent
  b.move(i, b.add(i, b.const_val(1)));
  b.br(header);
  b.set_block(exit);
  b.ret(i);
  m.functions.push_back(b.take());
  return m;
}

/// Counted loop whose body latch is CONDITIONAL: after stepping i the body
/// may branch straight to the exit (when i % 3 == 0) instead of returning
/// to the header. bb0 preheader -> bb1 header -> bb2 body/latch; bb3 exit.
/// The body stores a loop-invariant slot — tempting to batch, but the trip
/// count is not ceil((n - i0) / step).
Module make_early_exit_loop_module() {
  Module m;
  FunctionBuilder b("early_exit", 2);
  const Reg buf = b.arg(0);
  const Reg n = b.arg(1);
  const Reg i = b.fresh_reg();
  b.move(i, b.const_val(0));
  const std::uint32_t header = b.new_block();
  const std::uint32_t body = b.new_block();
  const std::uint32_t exit = b.new_block();
  b.br(header);
  b.set_block(header);
  b.cond_br(b.cmp_lt(i, n), body, exit);
  b.set_block(body);
  b.store(buf, i, 0);  // loop-invariant address
  b.move(i, b.add(i, b.const_val(1)));
  const Reg leave = b.cmp_eq(b.rem(i, b.const_val(3)), b.const_val(0));
  b.cond_br(leave, exit, header);
  b.set_block(exit);
  b.ret(i);
  m.functions.push_back(b.take());
  return m;
}

/// A back-edge into the ENTRY block: bb0 (entry) loads [buf], steps i, and
/// loops via bb1 — which also loads [buf] — until i reaches n. bb1 -> bb0
/// is single-succ into single-pred, yet bb0 executes once more than bb1
/// (function entry arrives without a CFG edge), so merging across that edge
/// would drop one delivery.
Module make_entry_backedge_module() {
  Module m;
  FunctionBuilder b("entry_backedge", 2);
  const Reg buf = b.arg(0);
  const Reg n = b.arg(1);
  const Reg i = b.fresh_reg();  // reads as zero on entry
  (void)b.load(buf, 0);
  b.move(i, b.add(i, b.const_val(1)));
  const std::uint32_t back = b.new_block();
  const std::uint32_t done = b.new_block();
  b.cond_br(b.cmp_lt(i, n), back, done);
  b.set_block(back);
  (void)b.load(buf, 0);
  b.br(Cfg::kEntry);
  b.set_block(done);
  b.ret(i);
  m.functions.push_back(b.take());
  return m;
}

// ---------------------------------------------------------------------------
// CFG
// ---------------------------------------------------------------------------

TEST(Cfg, EdgesReachabilityAndOrder) {
  const Function fn = make_diamond();
  const Cfg cfg(fn);
  ASSERT_EQ(cfg.num_blocks(), 6u);
  EXPECT_EQ(cfg.succs(0), (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(cfg.succs(1), (std::vector<std::uint32_t>{3}));
  EXPECT_EQ(cfg.preds(3), (std::vector<std::uint32_t>{1, 2}));
  EXPECT_TRUE(cfg.reachable(3));
  EXPECT_FALSE(cfg.reachable(5));
  EXPECT_EQ(cfg.num_reachable(), 5u);
  ASSERT_FALSE(cfg.reverse_postorder().empty());
  EXPECT_EQ(cfg.reverse_postorder().front(), Cfg::kEntry);
  // join -> tail is the only linear edge: single succ into single pred.
  EXPECT_TRUE(cfg.linear_edge(3, 4));
  EXPECT_FALSE(cfg.linear_edge(1, 3));  // join has two predecessors
  EXPECT_FALSE(cfg.linear_edge(0, 1));  // entry has two successors
}

// ---------------------------------------------------------------------------
// Dominators
// ---------------------------------------------------------------------------

TEST(DomTree, DiamondDominance) {
  const Function fn = make_diamond();
  const Cfg cfg(fn);
  const DomTree dom(cfg);
  EXPECT_EQ(dom.idom(1), 0u);
  EXPECT_EQ(dom.idom(2), 0u);
  EXPECT_EQ(dom.idom(3), 0u);  // join is dominated by the branch, not an arm
  EXPECT_EQ(dom.idom(4), 3u);
  EXPECT_EQ(dom.idom(5), DomTree::kNone);  // unreachable
  EXPECT_TRUE(dom.dominates(0, 4));
  EXPECT_TRUE(dom.dominates(3, 4));
  EXPECT_FALSE(dom.dominates(1, 3));
  EXPECT_TRUE(dom.dominates(2, 2));
  EXPECT_EQ(dom.depth(0), 0u);
  EXPECT_EQ(dom.depth(4), 2u);
}

TEST(DomTree, LoopHeaderDominatesLatch) {
  const Module m = make_loop_module();
  const Cfg cfg(m.functions[0]);
  const DomTree dom(cfg);
  EXPECT_EQ(dom.idom(1), 0u);
  EXPECT_EQ(dom.idom(2), 1u);
  EXPECT_EQ(dom.idom(3), 1u);
  EXPECT_TRUE(dom.dominates(1, 2));   // header dominates the latch...
  EXPECT_FALSE(dom.dominates(2, 1));  // ...establishing the back-edge.
}

// ---------------------------------------------------------------------------
// Dataflow engine via constant propagation
// ---------------------------------------------------------------------------

TEST(Constants, AgreeingArmsStayConstantConflictingArmsVary) {
  FunctionBuilder b("consts", 1);
  const Reg x = b.fresh_reg();
  const Reg y = b.fresh_reg();
  const Reg c = b.cmp_lt(b.arg(0), b.const_val(3));
  const std::uint32_t then_bb = b.new_block();
  const std::uint32_t else_bb = b.new_block();
  const std::uint32_t join = b.new_block();
  b.cond_br(c, then_bb, else_bb);
  b.set_block(then_bb);
  b.move(x, b.const_val(7));
  b.move(y, b.const_val(1));
  b.br(join);
  b.set_block(else_bb);
  b.move(x, b.const_val(7));  // same constant through a different register
  b.move(y, b.const_val(2));  // conflicting constant
  b.br(join);
  b.set_block(join);
  b.ret(x);
  const Function fn = b.take();

  const Cfg cfg(fn);
  const ConstantFacts facts = analyze_constants(fn, cfg);
  const auto& at_join = facts.block_entry[join];
  ASSERT_TRUE(at_join[x].is_const());
  EXPECT_EQ(at_join[x].value, 7);
  EXPECT_EQ(at_join[y].kind, ConstLattice::Kind::kVarying);
  // Non-argument registers read as zero until first defined.
  ASSERT_TRUE(facts.block_entry[Cfg::kEntry][x].is_const());
  EXPECT_EQ(facts.block_entry[Cfg::kEntry][x].value, 0);
  // Arguments are never constant.
  EXPECT_EQ(at_join[b.arg(0)].kind, ConstLattice::Kind::kVarying);
  EXPECT_GT(facts.facts, 0u);
}

// ---------------------------------------------------------------------------
// Value numbering
// ---------------------------------------------------------------------------

TEST(ValueNumbering, UnifiesAliasesAndSplitOffsets) {
  FunctionBuilder b("vn", 1);
  const Reg a = b.arg(0);
  const Reg t = b.fresh_reg();
  b.move(t, a);                             // t aliases a
  const Reg u = b.add(a, b.const_val(16));  // u = a + 16
  (void)b.load(a, 16);                      // [a + 16]
  (void)b.load(t, 16);                      // [t + 16]   same address
  (void)b.load(u, 0);                       // [u]        same address
  (void)b.load(u, 8);                       // [u + 8]    different address
  const Reg killed = b.load(a, 16);         // t redefined next:
  b.move(t, killed);
  (void)b.load(t, 16);                      // no longer [a + 16]
  b.ret(killed);
  const Function fn = b.take();

  ValueNumbering vn(fn);
  std::vector<ValueNumbering::Value> addrs;
  for (const Instr& in : fn.blocks[0].instrs) {
    if (in.op == Opcode::kLoad) addrs.push_back(vn.address_of(in));
    vn.apply(in);
  }
  ASSERT_EQ(addrs.size(), 6u);
  EXPECT_EQ(addrs[0], addrs[1]);  // alias via move
  EXPECT_EQ(addrs[0], addrs[2]);  // offset folded into the register
  EXPECT_NE(addrs[0], addrs[3]);  // distinct offset
  EXPECT_EQ(addrs[3].offset, addrs[0].offset + 8);
  EXPECT_NE(addrs[0], addrs[5]);  // redefinition makes a fresh value
}

TEST(ValueNumbering, SeededConstantsFoldIntoAddresses) {
  FunctionBuilder b("vnc", 1);
  const Reg k = b.fresh_reg();  // entry-constant 0 by zero-initialization
  (void)b.load(b.add(b.arg(0), k), 0);
  (void)b.load(b.arg(0), 0);
  b.ret(k);
  const Function fn = b.take();
  const Cfg cfg(fn);
  const ConstantFacts facts = analyze_constants(fn, cfg);

  ValueNumbering vn(fn);
  vn.seed_constants(facts.block_entry[Cfg::kEntry]);
  std::vector<ValueNumbering::Value> addrs;
  for (const Instr& in : fn.blocks[0].instrs) {
    if (in.op == Opcode::kLoad) addrs.push_back(vn.address_of(in));
    vn.apply(in);
  }
  ASSERT_EQ(addrs.size(), 2u);
  EXPECT_EQ(addrs[0], addrs[1]);  // a + 0 == a, provable only via constants
}

// ---------------------------------------------------------------------------
// Natural loops
// ---------------------------------------------------------------------------

TEST(Loops, FindsCountedLoopWithPreheader) {
  const Module m = make_loop_module();
  const Cfg cfg(m.functions[0]);
  const DomTree dom(cfg);
  const auto loops = find_natural_loops(cfg, dom);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0].header, 1u);
  EXPECT_EQ(loops[0].blocks, (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(loops[0].latches, (std::vector<std::uint32_t>{2}));
  EXPECT_EQ(loops[0].preheader, 0u);
  EXPECT_EQ(loops[0].depth, 1u);
  EXPECT_TRUE(loops[0].contains(2));
  EXPECT_FALSE(loops[0].contains(3));
}

TEST(Loops, NestedLoopsGetDepths) {
  // Two-level nest: outer header bb1, inner header bb3; the inner preheader
  // (bb2) sits inside the outer body.
  FunctionBuilder b("nest", 1);
  const Reg n = b.arg(0);
  const Reg i = b.fresh_reg();
  const Reg j = b.fresh_reg();
  b.move(i, b.const_val(0));
  const std::uint32_t oh = b.new_block();
  const std::uint32_t opre = b.new_block();
  const std::uint32_t ih = b.new_block();
  const std::uint32_t ib = b.new_block();
  const std::uint32_t olatch = b.new_block();
  const std::uint32_t done = b.new_block();
  b.br(oh);
  b.set_block(oh);
  b.cond_br(b.cmp_lt(i, n), opre, done);
  b.set_block(opre);
  b.move(j, b.const_val(0));
  b.br(ih);
  b.set_block(ih);
  b.cond_br(b.cmp_lt(j, n), ib, olatch);
  b.set_block(ib);
  b.move(j, b.add(j, b.const_val(1)));
  b.br(ih);
  b.set_block(olatch);
  b.move(i, b.add(i, b.const_val(1)));
  b.br(oh);
  b.set_block(done);
  b.ret(i);
  const Function fn = b.take();

  const Cfg cfg(fn);
  const DomTree dom(cfg);
  const auto loops = find_natural_loops(cfg, dom);
  ASSERT_EQ(loops.size(), 2u);
  EXPECT_EQ(loops[0].header, oh);  // outermost first
  EXPECT_EQ(loops[0].depth, 1u);
  EXPECT_EQ(loops[1].header, ih);
  EXPECT_EQ(loops[1].depth, 2u);
  EXPECT_EQ(loops[1].preheader, opre);
  EXPECT_TRUE(loops[0].contains(ih));
}

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

TEST(Generator, ModulesVerifyAndExecute) {
  alignas(64) static std::int64_t buffer[1024];
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Module m = generate_module(seed);
    ASSERT_EQ(verify(m), "") << "seed " << seed;
    run_instrumentation_pass(m, {});
    std::memset(buffer, 0, sizeof buffer);
    Interpreter interp;
    const std::int64_t args[] = {
        static_cast<std::int64_t>(reinterpret_cast<std::intptr_t>(buffer)),
        19};
    for (const Function& fn : m.functions) {
      const auto res = interp.run(m, fn, args);
      EXPECT_FALSE(res.step_limit_exceeded) << "seed " << seed;
      EXPECT_GT(res.steps, 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// Pruning passes: static structure
// ---------------------------------------------------------------------------

TEST(Pass, LoopBatchingHoistsInvariantAccesses) {
  Module m = make_loop_module();
  PassOptions opt;
  opt.loop_batching = true;
  const PassStats stats = run_instrumentation_pass(m, opt);
  EXPECT_EQ(stats.loop_batched, 3u);  // two stores + one load hoisted
  EXPECT_EQ(stats.reports_inserted, 3u);
  EXPECT_TRUE(stats.reconciles());

  const Function& fn = m.functions[0];
  // The preheader gained the trip count computation and three kReports.
  std::uint64_t reports = 0;
  for (const Instr& in : fn.blocks[0].instrs) {
    if (in.op == Opcode::kReport) {
      ++reports;
      EXPECT_TRUE(in.instrumented);
      EXPECT_EQ(in.a, 0u);  // based on the buffer argument
    }
  }
  EXPECT_EQ(reports, 3u);
  EXPECT_EQ(verify_function(m, fn), "");
  // Invariant body accesses are unmarked; the induction-dependent store
  // stays instrumented.
  std::uint64_t still_marked = 0;
  for (const Instr& in : fn.blocks[2].instrs) {
    if (is_memory_access(in.op) && in.instrumented) ++still_marked;
  }
  EXPECT_EQ(still_marked, 1u);
}

TEST(Pass, LoopBatchingRejectsConditionalLatch) {
  Module m = make_early_exit_loop_module();
  PassOptions opt;
  opt.loop_batching = true;
  const PassStats stats = run_instrumentation_pass(m, opt);
  EXPECT_EQ(stats.loop_batched, 0u);
  EXPECT_EQ(stats.reports_inserted, 0u);
  EXPECT_TRUE(stats.reconciles());
  // The invariant store stays instrumented in place; no kReport appears.
  for (const BasicBlock& bb : m.functions[0].blocks) {
    for (const Instr& in : bb.instrs) {
      EXPECT_NE(in.op, Opcode::kReport);
      if (in.op == Opcode::kStore && in.a == 0) {
        EXPECT_TRUE(in.instrumented);
      }
    }
  }
}

TEST(Pass, ChainMergingNeverFoldsIntoEntryBlock) {
  Module m = make_entry_backedge_module();
  PassOptions opt;
  opt.dominance_elim = true;
  const PassStats stats = run_instrumentation_pass(m, opt);
  // bb1 -> bb0 must not count as a linear edge, so nothing merges and both
  // loads keep their own runtime calls.
  EXPECT_EQ(stats.dominance_merged, 0u);
  EXPECT_EQ(stats.instrumented_accesses, 2u);
  EXPECT_TRUE(stats.reconciles());
  const Cfg cfg(m.functions[0]);
  EXPECT_FALSE(cfg.linear_edge(1, Cfg::kEntry));
}

TEST(Pass, ChainMergingFoldsAcrossLinearBlocksWithCompensation) {
  // bb0: load [a]; br bb1. bb1: t = a; load [t] (same address, aliased);
  // store [a], v; ret. bb0 -> bb1 is a linear edge, so both the aliased
  // load and the store fold into the first load as +1r +1w.
  Module m;
  {
    FunctionBuilder b("chain", 1);
    const Reg a = b.arg(0);
    (void)b.load(a, 0);
    const std::uint32_t next = b.new_block();
    b.br(next);
    b.set_block(next);
    const Reg t = b.fresh_reg();
    b.move(t, a);
    (void)b.load(t, 0);
    b.store(a, b.const_val(5), 0);
    b.ret(b.const_val(0));
    m.functions.push_back(b.take());
  }
  PassOptions opt;
  opt.dominance_elim = true;
  const PassStats stats = run_instrumentation_pass(m, opt);
  EXPECT_EQ(stats.dominance_merged, 2u);
  EXPECT_EQ(stats.instrumented_accesses, 1u);
  EXPECT_TRUE(stats.reconciles());
  const Instr& kept = m.functions[0].blocks[0].instrs[0];
  ASSERT_EQ(kept.op, Opcode::kLoad);
  EXPECT_TRUE(kept.instrumented);
  EXPECT_EQ(kept.extra_reads, 1u);
  EXPECT_EQ(kept.extra_writes, 1u);
  EXPECT_EQ(verify(m), "");
}

TEST(Pass, WholeFunctionPassesAreOffByDefault) {
  Module m = make_loop_module();
  const PassStats stats = run_instrumentation_pass(m, {});
  EXPECT_EQ(stats.loop_batched, 0u);
  EXPECT_EQ(stats.dominance_merged, 0u);
  EXPECT_EQ(stats.reports_inserted, 0u);
  EXPECT_TRUE(stats.reconciles());
}

// ---------------------------------------------------------------------------
// The headline property: bit-identical reports
// ---------------------------------------------------------------------------

struct RunTotals {
  std::uint64_t calls = 0;
  std::uint64_t delivered = 0;
};

alignas(64) std::int64_t g_buffer[1024];

/// Executes every function of `m` from two alternating logical threads
/// against g_buffer under a fully deterministic runtime configuration
/// (sampling 1.0, prediction off, every line pre-escalated so all IR-driven
/// accesses land on tracked lines) and returns the detector report as JSON.
std::string run_module_report(const Module& m, std::int64_t n,
                              RunTotals* totals) {
  SessionOptions opts;
  opts.runtime.tracking_threshold = 1;
  opts.runtime.report_invalidation_threshold = 1;
  opts.runtime.prediction_enabled = false;
  opts.runtime.set_sampling_rate(1.0);
  opts.heap_size = 4 * 1024 * 1024;
  Session session(opts);
  std::memset(g_buffer, 0, sizeof g_buffer);
  session.register_global(g_buffer, sizeof g_buffer, "gen_buffer");
  // Pre-escalate every line (threshold 1: one write creates the tracker) so
  // no later delivery can straddle the tracking boundary.
  for (std::size_t w = 0; w < 1024; w += 8) {
    session.record(&g_buffer[w], AccessType::kWrite, 0, 8);
  }
  Interpreter interp(&session);
  const std::int64_t args[] = {
      static_cast<std::int64_t>(reinterpret_cast<std::intptr_t>(g_buffer)),
      n};
  for (int round = 0; round < 4; ++round) {
    for (ThreadId tid = 0; tid < 2; ++tid) {
      for (const Function& fn : m.functions) {
        const auto res = interp.run(m, fn, args, tid);
        EXPECT_FALSE(res.step_limit_exceeded);
        totals->calls += res.runtime_calls;
        totals->delivered += res.accesses_delivered;
      }
    }
  }
  return report_to_json(session.report(), session.runtime().callsites());
}

TEST(ReportEquivalence, PrunedModulesProduceBitIdenticalReports) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Module generated = generate_module(seed);
    Module base = generated;
    Module pruned = generated;
    run_instrumentation_pass(base, {});  // selective per-block dedup only
    PassOptions all;
    all.loop_batching = true;
    all.dominance_elim = true;
    const PassStats pstats = run_instrumentation_pass(pruned, all);
    EXPECT_TRUE(pstats.reconciles()) << "seed " << seed;

    const std::int64_t n = 17 + static_cast<std::int64_t>(seed % 19);
    RunTotals base_totals;
    RunTotals pruned_totals;
    const std::string base_json = run_module_report(base, n, &base_totals);
    const std::string pruned_json =
        run_module_report(pruned, n, &pruned_totals);

    // The detector saw the same multiset of accesses...
    EXPECT_EQ(base_totals.delivered, pruned_totals.delivered)
        << "seed " << seed;
    // ...through no more (usually far fewer) runtime calls...
    EXPECT_LE(pruned_totals.calls, base_totals.calls) << "seed " << seed;
    // ...and concluded exactly the same thing, byte for byte.
    EXPECT_EQ(base_json, pruned_json) << "seed " << seed;
  }
}

// Direct regressions for the two count-exactness holes the random sweep can
// miss: a conditional latch (early loop exit) and a back-edge into the entry
// block. In both, a wrong prune changes the delivered-access count.
TEST(ReportEquivalence, ConditionalLatchAndEntryBackedgeStayExact) {
  const Module shapes[] = {make_early_exit_loop_module(),
                           make_entry_backedge_module()};
  for (const Module& generated : shapes) {
    Module base = generated;
    Module pruned = generated;
    run_instrumentation_pass(base, {});
    PassOptions all;
    all.loop_batching = true;
    all.dominance_elim = true;
    run_instrumentation_pass(pruned, all);
    for (const std::int64_t n : {0, 1, 2, 3, 7, 19}) {
      RunTotals bt;
      RunTotals pt;
      const std::string base_json = run_module_report(base, n, &bt);
      const std::string pruned_json = run_module_report(pruned, n, &pt);
      EXPECT_EQ(bt.delivered, pt.delivered)
          << generated.functions[0].name << " n=" << n;
      EXPECT_EQ(base_json, pruned_json)
          << generated.functions[0].name << " n=" << n;
    }
  }
}

TEST(ReportEquivalence, LoopHeavyModulesCutRuntimeCallsByThirtyPercent) {
  GeneratorOptions gopts;
  gopts.segments = 5;
  gopts.accesses_per_block = 4;
  std::uint64_t base_calls = 0;
  std::uint64_t pruned_calls = 0;
  for (std::uint64_t seed = 100; seed < 103; ++seed) {
    const Module generated = generate_module(seed, gopts);
    Module base = generated;
    Module pruned = generated;
    run_instrumentation_pass(base, {});
    PassOptions all;
    all.loop_batching = true;
    all.dominance_elim = true;
    run_instrumentation_pass(pruned, all);
    RunTotals bt;
    RunTotals pt;
    (void)run_module_report(base, 64, &bt);
    (void)run_module_report(pruned, 64, &pt);
    EXPECT_EQ(bt.delivered, pt.delivered) << "seed " << seed;
    base_calls += bt.calls;
    pruned_calls += pt.calls;
  }
  ASSERT_GT(base_calls, 0u);
  EXPECT_LE(pruned_calls * 10, base_calls * 7)
      << "expected >= 30% fewer runtime calls on loop-heavy modules, got "
      << base_calls << " -> " << pruned_calls;
}

}  // namespace
}  // namespace pred::ir
