file(REMOVE_RECURSE
  "libpredator_baseline.a"
)
