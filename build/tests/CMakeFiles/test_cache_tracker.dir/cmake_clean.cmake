file(REMOVE_RECURSE
  "CMakeFiles/test_cache_tracker.dir/test_cache_tracker.cpp.o"
  "CMakeFiles/test_cache_tracker.dir/test_cache_tracker.cpp.o.d"
  "test_cache_tracker"
  "test_cache_tracker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_tracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
