// Public facade of the PREDATOR library (Session API v2).
//
// A Session bundles everything a user needs: the detection runtime
// (Section 2), the prediction engine (Section 3), and the custom allocator
// (Section 2.3.2), pre-wired. Typical use:
//
//   pred::Session session;
//   auto cs = session.intern_frames({"myfile.c:42"});
//   auto* data = static_cast<T*>(session.alloc(sizeof(T), cs));
//   ... in each thread: pred::ScopedThread guard(session);
//       pred::store(x) / pred::load(x) on tracked data ...
//   std::cout << session.report_text();
//
// v2 notes (see docs/usage.md for the migration guide):
//   - `record()` is the single access entry point; the typed shims in
//     instrument/access.hpp route through it and infer the access size.
//   - allocation callsites are interned once (`intern_frames`) and passed
//     as `CallsiteId`; the `std::vector<std::string>` overload survives as
//     a deprecated convenience.
//   - `flush()` publishes the calling thread's staged write counters;
//     `ScopedThread`/`ThreadContext::unbind` do it automatically, and
//     `report()` flushes the reporting thread, so explicit calls are only
//     needed when inspecting counters mid-run from a still-bound thread.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "alloc/predator_allocator.hpp"
#include "monitor/monitor.hpp"
#include "predict/predictor.hpp"
#include "runtime/report.hpp"
#include "runtime/runtime.hpp"

// Session API v2 is frozen: the legacy v1 entry points (alloc with a
// per-call frame vector, on_read/on_write) compile only when the build
// opts in with -DPREDATOR_LEGACY_API (CMake option of the same name,
// default OFF). No in-tree code uses them; out-of-tree users migrating at
// their own pace can turn the option on and additionally define
// PREDATOR_WARN_DEPRECATED for compiler nudges toward the v2 API.
#ifdef PREDATOR_WARN_DEPRECATED
#define PRED_DEPRECATED(msg) [[deprecated(msg)]]
#else
#define PRED_DEPRECATED(msg)
#endif

namespace pred {

struct SessionOptions {
  RuntimeConfig runtime{};
  PredictorConfig predictor{};
  MonitorConfig monitor{};
  std::size_t heap_size = 256 * 1024 * 1024;
  /// Fleet identity of this session (stamped on published snapshots).
  /// 0 derives one from the process id and a per-process counter, which is
  /// what keeps forked fleet clients distinguishable at the collector.
  std::uint64_t session_uid = 0;
};

class Session {
 public:
  explicit Session(SessionOptions options = {});
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // --- component access ---
  Runtime& runtime() { return *runtime_; }
  const Runtime& runtime() const { return *runtime_; }
  PredatorAllocator& allocator() { return *allocator_; }
  Predictor& predictor() { return *predictor_; }
  const SessionOptions& options() const { return options_; }

  /// The live monitor (src/monitor/), configured by SessionOptions::monitor
  /// and idle until `monitor().start()`. While running, the runtime streams
  /// escalation/invalidation/sampling/prediction events into per-thread
  /// lock-free rings and a background thread aggregates them;
  /// `monitor().snapshot()` / `snapshot_text()` serve the current state
  /// without stopping mutator threads.
  ///
  /// Flushing contract: `snapshot()` publishes the *calling* thread's
  /// staged write counters first — the same guarantee `report()` gives —
  /// so every event caused by this thread's accesses before the call
  /// (including escalations the flush itself triggers) is visible in the
  /// returned snapshot. Other threads flush on unbind/exit as usual; their
  /// in-flight staged counts appear in a later snapshot.
  Monitor& monitor() { return *monitor_; }

  // --- memory ---

  /// Interns a symbolic callsite stack (outermost frame last) for use with
  /// the CallsiteId alloc overload. Intern once, allocate many.
  CallsiteId intern_frames(std::initializer_list<std::string_view> frames) {
    return runtime_->callsites().intern_frames(frames);
  }

  /// Allocates `size` bytes attributed to a pre-interned callsite.
  void* alloc(std::size_t size, CallsiteId callsite);

#ifdef PREDATOR_LEGACY_API
  /// Allocates attributing to a symbolic stack built per call. Prefer
  /// intern_frames + the CallsiteId overload on hot allocation paths.
  PRED_DEPRECATED("intern the stack once and call alloc(size, CallsiteId)")
  void* alloc(std::size_t size, std::vector<std::string> callsite_frames) {
    return allocator_->allocate(size, std::move(callsite_frames));
  }
#endif

  void free(void* p);

  /// Starts tracking an existing object (e.g. a global variable). The
  /// object's memory itself is registered as a tracked region.
  void register_global(void* addr, std::size_t size, std::string name);

  // --- threads & accesses ---
  ThreadId register_thread() { return runtime_->register_thread(); }

  /// The single access entry point: records one `size`-byte access of
  /// `type` at `p` by thread `tid`. The typed shims (pred::load<T> /
  /// pred::store<T>) call this with the inferred sizeof(T).
  void record(const void* p, AccessType type, ThreadId tid,
              std::size_t size) {
    runtime_->handle_access(reinterpret_cast<Address>(p), type, tid, size);
  }

  /// Bulk delivery: semantically exactly `count` repetitions of record().
  /// Used by batched instrumentation (the mini-IR's kReport and merge
  /// compensation) to amortize call overhead; every sampling, threshold,
  /// and history decision is made per access, so the detector's state —
  /// and its report — is identical to `count` individual record() calls.
  void record_n(const void* p, AccessType type, ThreadId tid,
                std::size_t size, std::uint64_t count) {
    runtime_->handle_access_n(reinterpret_cast<Address>(p), type, tid, size,
                              count);
  }

  /// Synchronization event by `tid` (lock acquire/release, barrier): bumps
  /// its epoch so the sync-aware suppression fast state stops matching
  /// ownership words claimed before the event. Harmless no-op in effect
  /// when RuntimeConfig::sync_suppression is off.
  void sync(ThreadId tid) { runtime_->handle_sync(tid); }

  /// Ownership handoff of [p, p+len) to thread `tid` (e.g. a producer
  /// publishing a buffer to a consumer under a lock). Bumps the receiver's
  /// epoch and delivers a synthetic ownership claim to every tracked line
  /// the range overlaps, standing in for the receiver's first write when
  /// static sync-scoped pruning removed it. Runs in every mode so reports
  /// stay comparable across pruning and suppression settings.
  void handoff(const void* p, std::size_t len, ThreadId tid) {
    runtime_->handle_handoff(reinterpret_cast<Address>(p), len, tid);
  }

#ifdef PREDATOR_LEGACY_API
  PRED_DEPRECATED("use record(p, AccessType::kRead, tid, size)")
  void on_read(const void* p, ThreadId tid, std::size_t size = 8) {
    record(p, AccessType::kRead, tid, size);
  }
  PRED_DEPRECATED("use record(p, AccessType::kWrite, tid, size)")
  void on_write(const void* p, ThreadId tid, std::size_t size = 8) {
    record(p, AccessType::kWrite, tid, size);
  }
#endif

  /// Publishes the calling thread's staged write counters to the shared
  /// per-line counters, running any threshold checks that became due.
  /// Ordering: `report()` and `monitor().snapshot()` both perform this
  /// flush for the calling thread themselves, so an explicit call is only
  /// needed when reading `ShadowSpace::writes_count` directly mid-run from
  /// a still-bound thread.
  void flush() { flush_staged_writes(); }

  // --- fleet publication (Session API v2) ---

  /// This session's fleet identity: SessionOptions::session_uid, or the
  /// pid-and-counter-derived default.
  std::uint64_t uid() const { return uid_; }

  /// Takes a monitor snapshot (same flushing contract as
  /// monitor().snapshot()) and encodes it as one kSnapshot wire frame
  /// stamped with this session's identity — the unit a fleet client streams
  /// to a collector (src/collect/). The bytes are transport-agnostic:
  /// write them to a socket/pipe, hand them to a SnapshotSink, or feed
  /// them straight to Collector::ingest_frame in-process.
  std::string publish();

  /// Transport session brackets surrounding a stream of publish() frames.
  std::string hello_frame() const;
  std::string goodbye_frame() const;

  // --- results ---
  Report report() const { return build_report(*runtime_); }
  std::string report_text() const {
    return format_report(report(), runtime_->callsites());
  }

  /// Bytes of analysis metadata currently held (Figures 8/9 accounting).
  std::size_t metadata_bytes() const { return runtime_->metadata_bytes(); }

 private:
  SessionOptions options_;
  std::uint64_t uid_ = 0;
  std::unique_ptr<Runtime> runtime_;
  std::unique_ptr<Predictor> predictor_;
  std::unique_ptr<PredatorAllocator> allocator_;
  // Declared after runtime_ so destruction stops the aggregator and
  // detaches from the runtime while the runtime is still alive.
  std::unique_ptr<Monitor> monitor_;
};

/// Thread-local binding of (session, thread id) used by the access shims in
/// instrument/access.hpp, so instrumented code does not need to thread a
/// session reference through every call.
class ThreadContext {
 public:
  static void bind(Session* session, ThreadId tid);
  /// Drains the thread's staged write counters, then clears the binding.
  static void unbind();
  static Session* session();
  static ThreadId tid();
};

/// RAII registration of the calling thread with a session.
class ScopedThread {
 public:
  explicit ScopedThread(Session& session)
      : ScopedThread(session, session.register_thread()) {}
  ScopedThread(Session& session, ThreadId tid) {
    ThreadContext::bind(&session, tid);
  }
  ~ScopedThread() { ThreadContext::unbind(); }
  ScopedThread(const ScopedThread&) = delete;
  ScopedThread& operator=(const ScopedThread&) = delete;
};

}  // namespace pred
