// Tests for report construction: false/true sharing classification from
// word histograms, object attribution, ranking by invalidations, predicted
// findings, and Figure 5 formatting.
#include <gtest/gtest.h>

#include "runtime/report.hpp"

namespace pred {
namespace {

constexpr auto R = AccessType::kRead;
constexpr auto W = AccessType::kWrite;

WordReport word(Address addr, std::uint64_t reads, std::uint64_t writes,
                ThreadId owner, bool shared = false) {
  WordReport w;
  w.address = addr;
  w.line_index = addr / 64;
  w.reads = reads;
  w.writes = writes;
  w.owner = owner;
  w.shared = shared;
  return w;
}

TEST(ClassifyWords, EmptyIsNone) {
  EXPECT_EQ(classify_words({}), SharingKind::kNone);
}

TEST(ClassifyWords, SingleOwnerIsNone) {
  EXPECT_EQ(classify_words({word(0, 10, 10, 0), word(8, 5, 5, 0)}),
            SharingKind::kNone);
}

TEST(ClassifyWords, TwoOwnersWithWritesIsFalseSharing) {
  EXPECT_EQ(classify_words({word(0, 0, 100, 0), word(8, 0, 100, 1)}),
            SharingKind::kFalseSharing);
}

TEST(ClassifyWords, WriterPlusForeignReaderIsFalseSharing) {
  EXPECT_EQ(classify_words({word(0, 0, 100, 0), word(8, 100, 0, 1)}),
            SharingKind::kFalseSharing);
}

TEST(ClassifyWords, ReadOnlyWordsNeverFalseShare) {
  EXPECT_EQ(classify_words({word(0, 100, 0, 0), word(8, 100, 0, 1)}),
            SharingKind::kNone);
}

TEST(ClassifyWords, SharedWrittenWordIsTrueSharing) {
  EXPECT_EQ(classify_words(
                {word(0, 10, 50, WordAccess::kSharedWord, /*shared=*/true)}),
            SharingKind::kTrueSharing);
}

TEST(ClassifyWords, SharedReadOnlyWordIsNotTrueSharing) {
  EXPECT_EQ(classify_words(
                {word(0, 60, 0, WordAccess::kSharedWord, /*shared=*/true)}),
            SharingKind::kNone);
}

TEST(ClassifyWords, ContendedCounterPlusPrivateWordStaysTrueSharing) {
  // A hot shared counter next to one thread's read-only data: classified as
  // true sharing (no owned-writer/foreign-word pair).
  EXPECT_EQ(classify_words({word(0, 10, 90, WordAccess::kSharedWord, true),
                            word(8, 50, 0, 3)}),
            SharingKind::kTrueSharing);
}

TEST(ClassifyWords, OwnedWriterPlusSharedWordIsMixed) {
  // Word 0: written by its single owner; word 1: written by many.
  EXPECT_EQ(classify_words({word(0, 0, 90, 2),
                            word(8, 10, 90, WordAccess::kSharedWord, true)}),
            SharingKind::kMixed);
}

// --- end-to-end report construction over a real runtime -------------------

class ReportBuildTest : public ::testing::Test {
 protected:
  ReportBuildTest() : rt_(config()) {
    region_ = rt_.register_region(reinterpret_cast<Address>(buf_), 4096);
  }
  static RuntimeConfig config() {
    RuntimeConfig cfg;
    cfg.tracking_threshold = 2;
    cfg.prediction_threshold = 1000000;  // keep prediction out of the way
    cfg.report_invalidation_threshold = 50;
    return cfg;
  }
  Address addr(std::size_t off) const {
    return reinterpret_cast<Address>(buf_) + off;
  }

  alignas(64) char buf_[4096] = {};
  Runtime rt_;
  ShadowSpace* region_;
};

TEST_F(ReportBuildTest, CleanRunProducesEmptyReport) {
  for (int i = 0; i < 1000; ++i) rt_.handle_access(addr(0), W, 0);
  const Report rep = build_report(rt_);
  EXPECT_TRUE(rep.findings.empty());
  EXPECT_EQ(format_report(rep, rt_.callsites()),
            "No false sharing problems detected.\n");
}

TEST_F(ReportBuildTest, FalseSharingLineIsReportedAndAttributed) {
  ObjectInfo obj;
  obj.start = addr(0);
  obj.size = 128;
  obj.callsite = rt_.callsites().intern({"myfile.c:42"});
  rt_.objects().add(obj);

  for (int i = 0; i < 200; ++i) {
    rt_.handle_access(addr(0), W, 0);
    rt_.handle_access(addr(8), W, 1);
  }
  const Report rep = build_report(rt_);
  ASSERT_EQ(rep.findings.size(), 1u);
  const ObjectFinding& f = rep.findings[0];
  EXPECT_TRUE(f.attributed);
  EXPECT_EQ(f.object.start, addr(0));
  EXPECT_EQ(f.kind, SharingKind::kFalseSharing);
  EXPECT_TRUE(f.observed);
  EXPECT_FALSE(f.predicted);
  EXPECT_GT(f.invalidations, 100u);
  EXPECT_TRUE(f.is_false_sharing());

  const std::string text = format_finding(f, rt_.callsites());
  EXPECT_NE(text.find("FALSE SHARING HEAP OBJECT"), std::string::npos);
  EXPECT_NE(text.find("myfile.c:42"), std::string::npos);
  EXPECT_NE(text.find("by thread 0"), std::string::npos);
  EXPECT_NE(text.find("by thread 1"), std::string::npos);
}

TEST_F(ReportBuildTest, TrueSharingIsLabeledTrueSharing) {
  for (int i = 0; i < 200; ++i) {
    rt_.handle_access(addr(64), W, i % 4);  // same word, four threads
  }
  const Report rep = build_report(rt_);
  ASSERT_EQ(rep.findings.size(), 1u);
  EXPECT_EQ(rep.findings[0].kind, SharingKind::kTrueSharing);
  EXPECT_FALSE(rep.findings[0].is_false_sharing());
}

TEST_F(ReportBuildTest, GlobalObjectsReportTheirName) {
  ObjectInfo obj;
  obj.start = addr(192);
  obj.size = 64;
  obj.name = "global_counters";
  obj.is_global = true;
  rt_.objects().add(obj);
  for (int i = 0; i < 200; ++i) {
    rt_.handle_access(addr(192), W, 0);
    rt_.handle_access(addr(200), W, 1);
  }
  const Report rep = build_report(rt_);
  ASSERT_EQ(rep.findings.size(), 1u);
  EXPECT_TRUE(rep.findings[0].object.is_global);
  const std::string text = format_finding(rep.findings[0], rt_.callsites());
  EXPECT_NE(text.find("GLOBAL VARIABLE"), std::string::npos);
  EXPECT_NE(text.find("global_counters"), std::string::npos);
}

TEST_F(ReportBuildTest, FindingsAreRankedByInvalidations) {
  // Object A: mild ping-pong. Object B: severe ping-pong.
  for (int i = 0; i < 60; ++i) {
    rt_.handle_access(addr(0), W, 0);
    rt_.handle_access(addr(8), W, 1);
  }
  for (int i = 0; i < 600; ++i) {
    rt_.handle_access(addr(1024), W, 0);
    rt_.handle_access(addr(1032), W, 1);
  }
  const Report rep = build_report(rt_);
  ASSERT_EQ(rep.findings.size(), 2u);
  EXPECT_EQ(rep.findings[0].object.start, addr(1024));
  EXPECT_GT(rep.findings[0].impact(), rep.findings[1].impact());
}

TEST_F(ReportBuildTest, MultiLineObjectAggregates) {
  ObjectInfo obj;
  obj.start = addr(0);
  obj.size = 256;  // 4 lines
  obj.callsite = rt_.callsites().intern({"big.c:1"});
  rt_.objects().add(obj);
  for (int i = 0; i < 200; ++i) {
    rt_.handle_access(addr(0), W, 0);
    rt_.handle_access(addr(8), W, 1);
    rt_.handle_access(addr(128), W, 2);
    rt_.handle_access(addr(136), W, 3);
  }
  const Report rep = build_report(rt_);
  ASSERT_EQ(rep.findings.size(), 1u);
  EXPECT_EQ(rep.findings[0].lines.size(), 2u);
  EXPECT_GT(rep.findings[0].invalidations, 350u);
}

TEST_F(ReportBuildTest, PredictedFindingFromVirtualLine) {
  ObjectInfo obj;
  obj.start = addr(0);
  obj.size = 128;
  obj.callsite = rt_.callsites().intern({"latent.c:9"});
  rt_.objects().add(obj);

  auto* vl = rt_.add_virtual_line(*region_, addr(32), 64,
                                  VirtualLineTracker::Kind::kShifted, 0,
                                  addr(56), addr(64));
  ASSERT_NE(vl, nullptr);
  // Threads 0 and 1 write words on *different* physical lines inside the
  // virtual range: no physical invalidations, only virtual ones.
  for (int i = 0; i < 200; ++i) {
    rt_.handle_access(addr(56), W, 0);
    rt_.handle_access(addr(64), W, 1);
  }
  const Report rep = build_report(rt_);
  ASSERT_EQ(rep.findings.size(), 1u);
  const ObjectFinding& f = rep.findings[0];
  EXPECT_TRUE(f.predicted);
  EXPECT_FALSE(f.observed);
  EXPECT_TRUE(f.is_false_sharing());
  EXPECT_GT(f.predicted_invalidations, 100u);
  const std::string text = format_finding(f, rt_.callsites());
  EXPECT_NE(text.find("PREDICTED"), std::string::npos);
  EXPECT_NE(text.find("shifted placement"), std::string::npos);
}

}  // namespace
}  // namespace pred
