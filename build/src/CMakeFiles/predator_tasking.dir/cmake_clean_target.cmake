file(REMOVE_RECURSE
  "libpredator_tasking.a"
)
