# Empty compiler generated dependencies file for audit_spinlock_pool.
# This may be replaced when dependencies are built.
