file(REMOVE_RECURSE
  "libpredator_sim.a"
)
