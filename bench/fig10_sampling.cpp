// Figure 10 reproduction: sensitivity to the sampling rate (Section 2.4.3 /
// 4.4). For the paper's five representative benchmarks, runtime is measured
// at sampling rates 0.1%, 1% (default), and 10%, normalized to the default
// rate — and detection effectiveness is re-checked at every rate: the paper
// reports all problems remain detected even at 0.1%, just with lower
// invalidation counts.
#include <cstdio>

#include "bench_util.hpp"

using namespace pred;
using namespace pred::bench;

namespace {

const char* kSubjects[] = {"histogram", "linear_regression", "reverse_index",
                           "word_count", "streamcluster"};

/// The paper's sampling window is 10k accesses of every 1M; these
/// scaled-down runs keep the same *rates* with a 100-access window so the
/// windows actually recur within our shorter executions.
void apply_rate(SessionOptions& opts, double rate) {
  opts.runtime.sample_window = 100;
  opts.runtime.sample_interval =
      static_cast<std::uint64_t>(100.0 / rate);
}

double live_seconds(const wl::Workload& w, double rate, int reps) {
  std::vector<double> samples;
  for (int r = 0; r < reps; ++r) {
    SessionOptions opts = session_options();
    apply_rate(opts, rate);
    Session session(opts);
    Stopwatch sw;
    wl::Params p = default_params();
    p.scale = 4;
    w.run_live(session, p);
    samples.push_back(sw.elapsed_seconds());
  }
  return trimmed_mean(samples);
}

struct Detection {
  bool all_sites_found = true;
  std::uint64_t invalidations = 0;
};

Detection detect_at_rate(const wl::Workload& w, double rate) {
  SessionOptions opts = session_options();
  apply_rate(opts, rate);
  // Sparse sampling needs a long enough run to accumulate evidence — the
  // paper notes ~150s executions suffice (Section 5.2). Scale the input
  // with 1/rate so each rate sees a comparable number of sampled windows,
  // and keep a small fixed report threshold.
  opts.runtime.report_invalidation_threshold = 5;
  Session session(opts);
  wl::Params p = default_params();
  p.scale = rate < 0.01 ? 40 : 4;
  w.run_replay(session, p);
  Detection d;
  const Report rep = session.report();
  for (const auto& f : rep.findings) d.invalidations += f.impact();
  for (const auto& site : w.traits().sites) {
    d.all_sites_found &= wl::report_mentions_site(
        rep, session.runtime().callsites(), site.where);
  }
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  const int reps = argc > 1 ? std::atoi(argv[1]) : 3;
  const double rates[] = {0.001, 0.01, 0.1};

  std::printf("Figure 10: sampling rate sensitivity "
              "(runtime normalized to the default 1%% rate)\n\n");
  std::printf("%-20s %10s %10s %10s\n", "workload", "0.1%", "1%", "10%");
  print_rule('-', 56);

  std::vector<double> norm_low, norm_high;
  for (const char* name : kSubjects) {
    const wl::Workload* w = wl::find_workload(name);
    if (w == nullptr) continue;
    double secs[3];
    for (int i = 0; i < 3; ++i) secs[i] = live_seconds(*w, rates[i], reps);
    std::printf("%-20s %9.2fx %9.2fx %9.2fx\n", name, secs[0] / secs[1], 1.0,
                secs[2] / secs[1]);
    norm_low.push_back(secs[0] / secs[1]);
    norm_high.push_back(secs[2] / secs[1]);
  }
  print_rule('-', 56);
  std::printf("%-20s %9.2fx %9.2fx %9.2fx\n\n", "GEOMEAN", geomean(norm_low),
              1.0, geomean(norm_high));

  std::printf("Detection effectiveness per rate (sites found / "
              "invalidations recorded):\n");
  for (const char* name : kSubjects) {
    const wl::Workload* w = wl::find_workload(name);
    if (w == nullptr || w->traits().sites.empty()) continue;
    std::printf("  %-20s", name);
    for (const double rate : rates) {
      const Detection d = detect_at_rate(*w, rate);
      std::printf("  %4.1f%%: %s (%llu inv)", rate * 100,
                  d.all_sites_found ? "found" : "MISSED",
                  static_cast<unsigned long long>(d.invalidations));
    }
    std::printf("\n");
  }
  std::printf("\nExpected: every site found at every rate; invalidation "
              "counts shrink with the rate (paper Section 4.4).\n");
  return 0;
}
