// Ablation: the threshold-based tracking design (Section 2.4.1).
//
// TrackingThreshold gates expensive per-line detail tracking on write
// counts. This bench sweeps the threshold on a workload mix and reports how
// many lines escalate to detailed tracking, the metadata footprint, and
// whether the known problems are still detected — showing the
// cost/effectiveness trade the paper's design point buys.
#include <cstdio>

#include "bench_util.hpp"

using namespace pred;
using namespace pred::bench;

namespace {

struct Row {
  std::uint64_t threshold;
  std::size_t tracked_lines = 0;
  std::size_t tracker_kb = 0;
  bool histogram_found = false;
  bool lreg_predicted = false;
};

Row sweep(std::uint64_t threshold) {
  Row row;
  row.threshold = threshold;

  for (const char* name : {"histogram", "linear_regression", "string_match",
                           "matrix_multiply"}) {
    const wl::Workload* w = wl::find_workload(name);
    SessionOptions opts = session_options();
    opts.runtime.tracking_threshold = threshold;
    opts.runtime.prediction_threshold =
        std::max<std::uint64_t>(threshold * 2, 128);
    Session session(opts);
    w->run_replay(session, default_params());

    std::size_t lines = 0;
    session.runtime().for_each_region([&](const ShadowSpace& region) {
      lines += region.tracker_count();
    });
    row.tracked_lines += lines;
    row.tracker_kb += lines * sizeof(CacheTracker) / 1024;

    if (w->traits().name == "histogram") {
      row.histogram_found = wl::report_mentions_site(
          session.report(), session.runtime().callsites(),
          w->traits().sites[0].where);
    }
    if (w->traits().name == "linear_regression") {
      bool only_predicted = false;
      row.lreg_predicted =
          wl::report_mentions_site(session.report(),
                                   session.runtime().callsites(),
                                   w->traits().sites[0].where,
                                   &only_predicted) &&
          only_predicted;
    }
  }
  return row;
}

}  // namespace

int main() {
  std::printf("Ablation: TrackingThreshold sweep (Section 2.4.1)\n");
  std::printf("(4 workloads: histogram, linear_regression, string_match, "
              "matrix_multiply)\n\n");
  std::printf("%12s %14s %12s %12s %12s\n", "threshold", "tracked lines",
              "tracker KB", "histogram", "lreg latent");
  print_rule('-', 68);
  for (const std::uint64_t threshold : {1ull, 2ull, 8ull, 64ull, 1024ull,
                                        65536ull}) {
    const Row row = sweep(threshold);
    std::printf("%12llu %14zu %12zu %12s %12s\n",
                static_cast<unsigned long long>(row.threshold),
                row.tracked_lines, row.tracker_kb,
                row.histogram_found ? "found" : "missed",
                row.lreg_predicted ? "predicted" : "missed");
  }
  print_rule('-', 68);
  std::printf("\nExpected: low thresholds track far more lines (cost) with "
              "identical verdicts;\nextreme thresholds eventually lose the "
              "problems (missed detection).\n");
  return 0;
}
