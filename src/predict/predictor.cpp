#include "predict/predictor.hpp"

#include <algorithm>

namespace pred {

void Predictor::attach(Runtime& rt) {
  rt.set_prediction_hook(
      [this](Runtime& r, ShadowSpace& region, std::size_t line_index) {
        analyze_line(r, region, line_index);
      });
}

void Predictor::analyze_line(Runtime& rt, ShadowSpace& region,
                             std::size_t line_index) {
  const LineGeometry& geo = region.geometry();
  CacheTracker* tl = region.tracker(line_index);
  if (!tl) return;

  const auto words_l = tl->words_snapshot();
  const std::uint64_t avg =
      average_word_accesses(words_l, geo.words_per_line());
  if (avg == 0) return;

  const auto hot_l =
      hot_words(words_l, region.line_start(line_index), geo, avg);
  if (hot_l.empty()) return;

  const std::size_t neighbors[2] = {line_index - 1, line_index + 1};
  for (std::size_t adj : neighbors) {
    if (line_index == 0 && adj == line_index - 1) continue;
    if (adj >= region.num_lines()) continue;
    CacheTracker* ta = region.tracker(adj);
    if (!ta) continue;
    // Hotness of the adjacent line's words is judged against *L's* average,
    // per Section 3.3.
    const auto hot_a =
        hot_words(ta->words_snapshot(), region.line_start(adj), geo, avg);
    if (hot_a.empty()) continue;

    for (const HotPair& pair : find_hot_pairs(hot_l, hot_a)) {
      // Acceptance: projected invalidations must beat the per-word average
      // access count of L (Section 3.3).
      if (pair.estimated_invalidations <= avg) continue;

      const std::size_t line_x = pair.x.address / geo.line_size;
      const std::size_t line_y = pair.y.address / geo.line_size;
      const std::size_t lo_line = std::min(line_x, line_y);

      if (config_.predict_double_line && lo_line % 2 == 0 &&
          line_x != line_y) {
        // Doubled hardware lines pair even/odd indices: only lines 2i and
        // 2i+1 can form a double-size virtual line.
        const Address start = lo_line * geo.line_size;
        nominate(rt, region, line_index, start, 2 * geo.line_size,
                 VirtualLineTracker::Kind::kDoubleLine, pair);
      }

      if (config_.predict_shifted) {
        const Address d = pair.y.address - pair.x.address;
        if (d < geo.line_size) {
          // Figure 4: leave equal slack before X and after Y, i.e. the
          // virtual line [X - (sz-d)/2, Y + (sz-d)/2).
          const Address slack = (geo.line_size - d) / 2;
          Address start =
              pair.x.address >= slack ? pair.x.address - slack : 0;
          start -= start % geo.word_size;  // word-align the placement
          start = std::max(start, region.base());
          nominate(rt, region, line_index, start, geo.line_size,
                   VirtualLineTracker::Kind::kShifted, pair);
          if (config_.adjust_whole_object) {
            adjust_object_lines(rt, region, line_index, start, pair);
          }
        }
      }
    }
  }
}

void Predictor::adjust_object_lines(Runtime& rt, ShadowSpace& region,
                                    std::size_t origin_line,
                                    Address shift_start, const HotPair& pair) {
  const LineGeometry& geo = region.geometry();
  const auto object = rt.objects().find(pair.x.address);
  if (!object) return;

  // The shift the chosen virtual line applies to the line grid.
  const Address delta = shift_start % geo.line_size;
  if (delta == 0) return;

  const std::size_t first = region.line_index(object->start);
  const std::size_t last = region.line_index(
      object->start + (object->size ? object->size : 1) - 1);
  std::size_t created = 0;
  for (std::size_t i = first;
       i <= last && i < region.num_lines() &&
       created < config_.max_object_lines;
       ++i) {
    if (region.tracker(i) == nullptr) continue;  // cold line: nothing to see
    const Address start = region.line_start(i) + delta;
    if (start == shift_start) continue;  // the pair's own line
    // One virtual line per (object line, delta); dedup handles re-entry.
    const std::uint64_t key =
        static_cast<std::uint64_t>(start) * 1000003ull + geo.line_size;
    {
      std::lock_guard<Spinlock> g(lock_);
      if (!nominated_.insert(key).second) continue;
    }
    rt.add_virtual_line(region, start, geo.line_size,
                        VirtualLineTracker::Kind::kShifted, origin_line,
                        pair.x.address, pair.y.address);
    candidates_.fetch_add(1, std::memory_order_relaxed);
    ++created;
  }
}

void Predictor::nominate(Runtime& rt, ShadowSpace& region,
                         std::size_t origin_line, Address start,
                         std::size_t size, VirtualLineTracker::Kind kind,
                         const HotPair& pair) {
  const std::uint64_t key =
      static_cast<std::uint64_t>(start) * 1000003ull + size;
  {
    std::lock_guard<Spinlock> g(lock_);
    if (!nominated_.insert(key).second) return;  // already tracking
  }
  rt.add_virtual_line(region, start, size, kind, origin_line, pair.x.address,
                      pair.y.address);
  candidates_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace pred
