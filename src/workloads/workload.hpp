// Workload framework.
//
// Every benchmark/application kernel from the paper's evaluation (Phoenix,
// PARSEC, and the six real applications) is reimplemented as a *kernel
// template* generic over an access sink, so one implementation serves four
// execution modes:
//
//   * native      — real threads, no-op sink: the "Original" bars of Fig. 7;
//   * live        — real threads, every access forwarded to a Session: the
//                   instrumented bars of Fig. 7 and the memory of Figs. 8/9;
//   * replay      — per-logical-thread traces captured sequentially, then
//                   replayed through the Session's runtime in a
//                   deterministic round-robin interleaving. This realizes
//                   the paper's conservative assumption that the schedule
//                   exposes sharing (Section 3.3) and makes detection
//                   results reproducible — essential on hosts whose real
//                   scheduler interleaves coarsely;
//   * record      — the same traces fed to the cache simulator for modeled
//                   timing (Figure 2, Table 1's Improvement column).
//
// Kernels allocate all shared data in a setup phase on the calling thread
// (as the original programs do in main()) and only access memory inside the
// parallel body.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "api/predator.hpp"
#include "sim/executor.hpp"

namespace pred::wl {

// ---------------------------------------------------------------------------
// Parameters & results
// ---------------------------------------------------------------------------

struct Params {
  std::uint32_t threads = 8;
  /// Work multiplier; 1 is the bench default, tests use less.
  std::uint64_t scale = 1;
  /// Bitmask of sites to fix (bit i fixes Traits::sites[i]); ~0u fixes all.
  std::uint32_t fix_mask = 0;
  /// Placement offset in bytes for offset-sensitive workloads (Figure 2).
  std::size_t offset = 0;
  std::uint64_t seed = 1;

  bool site_fixed(std::size_t i) const { return (fix_mask >> i) & 1u; }
};

struct Result {
  std::uint64_t checksum = 0;  ///< kernel-defined; validates fixed variants
};

// ---------------------------------------------------------------------------
// Sinks (compile-time polymorphism keeps the native path free of calls)
// ---------------------------------------------------------------------------

struct NullSink {
  void read(const void*, std::size_t = 8) {}
  void write(const void*, std::size_t = 8) {}
  void think(std::uint32_t) {}
};

/// Forwards to a session from a live thread.
struct SessionSink {
  Session* session;
  ThreadId tid;
  void read(const void* p, std::size_t n = 8) {
    session->record(p, AccessType::kRead, tid, n);
  }
  void write(const void* p, std::size_t n = 8) {
    session->record(p, AccessType::kWrite, tid, n);
  }
  void think(std::uint32_t) {}
};

/// Records into a per-thread trace (addresses + type + width + preceding
/// compute). think() annotates modeled cycles of uninstrumented work before
/// the next access — consumed only by the cache simulator's timing model
/// and calibrated per kernel against the original programs' compute/access
/// ratios.
struct TraceSink {
  ThreadTrace* trace;
  std::uint32_t pending_think = 0;
  void read(const void* p, std::size_t n = 8) {
    trace->push_back({reinterpret_cast<Address>(p), take_think(),
                      AccessType::kRead, static_cast<std::uint8_t>(n)});
  }
  void write(const void* p, std::size_t n = 8) {
    trace->push_back({reinterpret_cast<Address>(p), take_think(),
                      AccessType::kWrite, static_cast<std::uint8_t>(n)});
  }
  void think(std::uint32_t cycles) { pending_think += cycles; }

 private:
  std::uint32_t take_think() {
    const std::uint32_t t = pending_think;
    pending_think = 0;
    return t;
  }
};

// ---------------------------------------------------------------------------
// Harnesses
// ---------------------------------------------------------------------------

namespace detail {
template <typename F>
void run_threads(std::uint32_t n, F&& f) {
  std::vector<std::thread> ts;
  ts.reserve(n);
  for (std::uint32_t t = 0; t < n; ++t) ts.emplace_back([&f, t] { f(t); });
  for (auto& th : ts) th.join();
}
}  // namespace detail

/// Uninstrumented execution with plain (line-aligned) allocation.
class NativeHarness {
 public:
  void* alloc(std::size_t bytes,
              std::initializer_list<std::string_view> /*frames*/) {
    void* p = ::operator new(bytes, std::align_val_t{64});
    owned_.push_back(p);
    return p;
  }
  void register_global(void*, std::size_t, std::string) {}
  template <typename Body>
  void parallel(std::uint32_t n, Body&& body) {
    detail::run_threads(n, [&](std::uint32_t t) {
      NullSink sink;
      body(t, sink);
    });
  }
  ~NativeHarness() {
    for (void* p : owned_) ::operator delete(p, std::align_val_t{64});
  }

 private:
  std::vector<void*> owned_;
};

/// Real threads, instrumented: measures instrumentation cost (Figure 7).
class LiveHarness {
 public:
  explicit LiveHarness(Session& session) : session_(session) {}
  void* alloc(std::size_t bytes,
              std::initializer_list<std::string_view> frames) {
    return session_.alloc(bytes, session_.intern_frames(frames));
  }
  void register_global(void* p, std::size_t size, std::string name) {
    session_.register_global(p, size, std::move(name));
  }
  template <typename Body>
  void parallel(std::uint32_t n, Body&& body) {
    detail::run_threads(n, [&](std::uint32_t t) {
      ScopedThread guard(session_);
      SessionSink sink{&session_, ThreadContext::tid()};
      body(t, sink);
    });
  }

 private:
  Session& session_;
};

/// Sequential trace capture over session-allocated memory; the caller then
/// replays the traces into the runtime and/or the cache simulator.
class ReplayHarness {
 public:
  explicit ReplayHarness(Session& session) : session_(session) {}
  void* alloc(std::size_t bytes,
              std::initializer_list<std::string_view> frames) {
    return session_.alloc(bytes, session_.intern_frames(frames));
  }
  void register_global(void* p, std::size_t size, std::string name) {
    session_.register_global(p, size, std::move(name));
  }
  template <typename Body>
  void parallel(std::uint32_t n, Body&& body) {
    for (std::uint32_t t = 0; t < n; ++t) {
      ThreadTrace trace;
      TraceSink sink{&trace};
      body(t, sink);
      traces_.push_back(std::move(trace));
    }
  }
  std::vector<ThreadTrace> take_traces() { return std::move(traces_); }
  const std::vector<ThreadTrace>& traces() const { return traces_; }

 private:
  Session& session_;
  std::vector<ThreadTrace> traces_;
};

/// Round-robin replay of captured traces into a session's runtime. Logical
/// thread t replays as ThreadId t. `quantum` is the number of consecutive
/// accesses a thread retires per turn — 1 is the paper's fully interleaved
/// conservative schedule.
void replay_into_session(Session& session,
                         const std::vector<ThreadTrace>& traces,
                         std::size_t quantum = 1);

// ---------------------------------------------------------------------------
// Workload interface & registry
// ---------------------------------------------------------------------------

/// One expected Table 1 row (false sharing site) of a workload.
struct Site {
  std::string where;             ///< e.g. "linear_regression-pthread.c:133"
  bool needs_prediction = false; ///< found only with prediction (Table 1)
  bool newly_discovered = false; ///< "New" column
  double paper_improvement_pct = 0.0;  ///< Table 1 "Improvement"
};

struct Traits {
  std::string name;
  std::string suite;  ///< "phoenix" | "parsec" | "real" | "numa"
  std::vector<Site> sites;  ///< empty: no false sharing expected
};

class Workload {
 public:
  virtual ~Workload() = default;
  virtual const Traits& traits() const = 0;

  /// Uninstrumented run with real threads.
  virtual Result run_native(const Params& p) const = 0;
  /// Instrumented run with real threads (overhead measurement).
  virtual Result run_live(Session& s, const Params& p) const = 0;
  /// Sequential capture of per-thread traces over session memory.
  virtual std::vector<ThreadTrace> capture(Session& s,
                                           const Params& p) const = 0;

  /// Capture + deterministic replay into the session: the detection mode.
  Result run_replay(Session& s, const Params& p,
                    std::size_t quantum = 1) const {
    auto traces = capture(s, p);
    replay_into_session(s, traces, quantum);
    Result r;
    for (const auto& t : traces) r.checksum += t.size();
    return r;
  }
};

/// CRTP boilerplate eliminator: a workload derives from WorkloadImpl<Self>
/// and provides `template <class H> static Result kernel(H&, const Params&)`
/// plus traits().
template <typename Derived>
class WorkloadImpl : public Workload {
 public:
  Result run_native(const Params& p) const override {
    NativeHarness h;
    return Derived::kernel(h, p);
  }
  Result run_live(Session& s, const Params& p) const override {
    LiveHarness h(s);
    return Derived::kernel(h, p);
  }
  std::vector<ThreadTrace> capture(Session& s,
                                   const Params& p) const override {
    ReplayHarness h(s);
    Derived::kernel(h, p);
    return h.take_traces();
  }
};

/// All workloads in paper order (Phoenix, PARSEC, real applications).
const std::vector<std::unique_ptr<Workload>>& all_workloads();
const Workload* find_workload(std::string_view name);

// ---------------------------------------------------------------------------
// Report matching helpers (shared by benches and integration tests)
// ---------------------------------------------------------------------------

/// True when the report contains a false-sharing finding whose callsite (or
/// global name) mentions `site`. `only_predicted`, when non-null, receives
/// whether every matching finding is prediction-only (no observed hot
/// physical line).
bool report_mentions_site(const Report& report, const CallsiteTable& callsites,
                          const std::string& site,
                          bool* only_predicted = nullptr);

/// Count of false-sharing findings in the report (observed or predicted).
std::size_t false_sharing_findings(const Report& report);

}  // namespace pred::wl
