// Static-prediction microbench: what whole-module false-sharing prediction
// costs and whether it keeps its accuracy at speed.
//
// Phase A — throughput: predict_static_fs over a pool of generated
//   call-heavy modules with planted packed-slot regions (~1k instructions
//   each), reporting modules/sec and IR instructions/sec — the cost of
//   running the predictor over a whole build's modules in CI.
//
// Phase B — the static plan pipeline: predict + the static compile_plan
//   lowering per module (the `repair --static` phase-1 path), plus the
//   sweep's planted-line recall: every 64B line shared by two planted slots
//   must be predicted. Recall is deterministic — 1.0 or the bench flags it.
//
// Usage: microbench_predict [iters] [--json FILE]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "instrument/analysis/generator.hpp"
#include "instrument/analysis/predict.hpp"
#include "repair/planner.hpp"

namespace {

namespace ir = pred::ir;
namespace repair = pred::repair;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::uint64_t count_instrs(const ir::Module& m) {
  std::uint64_t n = 0;
  for (const ir::Function& fn : m.functions) {
    for (const ir::BasicBlock& bb : fn.blocks) n += bb.instrs.size();
  }
  return n;
}

struct Workload {
  ir::Module module;
  std::vector<ir::RoleSpec> roles;
  std::uint32_t slots = 0;
  std::uint32_t stride = 0;
  std::uint32_t base_words = 0;
};

std::vector<Workload> make_pool() {
  std::vector<Workload> pool;
  ir::GeneratorOptions gopts;
  gopts.segments = 3;
  gopts.accesses_per_block = 2;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    Workload w;
    w.slots = 2 + static_cast<std::uint32_t>(seed % 4);
    w.stride = 8u * (1u + static_cast<std::uint32_t>(seed % 2));
    w.base_words = 16 + 8 * static_cast<std::uint32_t>(seed % 3);
    gopts.callees = 1 + static_cast<std::uint32_t>(seed % 3);
    gopts.planted_slots = w.slots;
    gopts.planted_stride = w.stride;
    gopts.planted_base_words = w.base_words;
    gopts.planted_iters = 8;
    w.module = ir::generate_module(seed * 0x9e3779b9ull, gopts);
    for (std::uint32_t t = 0; t < w.slots; ++t) {
      ir::RoleSpec spec;
      spec.function = "slot" + std::to_string(t);
      spec.role = t;
      w.roles.push_back(spec);
    }
    pool.push_back(std::move(w));
  }
  return pool;
}

/// 64B lines of the planted region written by >= 2 slots: the lines the
/// predictor must convict.
std::set<std::int64_t> planted_shared_lines(const Workload& w) {
  std::set<std::int64_t> expected;
  for (std::int64_t line = 8 * w.base_words / 64;
       line <= (8 * w.base_words + std::int64_t{w.slots} * w.stride - 1) / 64;
       ++line) {
    std::uint32_t slots_on_line = 0;
    for (std::uint32_t t = 0; t < w.slots; ++t) {
      const std::int64_t lo = 8 * w.base_words + std::int64_t{t} * w.stride;
      const std::int64_t hi = lo + w.stride;
      if (lo < 64 * (line + 1) && hi > 64 * line) ++slots_on_line;
    }
    if (slots_on_line >= 2) expected.insert(line);
  }
  return expected;
}

}  // namespace

int main(int argc, char** argv) {
  int iters = 40;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      iters = std::atoi(argv[i]);
      if (iters <= 0) {
        std::fprintf(stderr, "usage: %s [iters > 0] [--json FILE]\n",
                     argv[0]);
        return 1;
      }
    }
  }

  const std::vector<Workload> pool = make_pool();
  std::uint64_t total_instrs = 0;
  for (const Workload& w : pool) total_instrs += count_instrs(w.module);

  // Phase A — raw prediction throughput.
  std::uint64_t sink = 0;
  const auto t_predict = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    for (const Workload& w : pool) {
      sink += ir::predict_static_fs(w.module, w.roles).lines.size();
    }
  }
  const double predict_s = seconds_since(t_predict);
  const double modules = static_cast<double>(pool.size()) * iters;
  const double modules_per_sec = modules / predict_s;
  const double instrs_per_sec =
      static_cast<double>(total_instrs) * iters / predict_s;

  // Phase B — the full static plan pipeline, plus planted-line recall.
  std::uint64_t expected_lines = 0;
  std::uint64_t recalled_lines = 0;
  std::uint64_t plan_entries = 0;
  const auto t_plan = std::chrono::steady_clock::now();
  for (const Workload& w : pool) {
    const ir::StaticFsReport rep = ir::predict_static_fs(w.module, w.roles);
    const repair::RepairPlan plan =
        repair::compile_plan(rep, {{"planted_region", /*is_global=*/true}});
    plan_entries += plan.entries.size();
    std::set<std::int64_t> predicted;
    for (const ir::PredictedLine& l : rep.lines) {
      if (l.line_size == 64 && !l.latent) predicted.insert(l.line_index);
    }
    for (const std::int64_t line : planted_shared_lines(w)) {
      ++expected_lines;
      if (predicted.count(line)) ++recalled_lines;
    }
  }
  const double plan_s = seconds_since(t_plan);
  const double plans_per_sec = static_cast<double>(pool.size()) / plan_s;
  const double recall =
      expected_lines == 0
          ? 1.0
          : static_cast<double>(recalled_lines) /
                static_cast<double>(expected_lines);

  std::printf("modules: %zu (%llu instrs), iters %d (sink %llu)\n",
              pool.size(), static_cast<unsigned long long>(total_instrs),
              iters, static_cast<unsigned long long>(sink));
  std::printf("predict:      %10.0f modules/s, %10.0f instrs/s\n",
              modules_per_sec, instrs_per_sec);
  std::printf("static plan:  %10.0f plans/s (%llu entries)\n", plans_per_sec,
              static_cast<unsigned long long>(plan_entries));
  std::printf("recall:       %llu/%llu planted shared lines (%.2f)\n",
              static_cast<unsigned long long>(recalled_lines),
              static_cast<unsigned long long>(expected_lines), recall);

  if (!json_path.empty()) {
    pred::bench::JsonWriter json;
    json.add("predict_modules_per_sec", modules_per_sec);
    json.add("predict_instrs_per_sec", instrs_per_sec);
    json.add("static_plan_per_sec", plans_per_sec);
    json.add("predict_recall", recall);
    if (!json.write_file(json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return recall >= 1.0 ? 0 : 2;
}
