file(REMOVE_RECURSE
  "CMakeFiles/test_tasking.dir/test_tasking.cpp.o"
  "CMakeFiles/test_tasking.dir/test_tasking.cpp.o.d"
  "test_tasking"
  "test_tasking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tasking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
