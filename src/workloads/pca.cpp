// Phoenix pca: no false sharing (not in Table 1). Threads compute column
// means over disjoint row blocks of a shared read-only matrix and write
// their partial results into line-aligned private buffers.
#include "common/check.hpp"
#include "common/prng.hpp"
#include "workloads/workload.hpp"

namespace pred::wl {
namespace {

class Pca final : public WorkloadImpl<Pca> {
 public:
  const Traits& traits() const override {
    static const Traits t{.name = "pca", .suite = "phoenix", .sites = {}};
    return t;
  }

  template <class H>
  static Result kernel(H& h, const Params& p) {
    const std::uint32_t n = p.threads;
    const std::size_t cols = 32;
    const std::size_t rows_per_thread = 400 * p.scale;
    const std::size_t rows = rows_per_thread * n;

    auto* matrix = static_cast<std::int64_t*>(
        h.alloc(rows * cols * 8, {"pca-pthread.c:matrix"}));
    PRED_CHECK(matrix != nullptr);
    Xorshift64 rng(p.seed);
    for (std::size_t i = 0; i < rows * cols; ++i) {
      matrix[i] = static_cast<std::int64_t>(rng.next_below(256));
    }

    std::vector<std::int64_t*> partial_means(n);
    for (std::uint32_t t = 0; t < n; ++t) {
      // cols words plus a guard line: in the real program each thread
      // allocates this from its own heap, so blocks of different threads
      // are never on adjacent lines. The +64 reproduces that separation.
      partial_means[t] = static_cast<std::int64_t*>(
          h.alloc(cols * 8 + 64, {"pca-pthread.c:means"}));
      PRED_CHECK(partial_means[t] != nullptr);
      for (std::size_t c = 0; c < cols; ++c) partial_means[t][c] = 0;
    }

    h.parallel(n, [&](std::uint32_t t, auto& sink) {
      const std::size_t begin = t * rows_per_thread;
      for (std::size_t i = begin; i < begin + rows_per_thread; ++i) {
        for (std::size_t c = 0; c < cols; ++c) {
          sink.read(&matrix[i * cols + c], 8);
          sink.read(&partial_means[t][c], 8);
          partial_means[t][c] += matrix[i * cols + c];
          sink.write(&partial_means[t][c], 8);
        }
      }
    });

    Result r;
    for (std::uint32_t t = 0; t < n; ++t) {
      for (std::size_t c = 0; c < cols; ++c) {
        r.checksum += static_cast<std::uint64_t>(partial_means[t][c]);
      }
    }
    return r;
  }
};

}  // namespace

std::unique_ptr<Workload> make_pca() { return std::make_unique<Pca>(); }

}  // namespace pred::wl
