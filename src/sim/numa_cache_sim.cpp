#include "sim/numa_cache_sim.hpp"

#include <algorithm>
#include <bit>

namespace pred {

void NumaCacheSim::dir_update(DirState& dir, std::uint32_t socket_copies,
                              std::int32_t owner_socket) {
  if (dir.socket_copies != socket_copies ||
      dir.owner_socket != owner_socket) {
    ++stats_.directory_transitions;
  }
  dir.socket_copies = socket_copies;
  dir.owner_socket = owner_socket;
}

std::uint64_t NumaCacheSim::kill_llc_siblings(std::size_t written_line,
                                              std::size_t llc_index,
                                              std::uint32_t socket) {
  const std::size_t ratio = config_.llc_line_size / config_.line_size;
  if (ratio == 1) return 0;
  std::uint64_t cost = 0;
  const std::size_t first = llc_index * ratio;
  for (std::size_t line = first; line < first + ratio; ++line) {
    if (line == written_line) continue;
    const auto it = lines_.find(line);
    if (it == lines_.end()) continue;
    LineState& sib = it->second;
    // Remote sockets drop the whole LLC line, so their cores lose every
    // private line inside it; the writer's own socket keeps its copies.
    std::uint64_t killed = 0;
    for (std::uint32_t c = 0; c < num_cores(); ++c) {
      if (config_.socket_of(c) == socket) continue;
      if (sib.sharers.test(c)) {
        sib.sharers.words[c / 64] &= ~(1ull << (c % 64));
        ++killed;
      }
      if (sib.owner == static_cast<std::int32_t>(c)) {
        sib.owner = -1;  // forced writeback + invalidate
        ++killed;
      }
    }
    if (killed != 0) {
      sib.invalidations += killed;
      sib.remote_invalidations += killed;
      stats_.invalidations_sent += killed;
      stats_.remote_invalidations_sent += killed;
      stats_.llc_sibling_invalidations += killed;
      cost += killed * scaled(config_.invalidation_cost, true);
    }
  }
  return cost;
}

std::uint64_t NumaCacheSim::on_access(std::uint32_t core, Address addr,
                                      AccessType type) {
  PRED_CHECK(core < num_cores());
  const std::size_t line = addr / config_.line_size;
  const std::size_t llc = addr / config_.llc_line_size;
  const std::uint32_t socket = config_.socket_of(core);
  const std::uint32_t my_socket_bit = 1u << socket;
  LineState& st = lines_[line];
  DirState& dir = dirs_[llc];

  ++stats_.accesses;
  std::uint64_t cost = 0;

  if (type == AccessType::kRead) {
    if (st.owner == static_cast<std::int32_t>(core) || st.sharers.test(core)) {
      ++stats_.hits;
      cost = config_.hit_cost;
    } else if (st.owner >= 0) {
      // Dirty in another core's cache: ownership downgrade + transfer,
      // crossing the interconnect when the owner sits on another socket.
      const std::uint32_t owner_socket =
          config_.socket_of(static_cast<std::uint32_t>(st.owner));
      const bool remote = owner_socket != socket;
      ++stats_.coherence_misses;
      if (remote) ++stats_.remote_coherence_misses;
      cost = scaled(config_.coherence_miss_cost, remote);
      st.sharers.set(static_cast<std::uint32_t>(st.owner));
      st.sharers.set(core);
      st.owner = -1;
      dir_update(dir,
                 dir.socket_copies | (1u << owner_socket) | my_socket_bit, -1);
    } else if (!st.touched) {
      const bool remote = home_socket(llc) != socket;
      ++stats_.cold_misses;
      if (remote) ++stats_.remote_cold_misses;
      cost = scaled(config_.cold_miss_cost, remote);
      st.sharers.set(core);
      dir_update(dir, dir.socket_copies | my_socket_bit, dir.owner_socket);
    } else {
      // Clean copy somewhere: the local LLC if this socket holds the line,
      // otherwise a remote socket's LLC (or the home node).
      const bool local_llc = (dir.socket_copies & my_socket_bit) != 0;
      const bool remote = !local_llc;
      ++stats_.shared_fetches;
      if (remote) ++stats_.remote_shared_fetches;
      cost = scaled(config_.shared_fetch_cost, remote);
      st.sharers.set(core);
      dir_update(dir, dir.socket_copies | my_socket_bit, dir.owner_socket);
    }
  } else {  // write
    if (st.owner == static_cast<std::int32_t>(core)) {
      ++stats_.hits;
      cost = config_.hit_cost;
    } else {
      const bool remote_dirty = st.owner >= 0;
      const bool had_own_copy = st.sharers.test(core);
      // Kill every other core's copy, pricing each delivery by whether it
      // crosses the interconnect.
      std::uint64_t killed = 0;
      std::uint64_t remote_killed = 0;
      std::uint64_t invalidation_cycles = 0;
      for (std::uint32_t c = 0; c < num_cores(); ++c) {
        if (c == core) continue;
        const bool holds =
            st.sharers.test(c) || st.owner == static_cast<std::int32_t>(c);
        if (!holds) continue;
        const bool victim_remote = config_.socket_of(c) != socket;
        ++killed;
        if (victim_remote) ++remote_killed;
        invalidation_cycles += scaled(config_.invalidation_cost,
                                      victim_remote);
      }
      stats_.invalidations_sent += killed;
      stats_.remote_invalidations_sent += remote_killed;
      st.invalidations += killed;
      st.remote_invalidations += remote_killed;

      if (remote_dirty) {
        const std::uint32_t owner_socket =
            config_.socket_of(static_cast<std::uint32_t>(st.owner));
        const bool remote = owner_socket != socket;
        ++stats_.coherence_misses;
        if (remote) ++stats_.remote_coherence_misses;
        cost = scaled(config_.coherence_miss_cost, remote);
      } else if (!st.touched) {
        const bool remote = home_socket(llc) != socket;
        ++stats_.cold_misses;
        if (remote) ++stats_.remote_cold_misses;
        cost = scaled(config_.cold_miss_cost, remote);
      } else if (killed > 0) {
        // Upgrade: line present somewhere clean; pay invalidation traffic,
        // through the interconnect when any other socket held a copy.
        const bool remote = (dir.socket_copies & ~my_socket_bit) != 0;
        ++stats_.shared_fetches;
        if (remote) ++stats_.remote_shared_fetches;
        cost = scaled(config_.shared_fetch_cost, remote);
      } else if (had_own_copy) {
        ++stats_.hits;  // exclusive upgrade of our own clean copy
        cost = config_.hit_cost;
      } else {
        const bool remote = home_socket(llc) != socket;
        ++stats_.cold_misses;
        if (remote) ++stats_.remote_cold_misses;
        cost = scaled(config_.cold_miss_cost, remote);
      }
      cost += invalidation_cycles;

      // Remote sockets drop the LLC line the directory tracks; at coarse
      // LLC grain that also kills their copies of sibling private lines.
      stats_.directory_invalidations +=
          std::popcount(dir.socket_copies & ~my_socket_bit);
      cost += kill_llc_siblings(line, llc, socket);

      st.sharers.clear();
      st.owner = static_cast<std::int32_t>(core);
      dir_update(dir, my_socket_bit, static_cast<std::int32_t>(socket));
    }
  }

  st.touched = true;
  core_cycles_[core] += cost;
  stats_.total_cycles += cost;
  return cost;
}

std::uint64_t NumaCacheSim::line_invalidations(Address addr) const {
  const auto it = lines_.find(addr / config_.line_size);
  return it == lines_.end() ? 0 : it->second.invalidations;
}

std::uint64_t NumaCacheSim::line_remote_invalidations(Address addr) const {
  const auto it = lines_.find(addr / config_.line_size);
  return it == lines_.end() ? 0 : it->second.remote_invalidations;
}

std::uint64_t NumaCacheSim::invalidations_in(Address start,
                                             std::size_t size) const {
  if (size == 0) return 0;
  const std::size_t first = start / config_.line_size;
  const std::size_t last = (start + size - 1) / config_.line_size;
  std::uint64_t total = 0;
  for (std::size_t line = first; line <= last; ++line) {
    const auto it = lines_.find(line);
    if (it != lines_.end()) total += it->second.invalidations;
  }
  return total;
}

std::uint64_t NumaCacheSim::remote_invalidations_in(Address start,
                                                    std::size_t size) const {
  if (size == 0) return 0;
  const std::size_t first = start / config_.line_size;
  const std::size_t last = (start + size - 1) / config_.line_size;
  std::uint64_t total = 0;
  for (std::size_t line = first; line <= last; ++line) {
    const auto it = lines_.find(line);
    if (it != lines_.end()) total += it->second.remote_invalidations;
  }
  return total;
}

std::vector<NumaCacheSim::HotLine> NumaCacheSim::hottest_lines(
    std::size_t top_k) const {
  std::vector<HotLine> all;
  all.reserve(lines_.size());
  for (const auto& [line, st] : lines_) {
    if (st.invalidations == 0) continue;
    all.push_back({static_cast<Address>(line * config_.line_size),
                   st.invalidations, st.remote_invalidations});
  }
  std::sort(all.begin(), all.end(), [](const HotLine& a, const HotLine& b) {
    if (a.invalidations != b.invalidations) {
      return a.invalidations > b.invalidations;
    }
    return a.line_start < b.line_start;
  });
  if (all.size() > top_k) all.resize(top_k);
  return all;
}

std::optional<NumaCacheSim::LineProbe> NumaCacheSim::probe_line(
    Address addr) const {
  const auto it = lines_.find(addr / config_.line_size);
  if (it == lines_.end()) return std::nullopt;
  const LineState& st = it->second;
  LineProbe probe;
  for (std::uint32_t c = 0; c < num_cores(); ++c) {
    if (st.sharers.test(c)) probe.sharer_cores.push_back(c);
  }
  probe.owner_core = st.owner;
  probe.touched = st.touched;
  probe.invalidations = st.invalidations;
  const auto dit = dirs_.find(addr / config_.llc_line_size);
  if (dit != dirs_.end()) {
    probe.socket_copies = dit->second.socket_copies;
    probe.owner_socket = dit->second.owner_socket;
  }
  return probe;
}

}  // namespace pred
