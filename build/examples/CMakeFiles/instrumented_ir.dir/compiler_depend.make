# Empty compiler generated dependencies file for instrumented_ir.
# This may be replaced when dependencies are built.
