// Tests for the textual IR parser: hand-written programs, error reporting,
// and the round-trip property parse(print(M)) == M over representative
// modules (including instrumented ones).
#include <gtest/gtest.h>

#include "instrument/analysis/generator.hpp"
#include "instrument/interp.hpp"
#include "instrument/ir_parser.hpp"
#include "instrument/pass.hpp"

namespace pred::ir {
namespace {

bool instr_equal(const Instr& a, const Instr& b) {
  return a.op == b.op && a.dst == b.dst && a.a == b.a && a.b == b.b &&
         a.imm == b.imm && a.size == b.size && a.target == b.target &&
         a.target2 == b.target2 && a.instrumented == b.instrumented &&
         a.extra_reads == b.extra_reads && a.extra_writes == b.extra_writes;
}

bool module_equal(const Module& a, const Module& b) {
  if (a.functions.size() != b.functions.size()) return false;
  for (std::size_t f = 0; f < a.functions.size(); ++f) {
    const Function& fa = a.functions[f];
    const Function& fb = b.functions[f];
    if (fa.name != fb.name || fa.num_args != fb.num_args ||
        fa.num_regs != fb.num_regs ||
        fa.blocks.size() != fb.blocks.size()) {
      return false;
    }
    for (std::size_t blk = 0; blk < fa.blocks.size(); ++blk) {
      const auto& ia = fa.blocks[blk].instrs;
      const auto& ib = fb.blocks[blk].instrs;
      if (ia.size() != ib.size()) return false;
      for (std::size_t i = 0; i < ia.size(); ++i) {
        if (!instr_equal(ia[i], ib[i])) return false;
      }
    }
  }
  return true;
}

TEST(IrParser, ParsesAndRunsAHandWrittenProgram) {
  // sum of first n integers via a loop, written as text.
  const char* text = R"(
# classic counting loop
func sum(1 args, 4 regs):
bb0:
  br bb1
bb1:
  r2 = r1 < r0
  br r2 ? bb2 : bb3
bb2:
  r3 = const 1
  r1 = r1 + r3
  r3 = r3 + r1    # r3 unused, exercises re-assignment
  br bb1
bb3:
  ret r1
)";
  const ParseResult parsed = parse_module(text);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  Interpreter interp;
  const std::int64_t args[] = {41};
  EXPECT_EQ(interp.run(parsed.module.functions[0], args).return_value, 41);
}

TEST(IrParser, ParsesMemoryForms) {
  const char* text = R"(
func touch(2 args, 4 regs):
bb0:
  r2 = load.4 [r0 + 16]
  store.4 [r0 + 20], r2
* r3 = load.8 [r0]
  memset [r0], 7, len r1
  memcpy [r0] <- [r0], len r1
  ret r2
)";
  const ParseResult parsed = parse_module(text);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const auto& instrs = parsed.module.functions[0].blocks[0].instrs;
  EXPECT_EQ(instrs[0].op, Opcode::kLoad);
  EXPECT_EQ(instrs[0].imm, 16);
  EXPECT_EQ(instrs[0].size, 4u);
  EXPECT_EQ(instrs[1].op, Opcode::kStore);
  EXPECT_TRUE(instrs[2].instrumented);
  EXPECT_EQ(instrs[3].op, Opcode::kMemSet);
  EXPECT_EQ(instrs[3].imm, 7);
  EXPECT_EQ(instrs[4].op, Opcode::kMemCopy);
}

TEST(IrParser, ReportsLineNumbersOnErrors) {
  const ParseResult r = parse_module("func f(0 args, 1 regs):\nbb0:\n  frob");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("line 3"), std::string::npos);
}

TEST(IrParser, ReportsColumnOfTheOffendingToken) {
  // "  frob": the unknown mnemonic starts at column 3.
  const ParseResult bad_op =
      parse_module("func f(0 args, 1 regs):\nbb0:\n  frob");
  EXPECT_FALSE(bad_op.ok);
  EXPECT_NE(bad_op.error.find("line 3, col 3"), std::string::npos)
      << bad_op.error;
  // A load missing its closing bracket: the scanner's high-water mark sits
  // past everything successfully consumed — "  r1 = load.4 [r0 + 16" stops
  // where ']' should be, column 24.
  const ParseResult bad_load = parse_module(
      "func f(1 args, 2 regs):\nbb0:\n  r1 = load.4 [r0 + 16\n  ret r1");
  EXPECT_FALSE(bad_load.ok);
  EXPECT_NE(bad_load.error.find("line 3, col"), std::string::npos)
      << bad_load.error;
  // Header errors carry position too.
  const ParseResult bad_header = parse_module("func f(0 args 1 regs):");
  EXPECT_FALSE(bad_header.ok);
  EXPECT_NE(bad_header.error.find("line 1, col"), std::string::npos)
      << bad_header.error;
}

TEST(IrParser, ParsesCompensationExtrasAndReports) {
  const char* text = R"(
func pruned(2 args, 4 regs):
bb0:
* r2 = load.8 [r0 + 8] +2r +1w
* store.8 [r0 + 16], r2 +3w
  r3 = const 5
* report.8 [r0 + 24] x r3, write
* report.4 [r0] x r3, read
  ret r2
)";
  const ParseResult parsed = parse_module(text);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const auto& instrs = parsed.module.functions[0].blocks[0].instrs;
  EXPECT_EQ(instrs[0].extra_reads, 2u);
  EXPECT_EQ(instrs[0].extra_writes, 1u);
  EXPECT_EQ(instrs[1].extra_writes, 3u);
  EXPECT_EQ(instrs[1].extra_reads, 0u);
  ASSERT_EQ(instrs[3].op, Opcode::kReport);
  EXPECT_EQ(instrs[3].imm, 24);
  EXPECT_EQ(instrs[3].size, 8u);
  EXPECT_EQ(instrs[3].b, 3u);
  EXPECT_EQ(instrs[3].target, 1u);  // write
  ASSERT_EQ(instrs[4].op, Opcode::kReport);
  EXPECT_EQ(instrs[4].target, 0u);  // read
  EXPECT_EQ(instrs[4].size, 4u);
  EXPECT_TRUE(instrs[4].instrumented);
  // And the new forms survive a print/parse cycle.
  const ParseResult again = parse_module(to_string(parsed.module));
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_TRUE(module_equal(parsed.module, again.module));
}

TEST(IrParser, RejectsInstructionOutsideBlocks) {
  EXPECT_FALSE(parse_module("  ret r0").ok);
  EXPECT_FALSE(parse_module("func f(0 args, 1 regs):\n  ret r0").ok);
}

TEST(IrParser, RejectsOutOfOrderBlockLabels) {
  const ParseResult r =
      parse_module("func f(0 args, 1 regs):\nbb1:\n  ret r0");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("dense"), std::string::npos);
}

TEST(IrParser, RunsTheVerifierOnParsedModules) {
  // Parses fine syntactically, but the branch target is bogus.
  const ParseResult r =
      parse_module("func f(0 args, 1 regs):\nbb0:\n  br bb7");
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("verification"), std::string::npos);
}

// --- round trip -------------------------------------------------------------

Module build_rich_module() {
  Module m;
  {
    FunctionBuilder b("callee", 1);
    b.ret(b.add(b.arg(0), b.const_val(-3)));
    m.functions.push_back(b.take());
  }
  {
    FunctionBuilder b("main.kernel", 2);
    const Reg i = b.fresh_reg();
    const std::uint32_t header = b.new_block();
    const std::uint32_t body = b.new_block();
    const std::uint32_t done = b.new_block();
    b.br(header);
    b.set_block(header);
    b.cond_br(b.cmp_lt(i, b.arg(1)), body, done);
    b.set_block(body);
    const Reg v = b.load(b.arg(0), 8, 2);
    b.store(b.arg(0), v, -8, 2);
    const Reg c = b.call(0, i, 1);
    b.move(i, c);
    b.mem_set(b.arg(0), b.arg(1), 0xaa);
    b.mem_copy(b.arg(0), b.arg(0), b.arg(1));
    b.br(header);
    b.set_block(done);
    b.ret(i);
    m.functions.push_back(b.take());
  }
  return m;
}

TEST(IrParser, RoundTripPreservesStructure) {
  Module original = build_rich_module();
  ASSERT_EQ(verify(original), "");
  const ParseResult reparsed = parse_module(to_string(original));
  ASSERT_TRUE(reparsed.ok) << reparsed.error << "\n" << to_string(original);
  EXPECT_TRUE(module_equal(original, reparsed.module));
}

TEST(IrParser, RoundTripPreservesInstrumentationMarks) {
  Module original = build_rich_module();
  run_instrumentation_pass(original, {});
  const ParseResult reparsed = parse_module(to_string(original));
  ASSERT_TRUE(reparsed.ok) << reparsed.error;
  EXPECT_TRUE(module_equal(original, reparsed.module));
  // And a second print round agrees textually.
  EXPECT_EQ(to_string(original), to_string(reparsed.module));
}

// The property over *random* modules: parse(print(M)) == M for generated
// CFGs, both pristine and after the full pruning pipeline (which exercises
// kReport and the +Nr/+Nw compensation extras in the text format).
TEST(IrParser, RoundTripHoldsOverRandomGeneratedModules) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Module m = generate_module(seed);
    ASSERT_EQ(verify(m), "") << "seed " << seed;
    if (seed % 2 == 0) {
      PassOptions opt;
      opt.loop_batching = true;
      opt.dominance_elim = true;
      run_instrumentation_pass(m, opt);
    }
    const std::string text = to_string(m);
    const ParseResult reparsed = parse_module(text);
    ASSERT_TRUE(reparsed.ok) << "seed " << seed << ": " << reparsed.error
                             << "\n" << text;
    EXPECT_TRUE(module_equal(m, reparsed.module)) << "seed " << seed;
    EXPECT_EQ(text, to_string(reparsed.module)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace pred::ir
