// PARSEC bodytrack (modeled): no false sharing, but one of Figure 7's
// costliest rows — its particle-weight accumulators are written so heavily
// that many lines cross the TrackingThreshold and incur detailed tracking
// even though every line is single-owner.
#include "common/check.hpp"
#include "common/prng.hpp"
#include "workloads/workload.hpp"

namespace pred::wl {
namespace {

class BodytrackLike final : public WorkloadImpl<BodytrackLike> {
 public:
  const Traits& traits() const override {
    static const Traits t{.name = "bodytrack", .suite = "parsec", .sites = {}};
    return t;
  }

  template <class H>
  static Result kernel(H& h, const Params& p) {
    const std::uint32_t n = p.threads;
    const std::uint64_t particles = 64;
    const std::uint64_t frames = 120 * p.scale;

    std::vector<std::int64_t*> weights(n);
    Xorshift64 rng(p.seed);
    for (std::uint32_t t = 0; t < n; ++t) {
      // Dense per-thread weight vector (+guard line for heap separation).
      weights[t] = static_cast<std::int64_t*>(
          h.alloc(particles * 8 + 64, {"TrackingModel.cpp:weights"}));
      PRED_CHECK(weights[t] != nullptr);
      for (std::uint64_t i = 0; i < particles; ++i) {
        weights[t][i] = static_cast<std::int64_t>(rng.next_below(100));
      }
    }

    h.parallel(n, [&](std::uint32_t t, auto& sink) {
      Xorshift64 local(p.seed + t);
      for (std::uint64_t f = 0; f < frames; ++f) {
        for (std::uint64_t i = 0; i < particles; ++i) {
          // Likelihood update: dense RMW over the whole weight vector.
          sink.read(&weights[t][i], 8);
          const std::int64_t w = weights[t][i];
          const std::int64_t obs =
              static_cast<std::int64_t>(local.next_below(16));
          weights[t][i] = (w * 7 + obs) % 1000003;
          sink.write(&weights[t][i], 8);
        }
      }
    });

    Result r;
    for (std::uint32_t t = 0; t < n; ++t) {
      for (std::uint64_t i = 0; i < particles; ++i) {
        r.checksum += static_cast<std::uint64_t>(weights[t][i]);
      }
    }
    return r;
  }
};

}  // namespace

std::unique_ptr<Workload> make_bodytrack_like() {
  return std::make_unique<BodytrackLike>();
}

}  // namespace pred::wl
