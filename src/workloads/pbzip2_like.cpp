// pbzip2 (modeled): parallel block compression — threads transform private
// input blocks into private output blocks. No shared hot state at all; one
// of the cheapest rows in Figure 7.
#include "common/check.hpp"
#include "common/prng.hpp"
#include "workloads/workload.hpp"

namespace pred::wl {
namespace {

class Pbzip2Like final : public WorkloadImpl<Pbzip2Like> {
 public:
  const Traits& traits() const override {
    static const Traits t{.name = "pbzip2", .suite = "real", .sites = {}};
    return t;
  }

  template <class H>
  static Result kernel(H& h, const Params& p) {
    const std::uint32_t n = p.threads;
    const std::uint64_t block = 16000 * p.scale;

    std::vector<unsigned char*> input(n), output(n);
    Xorshift64 rng(p.seed);
    for (std::uint32_t t = 0; t < n; ++t) {
      input[t] = static_cast<unsigned char*>(
          h.alloc(block, {"pbzip2.cpp:FileData"}));
      // Worst-case RLE expansion is 2 bytes per input byte.
      output[t] = static_cast<unsigned char*>(
          h.alloc(2 * block + 16, {"pbzip2.cpp:CompressedData"}));
      PRED_CHECK(input[t] && output[t]);
      for (std::uint64_t i = 0; i < block; ++i) {
        input[t][i] = static_cast<unsigned char>(rng.next_below(16));
      }
    }

    h.parallel(n, [&](std::uint32_t t, auto& sink) {
      // Toy RLE "compression" of the private block.
      std::uint64_t out = 0;
      std::uint64_t i = 0;
      while (i < block) {
        sink.read(&input[t][i], 1);
        const unsigned char c = input[t][i];
        std::uint64_t run = 1;
        while (i + run < block && run < 255) {
          sink.read(&input[t][i + run], 1);
          if (input[t][i + run] != c) break;
          ++run;
        }
        sink.write(&output[t][out], 1);
        output[t][out++] = c;
        sink.write(&output[t][out], 1);
        output[t][out++] = static_cast<unsigned char>(run);
        i += run;
      }
    });

    Result r;
    for (std::uint32_t t = 0; t < n; ++t) {
      for (std::uint64_t i = 0; i < block; i += 101) r.checksum += output[t][i];
    }
    return r;
  }
};

}  // namespace

std::unique_ptr<Workload> make_pbzip2_like() {
  return std::make_unique<Pbzip2Like>();
}

}  // namespace pred::wl
