// Phoenix reverse_index (Table 1 row reverseindex-pthread.c:511): threads
// extract links from their private HTML chunks and bump per-thread link
// counters that sit adjacent in one shared heap array — false sharing that
// PREDATOR reports because it crosses the invalidation threshold, but whose
// fix buys almost nothing (paper: 0.09%) since the counter updates are rare
// relative to the scanning work.
#include "common/check.hpp"
#include "common/prng.hpp"
#include "workloads/workload.hpp"

namespace pred::wl {
namespace {

struct LinkCounters {  // 16 bytes: 4 per line
  std::uint64_t links_found;
  std::uint64_t bytes_scanned;
};

class ReverseIndex final : public WorkloadImpl<ReverseIndex> {
 public:
  const Traits& traits() const override {
    static const Traits t{
        .name = "reverse_index",
        .suite = "phoenix",
        .sites = {{.where = "reverseindex-pthread.c:511",
                   .needs_prediction = false,
                   .newly_discovered = false,
                   .paper_improvement_pct = 0.09}},
    };
    return t;
  }

  template <class H>
  static Result kernel(H& h, const Params& p) {
    const std::uint32_t n = p.threads;
    const std::uint64_t bytes_per_thread = 60000 * p.scale;
    const std::size_t stride = p.site_fixed(0) ? 64 : sizeof(LinkCounters);

    char* counters = static_cast<char*>(
        h.alloc(stride * n, {"reverseindex-pthread.c:511"}));
    PRED_CHECK(counters != nullptr);
    for (std::uint32_t t = 0; t < n; ++t) {
      auto* c = reinterpret_cast<LinkCounters*>(counters + stride * t);
      c->links_found = c->bytes_scanned = 0;
    }

    std::vector<unsigned char*> html(n);
    Xorshift64 rng(p.seed);
    for (std::uint32_t t = 0; t < n; ++t) {
      html[t] = static_cast<unsigned char*>(
          h.alloc(bytes_per_thread, {"reverseindex-pthread.c:html"}));
      PRED_CHECK(html[t] != nullptr);
      for (std::uint64_t i = 0; i < bytes_per_thread; ++i) {
        html[t][i] = static_cast<unsigned char>(rng.next());
      }
    }

    h.parallel(n, [&](std::uint32_t t, auto& sink) {
      auto* c = reinterpret_cast<LinkCounters*>(counters + stride * t);
      std::uint64_t state = 0;
      for (std::uint64_t i = 0; i < bytes_per_thread; ++i) {
        sink.think(60);  // HTML parsing state machine per byte
        sink.read(&html[t][i], 1);
        const unsigned char ch = html[t][i];
        state = state * 31 + ch;
        if ((state & 0x3ff) == 0) {  // "found a link": ~1 in 1024 bytes
          sink.read(&c->links_found, 8);
          c->links_found += 1;
          sink.write(&c->links_found, 8);
        }
      }
      sink.read(&c->bytes_scanned, 8);
      c->bytes_scanned += bytes_per_thread;
      sink.write(&c->bytes_scanned, 8);
    });

    Result r;
    for (std::uint32_t t = 0; t < n; ++t) {
      auto* c = reinterpret_cast<LinkCounters*>(counters + stride * t);
      r.checksum += c->links_found * 3 + c->bytes_scanned;
    }
    return r;
  }
};

}  // namespace

std::unique_ptr<Workload> make_reverse_index() {
  return std::make_unique<ReverseIndex>();
}

}  // namespace pred::wl
