file(REMOVE_RECURSE
  "CMakeFiles/predator_advice.dir/advice/fix_advisor.cpp.o"
  "CMakeFiles/predator_advice.dir/advice/fix_advisor.cpp.o.d"
  "libpredator_advice.a"
  "libpredator_advice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predator_advice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
