// Tracked-path ablation: sampled-access throughput on ONE hot (escalated)
// cache line — the contention worst case. The bench drives
// CacheTracker::handle_access directly (no region lookup, no pre-threshold
// layers — microbench_fastpath owns those) so the measurement isolates
// exactly the code the tentpole rebuilt: sampling decision, sampled
// counters, word histogram, two-entry history table.
//
//   spin      lock_free_tracker=0   per-line spinlock + global sample clock
//   lockfree  lock_free_tracker=1   striped clocks + CAS history (default)
//
// Workload: T threads, each writing its own word of the same line (classic
// false sharing — every sampled write by a new thread invalidates), full
// sampling so every access takes the detail path. Reported as accesses/sec
// per thread count for both modes; `speedup_tN` = lockfree / spin.
//
// Two further phases measure the sync-aware suppression fast path (the
// epoch/ownership word in front of the lock-free detail path):
//
//   handoff    line ownership rotates between threads in bursts, the
//              lock-handoff shape — each tenure claims via
//              claim_for_handoff then retires a same-owner write burst.
//              `handoff_speedup_tN` = epoch-passing (suppressed) over the
//              PR 3 signature (full detail path): the suppression WIN.
//   multiline  two threads alternate on each of T/2 lines with epochs
//              flowing but ownership never settling, so nearly every
//              access takes the suppression check and falls through.
//              `multiline_ratio_tN` = sync aps / base aps: the
//              FALL-THROUGH COST (≈1.0 means the check is free; below 1.0
//              the failed check is eating throughput).
//
// Usage: microbench_tracked [writes_per_thread] [--json FILE]
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "runtime/cache_tracker.hpp"

namespace {

constexpr std::uint32_t kThreadCounts[] = {1, 2, 4, 8, 16};
constexpr pred::LineGeometry kGeo{};  // 64-byte line, 8-byte words
constexpr pred::Address kLineBase = 0;

// The runtime passes the sampling window/interval from RuntimeConfig, so
// the spin reference's `n % interval` is a genuine hardware divide there.
// Source the bench's values through a volatile so the compiler cannot
// strength-reduce the modulo into multiply tricks and flatter the baseline.
volatile std::uint64_t g_window = 1'000'000;
volatile std::uint64_t g_interval = 1'000'000;

double run_mode(bool lock_free, std::uint32_t nthreads,
                std::uint64_t writes_per_thread) {
  pred::CacheTracker tracker(0, kGeo, lock_free);
  // window == interval: full sampling, every access walks the detail path.
  const std::uint64_t window = g_window;
  const std::uint64_t interval = g_interval;

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::uint32_t t = 0; t < nthreads; ++t) {
    threads.emplace_back([&tracker, t, writes_per_thread, window, interval] {
      const pred::Address word = kLineBase + (t % 8) * 8;
      for (std::uint64_t i = 0; i < writes_per_thread; ++i) {
        tracker.handle_access(word, pred::AccessType::kWrite, t, window,
                              interval);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto end = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(end - start).count();

  // Sanity: the books must balance whatever the interleaving.
  const std::uint64_t total =
      static_cast<std::uint64_t>(nthreads) * writes_per_thread;
  if (tracker.sampled_accesses() != total ||
      tracker.sampled_writes() != total) {
    std::fprintf(stderr, "conservation violated: %" PRIu64 " sampled of %"
                 PRIu64 "\n", tracker.sampled_accesses(), total);
    std::exit(1);
  }
  return static_cast<double>(total) / secs;
}

// Phase 2: lock handoff. Thread t's r-th tenure runs on tracker
// (t + r) % T: it claims the line (claim_for_handoff — the receiver's
// synthetic first write, run in BOTH modes so the histories match) and
// then retires a burst of same-owner writes. With `sync_mode` the writes
// carry the tenure's epoch and ride the suppression fast path; without,
// they take the PR 3 five-argument signature and walk the full sampled
// detail path. Threads drift, so a laggard's stale tenure gets trampled by
// the next claimant exactly as a real contended lock handoff would — the
// fast path re-confirms ownership per access, never mis-suppresses.
double run_handoff(bool sync_mode, std::uint32_t nthreads,
                   std::uint64_t bursts_per_thread) {
  constexpr std::uint64_t kBurst = 64;
  std::vector<std::unique_ptr<pred::CacheTracker>> trackers;
  trackers.reserve(nthreads);
  for (std::uint32_t i = 0; i < nthreads; ++i) {
    trackers.push_back(
        std::make_unique<pred::CacheTracker>(0, kGeo, /*lock_free=*/true));
  }
  const std::uint64_t window = g_window;
  const std::uint64_t interval = g_interval;

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::uint32_t t = 0; t < nthreads; ++t) {
    threads.emplace_back([&trackers, t, nthreads, bursts_per_thread, window,
                          interval, sync_mode] {
      const pred::Address word = kLineBase + (t % 8) * 8;
      for (std::uint64_t r = 0; r < bursts_per_thread; ++r) {
        pred::CacheTracker& track = *trackers[(t + r) % nthreads];
        // Epoch 0 is reserved ("this thread never synced"), so tenures
        // count from 1, exactly as Runtime::handle_sync would.
        const std::uint32_t epoch = static_cast<std::uint32_t>(r + 1);
        track.claim_for_handoff(t, epoch);
        for (std::uint64_t i = 0; i < kBurst; ++i) {
          if (sync_mode) {
            track.handle_access(word, pred::AccessType::kWrite, t, window,
                                interval, epoch);
          } else {
            track.handle_access(word, pred::AccessType::kWrite, t, window,
                                interval);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto end = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(end - start).count();

  // Conservation: every delivered write is either sampled or suppressed,
  // whatever the interleaving (claims themselves deliver no access).
  const std::uint64_t total =
      static_cast<std::uint64_t>(nthreads) * bursts_per_thread * kBurst;
  std::uint64_t sampled = 0;
  std::uint64_t suppressed = 0;
  for (const auto& tr : trackers) {
    sampled += tr->sampled_accesses();
    suppressed += tr->suppressed_accesses();
  }
  if (sampled + suppressed != total || (!sync_mode && suppressed != 0)) {
    std::fprintf(stderr,
                 "handoff conservation violated: %" PRIu64 " sampled + %"
                 PRIu64 " suppressed of %" PRIu64 "\n",
                 sampled, suppressed, total);
    std::exit(1);
  }
  return static_cast<double>(total) / secs;
}

// Phase 3: fall-through cost. Two threads alternate writes on each line
// (T/2 lines), every access carrying a live epoch — the suppression check
// runs on each access but ownership never stabilizes, so the fast path
// almost never hits and the measured difference against the five-argument
// signature is the pure cost of the extra load-and-CAS.
double run_multiline(bool sync_mode, std::uint32_t nthreads,
                     std::uint64_t writes_per_thread) {
  const std::uint32_t nlines = nthreads > 1 ? nthreads / 2 : 1;
  std::vector<std::unique_ptr<pred::CacheTracker>> trackers;
  trackers.reserve(nlines);
  for (std::uint32_t i = 0; i < nlines; ++i) {
    trackers.push_back(
        std::make_unique<pred::CacheTracker>(0, kGeo, /*lock_free=*/true));
  }
  const std::uint64_t window = g_window;
  const std::uint64_t interval = g_interval;

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::uint32_t t = 0; t < nthreads; ++t) {
    threads.emplace_back([&trackers, t, nlines, writes_per_thread, window,
                          interval, sync_mode] {
      pred::CacheTracker& track = *trackers[t % nlines];
      const pred::Address word = kLineBase + ((t / nlines) % 8) * 8;
      // One sync at thread start: the epoch is live (non-zero) for every
      // access, so the suppression gate is evaluated each time.
      const std::uint32_t epoch = 1;
      for (std::uint64_t i = 0; i < writes_per_thread; ++i) {
        if (sync_mode) {
          track.handle_access(word, pred::AccessType::kWrite, t, window,
                              interval, epoch);
        } else {
          track.handle_access(word, pred::AccessType::kWrite, t, window,
                              interval);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto end = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(end - start).count();

  const std::uint64_t total =
      static_cast<std::uint64_t>(nthreads) * writes_per_thread;
  std::uint64_t sampled = 0;
  std::uint64_t suppressed = 0;
  for (const auto& tr : trackers) {
    sampled += tr->sampled_accesses();
    suppressed += tr->suppressed_accesses();
  }
  if (sampled + suppressed != total || (!sync_mode && suppressed != 0)) {
    std::fprintf(stderr,
                 "multiline conservation violated: %" PRIu64 " sampled + %"
                 PRIu64 " suppressed of %" PRIu64 "\n",
                 sampled, suppressed, total);
    std::exit(1);
  }
  return static_cast<double>(total) / secs;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t writes = 250'000;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      writes = std::strtoull(argv[i], nullptr, 10);
      if (writes == 0) {
        std::fprintf(stderr,
                     "usage: %s [writes_per_thread > 0] [--json FILE]\n",
                     argv[0]);
        return 1;
      }
    }
  }

  std::printf("tracked-path ablation: one hot line, fully sampled, %" PRIu64
              " writes/thread\n\n",
              writes);
  std::printf("%8s %18s %18s %9s\n", "threads", "spin aps", "lockfree aps",
              "speedup");

  pred::bench::JsonWriter json;
  for (std::uint32_t t : kThreadCounts) {
    // Warm-up pass, then the measured pass, per mode.
    run_mode(false, t, writes / 8);
    const double spin = run_mode(false, t, writes);
    run_mode(true, t, writes / 8);
    const double lf = run_mode(true, t, writes);
    const double speedup = lf / spin;
    std::printf("%8u %18.0f %18.0f %8.2fx\n", t, spin, lf, speedup);
    char key[32];
    std::snprintf(key, sizeof(key), "spin_t%u_aps", t);
    json.add(key, spin);
    std::snprintf(key, sizeof(key), "lockfree_t%u_aps", t);
    json.add(key, lf);
    std::snprintf(key, sizeof(key), "speedup_t%u", t);
    json.add(key, speedup);
  }
  const std::uint64_t bursts = writes / 64 > 0 ? writes / 64 : 1;
  std::printf("\nlock handoff: ownership rotates in 64-write tenures, %"
              PRIu64 " tenures/thread\n\n",
              bursts);
  std::printf("%8s %18s %18s %9s\n", "threads", "base aps", "sync aps",
              "speedup");
  for (std::uint32_t t : kThreadCounts) {
    run_handoff(false, t, bursts / 8 > 0 ? bursts / 8 : 1);
    const double base = run_handoff(false, t, bursts);
    run_handoff(true, t, bursts / 8 > 0 ? bursts / 8 : 1);
    const double sync = run_handoff(true, t, bursts);
    const double speedup = sync / base;
    std::printf("%8u %18.0f %18.0f %8.2fx\n", t, base, sync, speedup);
    char key[40];
    std::snprintf(key, sizeof(key), "handoff_base_t%u_aps", t);
    json.add(key, base);
    std::snprintf(key, sizeof(key), "handoff_sync_t%u_aps", t);
    json.add(key, sync);
    std::snprintf(key, sizeof(key), "handoff_speedup_t%u", t);
    json.add(key, speedup);
  }

  std::printf("\nmulti-line fall-through: live epochs, unstable ownership, %"
              PRIu64 " writes/thread\n\n",
              writes);
  std::printf("%8s %18s %18s %9s\n", "threads", "base aps", "sync aps",
              "ratio");
  for (std::uint32_t t : kThreadCounts) {
    run_multiline(false, t, writes / 8);
    const double base = run_multiline(false, t, writes);
    run_multiline(true, t, writes / 8);
    const double sync = run_multiline(true, t, writes);
    const double ratio = sync / base;
    std::printf("%8u %18.0f %18.0f %8.2fx\n", t, base, sync, ratio);
    char key[40];
    std::snprintf(key, sizeof(key), "multiline_base_t%u_aps", t);
    json.add(key, base);
    std::snprintf(key, sizeof(key), "multiline_sync_t%u_aps", t);
    json.add(key, sync);
    std::snprintf(key, sizeof(key), "multiline_ratio_t%u", t);
    json.add(key, ratio);
  }

  if (!json_path.empty()) {
    if (!json.write_file(json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "json: %s\n", json_path.c_str());
  }
  return 0;
}
