// Whole-system concurrency stress: real threads exercising allocation,
// instrumented accesses, prediction, recycling, and reporting all at once.
// The assertions are invariants (no crashes, no lost accounting, sane
// reports), not exact counts — the point is to shake out races between the
// runtime's atomics, the allocator's heaps, and the predictor's nomination
// path.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "api/predator.hpp"
#include "common/prng.hpp"

namespace pred {
namespace {

SessionOptions stress_options() {
  SessionOptions o;
  o.heap_size = 64 * 1024 * 1024;
  o.runtime.tracking_threshold = 4;
  o.runtime.prediction_threshold = 64;
  o.runtime.report_invalidation_threshold = 20;
  return o;
}

TEST(Stress, MixedAllocAccessFreeAcrossThreads) {
  Session session(stress_options());
  constexpr int kThreads = 6;
  constexpr int kSteps = 4000;
  std::atomic<std::uint64_t> accesses{0};

  // One shared hot object so prediction and invalidation tracking fire
  // while private churn happens around them.
  auto* shared = static_cast<long*>(
      session.alloc(64, session.intern_frames({"stress.c:shared"})));
  for (int i = 0; i < 8; ++i) shared[i] = 0;

  // Hot allocation path: intern the callsite once, outside the threads.
  const CallsiteId cs_private = session.intern_frames({"stress.c:private"});

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto tid = static_cast<ThreadId>(t);
      Xorshift64 rng(0xabcd + t);
      std::vector<void*> mine;
      for (int step = 0; step < kSteps; ++step) {
        switch (rng.next_below(4)) {
          case 0: {  // allocate and touch
            void* p = session.alloc(8 + rng.next_below(500), cs_private);
            ASSERT_NE(p, nullptr);
            session.record(p, AccessType::kWrite, tid, 8);
            *static_cast<long*>(p) = step;
            mine.push_back(p);
            break;
          }
          case 1: {  // free something of ours
            if (!mine.empty()) {
              session.free(mine.back());
              mine.pop_back();
            }
            break;
          }
          case 2: {  // hammer our private slot of the shared object
            session.record(&shared[t], AccessType::kRead, tid, 8);
            session.record(&shared[t], AccessType::kWrite, tid, 8);
            shared[t] += 1;
            accesses.fetch_add(2, std::memory_order_relaxed);
            break;
          }
          default: {  // read a neighbor's slot (read-write sharing)
            session.record(&shared[(t + 1) % kThreads], AccessType::kRead, tid, 8);
            accesses.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
      }
      for (void* p : mine) session.free(p);
    });
  }
  for (auto& th : threads) th.join();

  // Invariants: live accounting balances (only the shared object remains),
  // the report builds without issue, and the shared line was seen.
  EXPECT_EQ(session.allocator().live_bytes(), 64u);
  const Report rep = session.report();
  auto& shadow = session.allocator().shadow();
  CacheTracker* t =
      shadow.tracker(shadow.line_index(reinterpret_cast<Address>(shared)));
  ASSERT_NE(t, nullptr);
  EXPECT_GT(t->total_accesses(), accesses.load() / 4);
  // No finding may reference freed-and-recycled private churn: every
  // reported object is either the shared one or a dead-but-kept record.
  for (const auto& f : rep.findings) {
    if (!f.attributed) continue;
    if (f.object.start == reinterpret_cast<Address>(shared)) continue;
    EXPECT_FALSE(f.object.live)
        << "recycled object leaked into the report";
  }
}

TEST(Stress, ManySessionsSequentially) {
  // Session setup/teardown leaks nothing structural: run several complete
  // detector lifecycles back to back.
  for (int round = 0; round < 8; ++round) {
    Session session(stress_options());
    auto* data = static_cast<long*>(session.alloc(64, session.intern_frames({"cycle.c:1"})));
    for (int i = 0; i < 200; ++i) {
      session.record(&data[0], AccessType::kWrite, 0, 8);
      session.record(&data[1], AccessType::kWrite, 1, 8);
    }
    const Report rep = session.report();
    ASSERT_EQ(rep.findings.size(), 1u) << "round " << round;
    EXPECT_EQ(rep.findings[0].kind, SharingKind::kFalseSharing);
  }
}

TEST(Stress, ParallelReportingWhileMutating) {
  // build_report must be safe to run concurrently with ongoing accesses
  // (it snapshots under per-tracker locks).
  Session session(stress_options());
  // The backing stores race on purpose (that is the sharing pattern under
  // test); keep them relaxed atomics so the *workload* itself is
  // well-defined C++ and the suite stays ThreadSanitizer-clean.
  auto* data =
      static_cast<std::atomic<long>*>(session.alloc(128, session.intern_frames({"live.c:1"})));
  std::atomic<bool> stop{false};

  std::thread mutator([&] {
    ThreadId tid = session.register_thread();
    Xorshift64 rng(7);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::size_t w = rng.next_below(16);
      session.record(&data[w], AccessType::kWrite, tid, 8);
      data[w].fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::thread mutator2([&] {
    ThreadId tid = session.register_thread();
    while (!stop.load(std::memory_order_relaxed)) {
      session.record(&data[0], AccessType::kWrite, tid, 8);
      data[0].fetch_add(1, std::memory_order_relaxed);
    }
  });

  for (int i = 0; i < 50; ++i) {
    const Report rep = session.report();
    (void)rep.total_invalidations;
    const std::string text = session.report_text();
    EXPECT_FALSE(text.empty());
  }
  stop.store(true);
  mutator.join();
  mutator2.join();
}

}  // namespace
}  // namespace pred
