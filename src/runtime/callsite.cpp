#include "runtime/callsite.hpp"

#include <execinfo.h>

#include <mutex>

#include "common/check.hpp"

namespace pred {

CallsiteId CallsiteTable::intern(std::vector<std::string> frames) {
  std::lock_guard<Spinlock> g(lock_);
  for (std::size_t i = 0; i < table_.size(); ++i) {
    if (table_[i].frames == frames) return static_cast<CallsiteId>(i);
  }
  table_.push_back(Callsite{std::move(frames)});
  return static_cast<CallsiteId>(table_.size() - 1);
}

CallsiteId CallsiteTable::intern_frames(
    std::initializer_list<std::string_view> frames) {
  std::lock_guard<Spinlock> g(lock_);
  for (std::size_t i = 0; i < table_.size(); ++i) {
    const auto& have = table_[i].frames;
    if (have.size() != frames.size()) continue;
    bool equal = true;
    auto it = frames.begin();
    for (std::size_t f = 0; f < have.size(); ++f, ++it) {
      if (have[f] != *it) {
        equal = false;
        break;
      }
    }
    if (equal) return static_cast<CallsiteId>(i);
  }
  Callsite cs;
  cs.frames.reserve(frames.size());
  for (std::string_view f : frames) cs.frames.emplace_back(f);
  table_.push_back(std::move(cs));
  return static_cast<CallsiteId>(table_.size() - 1);
}

CallsiteId CallsiteTable::capture_native(int skip) {
  void* raw[32];
  int depth = ::backtrace(raw, 32);
  std::vector<std::string> frames;
  if (depth > skip) {
    char** symbols = ::backtrace_symbols(raw + skip, depth - skip);
    if (symbols) {
      for (int i = 0; i < depth - skip; ++i) frames.emplace_back(symbols[i]);
      ::free(symbols);
    }
  }
  return intern(std::move(frames));
}

const Callsite& CallsiteTable::get(CallsiteId id) const {
  std::lock_guard<Spinlock> g(lock_);
  PRED_CHECK(id < table_.size());
  return table_[id];
}

std::size_t CallsiteTable::size() const {
  std::lock_guard<Spinlock> g(lock_);
  return table_.size();
}

std::string format_callsite(const Callsite& cs, const std::string& indent) {
  std::string out;
  for (const auto& frame : cs.frames) {
    out += indent;
    out += frame;
    out += '\n';
  }
  return out;
}

}  // namespace pred
