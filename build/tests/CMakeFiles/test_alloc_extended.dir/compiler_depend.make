# Empty compiler generated dependencies file for test_alloc_extended.
# This may be replaced when dependencies are built.
