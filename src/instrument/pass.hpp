// The instrumentation pass (Sections 2.2 and 2.4.2): decides which loads and
// stores get a runtime call. It runs after any IR "optimization" the program
// author did (our mini-IR programs are written post-optimization, mirroring
// the paper's placement of the pass at the very end of LLVM's pipeline) and
// applies, in order:
//   * selective per-block dedup — at most one instrumentation per (address
//     expression, access type) per basic block, with correct invalidation
//     when the address register is redefined mid-block;
//   * writes-only mode (detects only write-write false sharing, as SHERIFF);
//   * function black/whitelists;
//   * (opt-in) loop batching — a provably loop-invariant instrumented
//     address inside a canonical counted loop is un-instrumented and
//     replaced by one kReport at the preheader delivering trip-count many
//     accesses;
//   * (opt-in) dominance/chain merging — along single-entry/single-exit
//     block chains (equal execution counts by construction), accesses whose
//     value-numbered address and width coincide fold into the first one as
//     compensation extras (+Nr/+Nw).
//
// Both whole-function passes are count- and type-exact: the runtime sees
// the same multiset of (address, width, kind) accesses per execution, only
// through fewer calls — tests/test_analysis.cpp proves the resulting
// detector reports are bit-identical.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "instrument/ir.hpp"
#include "runtime/config.hpp"

namespace pred::ir {

struct PassOptions {
  InstrumentMode mode = InstrumentMode::kReadsAndWrites;
  /// If non-empty, only these functions are instrumented.
  std::vector<std::string> whitelist;
  /// Functions never instrumented (applied after the whitelist).
  std::vector<std::string> blacklist;
  /// Per-block (address, type) dedup of Section 2.4.2. Disable to measure
  /// its effect (ablation bench).
  bool selective = true;
  /// Whole-function passes over the analysis/ framework. Off by default:
  /// the seed pipeline is per-block only, and these change the *placement*
  /// (never the content) of what reaches the runtime.
  bool loop_batching = false;
  bool dominance_elim = false;
};

struct PassStats {
  std::uint64_t candidate_accesses = 0;    ///< loads/stores seen
  std::uint64_t intrinsic_accesses = 0;    ///< memset/memcpy sites
  std::uint64_t instrumented_accesses = 0; ///< loads/stores left marked
  std::uint64_t skipped_duplicates = 0;    ///< removed by per-block dedup
  std::uint64_t skipped_reads = 0;         ///< removed by writes-only mode
  std::uint64_t skipped_functions = 0;     ///< functions excluded by lists
  std::uint64_t loop_batched = 0;          ///< hoisted into preheader reports
  std::uint64_t dominance_merged = 0;      ///< folded into an earlier access
  std::uint64_t reports_inserted = 0;      ///< kReport instructions planted

  /// Every load/store candidate is accounted for exactly once:
  ///   candidate = instrumented + duplicates + reads + batched + merged.
  /// (Intrinsic sites are tracked separately; reports_inserted counts new
  /// instructions, not candidates.) test_instrument.cpp asserts this.
  bool reconciles() const {
    return candidate_accesses == instrumented_accesses + skipped_duplicates +
                                     skipped_reads + loop_batched +
                                     dominance_merged;
  }
};

/// Marks Instr::instrumented across the module and returns statistics.
PassStats run_instrumentation_pass(Module& module, const PassOptions& options);

}  // namespace pred::ir
