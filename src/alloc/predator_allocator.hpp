// The allocator facade the rest of the system uses: per-thread heaps over a
// fixed region, allocation-callsite capture, object registration with the
// runtime, and the paper's memory-reuse discipline (Section 2.3.2): on free,
// an object whose lines saw invalidations is *never* recycled (its record is
// kept for reporting); a clean object's line metadata is reset and its
// memory returns to the free lists — this is what prevents pseudo false
// sharing (false positives) across object lifetimes.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "alloc/heap_region.hpp"
#include "alloc/thread_heap.hpp"
#include "common/spinlock.hpp"
#include "repair/plan.hpp"
#include "runtime/runtime.hpp"

namespace pred {

class PredatorAllocator {
 public:
  /// Creates the heap, registers it as a tracked region of `rt`, and wires
  /// shadow metadata. The runtime must outlive the allocator.
  explicit PredatorAllocator(Runtime& rt,
                             std::size_t heap_size = 256 * 1024 * 1024);

  PredatorAllocator(const PredatorAllocator&) = delete;
  PredatorAllocator& operator=(const PredatorAllocator&) = delete;

  /// Allocates `size` bytes attributed to a symbolic callsite stack
  /// (outermost frame last), e.g. {"stddefines.h:53",
  /// "linear_regression-pthread.c:133"}. Returns nullptr on exhaustion.
  void* allocate(std::size_t size, std::vector<std::string> callsite_frames);

  /// Allocates `size` bytes attributed to a pre-interned callsite: the
  /// Session API v2 path — intern the stack once, allocate many times
  /// without building (or hashing) frame strings per call.
  void* allocate(std::size_t size, CallsiteId callsite);

  /// Allocates with the native backtrace as the callsite (slower; what the
  /// paper's interposed malloc does).
  void* allocate_with_backtrace(std::size_t size);

  /// calloc analogue: zeroed allocation of count * size bytes (overflow
  /// checked; returns nullptr on overflow or exhaustion).
  void* allocate_zeroed(std::size_t count, std::size_t size,
                        std::vector<std::string> callsite_frames);

  /// realloc analogue. Grows or shrinks `p` to `new_size`, copying the
  /// surviving prefix. nullptr behaves like allocate; size 0 frees and
  /// returns nullptr.
  void* reallocate(void* p, std::size_t new_size,
                   std::vector<std::string> callsite_frames);

  /// aligned allocation (alignment must be a power of two). The heap's
  /// natural alignment is the size class; stronger alignments take a
  /// dedicated span.
  void* allocate_aligned(std::size_t alignment, std::size_t size,
                         std::vector<std::string> callsite_frames);

  /// Installs a repair plan (repair/plan.hpp): every subsequent allocation
  /// whose callsite matches a heap plan entry has its request rounded up to
  /// a multiple of the entry's pad_to — size classes then give natural
  /// line alignment, so padded slots stop sharing lines. Pass nullptr to
  /// uninstall. Resolution is memoized per CallsiteId.
  void install_repair_plan(std::shared_ptr<const repair::RepairPlan> plan);
  std::shared_ptr<const repair::RepairPlan> repair_plan() const {
    std::lock_guard<Spinlock> g(plan_lock_);
    return plan_;
  }

  /// Allocation statistics since construction.
  struct Stats {
    std::uint64_t allocations = 0;
    std::uint64_t deallocations = 0;
    std::uint64_t reallocations = 0;
    std::uint64_t leaked_for_reporting = 0;  ///< never-reused dirty objects
    std::uint64_t repairs_applied = 0;       ///< plan-padded allocations
    std::uint64_t repair_padding_bytes = 0;  ///< bytes added by the plan
  };
  Stats stats() const {
    std::lock_guard<Spinlock> g(stats_lock_);
    return stats_;
  }

  /// Frees `p`, applying the reuse rules described above. Unknown and null
  /// pointers are ignored (mirrors free(NULL) tolerance).
  void deallocate(void* p);

  /// True when any line overlapping the object saw an invalidation — the
  /// "involved in false sharing, never reuse" test.
  bool object_has_invalidations(Address start, std::size_t size) const;

  HeapRegion& region() { return region_; }
  ShadowSpace& shadow() { return *shadow_; }
  Runtime& runtime() { return rt_; }

  /// Live application bytes (requested sizes of live objects): the
  /// "Original" series of Figures 8/9.
  std::size_t live_bytes() const {
    return live_bytes_.load(std::memory_order_relaxed);
  }
  /// Heap bytes actually carved out of the region (allocator footprint).
  std::size_t heap_footprint() const { return region_.used_bytes(); }

 private:
  /// A thread's heap plus the lock that makes cross-thread frees safe:
  /// frees are routed back to the *owning* heap so a block never migrates
  /// to another thread's free list (which would put two threads' objects on
  /// one line and break the Hoard-style no-shared-line invariant).
  struct LockedHeap {
    explicit LockedHeap(HeapRegion& region, std::size_t line_size)
        : heap(region, line_size) {}
    Spinlock lock;
    ThreadHeap heap;
  };

  LockedHeap& local_heap();
  void* finish_allocation(std::size_t size, CallsiteId callsite);
  /// The installed plan's heap entry matching `callsite`, or null.
  const repair::PlanEntry* plan_entry_for(CallsiteId callsite);

  Runtime& rt_;
  HeapRegion region_;
  ShadowSpace* shadow_;  // owned by the runtime

  mutable Spinlock heaps_lock_;
  std::unordered_map<std::thread::id, std::unique_ptr<LockedHeap>> heaps_;
  std::unordered_map<Address, LockedHeap*> block_owner_;

  std::atomic<std::size_t> live_bytes_{0};

  // Repair plan + per-callsite resolution memo. The shared_ptr keeps the
  // memoized PlanEntry pointers alive across install/uninstall races.
  mutable Spinlock plan_lock_;
  std::shared_ptr<const repair::RepairPlan> plan_;
  std::unordered_map<CallsiteId, const repair::PlanEntry*> plan_memo_;

  mutable Spinlock stats_lock_;
  Stats stats_;
};

}  // namespace pred
