# Empty dependencies file for test_report_diff.
# This may be replaced when dependencies are built.
