// Per-thread heap (Section 2.3.2): every thread allocates from its own
// spans, so objects allocated by *different* threads never share a physical
// cache line — allocator-induced false sharing is prevented by construction,
// leaving only the intra-object / same-thread cases PREDATOR is designed to
// find.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "common/cacheline.hpp"
#include "alloc/heap_region.hpp"
#include "alloc/ownership_map.hpp"
#include "alloc/size_class.hpp"

namespace pred {

class ThreadHeap {
 public:
  /// When `ownership` is given, every span this heap carves out of the
  /// region is recorded there as owned by logical thread `owner` — the map
  /// the thread-escape analysis consumes to prove accesses thread-private.
  explicit ThreadHeap(HeapRegion& region, std::size_t line_size = 64,
                      OwnershipMap* ownership = nullptr, ThreadId owner = 0)
      : region_(region),
        line_size_(line_size),
        ownership_(ownership),
        owner_(owner) {}

  /// Allocates `size` bytes. Small requests are segregated-fit from
  /// thread-private chunks; large requests take a dedicated span. Returns 0
  /// when the backing region is exhausted. Not thread-safe by design: one
  /// instance per thread.
  Address allocate(std::size_t size);

  /// Returns a previously allocated block of `size` bytes to this heap's
  /// free lists (the caller guarantees the block is safe to recycle).
  void deallocate(Address addr, std::size_t size);

  std::size_t chunk_bytes_obtained() const { return chunk_bytes_; }

 private:
  static constexpr std::size_t kChunkSize = 64 * 1024;

  HeapRegion& region_;
  const std::size_t line_size_;
  OwnershipMap* ownership_;
  const ThreadId owner_;
  std::array<std::vector<Address>, SizeClasses::kNumClasses> free_lists_{};
  std::array<Address, SizeClasses::kNumClasses> bump_{};      // next free
  std::array<Address, SizeClasses::kNumClasses> bump_end_{};  // chunk end
  std::size_t chunk_bytes_ = 0;
};

}  // namespace pred
