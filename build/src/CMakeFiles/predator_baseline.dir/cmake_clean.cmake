file(REMOVE_RECURSE
  "CMakeFiles/predator_baseline.dir/baseline/ptu_like.cpp.o"
  "CMakeFiles/predator_baseline.dir/baseline/ptu_like.cpp.o.d"
  "CMakeFiles/predator_baseline.dir/baseline/sheriff_like.cpp.o"
  "CMakeFiles/predator_baseline.dir/baseline/sheriff_like.cpp.o.d"
  "libpredator_baseline.a"
  "libpredator_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predator_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
