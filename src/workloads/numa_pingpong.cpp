// numa_pingpong: the pathological remote-line ping-pong kernel for the
// two-level NUMA simulator. Every thread tight-loops read-modify-writes on
// its own 8-byte slot, but all slots are packed into one cache-line region —
// each write invalidates every other thread's copy. On the flat simulator
// this is ordinary (severe) false sharing; on a multi-socket topology with
// scatter placement the same trace pays the remote_factor on nearly every
// transfer, which is the ≥2x remote-vs-local cycle ratio the bench and CI
// smoke assert. The fix pads slots to 128 bytes (a full line pair), after
// which detection goes silent and the simulated cost collapses.
#include "common/check.hpp"
#include "workloads/workload.hpp"

namespace pred::wl {
namespace {

class NumaPingpong final : public WorkloadImpl<NumaPingpong> {
 public:
  const Traits& traits() const override {
    static const Traits t{
        .name = "numa_pingpong",
        .suite = "numa",
        .sites = {{.where = "numa_pingpong.cc:slots",
                   .needs_prediction = false,
                   .newly_discovered = false,
                   .paper_improvement_pct = 0.0}},
    };
    return t;
  }

  template <class H>
  static Result kernel(H& h, const Params& p) {
    const std::uint32_t n = p.threads;
    const std::uint64_t iters = 400 * p.scale;
    // Buggy: one 8-byte counter slot per thread, densely packed so eight
    // threads share each 64-byte line. Fixed: each slot on its own line
    // pair, immune even to 128-byte-grain geometry.
    const std::size_t stride = p.site_fixed(0) ? 128 : 8;

    auto* base = static_cast<char*>(
        h.alloc(stride * n, {"numa_pingpong.cc:slots"}));
    PRED_CHECK(base != nullptr);
    for (std::uint32_t t = 0; t < n; ++t) {
      *reinterpret_cast<std::uint64_t*>(base + stride * t) = 0;
    }

    h.parallel(n, [&](std::uint32_t t, auto& sink) {
      auto* slot = reinterpret_cast<std::uint64_t*>(base + stride * t);
      for (std::uint64_t i = 0; i < iters; ++i) {
        // Pure ping-pong: no think() — the loop is nothing but the RMW, so
        // modeled time is dominated entirely by coherence cost.
        sink.read(slot, 8);
        *slot += t + i;
        sink.write(slot, 8);
      }
    });

    Result r;
    for (std::uint32_t t = 0; t < n; ++t) {
      r.checksum ^= *reinterpret_cast<std::uint64_t*>(base + stride * t) *
                    (t + 1);
    }
    return r;
  }
};

}  // namespace

std::unique_ptr<Workload> make_numa_pingpong() {
  return std::make_unique<NumaPingpong>();
}

}  // namespace pred::wl
