file(REMOVE_RECURSE
  "CMakeFiles/ablation_selective_instr.dir/ablation_selective_instr.cpp.o"
  "CMakeFiles/ablation_selective_instr.dir/ablation_selective_instr.cpp.o.d"
  "ablation_selective_instr"
  "ablation_selective_instr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_selective_instr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
