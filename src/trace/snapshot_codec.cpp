#include "trace/snapshot_codec.hpp"

#include "trace/wire_format.hpp"

namespace pred {

namespace {

using wire::Field;
using wire::FieldReader;
using wire::FieldWriter;

// Top-level snapshot payload field ids. New telemetry gets new ids; never
// reuse or renumber — old collectors skip what they do not know.
enum : std::uint16_t {
  kFClientUid = 1,
  kFClientPid = 2,
  kFSequence = 3,
  kFEventsSeen = 4,
  kFEventsDropped = 5,
  kFAggregationPasses = 6,
  kFEscalations = 7,
  kFInvalidations = 8,
  kFSamples = 9,
  kFPredictions = 10,
  kFVirtualLines = 11,
  kFLinesTracked = 12,
  kFLineEntry = 13,      // repeated, nested
  kFCallsiteEntry = 14,  // repeated, nested
  kFRingEntry = 15,      // repeated, nested
};

// Nested LineEntry field ids.
enum : std::uint16_t {
  kFLineStart = 1,
  kFLineInvalidations = 2,
  kFLineSamples = 3,
  kFLineSampleWrites = 4,
  kFLinePredictions = 5,
  kFLineFlags = 6,  // bit0 escalated, bit1 attributed, bit2 is_global
  kFLineObjectStart = 7,
  kFLineCallsite = 8,
  kFLineLabel = 9,
};

// Nested CallsiteEntry field ids.
enum : std::uint16_t {
  kFSiteCallsite = 1,
  kFSiteLabel = 2,
  kFSiteInvalidations = 3,
  kFSiteSamples = 4,
  kFSiteLines = 5,
};

// Nested RingEntry field ids.
enum : std::uint16_t {
  kFRingProduced = 1,
  kFRingConsumed = 2,
  kFRingDropped = 3,
};

std::string encode_line(const MonitorSnapshot::LineEntry& le) {
  std::string out;
  FieldWriter w(&out);
  w.u64(kFLineStart, le.line_start);
  w.u64(kFLineInvalidations, le.invalidations);
  w.u64(kFLineSamples, le.samples);
  w.u64(kFLineSampleWrites, le.sample_writes);
  w.u64(kFLinePredictions, le.predictions);
  w.u64(kFLineFlags, (le.escalated ? 1u : 0u) | (le.attributed ? 2u : 0u) |
                         (le.is_global ? 4u : 0u));
  w.u64(kFLineObjectStart, le.object_start);
  w.u64(kFLineCallsite, le.callsite);
  w.str(kFLineLabel, le.label);
  return out;
}

bool decode_line(std::string_view bytes, MonitorSnapshot::LineEntry* le) {
  FieldReader r(bytes);
  while (auto f = r.next()) {
    switch (f->id) {
      case kFLineStart: le->line_start = f->as_u64(); break;
      case kFLineInvalidations: le->invalidations = f->as_u64(); break;
      case kFLineSamples: le->samples = f->as_u64(); break;
      case kFLineSampleWrites: le->sample_writes = f->as_u64(); break;
      case kFLinePredictions: le->predictions = f->as_u64(); break;
      case kFLineFlags: {
        const std::uint64_t flags = f->as_u64();
        le->escalated = flags & 1;
        le->attributed = flags & 2;
        le->is_global = flags & 4;
        break;
      }
      case kFLineObjectStart: le->object_start = f->as_u64(); break;
      case kFLineCallsite:
        le->callsite = static_cast<CallsiteId>(f->as_u64());
        break;
      case kFLineLabel: le->label.assign(f->bytes); break;
      default: break;  // field from a newer client — skip
    }
  }
  return !r.malformed();
}

std::string encode_site(const MonitorSnapshot::CallsiteEntry& ce) {
  std::string out;
  FieldWriter w(&out);
  w.u64(kFSiteCallsite, ce.callsite);
  w.str(kFSiteLabel, ce.label);
  w.u64(kFSiteInvalidations, ce.invalidations);
  w.u64(kFSiteSamples, ce.samples);
  w.u64(kFSiteLines, ce.lines);
  return out;
}

bool decode_site(std::string_view bytes, MonitorSnapshot::CallsiteEntry* ce) {
  FieldReader r(bytes);
  while (auto f = r.next()) {
    switch (f->id) {
      case kFSiteCallsite:
        ce->callsite = static_cast<CallsiteId>(f->as_u64());
        break;
      case kFSiteLabel: ce->label.assign(f->bytes); break;
      case kFSiteInvalidations: ce->invalidations = f->as_u64(); break;
      case kFSiteSamples: ce->samples = f->as_u64(); break;
      case kFSiteLines:
        ce->lines = static_cast<std::size_t>(f->as_u64());
        break;
      default: break;
    }
  }
  return !r.malformed();
}

std::string encode_ring(const MonitorSnapshot::RingEntry& re) {
  std::string out;
  FieldWriter w(&out);
  w.u64(kFRingProduced, re.produced);
  w.u64(kFRingConsumed, re.consumed);
  w.u64(kFRingDropped, re.dropped);
  return out;
}

bool decode_ring(std::string_view bytes, MonitorSnapshot::RingEntry* re) {
  FieldReader r(bytes);
  while (auto f = r.next()) {
    switch (f->id) {
      case kFRingProduced: re->produced = f->as_u64(); break;
      case kFRingConsumed: re->consumed = f->as_u64(); break;
      case kFRingDropped: re->dropped = f->as_u64(); break;
      default: break;
    }
  }
  return !r.malformed();
}

std::string encode_client_payload(const ClientId& client) {
  std::string payload;
  FieldWriter w(&payload);
  w.u64(kFClientUid, client.uid);
  w.u64(kFClientPid, client.pid);
  return payload;
}

}  // namespace

std::string SnapshotCodec::encode(const MonitorSnapshot& snap,
                                  const ClientId& client) {
  std::string payload;
  FieldWriter w(&payload);
  w.u64(kFClientUid, client.uid);
  w.u64(kFClientPid, client.pid);
  w.u64(kFSequence, snap.sequence);
  w.u64(kFEventsSeen, snap.events_seen);
  w.u64(kFEventsDropped, snap.events_dropped);
  w.u64(kFAggregationPasses, snap.aggregation_passes);
  w.u64(kFEscalations, snap.escalations);
  w.u64(kFInvalidations, snap.invalidations);
  w.u64(kFSamples, snap.samples);
  w.u64(kFPredictions, snap.predictions);
  w.u64(kFVirtualLines, snap.virtual_lines);
  w.u64(kFLinesTracked, snap.lines_tracked);
  for (const auto& le : snap.top_lines) w.bytes(kFLineEntry, encode_line(le));
  for (const auto& ce : snap.callsites) {
    w.bytes(kFCallsiteEntry, encode_site(ce));
  }
  for (const auto& re : snap.rings) w.bytes(kFRingEntry, encode_ring(re));
  return wire::encode_frame(wire::FrameType::kSnapshot, payload);
}

bool SnapshotCodec::decode(std::string_view payload, DecodedSnapshot* out) {
  *out = DecodedSnapshot{};
  MonitorSnapshot& snap = out->snapshot;
  FieldReader r(payload);
  while (auto f = r.next()) {
    switch (f->id) {
      case kFClientUid: out->client.uid = f->as_u64(); break;
      case kFClientPid: out->client.pid = f->as_u64(); break;
      case kFSequence: snap.sequence = f->as_u64(); break;
      case kFEventsSeen: snap.events_seen = f->as_u64(); break;
      case kFEventsDropped: snap.events_dropped = f->as_u64(); break;
      case kFAggregationPasses: snap.aggregation_passes = f->as_u64(); break;
      case kFEscalations: snap.escalations = f->as_u64(); break;
      case kFInvalidations: snap.invalidations = f->as_u64(); break;
      case kFSamples: snap.samples = f->as_u64(); break;
      case kFPredictions: snap.predictions = f->as_u64(); break;
      case kFVirtualLines: snap.virtual_lines = f->as_u64(); break;
      case kFLinesTracked:
        snap.lines_tracked = static_cast<std::size_t>(f->as_u64());
        break;
      case kFLineEntry: {
        MonitorSnapshot::LineEntry le;
        if (!decode_line(f->bytes, &le)) return false;
        snap.top_lines.push_back(std::move(le));
        break;
      }
      case kFCallsiteEntry: {
        MonitorSnapshot::CallsiteEntry ce;
        if (!decode_site(f->bytes, &ce)) return false;
        snap.callsites.push_back(std::move(ce));
        break;
      }
      case kFRingEntry: {
        MonitorSnapshot::RingEntry re;
        if (!decode_ring(f->bytes, &re)) return false;
        snap.rings.push_back(re);
        break;
      }
      default: break;  // newer-client field — skip
    }
  }
  return !r.malformed();
}

std::string SnapshotCodec::encode_hello(const ClientId& client) {
  return wire::encode_frame(wire::FrameType::kHello,
                            encode_client_payload(client));
}

std::string SnapshotCodec::encode_goodbye(const ClientId& client) {
  return wire::encode_frame(wire::FrameType::kGoodbye,
                            encode_client_payload(client));
}

bool SnapshotCodec::decode_client(std::string_view payload, ClientId* out) {
  *out = ClientId{};
  FieldReader r(payload);
  while (auto f = r.next()) {
    switch (f->id) {
      case kFClientUid: out->uid = f->as_u64(); break;
      case kFClientPid: out->pid = f->as_u64(); break;
      default: break;
    }
  }
  return !r.malformed();
}

}  // namespace pred
