// Wire codec for RepairPlan: one kRepairPlan frame whose payload is a
// tagged-field sequence (trace/wire_format.hpp layer 2), so plans ride the
// same transports as snapshots — a fleet client can stream its compiled
// plan to a `predator-cli serve` collector, and the collector can persist
// the merged plan as a frame file a future run loads.
//
// Field ids (top level): 1 origin_uid, 2 entry (kBytes, repeated).
// Entry: 1 is_global, 2 site_key, 3 action, 4 pad_to, 5 alignment,
//        6 slot_stride, 7 object_size, 8 expected_eliminated,
//        9 evidence (kBytes, repeated).
// Evidence: 1 offset, 2 owner, 3 writes.
// Unknown ids are skipped on decode (forward compatibility); malformed
// sequences are rejected. Frame-level corruption is caught by the CRC.
#pragma once

#include <string>
#include <string_view>

#include "repair/plan.hpp"

namespace pred::repair {

/// Encodes the plan as one complete kRepairPlan wire frame.
std::string encode_plan_frame(const RepairPlan& plan);

/// Decodes a kRepairPlan frame *payload* (the frame layer already
/// unwrapped). Returns false on malformed input; unknown fields and
/// unknown actions are skipped, not errors.
bool decode_plan_payload(std::string_view payload, RepairPlan* out);

/// Persists the plan as a single-frame file / loads it back. load returns
/// false on I/O failure, frame corruption, or a malformed payload.
bool save_plan_file(const std::string& path, const RepairPlan& plan);
bool load_plan_file(const std::string& path, RepairPlan* out);

}  // namespace pred::repair
