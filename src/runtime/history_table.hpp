// Cache history table: the invalidation-counting automaton of
// Section 2.3.1. One instance exists per tracked physical line, and one per
// tracked *virtual* line during prediction verification (Section 3.4) — the
// rules are identical, which is why this is a standalone value type.
//
// The paper fixes the table at two entries; BoundedHistoryTable generalizes
// the same rules to K entries so the design point can be ablated
// (bench/ablation_history_depth). HistoryTable is the paper's K = 2.
#pragma once

#include <cstdint>

#include "common/cacheline.hpp"

namespace pred {

/// Outcome of feeding one access into the table.
enum class HistoryOutcome : std::uint8_t {
  kNoEvent,       ///< access recorded (or ignored), no coherence event
  kInvalidation,  ///< this write invalidated another thread's cached copy
};

template <int K>
class BoundedHistoryTable {
  static_assert(K >= 1 && K <= 64);

 public:
  /// Applies the paper's update rules for one access and reports whether it
  /// counts as a cache invalidation.
  ///
  /// Writes: a write is an invalidation iff any resident entry belongs to a
  /// *different* thread (entries are distinct by thread, so a full table
  /// always qualifies). Every invalidation resets the table to just the
  /// invalidating write.
  ///
  /// Reads: recorded only when they add a *new* thread to a non-full table;
  /// reads never invalidate. The paper leaves the pre-first-write (empty)
  /// state unspecified; we record reads into an empty table so that the
  /// sequence "T2 reads, T1 writes" counts the invalidation of T2's copy,
  /// matching what real coherence hardware does.
  HistoryOutcome access(ThreadId tid, AccessType type) {
    if (type == AccessType::kRead) {
      if (size_ < K && !contains(tid)) {
        entries_[size_++] = Entry{tid, AccessType::kRead};
      }
      return HistoryOutcome::kNoEvent;
    }
    // Write access.
    if (contains_other(tid)) {
      entries_[0] = Entry{tid, AccessType::kWrite};
      size_ = 1;
      return HistoryOutcome::kInvalidation;
    }
    entries_[0] = Entry{tid, AccessType::kWrite};
    size_ = 1;
    return HistoryOutcome::kNoEvent;
  }

  void reset() { size_ = 0; }

  int size() const { return size_; }
  ThreadId thread_at(int i) const { return entries_[i].tid; }
  AccessType type_at(int i) const { return entries_[i].type; }

 private:
  struct Entry {
    ThreadId tid = kInvalidThread;
    AccessType type = AccessType::kRead;
  };

  bool contains(ThreadId tid) const {
    for (int i = 0; i < size_; ++i) {
      if (entries_[i].tid == tid) return true;
    }
    return false;
  }
  bool contains_other(ThreadId tid) const {
    for (int i = 0; i < size_; ++i) {
      if (entries_[i].tid != tid) return true;
    }
    return false;
  }

  Entry entries_[K];
  int size_ = 0;
};

/// The paper's design point: two entries.
using HistoryTable = BoundedHistoryTable<2>;

}  // namespace pred
