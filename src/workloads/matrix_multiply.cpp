// Phoenix matrix_multiply: no false sharing (not in Table 1) and low
// instrumentation overhead in Figure 7 — each output element is written
// once, so no line ever crosses the tracking thresholds and PREDATOR's fast
// path handles nearly everything.
#include "common/check.hpp"
#include "common/prng.hpp"
#include "workloads/workload.hpp"

namespace pred::wl {
namespace {

class MatrixMultiply final : public WorkloadImpl<MatrixMultiply> {
 public:
  const Traits& traits() const override {
    static const Traits t{
        .name = "matrix_multiply", .suite = "phoenix", .sites = {}};
    return t;
  }

  template <class H>
  static Result kernel(H& h, const Params& p) {
    const std::uint32_t n = p.threads;
    const std::size_t dim = 32 * (p.scale > 4 ? 4 : p.scale) + 32;  // rows

    auto* a = static_cast<std::int64_t*>(
        h.alloc(dim * dim * 8, {"matrix_multiply-pthread.c:a"}));
    auto* b = static_cast<std::int64_t*>(
        h.alloc(dim * dim * 8, {"matrix_multiply-pthread.c:b"}));
    auto* c = static_cast<std::int64_t*>(
        h.alloc(dim * dim * 8, {"matrix_multiply-pthread.c:c"}));
    PRED_CHECK(a && b && c);
    Xorshift64 rng(p.seed);
    for (std::size_t i = 0; i < dim * dim; ++i) {
      a[i] = static_cast<std::int64_t>(rng.next_below(100));
      b[i] = static_cast<std::int64_t>(rng.next_below(100));
      c[i] = 0;
    }

    h.parallel(n, [&](std::uint32_t t, auto& sink) {
      // Row-blocked: thread t computes rows [t*dim/n, (t+1)*dim/n).
      for (std::size_t i = t * dim / n; i < (t + 1) * dim / n; ++i) {
        for (std::size_t j = 0; j < dim; ++j) {
          std::int64_t sum = 0;
          for (std::size_t k = 0; k < dim; ++k) {
            sink.read(&a[i * dim + k], 8);
            sink.read(&b[k * dim + j], 8);
            sum += a[i * dim + k] * b[k * dim + j];
          }
          c[i * dim + j] = sum;
          sink.write(&c[i * dim + j], 8);
        }
      }
    });

    Result r;
    for (std::size_t i = 0; i < dim * dim; i += 7) {
      r.checksum += static_cast<std::uint64_t>(c[i]);
    }
    return r;
  }
};

}  // namespace

std::unique_ptr<Workload> make_matrix_multiply() {
  return std::make_unique<MatrixMultiply>();
}

}  // namespace pred::wl
