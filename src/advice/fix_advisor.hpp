// Fix advisor: the paper's "Suggest Fixes" future-work item (Section 6) —
// "leveraging memory trace information will make it possible for PREDATOR
// to prescribe fixes to the programmer".
//
// The advisor turns a ranked Report into concrete, source-level remedies by
// pattern-matching each finding's word-ownership layout:
//
//   * per-thread slots packed into one line  -> pad each slot to a line;
//   * a few distinct hot fields per owner    -> group fields by owning
//                                               thread / align the object;
//   * a byte/word array written at chunk
//     boundaries                             -> widen elements or align
//                                               chunk boundaries;
//   * a shared hot word (true sharing)       -> not false sharing: suggest
//                                               reducing update frequency
//                                               (no layout fix applies);
//   * prediction-only findings               -> pin the object's alignment
//                                               so the latent layout cannot
//                                               occur.
//
// Each suggestion carries the evidence it was derived from and an estimate
// of the invalidations it would eliminate, so suggestions can be ranked the
// same way findings are.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/report.hpp"

namespace pred {

enum class FixKind : std::uint8_t {
  kPadPerThreadSlots,   ///< give each thread's slot its own cache line
  kAlignObject,         ///< force line alignment of the object start
  kWidenElements,       ///< grow array elements so owners split on lines
  kSeparateHotFields,   ///< move different owners' fields apart
  kReduceWriteSharing,  ///< true sharing: layout cannot help
};

const char* to_string(FixKind kind);

struct FixSuggestion {
  FixKind kind = FixKind::kAlignObject;
  /// Object the suggestion applies to (copy of the finding's object).
  ObjectInfo object;
  /// Human-readable prescription, e.g. "pad each 24-byte slot to 64 bytes".
  std::string prescription;
  /// Why this fix was chosen: the access-pattern evidence.
  std::string rationale;
  /// Invalidations (observed + predicted) this fix is expected to remove.
  std::uint64_t eliminated_invalidations = 0;
  /// Number of distinct threads involved in the finding.
  std::uint32_t threads_involved = 0;
  /// Detected per-thread slot stride in bytes (0 when not slot-shaped).
  std::size_t slot_stride = 0;
};

struct AdvisorOptions {
  std::size_t line_size = 64;
  /// Suggestions below this impact are dropped.
  std::uint64_t min_invalidations = 1;
};

/// Analyzes a report and returns suggestions, highest impact first.
std::vector<FixSuggestion> advise(const Report& report,
                                  const AdvisorOptions& options = {});

/// Renders suggestions as a human-readable advisory (one block per fix).
std::string format_suggestions(const std::vector<FixSuggestion>& suggestions);

}  // namespace pred
