# Empty dependencies file for scalability_mysql.
# This may be replaced when dependencies are built.
