// pfscan (modeled): parallel file scanner — threads grep private chunks and
// occasionally record a match in a per-thread, heap-separated result slot.
// No false sharing. A lightly-written shared match total stays below the
// report threshold, mirroring why the paper finds nothing here.
#include "common/check.hpp"
#include "common/prng.hpp"
#include "workloads/workload.hpp"

namespace pred::wl {
namespace {

class PfscanLike final : public WorkloadImpl<PfscanLike> {
 public:
  const Traits& traits() const override {
    static const Traits t{.name = "pfscan", .suite = "real", .sites = {}};
    return t;
  }

  template <class H>
  static Result kernel(H& h, const Params& p) {
    const std::uint32_t n = p.threads;
    const std::uint64_t bytes_per_thread = 20000 * p.scale;
    constexpr unsigned char kNeedle = 0x2a;

    std::vector<unsigned char*> chunk(n);
    std::vector<std::uint64_t*> matches(n);
    Xorshift64 rng(p.seed);
    for (std::uint32_t t = 0; t < n; ++t) {
      chunk[t] = static_cast<unsigned char*>(
          h.alloc(bytes_per_thread, {"pfscan/pfscan.c:chunk"}));
      matches[t] = static_cast<std::uint64_t*>(
          h.alloc(128, {"pfscan/pfscan.c:matches"}));
      PRED_CHECK(chunk[t] && matches[t]);
      for (std::uint64_t i = 0; i < bytes_per_thread; ++i) {
        chunk[t][i] = static_cast<unsigned char>(rng.next());
      }
      *matches[t] = 0;
    }

    // Shared grand total, updated once per thread at the end (far below any
    // reporting threshold).
    auto* total = static_cast<std::uint64_t*>(
        h.alloc(64, {"pfscan/pfscan.c:total"}));
    PRED_CHECK(total != nullptr);
    *total = 0;

    h.parallel(n, [&](std::uint32_t t, auto& sink) {
      std::uint64_t local_matches = 0;
      for (std::uint64_t i = 0; i < bytes_per_thread; ++i) {
        sink.read(&chunk[t][i], 1);
        if (chunk[t][i] == kNeedle) ++local_matches;
      }
      sink.read(matches[t], 8);
      *matches[t] = local_matches;
      sink.write(matches[t], 8);
      sink.read(total, 8);
      sink.write(total, 8);
      *total += local_matches;  // raced in live mode; checksum uses matches[]
    });

    Result r;
    for (std::uint32_t t = 0; t < n; ++t) r.checksum += *matches[t];
    return r;
  }
};

}  // namespace

std::unique_ptr<Workload> make_pfscan_like() {
  return std::make_unique<PfscanLike>();
}

}  // namespace pred::wl
