// Local value numbering specialized for address expressions. Every register
// value is tracked as  base + constant offset  where the base is either the
// literal zero (the value is a known constant), the value some register
// held at the start of the numbered region, or an opaque fresh value (a
// load result, a call result, arithmetic we do not model).
//
// Two accesses whose (base, offset) coincide touch the same memory address
// in every execution — even when the address registers differ textually
// (`r5 = r0; load [r5]` vs `load [r0]`) or the offset moved between the
// register and the instruction immediate (`r6 = r0 + 8; load [r6]` vs
// `load [r0 + 8]`). The seed pass keyed on raw register names and missed
// all of these; it also had to invalidate facts on register redefinition,
// which value identity makes unnecessary (a redefined register simply maps
// to a new value, old facts stay valid for the old value).
#pragma once

#include <cstdint>
#include <vector>

#include "instrument/analysis/constants.hpp"
#include "instrument/ir.hpp"

namespace pred::ir {

class ValueNumbering {
 public:
  struct Value {
    enum class Base : std::uint8_t {
      kZero,      ///< value == offset (a compile-time constant)
      kEntryReg,  ///< value == (register `id` at region start) + offset
      kOpaque,    ///< unique unknown value `id`, + offset
    };
    Base base = Base::kOpaque;
    std::uint32_t id = 0;
    std::int64_t offset = 0;

    bool operator==(const Value&) const = default;
    bool is_const() const { return base == Base::kZero; }
  };

  /// Starts a numbering region: register r holds Value{kEntryReg, r, 0}.
  explicit ValueNumbering(const Function& fn)
      : vals_(fn.num_regs), next_opaque_(0) {
    for (std::uint32_t r = 0; r < fn.num_regs; ++r) {
      vals_[r] = Value{Value::Base::kEntryReg, r, 0};
    }
  }

  /// Folds in block-entry constant facts (constants.hpp): a register proven
  /// to hold constant c numbers as the literal value c, letting constant
  /// steps and bases unify across the whole function, not just locally.
  void seed_constants(const ConstantAnalysis::State& consts) {
    for (std::size_t r = 0; r < consts.size() && r < vals_.size(); ++r) {
      if (consts[r].is_const()) {
        vals_[r] = Value{Value::Base::kZero, 0, consts[r].value};
      }
    }
  }

  /// Applies one instruction's effect on the numbering.
  void apply(const Instr& in) {
    switch (in.op) {
      case Opcode::kConst:
        vals_[in.dst] = Value{Value::Base::kZero, 0, in.imm};
        break;
      case Opcode::kMove:
        vals_[in.dst] = vals_[in.a];
        break;
      case Opcode::kAdd:
        if (vals_[in.b].is_const()) {
          vals_[in.dst] = offset_by(vals_[in.a], vals_[in.b].offset);
        } else if (vals_[in.a].is_const()) {
          vals_[in.dst] = offset_by(vals_[in.b], vals_[in.a].offset);
        } else {
          vals_[in.dst] = fresh();
        }
        break;
      case Opcode::kSub:
        if (vals_[in.b].is_const()) {
          vals_[in.dst] = offset_by(vals_[in.a], -vals_[in.b].offset);
        } else if (vals_[in.a] == vals_[in.b]) {
          vals_[in.dst] = Value{Value::Base::kZero, 0, 0};
        } else {
          vals_[in.dst] = fresh();
        }
        break;
      default:
        if (defines(in)) vals_[in.dst] = fresh();
        break;
    }
  }

  Value value_of(Reg r) const { return vals_[r]; }

  /// Canonical address of a load/store: value of the base register plus the
  /// instruction's immediate offset.
  Value address_of(const Instr& access) const {
    return offset_by(vals_[access.a], access.imm);
  }

 private:
  static bool defines(const Instr& in) {
    switch (in.op) {
      case Opcode::kMul:
      case Opcode::kDiv:
      case Opcode::kRem:
      case Opcode::kCmpLt:
      case Opcode::kCmpEq:
      case Opcode::kLoad:
      case Opcode::kCall:
        return true;
      default:
        return false;
    }
  }

  static Value offset_by(Value v, std::int64_t delta) {
    v.offset += delta;
    return v;
  }

  Value fresh() { return Value{Value::Base::kOpaque, next_opaque_++, 0}; }

  std::vector<Value> vals_;
  std::uint32_t next_opaque_;
};

}  // namespace pred::ir
