
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/aget_like.cpp" "src/CMakeFiles/predator_workloads.dir/workloads/aget_like.cpp.o" "gcc" "src/CMakeFiles/predator_workloads.dir/workloads/aget_like.cpp.o.d"
  "/root/repo/src/workloads/blackscholes.cpp" "src/CMakeFiles/predator_workloads.dir/workloads/blackscholes.cpp.o" "gcc" "src/CMakeFiles/predator_workloads.dir/workloads/blackscholes.cpp.o.d"
  "/root/repo/src/workloads/bodytrack_like.cpp" "src/CMakeFiles/predator_workloads.dir/workloads/bodytrack_like.cpp.o" "gcc" "src/CMakeFiles/predator_workloads.dir/workloads/bodytrack_like.cpp.o.d"
  "/root/repo/src/workloads/boost_spinlock.cpp" "src/CMakeFiles/predator_workloads.dir/workloads/boost_spinlock.cpp.o" "gcc" "src/CMakeFiles/predator_workloads.dir/workloads/boost_spinlock.cpp.o.d"
  "/root/repo/src/workloads/dedup_like.cpp" "src/CMakeFiles/predator_workloads.dir/workloads/dedup_like.cpp.o" "gcc" "src/CMakeFiles/predator_workloads.dir/workloads/dedup_like.cpp.o.d"
  "/root/repo/src/workloads/ferret_like.cpp" "src/CMakeFiles/predator_workloads.dir/workloads/ferret_like.cpp.o" "gcc" "src/CMakeFiles/predator_workloads.dir/workloads/ferret_like.cpp.o.d"
  "/root/repo/src/workloads/fluidanimate_like.cpp" "src/CMakeFiles/predator_workloads.dir/workloads/fluidanimate_like.cpp.o" "gcc" "src/CMakeFiles/predator_workloads.dir/workloads/fluidanimate_like.cpp.o.d"
  "/root/repo/src/workloads/histogram.cpp" "src/CMakeFiles/predator_workloads.dir/workloads/histogram.cpp.o" "gcc" "src/CMakeFiles/predator_workloads.dir/workloads/histogram.cpp.o.d"
  "/root/repo/src/workloads/kmeans.cpp" "src/CMakeFiles/predator_workloads.dir/workloads/kmeans.cpp.o" "gcc" "src/CMakeFiles/predator_workloads.dir/workloads/kmeans.cpp.o.d"
  "/root/repo/src/workloads/linear_regression.cpp" "src/CMakeFiles/predator_workloads.dir/workloads/linear_regression.cpp.o" "gcc" "src/CMakeFiles/predator_workloads.dir/workloads/linear_regression.cpp.o.d"
  "/root/repo/src/workloads/matrix_multiply.cpp" "src/CMakeFiles/predator_workloads.dir/workloads/matrix_multiply.cpp.o" "gcc" "src/CMakeFiles/predator_workloads.dir/workloads/matrix_multiply.cpp.o.d"
  "/root/repo/src/workloads/memcached_like.cpp" "src/CMakeFiles/predator_workloads.dir/workloads/memcached_like.cpp.o" "gcc" "src/CMakeFiles/predator_workloads.dir/workloads/memcached_like.cpp.o.d"
  "/root/repo/src/workloads/mysql_like.cpp" "src/CMakeFiles/predator_workloads.dir/workloads/mysql_like.cpp.o" "gcc" "src/CMakeFiles/predator_workloads.dir/workloads/mysql_like.cpp.o.d"
  "/root/repo/src/workloads/pbzip2_like.cpp" "src/CMakeFiles/predator_workloads.dir/workloads/pbzip2_like.cpp.o" "gcc" "src/CMakeFiles/predator_workloads.dir/workloads/pbzip2_like.cpp.o.d"
  "/root/repo/src/workloads/pca.cpp" "src/CMakeFiles/predator_workloads.dir/workloads/pca.cpp.o" "gcc" "src/CMakeFiles/predator_workloads.dir/workloads/pca.cpp.o.d"
  "/root/repo/src/workloads/pfscan_like.cpp" "src/CMakeFiles/predator_workloads.dir/workloads/pfscan_like.cpp.o" "gcc" "src/CMakeFiles/predator_workloads.dir/workloads/pfscan_like.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/CMakeFiles/predator_workloads.dir/workloads/registry.cpp.o" "gcc" "src/CMakeFiles/predator_workloads.dir/workloads/registry.cpp.o.d"
  "/root/repo/src/workloads/reverse_index.cpp" "src/CMakeFiles/predator_workloads.dir/workloads/reverse_index.cpp.o" "gcc" "src/CMakeFiles/predator_workloads.dir/workloads/reverse_index.cpp.o.d"
  "/root/repo/src/workloads/streamcluster.cpp" "src/CMakeFiles/predator_workloads.dir/workloads/streamcluster.cpp.o" "gcc" "src/CMakeFiles/predator_workloads.dir/workloads/streamcluster.cpp.o.d"
  "/root/repo/src/workloads/string_match.cpp" "src/CMakeFiles/predator_workloads.dir/workloads/string_match.cpp.o" "gcc" "src/CMakeFiles/predator_workloads.dir/workloads/string_match.cpp.o.d"
  "/root/repo/src/workloads/swaptions_like.cpp" "src/CMakeFiles/predator_workloads.dir/workloads/swaptions_like.cpp.o" "gcc" "src/CMakeFiles/predator_workloads.dir/workloads/swaptions_like.cpp.o.d"
  "/root/repo/src/workloads/word_count.cpp" "src/CMakeFiles/predator_workloads.dir/workloads/word_count.cpp.o" "gcc" "src/CMakeFiles/predator_workloads.dir/workloads/word_count.cpp.o.d"
  "/root/repo/src/workloads/x264_like.cpp" "src/CMakeFiles/predator_workloads.dir/workloads/x264_like.cpp.o" "gcc" "src/CMakeFiles/predator_workloads.dir/workloads/x264_like.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/predator_api.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/predator_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/predator_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/predator_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/predator_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/predator_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
