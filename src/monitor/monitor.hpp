// Live monitoring: lock-free event streaming from the runtime's slow path,
// online aggregation on a background thread, and on-demand snapshot
// telemetry — the findings of Sections 2.3-2.4 surfaced *while the workload
// runs* instead of only in the exit report.
//
// Data flow:
//
//   mutator threads ──emit()──► per-thread SPSC EventRing (drop-oldest)
//                                        │
//                         aggregator thread drains every
//                         aggregation_interval_ms (or any thread inside
//                         snapshot(), serialized by one consumer mutex)
//                                        │
//                      incremental per-line stats, top-K hot lines,
//                      per-callsite rollup, per-ring drop counters
//                                        │
//   snapshot() ──► immutable MonitorSnapshot (mutators never pause)
//
// The emitting side is wait-free: a TLS-cached ring pointer plus one ring
// push. Overload is shed drop-oldest per ring, and every shed event is
// counted and surfaced in the snapshot (`events_dropped`, per-ring stats),
// so backpressure is visible rather than silent. Emission compiles out
// entirely with -DPREDATOR_MONITOR=OFF (PREDATOR_DISABLE_MONITOR).
//
// Ordering guarantee (the `report()` contract extended to snapshots):
// `snapshot()` first publishes the calling thread's staged write counters
// (`flush_staged_writes`, running any threshold checks that became due) and
// then drains every ring, so all events caused by the calling thread's
// accesses program-order-before the call — including escalations triggered
// by the flush itself — are reflected in the returned snapshot. Other
// threads' events are included up to their latest published ring entries.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/cacheline.hpp"
#include "monitor/event_ring.hpp"
#include "runtime/callsite.hpp"
#include "runtime/write_stage.hpp"

namespace pred {

class Runtime;
class Monitor;

struct MonitorConfig {
  /// Events per per-thread ring; rounded up to a power of two. Sizing is a
  /// latency/telemetry-loss trade: the default absorbs ~16k events of
  /// aggregator lag per thread before shedding.
  std::size_t ring_capacity = 1 << 14;
  /// Aggregator wake-up period. Snapshots drain on demand regardless.
  std::uint32_t aggregation_interval_ms = 5;
  /// Hot lines retained in MonitorSnapshot::top_lines.
  std::size_t top_k = 16;
};

/// Immutable view of the aggregated monitor state at one point in time.
struct MonitorSnapshot {
  struct LineEntry {
    Address line_start = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t samples = 0;        ///< sampled accesses (incl. invalidating)
    std::uint64_t sample_writes = 0;  ///< sampled writes among them
    std::uint64_t predictions = 0;    ///< prediction-engine runs on this line
    bool escalated = false;           ///< has a CacheTracker
    // Lazily resolved attribution (object registry lookup off the hot path).
    bool attributed = false;
    bool is_global = false;
    Address object_start = 0;
    CallsiteId callsite = kNoCallsite;
    std::string label;  ///< global name or innermost callsite frame
  };
  struct CallsiteEntry {
    CallsiteId callsite = kNoCallsite;
    std::string label;  ///< innermost frame (or global name, id kNoCallsite)
    std::uint64_t invalidations = 0;
    std::uint64_t samples = 0;
    std::size_t lines = 0;  ///< distinct hot lines attributed here
  };
  struct RingEntry {
    std::uint64_t produced = 0;
    std::uint64_t consumed = 0;
    std::uint64_t dropped = 0;
  };

  std::uint64_t sequence = 0;            ///< increments per snapshot taken
  std::uint64_t events_seen = 0;         ///< aggregated events, all rings
  std::uint64_t events_dropped = 0;      ///< shed by overloaded rings
  std::uint64_t aggregation_passes = 0;  ///< drains so far (timer + snapshot)

  std::uint64_t escalations = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t samples = 0;
  std::uint64_t predictions = 0;
  std::uint64_t virtual_lines = 0;

  std::size_t lines_tracked = 0;  ///< distinct lines with any event
  std::vector<LineEntry> top_lines;       ///< by invalidations, then samples
  std::vector<CallsiteEntry> callsites;   ///< by invalidations, descending
  std::vector<RingEntry> rings;           ///< one per producer thread seen
};

/// Renders a snapshot as a compact periodic-status block (`watch`-friendly).
std::string format_snapshot(const MonitorSnapshot& snap);

namespace detail {
/// TLS binding of the calling thread to its ring in one monitor. Validated
/// against the global runtime generation (bumped by Monitor/Runtime
/// destruction), exactly like FastPathCache, so a stale pointer into a dead
/// monitor is never dereferenced.
struct MonitorTls {
  Monitor* monitor = nullptr;
  EventRing* ring = nullptr;
  std::uint64_t gen = 0;
};
inline thread_local MonitorTls t_monitor_tls;
}  // namespace detail

class Monitor {
 public:
  Monitor(Runtime& runtime, MonitorConfig config);
  ~Monitor();

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  /// Installs the monitor into the runtime (slow-path emission begins) and
  /// starts the background aggregator thread. Idempotent.
  void start();

  /// Uninstalls from the runtime, drains every ring one final time, and
  /// joins the aggregator thread. Aggregated state is retained, so
  /// snapshot() keeps working (and start() may be called again). Idempotent.
  void stop();

  bool running() const { return running_; }
  const MonitorConfig& config() const { return config_; }

  /// Builds an immutable snapshot of the aggregated state. Never stops
  /// mutator threads: it flushes the *calling* thread's staged write
  /// counters (same contract as Session::report()), then drains all rings
  /// under the consumer mutex shared with the aggregator thread. Works
  /// whether or not the monitor is running.
  MonitorSnapshot snapshot();

  /// snapshot() rendered through format_snapshot().
  std::string snapshot_text();

  /// Hot-path event publication (called by the runtime's slow path; see
  /// runtime.cpp). Wait-free after the first event per thread: a TLS cache
  /// hit plus one SPSC ring push.
  void emit(MonitorEventType type, Address addr, std::uint64_t arg,
            ThreadId tid) {
    detail::MonitorTls& tls = detail::t_monitor_tls;
    if (tls.monitor != this || tls.gen != runtime_generation()) [[unlikely]] {
      bind_thread_ring();
    }
    tls.ring->push(MonitorEvent{addr, arg, tid, type});
  }

 private:
  /// Per-line aggregate, keyed by line start address.
  struct LineAgg {
    std::uint64_t invalidations = 0;
    std::uint64_t samples = 0;
    std::uint64_t sample_writes = 0;
    std::uint64_t predictions = 0;
    bool escalated = false;
    // Sticky lazy attribution (resolved against the object registry the
    // first time it succeeds).
    bool attribution_tried = false;
    bool attributed = false;
    bool is_global = false;
    Address object_start = 0;
    CallsiteId callsite = kNoCallsite;
    std::string label;
  };

  void bind_thread_ring();             // TLS miss path; allocates on demand
  void aggregator_main();
  void drain_all_locked();             // requires mu_
  void fold_locked(const MonitorEvent& ev);
  void resolve_attribution_locked(Address line_start, LineAgg& agg);
  void refresh_topk_locked();
  MonitorSnapshot build_snapshot_locked();

  Runtime* runtime_;
  const MonitorConfig config_;

  // Consumer-side state: rings list, aggregate maps, and the aggregator
  // thread's lifecycle. One mutex serializes all consumers (the aggregator
  // thread and snapshot callers); mutators only take it on their very first
  // emit (ring creation).
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread aggregator_;

  std::vector<std::unique_ptr<EventRing>> rings_;
  std::unordered_map<std::thread::id, EventRing*> ring_by_thread_;

  std::unordered_map<Address, LineAgg> lines_;
  std::vector<Address> topk_;  ///< current top-K line starts, sorted
  std::uint64_t events_seen_ = 0;
  std::uint64_t aggregation_passes_ = 0;
  std::uint64_t snapshot_seq_ = 0;
  std::uint64_t escalations_ = 0;
  std::uint64_t invalidations_ = 0;
  std::uint64_t samples_ = 0;
  std::uint64_t predictions_ = 0;
  std::uint64_t virtual_lines_ = 0;
};

}  // namespace pred
