// Tests for batched instrumentation delivery (Section 6 "Improved
// Performance"): batching must change only *when* accesses reach the
// runtime, never *what* is recorded.
#include <gtest/gtest.h>

#include "instrument/batch.hpp"

namespace pred {
namespace {

SessionOptions options() {
  SessionOptions o;
  o.heap_size = 8 * 1024 * 1024;
  o.runtime.tracking_threshold = 2;
  o.runtime.report_invalidation_threshold = 10;
  return o;
}

TEST(BatchBuffer, FlushesAutomaticallyAtCapacity) {
  Session session(options());
  auto* data = static_cast<long*>(session.alloc(64, session.intern_frames({"b.c:1"})));
  BatchBuffer buf(session, 0);
  for (std::size_t i = 0; i < BatchBuffer::kCapacity - 1; ++i) {
    buf.write(&data[0]);
  }
  EXPECT_EQ(buf.buffered(), BatchBuffer::kCapacity - 1);
  buf.write(&data[0]);  // capacity reached: auto-flush
  EXPECT_EQ(buf.buffered(), 0u);
}

TEST(BatchBuffer, DestructorFlushesRemainder) {
  Session session(options());
  auto* data = static_cast<long*>(session.alloc(64, session.intern_frames({"b.c:2"})));
  {
    BatchBuffer buf(session, 0);
    for (int i = 0; i < 10; ++i) buf.write(&data[0]);
  }  // flush on destruction
  auto& shadow = session.allocator().shadow();
  CacheTracker* t =
      shadow.tracker(shadow.line_index(reinterpret_cast<Address>(data)));
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->total_accesses(), 8u);  // 10 writes minus 2 pre-escalation
}

TEST(BatchBuffer, EquivalentToDirectDelivery) {
  // Same access sequence, delivered directly vs batched: identical
  // invalidation counts and classification.
  auto run = [](bool batched) {
    Session session(options());
    auto* data = static_cast<long*>(session.alloc(64, session.intern_frames({"b.c:3"})));
    if (batched) {
      BatchBuffer b0(session, 0);
      BatchBuffer b1(session, 1);
      for (int i = 0; i < 500; ++i) {
        b0.write(&data[0]);
        b0.flush();  // force the same interleaving as the direct run
        b1.write(&data[1]);
        b1.flush();
      }
    } else {
      for (int i = 0; i < 500; ++i) {
        session.record(&data[0], AccessType::kWrite, 0, 8);
        session.record(&data[1], AccessType::kWrite, 1, 8);
      }
    }
    const Report rep = session.report();
    EXPECT_EQ(rep.findings.size(), 1u);
    return rep.findings.empty()
               ? std::uint64_t{0}
               : rep.findings[0].invalidations;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(BatchBuffer, BatchedDetectionStillFindsFalseSharing) {
  // Realistic batching (no forced flushes): each thread's accesses arrive
  // in bursts of kCapacity. Invalidation counts drop (fewer interleavings
  // seen) but the verdict must hold.
  Session session(options());
  auto* data = static_cast<long*>(session.alloc(64, session.intern_frames({"b.c:4"})));
  BatchBuffer b0(session, 0);
  BatchBuffer b1(session, 1);
  for (int i = 0; i < 4000; ++i) {
    b0.write(&data[0]);
    b1.write(&data[1]);
  }
  b0.flush();
  b1.flush();
  const Report rep = session.report();
  ASSERT_EQ(rep.findings.size(), 1u);
  EXPECT_EQ(rep.findings[0].kind, SharingKind::kFalseSharing);
  EXPECT_GT(rep.findings[0].invalidations, 10u);
}

}  // namespace
}  // namespace pred
