// Tests for SnapshotCodec: lossless round-trip of every MonitorSnapshot
// field, hello/goodbye brackets, forward compatibility with newer-client
// fields, and Session::publish() producing a decodable self-identifying
// frame from a real session.
#include <gtest/gtest.h>

#include "api/predator.hpp"
#include "trace/snapshot_codec.hpp"
#include "trace/wire_format.hpp"

namespace pred {
namespace {

MonitorSnapshot sample_snapshot() {
  MonitorSnapshot s;
  s.sequence = 41;
  s.events_seen = 100000;
  s.events_dropped = 250;
  s.aggregation_passes = 77;
  s.escalations = 12;
  s.invalidations = 4321;
  s.samples = 8000;
  s.predictions = 3;
  s.virtual_lines = 9;
  s.lines_tracked = 15;

  MonitorSnapshot::LineEntry le;
  le.line_start = 0x4000000040;
  le.invalidations = 321;
  le.samples = 654;
  le.sample_writes = 400;
  le.predictions = 2;
  le.escalated = true;
  le.attributed = true;
  le.is_global = false;
  le.object_start = 0x4000000000;
  le.callsite = 7;
  le.label = "app.c:42 \"quoted\"";
  s.top_lines.push_back(le);
  le.line_start = 0x4000000080;
  le.is_global = true;
  le.escalated = false;
  le.label = "";
  s.top_lines.push_back(le);

  MonitorSnapshot::CallsiteEntry ce;
  ce.callsite = 7;
  ce.label = "app.c:42 \"quoted\"";
  ce.invalidations = 321;
  ce.samples = 654;
  ce.lines = 2;
  s.callsites.push_back(ce);

  s.rings.push_back({50000, 49900, 100});
  s.rings.push_back({50000, 49850, 150});
  return s;
}

void expect_snapshots_equal(const MonitorSnapshot& a,
                            const MonitorSnapshot& b) {
  EXPECT_EQ(a.sequence, b.sequence);
  EXPECT_EQ(a.events_seen, b.events_seen);
  EXPECT_EQ(a.events_dropped, b.events_dropped);
  EXPECT_EQ(a.aggregation_passes, b.aggregation_passes);
  EXPECT_EQ(a.escalations, b.escalations);
  EXPECT_EQ(a.invalidations, b.invalidations);
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.predictions, b.predictions);
  EXPECT_EQ(a.virtual_lines, b.virtual_lines);
  EXPECT_EQ(a.lines_tracked, b.lines_tracked);
  ASSERT_EQ(a.top_lines.size(), b.top_lines.size());
  for (std::size_t i = 0; i < a.top_lines.size(); ++i) {
    const auto& x = a.top_lines[i];
    const auto& y = b.top_lines[i];
    EXPECT_EQ(x.line_start, y.line_start);
    EXPECT_EQ(x.invalidations, y.invalidations);
    EXPECT_EQ(x.samples, y.samples);
    EXPECT_EQ(x.sample_writes, y.sample_writes);
    EXPECT_EQ(x.predictions, y.predictions);
    EXPECT_EQ(x.escalated, y.escalated);
    EXPECT_EQ(x.attributed, y.attributed);
    EXPECT_EQ(x.is_global, y.is_global);
    EXPECT_EQ(x.object_start, y.object_start);
    EXPECT_EQ(x.callsite, y.callsite);
    EXPECT_EQ(x.label, y.label);
  }
  ASSERT_EQ(a.callsites.size(), b.callsites.size());
  for (std::size_t i = 0; i < a.callsites.size(); ++i) {
    EXPECT_EQ(a.callsites[i].callsite, b.callsites[i].callsite);
    EXPECT_EQ(a.callsites[i].label, b.callsites[i].label);
    EXPECT_EQ(a.callsites[i].invalidations, b.callsites[i].invalidations);
    EXPECT_EQ(a.callsites[i].samples, b.callsites[i].samples);
    EXPECT_EQ(a.callsites[i].lines, b.callsites[i].lines);
  }
  ASSERT_EQ(a.rings.size(), b.rings.size());
  for (std::size_t i = 0; i < a.rings.size(); ++i) {
    EXPECT_EQ(a.rings[i].produced, b.rings[i].produced);
    EXPECT_EQ(a.rings[i].consumed, b.rings[i].consumed);
    EXPECT_EQ(a.rings[i].dropped, b.rings[i].dropped);
  }
}

// Unwraps the frame layer and hands back the verified payload.
std::string frame_payload(const std::string& frame_bytes,
                          wire::FrameType expected_type) {
  wire::Frame frame;
  std::size_t consumed = 0;
  EXPECT_EQ(wire::parse_frame(frame_bytes, &frame, &consumed),
            wire::FrameError::kOk);
  EXPECT_EQ(frame.type, expected_type);
  EXPECT_EQ(consumed, frame_bytes.size());
  return frame.payload;
}

TEST(SnapshotCodec, RoundTripPreservesEverything) {
  const MonitorSnapshot snap = sample_snapshot();
  const ClientId client{0xabc000000123ull, 4242};
  const std::string frame = SnapshotCodec::encode(snap, client);

  DecodedSnapshot decoded;
  ASSERT_TRUE(SnapshotCodec::decode(
      frame_payload(frame, wire::FrameType::kSnapshot), &decoded));
  EXPECT_EQ(decoded.client.uid, client.uid);
  EXPECT_EQ(decoded.client.pid, client.pid);
  expect_snapshots_equal(decoded.snapshot, snap);
}

TEST(SnapshotCodec, EmptySnapshotRoundTrips) {
  DecodedSnapshot decoded;
  ASSERT_TRUE(SnapshotCodec::decode(
      frame_payload(SnapshotCodec::encode(MonitorSnapshot{}, ClientId{}),
                    wire::FrameType::kSnapshot),
      &decoded));
  expect_snapshots_equal(decoded.snapshot, MonitorSnapshot{});
}

TEST(SnapshotCodec, HelloGoodbyeCarryIdentity) {
  const ClientId client{991, 1234};
  ClientId out;
  ASSERT_TRUE(SnapshotCodec::decode_client(
      frame_payload(SnapshotCodec::encode_hello(client),
                    wire::FrameType::kHello),
      &out));
  EXPECT_EQ(out.uid, client.uid);
  EXPECT_EQ(out.pid, client.pid);
  ASSERT_TRUE(SnapshotCodec::decode_client(
      frame_payload(SnapshotCodec::encode_goodbye(client),
                    wire::FrameType::kGoodbye),
      &out));
  EXPECT_EQ(out.uid, client.uid);
}

TEST(SnapshotCodec, SkipsFieldsFromNewerClients) {
  // Simulate a future client: append unknown top-level fields (both kinds)
  // to a valid payload. The decode must ignore them and still recover the
  // snapshot exactly.
  const MonitorSnapshot snap = sample_snapshot();
  std::string payload = frame_payload(
      SnapshotCodec::encode(snap, ClientId{5, 6}), wire::FrameType::kSnapshot);
  wire::FieldWriter w(&payload);
  w.u64(600, 123456789);
  w.str(601, "telemetry from the future");

  DecodedSnapshot decoded;
  ASSERT_TRUE(SnapshotCodec::decode(payload, &decoded));
  EXPECT_EQ(decoded.client.uid, 5u);
  expect_snapshots_equal(decoded.snapshot, snap);
}

TEST(SnapshotCodec, RejectsMalformedPayload) {
  std::string payload = frame_payload(
      SnapshotCodec::encode(sample_snapshot(), ClientId{1, 2}),
      wire::FrameType::kSnapshot);
  payload.resize(payload.size() - 5);  // tear the final field
  DecodedSnapshot decoded;
  EXPECT_FALSE(SnapshotCodec::decode(payload, &decoded));
}

TEST(SessionPublish, ProducesDecodableSelfIdentifyingFrame) {
  SessionOptions opts;
  opts.heap_size = 8 * 1024 * 1024;
  opts.session_uid = 777;
  Session session(opts);
  session.monitor().start();

  const std::string frame = session.publish();
  session.monitor().stop();

  DecodedSnapshot decoded;
  ASSERT_TRUE(SnapshotCodec::decode(
      frame_payload(frame, wire::FrameType::kSnapshot), &decoded));
  EXPECT_EQ(decoded.client.uid, 777u);
  EXPECT_NE(decoded.client.pid, 0u);

  ClientId hello;
  ASSERT_TRUE(SnapshotCodec::decode_client(
      frame_payload(session.hello_frame(), wire::FrameType::kHello), &hello));
  EXPECT_EQ(hello.uid, 777u);
}

TEST(SessionPublish, DefaultUidsAreDistinctWithinProcess) {
  SessionOptions opts;
  opts.heap_size = 8 * 1024 * 1024;
  Session a(opts);
  Session b(opts);
  EXPECT_NE(a.uid(), 0u);
  EXPECT_NE(a.uid(), b.uid());
}

}  // namespace
}  // namespace pred
