// Detailed per-cache-line tracking, allocated lazily once a line's write
// count crosses TrackingThreshold (Section 2.4.1). Stores the two-entry
// history table, the invalidation counter, the per-word access histogram,
// and the per-line sampling state of Section 2.4.3.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "common/cacheline.hpp"
#include "common/check.hpp"
#include "common/spinlock.hpp"
#include "runtime/config.hpp"
#include "runtime/history_table.hpp"
#include "runtime/virtual_line.hpp"
#include "runtime/word_access.hpp"

namespace pred {

class CacheTracker {
 public:
  /// Upper bound on words per line we support inline (covers line sizes up to
  /// 256 bytes at 8-byte words without a secondary allocation).
  static constexpr std::size_t kMaxWords = 32;

  CacheTracker(std::size_t line_index, const LineGeometry& geometry)
      : line_index_(line_index), geometry_(geometry) {
    PRED_CHECK(geometry.words_per_line() <= kMaxWords);
  }

  /// What one tracked access did: whether it fell inside the sampling
  /// window (and was recorded in detail), and whether it registered as a
  /// cache invalidation. The runtime uses `sampled` to decide virtual-line
  /// fan-out and both fields to feed the live monitor's event stream.
  struct AccessOutcome {
    bool sampled = false;
    bool invalidated = false;
  };

  /// Records one access that already passed the runtime's fast path.
  AccessOutcome handle_access(Address addr, AccessType type, ThreadId tid,
                              std::uint64_t sample_window,
                              std::uint64_t sample_interval) {
    const std::uint64_t n =
        access_counter_.fetch_add(1, std::memory_order_relaxed);
    if (n % sample_interval >= sample_window) {
      return {};  // outside the sampling window: count only
    }
    AccessOutcome outcome;
    outcome.sampled = true;
    std::lock_guard<Spinlock> g(lock_);
    ++sampled_accesses_;
    if (type == AccessType::kWrite) {
      ++sampled_writes_;
    } else {
      ++sampled_reads_;
    }
    words_[geometry_.word_in_line(addr)].record(tid, type);
    if (history_.access(tid, type) == HistoryOutcome::kInvalidation) {
      ++invalidations_;
      outcome.invalidated = true;
    }
    return outcome;
  }

  std::size_t line_index() const { return line_index_; }

  // --- snapshot accessors (thread-safe; used by reporting/prediction) ---

  std::uint64_t invalidations() const {
    std::lock_guard<Spinlock> g(lock_);
    return invalidations_;
  }
  std::uint64_t total_accesses() const {
    return access_counter_.load(std::memory_order_relaxed);
  }
  std::uint64_t sampled_accesses() const {
    std::lock_guard<Spinlock> g(lock_);
    return sampled_accesses_;
  }
  std::uint64_t sampled_writes() const {
    std::lock_guard<Spinlock> g(lock_);
    return sampled_writes_;
  }
  std::uint64_t sampled_reads() const {
    std::lock_guard<Spinlock> g(lock_);
    return sampled_reads_;
  }

  /// Copy of the word histogram (size = words_per_line).
  std::vector<WordAccess> words_snapshot() const {
    std::lock_guard<Spinlock> g(lock_);
    return std::vector<WordAccess>(
        words_.begin(), words_.begin() + geometry_.words_per_line());
  }

  // --- virtual line coverage (prediction verification, Section 3.4) ---

  /// Registers a virtual line whose range overlaps this physical line. The
  /// tracker does not own the virtual line; the runtime does.
  void add_virtual_line(VirtualLineTracker* vl) {
    std::lock_guard<Spinlock> g(vl_lock_);
    virtual_lines_.push_back(vl);
    has_virtual_lines_.store(true, std::memory_order_release);
  }

  bool has_virtual_lines() const {
    return has_virtual_lines_.load(std::memory_order_acquire);
  }

  /// Forwards a sampled access to every covering virtual line.
  void update_virtual_lines(Address addr, AccessType type, ThreadId tid) {
    std::lock_guard<Spinlock> g(vl_lock_);
    for (VirtualLineTracker* vl : virtual_lines_) {
      vl->access(addr, type, tid);
    }
  }

  /// Clears the word histogram and history table so a recycled object
  /// starting on this line is not blamed for its predecessor's accesses
  /// (the "updates recording information at memory de-allocations" rule of
  /// Section 2.3.2). Only called for lines with zero invalidations.
  void reset_for_reuse() {
    std::lock_guard<Spinlock> g(lock_);
    history_.reset();
    invalidations_ = 0;
    sampled_accesses_ = sampled_reads_ = sampled_writes_ = 0;
    words_.fill(WordAccess{});
  }

  /// Marks that the predictor already analyzed this line (step 3 of the
  /// Section 3.2 workflow runs once per line). Returns true for the caller
  /// that wins the transition.
  bool try_begin_prediction() {
    return !prediction_done_.exchange(true, std::memory_order_acq_rel);
  }

 private:
  mutable Spinlock lock_;
  HistoryTable history_;
  std::uint64_t invalidations_ = 0;
  std::uint64_t sampled_accesses_ = 0;
  std::uint64_t sampled_reads_ = 0;
  std::uint64_t sampled_writes_ = 0;
  std::array<WordAccess, kMaxWords> words_{};

  std::atomic<std::uint64_t> access_counter_{0};

  mutable Spinlock vl_lock_;
  std::vector<VirtualLineTracker*> virtual_lines_;
  std::atomic<bool> has_virtual_lines_{false};
  std::atomic<bool> prediction_done_{false};

  const std::size_t line_index_;
  const LineGeometry geometry_;
};

}  // namespace pred
