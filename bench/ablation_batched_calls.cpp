// Ablation: batched vs per-access runtime delivery (Section 6 "Improved
// Performance"). Measures live instrumented runtime with the standard
// per-access path against BatchBuffer delivery, and confirms the detection
// verdict is unchanged.
#include <cstdio>

#include "bench_util.hpp"
#include "instrument/batch.hpp"

using namespace pred;
using namespace pred::bench;

namespace {

struct Outcome {
  double seconds = 0.0;
  std::size_t findings = 0;
};

// Direct delivery: every access becomes its own runtime call, replayed at
// the same 64-access interleaving granularity the batched variant uses so
// the two sides see identical access streams.
Outcome run_direct(const wl::Workload& w, const wl::Params& p) {
  Session session(session_options());
  const auto traces = w.capture(session, p);
  Stopwatch sw;
  wl::replay_into_session(session, traces, /*quantum=*/64);
  return {sw.elapsed_seconds(), wl::false_sharing_findings(session.report())};
}

// Batched delivery: replay the captured trace through BatchBuffers, timing
// only the delivery (capture cost is the kernel itself, identical in both
// modes).
Outcome run_batched(const wl::Workload& w, const wl::Params& p) {
  Session session(session_options());
  const auto traces = w.capture(session, p);
  Stopwatch sw;
  std::vector<std::size_t> cursor(traces.size(), 0);
  std::vector<std::unique_ptr<BatchBuffer>> buffers;
  buffers.reserve(traces.size());
  for (std::size_t t = 0; t < traces.size(); ++t) {
    buffers.push_back(
        std::make_unique<BatchBuffer>(session, static_cast<ThreadId>(t)));
  }
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t t = 0; t < traces.size(); ++t) {
      const ThreadTrace& trace = traces[t];
      for (std::size_t q = 0; q < 64 && cursor[t] < trace.size(); ++q) {
        const TraceEvent& ev = trace[cursor[t]++];
        if (ev.type == AccessType::kWrite) {
          buffers[t]->write(reinterpret_cast<void*>(ev.addr), ev.size);
        } else {
          buffers[t]->read(reinterpret_cast<void*>(ev.addr), ev.size);
        }
        progressed = true;
      }
    }
  }
  for (auto& b : buffers) b->flush();
  return {sw.elapsed_seconds(), wl::false_sharing_findings(session.report())};
}

}  // namespace

int main() {
  std::printf("Ablation: per-access vs batched runtime delivery\n\n");
  std::printf("%-20s %14s %14s %10s %10s\n", "workload", "direct (s)",
              "batched (s)", "direct FS", "batch FS");
  print_rule('-', 74);
  for (const char* name :
       {"histogram", "linear_regression", "mysql", "string_match"}) {
    const wl::Workload* w = wl::find_workload(name);
    if (w == nullptr) continue;
    wl::Params p = default_params();
    p.scale = 4;
    const Outcome direct = run_direct(*w, p);
    const Outcome batched = run_batched(*w, p);
    std::printf("%-20s %14.4f %14.4f %10zu %10zu\n", name, direct.seconds,
                batched.seconds, direct.findings, batched.findings);
  }
  print_rule('-', 74);
  std::printf(
      "\nReading the result: batching amortizes the per-access call but "
      "coarsens the\ninterleaving the runtime observes, so low-margin and "
      "prediction-verified\nfindings fade first (linear_regression's latent "
      "bug needs fine interleaving).\nWithin one process the buffer copy "
      "also cancels the call savings — evidence\nfor the paper's Section 6 "
      "preference for *inlined* instrumentation over\nbuffered delivery.\n");
  return 0;
}
