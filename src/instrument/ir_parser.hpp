// Textual IR parser (assembler): the inverse of ir.hpp's to_string()
// disassembler. Lets IR programs be written, versioned, and shipped as
// plain text, then instrumented and executed — and enables round-trip
// property tests (parse(print(m)) == m).
//
// Grammar (one construct per line; '#' starts a comment):
//
//   func NAME(N args, M regs):
//   bbK:
//     rD = const IMM
//     rD = rA
//     rD = rA (+|-|*|/|%|<|==) rB
//     rD = load.SZ [rA (+ OFF)?]
//     store.SZ [rA (+ OFF)?], rB
//     rD = call @F(rA .. N args)
//     memset [rA], VAL, len rB
//     memcpy [rA] <- [rB], len rC
//     br bbK
//     br rA ? bbK : bbJ
//     ret rA
//
// A leading '*' before any instruction marks it instrumented (as the
// disassembler prints).
#pragma once

#include <string>

#include "instrument/ir.hpp"

namespace pred::ir {

struct ParseResult {
  Module module;
  bool ok = false;
  std::string error;  ///< "line N: message" on failure
};

ParseResult parse_module(const std::string& text);

}  // namespace pred::ir
