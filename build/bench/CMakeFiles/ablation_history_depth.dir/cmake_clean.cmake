file(REMOVE_RECURSE
  "CMakeFiles/ablation_history_depth.dir/ablation_history_depth.cpp.o"
  "CMakeFiles/ablation_history_depth.dir/ablation_history_depth.cpp.o.d"
  "ablation_history_depth"
  "ablation_history_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_history_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
