file(REMOVE_RECURSE
  "CMakeFiles/predator_tasking.dir/tasking/fiber_pool.cpp.o"
  "CMakeFiles/predator_tasking.dir/tasking/fiber_pool.cpp.o.d"
  "libpredator_tasking.a"
  "libpredator_tasking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predator_tasking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
