# Empty dependencies file for predator_trace.
# This may be replaced when dependencies are built.
