// Monitor back end: ring registration, the background aggregation thread,
// event folding, lazy object/callsite attribution, incremental top-K, and
// snapshot construction/rendering. Everything here runs off the mutator
// hot path — the emitting side of the monitor lives entirely in
// monitor.hpp / event_ring.hpp.
#include "monitor/monitor.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "runtime/runtime.hpp"

namespace pred {

const char* to_string(MonitorEventType t) {
  switch (t) {
    case MonitorEventType::kLineEscalated: return "line-escalated";
    case MonitorEventType::kInvalidation: return "invalidation";
    case MonitorEventType::kSampleHit: return "sample-hit";
    case MonitorEventType::kPredictionStarted: return "prediction-started";
    case MonitorEventType::kVirtualLineNominated: return "virtual-line";
  }
  return "?";
}

Monitor::Monitor(Runtime& runtime, MonitorConfig config)
    : runtime_(&runtime), config_(config) {}

Monitor::~Monitor() {
  stop();
  // Invalidate every thread's TLS ring binding into this monitor before the
  // rings are freed (the same generation fence Runtime destruction uses for
  // staged-write slots; see write_stage.hpp).
  detail::runtime_generation_counter.fetch_add(1, std::memory_order_acq_rel);
}

void Monitor::start() {
  std::unique_lock<std::mutex> lk(mu_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  aggregator_ = std::thread([this] { aggregator_main(); });
  lk.unlock();
  runtime_->set_monitor(this);
}

void Monitor::stop() {
  // Emission stops first so no new events race the final drain below.
  runtime_->set_monitor(nullptr);
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  aggregator_.join();
  std::lock_guard<std::mutex> lk(mu_);
  running_ = false;
  drain_all_locked();
}

void Monitor::bind_thread_ring() {
  detail::MonitorTls& tls = detail::t_monitor_tls;
  std::lock_guard<std::mutex> lk(mu_);
  EventRing*& slot = ring_by_thread_[std::this_thread::get_id()];
  if (slot == nullptr) {
    rings_.push_back(std::make_unique<EventRing>(config_.ring_capacity));
    slot = rings_.back().get();
  }
  tls.monitor = this;
  tls.ring = slot;
  tls.gen = runtime_generation();
}

void Monitor::aggregator_main() {
  const auto interval =
      std::chrono::milliseconds(std::max<std::uint32_t>(
          1, config_.aggregation_interval_ms));
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_requested_) {
    cv_.wait_for(lk, interval, [this] { return stop_requested_; });
    drain_all_locked();
  }
}

void Monitor::drain_all_locked() {
  bool any = false;
  for (const auto& ring : rings_) {
    any |= ring->drain([this](const MonitorEvent& ev) { fold_locked(ev); }) > 0;
  }
  ++aggregation_passes_;
  if (any) refresh_topk_locked();
}

void Monitor::fold_locked(const MonitorEvent& ev) {
  ++events_seen_;
  // Sampled events only come from lines that own a CacheTracker, so they
  // imply escalation. Folding that in here keeps `escalated` truthful even
  // when the single kLineEscalated event was shed by a drop-oldest ring
  // that severity-blindly preferred the sample flood behind it.
  switch (ev.type) {
    case MonitorEventType::kLineEscalated: {
      LineAgg& agg = lines_[ev.addr];
      if (!agg.escalated) ++escalations_;
      agg.escalated = true;
      break;
    }
    case MonitorEventType::kInvalidation: {
      LineAgg& agg = lines_[ev.addr];
      if (!agg.escalated) ++escalations_;
      agg.escalated = true;
      ++agg.invalidations;
      ++agg.samples;
      agg.sample_writes += ev.arg & 1;
      ++invalidations_;
      ++samples_;
      break;
    }
    case MonitorEventType::kSampleHit: {
      LineAgg& agg = lines_[ev.addr];
      if (!agg.escalated) ++escalations_;
      agg.escalated = true;
      ++agg.samples;
      agg.sample_writes += ev.arg & 1;
      ++samples_;
      break;
    }
    case MonitorEventType::kPredictionStarted: {
      ++lines_[ev.addr].predictions;
      ++predictions_;
      break;
    }
    case MonitorEventType::kVirtualLineNominated: {
      ++virtual_lines_;
      break;
    }
  }
}

void Monitor::resolve_attribution_locked(Address line_start, LineAgg& agg) {
  if (agg.attributed) return;
  // Retry only while the object registry had no answer yet (objects are
  // usually registered before their first access, but globals can lag).
  auto obj = runtime_->objects().find(line_start);
  if (!obj) {
    // The object may start mid-line; probe the line's last byte too.
    obj = runtime_->objects().find(
        line_start + runtime_->config().geometry.line_size - 1);
  }
  agg.attribution_tried = true;
  if (!obj) return;
  agg.attributed = true;
  agg.is_global = obj->is_global;
  agg.object_start = obj->start;
  agg.callsite = obj->callsite;
  if (obj->is_global) {
    agg.label = obj->name;
  } else if (obj->callsite != kNoCallsite) {
    const Callsite& cs = runtime_->callsites().get(obj->callsite);
    if (!cs.frames.empty()) agg.label = cs.frames.back();
  }
}

void Monitor::refresh_topk_locked() {
  // The candidate pool is every line with events — only escalated/tracked
  // lines emit, so this map is orders of magnitude smaller than the shadow
  // space and a partial_sort per pass is cheaper than maintaining a heap
  // against counter updates.
  std::vector<Address> cand;
  cand.reserve(lines_.size());
  for (const auto& [addr, agg] : lines_) cand.push_back(addr);
  const std::size_t k = std::min(config_.top_k, cand.size());
  std::partial_sort(cand.begin(), cand.begin() + k, cand.end(),
                    [this](Address a, Address b) {
                      const LineAgg& la = lines_.at(a);
                      const LineAgg& lb = lines_.at(b);
                      if (la.invalidations != lb.invalidations) {
                        return la.invalidations > lb.invalidations;
                      }
                      if (la.samples != lb.samples) {
                        return la.samples > lb.samples;
                      }
                      return a < b;
                    });
  cand.resize(k);
  topk_ = std::move(cand);
}

MonitorSnapshot Monitor::build_snapshot_locked() {
  MonitorSnapshot snap;
  snap.sequence = ++snapshot_seq_;
  snap.events_seen = events_seen_;
  snap.aggregation_passes = aggregation_passes_;
  snap.escalations = escalations_;
  snap.invalidations = invalidations_;
  snap.samples = samples_;
  snap.predictions = predictions_;
  snap.virtual_lines = virtual_lines_;
  snap.lines_tracked = lines_.size();

  for (const auto& ring : rings_) {
    MonitorSnapshot::RingEntry re;
    re.produced = ring->produced();
    re.consumed = ring->consumed();
    re.dropped = ring->dropped();
    snap.events_dropped += re.dropped;
    snap.rings.push_back(re);
  }

  snap.top_lines.reserve(topk_.size());
  for (Address addr : topk_) {
    LineAgg& agg = lines_[addr];
    resolve_attribution_locked(addr, agg);
    MonitorSnapshot::LineEntry le;
    le.line_start = addr;
    le.invalidations = agg.invalidations;
    le.samples = agg.samples;
    le.sample_writes = agg.sample_writes;
    le.predictions = agg.predictions;
    le.escalated = agg.escalated;
    le.attributed = agg.attributed;
    le.is_global = agg.is_global;
    le.object_start = agg.object_start;
    le.callsite = agg.callsite;
    le.label = agg.label;
    snap.top_lines.push_back(std::move(le));
  }

  // Per-callsite rollup over every hot line (globals keyed by name under
  // kNoCallsite). Recomputed per snapshot from the per-line aggregates —
  // O(hot lines), which stays tiny.
  std::unordered_map<std::string, MonitorSnapshot::CallsiteEntry> by_site;
  for (auto& [addr, agg] : lines_) {
    resolve_attribution_locked(addr, agg);
    if (!agg.attributed) continue;
    const std::string key =
        agg.callsite != kNoCallsite
            ? "c:" + std::to_string(agg.callsite)
            : "g:" + agg.label;
    MonitorSnapshot::CallsiteEntry& ce = by_site[key];
    ce.callsite = agg.callsite;
    if (ce.label.empty()) ce.label = agg.label;
    ce.invalidations += agg.invalidations;
    ce.samples += agg.samples;
    ce.lines += 1;
  }
  snap.callsites.reserve(by_site.size());
  for (auto& [key, ce] : by_site) snap.callsites.push_back(std::move(ce));
  std::sort(snap.callsites.begin(), snap.callsites.end(),
            [](const MonitorSnapshot::CallsiteEntry& a,
               const MonitorSnapshot::CallsiteEntry& b) {
              if (a.invalidations != b.invalidations) {
                return a.invalidations > b.invalidations;
              }
              if (a.samples != b.samples) return a.samples > b.samples;
              return a.label < b.label;
            });
  return snap;
}

MonitorSnapshot Monitor::snapshot() {
  // The report() contract, extended to snapshots: publish the calling
  // thread's staged write counters first (this can escalate lines and emit
  // events into the calling thread's ring), then drain, so everything the
  // caller did program-order-before this call is reflected.
  flush_staged_writes();
  std::lock_guard<std::mutex> lk(mu_);
  drain_all_locked();
  return build_snapshot_locked();
}

namespace {

void append_fmt(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

}  // namespace

std::string format_snapshot(const MonitorSnapshot& snap) {
  std::string out;
  append_fmt(out,
             "=== live monitor snapshot #%" PRIu64 " ===\n"
             "events: %" PRIu64 " aggregated, %" PRIu64
             " dropped (%zu rings, %" PRIu64 " passes)\n"
             "totals: %" PRIu64 " escalated lines, %" PRIu64
             " invalidations, %" PRIu64 " sampled accesses, %" PRIu64
             " predictions, %" PRIu64 " virtual lines\n",
             snap.sequence, snap.events_seen, snap.events_dropped,
             snap.rings.size(), snap.aggregation_passes, snap.escalations,
             snap.invalidations, snap.samples, snap.predictions,
             snap.virtual_lines);
  if (!snap.top_lines.empty()) {
    append_fmt(out, "top %zu lines (of %zu with events):\n",
               snap.top_lines.size(), snap.lines_tracked);
    for (const auto& le : snap.top_lines) {
      append_fmt(out,
                 "  0x%012" PRIxPTR "  inv %-8" PRIu64 " samples %-8" PRIu64
                 " writes %-8" PRIu64 "%s",
                 le.line_start, le.invalidations, le.samples,
                 le.sample_writes, le.escalated ? " [tracked]" : "");
      if (le.attributed) {
        append_fmt(out, " %s %s", le.is_global ? "global" : "heap",
                   le.label.c_str());
      }
      out += '\n';
    }
  }
  if (!snap.callsites.empty()) {
    out += "hot callsites:\n";
    for (const auto& ce : snap.callsites) {
      append_fmt(out,
                 "  %-40s inv %-8" PRIu64 " samples %-8" PRIu64 " (%zu %s)\n",
                 ce.label.empty() ? "(unnamed)" : ce.label.c_str(),
                 ce.invalidations, ce.samples, ce.lines,
                 ce.lines == 1 ? "line" : "lines");
    }
  }
  if (snap.events_dropped > 0) {
    out += "per-ring backpressure:\n";
    for (std::size_t i = 0; i < snap.rings.size(); ++i) {
      const auto& re = snap.rings[i];
      if (re.dropped == 0) continue;
      append_fmt(out,
                 "  ring %zu: produced %" PRIu64 " consumed %" PRIu64
                 " dropped %" PRIu64 "\n",
                 i, re.produced, re.consumed, re.dropped);
    }
  }
  return out;
}

std::string Monitor::snapshot_text() { return format_snapshot(snapshot()); }

}  // namespace pred
