// Planted-false-sharing workloads the repair verifier closes the loop on.
// Each target is a tiny deterministic program with a known sharing defect —
// one per plan backend:
//
//   * "counter_pool": per-thread 16-byte heap counters allocated by one hot
//     callsite, packed four to a line by the thread heap. Repaired by the
//     ALLOCATOR backend: PredatorAllocator pads the callsite's requests to
//     pad_to, and the size classes then line-align them naturally.
//   * "global_grid": a packed global array of 16-byte per-thread slots
//     accessed by generated mini-IR slot kernels. Repaired by the IR
//     REWRITE backend: apply_repair_rewrite retargets every slot access to
//     the padded layout of a line-strided buffer.
//
// Both compute a layout-independent checksum, so the verifier can assert
// bit-identical results across the repair.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "api/predator.hpp"
#include "repair/plan.hpp"
#include "sim/executor.hpp"

namespace pred::repair {

/// One target run: the per-thread traces to replay/simulate, the workload's
/// observable result, and whatever memory backs the traced addresses.
struct RunResult {
  std::vector<ThreadTrace> traces;  ///< traces[t] is logical thread t
  std::uint64_t checksum = 0;       ///< layout-independent observable
  /// Keeps the accessed memory alive (and its addresses meaningful) until
  /// the traces have been replayed and simulated. May be null when the
  /// session itself owns the memory (heap targets).
  std::shared_ptr<void> keep_alive;
};

class RepairTarget {
 public:
  virtual ~RepairTarget() = default;
  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;

  /// Runs the workload against `session` (allocating or registering its
  /// data there) and captures per-thread traces sequentially. `plan` is
  /// null for the baseline run. Targets repaired through the allocator
  /// ignore it — the verifier installs the plan into session.allocator()
  /// before calling — while targets repaired through the IR rewrite consume
  /// the matching entry directly.
  virtual RunResult run(Session& session, const RepairPlan* plan,
                        std::uint32_t threads, std::uint64_t scale) const = 0;
};

/// The built-in targets, in a stable order.
const std::vector<const RepairTarget*>& all_repair_targets();

/// Lookup by name(); nullptr when unknown.
const RepairTarget* find_repair_target(std::string_view name);

}  // namespace pred::repair
