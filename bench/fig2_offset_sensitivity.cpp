// Figure 2 reproduction: linear_regression runtime vs the offset of the
// falsely-shareable object from its cache line start.
//
// The paper measures wall-clock on an 8-core Xeon; this bench replays the
// identical per-thread access traces through the 8-core cache simulator
// (see DESIGN.md substitution table) and reports modeled runtime. Expected
// shape: fast at offsets 0 and 56 (hot fields fit in private lines), a
// cliff everywhere else, worst near 24, with a >=10x swing.
#include <cstdio>

#include "bench_util.hpp"

using namespace pred;
using namespace pred::bench;

int main() {
  const wl::Workload* lreg = wl::find_workload("linear_regression");
  if (lreg == nullptr) return 1;

  std::printf("Figure 2: linear_regression object-alignment sensitivity\n");
  std::printf("(event-driven cache simulation, 8 cores)\n\n");
  std::printf("%-10s %-14s %-12s\n", "offset", "runtime (s)", "vs offset 0");
  print_rule('-', 40);

  double at0 = 0.0;
  double best = 1e300;
  double worst = 0.0;
  std::size_t worst_offset = 0;
  for (std::size_t offset = 0; offset < 64; offset += 8) {
    wl::Params p = default_params();
    p.offset = offset;
    const double secs = modeled_seconds(*lreg, p);
    if (offset == 0) at0 = secs;
    if (secs < best) best = secs;
    if (secs > worst) {
      worst = secs;
      worst_offset = offset;
    }
    std::printf("%-10zu %-14.4f %-12.2f\n", offset, secs, secs / at0);
  }
  print_rule('-', 40);
  std::printf("\nworst/best ratio: %.1fx at offset %zu "
              "(paper: ~15x at offset 24)\n",
              worst / best, worst_offset);
  return 0;
}
