// SHERIFF-style baseline (Liu & Berger, OOPSLA '11; Section 7.3 of the
// PREDATOR paper): an *observed-only*, *write-write-only* false sharing
// detector. It sees the same access stream as PREDATOR but
//   * ignores reads entirely (so read-write false sharing is invisible),
//   * considers only the physical lines of the current layout (so latent
//     placements and larger line sizes are invisible).
// Used by the Table 1 bench to populate the "Without Prediction" column and
// to show which problems only PREDATOR finds.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/cacheline.hpp"
#include "common/spinlock.hpp"

namespace pred {

class SheriffLikeDetector {
 public:
  explicit SheriffLikeDetector(LineGeometry geometry = {})
      : geometry_(geometry) {}

  void on_write(Address addr, ThreadId tid);
  void on_read(Address /*addr*/, ThreadId /*tid*/) {}  // not tracked
  void on_access(Address addr, AccessType type, ThreadId tid) {
    if (type == AccessType::kWrite) on_write(addr, tid);
  }

  struct LineReport {
    std::size_t line = 0;            ///< global line index
    std::uint64_t writes = 0;
    std::uint64_t interleavings = 0; ///< writer changed between writes
    std::uint32_t writer_threads = 0;
    bool write_write_false_sharing = false;  ///< distinct words, distinct writers
  };

  /// Lines with at least `min_interleavings` observed writer switches,
  /// most-interleaved first.
  std::vector<LineReport> report(std::uint64_t min_interleavings) const;

 private:
  struct LineInfo {
    std::uint64_t writes = 0;
    std::uint64_t interleavings = 0;
    ThreadId last_writer = kInvalidThread;
    std::uint64_t word_writer_mask[32] = {};  ///< per word, bitmask of writers
  };

  LineGeometry geometry_;
  mutable Spinlock lock_;
  std::unordered_map<std::size_t, LineInfo> lines_;
};

}  // namespace pred
