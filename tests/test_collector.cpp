// Tests for the fleet merge algebra (monitor/snapshot_merge.hpp) and the
// sharded Collector (src/collect/):
//
//   - algebra laws: the join is commutative, associative, and idempotent
//     over randomized snapshot sets, so any delivery order / merge tree /
//     redelivery converges to one state;
//   - per-(client, line) retention when a line falls out of a client's
//     top-K between snapshots;
//   - drop reconciliation: with real ring overflow, the rollup's
//     [exact, exact+dropped] bounds cover a lossless oracle run of the
//     identical event stream;
//   - shard consistency: 64 simulated clients ingested concurrently
//     through every shard configuration match the sequential oracle fold
//     exactly, frames arriving in any order;
//   - transports: loopback sink and corrupt-frame rejection.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <thread>
#include <vector>

#include "api/predator.hpp"
#include "collect/collector.hpp"
#include "collect/transport.hpp"
#include "monitor/snapshot_merge.hpp"
#include "trace/snapshot_codec.hpp"

namespace pred {
namespace {

// Deterministic snapshot generator: per client, a cumulative series with
// overlapping lines/sites across clients and occasional ring drops.
MonitorSnapshot synth_snapshot(std::mt19937_64& rng, std::uint64_t sequence) {
  MonitorSnapshot s;
  s.sequence = sequence;
  s.events_seen = sequence * 1000 + rng() % 100;
  s.events_dropped = rng() % 5 == 0 ? rng() % 200 : 0;
  s.aggregation_passes = sequence;
  s.escalations = rng() % 8;
  s.invalidations = sequence * 50 + rng() % 50;
  s.samples = s.invalidations * 2;
  s.predictions = rng() % 4;
  s.virtual_lines = rng() % 6;
  s.lines_tracked = 1 + rng() % 6;

  const std::size_t lines = 1 + rng() % 5;
  for (std::size_t i = 0; i < lines; ++i) {
    MonitorSnapshot::LineEntry le;
    le.line_start = 0x4000000000ull + 64 * (rng() % 12);
    le.invalidations = rng() % 1000;
    le.samples = le.invalidations + rng() % 100;
    le.sample_writes = le.samples / 2;
    le.escalated = rng() % 2 == 0;
    le.attributed = true;
    le.callsite = static_cast<CallsiteId>(1 + rng() % 3);
    le.label = "app.c:" + std::to_string(10 + rng() % 3);
    s.top_lines.push_back(le);
  }
  const std::size_t sites = 1 + rng() % 3;
  for (std::size_t i = 0; i < sites; ++i) {
    MonitorSnapshot::CallsiteEntry ce;
    ce.callsite = static_cast<CallsiteId>(1 + rng() % 3);
    ce.label = "app.c:" + std::to_string(10 + rng() % 3);
    ce.invalidations = rng() % 1000;
    ce.samples = ce.invalidations * 2;
    ce.lines = 1 + rng() % 4;
    s.callsites.push_back(ce);
  }
  s.rings.push_back({s.events_seen + s.events_dropped, s.events_seen,
                     s.events_dropped});
  return s;
}

struct Delivery {
  std::uint64_t uid;
  std::uint64_t pid;
  MonitorSnapshot snap;
};

std::vector<Delivery> synth_fleet(std::uint64_t seed, std::size_t clients,
                                  std::size_t snaps_per_client) {
  std::mt19937_64 rng(seed);
  std::vector<Delivery> out;
  for (std::size_t c = 0; c < clients; ++c) {
    for (std::size_t n = 1; n <= snaps_per_client; ++n) {
      out.push_back({100 + c, 5000 + c, synth_snapshot(rng, n)});
    }
  }
  return out;
}

FleetState fold(const std::vector<Delivery>& deliveries) {
  FleetState state;
  for (const Delivery& d : deliveries) state.absorb(d.uid, d.pid, d.snap);
  return state;
}

TEST(MergeAlgebra, JoinIsCommutative) {
  const std::vector<Delivery> deliveries = synth_fleet(1, 6, 5);
  const FleetState in_order = fold(deliveries);

  std::vector<Delivery> shuffled = deliveries;
  std::mt19937_64 rng(99);
  for (int round = 0; round < 10; ++round) {
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    EXPECT_TRUE(fold(shuffled) == in_order) << "round " << round;
  }
}

TEST(MergeAlgebra, JoinIsAssociative) {
  const std::vector<Delivery> deliveries = synth_fleet(2, 6, 4);
  const FleetState flat = fold(deliveries);

  // Every split point: (prefix) merge (suffix) must equal the flat fold —
  // sub-collectors merging into a root see the same state as one flat
  // collector.
  for (std::size_t cut = 0; cut <= deliveries.size(); cut += 3) {
    FleetState left = fold({deliveries.begin(), deliveries.begin() + cut});
    const FleetState right =
        fold({deliveries.begin() + cut, deliveries.end()});
    left.merge(right);
    EXPECT_TRUE(left == flat) << "cut " << cut;
  }

  // A deeper tree: pairwise merge of four quarters.
  const std::size_t q = deliveries.size() / 4;
  FleetState q1 = fold({deliveries.begin(), deliveries.begin() + q});
  const FleetState q2 =
      fold({deliveries.begin() + q, deliveries.begin() + 2 * q});
  FleetState q3 =
      fold({deliveries.begin() + 2 * q, deliveries.begin() + 3 * q});
  const FleetState q4 = fold({deliveries.begin() + 3 * q, deliveries.end()});
  q1.merge(q2);
  q3.merge(q4);
  q1.merge(q3);
  EXPECT_TRUE(q1 == flat);
}

TEST(MergeAlgebra, JoinIsIdempotent) {
  const std::vector<Delivery> deliveries = synth_fleet(3, 5, 4);
  const FleetState once = fold(deliveries);

  // Redelivery: every frame absorbed twice.
  FleetState twice;
  for (const Delivery& d : deliveries) {
    twice.absorb(d.uid, d.pid, d.snap);
    twice.absorb(d.uid, d.pid, d.snap);
  }
  EXPECT_TRUE(twice == once);

  // Self-merge.
  FleetState self = fold(deliveries);
  self.merge(once);
  EXPECT_TRUE(self == once);

  // Empty is the identity.
  FleetState plus_empty = fold(deliveries);
  plus_empty.merge(FleetState{});
  EXPECT_TRUE(plus_empty == once);
  FleetState from_empty;
  from_empty.merge(once);
  EXPECT_TRUE(from_empty == once);
}

TEST(MergeAlgebra, RetainsLinesThatFellOutOfTopK) {
  std::mt19937_64 rng(4);
  MonitorSnapshot first = synth_snapshot(rng, 1);
  first.top_lines.resize(1);
  first.top_lines[0].line_start = 0x4000000040;
  first.top_lines[0].invalidations = 500;

  // The next cumulative snapshot no longer mentions that line (another got
  // hotter and pushed it out of top-K).
  MonitorSnapshot second = synth_snapshot(rng, 2);
  second.top_lines.resize(1);
  second.top_lines[0].line_start = 0x4000000080;
  second.top_lines[0].invalidations = 9000;

  FleetState state;
  state.absorb(1, 1, first);
  state.absorb(1, 1, second);
  const FleetRollup rollup = state.rollup(16);
  ASSERT_EQ(rollup.top_lines.size(), 2u);
  // Monotone counters: the stale entry remains a valid lower bound.
  EXPECT_EQ(rollup.top_lines[0].line_start, 0x4000000080u);
  EXPECT_EQ(rollup.top_lines[0].invalidations, 9000u);
  EXPECT_EQ(rollup.top_lines[1].line_start, 0x4000000040u);
  EXPECT_EQ(rollup.top_lines[1].invalidations, 500u);
}

TEST(MergeAlgebra, StaleRedeliveryDoesNotRegressState) {
  std::mt19937_64 rng(5);
  const MonitorSnapshot old_snap = synth_snapshot(rng, 3);
  const MonitorSnapshot new_snap = synth_snapshot(rng, 9);

  FleetState state;
  state.absorb(7, 7, old_snap);
  state.absorb(7, 7, new_snap);
  FleetState expect = state;
  state.absorb(7, 7, old_snap);  // late duplicate of the old frame
  EXPECT_TRUE(state == expect);
  EXPECT_EQ(state.rollup(4).events_seen, new_snap.events_seen);
}

TEST(MergeAlgebra, RollupBoundsChargeDrops) {
  MonitorSnapshot a;
  a.sequence = 1;
  a.invalidations = 100;
  a.samples = 200;
  a.events_dropped = 40;
  MonitorSnapshot::LineEntry le;
  le.line_start = 0x40;
  le.invalidations = 100;
  le.samples = 200;
  a.top_lines.push_back(le);

  MonitorSnapshot b;
  b.sequence = 1;
  b.invalidations = 10;
  b.samples = 20;
  b.events_dropped = 0;
  le.line_start = 0x80;
  le.invalidations = 10;
  le.samples = 20;
  b.top_lines.push_back(le);

  FleetState state;
  state.absorb(1, 1, a);
  state.absorb(2, 2, b);
  const FleetRollup rollup = state.rollup(8);
  EXPECT_EQ(rollup.invalidations, 110u);
  EXPECT_EQ(rollup.invalidations_upper, 150u);  // fleet-wide drops charged
  EXPECT_EQ(rollup.samples, 220u);
  EXPECT_EQ(rollup.samples_upper, 260u);
  ASSERT_EQ(rollup.top_lines.size(), 2u);
  // Per-line upper charges only the owning client's drops.
  EXPECT_EQ(rollup.top_lines[0].line_start, 0x40u);
  EXPECT_EQ(rollup.top_lines[0].invalidations_upper, 140u);
  EXPECT_EQ(rollup.top_lines[1].line_start, 0x80u);
  EXPECT_EQ(rollup.top_lines[1].invalidations_upper, 10u);
}

// Drive the identical deterministic event stream through a lossless
// monitor (huge rings) and a lossy one (tiny rings, sleepy aggregator that
// must shed). The fleet bounds from the lossy run must cover the lossless
// oracle's exact totals.
TEST(DropReconciliation, BoundsCoverLosslessOracle) {
  auto run = [](std::size_t ring_capacity) {
    SessionOptions o;
    o.heap_size = 8 * 1024 * 1024;
    o.runtime.tracking_threshold = 2;
    o.monitor.ring_capacity = ring_capacity;
    o.monitor.aggregation_interval_ms = 50;  // rely on demand drains
    Session s(o);
    s.monitor().start();
    auto* data = static_cast<long*>(
        s.alloc(64, s.intern_frames({"drop.c:1"})));
    for (int i = 0; i < 20000; ++i) {
      s.record(&data[0], AccessType::kWrite, 0, 8);
      s.record(&data[1], AccessType::kWrite, 1, 8);
    }
    const MonitorSnapshot snap = s.monitor().snapshot();
    s.monitor().stop();
    return snap;
  };

  const MonitorSnapshot lossless = run(1u << 16);
  const MonitorSnapshot lossy = run(8);
  ASSERT_EQ(lossless.events_dropped, 0u);
  ASSERT_GT(lossy.events_dropped, 0u) << "tiny ring failed to shed";

  FleetState state;
  state.absorb(1, 1, lossy);
  const FleetRollup rollup = state.rollup(8);
  // The lossless invalidation total lies inside [exact, exact+dropped].
  EXPECT_LE(rollup.invalidations, lossless.invalidations);
  EXPECT_GE(rollup.invalidations_upper, lossless.invalidations);
  EXPECT_LE(rollup.samples, lossless.samples);
  EXPECT_GE(rollup.samples_upper, lossless.samples);
}

TEST(Collector, MatchesOracleForEveryShardCountAndOrder) {
  const std::vector<Delivery> deliveries = synth_fleet(6, 8, 4);
  const FleetState oracle = fold(deliveries);

  std::mt19937_64 rng(123);
  for (const std::size_t shards : {1u, 2u, 3u, 8u, 64u}) {
    std::vector<Delivery> shuffled = deliveries;
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    CollectorConfig config;
    config.shards = shards;
    Collector collector(config);
    EXPECT_EQ(collector.num_shards(), shards);
    for (const Delivery& d : shuffled) {
      collector.ingest(d.uid, d.pid, d.snap);
    }
    EXPECT_TRUE(collector.state() == oracle) << shards << " shard(s)";
  }
}

TEST(Collector, SixtyFourClientConcurrentIngestMatchesOracle) {
  // 64 simulated clients, frames interleaved across 8 ingest threads.
  // Whatever the interleaving, the sharded state must equal the
  // sequential oracle fold — that is the algebra's whole point.
  const std::vector<Delivery> deliveries = synth_fleet(7, 64, 3);
  const FleetState oracle = fold(deliveries);

  CollectorConfig config;
  config.shards = 8;
  Collector collector(config);

  // Pre-encode every frame, then blast them concurrently.
  std::vector<std::string> frames;
  frames.reserve(deliveries.size());
  for (const Delivery& d : deliveries) {
    frames.push_back(
        SnapshotCodec::encode(d.snap, ClientId{d.uid, d.pid}));
  }
  constexpr std::size_t kThreads = 8;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t i = t; i < frames.size(); i += kThreads) {
        EXPECT_TRUE(collector.ingest_frame(frames[i]));
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_TRUE(collector.state() == oracle);
  const Collector::Stats stats = collector.stats();
  EXPECT_EQ(stats.snapshots_ingested, deliveries.size());
  EXPECT_EQ(stats.frames_rejected, 0u);
  EXPECT_EQ(collector.rollup().clients, 64u);
}

TEST(Collector, LoopbackSinkDeliversSessionFrames) {
  Collector collector;
  LoopbackSink sink(collector);

  SessionOptions opts;
  opts.heap_size = 8 * 1024 * 1024;
  opts.session_uid = 42;
  Session session(opts);
  session.monitor().start();
  EXPECT_TRUE(sink.send(session.hello_frame()));
  EXPECT_TRUE(sink.send(session.publish()));
  EXPECT_TRUE(sink.send(session.goodbye_frame()));
  session.monitor().stop();

  const Collector::Stats stats = collector.stats();
  EXPECT_EQ(stats.hellos, 1u);
  EXPECT_EQ(stats.snapshots_ingested, 1u);
  EXPECT_EQ(stats.goodbyes, 1u);
  EXPECT_EQ(collector.rollup().clients, 1u);
}

TEST(Collector, RejectsCorruptAndForeignFrames) {
  Collector collector;
  std::string frame = SnapshotCodec::encode(MonitorSnapshot{}, ClientId{1, 1});
  frame[frame.size() - 1] ^= 0x10;  // torn payload
  EXPECT_FALSE(collector.ingest_frame(frame));

  // Structurally valid frame of a type that has no business here.
  EXPECT_FALSE(collector.ingest_frame(
      wire::encode_frame(wire::FrameType::kTraceHeader, "")));

  const Collector::Stats stats = collector.stats();
  EXPECT_EQ(stats.frames_rejected, 2u);
  EXPECT_EQ(stats.frames_ingested, 0u);
  EXPECT_EQ(collector.rollup().clients, 0u);
}

}  // namespace
}  // namespace pred
