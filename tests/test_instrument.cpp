// Tests for the instrumentation substrate: the mini-IR builder and
// interpreter, and the instrumentation pass's Section 2.2/2.4.2 decisions
// (selective per-block dedup, redefinition invalidation, writes-only mode,
// black/whitelists) — plus an end-to-end run where instrumented IR feeds the
// detection runtime.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "instrument/access.hpp"
#include "instrument/analyze_tool.hpp"
#include "instrument/interp.hpp"
#include "instrument/pass.hpp"

namespace pred::ir {
namespace {

TEST(Interpreter, StraightLineArithmetic) {
  FunctionBuilder b("arith", 2);
  const Reg r = b.add(b.arg(0), b.arg(1));
  const Reg r2 = b.mul(r, b.const_val(3));
  b.ret(r2);
  const Function fn = b.take();
  Interpreter interp;
  const std::int64_t args[] = {4, 5};
  EXPECT_EQ(interp.run(fn, args).return_value, 27);
}

TEST(Interpreter, LoadsAndStoresHitRealMemory) {
  alignas(8) std::int64_t cell = 41;
  FunctionBuilder b("incr", 1);
  const Reg addr = b.arg(0);
  const Reg v = b.load(addr);
  const Reg v2 = b.add(v, b.const_val(1));
  b.store(addr, v2);
  b.ret(v2);
  const Function fn = b.take();
  Interpreter interp;
  const std::int64_t args[] = {static_cast<std::int64_t>(
      reinterpret_cast<std::intptr_t>(&cell))};
  EXPECT_EQ(interp.run(fn, args).return_value, 42);
  EXPECT_EQ(cell, 42);
}

TEST(Interpreter, NarrowAccessesSignExtend) {
  unsigned char byte = 0xff;
  FunctionBuilder b("loadb", 1);
  b.ret(b.load(b.arg(0), 0, 1));
  const Function fn = b.take();
  Interpreter interp;
  const std::int64_t args[] = {static_cast<std::int64_t>(
      reinterpret_cast<std::intptr_t>(&byte))};
  EXPECT_EQ(interp.run(fn, args).return_value, -1);
}

TEST(Interpreter, LoopsAndBranches) {
  // while (i < n) { i = i + 1 } return i
  FunctionBuilder b("count", 1);
  const Reg n = b.arg(0);
  const Reg i = b.fresh_reg();
  const std::uint32_t header = b.new_block();
  const std::uint32_t body = b.new_block();
  const std::uint32_t done = b.new_block();
  b.br(header);
  b.set_block(header);
  b.cond_br(b.cmp_lt(i, n), body, done);
  b.set_block(body);
  const Reg one = b.const_val(1);
  const Reg i2 = b.add(i, one);
  b.move(i, i2);
  b.br(header);
  b.set_block(done);
  b.ret(i);
  const Function fn = b.take();
  Interpreter interp;
  const std::int64_t args[] = {37};
  EXPECT_EQ(interp.run(fn, args).return_value, 37);
}

TEST(Interpreter, StepLimitTrips) {
  FunctionBuilder b("spin", 0);
  b.br(0);  // infinite loop in block 0
  const Function fn = b.take();
  Interpreter interp(nullptr, /*step_limit=*/1000);
  const auto result = interp.run(fn, {});
  EXPECT_TRUE(result.step_limit_exceeded);
  EXPECT_EQ(result.steps, 1000u);
}

TEST(Pass, MarksEveryUniqueAccessOnce) {
  Module m;
  {
    FunctionBuilder b("f", 1);
    const Reg a = b.arg(0);
    b.store(a, b.const_val(1));       // store a+0
    (void)b.load(a);                  // load a+0
    (void)b.load(a);                  // duplicate load a+0
    b.store(a, b.const_val(2));       // duplicate store a+0
    (void)b.load(a, 8);               // load a+8: distinct offset
    b.ret(b.const_val(0));
    m.functions.push_back(b.take());
  }
  const PassStats stats = run_instrumentation_pass(m, {});
  EXPECT_EQ(stats.candidate_accesses, 5u);
  EXPECT_EQ(stats.instrumented_accesses, 3u);
  EXPECT_EQ(stats.skipped_duplicates, 2u);
  EXPECT_TRUE(stats.reconciles());
}

TEST(Pass, IntrinsicsAreCountedApartAndTotalsReconcile) {
  // memset/memcpy sites are not per-address candidates: they land in
  // intrinsic_accesses, and the candidate ledger must still balance:
  //   candidate = instrumented + duplicates + reads + batched + merged.
  Module m;
  {
    FunctionBuilder b("mixed", 3);  // r0 = dst, r1 = src, r2 = len
    b.mem_set(b.arg(0), b.arg(2), 0);
    (void)b.load(b.arg(0));
    (void)b.load(b.arg(0));  // per-block duplicate
    b.mem_copy(b.arg(0), b.arg(1), b.arg(2));
    b.store(b.arg(0), b.const_val(1), 8);
    b.ret(b.const_val(0));
    m.functions.push_back(b.take());
  }
  PassOptions opt;
  opt.mode = InstrumentMode::kWritesOnly;
  const PassStats stats = run_instrumentation_pass(m, opt);
  EXPECT_EQ(stats.intrinsic_accesses, 2u);  // memset + memcpy
  EXPECT_EQ(stats.candidate_accesses, 3u);  // two loads + one store
  EXPECT_EQ(stats.skipped_reads, 2u);
  EXPECT_EQ(stats.instrumented_accesses, 1u);
  EXPECT_EQ(stats.skipped_duplicates, 0u);
  EXPECT_TRUE(stats.reconciles());
  // Intrinsics are instrumented regardless of writes-only mode (the runtime
  // sees their writes; memcpy's read half is a runtime-side decision).
  EXPECT_TRUE(m.functions[0].blocks[0].instrs[0].instrumented);
}

TEST(Pass, RedefinitionInvalidatesRememberedAddresses) {
  // A function where the address register is loaded through, redefined,
  // then loaded through again: the second load must be instrumented even
  // though (register, offset) looks identical.
  Function fn;
  fn.name = "h";
  fn.num_args = 1;
  fn.num_regs = 2;
  fn.blocks.emplace_back();
  auto& instrs = fn.blocks[0].instrs;
  instrs.push_back({.op = Opcode::kLoad, .dst = 1, .a = 0});
  instrs.push_back({.op = Opcode::kAdd, .dst = 0, .a = 0, .b = 1});  // r0 redefined
  instrs.push_back({.op = Opcode::kLoad, .dst = 1, .a = 0});  // must instrument
  instrs.push_back({.op = Opcode::kRet, .a = 1});
  Module m2;
  m2.functions.push_back(fn);
  const PassStats stats = run_instrumentation_pass(m2, {});
  EXPECT_EQ(stats.instrumented_accesses, 2u);
  EXPECT_EQ(stats.skipped_duplicates, 0u);
}

TEST(Pass, BlockBoundariesResetDedup) {
  Function fn;
  fn.name = "blocks";
  fn.num_args = 1;
  fn.num_regs = 2;
  fn.blocks.resize(2);
  fn.blocks[0].instrs.push_back({.op = Opcode::kLoad, .dst = 1, .a = 0});
  fn.blocks[0].instrs.push_back({.op = Opcode::kBr, .target = 1});
  fn.blocks[1].instrs.push_back({.op = Opcode::kLoad, .dst = 1, .a = 0});
  fn.blocks[1].instrs.push_back({.op = Opcode::kRet, .a = 1});
  Module m;
  m.functions.push_back(fn);
  const PassStats stats = run_instrumentation_pass(m, {});
  // Same address, but different basic blocks: both instrumented.
  EXPECT_EQ(stats.instrumented_accesses, 2u);
}

TEST(Pass, WritesOnlyModeSkipsReads) {
  Module m;
  {
    FunctionBuilder b("w", 1);
    (void)b.load(b.arg(0));
    b.store(b.arg(0), b.const_val(1), 8);
    b.ret(b.const_val(0));
    m.functions.push_back(b.take());
  }
  PassOptions opt;
  opt.mode = InstrumentMode::kWritesOnly;
  const PassStats stats = run_instrumentation_pass(m, opt);
  EXPECT_EQ(stats.skipped_reads, 1u);
  EXPECT_EQ(stats.instrumented_accesses, 1u);
  EXPECT_TRUE(stats.reconciles());
}

TEST(Pass, BlacklistAndWhitelist) {
  Module m;
  for (const char* name : {"hot", "cold", "skipme"}) {
    FunctionBuilder b(name, 1);
    (void)b.load(b.arg(0));
    b.ret(b.const_val(0));
    m.functions.push_back(b.take());
  }
  PassOptions opt;
  opt.whitelist = {"hot", "skipme"};
  opt.blacklist = {"skipme"};
  const PassStats stats = run_instrumentation_pass(m, opt);
  EXPECT_EQ(stats.skipped_functions, 2u);  // cold (not whitelisted), skipme
  EXPECT_EQ(stats.instrumented_accesses, 1u);
  EXPECT_TRUE(m.find("hot")->blocks[0].instrs[0].instrumented);
  EXPECT_FALSE(m.find("cold")->blocks[0].instrs[0].instrumented);
}

TEST(Pass, DisablingSelectiveInstrumentsEverything) {
  Module m;
  {
    FunctionBuilder b("all", 1);
    (void)b.load(b.arg(0));
    (void)b.load(b.arg(0));
    (void)b.load(b.arg(0));
    b.ret(b.const_val(0));
    m.functions.push_back(b.take());
  }
  PassOptions opt;
  opt.selective = false;
  const PassStats stats = run_instrumentation_pass(m, opt);
  EXPECT_EQ(stats.instrumented_accesses, 3u);
}

// --- calls, intrinsics, verifier, disassembler -----------------------------

TEST(Interpreter, FunctionCallsResolveThroughModule) {
  Module m;
  {
    FunctionBuilder b("double_it", 1);
    const Reg two = b.const_val(2);
    b.ret(b.mul(b.arg(0), two));
    m.functions.push_back(b.take());
  }
  {
    FunctionBuilder b("caller", 1);
    // call double_it(arg0) twice: 4 * arg0
    const Reg once = b.call(0, b.arg(0), 1);
    b.move(b.arg(0), once);
    const Reg twice = b.call(0, b.arg(0), 1);
    b.ret(twice);
    m.functions.push_back(b.take());
  }
  ASSERT_EQ(verify(m), "");
  Interpreter interp;
  const std::int64_t args[] = {5};
  EXPECT_EQ(interp.run(m, *m.find("caller"), args).return_value, 20);
}

TEST(Interpreter, CallDepthIsBounded) {
  Module m;
  {
    FunctionBuilder b("recurse", 1);
    const Reg r = b.call(0, b.arg(0), 1);  // calls itself forever
    b.ret(r);
    m.functions.push_back(b.take());
  }
  ASSERT_EQ(verify(m), "");
  Interpreter interp;
  const std::int64_t args[] = {1};
  EXPECT_DEATH(interp.run(m, m.functions[0], args), "depth");
}

TEST(Interpreter, MemSetIntrinsicWritesAndInstruments) {
  SessionOptions opts;
  opts.runtime.tracking_threshold = 2;
  opts.runtime.set_sampling_rate(1.0);
  opts.heap_size = 4 * 1024 * 1024;
  Session session(opts);
  auto* buf = static_cast<unsigned char*>(session.alloc(64, session.intern_frames({"ms.c:1"})));
  std::memset(buf, 0xee, 64);

  Module m;
  {
    FunctionBuilder b("clear", 2);  // r0 = addr, r1 = len
    b.mem_set(b.arg(0), b.arg(1), 0);
    b.ret(b.const_val(0));
    m.functions.push_back(b.take());
  }
  ASSERT_EQ(verify(m), "");
  run_instrumentation_pass(m, {});
  Interpreter interp(&session);
  const std::int64_t args[] = {
      static_cast<std::int64_t>(reinterpret_cast<std::intptr_t>(buf)), 20};
  const auto res = interp.run(m, m.functions[0], args);
  EXPECT_EQ(res.runtime_calls, 3u);  // 8 + 8 + 4 bytes
  for (int i = 0; i < 20; ++i) EXPECT_EQ(buf[i], 0);
  EXPECT_EQ(buf[20], 0xee);
}

TEST(Interpreter, MemCopyIntrinsicMovesBytes) {
  alignas(8) char src[24] = "predator-memcpy-tests!";
  alignas(8) char dst[24] = {};
  Module m;
  {
    FunctionBuilder b("copy", 3);  // r0 = dst, r1 = src, r2 = len
    b.mem_copy(b.arg(0), b.arg(1), b.arg(2));
    b.ret(b.const_val(0));
    m.functions.push_back(b.take());
  }
  ASSERT_EQ(verify(m), "");
  Interpreter interp;
  const std::int64_t args[] = {
      static_cast<std::int64_t>(reinterpret_cast<std::intptr_t>(dst)),
      static_cast<std::int64_t>(reinterpret_cast<std::intptr_t>(src)), 23};
  interp.run(m, m.functions[0], args);
  EXPECT_STREQ(dst, src);
}

TEST(Verifier, AcceptsWellFormedFunctions) {
  Module m;
  FunctionBuilder b("ok", 1);
  const Reg v = b.load(b.arg(0));
  b.ret(v);
  m.functions.push_back(b.take());
  EXPECT_EQ(verify(m), "");
}

TEST(Verifier, RejectsMissingTerminator) {
  Function fn;
  fn.name = "bad";
  fn.num_regs = 1;
  fn.blocks.emplace_back();
  fn.blocks[0].instrs.push_back({.op = Opcode::kConst, .dst = 0, .imm = 1});
  Module m;
  m.functions.push_back(fn);
  EXPECT_NE(verify(m).find("terminator"), std::string::npos);
}

TEST(Verifier, RejectsOutOfRangeRegister) {
  Function fn;
  fn.name = "bad";
  fn.num_regs = 1;
  fn.blocks.emplace_back();
  fn.blocks[0].instrs.push_back({.op = Opcode::kLoad, .dst = 7, .a = 0});
  fn.blocks[0].instrs.push_back({.op = Opcode::kRet, .a = 0});
  Module m;
  m.functions.push_back(fn);
  EXPECT_NE(verify(m).find("out of range"), std::string::npos);
}

TEST(Verifier, RejectsBadBranchTarget) {
  Function fn;
  fn.name = "bad";
  fn.num_regs = 1;
  fn.blocks.emplace_back();
  fn.blocks[0].instrs.push_back({.op = Opcode::kBr, .target = 9});
  Module m;
  m.functions.push_back(fn);
  EXPECT_NE(verify(m).find("branch target"), std::string::npos);
}

TEST(Verifier, RejectsCallArityMismatch) {
  Module m;
  {
    FunctionBuilder b("callee", 2);
    b.ret(b.arg(0));
    m.functions.push_back(b.take());
  }
  {
    FunctionBuilder b("caller", 1);
    const Reg r = b.call(0, b.arg(0), 1);  // callee wants 2 args
    b.ret(r);
    m.functions.push_back(b.take());
  }
  EXPECT_NE(verify(m).find("argument count"), std::string::npos);
}

TEST(Verifier, RejectsDeadCodeAfterTerminator) {
  Function fn;
  fn.name = "bad";
  fn.num_regs = 1;
  fn.blocks.emplace_back();
  fn.blocks[0].instrs.push_back({.op = Opcode::kRet, .a = 0});
  fn.blocks[0].instrs.push_back({.op = Opcode::kConst, .dst = 0, .imm = 0});
  Module m;
  m.functions.push_back(fn);
  EXPECT_NE(verify(m).find("terminator"), std::string::npos);
}

TEST(Disassembler, ListsBlocksAndMarksInstrumentation) {
  Module m;
  FunctionBuilder b("show", 1);
  const Reg v = b.load(b.arg(0), 16, 4);
  b.store(b.arg(0), v, 24, 4);
  b.ret(v);
  m.functions.push_back(b.take());
  run_instrumentation_pass(m, {});
  const std::string text = to_string(m);
  EXPECT_NE(text.find("func show(1 args"), std::string::npos);
  EXPECT_NE(text.find("bb0:"), std::string::npos);
  EXPECT_NE(text.find("* r1 = load.4 [r0 + 16]"), std::string::npos);
  EXPECT_NE(text.find("* store.4 [r0 + 24], r1"), std::string::npos);
  EXPECT_NE(text.find("ret"), std::string::npos);
}

// End-to-end: instrumented IR writes from two interpreter "threads" are
// seen by the detection runtime as false sharing.
TEST(InstrumentedExecution, DetectsFalseSharingFromIR) {
  SessionOptions opts;
  opts.runtime.tracking_threshold = 2;
  opts.runtime.report_invalidation_threshold = 50;
  opts.heap_size = 4 * 1024 * 1024;
  Session session(opts);
  auto* shared = static_cast<std::int64_t*>(
      session.alloc(64, session.intern_frames({"ir_program.c:7"})));
  ASSERT_NE(shared, nullptr);

  // for (i = 0; i < 400; i++) { store slot } — one function per thread slot.
  Module m;
  {
    FunctionBuilder b("hammer", 2);  // r0 = slot address, r1 = iterations
    const Reg slot = b.arg(0);
    const Reg n = b.arg(1);
    const Reg i = b.fresh_reg();
    const std::uint32_t header = b.new_block();
    const std::uint32_t body = b.new_block();
    const std::uint32_t done = b.new_block();
    b.br(header);
    b.set_block(header);
    b.cond_br(b.cmp_lt(i, n), body, done);
    b.set_block(body);
    b.store(slot, i);
    const Reg one = b.const_val(1);
    const Reg i2 = b.add(i, one);
    b.move(i, i2);
    b.br(header);
    b.set_block(done);
    b.ret(i);
    m.functions.push_back(b.take());
  }
  run_instrumentation_pass(m, {});

  Interpreter interp(&session);
  const Function* fn = m.find("hammer");
  ASSERT_NE(fn, nullptr);
  // Interleave two logical threads' executions coarsely: alternate short
  // bursts so the history table sees both threads.
  for (int round = 0; round < 40; ++round) {
    for (ThreadId tid = 0; tid < 2; ++tid) {
      const std::int64_t args[] = {
          static_cast<std::int64_t>(
              reinterpret_cast<std::intptr_t>(shared) + 8 * tid),
          10};
      const auto res = interp.run(*fn, args, tid);
      EXPECT_GT(res.runtime_calls, 0u);
    }
  }
  const Report rep = session.report();
  ASSERT_FALSE(rep.findings.empty());
  EXPECT_EQ(rep.findings[0].kind, SharingKind::kFalseSharing);
}

// ---------------------------------------------------------------------------
// The analyze tool's argument contract (predator-cli delegates to it, so
// these ARE the CLI's guarantees): unknown flags, missing operands, and
// malformed values must be rejected with a diagnostic, never half-applied.
// ---------------------------------------------------------------------------

TEST(AnalyzeArgs, AcceptsPathAndKnownFlags) {
  AnalyzeOptions opt;
  std::string err;
  EXPECT_TRUE(parse_analyze_args({"m.pir"}, &opt, &err)) << err;
  EXPECT_EQ(opt.path, "m.pir");
  EXPECT_FALSE(opt.json);
  EXPECT_FALSE(opt.predict);
  EXPECT_EQ(opt.line_size, 64u);

  opt = {};
  EXPECT_TRUE(parse_analyze_args(
      {"m.pir", "--json", "--predict", "--line-size", "128"}, &opt, &err))
      << err;
  EXPECT_TRUE(opt.json);
  EXPECT_TRUE(opt.predict);
  EXPECT_EQ(opt.line_size, 128u);
}

TEST(AnalyzeArgs, RejectsUnknownFlag) {
  AnalyzeOptions opt;
  std::string err;
  EXPECT_FALSE(parse_analyze_args({"m.pir", "--bogus"}, &opt, &err));
  EXPECT_NE(err.find("--bogus"), std::string::npos) << err;
}

TEST(AnalyzeArgs, RejectsMissingPathAndExtraPositional) {
  AnalyzeOptions opt;
  std::string err;
  EXPECT_FALSE(parse_analyze_args({}, &opt, &err));
  EXPECT_FALSE(err.empty());
  err.clear();
  EXPECT_FALSE(parse_analyze_args({"a.pir", "b.pir"}, &opt, &err));
  EXPECT_FALSE(err.empty());
}

TEST(AnalyzeArgs, RejectsMalformedLineSize) {
  AnalyzeOptions opt;
  std::string err;
  EXPECT_FALSE(parse_analyze_args({"m.pir", "--line-size"}, &opt, &err));
  EXPECT_FALSE(parse_analyze_args({"m.pir", "--line-size", "0"}, &opt, &err));
  EXPECT_FALSE(parse_analyze_args({"m.pir", "--line-size", "48"}, &opt, &err));
  EXPECT_FALSE(
      parse_analyze_args({"m.pir", "--line-size", "pony"}, &opt, &err));
}

TEST(AnalyzeTool, MissingFileFailsAndJsonRunEmitsLedgerAndPrediction) {
  AnalyzeOptions opt;
  opt.path = "/nonexistent/predator-test.pir";
  std::string out;
  std::string err;
  EXPECT_NE(run_analyze(opt, &out, &err), 0);
  EXPECT_FALSE(err.empty());

  // A real module through the JSON path: the document must carry the
  // ledger and, with --predict, the prediction block.
  const char* path = "predator_analyze_tool_test.pir";
  std::FILE* f = std::fopen(path, "w");
  ASSERT_NE(f, nullptr);
  std::fputs(
      "func w0(2 args, 4 regs):\n"
      "bb0:\n"
      "  r2 = const 1\n"
      "  store.8 [r0], r2\n"
      "  ret r2\n\n"
      "func w1(2 args, 4 regs):\n"
      "bb0:\n"
      "  r2 = const 1\n"
      "  store.8 [r0 + 8], r2\n"
      "  ret r2\n",
      f);
  std::fclose(f);
  opt.path = path;
  opt.json = true;
  opt.predict = true;
  out.clear();
  err.clear();
  EXPECT_EQ(run_analyze(opt, &out, &err), 0) << err;
  EXPECT_NE(out.find("\"ledger\""), std::string::npos);
  EXPECT_NE(out.find("\"candidate_accesses\""), std::string::npos);
  EXPECT_NE(out.find("\"predict\""), std::string::npos);
  EXPECT_NE(out.find("\"false_sharing\":true"), std::string::npos);
  // Text mode on the same module mentions the prediction header.
  opt.json = false;
  out.clear();
  EXPECT_EQ(run_analyze(opt, &out, &err), 0) << err;
  EXPECT_NE(out.find("static prediction:"), std::string::npos);
  std::remove(path);
}

}  // namespace
}  // namespace pred::ir
