// Allocation callsite capture and interning (Section 2.3.2, "Callsite
// Tracking for Heap Objects").
//
// The paper uses glibc backtrace() to record the allocation stack of every
// heap object. We support that (capture_native), and additionally an
// explicit symbolic-frame API that workloads use so reports are byte-stable
// across runs and machines — the content (a stack of source locations) is
// the same either way.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "common/spinlock.hpp"

namespace pred {

using CallsiteId = std::uint32_t;
inline constexpr CallsiteId kNoCallsite = ~CallsiteId{0};

struct Callsite {
  /// Outermost-last stack of symbolic frames, e.g.
  /// {"stddefines.h:53", "linear_regression-pthread.c:133"}.
  std::vector<std::string> frames;
};

class CallsiteTable {
 public:
  /// Interns a symbolic stack; equal stacks get equal ids.
  CallsiteId intern(std::vector<std::string> frames);

  /// Interns a symbolic stack given as string views; no std::string is
  /// materialized unless the stack is new. This is the Session v2 entry
  /// point: callers intern once at setup and allocate by CallsiteId.
  CallsiteId intern_frames(std::initializer_list<std::string_view> frames);

  /// Captures the live native stack via backtrace()/backtrace_symbols(),
  /// skipping `skip` innermost frames, and interns it.
  CallsiteId capture_native(int skip = 1);

  const Callsite& get(CallsiteId id) const;
  std::size_t size() const;

 private:
  mutable Spinlock lock_;
  std::vector<Callsite> table_;
};

/// Formats a callsite as an indented multi-line block for reports.
std::string format_callsite(const Callsite& cs, const std::string& indent);

}  // namespace pred
