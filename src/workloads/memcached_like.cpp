// Memcached (modeled): Section 4.1.2 — no severe false sharing found. Its
// per-thread stats are correctly padded, and what remains is a *true*
// sharing hotspot (the global item-count all workers bump), which PREDATOR's
// word histograms must classify as true sharing, not report as false
// sharing.
#include <cstring>

#include "common/check.hpp"
#include "common/prng.hpp"
#include "workloads/workload.hpp"

namespace pred::wl {
namespace {

class MemcachedLike final : public WorkloadImpl<MemcachedLike> {
 public:
  const Traits& traits() const override {
    static const Traits t{.name = "memcached", .suite = "real", .sites = {}};
    return t;
  }

  template <class H>
  static Result kernel(H& h, const Params& p) {
    const std::uint32_t n = p.threads;
    const std::uint64_t requests = 3000 * p.scale;
    constexpr std::uint64_t kBuckets = 1024;

    // Per-thread stats: each worker allocates its own struct (memcached does
    // this at thread setup), so they are padded AND heap-separated.
    std::vector<char*> stats(n);
    for (std::uint32_t t = 0; t < n; ++t) {
      stats[t] = static_cast<char*>(
          h.alloc(128, {"memcached/thread.c:stats"}));
      PRED_CHECK(stats[t] != nullptr);
      std::memset(stats[t], 0, 128);
    }

    // Global item counter: genuine true sharing (every worker bumps it).
    auto* total_items = static_cast<std::int64_t*>(
        h.alloc(64, {"memcached/items.c:total_items"}));
    PRED_CHECK(total_items != nullptr);
    *total_items = 0;

    // Shared hash table, read-mostly.
    auto* table = static_cast<std::uint64_t*>(
        h.alloc(kBuckets * 8, {"memcached/assoc.c:primary_hashtable"}));
    PRED_CHECK(table != nullptr);
    Xorshift64 rng(p.seed);
    for (std::uint64_t i = 0; i < kBuckets; ++i) table[i] = rng.next();

    h.parallel(n, [&](std::uint32_t t, auto& sink) {
      auto* my_stats = reinterpret_cast<std::int64_t*>(stats[t]);
      Xorshift64 local(p.seed + 3 * t);
      for (std::uint64_t req = 0; req < requests; ++req) {
        const std::uint64_t b = local.next_below(kBuckets);
        sink.read(&table[b], 8);
        const bool hit = (table[b] & 7u) != 0;
        sink.read(my_stats, 8);
        *my_stats += hit ? 1 : 0;
        sink.write(my_stats, 8);
        if (!hit) {
          // Miss path: insert, bumping the globally shared counter. Note:
          // raced in live mode just like the original bug pattern; the
          // checksum tolerates it.
          sink.read(total_items, 8);
          sink.write(total_items, 8);
          *total_items += 1;
        }
      }
    });

    Result r;
    for (std::uint32_t t = 0; t < n; ++t) {
      r.checksum += static_cast<std::uint64_t>(
          *reinterpret_cast<std::int64_t*>(stats[t]));
    }
    return r;
  }
};

}  // namespace

std::unique_ptr<Workload> make_memcached_like() {
  return std::make_unique<MemcachedLike>();
}

}  // namespace pred::wl
