# Empty dependencies file for predict_latent_layout.
# This may be replaced when dependencies are built.
