// Per-word access histogram (Section 2.3.2): for every word of a tracked
// cache line, how many reads and writes it received and by which thread.
// Once a second thread touches a word the word is marked *shared* and thread
// attribution stops — this is exactly how the paper separates true sharing
// (hot shared words) from false sharing (hot words owned by different
// threads).
#pragma once

#include <cstdint>

#include "common/cacheline.hpp"

namespace pred {

struct WordAccess {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  /// Owning thread, or kSharedWord once >1 thread has touched this word, or
  /// kInvalidThread while untouched.
  ThreadId owner = kInvalidThread;

  static constexpr ThreadId kSharedWord = kInvalidThread - 1;

  bool touched() const { return reads + writes != 0; }
  bool shared() const { return owner == kSharedWord; }
  std::uint64_t total() const { return reads + writes; }

  void record(ThreadId tid, AccessType type) {
    if (type == AccessType::kWrite) {
      ++writes;
    } else {
      ++reads;
    }
    if (owner == kInvalidThread) {
      owner = tid;
    } else if (owner != tid && owner != kSharedWord) {
      owner = kSharedWord;
    }
  }
};

}  // namespace pred
