#include "trace/trace_io.hpp"

#include <fstream>
#include <ostream>

namespace pred {

namespace {

struct WireEvent {
  std::uint64_t addr;
  std::uint32_t think;
  std::uint8_t type;
  std::uint8_t size;
  std::uint16_t pad;
};
static_assert(sizeof(WireEvent) == 16);

template <typename T>
bool write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
  return out.good();
}

template <typename T>
bool read_pod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

}  // namespace

bool save_traces(std::ostream& out, const std::vector<ThreadTrace>& traces) {
  if (!write_pod(out, kTraceMagic)) return false;
  if (!write_pod(out, kTraceVersion)) return false;
  if (!write_pod(out, static_cast<std::uint32_t>(traces.size()))) return false;
  for (const ThreadTrace& trace : traces) {
    if (!write_pod(out, static_cast<std::uint64_t>(trace.size()))) {
      return false;
    }
    for (const TraceEvent& ev : trace) {
      WireEvent wire{static_cast<std::uint64_t>(ev.addr), ev.think_cycles,
                     static_cast<std::uint8_t>(ev.type), ev.size, 0};
      if (!write_pod(out, wire)) return false;
    }
  }
  return out.good();
}

bool save_traces_file(const std::string& path,
                      const std::vector<ThreadTrace>& traces) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  return out.is_open() && save_traces(out, traces);
}

bool load_traces(std::istream& in, std::vector<ThreadTrace>* traces) {
  traces->clear();
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t threads = 0;
  if (!read_pod(in, &magic) || magic != kTraceMagic) return false;
  if (!read_pod(in, &version) || version != kTraceVersion) return false;
  if (!read_pod(in, &threads)) return false;
  std::vector<ThreadTrace> loaded;
  loaded.resize(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    std::uint64_t count = 0;
    if (!read_pod(in, &count)) return false;
    loaded[t].reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      WireEvent wire;
      if (!read_pod(in, &wire)) return false;
      TraceEvent ev;
      ev.addr = static_cast<Address>(wire.addr);
      ev.think_cycles = wire.think;
      ev.type = wire.type == 0 ? AccessType::kRead : AccessType::kWrite;
      ev.size = wire.size;
      loaded[t].push_back(ev);
    }
  }
  *traces = std::move(loaded);
  return true;
}

bool load_traces_file(const std::string& path,
                      std::vector<ThreadTrace>* traces) {
  std::ifstream in(path, std::ios::binary);
  return in.is_open() && load_traces(in, traces);
}

std::size_t total_events(const std::vector<ThreadTrace>& traces) {
  std::size_t n = 0;
  for (const auto& t : traces) n += t.size();
  return n;
}

}  // namespace pred
