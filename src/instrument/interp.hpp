// Mini-IR interpreter: "executes the compiled program". Loads and stores hit
// real process memory (typically buffers from the PREDATOR allocator); the
// instructions the pass marked call into the runtime exactly like the
// paper's inserted function calls do. Multiple interpreter instances may run
// the same Function concurrently on different threads — the Function is
// read-only during execution.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "api/predator.hpp"
#include "instrument/ir.hpp"

namespace pred::ir {

struct ExecResult {
  std::int64_t return_value = 0;
  std::uint64_t steps = 0;          ///< instructions retired
  std::uint64_t runtime_calls = 0;  ///< instrumentation call events issued
  /// Access units delivered to the runtime. A plain instrumented load is
  /// one call and one access; a kReport of count n or a merged access with
  /// compensation extras is one call but many accesses. The pruning passes
  /// reduce runtime_calls while conserving accesses_delivered exactly.
  std::uint64_t accesses_delivered = 0;
  bool step_limit_exceeded = false;
};

class Interpreter {
 public:
  static constexpr int kMaxCallDepth = 64;

  /// `session` may be null (uninstrumented run: the "Original" bars of
  /// Figure 7).
  explicit Interpreter(Session* session = nullptr,
                       std::uint64_t step_limit = 500'000'000)
      : session_(session), step_limit_(step_limit) {}

  /// Runs `fn` with arguments in r0..; `tid` is this logical thread's id for
  /// instrumentation purposes. The function must not contain kCall (use the
  /// module overload for that).
  ExecResult run(const Function& fn, std::span<const std::int64_t> args,
                 ThreadId tid = 0);

  /// Runs a function within `module`, resolving kCall targets. Steps and
  /// runtime calls aggregate across the whole call tree.
  ExecResult run(const Module& module, const Function& fn,
                 std::span<const std::int64_t> args, ThreadId tid = 0);

  /// Ground-truth shadow: called for EVERY executed load, store, and
  /// intrinsic word chunk — instrumented or not — with the concrete address,
  /// width, kind, and thread. This is "what the program actually touched",
  /// independent of what the pass chose to deliver; the escape-soundness
  /// oracle uses it to find addresses shared between threads.
  using TouchObserver =
      std::function<void(Address, std::uint32_t, AccessType, ThreadId)>;
  void set_touch_observer(TouchObserver obs) {
    touch_observer_ = std::move(obs);
  }

  /// Delivery shadow: called for every access delivery that would reach the
  /// runtime (plain instrumented accesses, compensation extras, kReport
  /// batches — the latter once with their whole count). Fires even when the
  /// session is null, so tests can diff the delivered multisets of two
  /// pass configurations without a detector in the loop.
  using DeliveryObserver = std::function<void(
      Address, std::uint32_t, AccessType, ThreadId, std::uint64_t)>;
  void set_delivery_observer(DeliveryObserver obs) {
    delivery_observer_ = std::move(obs);
  }

 private:
  std::int64_t execute(const Module* module, const Function& fn,
                       std::span<const std::int64_t> args, ThreadId tid,
                       int depth, ExecResult& result);

  Session* session_;
  std::uint64_t step_limit_;
  TouchObserver touch_observer_;
  DeliveryObserver delivery_observer_;
};

}  // namespace pred::ir
