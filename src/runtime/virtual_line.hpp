// Virtual cache line verification state (Sections 3.3-3.4).
//
// A virtual line is a contiguous byte range that stands in for a cache line
// of a *hypothetical* platform: either a double-sized line [2i, 2i+2) lines
// (predicting larger hardware lines) or a same-sized line at an arbitrary
// starting offset (predicting a different object placement). Once the
// predictor nominates a virtual line (from a hot access pair), the runtime
// feeds every sampled access in its range through a dedicated two-entry
// history table; the resulting invalidation count is the predicted severity.
//
// Concurrency: sampled-access fan-out reaches virtual lines from every
// mutator thread at once, so the default (lock_free = true, mirroring
// RuntimeConfig::lock_free_tracker) updates the packed history table with a
// CAS and the counters with relaxed fetch_adds — no serialization point.
// The spinlock mode survives as the ablation/determinism reference; both
// modes share the same PackedHistoryTable rules, so single-threaded counts
// are bit-identical.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

#include "common/cacheline.hpp"
#include "common/spinlock.hpp"
#include "runtime/history_table.hpp"

namespace pred {

class VirtualLineTracker {
 public:
  enum class Kind : std::uint8_t {
    kDoubleLine,  ///< models hardware with 2x line size (Figure 3b)
    kShifted,     ///< models a different object starting address (Figure 3c)
  };

  VirtualLineTracker(Address start, std::size_t size, Kind kind,
                     std::size_t origin_line, Address hot_x, Address hot_y,
                     bool lock_free = true)
      : start_(start),
        size_(size),
        hot_x_(hot_x),
        hot_y_(hot_y),
        origin_line_(origin_line),
        kind_(kind),
        lock_free_(lock_free) {}

  bool covers(Address a) const { return a >= start_ && a < start_ + size_; }

  /// Feeds one (sampled) access; counts predicted invalidations.
  void access(Address a, AccessType type, ThreadId tid) {
    if (!covers(a)) return;
    if (lock_free_) [[likely]] {
      record(a, type, tid);
      return;
    }
    std::lock_guard<Spinlock> g(lock_);
    record(a, type, tid);
  }

  Address start() const { return start_; }
  std::size_t size() const { return size_; }
  Kind kind() const { return kind_; }
  std::size_t origin_line() const { return origin_line_; }
  Address hot_x() const { return hot_x_; }
  Address hot_y() const { return hot_y_; }

  std::uint64_t invalidations() const {
    return invalidations_.load(std::memory_order_relaxed);
  }
  std::uint64_t accesses() const {
    return accesses_.load(std::memory_order_relaxed);
  }

 private:
  void record(Address /*a*/, AccessType type, ThreadId tid) {
    accesses_.fetch_add(1, std::memory_order_relaxed);
    if (history_.access(tid, type) == HistoryOutcome::kInvalidation) {
      invalidations_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  mutable Spinlock lock_;  ///< taken only in the lock_free = false ablation
  PackedHistoryTable history_;
  std::atomic<std::uint64_t> invalidations_{0};
  std::atomic<std::uint64_t> accesses_{0};
  const Address start_;
  const std::size_t size_;
  const Address hot_x_;
  const Address hot_y_;
  const std::size_t origin_line_;
  const Kind kind_;
  const bool lock_free_;
};

}  // namespace pred
