// Live monitor demo: watch false sharing develop while the program runs.
//
// The quickstart bug (two threads ping-ponging counters on one cache line)
// run with the session monitor attached. The main thread prints a rolling
// snapshot a few times during the run — escalations, invalidation totals,
// and the hot line with its allocation callsite appear *before* the
// workload finishes — then the final snapshot and the classic exit report.
//
// Build & run:  ./build/examples/live_monitor
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "api/predator.hpp"

int main() {
  pred::SessionOptions options;
  options.heap_size = 16 * 1024 * 1024;
  options.runtime.report_invalidation_threshold = 1;
  options.runtime.set_sampling_rate(1.0);
  // Snapshot cadence is ours to choose; keep the aggregator eager so the
  // first printed snapshot already has data.
  options.monitor.aggregation_interval_ms = 2;
  options.monitor.top_k = 4;
  pred::Session session(options);
  session.monitor().start();

  auto* counters = static_cast<long*>(
      session.alloc(2 * sizeof(long), session.intern_frames({"live_monitor.cpp:counters"})));
  counters[0] = counters[1] = 0;

  std::atomic<bool> done{false};
  auto worker = [&session, counters](pred::ThreadId tid) {
    pred::ScopedThread guard(session, tid);
    for (int i = 0; i < 2'000'000; ++i) {
      session.record(&counters[tid], pred::AccessType::kRead, tid, 8);
      counters[tid] += 1;
      session.record(&counters[tid], pred::AccessType::kWrite, tid, 8);
    }
  };
  std::thread t0(worker, 0);
  std::thread t1([&] {
    worker(1);
    done.store(true, std::memory_order_release);
  });

  // The monitoring loop a long-running service would run: poll snapshots
  // without ever pausing the worker threads.
  int prints = 0;
  while (!done.load(std::memory_order_acquire) && prints < 5) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::printf("--- live snapshot %d ---\n%s\n", ++prints,
                session.monitor().snapshot_text().c_str());
  }
  t0.join();
  t1.join();
  session.monitor().stop();

  std::printf("--- final snapshot ---\n%s\n",
              session.monitor().snapshot_text().c_str());
  std::printf("--- exit report ---\n%s", session.report_text().c_str());
  return 0;
}
