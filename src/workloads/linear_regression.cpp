// Phoenix linear_regression: the paper's flagship prediction case study
// (Sections 3.1 and 4.1.3, Figures 2 and 6).
//
// The main thread allocates an array of 64-byte lreg_args structs, one per
// thread; each thread tight-loops read-modify-writes on its own element's
// five accumulator fields. With the element array line-aligned (offset 0, or
// offset 56 which parks the hot fields wholly inside the next line) there is
// *no observed* false sharing — but any other placement straddles lines and
// causes severe false sharing. PREDATOR must predict the problem from the
// clean run; a SHERIFF-style observed-only detector must miss it.
#include <cstring>

#include "common/check.hpp"
#include "common/prng.hpp"
#include "workloads/workload.hpp"

namespace pred::wl {
namespace {

// Figure 6's lreg_args, 64 bytes on LP64.
struct LRegArgs {
  std::uint64_t tid;        // offset 0  (cold)
  std::int64_t* points;     // offset 8  (read once per thread)
  std::int64_t num_elems;   // offset 16 (read once per thread)
  std::int64_t sx;          // offset 24 (hot RMW)
  std::int64_t sxx;         // offset 32 (hot RMW)
  std::int64_t sy;          // offset 40 (hot RMW)
  std::int64_t syy;         // offset 48 (hot RMW)
  std::int64_t sxy;         // offset 56 (hot RMW)
};
static_assert(sizeof(LRegArgs) == 64);

class LinearRegression final : public WorkloadImpl<LinearRegression> {
 public:
  const Traits& traits() const override {
    static const Traits t{
        .name = "linear_regression",
        .suite = "phoenix",
        .sites = {{.where = "linear_regression-pthread.c:133",
                   .needs_prediction = true,
                   .newly_discovered = false,
                   .paper_improvement_pct = 1206.93}},
    };
    return t;
  }

  template <class H>
  static Result kernel(H& h, const Params& p) {
    const std::uint32_t n = p.threads;
    const std::int64_t points_per_thread =
        static_cast<std::int64_t>(2000 * p.scale);
    // The fix the paper applies: pad each element to a full cache line pair
    // so no placement can make two threads share a line.
    const std::size_t stride = p.site_fixed(0) ? 128 : sizeof(LRegArgs);

    // One heap object holds all thread argument structs (plus slack so the
    // offset knob can shift the start without overrunning).
    char* raw = static_cast<char*>(
        h.alloc(stride * n + 128,
                {"stddefines.h:53", "linear_regression-pthread.c:133"}));
    PRED_CHECK(raw != nullptr);
    PRED_CHECK(p.offset < 128);
    char* base = raw + p.offset;

    Xorshift64 rng(p.seed);
    for (std::uint32_t t = 0; t < n; ++t) {
      auto* args = reinterpret_cast<LRegArgs*>(base + stride * t);
      auto* pts = static_cast<std::int64_t*>(
          h.alloc(static_cast<std::size_t>(points_per_thread) * 2 * 8,
                  {"linear_regression-pthread.c:points"}));
      PRED_CHECK(pts != nullptr);
      for (std::int64_t i = 0; i < points_per_thread * 2; ++i) {
        pts[i] = static_cast<std::int64_t>(rng.next_below(1000));
      }
      args->tid = t;
      args->points = pts;
      args->num_elems = points_per_thread;
      args->sx = args->sxx = args->sy = args->syy = args->sxy = 0;
    }

    h.parallel(n, [&](std::uint32_t t, auto& sink) {
      auto* args = reinterpret_cast<LRegArgs*>(base + stride * t);
      // Like the paper's -O1 binaries, args->points and args->num_elems are
      // re-loaded every iteration (the loop condition and body dereference
      // args each time). This is load-bearing for Figure 2's shape: at
      // offsets 40/48 a thread's hot line also holds the *next* element's
      // header fields, which that neighbor keeps reading — so only offsets
      // 0 and 56 are truly clean.
      for (std::int64_t i = 0;; ++i) {
        // No think() here: the five multiply-accumulates retire in a couple
        // of cycles on a superscalar core — this loop is genuinely bound by
        // its memory accesses, which is why its false sharing is so brutal.
        sink.read(&args->num_elems, 8);
        if (i >= args->num_elems) break;
        sink.read(&args->points, 8);
        std::int64_t* pts = args->points;
        sink.read(&pts[2 * i], 8);
        const std::int64_t x = pts[2 * i];
        sink.read(&pts[2 * i + 1], 8);
        const std::int64_t y = pts[2 * i + 1];
        sink.read(&args->sx, 8);
        args->sx += x;
        sink.write(&args->sx, 8);
        sink.read(&args->sxx, 8);
        args->sxx += x * x;
        sink.write(&args->sxx, 8);
        sink.read(&args->sy, 8);
        args->sy += y;
        sink.write(&args->sy, 8);
        sink.read(&args->syy, 8);
        args->syy += y * y;
        sink.write(&args->syy, 8);
        sink.read(&args->sxy, 8);
        args->sxy += x * y;
        sink.write(&args->sxy, 8);
      }
    });

    Result r;
    for (std::uint32_t t = 0; t < n; ++t) {
      auto* args = reinterpret_cast<LRegArgs*>(base + stride * t);
      r.checksum ^= static_cast<std::uint64_t>(args->sx) +
                    static_cast<std::uint64_t>(args->sxx) * 3 +
                    static_cast<std::uint64_t>(args->sy) * 5 +
                    static_cast<std::uint64_t>(args->syy) * 7 +
                    static_cast<std::uint64_t>(args->sxy) * 11;
    }
    return r;
  }
};

}  // namespace

std::unique_ptr<Workload> make_linear_regression() {
  return std::make_unique<LinearRegression>();
}

}  // namespace pred::wl
