// Phoenix kmeans: no false sharing (not in Table 1) but among the costliest
// workloads to instrument in Figure 7 — the assignment loop touches many
// distinct words per iteration, and its per-thread accumulators are hot
// enough to escalate into detailed tracking. Accumulators are padded to a
// line each (the correct layout), so no sharing is ever found.
#include "common/check.hpp"
#include "common/prng.hpp"
#include "workloads/workload.hpp"

namespace pred::wl {
namespace {

constexpr std::size_t kClusters = 8;
constexpr std::size_t kDims = 4;

class Kmeans final : public WorkloadImpl<Kmeans> {
 public:
  const Traits& traits() const override {
    static const Traits t{.name = "kmeans", .suite = "phoenix", .sites = {}};
    return t;
  }

  template <class H>
  static Result kernel(H& h, const Params& p) {
    const std::uint32_t n = p.threads;
    const std::uint64_t points_per_thread = 1500 * p.scale;
    const std::uint64_t iterations = 4;

    // Read-only shared centroids.
    auto* centroids = static_cast<std::int64_t*>(
        h.alloc(kClusters * kDims * 8, {"kmeans-pthread.c:centroids"}));
    PRED_CHECK(centroids != nullptr);
    Xorshift64 rng(p.seed);
    for (std::size_t i = 0; i < kClusters * kDims; ++i) {
      centroids[i] = static_cast<std::int64_t>(rng.next_below(1024));
    }

    std::vector<std::int64_t*> points(n);
    std::vector<std::int64_t*> partial(n);  // per-thread, one line each
    for (std::uint32_t t = 0; t < n; ++t) {
      points[t] = static_cast<std::int64_t*>(h.alloc(
          points_per_thread * kDims * 8, {"kmeans-pthread.c:points"}));
      PRED_CHECK(points[t] != nullptr);
      for (std::uint64_t i = 0; i < points_per_thread * kDims; ++i) {
        points[t][i] = static_cast<std::int64_t>(rng.next_below(1024));
      }
      // +64: guard line standing in for per-thread-heap separation.
      partial[t] = static_cast<std::int64_t*>(
          h.alloc(kClusters * 64 + 64, {"kmeans-pthread.c:partial"}));
      PRED_CHECK(partial[t] != nullptr);
      for (std::size_t c = 0; c < kClusters; ++c) partial[t][c * 8] = 0;
    }

    h.parallel(n, [&](std::uint32_t t, auto& sink) {
      for (std::uint64_t it = 0; it < iterations; ++it) {
        for (std::uint64_t i = 0; i < points_per_thread; ++i) {
          std::int64_t best = 0;
          std::int64_t best_d = INT64_MAX;
          for (std::size_t c = 0; c < kClusters; ++c) {
            std::int64_t d = 0;
            for (std::size_t k = 0; k < kDims; ++k) {
              sink.read(&points[t][i * kDims + k], 8);
              sink.read(&centroids[c * kDims + k], 8);
              const std::int64_t diff =
                  points[t][i * kDims + k] - centroids[c * kDims + k];
              d += diff * diff;
            }
            if (d < best_d) {
              best_d = d;
              best = static_cast<std::int64_t>(c);
            }
          }
          // Line-padded per-thread membership counter (correct layout).
          std::int64_t* slot = &partial[t][best * 8];
          sink.read(slot, 8);
          *slot += 1;
          sink.write(slot, 8);
        }
      }
    });

    Result r;
    for (std::uint32_t t = 0; t < n; ++t) {
      for (std::size_t c = 0; c < kClusters; ++c) {
        r.checksum += static_cast<std::uint64_t>(partial[t][c * 8]) * (c + 1);
      }
    }
    return r;
  }
};

}  // namespace

std::unique_ptr<Workload> make_kmeans() { return std::make_unique<Kmeans>(); }

}  // namespace pred::wl
