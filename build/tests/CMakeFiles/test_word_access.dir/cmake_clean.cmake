file(REMOVE_RECURSE
  "CMakeFiles/test_word_access.dir/test_word_access.cpp.o"
  "CMakeFiles/test_word_access.dir/test_word_access.cpp.o.d"
  "test_word_access"
  "test_word_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_word_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
