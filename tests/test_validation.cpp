// Cross-substrate validation: PREDATOR's software invalidation counting
// (two-entry history tables) against the MESI-style cache simulator on the
// *same* interleaved access streams. The two were built independently; on
// write-only streams their invalidation counts must track each other, which
// is the paper's core claim that the history table approximates coherence
// traffic.
#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "runtime/history_table.hpp"
#include "sim/cache_sim.hpp"
#include "workloads/workload.hpp"

namespace pred {
namespace {

// For a single line and write-only traffic, the history table and MESI
// agree exactly: every write following another thread's write invalidates.
TEST(Validation, WriteOnlySingleLineExactAgreement) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Xorshift64 rng(seed);
    HistoryTable table;
    SimConfig cfg;
    CacheSim sim(cfg);
    std::uint64_t table_inv = 0;
    for (int i = 0; i < 5000; ++i) {
      const auto tid = static_cast<ThreadId>(rng.next_below(4));
      table_inv += table.access(tid, AccessType::kWrite) ==
                   HistoryOutcome::kInvalidation;
      sim.on_access(tid, 4096, AccessType::kWrite);
    }
    EXPECT_EQ(table_inv, sim.stats().invalidations_sent) << "seed " << seed;
  }
}

// With reads in the mix the two diverge in a *bounded, one-sided* way: MESI
// can count one write killing several reader copies, while the two-entry
// table records at most one invalidation per write. The table must never
// exceed MESI.
TEST(Validation, MixedTrafficTableIsConservativeLowerBound) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Xorshift64 rng(seed * 7919);
    HistoryTable table;
    CacheSim sim;
    std::uint64_t table_inv = 0;
    for (int i = 0; i < 20000; ++i) {
      const auto tid = static_cast<ThreadId>(rng.next_below(6));
      const AccessType type =
          rng.next_below(3) == 0 ? AccessType::kWrite : AccessType::kRead;
      table_inv +=
          table.access(tid, type) == HistoryOutcome::kInvalidation;
      sim.on_access(tid, 8192, type);
    }
    EXPECT_LE(table_inv, sim.stats().invalidations_sent) << "seed " << seed;
    // And it is not degenerate: it sees a sizable fraction of the traffic.
    EXPECT_GT(table_inv * 5, sim.stats().invalidations_sent)
        << "seed " << seed;
  }
}

// End-to-end over real workload traces: lines the detector ranks as the
// worst false sharing are exactly the lines where the simulator sees the
// most invalidation traffic.
TEST(Validation, DetectorRankingMatchesSimulatorHotspots) {
  SessionOptions opts;
  opts.heap_size = 32 * 1024 * 1024;
  opts.runtime.set_sampling_rate(1.0);
  Session session(opts);
  const wl::Workload* w = wl::find_workload("mysql");
  ASSERT_NE(w, nullptr);
  wl::Params p;
  p.threads = 8;
  const auto traces = w->capture(session, p);

  // Detector side.
  wl::replay_into_session(session, traces);
  const Report rep = session.report();
  ASSERT_FALSE(rep.findings.empty());
  const ObjectFinding& top = rep.findings[0];
  ASSERT_FALSE(top.lines.empty());
  const std::size_t detector_line = top.lines[0].line_start / 64;

  // Simulator side: count invalidations per line.
  std::map<std::size_t, std::uint64_t> sim_inv;
  {
    CacheSim sim;
    std::vector<std::size_t> cursor(traces.size(), 0);
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (std::size_t t = 0; t < traces.size(); ++t) {
        if (cursor[t] >= traces[t].size()) continue;
        const TraceEvent& ev = traces[t][cursor[t]++];
        const std::uint64_t before = sim.stats().invalidations_sent;
        sim.on_access(static_cast<std::uint32_t>(t % 8), ev.addr, ev.type);
        sim_inv[ev.addr / 64] += sim.stats().invalidations_sent - before;
        progressed = true;
      }
    }
  }
  std::size_t sim_hottest = 0;
  std::uint64_t best = 0;
  for (const auto& [line, inv] : sim_inv) {
    if (inv > best) {
      best = inv;
      sim_hottest = line;
    }
  }
  EXPECT_EQ(detector_line, sim_hottest)
      << "detector and simulator disagree on the hottest line";
  // And the detector's count is within 2x of the hardware-model count.
  EXPECT_GT(top.lines[0].invalidations * 2, best);
  EXPECT_LE(top.lines[0].invalidations, best * 2);
}

}  // namespace
}  // namespace pred
