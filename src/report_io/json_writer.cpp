#include "report_io/json_writer.hpp"

#include <cstdio>

#include "common/check.hpp"

namespace pred {

std::string JsonWriter::escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 8);
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the comma was handled when the key was written
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  needs_comma_.push_back(false);
  ++depth_;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  PRED_CHECK(depth_ > 0);
  out_ += '}';
  needs_comma_.pop_back();
  --depth_;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  needs_comma_.push_back(false);
  ++depth_;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  PRED_CHECK(depth_ > 0);
  out_ += ']';
  needs_comma_.pop_back();
  --depth_;
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  PRED_CHECK(!needs_comma_.empty());
  if (needs_comma_.back()) out_ += ',';
  needs_comma_.back() = true;
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& s) {
  before_value();
  out_ += '"';
  out_ += escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* s) { return value(std::string(s)); }

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null_value() {
  before_value();
  out_ += "null";
  return *this;
}

}  // namespace pred
