// Tests for the public Session facade and the access shims that stand in
// for compiler instrumentation (pred::load / pred::store / pred::tracked).
#include <gtest/gtest.h>

#include <new>
#include <thread>

#include "instrument/access.hpp"

namespace pred {
namespace {

SessionOptions small_options() {
  SessionOptions o;
  o.runtime.tracking_threshold = 2;
  o.runtime.report_invalidation_threshold = 50;
  o.heap_size = 8 * 1024 * 1024;
  return o;
}

TEST(Session, AllocFreeRoundTrip) {
  Session s(small_options());
  void* p = s.alloc(128, s.intern_frames({"api.c:1"}));
  ASSERT_NE(p, nullptr);
  s.free(p);
}

TEST(Session, DetectsFalseSharingViaRecord) {
  Session s(small_options());
  auto* data = static_cast<std::int64_t*>(
      s.alloc(64, s.intern_frames({"api.c:10"})));
  ASSERT_NE(data, nullptr);
  for (int i = 0; i < 200; ++i) {
    s.record(&data[0], AccessType::kWrite, 0, 8);
    s.record(&data[1], AccessType::kWrite, 1, 8);
  }
  const Report rep = s.report();
  ASSERT_EQ(rep.findings.size(), 1u);
  EXPECT_EQ(rep.findings[0].kind, SharingKind::kFalseSharing);
  EXPECT_NE(s.report_text().find("api.c:10"), std::string::npos);
}

TEST(Session, RegisterGlobalTracksExistingMemory) {
  Session s(small_options());
  alignas(64) static std::int64_t counters[8];
  s.register_global(counters, sizeof(counters), "counters");
  for (int i = 0; i < 200; ++i) {
    s.record(&counters[0], AccessType::kWrite, 0, 8);
    s.record(&counters[1], AccessType::kWrite, 1, 8);
  }
  const Report rep = s.report();
  ASSERT_EQ(rep.findings.size(), 1u);
  EXPECT_TRUE(rep.findings[0].object.is_global);
  EXPECT_EQ(rep.findings[0].object.name, "counters");
}

TEST(Session, MetadataBytesNonZero) {
  Session s(small_options());
  EXPECT_GT(s.metadata_bytes(), 0u);
}

TEST(ThreadContextShims, LoadStoreRouteThroughBoundSession) {
  Session s(small_options());
  auto* data = static_cast<std::int64_t*>(
      s.alloc(64, s.intern_frames({"shim.c:5"})));
  ASSERT_NE(data, nullptr);

  std::thread t0([&] {
    ScopedThread guard(s);
    for (int i = 0; i < 300; ++i) store(data[0], static_cast<std::int64_t>(i));
  });
  t0.join();
  std::thread t1([&] {
    ScopedThread guard(s);
    for (int i = 0; i < 300; ++i) store(data[1], static_cast<std::int64_t>(i));
  });
  t1.join();
  // Sequential phases: writes were seen (escalation), even though phase
  // separation keeps invalidations low.
  auto* tracker = s.allocator().shadow().tracker(
      s.allocator().shadow().line_index(reinterpret_cast<Address>(data)));
  ASSERT_NE(tracker, nullptr);
  EXPECT_GT(tracker->total_accesses(), 500u);
  EXPECT_EQ(data[0], 299);
}

TEST(ThreadContextShims, UnboundThreadsAreNoOps) {
  std::int64_t x = 7;
  store(x, std::int64_t{9});  // no session bound: plain store
  EXPECT_EQ(load(x), 9);
}

TEST(TrackedWrapper, BehavesLikeValue) {
  Session s(small_options());
  ScopedThread guard(s);
  tracked<std::int64_t> v;
  v = 5;
  v += 3;
  v -= 1;
  ++v;
  EXPECT_EQ(static_cast<std::int64_t>(v), 8);
  EXPECT_EQ(v.raw(), 8);
}

TEST(TrackedWrapper, AccessesReachRuntimeWhenInTrackedRegion) {
  Session s(small_options());
  // Place tracked values inside session heap via placement.
  auto* slot = static_cast<tracked<std::int64_t>*>(
      s.alloc(64, s.intern_frames({"tw.c:3"})));
  new (slot) tracked<std::int64_t>(0);
  new (slot + 1) tracked<std::int64_t>(0);
  {
    ScopedThread guard(s, 0);
    for (int i = 0; i < 200; ++i) slot[0] += 1;
  }
  {
    ScopedThread guard(s, 1);
    for (int i = 0; i < 200; ++i) slot[1] += 1;
  }
  auto* tracker = s.allocator().shadow().tracker(
      s.allocator().shadow().line_index(reinterpret_cast<Address>(slot)));
  ASSERT_NE(tracker, nullptr);
  const auto words = tracker->words_snapshot();
  EXPECT_EQ(words[0].owner, 0u);
  EXPECT_EQ(words[1].owner, 1u);
}

TEST(Session, PredictionRunsEndToEnd) {
  SessionOptions o = small_options();
  o.runtime.prediction_threshold = 64;
  Session s(o);
  // Two threads on adjacent lines of one object: latent false sharing.
  auto* data = static_cast<std::int64_t*>(
      s.alloc(256, s.intern_frames({"latent.c:20"})));
  ASSERT_NE(data, nullptr);
  for (int i = 0; i < 500; ++i) {
    s.record(&data[7], AccessType::kWrite, 0, 8);  // end of line 0
    s.record(&data[8], AccessType::kWrite, 1, 8);  // start of line 1
  }
  const Report rep = s.report();
  ASSERT_FALSE(rep.findings.empty());
  EXPECT_TRUE(rep.findings[0].predicted);
  EXPECT_FALSE(rep.findings[0].observed);
  EXPECT_TRUE(rep.findings[0].is_false_sharing());
}

}  // namespace
}  // namespace pred
