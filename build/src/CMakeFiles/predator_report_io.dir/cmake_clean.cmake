file(REMOVE_RECURSE
  "CMakeFiles/predator_report_io.dir/report_io/json_writer.cpp.o"
  "CMakeFiles/predator_report_io.dir/report_io/json_writer.cpp.o.d"
  "CMakeFiles/predator_report_io.dir/report_io/report_diff.cpp.o"
  "CMakeFiles/predator_report_io.dir/report_io/report_diff.cpp.o.d"
  "CMakeFiles/predator_report_io.dir/report_io/report_json.cpp.o"
  "CMakeFiles/predator_report_io.dir/report_io/report_json.cpp.o.d"
  "libpredator_report_io.a"
  "libpredator_report_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predator_report_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
