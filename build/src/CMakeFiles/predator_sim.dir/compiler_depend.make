# Empty compiler generated dependencies file for predator_sim.
# This may be replaced when dependencies are built.
