#include "trace/wire_format.hpp"

#include <array>
#include <cstring>
#include <istream>

namespace pred::wire {

const char* to_string(FrameError e) {
  switch (e) {
    case FrameError::kOk: return "ok";
    case FrameError::kBadMagic: return "bad-magic";
    case FrameError::kVersionSkew: return "version-skew";
    case FrameError::kTruncated: return "truncated";
    case FrameError::kBadCrc: return "bad-crc";
  }
  return "?";
}

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void put_u16(std::string* out, std::uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint16_t get_u16(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const unsigned char* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

std::string encode_frame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  put_u32(&out, kFrameMagic);
  put_u16(&out, kWireVersion);
  put_u16(&out, static_cast<std::uint16_t>(type));
  put_u32(&out, static_cast<std::uint32_t>(payload.size()));
  put_u32(&out, crc32(payload));
  out.append(payload);
  return out;
}

FrameError parse_frame(std::string_view bytes, Frame* out,
                       std::size_t* consumed) {
  *consumed = 0;
  if (bytes.size() < kFrameHeaderSize) {
    // Not enough to even validate the magic — but if what we do have
    // already disagrees, say so (a mispositioned reader should not wait
    // forever for "more" of a frame that will never materialize).
    if (bytes.size() >= 4) {
      const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
      if (get_u32(p) != kFrameMagic) return FrameError::kBadMagic;
    }
    return FrameError::kTruncated;
  }
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  if (get_u32(p) != kFrameMagic) return FrameError::kBadMagic;
  const std::uint16_t version = get_u16(p + 4);
  if (version > kWireVersion || version == 0) return FrameError::kVersionSkew;
  const std::uint16_t type = get_u16(p + 6);
  const std::uint32_t length = get_u32(p + 8);
  const std::uint32_t crc = get_u32(p + 12);
  if (bytes.size() < kFrameHeaderSize + length) return FrameError::kTruncated;
  const std::string_view payload = bytes.substr(kFrameHeaderSize, length);
  if (crc32(payload) != crc) return FrameError::kBadCrc;
  out->type = static_cast<FrameType>(type);
  out->payload.assign(payload);
  *consumed = kFrameHeaderSize + length;
  return FrameError::kOk;
}

FrameError read_frame(std::istream& in, Frame* out) {
  char header[kFrameHeaderSize];
  in.read(header, sizeof header);
  if (in.gcount() == 0) return FrameError::kTruncated;
  if (static_cast<std::size_t>(in.gcount()) < sizeof header) {
    const auto* p = reinterpret_cast<const unsigned char*>(header);
    if (in.gcount() >= 4 && get_u32(p) != kFrameMagic) {
      return FrameError::kBadMagic;
    }
    return FrameError::kTruncated;
  }
  const auto* p = reinterpret_cast<const unsigned char*>(header);
  if (get_u32(p) != kFrameMagic) return FrameError::kBadMagic;
  const std::uint16_t version = get_u16(p + 4);
  if (version > kWireVersion || version == 0) return FrameError::kVersionSkew;
  const std::uint32_t length = get_u32(p + 8);
  const std::uint32_t crc = get_u32(p + 12);
  std::string payload(length, '\0');
  if (length > 0) {
    in.read(payload.data(), static_cast<std::streamsize>(length));
    if (static_cast<std::uint32_t>(in.gcount()) < length) {
      return FrameError::kTruncated;
    }
  }
  if (crc32(payload) != crc) return FrameError::kBadCrc;
  out->type = static_cast<FrameType>(get_u16(p + 6));
  out->payload = std::move(payload);
  return FrameError::kOk;
}

void FieldWriter::u64(std::uint16_t id, std::uint64_t v) {
  put_u16(out_, id);
  put_u16(out_, static_cast<std::uint16_t>(FieldKind::kU64));
  put_u32(out_, 8);
  put_u64(out_, v);
}

void FieldWriter::bytes(std::uint16_t id, std::string_view v) {
  put_u16(out_, id);
  put_u16(out_, static_cast<std::uint16_t>(FieldKind::kBytes));
  put_u32(out_, static_cast<std::uint32_t>(v.size()));
  out_->append(v);
}

std::uint64_t Field::as_u64() const {
  if (kind != FieldKind::kU64 || bytes.size() != 8) return 0;
  return get_u64(reinterpret_cast<const unsigned char*>(bytes.data()));
}

std::optional<Field> FieldReader::next() {
  while (!rest_.empty()) {
    if (rest_.size() < 8) {
      malformed_ = true;
      return std::nullopt;
    }
    const auto* p = reinterpret_cast<const unsigned char*>(rest_.data());
    Field f;
    f.id = get_u16(p);
    const std::uint16_t kind = get_u16(p + 2);
    const std::uint32_t len = get_u32(p + 4);
    if (rest_.size() < 8 + static_cast<std::size_t>(len)) {
      malformed_ = true;
      return std::nullopt;
    }
    f.bytes = rest_.substr(8, len);
    rest_.remove_prefix(8 + len);
    // Unknown kinds are skipped wholesale (their length still delimits
    // them); unknown ids are the *caller's* business — they are returned
    // so lookups can ignore them, which is what makes payloads extensible.
    if (kind != static_cast<std::uint16_t>(FieldKind::kU64) &&
        kind != static_cast<std::uint16_t>(FieldKind::kBytes)) {
      continue;
    }
    f.kind = static_cast<FieldKind>(kind);
    return f;
  }
  return std::nullopt;
}

std::optional<Field> FieldReader::find(std::string_view payload,
                                       std::uint16_t id) {
  FieldReader r(payload);
  while (auto f = r.next()) {
    if (f->id == id) return f;
  }
  return std::nullopt;
}

}  // namespace pred::wire
