#include "api/predator.hpp"

#include <atomic>

#include <unistd.h>

#include "trace/snapshot_codec.hpp"

namespace pred {

namespace {

std::uint64_t next_session_uid() {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  // Distinct across forked clients (pid) and across sessions within one
  // process (counter). Fits operator expectations: the high half reads as
  // the pid in hex.
  return (static_cast<std::uint64_t>(::getpid()) << 32) | (n & 0xffffffffu);
}

}  // namespace

Session::Session(SessionOptions options) : options_(options) {
  uid_ = options_.session_uid != 0 ? options_.session_uid
                                   : next_session_uid();
  runtime_ = std::make_unique<Runtime>(options_.runtime);
  predictor_ = std::make_unique<Predictor>(options_.predictor);
  predictor_->attach(*runtime_);
  allocator_ =
      std::make_unique<PredatorAllocator>(*runtime_, options_.heap_size);
  // Constructed idle: no rings, no thread, no emission until start().
  monitor_ = std::make_unique<Monitor>(*runtime_, options_.monitor);
}

Session::~Session() {
  // Drop this thread's staged counters referencing the dying runtime before
  // the destructor bumps the generation; other threads' stale slots are
  // discarded lazily via the generation check.
  flush_staged_writes();
}

void* Session::alloc(std::size_t size, CallsiteId callsite) {
  return allocator_->allocate(size, callsite);
}

void Session::free(void* p) { allocator_->deallocate(p); }

std::string Session::publish() {
  return SnapshotCodec::encode(monitor_->snapshot(),
                               ClientId{uid_, static_cast<std::uint64_t>(
                                                  ::getpid())});
}

std::string Session::hello_frame() const {
  return SnapshotCodec::encode_hello(
      ClientId{uid_, static_cast<std::uint64_t>(::getpid())});
}

std::string Session::goodbye_frame() const {
  return SnapshotCodec::encode_goodbye(
      ClientId{uid_, static_cast<std::uint64_t>(::getpid())});
}

void Session::register_global(void* addr, std::size_t size,
                              std::string name) {
  const Address a = reinterpret_cast<Address>(addr);
  if (runtime_->find_region(a) == nullptr) {
    runtime_->register_region(a, size);
  }
  ObjectInfo info;
  info.start = a;
  info.size = size;
  info.name = std::move(name);
  info.is_global = true;
  runtime_->objects().add(std::move(info));
}

namespace {
struct TlsBinding {
  Session* session = nullptr;
  ThreadId tid = kInvalidThread;
};
thread_local TlsBinding tls_binding;
}  // namespace

void ThreadContext::bind(Session* session, ThreadId tid) {
  tls_binding.session = session;
  tls_binding.tid = tid;
}
void ThreadContext::unbind() {
  // Publish whatever this thread staged before it disappears from the
  // session's point of view — the thread may terminate right after.
  flush_staged_writes();
  tls_binding = TlsBinding{};
}
Session* ThreadContext::session() { return tls_binding.session; }
ThreadId ThreadContext::tid() { return tls_binding.tid; }

}  // namespace pred
