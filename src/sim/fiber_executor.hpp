// Fiber-driven big-machine executor: replays per-thread traces through a
// simulator with one cooperative fiber per logical thread, scheduled by the
// fiber pool's seeded xorshift64 stream. This is how 64-256-"core"
// interleavings run deterministically on a single-core build machine — the
// schedule is a pure function of the seed, so every run (and every CI box)
// sees byte-identical SimStats.
//
// Each fiber yields after every access, so the seeded scheduler decides the
// global interleaving at single-access granularity — the finest-grained
// adversary the directory-protocol property tests can face.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/executor.hpp"
#include "tasking/fiber_pool.hpp"

namespace pred {

/// One entry of the global access order a fiber run produced, in the exact
/// sequence the simulator consumed it. Folding this through a fresh
/// simulator sequentially must reproduce the fiber run's counts — the
/// sequential-oracle invariant the property tests assert.
struct GlobalAccess {
  std::uint32_t core = 0;
  Address addr = 0;
  AccessType type = AccessType::kRead;
};

/// Replays `traces` through `sim` under a seeded fiber interleaving (thread
/// t runs on core t % sim.num_cores(), as in the other executors). When
/// `global_order` is non-null the consumed access sequence is appended to it
/// for sequential-oracle replay. Returns the simulator's stats.
template <typename Sim>
typename Sim::Stats simulate_fibers(Sim& sim,
                                    std::span<const ThreadTrace> traces,
                                    std::uint64_t seed,
                                    std::vector<GlobalAccess>* global_order =
                                        nullptr) {
  FiberPool pool;
  for (std::size_t t = 0; t < traces.size(); ++t) {
    const std::uint32_t core = static_cast<std::uint32_t>(t % sim.num_cores());
    pool.spawn([&sim, trace = &traces[t], core, global_order] {
      for (const TraceEvent& ev : *trace) {
        sim.on_access(core, ev.addr, ev.type);
        if (global_order != nullptr) {
          global_order->push_back({core, ev.addr, ev.type});
        }
        FiberPool::yield();
      }
    });
  }
  pool.run_seeded(seed);
  return sim.stats();
}

/// Sequential-oracle fold: replays a recorded global access order through a
/// fresh simulator one access at a time. Conservation invariants (per-line
/// invalidation totals, event counts) must match the interleaved run that
/// recorded the order.
template <typename Sim>
typename Sim::Stats replay_global_order(Sim& sim,
                                        std::span<const GlobalAccess> order) {
  for (const GlobalAccess& a : order) {
    sim.on_access(a.core, a.addr, a.type);
  }
  return sim.stats();
}

}  // namespace pred
