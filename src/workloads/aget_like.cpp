// aget (modeled): a download accelerator — each thread writes a disjoint,
// line-aligned region of the output buffer as its "segment" downloads. No
// false sharing; I/O-bound in the paper, so instrumented traffic is light.
// Its sub-megabyte footprint is why Figure 9 shows a large *relative*
// memory overhead.
#include <cstring>

#include "common/check.hpp"
#include "common/prng.hpp"
#include "workloads/workload.hpp"

namespace pred::wl {
namespace {

class AgetLike final : public WorkloadImpl<AgetLike> {
 public:
  const Traits& traits() const override {
    static const Traits t{.name = "aget", .suite = "real", .sites = {}};
    return t;
  }

  template <class H>
  static Result kernel(H& h, const Params& p) {
    const std::uint32_t n = p.threads;
    const std::uint64_t segment = 8192 * p.scale;  // bytes per thread

    char* file = static_cast<char*>(
        h.alloc(segment * n, {"aget/Download.c:buffer"}));
    PRED_CHECK(file != nullptr);

    // Per-thread progress counters, individually allocated.
    std::vector<std::uint64_t*> progress(n);
    for (std::uint32_t t = 0; t < n; ++t) {
      progress[t] = static_cast<std::uint64_t*>(
          h.alloc(128, {"aget/Download.c:bwritten"}));
      PRED_CHECK(progress[t] != nullptr);
      *progress[t] = 0;
    }

    h.parallel(n, [&](std::uint32_t t, auto& sink) {
      Xorshift64 local(p.seed + t);
      char* seg = file + segment * t;
      // "Receive" 1 KB packets and append them to the segment.
      for (std::uint64_t off = 0; off < segment; off += 1024) {
        for (std::uint64_t i = 0; i < 1024; i += 64) {
          sink.write(&seg[off + i], 8);
          std::uint64_t v = local.next();
          std::memcpy(&seg[off + i], &v, 8);
        }
        sink.read(progress[t], 8);
        *progress[t] += 1024;
        sink.write(progress[t], 8);
      }
    });

    Result r;
    for (std::uint32_t t = 0; t < n; ++t) r.checksum += *progress[t];
    return r;
  }
};

}  // namespace

std::unique_ptr<Workload> make_aget_like() {
  return std::make_unique<AgetLike>();
}

}  // namespace pred::wl
