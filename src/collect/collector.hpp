// The fleet collector: many processes' monitor snapshots in, one rollup
// out.
//
//   client Sessions ──publish()──► kSnapshot frames ──transport──► Collector
//
//                     Collector::ingest_frame
//                            │  frame layer: magic/version/CRC checked,
//                            │  corrupt frames rejected and counted
//                            ▼
//                     SnapshotCodec::decode
//                            │  decompose() into per-client / per-line /
//                            │  per-site records (snapshot_merge.hpp)
//                            ▼
//            ┌─ shard 0 ─┬─ shard 1 ─┬─ … ─┬─ shard S-1 ─┐
//            │ lines,    │ lines,    │     │ lines,      │  records routed
//            │ sites,    │ sites,    │     │ sites,      │  by key hash;
//            │ clients   │ clients   │     │ clients     │  one mutex per
//            └───────────┴───────────┴─────┴─────────────┘  shard
//
// Sharding is by *key hash* (line address, site key, client uid), so two
// frames touching disjoint lines ingest fully in parallel and ingest
// throughput scales with cores. Because each shard applies the same
// pointwise newest-wins join as the sequential FleetState oracle, and the
// join is commutative/associative/idempotent, any interleaving of
// concurrent ingests converges to the oracle's state exactly —
// tests/test_collector.cpp stresses this with 64 simulated clients.
//
// rollup() folds all shards under their locks into the conservative
// [exact, exact+dropped] fleet view (see snapshot_merge.hpp for the bound
// semantics).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "monitor/snapshot_merge.hpp"
#include "repair/plan.hpp"
#include "trace/wire_format.hpp"

namespace pred {

struct CollectorConfig {
  /// Ingest shards. 0 picks the hardware concurrency, clamped to [1, 64].
  std::size_t shards = 0;
  /// Hot lines retained in the rollup.
  std::size_t top_k = 16;
};

class Collector {
 public:
  explicit Collector(CollectorConfig config = {});
  ~Collector();

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  std::size_t num_shards() const { return shards_.size(); }
  const CollectorConfig& config() const { return config_; }

  /// Ingests one complete wire frame (header + payload), as produced by
  /// Session::publish() / hello_frame() / goodbye_frame(). Returns false
  /// on frame corruption, version skew, or an unhandled frame type; the
  /// failure is counted in stats().frames_rejected.
  bool ingest_frame(std::string_view frame_bytes);

  /// Ingests a frame already validated by a FrameStreamParser (the
  /// transport read loops use this to avoid re-parsing).
  bool ingest_frame(const wire::Frame& frame);

  /// Ingests an already-decoded snapshot (the loopback fast path and the
  /// oracle tests use this).
  void ingest(std::uint64_t client_uid, std::uint64_t client_pid,
              const MonitorSnapshot& snap);

  /// Folds every shard into the fleet rollup. Safe concurrently with
  /// ingest (shards lock one at a time; the result is some join-order of
  /// frames ingested so far, which the algebra makes well-defined).
  FleetRollup rollup() const;
  std::string rollup_text() const { return format_rollup(rollup()); }

  /// The collector's state as a sequential FleetState (shard fold) — lets
  /// tests compare against an oracle with operator==.
  FleetState state() const;

  /// Union of every plan ingested so far (kRepairPlan frames), merged per
  /// site with best-evidenced-entry-wins semantics (repair::merge_plans) —
  /// the fleet's collective layout advice, served by `serve --emit-plan`.
  repair::RepairPlan merged_plan() const;

  struct Stats {
    std::uint64_t frames_ingested = 0;   ///< valid frames of any type
    std::uint64_t snapshots_ingested = 0;
    std::uint64_t hellos = 0;
    std::uint64_t goodbyes = 0;
    std::uint64_t plans_ingested = 0;    ///< kRepairPlan frames merged
    std::uint64_t frames_rejected = 0;   ///< corrupt/skewed/unknown
  };
  Stats stats() const;

 private:
  struct Shard;

  std::size_t shard_of_uid(std::uint64_t uid) const;
  std::size_t shard_of_line(Address line) const;
  std::size_t shard_of_site(const std::string& key) const;

  CollectorConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Plans are low-rate control-plane data: one mutex, no sharding.
  mutable std::mutex plan_mu_;
  repair::RepairPlan merged_plan_;

  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace pred
