file(REMOVE_RECURSE
  "CMakeFiles/predator_api.dir/api/predator.cpp.o"
  "CMakeFiles/predator_api.dir/api/predator.cpp.o.d"
  "libpredator_api.a"
  "libpredator_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predator_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
