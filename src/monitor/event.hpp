// Compact binary events published by the runtime's slow path into the
// per-thread monitor rings (src/monitor/event_ring.hpp). One event is three
// 64-bit words once packed; the aggregator (src/monitor/aggregator.cpp) is
// the only consumer and resolves addresses to objects/callsites off the hot
// path, so the emitting thread never touches the object registry.
#pragma once

#include <cstdint>

#include "common/cacheline.hpp"

namespace pred {

enum class MonitorEventType : std::uint8_t {
  /// A physical line crossed TrackingThreshold and got a CacheTracker
  /// (including the neighbor lines escalated for prediction and the lines
  /// escalated to carry virtual-line coverage). addr = line start.
  kLineEscalated = 0,
  /// A sampled access was recorded as a cache invalidation by the line's
  /// history table. addr = line start, arg = 1 for a write.
  kInvalidation = 1,
  /// A sampled access inside the sampling window that did NOT invalidate.
  /// addr = line start, arg = 1 for a write.
  kSampleHit = 2,
  /// The prediction engine was invoked for a line (PredictionThreshold
  /// crossing, once per line). addr = line start.
  kPredictionStarted = 3,
  /// The predictor nominated a virtual line for verification.
  /// addr = virtual line start, arg = virtual line size in bytes.
  kVirtualLineNominated = 4,
};

const char* to_string(MonitorEventType t);

struct MonitorEvent {
  Address addr = 0;        ///< line start / virtual line start
  std::uint64_t arg = 0;   ///< event-specific payload (see MonitorEventType)
  ThreadId tid = kInvalidThread;
  MonitorEventType type = MonitorEventType::kSampleHit;
};

}  // namespace pred
