// Integration tests over the full workload suite: for every kernel, the
// deterministic replay detection must reproduce the paper's Table 1 verdict
// — the expected sites are found (prediction-only where the paper says so),
// clean programs yield no false-sharing findings, and the paper's fixes
// remove the *observed* problems without changing results.
#include <gtest/gtest.h>

#include "baseline/sheriff_like.hpp"
#include "workloads/workload.hpp"

namespace pred::wl {
namespace {

SessionOptions detection_options() {
  SessionOptions o;
  o.heap_size = 32 * 1024 * 1024;
  return o;  // paper-default thresholds from RuntimeConfig
}

Params default_params() {
  Params p;
  p.threads = 8;
  p.scale = 1;
  return p;
}

class WorkloadVerdict : public ::testing::TestWithParam<std::string> {
 protected:
  const Workload& workload() const {
    const Workload* w = find_workload(GetParam());
    EXPECT_NE(w, nullptr);
    return *w;
  }
};

TEST_P(WorkloadVerdict, BuggyVariantMatchesPaperTable1) {
  const Workload& w = workload();
  Session session(detection_options());
  w.run_replay(session, default_params());
  const Report rep = session.report();

  if (w.traits().sites.empty()) {
    EXPECT_EQ(false_sharing_findings(rep), 0u)
        << "unexpected false sharing in clean workload:\n"
        << session.report_text();
    return;
  }
  for (const Site& site : w.traits().sites) {
    bool only_predicted = false;
    EXPECT_TRUE(report_mentions_site(rep, session.runtime().callsites(),
                                     site.where, &only_predicted))
        << "missing site " << site.where << "\n"
        << session.report_text();
    if (site.needs_prediction) {
      EXPECT_TRUE(only_predicted)
          << site.where << " should be latent (prediction-only)\n"
          << session.report_text();
    } else {
      EXPECT_FALSE(only_predicted)
          << site.where << " should be observed, not just predicted";
    }
  }
}

TEST_P(WorkloadVerdict, FixedVariantHasNoObservedFalseSharing) {
  const Workload& w = workload();
  if (w.traits().sites.empty()) GTEST_SKIP() << "nothing to fix";
  Session session(detection_options());
  Params p = default_params();
  p.fix_mask = ~0u;
  w.run_replay(session, p);
  const Report rep = session.report();
  for (const Site& site : w.traits().sites) {
    bool only_predicted = false;
    const bool found = report_mentions_site(
        rep, session.runtime().callsites(), site.where, &only_predicted);
    // streamcluster:1907's fix only *reduces* sharing (paper); everything
    // else must disappear from the observed findings entirely.
    if (site.where == "streamcluster.cpp:1907") continue;
    EXPECT_TRUE(!found || only_predicted)
        << site.where << " still observed after the fix\n"
        << session.report_text();
  }
}

TEST_P(WorkloadVerdict, ChecksumUnaffectedByFix) {
  const Workload& w = workload();
  if (w.traits().sites.empty()) GTEST_SKIP();
  Params p = default_params();
  p.threads = 4;
  const Result buggy = w.run_native(p);
  p.fix_mask = ~0u;
  const Result fixed = w.run_native(p);
  EXPECT_EQ(buggy.checksum, fixed.checksum)
      << "the fix must not change program semantics";
}

TEST_P(WorkloadVerdict, NativeRunIsDeterministicPerLayout) {
  const Workload& w = workload();
  Params p = default_params();
  p.threads = 2;  // few threads: racy kernels stay effectively disjoint
  // Replay (sequential capture) of the same params twice gives identical
  // traces; compare their sizes as a determinism proxy.
  Session s1(detection_options());
  Session s2(detection_options());
  const auto t1 = w.capture(s1, p);
  const auto t2 = w.capture(s2, p);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].size(), t2[i].size()) << "thread " << i;
  }
}

std::vector<std::string> workload_names() {
  std::vector<std::string> names;
  for (const auto& w : all_workloads()) names.push_back(w->traits().name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadVerdict,
                         ::testing::ValuesIn(workload_names()),
                         [](const auto& info) { return info.param; });

// --- cross-cutting checks ---------------------------------------------------

TEST(WorkloadRegistry, HasAllPaperPrograms) {
  // 22 paper programs + 3 big-machine/NUMA scenario kernels.
  EXPECT_EQ(all_workloads().size(), 25u);
  EXPECT_NE(find_workload("linear_regression"), nullptr);
  EXPECT_NE(find_workload("mysql"), nullptr);
  EXPECT_NE(find_workload("numa_pingpong"), nullptr);
  EXPECT_NE(find_workload("tensor_parallel"), nullptr);
  EXPECT_NE(find_workload("blocked_matrix"), nullptr);
  EXPECT_EQ(find_workload("nope"), nullptr);
}

TEST(WorkloadRegistry, TableOneSiteInventoryMatchesPaper) {
  // Table 1 has 6 benchmark rows; the real-app section adds MySQL + Boost.
  // The "numa" suite is outside the paper's table and excluded here.
  std::size_t sites = 0;
  std::size_t needs_prediction = 0;
  std::size_t newly_discovered = 0;
  for (const auto& w : all_workloads()) {
    if (w->traits().suite == "numa") continue;
    for (const Site& s : w->traits().sites) {
      ++sites;
      needs_prediction += s.needs_prediction;
      newly_discovered += s.newly_discovered;
    }
  }
  EXPECT_EQ(sites, 8u);
  EXPECT_EQ(needs_prediction, 1u);  // linear_regression
  EXPECT_EQ(newly_discovered, 2u);  // histogram, streamcluster:1907
}

TEST(LinearRegression, PredictionOnlyAtCleanOffsetsObservedAtBadOnes) {
  const Workload* w = find_workload("linear_regression");
  ASSERT_NE(w, nullptr);
  const std::string site = w->traits().sites[0].where;

  for (const std::size_t offset : {std::size_t{0}, std::size_t{56}}) {
    Session session(detection_options());
    Params p = default_params();
    p.offset = offset;
    w->run_replay(session, p);
    bool only_predicted = false;
    ASSERT_TRUE(report_mentions_site(session.report(),
                                     session.runtime().callsites(), site,
                                     &only_predicted))
        << "offset " << offset;
    EXPECT_TRUE(only_predicted) << "offset " << offset
                                << " is a clean placement";
  }
  for (const std::size_t offset : {std::size_t{8}, std::size_t{24},
                                   std::size_t{40}}) {
    Session session(detection_options());
    Params p = default_params();
    p.offset = offset;
    w->run_replay(session, p);
    bool only_predicted = true;
    ASSERT_TRUE(report_mentions_site(session.report(),
                                     session.runtime().callsites(), site,
                                     &only_predicted))
        << "offset " << offset;
    EXPECT_FALSE(only_predicted)
        << "offset " << offset << " must be observed directly";
  }
}

TEST(LinearRegression, SheriffStyleDetectorMissesTheLatentBug) {
  // The headline claim: at a clean offset an observed-only write-write
  // detector sees nothing, while PREDATOR predicts the problem.
  const Workload* w = find_workload("linear_regression");
  ASSERT_NE(w, nullptr);
  Session session(detection_options());
  Params p = default_params();
  p.offset = 0;
  const auto traces = w->capture(session, p);

  SheriffLikeDetector sheriff;
  for (std::size_t t = 0; t < traces.size(); ++t) {
    for (const TraceEvent& ev : traces[t]) {
      sheriff.on_access(ev.addr, ev.type, static_cast<ThreadId>(t));
    }
  }
  for (const auto& line : sheriff.report(100)) {
    EXPECT_FALSE(line.write_write_false_sharing)
        << "SHERIFF-style detector should see no false sharing at offset 0";
  }

  replay_into_session(session, traces);
  bool only_predicted = false;
  EXPECT_TRUE(report_mentions_site(session.report(),
                                   session.runtime().callsites(),
                                   w->traits().sites[0].where,
                                   &only_predicted));
  EXPECT_TRUE(only_predicted);
}

TEST(Memcached, TrueSharingIsReportedAsTrueSharingNotFalse) {
  const Workload* w = find_workload("memcached");
  ASSERT_NE(w, nullptr);
  Session session(detection_options());
  w->run_replay(session, default_params());
  const Report rep = session.report();
  EXPECT_EQ(false_sharing_findings(rep), 0u) << session.report_text();
  bool saw_true_sharing = false;
  for (const auto& f : rep.findings) {
    saw_true_sharing |= f.kind == SharingKind::kTrueSharing;
  }
  EXPECT_TRUE(saw_true_sharing)
      << "the contended total_items counter should surface as true sharing";
}

}  // namespace
}  // namespace pred::wl
