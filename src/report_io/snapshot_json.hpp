// JSON serialization for monitor snapshots and fleet rollups, built on the
// escaping JsonWriter every other exporter uses. Lives in report_io (not
// monitor/) because the runtime layer cannot depend on report_io without a
// cycle; callers that want JSON link report_io and call these free
// functions alongside Monitor::snapshot_text() / Collector::rollup_text().
#pragma once

#include <string>

#include "monitor/monitor.hpp"
#include "monitor/snapshot_merge.hpp"
#include "repair/plan.hpp"

namespace pred {

/// One MonitorSnapshot as a JSON object (scalars, top_lines, callsites,
/// rings) — the JSON twin of Monitor::snapshot_text().
std::string snapshot_json(const MonitorSnapshot& snap);

/// A fleet rollup as a JSON object; every count that has a drop-absorbing
/// upper bound is emitted as "<name>" and "<name>_upper". When `plan` is
/// non-null (Collector::merged_plan()), the fleet's merged repair advice
/// rides along under "repair_plan".
std::string rollup_json(const FleetRollup& rollup,
                        const repair::RepairPlan* plan = nullptr);

}  // namespace pred
