// Boost (modeled): false sharing inside boost::detail::spinlock_pool
// (Section 4.1.2). The pool is a static array of 41 four-byte spinlocks;
// shared_ptr operations hash the object address to pick a lock, so
// different threads constantly acquire different locks that live on the
// same cache line. The fix pads each lock to a line (paper: 40%).
#include <cstring>

#include "common/check.hpp"
#include "common/prng.hpp"
#include "workloads/workload.hpp"

namespace pred::wl {
namespace {

constexpr std::size_t kPoolSize = 41;

class BoostSpinlock final : public WorkloadImpl<BoostSpinlock> {
 public:
  const Traits& traits() const override {
    static const Traits t{
        .name = "boost",
        .suite = "real",
        .sites = {{.where = "boost/smart_ptr/detail/spinlock_pool.hpp:pool_",
                   .needs_prediction = false,
                   .newly_discovered = false,
                   .paper_improvement_pct = 40.0}},
    };
    return t;
  }

  template <class H>
  static Result kernel(H& h, const Params& p) {
    const std::uint32_t n = p.threads;
    const std::uint64_t operations = 6000 * p.scale;
    const std::size_t stride = p.site_fixed(0) ? 64 : 4;

    // The spinlock pool is a static global in Boost; we register it as a
    // tracked global rather than a heap object.
    char* pool = static_cast<char*>(
        h.alloc(stride * kPoolSize,
                {"boost/smart_ptr/detail/spinlock_pool.hpp:pool_"}));
    PRED_CHECK(pool != nullptr);
    std::memset(pool, 0, stride * kPoolSize);

    std::vector<std::uint64_t*> refcounts(n);
    for (std::uint32_t t = 0; t < n; ++t) {
      refcounts[t] = static_cast<std::uint64_t*>(
          h.alloc(64 * 8 + 64, {"app.cpp:shared_ptrs"}));
      PRED_CHECK(refcounts[t] != nullptr);
      for (int i = 0; i < 64; ++i) refcounts[t][i] = 1;
    }

    h.parallel(n, [&](std::uint32_t t, auto& sink) {
      Xorshift64 local(p.seed + 101 * t);
      for (std::uint64_t op = 0; op < operations; ++op) {
        // spinlock_pool<2>::spinlock_for(ptr): the address hash. Each
        // thread's shared_ptr control blocks are thread-local addresses, so
        // each thread lands on its own small subset of pool slots — distinct
        // locks for distinct threads, many on the same cache line.
        sink.think(2500);  // the shared_ptr user's work between operations
        const std::uint64_t obj = local.next_below(64);
        const std::size_t lock_idx = (5 * t + obj % 5) % kPoolSize;
        char* lock = pool + stride * lock_idx;
        // Acquire: test-and-set (a read + a write on the lock word).
        sink.read(lock, 4);
        sink.write(lock, 4);
        *lock = 1;
        // Critical section: the shared_ptr refcount bump.
        sink.read(&refcounts[t][obj], 8);
        refcounts[t][obj] += 1;
        sink.write(&refcounts[t][obj], 8);
        // Release.
        sink.write(lock, 4);
        *lock = 0;
      }
    });

    Result r;
    for (std::uint32_t t = 0; t < n; ++t) {
      for (int i = 0; i < 64; ++i) r.checksum += refcounts[t][i];
    }
    return r;
  }
};

}  // namespace

std::unique_ptr<Workload> make_boost_spinlock() {
  return std::make_unique<BoostSpinlock>();
}

}  // namespace pred::wl
