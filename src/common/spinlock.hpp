// Minimal test-and-test-and-set spinlock. Used where the runtime must avoid
// pthread mutexes on hot paths (the paper's runtime relies on atomics for the
// same reason, Section 2.4.1). Satisfies Lockable so it composes with
// std::lock_guard.
#pragma once

#include <atomic>

namespace pred {

class Spinlock {
 public:
  void lock() {
    while (flag_.exchange(true, std::memory_order_acquire)) {
      while (flag_.load(std::memory_order_relaxed)) {
        // spin; single-word payload keeps this line private to the lock
      }
    }
  }

  bool try_lock() { return !flag_.exchange(true, std::memory_order_acquire); }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace pred
