file(REMOVE_RECURSE
  "CMakeFiles/fix_advisor_demo.dir/fix_advisor_demo.cpp.o"
  "CMakeFiles/fix_advisor_demo.dir/fix_advisor_demo.cpp.o.d"
  "fix_advisor_demo"
  "fix_advisor_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fix_advisor_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
