#include "repair/plan_codec.hpp"

#include <cstdio>

#include "trace/wire_format.hpp"

namespace pred::repair {

namespace {

// Field ids. Top level:
constexpr std::uint16_t kFOriginUid = 1;
constexpr std::uint16_t kFEntry = 2;
// Entry:
constexpr std::uint16_t kFIsGlobal = 1;
constexpr std::uint16_t kFSiteKey = 2;
constexpr std::uint16_t kFAction = 3;
constexpr std::uint16_t kFPadTo = 4;
constexpr std::uint16_t kFAlignment = 5;
constexpr std::uint16_t kFSlotStride = 6;
constexpr std::uint16_t kFObjectSize = 7;
constexpr std::uint16_t kFExpected = 8;
constexpr std::uint16_t kFEvidence = 9;
// Evidence:
constexpr std::uint16_t kFEvOffset = 1;
constexpr std::uint16_t kFEvOwner = 2;
constexpr std::uint16_t kFEvWrites = 3;

std::string encode_evidence(const OffsetEvidence& ev) {
  std::string out;
  wire::FieldWriter w(&out);
  w.u64(kFEvOffset, ev.offset);
  w.u64(kFEvOwner, ev.owner);
  w.u64(kFEvWrites, ev.writes);
  return out;
}

std::string encode_entry(const PlanEntry& e) {
  std::string out;
  wire::FieldWriter w(&out);
  w.u64(kFIsGlobal, e.is_global ? 1 : 0);
  w.str(kFSiteKey, e.site_key);
  w.u64(kFAction, static_cast<std::uint64_t>(e.action));
  w.u64(kFPadTo, e.pad_to);
  w.u64(kFAlignment, e.alignment);
  w.u64(kFSlotStride, e.slot_stride);
  w.u64(kFObjectSize, e.object_size);
  w.u64(kFExpected, e.expected_eliminated);
  for (const OffsetEvidence& ev : e.evidence) {
    w.bytes(kFEvidence, encode_evidence(ev));
  }
  return out;
}

bool decode_evidence(std::string_view bytes, OffsetEvidence* ev) {
  wire::FieldReader r(bytes);
  while (auto f = r.next()) {
    switch (f->id) {
      case kFEvOffset: ev->offset = f->as_u64(); break;
      case kFEvOwner:
        ev->owner = static_cast<std::uint32_t>(f->as_u64());
        break;
      case kFEvWrites: ev->writes = f->as_u64(); break;
      default: break;  // field from a newer producer
    }
  }
  return !r.malformed();
}

/// Decodes one entry. `*known` is false (without error) when the entry's
/// action is from a newer producer — the caller skips it.
bool decode_entry(std::string_view bytes, PlanEntry* e, bool* known) {
  *known = true;
  std::uint64_t action = static_cast<std::uint64_t>(PlanAction::kAlignStart);
  wire::FieldReader r(bytes);
  while (auto f = r.next()) {
    switch (f->id) {
      case kFIsGlobal: e->is_global = f->as_u64() != 0; break;
      case kFSiteKey: e->site_key.assign(f->bytes); break;
      case kFAction: action = f->as_u64(); break;
      case kFPadTo: e->pad_to = f->as_u64(); break;
      case kFAlignment: e->alignment = f->as_u64(); break;
      case kFSlotStride: e->slot_stride = f->as_u64(); break;
      case kFObjectSize: e->object_size = f->as_u64(); break;
      case kFExpected: e->expected_eliminated = f->as_u64(); break;
      case kFEvidence: {
        OffsetEvidence ev;
        if (!decode_evidence(f->bytes, &ev)) return false;
        e->evidence.push_back(ev);
        break;
      }
      default: break;
    }
  }
  if (r.malformed()) return false;
  if (action < static_cast<std::uint64_t>(PlanAction::kPadSlots) ||
      action > static_cast<std::uint64_t>(PlanAction::kSplitFields)) {
    *known = false;  // a future action this consumer cannot apply
    return true;
  }
  e->action = static_cast<PlanAction>(action);
  return true;
}

}  // namespace

std::string encode_plan_frame(const RepairPlan& plan) {
  std::string payload;
  wire::FieldWriter w(&payload);
  w.u64(kFOriginUid, plan.origin_uid);
  for (const PlanEntry& e : plan.entries) {
    w.bytes(kFEntry, encode_entry(e));
  }
  return wire::encode_frame(wire::FrameType::kRepairPlan, payload);
}

bool decode_plan_payload(std::string_view payload, RepairPlan* out) {
  RepairPlan plan;
  wire::FieldReader r(payload);
  while (auto f = r.next()) {
    switch (f->id) {
      case kFOriginUid: plan.origin_uid = f->as_u64(); break;
      case kFEntry: {
        PlanEntry e;
        bool known = true;
        if (!decode_entry(f->bytes, &e, &known)) return false;
        if (known) plan.entries.push_back(std::move(e));
        break;
      }
      default: break;  // top-level field from a newer producer
    }
  }
  if (r.malformed()) return false;
  *out = std::move(plan);
  return true;
}

bool save_plan_file(const std::string& path, const RepairPlan& plan) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string frame = encode_plan_frame(plan);
  const bool ok = std::fwrite(frame.data(), 1, frame.size(), f) ==
                  frame.size();
  return std::fclose(f) == 0 && ok;
}

bool load_plan_file(const std::string& path, RepairPlan* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::string bytes;
  char buf[4096];
  for (std::size_t n = 0; (n = std::fread(buf, 1, sizeof buf, f)) > 0;) {
    bytes.append(buf, n);
  }
  std::fclose(f);

  wire::Frame frame;
  std::size_t consumed = 0;
  if (wire::parse_frame(bytes, &frame, &consumed) != wire::FrameError::kOk ||
      frame.type != wire::FrameType::kRepairPlan) {
    return false;
  }
  return decode_plan_payload(frame.payload, out);
}

}  // namespace pred::repair
