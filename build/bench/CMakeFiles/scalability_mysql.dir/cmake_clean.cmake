file(REMOVE_RECURSE
  "CMakeFiles/scalability_mysql.dir/scalability_mysql.cpp.o"
  "CMakeFiles/scalability_mysql.dir/scalability_mysql.cpp.o.d"
  "scalability_mysql"
  "scalability_mysql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalability_mysql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
