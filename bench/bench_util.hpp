// Shared helpers for the table/figure reproduction benches.
#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hpp"
#include "report_io/json_writer.hpp"
#include "sim/cache_sim.hpp"
#include "workloads/workload.hpp"

namespace pred::bench {

/// Flat JSON object writer for the CI bench-smoke artifacts
/// (BENCH_*.json): string keys mapping to numbers, emitted in insertion
/// order. A thin adapter over the report_io pred::JsonWriter, so escaping
/// and serialization live in exactly one (tested) place.
class JsonWriter {
 public:
  void add(std::string key, double value) {
    entries_.emplace_back(std::move(key), value);
  }
  bool write_file(const std::string& path) const {
    pred::JsonWriter w;
    w.begin_object();
    for (const auto& [key, value] : entries_) w.field(key, value);
    w.end_object();
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fputs(w.str().c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    return true;
  }

 private:
  std::vector<std::pair<std::string, double>> entries_;
};

inline SessionOptions session_options() {
  SessionOptions o;
  o.heap_size = 64 * 1024 * 1024;
  return o;
}

inline wl::Params default_params() {
  wl::Params p;
  p.threads = 8;
  p.scale = 1;
  return p;
}

/// Modeled parallel runtime of one workload configuration: event-driven
/// execution of the captured traces on the 8-core cache simulator (threads
/// advance by their access costs plus annotated compute).
inline double modeled_seconds(const wl::Workload& w, const wl::Params& p) {
  Session scratch(session_options());
  const auto traces = w.capture(scratch, p);
  CacheSim sim;
  return simulate_concurrent(sim, traces).seconds();
}

/// Percent improvement of `fixed` over `buggy` runtimes:
/// (t_buggy - t_fixed) / t_fixed * 100, the paper's Table 1 convention
/// (so a 12x speedup prints as ~1100%).
inline double improvement_pct(double buggy_seconds, double fixed_seconds) {
  if (fixed_seconds <= 0) return 0.0;
  return (buggy_seconds - fixed_seconds) / fixed_seconds * 100.0;
}

inline void print_rule(char c = '-', int width = 96) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

}  // namespace pred::bench
