// Register-constant analysis: a forward must-analysis on the standard
// three-level lattice (unknown ⊑ const c ⊑ varying), solved with the
// generic engine in dataflow.hpp. A register is constant at a block entry
// iff it holds the same statically-known value on *every* path there.
//
// The pruning passes consume this to recognize loop step constants
// (`i = i + c` with c provably constant on entry to the body) and to fold
// address arithmetic whose operands are constants; `predator-cli analyze`
// reports how many (block, register) facts the analysis proves.
#pragma once

#include <cstdint>
#include <vector>

#include "instrument/analysis/cfg.hpp"
#include "instrument/analysis/dataflow.hpp"

namespace pred::ir {

struct ConstLattice {
  enum class Kind : std::uint8_t { kUnknown, kConst, kVarying };
  Kind kind = Kind::kUnknown;
  std::int64_t value = 0;

  static ConstLattice constant(std::int64_t v) {
    return {Kind::kConst, v};
  }
  static ConstLattice varying() { return {Kind::kVarying, 0}; }
  bool is_const() const { return kind == Kind::kConst; }
  bool operator==(const ConstLattice&) const = default;
};

class ConstantAnalysis {
 public:
  using State = std::vector<ConstLattice>;  // indexed by register

  State entry_state(const Function& fn) const {
    State s(fn.num_regs);
    // Arguments arrive from the caller: varying. Every other register reads
    // as 0 until first defined (the interpreter zero-initializes), so its
    // entry value *is* the constant 0.
    for (std::uint32_t r = 0; r < fn.num_regs; ++r) {
      s[r] = r < fn.num_args ? ConstLattice::varying()
                             : ConstLattice::constant(0);
    }
    return s;
  }

  State top() const { return {}; }  // identity: meet(top, x) == x

  void meet(State* into, const State& from) const {
    if (into->empty()) {
      *into = from;
      return;
    }
    for (std::size_t r = 0; r < into->size(); ++r) {
      ConstLattice& a = (*into)[r];
      const ConstLattice& b = from[r];
      if (a == b || b.kind == ConstLattice::Kind::kUnknown) continue;
      if (a.kind == ConstLattice::Kind::kUnknown) {
        a = b;
      } else {
        a = ConstLattice::varying();  // conflicting constants or varying
      }
    }
  }

  void transfer(const Function& fn, std::uint32_t block, State* state) const {
    for (const Instr& in : fn.blocks[block].instrs) {
      transfer_instr(in, state);
    }
  }

  /// One instruction's effect; exposed so clients can evaluate mid-block
  /// states from a block-entry fixpoint.
  static void transfer_instr(const Instr& in, State* state) {
    State& s = *state;
    auto fold = [&](auto op) -> ConstLattice {
      if (s[in.a].is_const() && s[in.b].is_const()) {
        return ConstLattice::constant(op(s[in.a].value, s[in.b].value));
      }
      return ConstLattice::varying();
    };
    switch (in.op) {
      case Opcode::kConst:
        s[in.dst] = ConstLattice::constant(in.imm);
        break;
      case Opcode::kMove:
        s[in.dst] = s[in.a];
        break;
      case Opcode::kAdd:
        s[in.dst] = fold([](std::int64_t a, std::int64_t b) { return a + b; });
        break;
      case Opcode::kSub:
        s[in.dst] = fold([](std::int64_t a, std::int64_t b) { return a - b; });
        break;
      case Opcode::kMul:
        s[in.dst] = fold([](std::int64_t a, std::int64_t b) { return a * b; });
        break;
      case Opcode::kCmpLt:
        s[in.dst] =
            fold([](std::int64_t a, std::int64_t b) { return a < b ? 1 : 0; });
        break;
      case Opcode::kCmpEq:
        s[in.dst] =
            fold([](std::int64_t a, std::int64_t b) { return a == b ? 1 : 0; });
        break;
      case Opcode::kDiv:
      case Opcode::kRem:
        // Folding would need a divide-by-zero proof; stay conservative.
        s[in.dst] = ConstLattice::varying();
        break;
      case Opcode::kLoad:
      case Opcode::kCall:
        s[in.dst] = ConstLattice::varying();
        break;
      default:
        break;  // stores, intrinsics, reports, terminators define nothing
    }
  }

  bool equal(const State& a, const State& b) const { return a == b; }
};

struct ConstantFacts {
  /// Block-entry lattice per reachable block (top for unreachable).
  std::vector<ConstantAnalysis::State> block_entry;
  /// Number of (block, register) pairs proven constant — a coarse "how much
  /// did the analysis learn" statistic for `predator-cli analyze`.
  std::uint64_t facts = 0;
};

ConstantFacts analyze_constants(const Function& fn, const Cfg& cfg);

}  // namespace pred::ir
