#include "instrument/analysis/dominators.hpp"

#include <algorithm>

namespace pred::ir {

namespace {

std::uint32_t intersect(const std::vector<std::uint32_t>& idom,
                        const std::vector<std::uint32_t>& rpo_index,
                        std::uint32_t a, std::uint32_t b) {
  // Walk both fingers up the as-built tree until they meet; "up" means
  // toward smaller RPO positions (ancestors come earlier in RPO).
  while (a != b) {
    while (rpo_index[a] > rpo_index[b]) a = idom[a];
    while (rpo_index[b] > rpo_index[a]) b = idom[b];
  }
  return a;
}

}  // namespace

DomTree::DomTree(const Cfg& cfg) {
  const std::size_t n = cfg.num_blocks();
  idom_.assign(n, kNone);
  depth_.assign(n, kNone);
  rpo_index_.assign(n, kNone);

  const auto& rpo = cfg.reverse_postorder();
  for (std::uint32_t i = 0; i < rpo.size(); ++i) rpo_index_[rpo[i]] = i;

  idom_[Cfg::kEntry] = Cfg::kEntry;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::uint32_t b : rpo) {
      if (b == Cfg::kEntry) continue;
      std::uint32_t new_idom = kNone;
      for (std::uint32_t p : cfg.preds(b)) {
        if (idom_[p] == kNone) continue;  // unprocessed or unreachable
        new_idom = (new_idom == kNone)
                       ? p
                       : intersect(idom_, rpo_index_, new_idom, p);
      }
      if (new_idom != kNone && idom_[b] != new_idom) {
        idom_[b] = new_idom;
        changed = true;
      }
    }
  }

  for (std::uint32_t b : rpo) {
    depth_[b] = (b == Cfg::kEntry) ? 0 : depth_[idom_[b]] + 1;
    height_ = std::max<std::size_t>(height_, depth_[b] + 1);
  }
}

bool DomTree::dominates(std::uint32_t a, std::uint32_t b) const {
  if (a >= idom_.size() || b >= idom_.size()) return false;
  if (idom_[a] == kNone || idom_[b] == kNone) return false;
  // Climb from b toward the entry; depths bound the walk.
  while (depth_[b] > depth_[a]) b = idom_[b];
  return a == b;
}

}  // namespace pred::ir
