#include "predict/hot_access.hpp"

#include <algorithm>

namespace pred {

std::uint64_t average_word_accesses(const std::vector<WordAccess>& words,
                                    std::size_t words_per_line) {
  if (words_per_line == 0) return 0;
  std::uint64_t total = 0;
  for (const WordAccess& w : words) total += w.total();
  return total / words_per_line;
}

std::vector<HotWord> hot_words(const std::vector<WordAccess>& words,
                               Address line_start, const LineGeometry& geo,
                               std::uint64_t threshold) {
  std::vector<HotWord> out;
  for (std::size_t i = 0; i < words.size(); ++i) {
    const WordAccess& w = words[i];
    if (!w.touched() || w.total() <= threshold) continue;
    HotWord hw;
    hw.address = line_start + i * geo.word_size;
    hw.reads = w.reads;
    hw.writes = w.writes;
    hw.owner = w.owner;
    hw.shared = w.shared();
    out.push_back(hw);
  }
  return out;
}

bool pair_eligible(const HotWord& a, const HotWord& b) {
  if (a.writes == 0 && b.writes == 0) return false;           // condition (2)
  if (a.shared || b.shared) return true;                       // condition (3)
  return a.owner != b.owner;
}

std::uint64_t estimate_pair_invalidations(const HotWord& x, const HotWord& y) {
  return std::min(x.writes, y.total()) + std::min(y.writes, x.total());
}

std::vector<HotPair> find_hot_pairs(const std::vector<HotWord>& line_words,
                                    const std::vector<HotWord>& adj_words) {
  std::vector<HotPair> pairs;
  for (const HotWord& a : line_words) {
    for (const HotWord& b : adj_words) {
      if (!pair_eligible(a, b)) continue;
      HotPair p;
      p.x = a.address <= b.address ? a : b;
      p.y = a.address <= b.address ? b : a;
      p.estimated_invalidations = estimate_pair_invalidations(a, b);
      pairs.push_back(p);
    }
  }
  return pairs;
}

}  // namespace pred
