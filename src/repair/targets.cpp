#include "repair/targets.hpp"

#include <string>
#include <utility>

#include "common/check.hpp"
#include "instrument/analysis/generator.hpp"
#include "instrument/interp.hpp"
#include "instrument/pass.hpp"

namespace pred::repair {

namespace {

// ---------------------------------------------------------------------------
// counter_pool: heap-callsite target (allocator backend)
// ---------------------------------------------------------------------------

class CounterPoolTarget final : public RepairTarget {
 public:
  std::string_view name() const override { return "counter_pool"; }
  std::string_view description() const override {
    return "per-thread 16B heap counters from one callsite, packed 4/line";
  }

  RunResult run(Session& session, const RepairPlan* /*plan*/,
                std::uint32_t threads, std::uint64_t scale) const override {
    // One hot allocation site hands every thread its counter. All the
    // allocations happen on the capturing thread, so the thread heap packs
    // them back to back: four 16-byte counters per 64-byte line. An
    // installed plan pads each request to a line instead — same code, fixed
    // layout.
    const CallsiteId cs = session.intern_frames({"counter_pool.c:42"});
    std::vector<std::uint64_t*> counters;
    counters.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t) {
      auto* p = static_cast<std::uint64_t*>(session.alloc(16, cs));
      PRED_CHECK(p != nullptr);
      p[0] = 0;
      p[1] = 0;
      counters.push_back(p);
    }

    const std::uint64_t iters = 512 * (scale ? scale : 1);
    RunResult out;
    out.traces.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t) {
      TraceRecorder rec;
      rec.reserve(2 * iters);
      std::uint64_t* c = counters[t];
      for (std::uint64_t i = 0; i < iters; ++i) {
        rec.on_read(c, 8);
        const std::uint64_t v = *c;
        *c = v + 1;
        rec.on_write(c, 8);
      }
      out.traces.push_back(rec.take());
    }
    // Final counter values do not depend on where the counters live.
    for (std::uint32_t t = 0; t < threads; ++t) out.checksum += *counters[t];
    return out;
  }
};

// ---------------------------------------------------------------------------
// global_grid: global/field target (IR rewrite backend)
// ---------------------------------------------------------------------------

class GlobalGridTarget final : public RepairTarget {
 public:
  std::string_view name() const override { return "global_grid"; }
  std::string_view description() const override {
    return "packed 16B global slots hammered by mini-IR kernels";
  }

  bool static_spec(StaticModuleSpec* out, std::uint32_t threads,
                   std::uint64_t scale) const override {
    // The exact module run() executes, BEFORE any repair rewrite, plus the
    // harness's role assignment: thread t runs slot-t against the one
    // shared region registered as "grid_slots".
    out->module = ir::generate_module(0x67726964u, grid_options(threads,
                                                                scale));
    out->roles.clear();
    for (std::uint32_t t = 0; t < threads; ++t) {
      ir::RoleSpec spec;
      spec.function = "slot" + std::to_string(t);
      spec.role = t;
      spec.region = 0;
      out->roles.push_back(std::move(spec));
    }
    out->regions = {{"grid_slots", /*is_global=*/true}};
    return true;
  }

  RunResult run(Session& session, const RepairPlan* plan,
                std::uint32_t threads, std::uint64_t scale) const override {
    const ir::GeneratorOptions gopts = grid_options(threads, scale);
    ir::Module module = ir::generate_module(0x67726964u, gopts);

    const std::uint64_t stride = gopts.planted_stride;
    const std::uint64_t extent = std::uint64_t{threads} * stride;
    std::uint64_t pad_to = 0;
    if (const PlanEntry* e = plan ? plan->find(true, "grid_slots") : nullptr;
        e != nullptr && e->pad_to > stride) {
      pad_to = e->pad_to;
      ir::RepairLayout layout;
      layout.base_arg = 0;
      layout.region_offset = 0;
      layout.extent = extent;
      layout.slot_stride = e->slot_stride != 0 ? e->slot_stride : stride;
      layout.pad_to = pad_to;
      const ir::RepairRewriteStats rs = ir::apply_repair_rewrite(module,
                                                                 layout);
      PRED_CHECK(rs.retargeted > 0);
    }

    const std::uint64_t bytes = pad_to != 0 ? std::uint64_t{threads} * pad_to
                                            : extent;
    auto buffer =
        std::make_shared<std::vector<std::int64_t>>(bytes / 8, 0);
    session.register_global(buffer->data(), bytes, "grid_slots");

    RunResult out;
    out.keep_alive = buffer;
    out.traces.reserve(threads);
    for (std::uint32_t t = 0; t < threads; ++t) {
      const ir::Function* fn = nullptr;
      const std::string want = "slot" + std::to_string(t);
      for (const ir::Function& f : module.functions) {
        if (f.name == want) fn = &f;
      }
      PRED_CHECK(fn != nullptr);

      ThreadTrace trace;
      ir::Interpreter interp(nullptr);
      interp.set_touch_observer([&trace](Address a, std::uint32_t width,
                                         AccessType type, ThreadId) {
        trace.push_back({a, 0, type, static_cast<std::uint8_t>(width)});
      });
      const std::int64_t args[2] = {
          static_cast<std::int64_t>(
              reinterpret_cast<std::uintptr_t>(buffer->data())),
          static_cast<std::int64_t>(bytes / 8)};
      const ir::ExecResult res =
          interp.run(module, *fn, args, static_cast<ThreadId>(t));
      PRED_CHECK(!res.step_limit_exceeded);
      // Slot kernels sum what they load from their zero-initialized,
      // disjoint slots: the same value in packed and padded layouts.
      out.checksum += static_cast<std::uint64_t>(res.return_value);
      out.traces.push_back(std::move(trace));
    }
    return out;
  }

 private:
  static ir::GeneratorOptions grid_options(std::uint32_t threads,
                                           std::uint64_t scale) {
    ir::GeneratorOptions gopts;
    gopts.segments = 1;
    gopts.allow_intrinsics = false;
    gopts.planted_slots = threads;
    gopts.planted_stride = 16;
    gopts.planted_base_words = 0;
    gopts.planted_iters =
        static_cast<std::uint32_t>(32 * (scale ? scale : 1));
    return gopts;
  }
};

const CounterPoolTarget g_counter_pool;
const GlobalGridTarget g_global_grid;

}  // namespace

const std::vector<const RepairTarget*>& all_repair_targets() {
  static const std::vector<const RepairTarget*> targets = {&g_counter_pool,
                                                           &g_global_grid};
  return targets;
}

const RepairTarget* find_repair_target(std::string_view name) {
  for (const RepairTarget* t : all_repair_targets()) {
    if (t->name() == name) return t;
  }
  return nullptr;
}

}  // namespace pred::repair
