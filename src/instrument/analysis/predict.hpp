// Static false-sharing prediction (the compile-time analogue of §3): given a
// module and an assignment of entry functions to THREAD ROLES — "role r runs
// this function against shared region g" — predict which cache lines the
// roles will fight over WITHOUT executing anything.
//
// The predictor composes the whole analysis stack built underneath it:
//
//   * per-role ACCESS FOOTPRINTS — symbolic (region offset, width, r/w,
//     trip-count weight) intervals collected by walking the role's entry
//     function with local value numbering seeded from block-entry constant
//     facts. Loop trip counts come from the canonical counted-loop shape
//     (CondBr on CmpLt(induction, constant bound), init recovered by running
//     the constant transfer over the preheader, step recovered by value
//     numbering the latch update); unprovable trips fall back to an assumed
//     constant, so weights are a RANKING signal, never a soundness claim.
//     Exact callee summaries are rebased through call sites so footprints
//     see through calls; escape-proven confined headroom drops provably
//     thread-private accesses; and sync/handoff intrinsics split footprints
//     into happens-ordered segments — an access inside a range the block
//     just claimed via kHandoff carries its claim with it, so provably
//     handed-off traffic can be excluded from conflicts below.
//
//   * a CONFLICT OVERLAY — footprints of distinct roles are folded onto
//     cache-line geometry (parameterized line size, plus extra sizes so the
//     report can flag lines that only conflict at, say, 128B — the static
//     version of the paper's "potential false sharing" prediction). Each
//     line is scored by conflict density: write×write overlap counts double
//     write×read, weighted by the trip-count weights of both sides. A pair
//     of handed-off footprints whose claim ranges overlap is happens-ordered
//     by the handoff chain and does NOT conflict; handed-off traffic against
//     un-synchronized traffic (or against a disjoint claim on the same line)
//     still does. Byte masks distinguish TRUE sharing (some written byte is
//     touched by both roles) from FALSE sharing (disjoint byte sets on one
//     line).
//
//   * a PLAN LOWERING HOOK — per-region written-span stride detection
//     (uniform slot starts, extents within the stride) gives the repair
//     planner enough structure to compile kPadSlots entries from the report
//     alone; see repair/planner.hpp's StaticFsReport overload of
//     compile_plan. A module can thus go predict → plan → repair with the
//     profiling run reduced to post-hoc verification.
//
// SOUNDNESS CAVEATS (documented, deliberate): addresses that do not value-
// number to (stable pointer argument + constant) — loaded pointers, data-
// dependent indexing, memset/memcpy with unprovable lengths, calls without
// exact summaries — are counted in `opaque_sites` and otherwise ignored, so
// the predictor can miss conflicts reached through them (it never invents
// conflicts). Trip-count weights affect ranking only. Line-size geometry is
// exact for offsets the analysis DID resolve.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "instrument/analysis/summaries.hpp"
#include "instrument/ir.hpp"

namespace pred::ir {

/// One thread role: logical thread `role` repeatedly invokes `function`
/// with argument `arg` pointing `region_offset` bytes into shared region
/// `region`. Roles are the static stand-in for the per-thread entry
/// assignment a pthread_create call site fixes in real code.
struct RoleSpec {
  std::string function;
  std::uint32_t role = 0;          ///< logical thread id (distinct per role)
  std::uint32_t region = 0;        ///< shared-region id the argument aims at
  std::uint32_t arg = 0;           ///< argument index carrying the pointer
  std::int64_t region_offset = 0;  ///< argument value minus region start
  /// Escape-proven thread-private headroom from the argument (bytes):
  /// accesses wholly inside [arg, arg + confined_len) are dropped from the
  /// footprint, exactly like the pass's escape skipping. 0 = no promise.
  std::uint64_t confined_len = 0;
};

struct PredictOptions {
  /// Base cache-line geometry the conflict overlay uses.
  std::size_t line_size = 64;
  /// Additional geometries (§3 static analogue): lines reported at these
  /// sizes are marked `latent` when no base-size sub-line conflicts — the
  /// conflict only exists on hardware with the larger line.
  std::vector<std::size_t> extra_line_sizes = {128};
  /// Trip-count weight for loops whose bound does not fold to a constant.
  std::uint64_t assumed_trip = 16;
  /// Ranked lines kept in the report (per module, after sorting).
  std::size_t max_lines = 64;
};

/// One resolved access interval of a role's footprint. Offsets are bytes
/// relative to the region start (argument offset + RoleSpec::region_offset).
struct FootprintInterval {
  std::int64_t lo = 0;         ///< first byte touched
  std::int64_t hi = 0;         ///< one past the last byte touched
  std::uint32_t width = 0;     ///< single-access width in bytes
  bool is_write = false;
  /// Executed inside a block-held kHandoff claim: the access is happens-
  /// ordered after the claiming thread's synthetic ownership write over
  /// [claim_lo, claim_hi).
  bool handed_off = false;
  std::int64_t claim_lo = 0;
  std::int64_t claim_hi = 0;
  std::uint32_t segment = 0;   ///< happens-ordered segment index (informational)
  std::uint64_t weight = 1;    ///< trip-count weight (dynamic access estimate)
};

struct RoleFootprint {
  std::uint32_t role = 0;
  std::uint32_t region = 0;
  std::string function;
  std::vector<FootprintInterval> intervals;
  std::uint64_t resolved_weight = 0;   ///< sum of interval weights
  std::uint64_t opaque_sites = 0;      ///< accesses/calls the analysis gave up on
  std::uint64_t confined_skipped = 0;  ///< dropped inside confined headroom
  std::uint64_t segments = 1;          ///< happens-ordered segments seen
};

/// Per-line, per-role evidence attached to a prediction.
struct RoleSpan {
  std::uint32_t role = 0;
  std::uint32_t lo = 0;               ///< first touched byte within the line
  std::uint32_t hi = 0;               ///< one past the last touched byte
  std::uint64_t write_weight = 0;
  std::uint64_t read_weight = 0;
  bool handed_off_only = false;       ///< every contribution carried a claim
};

struct PredictedLine {
  std::uint32_t region = 0;
  std::uint32_t line_size = 64;
  std::int64_t line_index = 0;        ///< region offset / line_size (floor)
  bool false_sharing = false;         ///< conflicting roles touch disjoint bytes
  bool true_sharing = false;          ///< some written byte is touched by both
  bool latent = false;                ///< conflicts only at this (larger) geometry
  std::uint64_t ww_weight = 0;        ///< summed write×write pair products
  std::uint64_t wr_weight = 0;        ///< summed write×read pair products
  double score = 0.0;                 ///< 2·ww + wr (conflict density)
  std::vector<RoleSpan> spans;        ///< one per contributing role, role order
};

struct StaticFsReport {
  std::vector<RoleFootprint> footprints;   ///< one per role, input order
  std::vector<PredictedLine> lines;        ///< score-descending
  std::uint64_t opaque_sites = 0;          ///< summed over footprints
  /// Per region id: detected uniform written-slot stride in bytes (0 = no
  /// slotted structure proven) and total written/touched extent in bytes.
  std::vector<std::uint64_t> region_slot_stride;
  std::vector<std::uint64_t> region_extent;

  /// Predicted lines for `region` at the BASE line size, non-latent.
  std::uint64_t predicted_line_count(std::uint32_t region,
                                     std::size_t line_size) const {
    std::uint64_t n = 0;
    for (const PredictedLine& l : lines) {
      if (l.region == region && l.line_size == line_size && !l.latent) ++n;
    }
    return n;
  }
};

/// Runs the predictor. `summaries` is optional: when null, an exact summary
/// table is computed internally (callers that already ran the pass can share
/// theirs). Role functions missing from the module are skipped with an empty
/// footprint.
StaticFsReport predict_static_fs(const Module& module,
                                 const std::vector<RoleSpec>& roles,
                                 const PredictOptions& options = {});

/// Default role assignment when the harness gave none: every call-graph ROOT
/// (a function no other function calls, excluding "$bare" clones) becomes
/// one role, in module order, all sharing region 0 through argument 0. This
/// mirrors the generator's per-thread entry functions and the CLI's
/// "analyze a module cold" use case.
std::vector<RoleSpec> default_roles(const Module& module);

/// Human-readable report (predator-cli `analyze --predict`).
std::string format_static_report(const StaticFsReport& report);

}  // namespace pred::ir
