// Per-word access histogram (Section 2.3.2): for every word of a tracked
// cache line, how many reads and writes it received and by which thread.
// Once a second thread touches a word the word is marked *shared* and thread
// attribution stops — this is exactly how the paper separates true sharing
// (hot shared words) from false sharing (hot words owned by different
// threads).
#pragma once

#include <atomic>
#include <cstdint>

#include "common/cacheline.hpp"

namespace pred {

struct WordAccess {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  /// Owning thread, or kSharedWord once >1 thread has touched this word, or
  /// kInvalidThread while untouched.
  ThreadId owner = kInvalidThread;

  static constexpr ThreadId kSharedWord = kInvalidThread - 1;

  bool touched() const { return reads + writes != 0; }
  bool shared() const { return owner == kSharedWord; }
  std::uint64_t total() const { return reads + writes; }

  void record(ThreadId tid, AccessType type) {
    if (type == AccessType::kWrite) {
      ++writes;
    } else {
      ++reads;
    }
    if (owner == kInvalidThread) {
      owner = tid;
    } else if (owner != tid && owner != kSharedWord) {
      owner = kSharedWord;
    }
  }
};

/// Concurrent-update variant used by the lock-free tracked path: counters
/// are relaxed fetch_adds and the owner word follows the monotone state
/// machine  kInvalidThread → first-owner tid → kSharedWord  via CAS. Every
/// transition moves strictly forward (the shared state is absorbing), so
/// racing recorders can never resurrect single-owner status and the
/// false/true-sharing classification of Section 2.3.2 stays sound without a
/// lock. Once the word is owned by the calling thread or shared, record()
/// performs no RMW on the owner at all.
struct AtomicWordAccess {
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> writes{0};
  std::atomic<ThreadId> owner{kInvalidThread};

  void record(ThreadId tid, AccessType type) {
    if (type == AccessType::kWrite) {
      writes.fetch_add(1, std::memory_order_relaxed);
    } else {
      reads.fetch_add(1, std::memory_order_relaxed);
    }
    ThreadId o = owner.load(std::memory_order_relaxed);
    while (o != tid && o != WordAccess::kSharedWord) {
      const ThreadId next =
          (o == kInvalidThread) ? tid : WordAccess::kSharedWord;
      if (owner.compare_exchange_weak(o, next, std::memory_order_relaxed)) {
        break;
      }
    }
  }

  /// Value-type copy for reporting/prediction (same shape the locked path
  /// hands out).
  WordAccess snapshot() const {
    WordAccess w;
    w.reads = reads.load(std::memory_order_relaxed);
    w.writes = writes.load(std::memory_order_relaxed);
    w.owner = owner.load(std::memory_order_relaxed);
    return w;
  }

  void reset() {
    reads.store(0, std::memory_order_relaxed);
    writes.store(0, std::memory_order_relaxed);
    owner.store(kInvalidThread, std::memory_order_relaxed);
  }
};

}  // namespace pred
