// Phoenix string_match: no false sharing expected (not in Table 1). Threads
// scan private key streams against a small read-only dictionary; per-thread
// match counters live in separate line-aligned allocations, so nothing is
// shared hot. Serves as a clean control for the no-false-positives claim.
#include "common/check.hpp"
#include "common/prng.hpp"
#include "workloads/workload.hpp"

namespace pred::wl {
namespace {

class StringMatch final : public WorkloadImpl<StringMatch> {
 public:
  const Traits& traits() const override {
    static const Traits t{
        .name = "string_match", .suite = "phoenix", .sites = {}};
    return t;
  }

  template <class H>
  static Result kernel(H& h, const Params& p) {
    const std::uint32_t n = p.threads;
    const std::uint64_t keys_per_thread = 4000 * p.scale;
    constexpr std::size_t kKeyLen = 16;

    // Read-only dictionary shared by all threads (reads never invalidate).
    auto* dict = static_cast<std::uint64_t*>(
        h.alloc(64 * 8, {"string_match-pthread.c:dict"}));
    PRED_CHECK(dict != nullptr);
    Xorshift64 rng(p.seed);
    for (int i = 0; i < 64; ++i) dict[i] = rng.next();

    std::vector<unsigned char*> keys(n);
    std::vector<std::uint64_t*> found(n);
    for (std::uint32_t t = 0; t < n; ++t) {
      keys[t] = static_cast<unsigned char*>(h.alloc(
          keys_per_thread * kKeyLen, {"string_match-pthread.c:keys"}));
      PRED_CHECK(keys[t] != nullptr);
      for (std::uint64_t i = 0; i < keys_per_thread * kKeyLen; ++i) {
        keys[t][i] = static_cast<unsigned char>(rng.next());
      }
      // Per-thread counter in its own line-aligned allocation (plus guard
      // line): the correct pattern the buggy benchmarks above violate.
      found[t] = static_cast<std::uint64_t*>(
          h.alloc(128, {"string_match-pthread.c:found"}));
      PRED_CHECK(found[t] != nullptr);
      *found[t] = 0;
    }

    h.parallel(n, [&](std::uint32_t t, auto& sink) {
      for (std::uint64_t i = 0; i < keys_per_thread; ++i) {
        std::uint64_t hash = 1469598103934665603ull;
        for (std::size_t j = 0; j < kKeyLen; ++j) {
          sink.read(&keys[t][i * kKeyLen + j], 1);
          hash = (hash ^ keys[t][i * kKeyLen + j]) * 1099511628211ull;
        }
        sink.read(&dict[hash % 64], 8);
        if (dict[hash % 64] % 64 == hash % 64) {
          sink.read(found[t], 8);
          *found[t] += 1;
          sink.write(found[t], 8);
        }
      }
    });

    Result r;
    for (std::uint32_t t = 0; t < n; ++t) r.checksum += *found[t];
    return r;
  }
};

}  // namespace

std::unique_ptr<Workload> make_string_match() {
  return std::make_unique<StringMatch>();
}

}  // namespace pred::wl
