file(REMOVE_RECURSE
  "CMakeFiles/microbench_fastpath.dir/microbench_fastpath.cpp.o"
  "CMakeFiles/microbench_fastpath.dir/microbench_fastpath.cpp.o.d"
  "microbench_fastpath"
  "microbench_fastpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_fastpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
