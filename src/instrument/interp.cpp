#include "instrument/interp.hpp"

#include <cstring>
#include <vector>

#include "common/check.hpp"

namespace pred::ir {

namespace {

// Mini-IR loads and stores are tear-free by specification: concurrency
// tests interpret racy programs from several OS threads (sharing one line
// is the detector's whole subject), so a naturally-aligned access goes
// through a relaxed atomic builtin — same values, no C++-level data race —
// and only a misaligned access falls back to plain memcpy.

template <typename T>
std::int64_t load_as(Address addr) {
  if (addr % alignof(T) == 0) {
    return __atomic_load_n(reinterpret_cast<T*>(addr), __ATOMIC_RELAXED);
  }
  T v;
  std::memcpy(&v, reinterpret_cast<void*>(addr), sizeof(T));
  return v;
}

std::int64_t load_sized(Address addr, std::uint32_t size) {
  switch (size) {
    case 1:
      return load_as<std::int8_t>(addr);
    case 2:
      return load_as<std::int16_t>(addr);
    case 4:
      return load_as<std::int32_t>(addr);
    default:
      return load_as<std::int64_t>(addr);
  }
}

template <typename T>
void store_as(Address addr, std::int64_t value) {
  const auto v = static_cast<T>(value);
  if (addr % alignof(T) == 0) {
    __atomic_store_n(reinterpret_cast<T*>(addr), v, __ATOMIC_RELAXED);
    return;
  }
  std::memcpy(reinterpret_cast<void*>(addr), &v, sizeof(T));
}

void store_sized(Address addr, std::int64_t value, std::uint32_t size) {
  switch (size) {
    case 1:
      store_as<std::int8_t>(addr, value);
      break;
    case 2:
      store_as<std::int16_t>(addr, value);
      break;
    case 4:
      store_as<std::int32_t>(addr, value);
      break;
    default:
      store_as<std::int64_t>(addr, value);
      break;
  }
}

}  // namespace

ExecResult Interpreter::run(const Function& fn,
                            std::span<const std::int64_t> args,
                            ThreadId tid) {
  ExecResult result;
  result.return_value = execute(nullptr, fn, args, tid, 0, result);
  return result;
}

ExecResult Interpreter::run(const Module& module, const Function& fn,
                            std::span<const std::int64_t> args,
                            ThreadId tid) {
  ExecResult result;
  result.return_value = execute(&module, fn, args, tid, 0, result);
  return result;
}

std::int64_t Interpreter::execute(const Module* module, const Function& fn,
                                  std::span<const std::int64_t> args,
                                  ThreadId tid, int depth,
                                  ExecResult& result) {
  PRED_CHECK(args.size() == fn.num_args);
  PRED_CHECK(!fn.blocks.empty());
  PRED_CHECK(depth < kMaxCallDepth);

  std::vector<std::int64_t> regs(fn.num_regs, 0);
  for (std::size_t i = 0; i < args.size(); ++i) regs[i] = args[i];

  std::uint32_t block = 0;
  std::size_t pc = 0;

  auto instrument = [&](Address addr, AccessType type, std::uint32_t size) {
    if (delivery_observer_) delivery_observer_(addr, size, type, tid, 1);
    if (session_) {
      session_->record(reinterpret_cast<void*>(addr), type, tid, size);
      ++result.runtime_calls;
      ++result.accesses_delivered;
    }
  };

  // Bulk delivery (kReport, compensation extras): one call, `count`
  // accesses. The runtime handles each access individually, so the
  // detector's state is exactly as if `count` plain calls had been made.
  auto instrument_n = [&](Address addr, AccessType type, std::uint32_t size,
                          std::uint64_t count) {
    if (count == 0) return;
    if (delivery_observer_) delivery_observer_(addr, size, type, tid, count);
    if (session_) {
      session_->record_n(reinterpret_cast<void*>(addr), type, tid, size,
                         count);
      ++result.runtime_calls;
      result.accesses_delivered += count;
    }
  };

  auto touch = [&](Address addr, AccessType type, std::uint32_t size) {
    if (touch_observer_) touch_observer_(addr, size, type, tid);
  };

  while (true) {
    if (result.steps >= step_limit_) {
      result.step_limit_exceeded = true;
      return 0;
    }
    ++result.steps;
    PRED_CHECK(block < fn.blocks.size());
    const auto& instrs = fn.blocks[block].instrs;
    PRED_CHECK(pc < instrs.size());  // blocks must end in a terminator
    const Instr& in = instrs[pc];

    switch (in.op) {
      case Opcode::kConst:
        regs[in.dst] = in.imm;
        break;
      case Opcode::kMove:
        regs[in.dst] = regs[in.a];
        break;
      case Opcode::kAdd:
        regs[in.dst] = regs[in.a] + regs[in.b];
        break;
      case Opcode::kSub:
        regs[in.dst] = regs[in.a] - regs[in.b];
        break;
      case Opcode::kMul:
        regs[in.dst] = regs[in.a] * regs[in.b];
        break;
      case Opcode::kDiv:
        PRED_CHECK(regs[in.b] != 0);
        regs[in.dst] = regs[in.a] / regs[in.b];
        break;
      case Opcode::kRem:
        PRED_CHECK(regs[in.b] != 0);
        regs[in.dst] = regs[in.a] % regs[in.b];
        break;
      case Opcode::kCmpLt:
        regs[in.dst] = regs[in.a] < regs[in.b] ? 1 : 0;
        break;
      case Opcode::kCmpEq:
        regs[in.dst] = regs[in.a] == regs[in.b] ? 1 : 0;
        break;
      case Opcode::kLoad: {
        const Address addr = static_cast<Address>(regs[in.a] + in.imm);
        touch(addr, AccessType::kRead, in.size);
        if (in.instrumented) {
          instrument(addr, AccessType::kRead, in.size);
          instrument_n(addr, AccessType::kRead, in.size, in.extra_reads);
          instrument_n(addr, AccessType::kWrite, in.size, in.extra_writes);
        }
        regs[in.dst] = load_sized(addr, in.size);
        break;
      }
      case Opcode::kStore: {
        const Address addr = static_cast<Address>(regs[in.a] + in.imm);
        touch(addr, AccessType::kWrite, in.size);
        if (in.instrumented) {
          instrument(addr, AccessType::kWrite, in.size);
          instrument_n(addr, AccessType::kRead, in.size, in.extra_reads);
          instrument_n(addr, AccessType::kWrite, in.size, in.extra_writes);
        }
        store_sized(addr, regs[in.b], in.size);
        break;
      }
      case Opcode::kCall: {
        PRED_CHECK(module != nullptr);
        const auto callee_index = static_cast<std::size_t>(in.imm);
        PRED_CHECK(callee_index < module->functions.size());
        const Function& callee = module->functions[callee_index];
        std::span<const std::int64_t> call_args(regs.data() + in.a, in.b);
        regs[in.dst] =
            execute(module, callee, call_args, tid, depth + 1, result);
        if (result.step_limit_exceeded) return 0;
        break;
      }
      case Opcode::kMemSet: {
        const Address base = static_cast<Address>(regs[in.a]);
        const auto len = static_cast<std::uint64_t>(regs[in.b]);
        const auto value = static_cast<unsigned char>(in.imm);
        // Word-wise so the instrumentation granularity matches compiled
        // memset loops.
        for (std::uint64_t off = 0; off < len; off += 8) {
          const std::uint32_t chunk =
              static_cast<std::uint32_t>(std::min<std::uint64_t>(8, len - off));
          touch(base + off, AccessType::kWrite, chunk);
          if (in.instrumented) {
            instrument(base + off, AccessType::kWrite, chunk);
          }
          std::memset(reinterpret_cast<void*>(base + off), value, chunk);
        }
        break;
      }
      case Opcode::kMemCopy: {
        const Address dst = static_cast<Address>(regs[in.a]);
        const Address src = static_cast<Address>(regs[in.b]);
        const auto len = static_cast<std::uint64_t>(regs[in.dst]);
        for (std::uint64_t off = 0; off < len; off += 8) {
          const std::uint32_t chunk =
              static_cast<std::uint32_t>(std::min<std::uint64_t>(8, len - off));
          touch(src + off, AccessType::kRead, chunk);
          touch(dst + off, AccessType::kWrite, chunk);
          if (in.instrumented) {
            instrument(src + off, AccessType::kRead, chunk);
            instrument(dst + off, AccessType::kWrite, chunk);
          }
          std::memmove(reinterpret_cast<void*>(dst + off),
                       reinterpret_cast<void*>(src + off), chunk);
        }
        break;
      }
      case Opcode::kReport: {
        if (in.instrumented) {
          const Address addr = static_cast<Address>(regs[in.a] + in.imm);
          // A negative count means the loop never ran (e.g. trip count
          // (n - i + C - 1) / C with n < i): deliver nothing.
          const std::int64_t cnt = regs[in.b];
          if (cnt > 0) {
            instrument_n(addr,
                         in.target ? AccessType::kWrite : AccessType::kRead,
                         in.size, static_cast<std::uint64_t>(cnt));
          }
        }
        break;
      }
      case Opcode::kAcquire:
      case Opcode::kRelease:
        // Epoch bump for the executing thread; touches no memory, so the
        // touch/delivery observers stay silent. Runs whether or not the
        // function was instrumented — sync structure is program semantics,
        // not instrumentation.
        if (session_) session_->sync(tid);
        break;
      case Opcode::kHandoff: {
        const Address addr = static_cast<Address>(regs[in.a] + in.imm);
        const std::int64_t len = regs[in.b];
        if (session_ && len > 0) {
          session_->handoff(reinterpret_cast<void*>(addr),
                            static_cast<std::size_t>(len), tid);
        }
        break;
      }
      case Opcode::kBr:
        block = in.target;
        pc = 0;
        continue;
      case Opcode::kCondBr:
        block = regs[in.a] != 0 ? in.target : in.target2;
        pc = 0;
        continue;
      case Opcode::kRet:
        return regs[in.a];
    }
    ++pc;
  }
}

}  // namespace pred::ir
