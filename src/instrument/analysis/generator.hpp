// Seeded random module generator for property tests. Produces verified,
// executable, workload-shaped modules: counted loops in the canonical
// header/body/latch form the batching pass recognizes, early-exit loops
// whose latch is a conditional branch (the shape batching must reject),
// diamonds whose arm
// is picked by the runtime argument, straight-line access runs with
// deliberate duplicates, aliased address chains (moves and split constant
// offsets) that only value numbering can unify, and occasional memory
// intrinsics.
//
// With `callees > 0` the module gains a pool of callee functions emitted
// before the mains — straight-line leaves (exactly summarizable),
// constant-bound loop leaves (summarizable by unrolling), data-dependent
// and intrinsic leaves (⊤ by design), self-recursive and mutually recursive
// pairs (⊤ by cycle membership) — and the main functions' segments may then
// contain bare call runs, loops with loop-invariant call arguments (the
// call-batching shape), and loops whose passed pointer varies with the
// induction variable (a shape batching must reject).
//
// Contract: every generated function takes (buf, n) and, run with any
// n >= 0, touches only [buf, buf + 8 * (n + max_offset_words)) — plus, in
// call-enabled modules, up to kCalleeSlackWords further words (callees are
// handed pointers up to buf + 8*(n-1) and constant counts of at most 8).
// Tests size the buffer from the same options they generate with.
#pragma once

#include <cstdint>

#include "instrument/ir.hpp"

namespace pred::ir {

struct GeneratorOptions {
  std::uint32_t segments = 4;           ///< loop/diamond regions per function
  std::uint32_t accesses_per_block = 3;
  std::uint32_t max_offset_words = 24;  ///< invariant offsets live below this
  bool allow_intrinsics = true;
  /// Callee-pool size. 0 keeps modules (and the RNG stream) byte-identical
  /// to call-free generation.
  std::uint32_t callees = 0;
  /// Draw callees only from the exactly-summarizable kinds (straight-line
  /// and constant-bound-loop leaves) — call-heavy workloads shaped like hot
  /// accessor helpers, where interprocedural batching has full leverage.
  bool summarizable_callees = false;

  /// Sync-intrinsic segments. When > 0, each main function additionally
  /// emits up to this many synchronization shapes between its ordinary
  /// segments: an acquire/release bracket around an access run, a handoff
  /// of a constant-length prefix of buf followed by a write-first access
  /// run into the transferred range (the shape sync-scoped pruning elides),
  /// and a handoff whose range ends at a mid-block sync (pruning must stop
  /// at the boundary). 0 draws no RNG for sync shapes, keeping sync-free
  /// modules (and their RNG stream) byte-identical across the introduction
  /// of the intrinsics.
  std::uint32_t sync_segments = 0;

  /// Planted false-sharing slots (repair fuzzing). When > 0, the module
  /// additionally gets deterministic functions "slot0".."slotN-1": slot t,
  /// run as thread t, read-modify-writes every word of the t-th
  /// `planted_stride`-sized slot of a packed region starting at word
  /// `planted_base_words`, `planted_iters` times, and returns the sum of
  /// the values it loaded. Adjacent slots narrower than a line share lines
  /// by construction — exactly what apply_repair_rewrite must fix. The slot
  /// functions draw no RNG, so planted-free generation stays byte-identical,
  /// and every slot access is a constant offset from buf (through the same
  /// varied addressing idioms used elsewhere), so the rewrite can prove and
  /// retarget all of them. Contract: slot functions touch exactly
  /// [buf + 8*planted_base_words, buf + 8*planted_base_words
  ///  + planted_slots*planted_stride).
  std::uint32_t planted_slots = 0;
  std::uint32_t planted_stride = 8;     ///< bytes per slot (multiple of 8)
  std::uint32_t planted_base_words = 0; ///< region start, words from buf
  std::uint32_t planted_iters = 8;      ///< RMW sweeps per slot function

  /// Pipeline-shaped planted slots: each slot function opens every RMW
  /// sweep by handing off the WHOLE planted region to the executing thread
  /// (a kHandoff covering all slots), the shape where the region migrates
  /// between threads only through explicit ownership transfer. Every slot
  /// access then sits inside a block-held handoff claim: sync-scoped
  /// pruning elides it, and the static predictor must treat the roles as
  /// happens-ordered (zero conflict lines). Draws no RNG either way, so
  /// modules with it disabled stay byte-identical.
  bool planted_handoff = false;
};

/// Extra buffer headroom, in words, a call-enabled module may touch past
/// the call-free contract.
inline constexpr std::uint32_t kCalleeSlackWords = 16;

/// Deterministic in `seed`; the result always passes verify().
Module generate_module(std::uint64_t seed, const GeneratorOptions& opts = {});

}  // namespace pred::ir
