// The instrumentation pass (Sections 2.2 and 2.4.2): decides which loads and
// stores get a runtime call. It runs after any IR "optimization" the program
// author did (our mini-IR programs are written post-optimization, mirroring
// the paper's placement of the pass at the very end of LLVM's pipeline) and
// applies, in order:
//   * selective per-block dedup — at most one instrumentation per (address
//     expression, access type) per basic block, with correct invalidation
//     when the address register is redefined mid-block;
//   * writes-only mode (detects only write-write false sharing, as SHERIFF);
//   * function black/whitelists;
//   * (opt-in) loop batching — a provably loop-invariant instrumented
//     address inside a canonical counted loop is un-instrumented and
//     replaced by one kReport at the preheader delivering trip-count many
//     accesses;
//   * (opt-in) dominance/chain merging — along single-entry/single-exit
//     block chains (equal execution counts by construction), accesses whose
//     value-numbered address and width coincide fold into the first one as
//     compensation extras (+Nr/+Nw);
//   * (opt-in) interprocedural call batching — functions are processed
//     callees-first and each gets an exact access summary
//     (analysis/summaries.hpp); a call inside a batchable loop whose
//     summarized callee touches only loop-invariant argument pointers is
//     retargeted to an uninstrumented "$bare" clone while trip-count
//     kReports for the callee's whole per-invocation access set are planted
//     at the preheader;
//   * (opt-in) thread-escape skipping — accesses proven confined to the
//     invoking thread's private heap span (analysis/escape.hpp) lose their
//     instrumentation entirely;
//   * (opt-in) sync-scoped pruning — accesses provably inside a range the
//     same block just claimed through a kHandoff sync intrinsic lose their
//     instrumentation: the runtime claim has already pushed the owning
//     thread's write through every overlapped line's history automaton, so
//     the pruned accesses are invalidation-count no-ops (held ranges die at
//     acquire/release, at calls without an exact sync-free summary, and at
//     block ends).
//
// The whole-function passes are count- and type-exact: the runtime sees
// the same multiset of (address, width, kind) accesses per execution, only
// through fewer calls — tests/test_analysis.cpp and
// tests/test_interprocedural.cpp prove the resulting detector reports are
// bit-identical. Escape skipping and sync-scoped pruning are the two
// deliberate exceptions: they drop deliveries outright, report-preserving
// for invalidation counts only because a dropped access provably lands on a
// cache line no other thread ever touches (escape) or on a line whose
// history automaton is already in the accessing thread's exclusive-write
// state (sync-scoped).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "instrument/analysis/escape.hpp"
#include "instrument/analysis/summaries.hpp"
#include "instrument/ir.hpp"
#include "runtime/config.hpp"

namespace pred::ir {

struct PassOptions {
  InstrumentMode mode = InstrumentMode::kReadsAndWrites;
  /// If non-empty, only these functions are instrumented.
  std::vector<std::string> whitelist;
  /// Functions never instrumented (applied after the whitelist).
  std::vector<std::string> blacklist;
  /// Per-block (address, type) dedup of Section 2.4.2. Disable to measure
  /// its effect (ablation bench).
  bool selective = true;
  /// Whole-function passes over the analysis/ framework. Off by default:
  /// the seed pipeline is per-block only, and these change the *placement*
  /// (never the content) of what reaches the runtime.
  bool loop_batching = false;
  bool dominance_elim = false;
  /// Interprocedural layer: process callees before callers, summarize every
  /// function, and let loop batching see through kCall via "$bare" clones.
  /// Implies nothing else — combine with loop_batching for the call-batching
  /// effect (a call in a loop cannot batch without the loop matcher).
  bool interprocedural = false;
  /// Sync-scoped pruning over kHandoff claims (see header comment). Exact
  /// for invalidation counts by construction; sampled word counts shrink
  /// the way escape skipping shrinks them. Combine with `interprocedural`
  /// to let held ranges survive calls whose summary is exact and sync-free;
  /// without summaries every call conservatively ends the held range.
  bool sync_scoped = false;
  /// Thread-escape facts from the harness (analysis/escape.hpp). When set,
  /// accesses proven thread-private are skipped. Requires interprocedural
  /// call-graph context and is independent of loop_batching/dominance_elim.
  const EscapeBindings* escape = nullptr;
  /// When set alongside `escape`, every skipped access is appended here so
  /// an oracle can re-derive exactly which concrete addresses went silent.
  std::vector<EscapeSkip>* escape_log = nullptr;
};

struct PassStats {
  std::uint64_t candidate_accesses = 0;    ///< loads/stores seen
  std::uint64_t intrinsic_accesses = 0;    ///< memset/memcpy sites
  std::uint64_t instrumented_accesses = 0; ///< loads/stores left marked
  std::uint64_t skipped_duplicates = 0;    ///< removed by per-block dedup
  std::uint64_t skipped_reads = 0;         ///< removed by writes-only mode
  std::uint64_t skipped_functions = 0;     ///< functions excluded by lists
  std::uint64_t loop_batched = 0;          ///< hoisted into preheader reports
  std::uint64_t dominance_merged = 0;      ///< folded into an earlier access
  std::uint64_t reports_inserted = 0;      ///< kReport instructions planted
  std::uint64_t escape_skipped = 0;        ///< proven thread-private, dropped
  std::uint64_t sync_scoped_skipped = 0;   ///< pruned inside a held handoff range
  std::uint64_t call_batched = 0;          ///< kCall sites expanded at preheader
  std::uint64_t callee_summaries = 0;      ///< functions with an exact summary
  std::uint64_t summary_top = 0;           ///< functions summarized as ⊤
  std::uint64_t bare_clones = 0;           ///< "$bare" functions appended

  /// Every load/store candidate is accounted for exactly once:
  ///   candidate = instrumented + duplicates + reads + batched + merged
  ///             + escape-skipped + sync-scoped-skipped.
  /// (Intrinsic sites are tracked separately; reports_inserted counts new
  /// instructions, not candidates; call_batched counts kCall sites, which
  /// are not load/store candidates.) test_instrument.cpp asserts this.
  bool reconciles() const {
    return candidate_accesses == instrumented_accesses + skipped_duplicates +
                                     skipped_reads + loop_batched +
                                     dominance_merged + escape_skipped +
                                     sync_scoped_skipped;
  }
};

/// Marks Instr::instrumented across the module and returns statistics. With
/// `interprocedural` the module may GROW: uninstrumented "$bare" clones of
/// batched-through callees are appended after the original functions, so
/// callers that only care about the original code should iterate the first
/// `old functions.size()` entries (clone names carry the "$bare" suffix).
PassStats run_instrumentation_pass(Module& module, const PassOptions& options);

/// The summaries computed for the ORIGINAL functions during an
/// interprocedural pass run (empty table otherwise). Filled when the caller
/// passes a non-null `summaries_out` below.
PassStats run_instrumentation_pass(Module& module, const PassOptions& options,
                                   SummaryTable* summaries_out);

// ---------------------------------------------------------------------------
// Repair rewrite (src/repair/): RedirectPtr-style layout retargeting
// ---------------------------------------------------------------------------

/// Describes a padded re-layout of a slotted region reached through one
/// pointer argument: the original layout packs `extent` bytes of
/// `slot_stride`-sized slots starting at `region_offset` from the argument;
/// the repaired layout widens every slot to `pad_to` bytes (slot k moves
/// from region_offset + k*slot_stride to region_offset + k*pad_to).
struct RepairLayout {
  std::uint32_t base_arg = 0;     ///< argument register carrying the region
  std::int64_t region_offset = 0; ///< region start, bytes from the argument
  std::uint64_t extent = 0;       ///< bytes covered by the original layout
  std::uint64_t slot_stride = 0;  ///< original slot size (bytes, > 0)
  std::uint64_t pad_to = 64;      ///< repaired slot size (>= slot_stride)
};

struct RepairRewriteStats {
  std::uint64_t retargeted = 0;  ///< accesses moved to the padded layout
  std::uint64_t straddling = 0;  ///< crossed a slot boundary: left alone
  std::uint64_t opaque = 0;      ///< address not provably in the region
};

/// Retargets every load/store/report whose value-numbered address is
/// provably (stable base_arg) + constant inside the region to the padded
/// layout, adjusting the instruction's immediate offset. Accesses that
/// cannot be proven in (or out of) the region are left untouched and
/// counted as opaque — the rewrite is conservative, never speculative. The
/// caller is responsible for sizing the actual buffer for the padded extent
/// (slot count * pad_to). Applies to every function in the module,
/// including "$bare" clones, so instrumented and bare paths stay in sync.
RepairRewriteStats apply_repair_rewrite(Module& module,
                                        const RepairLayout& layout);

}  // namespace pred::ir
