#include "instrument/analysis/cfg.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace pred::ir {

namespace {

/// Successors of a block, read off its (verified, unique) terminator.
void terminator_targets(const BasicBlock& bb,
                        std::vector<std::uint32_t>* out) {
  out->clear();
  PRED_CHECK(!bb.instrs.empty());
  const Instr& t = bb.instrs.back();
  switch (t.op) {
    case Opcode::kBr:
      out->push_back(t.target);
      break;
    case Opcode::kCondBr:
      out->push_back(t.target);
      if (t.target2 != t.target) out->push_back(t.target2);
      break;
    case Opcode::kRet:
      break;
    default:
      PRED_CHECK(false && "block does not end in a terminator");
  }
}

}  // namespace

Cfg::Cfg(const Function& fn) {
  const std::size_t n = fn.blocks.size();
  succs_.resize(n);
  preds_.resize(n);
  reachable_.assign(n, false);
  for (std::uint32_t b = 0; b < n; ++b) {
    terminator_targets(fn.blocks[b], &succs_[b]);
    for (std::uint32_t s : succs_[b]) preds_[s].push_back(b);
  }

  // Depth-first walk from the entry: marks reachability and records a
  // postorder, reversed below into the RPO used by every iterative solver.
  std::vector<std::uint32_t> post;
  post.reserve(n);
  // Explicit stack with a per-node successor cursor (no recursion: generated
  // stress modules can be deep).
  std::vector<std::pair<std::uint32_t, std::size_t>> stack;
  stack.emplace_back(kEntry, 0);
  reachable_[kEntry] = true;
  while (!stack.empty()) {
    auto& [b, cursor] = stack.back();
    if (cursor < succs_[b].size()) {
      const std::uint32_t s = succs_[b][cursor++];
      if (!reachable_[s]) {
        reachable_[s] = true;
        stack.emplace_back(s, 0);
      }
    } else {
      post.push_back(b);
      stack.pop_back();
    }
  }
  rpo_.assign(post.rbegin(), post.rend());
  num_reachable_ = rpo_.size();
}

}  // namespace pred::ir
