file(REMOVE_RECURSE
  "CMakeFiles/ir_from_text.dir/ir_from_text.cpp.o"
  "CMakeFiles/ir_from_text.dir/ir_from_text.cpp.o.d"
  "ir_from_text"
  "ir_from_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_from_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
