// Public facade of the PREDATOR library.
//
// A Session bundles everything a user needs: the detection runtime
// (Section 2), the prediction engine (Section 3), and the custom allocator
// (Section 2.3.2), pre-wired. Typical use:
//
//   pred::Session session;
//   auto* data = static_cast<T*>(session.alloc(sizeof(T), {"myfile.c:42"}));
//   ... in each thread: pred::ScopedThread guard(session);
//       pred::store(x) / pred::load(x) on tracked data ...
//   std::cout << session.report_text();
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "alloc/predator_allocator.hpp"
#include "predict/predictor.hpp"
#include "runtime/report.hpp"
#include "runtime/runtime.hpp"

namespace pred {

struct SessionOptions {
  RuntimeConfig runtime{};
  PredictorConfig predictor{};
  std::size_t heap_size = 256 * 1024 * 1024;
};

class Session {
 public:
  explicit Session(SessionOptions options = {});
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // --- component access ---
  Runtime& runtime() { return *runtime_; }
  const Runtime& runtime() const { return *runtime_; }
  PredatorAllocator& allocator() { return *allocator_; }
  Predictor& predictor() { return *predictor_; }
  const SessionOptions& options() const { return options_; }

  // --- memory ---
  void* alloc(std::size_t size, std::vector<std::string> callsite_frames);
  void free(void* p);

  /// Starts tracking an existing object (e.g. a global variable). The
  /// object's memory itself is registered as a tracked region.
  void register_global(void* addr, std::size_t size, std::string name);

  // --- threads & accesses ---
  ThreadId register_thread() { return runtime_->register_thread(); }
  void on_read(const void* p, ThreadId tid, std::size_t size = 8) {
    runtime_->handle_access(reinterpret_cast<Address>(p), AccessType::kRead,
                            tid, size);
  }
  void on_write(const void* p, ThreadId tid, std::size_t size = 8) {
    runtime_->handle_access(reinterpret_cast<Address>(p), AccessType::kWrite,
                            tid, size);
  }

  // --- results ---
  Report report() const { return build_report(*runtime_); }
  std::string report_text() const {
    return format_report(report(), runtime_->callsites());
  }

  /// Bytes of analysis metadata currently held (Figures 8/9 accounting).
  std::size_t metadata_bytes() const { return runtime_->metadata_bytes(); }

 private:
  SessionOptions options_;
  std::unique_ptr<Runtime> runtime_;
  std::unique_ptr<Predictor> predictor_;
  std::unique_ptr<PredatorAllocator> allocator_;
};

/// Thread-local binding of (session, thread id) used by the access shims in
/// instrument/access.hpp, so instrumented code does not need to thread a
/// session reference through every call.
class ThreadContext {
 public:
  static void bind(Session* session, ThreadId tid);
  static void unbind();
  static Session* session();
  static ThreadId tid();
};

/// RAII registration of the calling thread with a session.
class ScopedThread {
 public:
  explicit ScopedThread(Session& session)
      : ScopedThread(session, session.register_thread()) {}
  ScopedThread(Session& session, ThreadId tid) {
    ThreadContext::bind(&session, tid);
  }
  ~ScopedThread() { ThreadContext::unbind(); }
  ScopedThread(const ScopedThread&) = delete;
  ScopedThread& operator=(const ScopedThread&) = delete;
};

}  // namespace pred
