// Access shims: the stand-in for the paper's LLVM instrumentation pass when
// building ordinary C++ workloads (see DESIGN.md, substitution table).
//
// Where the paper's pass rewrites every surviving load/store of global and
// heap data into a runtime call, here the programmer (or our workload suite)
// writes accesses through pred::load / pred::store / pred::tracked<T>, which
// invoke the identical HandleAccess entry point. The thread binding comes
// from pred::ScopedThread, so instrumented code needs no extra plumbing.
#pragma once

#include <cstddef>

#include "api/predator.hpp"

namespace pred {

/// Instrumented load of any trivially copyable lvalue; the access size is
/// inferred from the type, like the paper's pass sizes each load it rewrites.
template <typename T>
inline T load(const T& x) {
  if (Session* s = ThreadContext::session()) {
    s->record(&x, AccessType::kRead, ThreadContext::tid(), sizeof(T));
  }
  return x;
}

/// Instrumented store.
template <typename T>
inline void store(T& x, T v) {
  if (Session* s = ThreadContext::session()) {
    s->record(&x, AccessType::kWrite, ThreadContext::tid(), sizeof(T));
  }
  x = v;
}

/// Instrumented read-modify-write (x = f(x)); counts one read + one write,
/// matching what compiled code would issue.
template <typename T, typename F>
inline void update(T& x, F&& f) {
  store(x, f(load(x)));
}

/// A value wrapper whose every access is instrumented. Useful for struct
/// fields: declaring `tracked<long> counter;` mirrors the paper's
/// instrumentation of every field access.
template <typename T>
class tracked {
 public:
  tracked() = default;
  tracked(T v) : value_(v) {}  // NOLINT(google-explicit-constructor)

  operator T() const { return load(value_); }  // NOLINT
  tracked& operator=(T v) {
    store(value_, v);
    return *this;
  }
  tracked& operator+=(T v) {
    store(value_, static_cast<T>(load(value_) + v));
    return *this;
  }
  tracked& operator-=(T v) {
    store(value_, static_cast<T>(load(value_) - v));
    return *this;
  }
  tracked& operator++() { return *this += T{1}; }

  /// Raw (uninstrumented) access, e.g. for result verification.
  T raw() const { return value_; }
  T* raw_ptr() { return &value_; }

 private:
  T value_{};
};

}  // namespace pred
