// Full compiler-pipeline demo from *source text*: a program written in the
// textual IR is parsed, verified, instrumented by the Section 2.2 pass, and
// executed by two logical threads whose accesses feed the detector — the
// closest analogue of "compile with the PREDATOR pass, then run" that a
// self-contained library can offer.
//
// Build & run:  ./build/examples/ir_from_text
#include <cstdio>

#include "instrument/interp.hpp"
#include "instrument/ir_parser.hpp"
#include "instrument/pass.hpp"

using namespace pred;
using namespace pred::ir;

namespace {

// Per-thread accumulate loop over a shared array slot; the redundant second
// load in the body exists to show the selective pass at work.
constexpr const char* kProgram = R"(
# args: r0 = slot address, r1 = iterations
func accumulate(2 args, 6 regs):
bb0:
  br bb1
bb1:
  r3 = r2 < r1
  br r3 ? bb2 : bb3
bb2:
  r4 = load.8 [r0]
  r4 = r4 + r2
  store.8 [r0], r4
  r5 = load.8 [r0]      # redundant: the pass will not instrument it twice
  r5 = const 1
  r2 = r2 + r5
  br bb1
bb3:
  ret r2
)";

}  // namespace

int main() {
  const ParseResult parsed = parse_module(kProgram);
  if (!parsed.ok) {
    std::fprintf(stderr, "parse error: %s\n", parsed.error.c_str());
    return 1;
  }
  Module module = parsed.module;

  const PassStats stats = run_instrumentation_pass(module, {});
  std::printf("pass: %llu candidates, %llu instrumented, %llu deduped\n\n",
              static_cast<unsigned long long>(stats.candidate_accesses),
              static_cast<unsigned long long>(stats.instrumented_accesses),
              static_cast<unsigned long long>(stats.skipped_duplicates));
  std::printf("instrumented listing:\n%s\n", to_string(module).c_str());

  SessionOptions opts;
  opts.heap_size = 16 * 1024 * 1024;
  Session session(opts);
  auto* slots = static_cast<long*>(
      session.alloc(2 * sizeof(long), session.intern_frames({"program.pir:slots"})));
  slots[0] = slots[1] = 0;

  Interpreter interp(&session);
  const Function* fn = module.find("accumulate");
  for (int round = 0; round < 2000; ++round) {
    for (ThreadId tid = 0; tid < 2; ++tid) {
      const std::int64_t args[] = {
          static_cast<std::int64_t>(
              reinterpret_cast<std::intptr_t>(&slots[tid])),
          25};
      interp.run(module, *fn, args, tid);
    }
  }

  std::printf("%s", session.report_text().c_str());
  return 0;
}
