# Empty compiler generated dependencies file for predator_tasking.
# This may be replaced when dependencies are built.
