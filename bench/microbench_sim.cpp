// Two-level NUMA simulator microbench: what the hierarchical model costs
// over the flat simulator, and whether the topology actually prices remote
// traffic.
//
// Phase A — simulation throughput: replay the captured numa_pingpong traces
//   through the flat CacheSim and through NumaCacheSim at 1 socket and at
//   4x16 scatter, reporting accesses/sec each. The flat-vs-two-level ratio
//   is the overhead of directory bookkeeping + socket mapping per access.
//
// Phase B — the latency model: modeled total cycles at 4x16 scatter over
//   the 1-socket baseline on the same traces. The packed slots ping-pong
//   across sockets, so remote_factor (3x) must show up in the ratio; the
//   acceptance bar from the ISSUE is >= 2x.
//
// Usage: microbench_sim [iters] [--json FILE]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "sim/executor.hpp"
#include "sim/numa_cache_sim.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::uint64_t trace_events(const std::vector<pred::ThreadTrace>& traces) {
  std::uint64_t n = 0;
  for (const auto& t : traces) n += t.size();
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  int iters = 20;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      iters = std::atoi(argv[i]);
      if (iters <= 0) {
        std::fprintf(stderr, "usage: %s [iters > 0] [--json FILE]\n", argv[0]);
        return 1;
      }
    }
  }

  const pred::wl::Workload* w = pred::wl::find_workload("numa_pingpong");
  if (w == nullptr) {
    std::fprintf(stderr, "numa_pingpong workload missing from registry\n");
    return 1;
  }
  pred::Session session(pred::bench::session_options());
  pred::wl::Params p;
  p.threads = 64;
  const auto traces = w->capture(session, p);
  const std::uint64_t events = trace_events(traces);

  pred::SimConfig flat_cfg;
  flat_cfg.num_cores = 64;

  pred::NumaConfig one_socket;
  one_socket.sockets = 1;
  one_socket.cores_per_socket = 64;

  pred::NumaConfig big;
  big.sockets = 4;
  big.cores_per_socket = 16;
  big.placement = pred::NumaPlacement::kScatter;

  // Phase A — replay throughput, flat vs hierarchical.
  std::uint64_t sink = 0;
  const auto t_flat = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    pred::CacheSim sim(flat_cfg);
    sink += simulate_interleaved(sim, traces).total_cycles;
  }
  const double flat_s = seconds_since(t_flat);

  const auto t_numa1 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    pred::NumaCacheSim sim(one_socket);
    sink += simulate_interleaved(sim, traces).total_cycles;
  }
  const double numa1_s = seconds_since(t_numa1);

  const auto t_numa4 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    pred::NumaCacheSim sim(big);
    sink += simulate_interleaved(sim, traces).total_cycles;
  }
  const double numa4_s = seconds_since(t_numa4);

  const double evs = static_cast<double>(events) * iters;
  const double flat_aps = evs / flat_s;
  const double numa1_aps = evs / numa1_s;
  const double numa4_aps = evs / numa4_s;
  // >= 1.0 would mean the two-level model is free; the floor guards it from
  // becoming pathologically expensive (directory work ballooning per access).
  const double overhead_ratio = numa1_aps / flat_aps;

  // Phase B — the modeled-latency ratio the topology exists to produce.
  pred::NumaCacheSim local_sim(one_socket);
  const pred::NumaStats local = simulate_interleaved(local_sim, traces);
  pred::NumaCacheSim remote_sim(big);
  const pred::NumaStats remote = simulate_interleaved(remote_sim, traces);
  const double remote_local_ratio =
      local.total_cycles == 0
          ? 0.0
          : static_cast<double>(remote.total_cycles) /
                static_cast<double>(local.total_cycles);

  std::printf("numa_pingpong: %zu traces, %llu events, iters %d (sink %llu)\n",
              traces.size(), static_cast<unsigned long long>(events), iters,
              static_cast<unsigned long long>(sink));
  std::printf("flat CacheSim:        %12.0f accesses/s\n", flat_aps);
  std::printf("NumaCacheSim 1x64:    %12.0f accesses/s (%.2fx of flat)\n",
              numa1_aps, overhead_ratio);
  std::printf("NumaCacheSim 4x16:    %12.0f accesses/s\n", numa4_aps);
  std::printf("modeled cycles: 1-socket %llu, 4x16 scatter %llu "
              "(remote/local %.2fx)\n",
              static_cast<unsigned long long>(local.total_cycles),
              static_cast<unsigned long long>(remote.total_cycles),
              remote_local_ratio);
  std::printf("remote traffic @4x16: coherence %llu, invalidations %llu, "
              "directory transitions %llu\n",
              static_cast<unsigned long long>(remote.remote_coherence_misses),
              static_cast<unsigned long long>(
                  remote.remote_invalidations_sent),
              static_cast<unsigned long long>(remote.directory_transitions));

  if (!json_path.empty()) {
    pred::bench::JsonWriter json;
    json.add("sim_flat_accesses_per_sec", flat_aps);
    json.add("sim_numa1_accesses_per_sec", numa1_aps);
    json.add("sim_numa4_accesses_per_sec", numa4_aps);
    json.add("sim_numa_overhead_ratio", overhead_ratio);
    json.add("sim_remote_local_ratio", remote_local_ratio);
    if (!json.write_file(json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  // The latency model is deterministic: a sub-2x ratio means the topology
  // stopped pricing remote traffic — fail loudly even without check_bench.
  return remote_local_ratio >= 2.0 ? 0 : 2;
}
