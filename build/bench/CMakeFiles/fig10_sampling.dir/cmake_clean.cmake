file(REMOVE_RECURSE
  "CMakeFiles/fig10_sampling.dir/fig10_sampling.cpp.o"
  "CMakeFiles/fig10_sampling.dir/fig10_sampling.cpp.o.d"
  "fig10_sampling"
  "fig10_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
