// Validation of the core contribution: PREDATOR's *predictions come true*.
//
// For each prediction kind, a clean run's predicted finding is checked
// against a ground-truth run of the same program under the predicted
// environment:
//   * double-line predictions (Figure 3b)  -> re-detect with the geometry's
//     line size doubled: the latent finding must become an OBSERVED one;
//   * shifted-placement predictions (3c)   -> re-run with the object placed
//     at the predicted-bad offset: observed again;
// and symmetric negative checks: where nothing was predicted, the altered
// environment must stay clean.
#include <gtest/gtest.h>

#include "workloads/workload.hpp"

namespace pred::wl {
namespace {

SessionOptions options(std::size_t line_size = 64) {
  SessionOptions o;
  o.heap_size = 32 * 1024 * 1024;
  o.runtime.geometry.line_size = line_size;
  return o;
}

bool observed_fs(const Report& rep) {
  for (const auto& f : rep.findings) {
    if (f.observed && f.is_false_sharing()) return true;
  }
  return false;
}

bool predicted_only_fs(const Report& rep) {
  bool any = false;
  for (const auto& f : rep.findings) {
    if (!f.is_false_sharing()) continue;
    if (f.observed) return false;
    any |= f.predicted;
  }
  return any;
}

TEST(PredictionComesTrue, DoubleLineSizePredictionVerifiedOn128ByteLines) {
  const Workload* lreg = find_workload("linear_regression");
  ASSERT_NE(lreg, nullptr);
  Params p;
  p.threads = 8;
  p.offset = 0;  // clean on 64-byte lines

  // Step 1: on 64-byte lines, the problem is prediction-only, and at least
  // one verified virtual line is a double-line candidate.
  Session host64(options(64));
  const auto traces = lreg->capture(host64, p);
  replay_into_session(host64, traces);
  ASSERT_TRUE(predicted_only_fs(host64.report())) << host64.report_text();
  bool double_line_predicted = false;
  for (const auto& f : host64.report().findings) {
    for (const auto& vl : f.predictions) {
      double_line_predicted |=
          vl.kind == VirtualLineTracker::Kind::kDoubleLine;
    }
  }
  ASSERT_TRUE(double_line_predicted);

  // Step 2: the *same traces* detected under 128-byte lines — the paper's
  // hypothetical larger-line machine. The prediction must materialize as
  // observed false sharing.
  Session host128(options(128));
  host128.runtime().register_region(host64.allocator().region().base(),
                                    host64.allocator().region().size());
  replay_into_session(host128, traces);
  const Report rep128 = build_report(host128.runtime());
  EXPECT_TRUE(observed_fs(rep128))
      << "double-line prediction did not come true";
}

TEST(PredictionComesTrue, ShiftedPlacementPredictionVerifiedAtBadOffset) {
  const Workload* lreg = find_workload("linear_regression");
  ASSERT_NE(lreg, nullptr);

  // Step 1: clean placement predicts shifted-placement false sharing.
  Session clean(options());
  Params p;
  p.threads = 8;
  p.offset = 0;
  lreg->run_replay(clean, p);
  bool shifted_predicted = false;
  for (const auto& f : clean.report().findings) {
    for (const auto& vl : f.predictions) {
      shifted_predicted |= vl.kind == VirtualLineTracker::Kind::kShifted;
    }
  }
  ASSERT_TRUE(shifted_predicted);

  // Step 2: actually place the object at a shifted offset: observed.
  Session shifted(options());
  p.offset = 24;
  lreg->run_replay(shifted, p);
  EXPECT_TRUE(observed_fs(shifted.report()))
      << "shifted-placement prediction did not come true";
}

TEST(PredictionComesTrue, PredictedInvalidationsApproximateTheRealOnes) {
  // The predicted (virtual-line) invalidation count at the clean placement
  // should be in the same ballpark as the observed count once the bad
  // placement actually happens — it is the same access stream hitting the
  // same line extents.
  const Workload* lreg = find_workload("linear_regression");
  Params p;
  p.threads = 8;

  // Compare the hottest single virtual line against the hottest single
  // physical line (a finding's predicted_invalidations field aggregates
  // many *overlapping* virtual lines and intentionally multi-counts).
  Session clean(options());
  p.offset = 0;
  lreg->run_replay(clean, p);
  std::uint64_t predicted = 0;
  for (const auto& f : clean.report().findings) {
    for (const auto& vl : f.predictions) {
      predicted = std::max(predicted, vl.invalidations);
    }
  }

  Session bad(options());
  p.offset = 24;
  lreg->run_replay(bad, p);
  std::uint64_t observed = 0;
  for (const auto& f : bad.report().findings) {
    for (const auto& lf : f.lines) {
      observed = std::max(observed, lf.invalidations);
    }
  }

  ASSERT_GT(predicted, 0u);
  ASSERT_GT(observed, 0u);
  // "Ballpark": within an order of magnitude either way. (Prediction uses
  // the conservative fully-interleaved assumption, so it sits above the
  // observed count; sampling clips both.)
  EXPECT_LT(predicted, observed * 10);
  EXPECT_GT(predicted * 10, observed);
}

TEST(PredictionStaysQuiet, PaddedLayoutSurvivesShiftedPlacements) {
  // The paper's fix (one full line *pair* per thread slot) must be immune
  // to placement: no observed false sharing at any offset.
  const Workload* lreg = find_workload("linear_regression");
  for (const std::size_t offset : {0ul, 8ul, 24ul, 56ul}) {
    Session session(options());
    Params p;
    p.threads = 8;
    p.offset = offset;
    p.fix_mask = ~0u;
    lreg->run_replay(session, p);
    EXPECT_FALSE(observed_fs(session.report()))
        << "padded layout false-shares at offset " << offset;
  }
}

TEST(PredictionStaysQuiet, CleanWorkloadStaysCleanUnderDoubledLines) {
  // string_match has no hot cross-thread neighbors: even on a 128-byte-line
  // machine nothing false-shares — and accordingly nothing was predicted.
  const Workload* w = find_workload("string_match");
  ASSERT_NE(w, nullptr);
  Params p;
  p.threads = 8;

  Session host64(options(64));
  const auto traces = w->capture(host64, p);
  replay_into_session(host64, traces);
  EXPECT_EQ(false_sharing_findings(host64.report()), 0u);

  Session host128(options(128));
  host128.runtime().register_region(host64.allocator().region().base(),
                                    host64.allocator().region().size());
  replay_into_session(host128, traces);
  EXPECT_FALSE(observed_fs(build_report(host128.runtime())));
}

}  // namespace
}  // namespace pred::wl
