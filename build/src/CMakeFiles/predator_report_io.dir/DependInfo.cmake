
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/report_io/json_writer.cpp" "src/CMakeFiles/predator_report_io.dir/report_io/json_writer.cpp.o" "gcc" "src/CMakeFiles/predator_report_io.dir/report_io/json_writer.cpp.o.d"
  "/root/repo/src/report_io/report_diff.cpp" "src/CMakeFiles/predator_report_io.dir/report_io/report_diff.cpp.o" "gcc" "src/CMakeFiles/predator_report_io.dir/report_io/report_diff.cpp.o.d"
  "/root/repo/src/report_io/report_json.cpp" "src/CMakeFiles/predator_report_io.dir/report_io/report_json.cpp.o" "gcc" "src/CMakeFiles/predator_report_io.dir/report_io/report_json.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/predator_advice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/predator_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
