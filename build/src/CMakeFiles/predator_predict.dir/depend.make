# Empty dependencies file for predator_predict.
# This may be replaced when dependencies are built.
