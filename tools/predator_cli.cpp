// predator-cli: command-line driver for the PREDATOR library.
//
// Runs any registered workload under the detector with configurable
// thresholds, prediction, sampling, placement, and fixes; prints the report
// as text or JSON (optionally with fix-advisor prescriptions); can persist
// and reuse trace files; and can act as a CI gate (nonzero exit when false
// sharing is found).
//
// The `monitor` subcommand instead runs the workload live (real threads)
// with the session's monitor attached and prints rolling snapshot telemetry
// while it executes, then the final report.
//
// The `analyze` subcommand parses a textual IR module and prints, per
// function, the static-analysis view (CFG, dominators, natural loops,
// constant facts) plus what the instrumentation pruning passes would do to
// it: baseline selective instrumentation vs. loop batching + chain merging.
//
// The fleet-aggregation subcommands (src/collect/): `serve` runs a
// collector daemon on a unix socket; `--emit-to` makes any run or monitor
// invocation stream its snapshots to such a collector; `fleet` is the
// one-command demo — it forks N workload processes, each publishing over
// its own socketpair into an in-process collector, and prints the
// fleet-wide hot-line/callsite rollup with [exact, exact+dropped] bounds.
//
// The `repair` subcommand (src/repair/) closes the loop on a planted
// false-sharing target: detect, compile a RepairPlan, apply it (allocator
// padding or IR rewrite), re-run, and prove the invalidations dropped while
// the workload's checksum stayed bit-identical. Exit 0 iff the repair is
// proven. `--emit-to` runs also stream their compiled plan to the
// collector, which `serve --emit-plan` persists merged.
//
//   predator-cli --list
//   predator-cli --workload histogram --threads 8 --advise
//   predator-cli --workload linear_regression --offset 24 --json
//   predator-cli --workload mysql --no-prediction --fail-on-findings
//   predator-cli --workload boost --save-trace /tmp/boost.trace
//   predator-cli monitor histogram --repeat 50 --interval-ms 250
//   predator-cli analyze examples/ir/hammer.pir
//   predator-cli serve --socket /tmp/pred.sock --expect 4
//   predator-cli --workload histogram --emit-to /tmp/pred.sock
//   predator-cli fleet histogram --clients 16 --json
//   predator-cli repair counter_pool --plan-out /tmp/pool.plan
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "advice/fix_advisor.hpp"
#include "collect/collector.hpp"
#include "collect/transport.hpp"
#include "instrument/analyze_tool.hpp"
#include "repair/plan_codec.hpp"
#include "repair/planner.hpp"
#include "repair/targets.hpp"
#include "repair/verifier.hpp"
#include "report_io/json_writer.hpp"
#include "report_io/report_diff.hpp"
#include "report_io/report_json.hpp"
#include "report_io/snapshot_json.hpp"
#include "sim/numa_cache_sim.hpp"
#include "trace/trace_io.hpp"
#include "workloads/workload.hpp"

using namespace pred;

namespace {

struct CliOptions {
  std::string workload;
  std::string save_trace;
  std::string plan_file;  ///< repair plan applied to this run's allocator
  wl::Params params;
  SessionOptions session;
  bool list = false;
  bool json = false;
  bool advise_fixes = false;
  bool fail_on_findings = false;
  bool no_prediction = false;
  bool diff_fix = false;
  std::size_t replay_quantum = 1;
  // `monitor` subcommand state.
  bool monitor_mode = false;
  std::uint64_t monitor_interval_ms = 200;
  std::uint64_t monitor_repeat = 1;
  // Fleet aggregation (serve / --emit-to / fleet).
  std::string emit_to;  ///< unix socket of a `serve` collector
  bool serve_mode = false;
  std::string socket_path;
  std::uint64_t serve_expect = 0;  ///< exit after N goodbyes (0: until killed)
  std::uint64_t serve_interval_ms = 0;  ///< rolling rollup period (0: off)
  std::uint64_t shards = 0;        ///< collector shards (0: hw concurrency)
  std::uint64_t top_k = 16;
  bool fleet_mode = false;
  std::uint64_t fleet_clients = 4;
  // `repair` subcommand state.
  bool repair_mode = false;
  bool repair_static = false;  ///< compile the plan statically (no profiling)
  std::string plan_out;   ///< repair: persist the compiled plan frame file
  std::string emit_plan;  ///< serve: persist the merged fleet plan at exit
  // --topology: also replay the captured trace through the two-level NUMA
  // simulator and report hot lines with remote/local cost attribution.
  bool topology_set = false;
  NumaConfig topology;
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s --workload NAME [options]\n"
      "       %s monitor NAME [--interval-ms N] [--repeat N] [options]\n"
      "       %s analyze FILE.pir [--json] [--predict] [--line-size N]\n"
      "       %s serve --socket PATH [--expect N] [options]\n"
      "       %s fleet NAME [--clients N] [options]\n"
      "       %s repair [TARGET] [--plan-out FILE] [options]\n"
      "       %s --list\n\n"
      "workload selection:\n"
      "  --list                 list available workloads and exit\n"
      "  --workload NAME        workload to analyze (required otherwise)\n"
      "  --threads N            logical threads (default 8)\n"
      "  --scale N              work multiplier (default 1)\n"
      "  --offset BYTES         placement offset for offset-sensitive "
      "kernels\n"
      "  --fix MASK             bitmask of sites to fix (site i -> bit i)\n\n"
      "detector configuration:\n"
      "  --no-prediction        run as PREDATOR-NP (observed-only)\n"
      "  --sampling RATE        sampling rate in (0,1], default 0.01\n"
      "  --tracking-threshold N writes before detailed tracking "
      "(default 100)\n"
      "  --report-threshold N   invalidations before reporting "
      "(default 100)\n"
      "  --quantum N            replay interleaving quantum (default 1)\n\n"
      "topology simulation:\n"
      "  --topology SxC         also replay the trace through the two-level\n"
      "                         NUMA simulator with S sockets x C cores per\n"
      "                         socket (e.g. 2x4, 4x16) and print hot lines\n"
      "                         with remote-traffic attribution\n"
      "  --remote-factor F      cross-socket latency multiplier (default 3)\n"
      "  --placement MODE       core numbering: compact | scatter\n"
      "                         (default compact; scatter puts neighbor\n"
      "                         threads on alternating sockets)\n"
      "  --llc-line N           per-socket LLC line size (default 64; a\n"
      "                         larger value models a coarser directory\n"
      "                         grain that also kills sibling lines)\n\n"
      "output:\n"
      "  --json                 print the report as JSON\n"
      "  --advise               append fix-advisor prescriptions\n"
      "  --save-trace FILE      also save the captured trace\n"
      "  --plan FILE            install a saved repair plan (a frame file\n"
      "                         from repair --plan-out or serve\n"
      "                         --emit-plan) into this run's allocator, so\n"
      "                         the workload executes on the repaired\n"
      "                         layout\n"
      "  --fail-on-findings     exit 2 when false sharing is reported\n"
      "  --diff-fix             also run the fixed variant and print the\n"
      "                         before/after report diff\n\n"
      "monitor subcommand (live run with rolling telemetry):\n"
      "  --interval-ms N        snapshot print period (default 200)\n"
      "  --repeat N             run the workload N times (default 1) to\n"
      "                         lengthen the observable window\n\n"
      "analyze subcommand (static analysis of a textual IR module):\n"
      "  prints per-function CFG/dominator/loop/constant statistics and\n"
      "  the baseline vs. fully-pruned instrumentation ledger\n"
      "  --json                 emit the same data as one JSON document\n"
      "  --predict              also run the static false-sharing predictor\n"
      "                         (thread roles = call-graph root functions)\n"
      "  --line-size N          base cache-line geometry for --predict\n"
      "                         (default 64; latent conflicts reported at\n"
      "                         2N)\n\n"
      "fleet aggregation:\n"
      "  serve --socket PATH    run a collector daemon on a unix socket\n"
      "    --expect N           exit once N clients said goodbye\n"
      "    --shards N           ingest shards (default: hw concurrency)\n"
      "    --top-k N            hot lines kept in the rollup (default 16)\n"
      "    --interval-ms N      also print a rolling rollup every N ms\n"
      "  --emit-to PATH         stream this run's snapshots to a collector\n"
      "                         (works with the default and monitor modes)\n"
      "  fleet NAME             fork N workload processes into an\n"
      "    --clients N          in-process collector and print the\n"
      "                         fleet-wide rollup (default 4 clients;\n"
      "                         --repeat snapshots per client)\n"
      "    --emit-plan FILE     serve: persist the merged fleet repair\n"
      "                         plan as a frame file at exit\n\n"
      "repair subcommand (closed loop: detect -> plan -> apply -> verify):\n"
      "  repair                 with no TARGET: list the planted targets\n"
      "  repair TARGET          run the loop; exit 0 iff the repair is\n"
      "                         proven (invalidation drop >= 90%% on the\n"
      "                         planned sites, no surviving finding, and a\n"
      "                         bit-identical workload checksum)\n"
      "  --plan-out FILE        persist the compiled plan as a frame file\n"
      "  --static               compile the plan from the static predictor\n"
      "                         (no profiling run informs it); the runs\n"
      "                         that follow only measure the drop\n"
      "  (--threads/--scale/--quantum/--json apply)\n",
      argv0, argv0, argv0, argv0, argv0, argv0, argv0);
}

bool parse_u64(const char* s, std::uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_args(int argc, char** argv, CliOptions* opt) {
  int first = 1;
  if (argc > 1 && std::strcmp(argv[1], "monitor") == 0) {
    opt->monitor_mode = true;
    first = 2;
  } else if (argc > 1 && std::strcmp(argv[1], "serve") == 0) {
    opt->serve_mode = true;
    first = 2;
  } else if (argc > 1 && std::strcmp(argv[1], "fleet") == 0) {
    opt->fleet_mode = true;
    first = 2;
  } else if (argc > 1 && std::strcmp(argv[1], "repair") == 0) {
    opt->repair_mode = true;
    first = 2;
  }
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    std::uint64_t v = 0;
    if (arg == "--list") {
      opt->list = true;
    } else if (arg == "--workload") {
      const char* s = next("--workload");
      if (!s) return false;
      opt->workload = s;
    } else if (arg == "--threads") {
      const char* s = next("--threads");
      if (!s || !parse_u64(s, &v) || v == 0 || v > 64) return false;
      opt->params.threads = static_cast<std::uint32_t>(v);
    } else if (arg == "--scale") {
      const char* s = next("--scale");
      if (!s || !parse_u64(s, &v) || v == 0) return false;
      opt->params.scale = v;
    } else if (arg == "--offset") {
      const char* s = next("--offset");
      if (!s || !parse_u64(s, &v) || v >= 128) return false;
      opt->params.offset = v;
    } else if (arg == "--fix") {
      const char* s = next("--fix");
      if (!s || !parse_u64(s, &v)) return false;
      opt->params.fix_mask = static_cast<std::uint32_t>(v);
    } else if (arg == "--no-prediction") {
      opt->no_prediction = true;
    } else if (arg == "--sampling") {
      const char* s = next("--sampling");
      if (!s) return false;
      const double rate = std::atof(s);
      if (rate <= 0.0 || rate > 1.0) return false;
      opt->session.runtime.set_sampling_rate(rate);
    } else if (arg == "--tracking-threshold") {
      const char* s = next("--tracking-threshold");
      if (!s || !parse_u64(s, &v) || v == 0) return false;
      opt->session.runtime.tracking_threshold = v;
      if (opt->session.runtime.prediction_threshold < v) {
        opt->session.runtime.prediction_threshold = v;
      }
    } else if (arg == "--report-threshold") {
      const char* s = next("--report-threshold");
      if (!s || !parse_u64(s, &v)) return false;
      opt->session.runtime.report_invalidation_threshold = v;
    } else if (arg == "--quantum") {
      const char* s = next("--quantum");
      if (!s || !parse_u64(s, &v) || v == 0) return false;
      opt->replay_quantum = v;
    } else if (arg == "--topology") {
      const char* s = next("--topology");
      unsigned sockets = 0, cores = 0;
      if (!s || std::sscanf(s, "%ux%u", &sockets, &cores) != 2 ||
          sockets < 1 || sockets > 16 || cores < 1 ||
          sockets * cores > NumaCacheSim::kMaxCores) {
        std::fprintf(stderr, "bad --topology (want SxC, e.g. 2x4)\n");
        return false;
      }
      opt->topology_set = true;
      opt->topology.sockets = sockets;
      opt->topology.cores_per_socket = cores;
    } else if (arg == "--remote-factor") {
      const char* s = next("--remote-factor");
      if (!s) return false;
      const double f = std::atof(s);
      if (f < 1.0) return false;
      opt->topology.remote_factor = f;
    } else if (arg == "--placement") {
      const char* s = next("--placement");
      if (!s) return false;
      if (std::strcmp(s, "compact") == 0) {
        opt->topology.placement = NumaPlacement::kCompact;
      } else if (std::strcmp(s, "scatter") == 0) {
        opt->topology.placement = NumaPlacement::kScatter;
      } else {
        std::fprintf(stderr, "bad --placement (compact | scatter)\n");
        return false;
      }
    } else if (arg == "--llc-line") {
      const char* s = next("--llc-line");
      if (!s || !parse_u64(s, &v) || v < 64 || v % 64 != 0) return false;
      opt->topology.llc_line_size = v;
    } else if (arg == "--json") {
      opt->json = true;
    } else if (arg == "--advise") {
      opt->advise_fixes = true;
    } else if (arg == "--save-trace") {
      const char* s = next("--save-trace");
      if (!s) return false;
      opt->save_trace = s;
    } else if (arg == "--plan") {
      const char* s = next("--plan");
      if (!s) return false;
      opt->plan_file = s;
    } else if (arg == "--fail-on-findings") {
      opt->fail_on_findings = true;
    } else if (arg == "--diff-fix") {
      opt->diff_fix = true;
    } else if (arg == "--interval-ms") {
      const char* s = next("--interval-ms");
      if (!s || !parse_u64(s, &v) || v == 0) return false;
      opt->monitor_interval_ms = v;
      opt->serve_interval_ms = v;
    } else if (arg == "--repeat") {
      const char* s = next("--repeat");
      if (!s || !parse_u64(s, &v) || v == 0) return false;
      opt->monitor_repeat = v;
    } else if (arg == "--emit-to") {
      const char* s = next("--emit-to");
      if (!s) return false;
      opt->emit_to = s;
    } else if (arg == "--socket") {
      const char* s = next("--socket");
      if (!s) return false;
      opt->socket_path = s;
    } else if (arg == "--expect") {
      const char* s = next("--expect");
      if (!s || !parse_u64(s, &v)) return false;
      opt->serve_expect = v;
    } else if (arg == "--shards") {
      const char* s = next("--shards");
      if (!s || !parse_u64(s, &v) || v > 64) return false;
      opt->shards = v;
    } else if (arg == "--top-k") {
      const char* s = next("--top-k");
      if (!s || !parse_u64(s, &v) || v == 0) return false;
      opt->top_k = v;
    } else if (arg == "--clients") {
      const char* s = next("--clients");
      if (!s || !parse_u64(s, &v) || v == 0 || v > 256) return false;
      opt->fleet_clients = v;
    } else if (arg == "--plan-out") {
      const char* s = next("--plan-out");
      if (!s) return false;
      opt->plan_out = s;
    } else if (arg == "--static" && opt->repair_mode) {
      opt->repair_static = true;
    } else if (arg == "--emit-plan") {
      const char* s = next("--emit-plan");
      if (!s) return false;
      opt->emit_plan = s;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      std::exit(0);
    } else if ((opt->monitor_mode || opt->fleet_mode || opt->repair_mode) &&
               arg.rfind("--", 0) != 0 && opt->workload.empty()) {
      opt->workload = arg;  // `monitor NAME` / `fleet NAME` positional
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

// --topology: replay the same captured traces through the two-level NUMA
// simulator plus a 1-socket baseline with identical core count and costs,
// then print the big-machine verdict — remote/local cycle ratio, the
// interconnect traffic breakdown, and the hottest lines attributed back to
// their allocation sites. With `json_out` set, the verdict is serialized as
// one JSON object (the value of the report document's "topology" key — the
// whole --json output must stay a single parseable document) instead of
// printed.
void run_topology_sim(const CliOptions& opt, Session& session,
                      const std::vector<ThreadTrace>& traces,
                      std::string* json_out) {
  const NumaConfig& cfg = opt.topology;
  NumaConfig base = cfg;
  base.sockets = 1;
  base.cores_per_socket = cfg.total_cores();
  base.llc_line_size = cfg.line_size;
  NumaCacheSim local(base);
  NumaCacheSim numa(cfg);
  simulate_interleaved(local, traces, opt.replay_quantum);
  simulate_interleaved(numa, traces, opt.replay_quantum);
  const NumaStats& s = numa.stats();
  const double ratio =
      local.max_core_cycles() == 0
          ? 1.0
          : static_cast<double>(numa.max_core_cycles()) /
                static_cast<double>(local.max_core_cycles());

  auto site_of = [&](Address a) -> std::string {
    const auto obj = session.runtime().objects().find(a);
    if (!obj) return "?";
    if (obj->is_global && !obj->name.empty()) return obj->name;
    if (obj->callsite != kNoCallsite) {
      const auto& frames =
          session.runtime().callsites().get(obj->callsite).frames;
      if (!frames.empty()) return frames.back();
    }
    return "?";
  };
  const auto hot = numa.hottest_lines(8);
  const char* placement =
      cfg.placement == NumaPlacement::kScatter ? "scatter" : "compact";

  if (json_out != nullptr) {
    JsonWriter w;
    w.begin_object();
    w.field("sockets", static_cast<std::uint64_t>(cfg.sockets));
    w.field("cores_per_socket",
            static_cast<std::uint64_t>(cfg.cores_per_socket));
    w.field("placement", placement);
    w.field("remote_factor", cfg.remote_factor);
    w.field("llc_line_size", static_cast<std::uint64_t>(cfg.llc_line_size));
    w.field("max_core_cycles", numa.max_core_cycles());
    w.field("local_max_core_cycles", local.max_core_cycles());
    w.field("remote_ratio", ratio);
    w.field("remote_coherence_misses", s.remote_coherence_misses);
    w.field("remote_invalidations", s.remote_invalidations_sent);
    w.field("directory_transitions", s.directory_transitions);
    w.field("llc_sibling_invalidations", s.llc_sibling_invalidations);
    w.key("hot_lines").begin_array();
    for (const auto& h : hot) {
      w.begin_object();
      w.field("addr", static_cast<std::uint64_t>(h.line_start));
      w.field("invalidations", h.invalidations);
      w.field("remote_invalidations", h.remote_invalidations);
      w.field("site", site_of(h.line_start));
      w.end_object();
    }
    w.end_array();
    w.end_object();
    *json_out = w.str();
    return;
  }

  std::printf("\n=== topology %ux%u (%s, remote x%.1f, llc %zuB) ===\n",
              cfg.sockets, cfg.cores_per_socket, placement, cfg.remote_factor,
              cfg.llc_line_size);
  std::printf("modeled cycles: %llu (1-socket baseline %llu, "
              "remote/local ratio %.2fx)\n",
              static_cast<unsigned long long>(numa.max_core_cycles()),
              static_cast<unsigned long long>(local.max_core_cycles()), ratio);
  std::printf("remote traffic: coherence %llu, shared fetches %llu, "
              "cold %llu, invalidations %llu\n",
              static_cast<unsigned long long>(s.remote_coherence_misses),
              static_cast<unsigned long long>(s.remote_shared_fetches),
              static_cast<unsigned long long>(s.remote_cold_misses),
              static_cast<unsigned long long>(s.remote_invalidations_sent));
  std::printf("directory: transitions %llu, socket invalidations %llu, "
              "llc sibling kills %llu\n",
              static_cast<unsigned long long>(s.directory_transitions),
              static_cast<unsigned long long>(s.directory_invalidations),
              static_cast<unsigned long long>(s.llc_sibling_invalidations));
  if (!hot.empty()) {
    std::printf("hot lines (top %zu):\n", hot.size());
    for (const auto& h : hot) {
      std::printf("  0x%llx inv=%llu remote=%llu  %s\n",
                  static_cast<unsigned long long>(h.line_start),
                  static_cast<unsigned long long>(h.invalidations),
                  static_cast<unsigned long long>(h.remote_invalidations),
                  site_of(h.line_start).c_str());
    }
  }
}

int list_workloads() {
  std::printf("%-20s %-8s %s\n", "name", "suite", "known sites");
  for (const auto& w : wl::all_workloads()) {
    std::string sites;
    for (const auto& s : w->traits().sites) {
      if (!sites.empty()) sites += ", ";
      sites += s.where;
      if (s.needs_prediction) sites += " [latent]";
    }
    std::printf("%-20s %-8s %s\n", w->traits().name.c_str(),
                w->traits().suite.c_str(),
                sites.empty() ? "(clean)" : sites.c_str());
  }
  return 0;
}

// Connects to a `serve` collector and sends the hello bracket. Null (with
// a diagnostic) when the endpoint is unreachable.
std::unique_ptr<FdSink> open_emit_sink(const std::string& path,
                                       Session& session) {
  const int fd = connect_unix(path);
  if (fd < 0) {
    std::fprintf(stderr, "cannot connect to collector at %s\n", path.c_str());
    return nullptr;
  }
  auto sink = std::make_unique<FdSink>(fd);
  if (!sink->send(session.hello_frame())) {
    std::fprintf(stderr, "collector at %s hung up\n", path.c_str());
    return nullptr;
  }
  return sink;
}

// `monitor` subcommand: run the workload live (real threads) with the
// session monitor attached, print a rolling snapshot every interval, then
// the final report. Demonstrates that snapshots are served while mutators
// run — the printing happens from the main thread with no pauses. With
// --emit-to, every printed snapshot is also published to the collector.
int run_monitor(const CliOptions& opt, const wl::Workload* w) {
  Session session(opt.session);
  session.monitor().start();

  std::unique_ptr<FdSink> emit;
  if (!opt.emit_to.empty()) {
    emit = open_emit_sink(opt.emit_to, session);
    if (!emit) return 1;
  }

  std::atomic<bool> done{false};
  std::thread worker([&] {
    for (std::uint64_t r = 0; r < opt.monitor_repeat; ++r) {
      w->run_live(session, opt.params);
    }
    done.store(true, std::memory_order_release);
  });

  const auto interval = std::chrono::milliseconds(opt.monitor_interval_ms);
  while (!done.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(interval);
    std::printf("%s\n", session.monitor().snapshot_text().c_str());
    std::fflush(stdout);
    if (emit) emit->send(session.publish());
  }
  worker.join();

  if (emit) {
    emit->send(session.publish());
    emit->send(session.goodbye_frame());
  }
  session.monitor().stop();

  std::printf("=== final snapshot ===\n%s\n",
              session.monitor().snapshot_text().c_str());
  std::printf("=== final report ===\n%s",
              format_report(session.report(),
                            session.runtime().callsites()).c_str());
  if (opt.fail_on_findings &&
      wl::false_sharing_findings(session.report()) > 0) {
    return 2;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Fleet aggregation: serve / fleet
// ---------------------------------------------------------------------------

// One transport connection into the collector: the fd plus the incremental
// parser reassembling frames across read() boundaries.
struct ClientConn {
  int fd = -1;
  FrameStreamParser parser;
  bool open = true;
};

// One POLLIN's worth of bytes: read once, feed the parser, ingest every
// complete frame. EOF or a poisoned stream closes the connection.
void drain_conn(Collector& collector, ClientConn& conn) {
  char buf[4096];
  ssize_t n;
  do {
    n = ::read(conn.fd, buf, sizeof buf);
  } while (n < 0 && errno == EINTR);
  if (n <= 0) {
    conn.open = false;
    ::close(conn.fd);
    return;
  }
  conn.parser.feed(std::string_view(buf, static_cast<std::size_t>(n)));
  wire::Frame frame;
  while (conn.parser.next(&frame)) collector.ingest_frame(frame);
  if (conn.parser.poisoned()) {
    std::fprintf(stderr, "dropping client: corrupt frame stream\n");
    conn.open = false;
    ::close(conn.fd);
  }
}

void print_rollup(const Collector& collector, bool json) {
  if (json) {
    const repair::RepairPlan plan = collector.merged_plan();
    std::printf("%s\n",
                rollup_json(collector.rollup(),
                            plan.empty() ? nullptr : &plan)
                    .c_str());
  } else {
    std::printf("%s", collector.rollup_text().c_str());
  }
  std::fflush(stdout);
}

// `serve` subcommand: collector daemon on a unix socket. Single-threaded
// poll loop (the Collector itself is what's thread-safe; the daemon needs
// no threads). With --expect N it exits once N clients said goodbye and
// every connection drained; otherwise it runs until killed.
int run_serve(const CliOptions& opt) {
  const int lfd = listen_unix(opt.socket_path);
  if (lfd < 0) {
    std::fprintf(stderr, "cannot listen on %s\n", opt.socket_path.c_str());
    return 1;
  }
  Collector collector({static_cast<std::size_t>(opt.shards),
                       static_cast<std::size_t>(opt.top_k)});
  std::fprintf(stderr, "collector: listening on %s (%zu shard(s))\n",
               opt.socket_path.c_str(), collector.num_shards());

  std::vector<ClientConn> conns;
  const bool periodic = opt.serve_interval_ms != 0;
  for (;;) {
    std::vector<pollfd> pfds;
    pfds.push_back({lfd, POLLIN, 0});
    for (const ClientConn& c : conns) {
      if (c.open) pfds.push_back({c.fd, POLLIN, 0});
    }
    const int timeout =
        periodic ? static_cast<int>(opt.serve_interval_ms) : -1;
    const int ready = ::poll(pfds.data(), pfds.size(), timeout);
    if (ready < 0 && errno != EINTR) break;

    if (ready > 0 && (pfds[0].revents & POLLIN) != 0) {
      const int cfd = ::accept(lfd, nullptr, nullptr);
      if (cfd >= 0) {
        ClientConn conn;
        conn.fd = cfd;
        conns.push_back(std::move(conn));
      }
    }
    std::size_t pi = 1;
    for (ClientConn& c : conns) {
      if (!c.open) continue;
      if (pi < pfds.size() && pfds[pi].fd == c.fd &&
          (pfds[pi].revents & (POLLIN | POLLHUP)) != 0) {
        drain_conn(collector, c);
      }
      ++pi;
    }
    conns.erase(std::remove_if(conns.begin(), conns.end(),
                               [](const ClientConn& c) { return !c.open; }),
                conns.end());

    if (ready == 0 && periodic) print_rollup(collector, opt.json);
    if (opt.serve_expect != 0 &&
        collector.stats().goodbyes >= opt.serve_expect && conns.empty()) {
      break;
    }
  }
  ::close(lfd);
  ::unlink(opt.socket_path.c_str());

  const Collector::Stats st = collector.stats();
  std::fprintf(stderr,
               "collector: %llu frame(s) (%llu snapshot(s), %llu hello(s), "
               "%llu goodbye(s), %llu plan(s)), %llu rejected\n",
               static_cast<unsigned long long>(st.frames_ingested),
               static_cast<unsigned long long>(st.snapshots_ingested),
               static_cast<unsigned long long>(st.hellos),
               static_cast<unsigned long long>(st.goodbyes),
               static_cast<unsigned long long>(st.plans_ingested),
               static_cast<unsigned long long>(st.frames_rejected));
  if (!opt.emit_plan.empty()) {
    const repair::RepairPlan merged = collector.merged_plan();
    if (repair::save_plan_file(opt.emit_plan, merged)) {
      std::fprintf(stderr, "collector: merged plan (%zu entr%s) -> %s\n",
                   merged.entries.size(),
                   merged.entries.size() == 1 ? "y" : "ies",
                   opt.emit_plan.c_str());
    } else {
      std::fprintf(stderr, "collector: cannot write plan to %s\n",
                   opt.emit_plan.c_str());
      return 1;
    }
  }
  print_rollup(collector, opt.json);
  return 0;
}

// One forked fleet client: replay the workload deterministically,
// publishing a cumulative snapshot after every repeat, bracketed by
// hello/goodbye. Exits the process (never returns).
[[noreturn]] void run_fleet_client(const CliOptions& opt,
                                   const wl::Workload* w, int fd) {
  Session session(opt.session);
  session.monitor().start();
  FdSink sink(fd);
  bool ok = sink.send(session.hello_frame());
  for (std::uint64_t r = 0; r < opt.monitor_repeat && ok; ++r) {
    w->run_replay(session, opt.params, opt.replay_quantum);
    ok = sink.send(session.publish());
  }
  if (ok) ok = sink.send(session.goodbye_frame());
  session.monitor().stop();
  std::_Exit(ok ? 0 : 1);
}

// `fleet` subcommand: the end-to-end demo. Forks --clients workload
// processes, each streaming snapshots over its own socketpair, drains them
// all into an in-process collector, and prints the fleet rollup. Children
// replay captured traces, so the demo is deterministic even on one core.
int run_fleet(const CliOptions& opt, const wl::Workload* w) {
  Collector collector({static_cast<std::size_t>(opt.shards),
                       static_cast<std::size_t>(opt.top_k)});
  std::vector<ClientConn> conns;
  std::vector<pid_t> pids;

  for (std::uint64_t c = 0; c < opt.fleet_clients; ++c) {
    int fds[2];
    if (!make_socketpair(fds)) {
      std::fprintf(stderr, "socketpair failed for client %llu\n",
                   static_cast<unsigned long long>(c));
      return 1;
    }
    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::fprintf(stderr, "fork failed for client %llu\n",
                   static_cast<unsigned long long>(c));
      return 1;
    }
    if (pid == 0) {
      ::close(fds[0]);
      for (const ClientConn& prev : conns) ::close(prev.fd);
      run_fleet_client(opt, w, fds[1]);  // _Exits
    }
    ::close(fds[1]);
    ClientConn conn;
    conn.fd = fds[0];
    conns.push_back(std::move(conn));
    pids.push_back(pid);
  }

  // Drain every socketpair until all children closed their end.
  std::size_t open = conns.size();
  while (open > 0) {
    std::vector<pollfd> pfds;
    for (const ClientConn& c : conns) {
      if (c.open) pfds.push_back({c.fd, POLLIN, 0});
    }
    const int ready = ::poll(pfds.data(), pfds.size(), -1);
    if (ready < 0 && errno != EINTR) break;
    std::size_t pi = 0;
    for (ClientConn& c : conns) {
      if (!c.open) continue;
      if ((pfds[pi].revents & (POLLIN | POLLHUP)) != 0) {
        drain_conn(collector, c);
        if (!c.open) --open;
      }
      ++pi;
    }
  }

  int failed = 0;
  for (const pid_t pid : pids) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) ++failed;
  }
  if (failed > 0) {
    std::fprintf(stderr, "%d fleet client(s) failed\n", failed);
  }

  const Collector::Stats st = collector.stats();
  std::fprintf(stderr,
               "fleet: %llu client(s), %llu snapshot(s) ingested, "
               "%llu rejected\n",
               static_cast<unsigned long long>(opt.fleet_clients),
               static_cast<unsigned long long>(st.snapshots_ingested),
               static_cast<unsigned long long>(st.frames_rejected));
  print_rollup(collector, opt.json);
  return failed > 0 ? 1 : 0;
}

int list_repair_targets() {
  std::printf("%-16s %s\n", "target", "defect");
  for (const repair::RepairTarget* t : repair::all_repair_targets()) {
    std::printf("%-16s %s\n", std::string(t->name()).c_str(),
                std::string(t->description()).c_str());
  }
  return 0;
}

// `repair` subcommand: run the closed loop on a planted target and report
// the verdict. Exit 0 iff the repair is proven (drop >= threshold, no
// surviving finding on the planned sites, bit-identical checksum).
int run_repair(const CliOptions& opt) {
  if (opt.workload.empty() || opt.list) return list_repair_targets();
  const repair::RepairTarget* target =
      repair::find_repair_target(opt.workload);
  if (target == nullptr) {
    std::fprintf(stderr, "unknown repair target '%s' (run `repair` with no "
                         "name to list them)\n",
                 opt.workload.c_str());
    return 1;
  }

  repair::VerifierOptions vopt;
  vopt.threads = opt.params.threads;
  vopt.scale = opt.params.scale;
  vopt.quantum = opt.replay_quantum;
  if (opt.repair_static) {
    repair::StaticModuleSpec probe;
    if (!target->static_spec(&probe, vopt.threads, vopt.scale)) {
      std::fprintf(stderr, "target '%s' has no static module spec; "
                           "--static needs an IR-describable target\n",
                   opt.workload.c_str());
      return 1;
    }
  }
  const repair::RepairOutcome outcome =
      opt.repair_static ? repair::run_static_repair_loop(*target, vopt)
                        : repair::run_repair_loop(*target, vopt);

  if (!opt.plan_out.empty()) {
    if (!repair::save_plan_file(opt.plan_out, outcome.plan)) {
      std::fprintf(stderr, "cannot write plan to %s\n", opt.plan_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "plan: %zu entr%s -> %s\n",
                 outcome.plan.entries.size(),
                 outcome.plan.entries.size() == 1 ? "y" : "ies",
                 opt.plan_out.c_str());
  }

  const bool proven = outcome.repaired(vopt.drop_threshold);
  if (opt.json) {
    JsonWriter w;
    w.begin_object();
    w.field("target", std::string(target->name()));
    w.field("static", opt.repair_static);
    w.field("repaired", proven);
    w.field("baseline_invalidations", outcome.baseline_invalidations);
    w.field("repaired_invalidations", outcome.repaired_invalidations);
    w.field("drop_pct", outcome.drop_pct());
    w.field("drop_threshold", vopt.drop_threshold);
    w.field("surviving_site_findings",
            static_cast<std::uint64_t>(outcome.repaired_site_findings));
    w.field("baseline_checksum", outcome.baseline_checksum);
    w.field("repaired_checksum", outcome.repaired_checksum);
    w.field("checksums_match", outcome.checksums_match());
    w.field("detect_ms", outcome.detect_ms);
    w.field("plan_ms", outcome.plan_ms);
    w.field("apply_ms", outcome.apply_ms);
    w.field("verify_ms", outcome.verify_ms);
    w.key("repair_plan").begin_object();
    write_plan_fields(w, outcome.plan);
    w.end_object();
    w.end_object();
    std::printf("%s\n", w.str().c_str());
  } else {
    std::printf("%s\n%s", repair::format_plan(outcome.plan).c_str(),
                repair::format_outcome(outcome, vopt.drop_threshold).c_str());
  }
  return proven ? 0 : 2;
}

// `analyze` subcommand: delegates to the shared analyze tool (also the
// library entry point the tests drive), which prints the per-function
// CFG/dominator/loop/constant view, the call graph and access summaries,
// and the module-wide instrumentation ledger -- plus the static
// false-sharing prediction report under --predict, or everything as one
// JSON document under --json.
int run_analyze_cmd(const char* argv0, const std::vector<std::string>& args) {
  ir::AnalyzeOptions aopt;
  std::string err;
  if (!ir::parse_analyze_args(args, &aopt, &err)) {
    std::fprintf(stderr, "%s\n", err.c_str());
    usage(argv0);
    return 1;
  }
  std::string out;
  const int rc = ir::run_analyze(aopt, &out, &err);
  if (!out.empty()) std::fputs(out.c_str(), stdout);
  if (!err.empty()) std::fprintf(stderr, "%s\n", err.c_str());
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "analyze") == 0) {
    return run_analyze_cmd(argv[0],
                           std::vector<std::string>(argv + 2, argv + argc));
  }
  CliOptions opt;
  opt.session.heap_size = 64 * 1024 * 1024;
  if (!parse_args(argc, argv, &opt)) {
    usage(argv[0]);
    return 1;
  }
  if (opt.repair_mode) return run_repair(opt);
  if (opt.list) return list_workloads();
  // A dead collector must surface as a failed send, not a fatal SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
  if (opt.serve_mode) {
    if (opt.socket_path.empty()) {
      usage(argv[0]);
      return 1;
    }
    return run_serve(opt);
  }
  if (opt.workload.empty()) {
    usage(argv[0]);
    return 1;
  }
  const wl::Workload* w = wl::find_workload(opt.workload);
  if (w == nullptr) {
    std::fprintf(stderr, "unknown workload '%s' (try --list)\n",
                 opt.workload.c_str());
    return 1;
  }

  opt.session.runtime.prediction_enabled = !opt.no_prediction;
  if (opt.monitor_mode) return run_monitor(opt, w);
  if (opt.fleet_mode) return run_fleet(opt, w);
  Session session(opt.session);

  // --plan: the saved plan must be live in the allocator before the
  // workload allocates anything, or heap sites would miss their padding.
  if (!opt.plan_file.empty()) {
    repair::RepairPlan loaded;
    if (!repair::load_plan_file(opt.plan_file, &loaded)) {
      std::fprintf(stderr, "cannot load repair plan from %s\n",
                   opt.plan_file.c_str());
      return 1;
    }
    std::fprintf(stderr, "plan: %zu entr%s installed from %s\n",
                 loaded.entries.size(),
                 loaded.entries.size() == 1 ? "y" : "ies",
                 opt.plan_file.c_str());
    session.allocator().install_repair_plan(
        std::make_shared<const repair::RepairPlan>(std::move(loaded)));
  }

  // --emit-to: publish this run's snapshots to a `serve` collector. The
  // monitor must observe the replay, so start it before events flow.
  std::unique_ptr<FdSink> emit;
  if (!opt.emit_to.empty()) {
    emit = open_emit_sink(opt.emit_to, session);
    if (!emit) return 1;
    session.monitor().start();
  }

  const auto traces = w->capture(session, opt.params);
  if (!opt.save_trace.empty()) {
    if (!save_traces_file(opt.save_trace, traces)) {
      std::fprintf(stderr, "cannot write trace to %s\n",
                   opt.save_trace.c_str());
      return 1;
    }
    std::fprintf(stderr, "trace: %zu events -> %s\n", total_events(traces),
                 opt.save_trace.c_str());
  }
  wl::replay_into_session(session, traces, opt.replay_quantum);

  const Report report = session.report();
  std::vector<FixSuggestion> suggestions;
  repair::RepairPlan plan;
  if (opt.advise_fixes || emit) {
    suggestions = advise(report);
    plan = repair::compile_plan(report, suggestions,
                                session.runtime().callsites());
  }

  if (emit) {
    emit->send(session.publish());
    // The compiled plan rides along so a `serve --emit-plan` collector can
    // merge repair advice across the fleet, bracketed before the goodbye.
    // The session uid is stamped only on the emitted copy: local reports
    // stay byte-identical across runs (deterministic-replay invariant),
    // while the collector still gets per-session provenance.
    if (!plan.empty()) {
      repair::RepairPlan tagged = plan;
      tagged.origin_uid = session.uid();
      emit->send(repair::encode_plan_frame(tagged));
    }
    emit->send(session.goodbye_frame());
    session.monitor().stop();
  }

  if (opt.json) {
    std::string doc =
        report_to_json(report, session.runtime().callsites(),
                       opt.advise_fixes ? &suggestions : nullptr,
                       opt.advise_fixes && !plan.empty() ? &plan : nullptr);
    if (opt.topology_set) {
      // Splice the topology verdict into the report document so --json
      // still emits exactly one parseable JSON object.
      std::string topo;
      run_topology_sim(opt, session, traces, &topo);
      doc.insert(doc.rfind('}'), ",\"topology\":" + topo);
    }
    std::printf("%s\n", doc.c_str());
  } else {
    std::printf("%s",
                format_report(report, session.runtime().callsites()).c_str());
    if (opt.advise_fixes) {
      std::printf("\n%s", format_suggestions(suggestions).c_str());
    }
    if (opt.topology_set) run_topology_sim(opt, session, traces, nullptr);
  }

  if (opt.diff_fix) {
    Session fixed_session(opt.session);
    wl::Params fixed_params = opt.params;
    fixed_params.fix_mask = ~0u;
    w->run_replay(fixed_session, fixed_params, opt.replay_quantum);
    const Report fixed_report = fixed_session.report();
    const ReportDiff diff =
        diff_reports(report, session.runtime().callsites(), fixed_report,
                     fixed_session.runtime().callsites());
    std::printf("\n=== buggy -> fixed diff ===\n%s",
                format_diff(diff).c_str());
  }

  if (opt.fail_on_findings && wl::false_sharing_findings(report) > 0) {
    return 2;
  }
  return 0;
}
