file(REMOVE_RECURSE
  "CMakeFiles/predator_predict.dir/predict/hot_access.cpp.o"
  "CMakeFiles/predator_predict.dir/predict/hot_access.cpp.o.d"
  "CMakeFiles/predator_predict.dir/predict/predictor.cpp.o"
  "CMakeFiles/predator_predict.dir/predict/predictor.cpp.o.d"
  "libpredator_predict.a"
  "libpredator_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predator_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
