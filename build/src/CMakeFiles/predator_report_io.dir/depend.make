# Empty dependencies file for predator_report_io.
# This may be replaced when dependencies are built.
