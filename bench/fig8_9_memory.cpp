// Figures 8 and 9 reproduction: absolute and relative physical memory
// overhead of running under PREDATOR.
//
// The paper samples proportional set size from /proc; here memory is
// accounted exactly: "Original" is the application's live heap bytes,
// "PREDATOR" adds the custom allocator's footprint and all shadow/tracker
// metadata. The shapes to reproduce: modest overhead for most programs
// (paper: <50% for 17 of 22), and large *relative* overhead only for
// tiny-footprint programs (swaptions, aget).
#include <cstdio>

#include "bench_util.hpp"

using namespace pred;
using namespace pred::bench;

namespace {
// PSS-style accounting constants. The paper measures whole-process
// proportional set size, which includes the binary, libc, and stacks
// (roughly half a megabyte for these programs) in *both* configurations,
// plus PREDATOR's own resident structures (interposition tables, callsite
// storage, initial shadow pages) in the instrumented one.
constexpr double kProcessBaselineMb = 0.5;
constexpr double kRuntimeResidentMb = 1.0;
}  // namespace

int main() {
  std::printf("Figures 8/9: memory overhead under PREDATOR "
              "(PSS-style accounting)\n\n");
  std::printf("%-20s %14s %14s %10s\n", "workload", "original (MB)",
              "PREDATOR (MB)", "relative");
  print_rule('-', 64);

  std::vector<double> ratios;
  for (const auto& w : wl::all_workloads()) {
    SessionOptions opts = session_options();
    Session session(opts);
    w->run_live(session, default_params());

    const double live_mb =
        static_cast<double>(session.allocator().live_bytes()) / (1024 * 1024);
    // Touched metadata: shadow slots for lines the application actually
    // owns, plus live trackers and virtual lines (untouched reservation is
    // lazily mapped and never becomes resident).
    const double metadata_mb =
        static_cast<double>(session.runtime().touched_metadata_bytes(
            session.allocator().live_bytes())) /
        (1024 * 1024);
    const double original_mb = kProcessBaselineMb + live_mb;
    const double predator_mb =
        kProcessBaselineMb + kRuntimeResidentMb + live_mb + metadata_mb;
    const double ratio = predator_mb / original_mb;
    ratios.push_back(ratio);
    std::printf("%-20s %14.3f %14.3f %9.2fx\n", w->traits().name.c_str(),
                original_mb, predator_mb, ratio);
  }
  print_rule('-', 64);
  std::printf("%-20s %14s %14s %9.2fx   (paper avg: ~2x)\n", "GEOMEAN", "",
              "", geomean(ratios));
  std::printf(
      "\nNote: tiny-footprint programs (swaptions, boost, aget, mysql) show "
      "the paper's\nlarge *relative* overheads because PREDATOR's fixed "
      "resident structures dominate.\n");
  return 0;
}
