// Mini-IR: the compiler-side substrate standing in for LLVM IR (see
// DESIGN.md). A register machine with basic blocks, loads/stores against
// real process memory, arithmetic, and branches — just enough structure for
// the instrumentation pass of Section 2.2 / 2.4.2 to make the same decisions
// the paper's LLVM pass makes (instrument only memory accesses; once per
// address & access type per basic block; honor black/whitelists and
// writes-only mode).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/cacheline.hpp"

namespace pred::ir {

using Reg = std::uint32_t;

enum class Opcode : std::uint8_t {
  kConst,    // dst = imm
  kMove,     // dst = a
  kAdd,      // dst = a + b
  kSub,      // dst = a - b
  kMul,      // dst = a * b
  kDiv,      // dst = a / b (b != 0 checked at execution)
  kRem,      // dst = a % b
  kCmpLt,    // dst = (a < b)
  kCmpEq,    // dst = (a == b)
  kLoad,     // dst = *(T*)(regs[a] + imm), T of `size` bytes, sign-extended
  kStore,    // *(T*)(regs[a] + imm) = regs[b]
  kCall,     // dst = call functions[imm](regs[a] .. regs[a + b - 1])
  kMemSet,   // memset(regs[a], imm & 0xff, regs[b]) — word-wise writes
  kMemCopy,  // memcpy(regs[a], regs[b], regs[dst]) — word-wise read+write
  kReport,   // deliver regs[b] accesses of kind `target` (0=read, 1=write)
             // at regs[a] + imm, width `size` — no memory is touched; the
             // loop-batching pass plants these at preheaders to stand in
             // for hoisted per-iteration instrumentation
  kBr,       // jump to block `target`
  kCondBr,   // regs[a] != 0 ? block target : block target2
  kRet,      // return regs[a]
  kAcquire,  // synchronization: bump the executing thread's epoch (lock
             // acquire / barrier entry); touches no memory
  kRelease,  // synchronization: bump the executing thread's epoch (lock
             // release / barrier exit); touches no memory
  kHandoff,  // transfer ownership of [regs[a] + imm, + regs[b]) to the
             // executing thread: bumps its epoch and delivers a synthetic
             // ownership claim to tracked lines in the range (stands in for
             // the first post-handoff write when pruning removed it)
};

/// True for the opcodes the instrumentation pass cares about (the memory
/// intrinsics are always access-bearing and handled separately).
constexpr bool is_memory_access(Opcode op) {
  return op == Opcode::kLoad || op == Opcode::kStore;
}
constexpr bool is_memory_intrinsic(Opcode op) {
  return op == Opcode::kMemSet || op == Opcode::kMemCopy;
}
/// Pure instrumentation annotation: touches no memory, computes nothing,
/// only feeds the runtime when executed.
constexpr bool is_report(Opcode op) { return op == Opcode::kReport; }
/// Synchronization intrinsics: move no data, define no register; they feed
/// the runtime's epoch/ownership machinery (Session::sync / handoff) and
/// scope the sync-aware pruning pass.
constexpr bool is_sync_intrinsic(Opcode op) {
  return op == Opcode::kAcquire || op == Opcode::kRelease ||
         op == Opcode::kHandoff;
}
constexpr bool is_terminator(Opcode op) {
  return op == Opcode::kBr || op == Opcode::kCondBr || op == Opcode::kRet;
}

struct Instr {
  Opcode op = Opcode::kConst;
  Reg dst = 0;
  Reg a = 0;
  Reg b = 0;
  std::int64_t imm = 0;       ///< constant, or load/store address offset
  std::uint32_t size = 8;     ///< access width in bytes (loads/stores)
  std::uint32_t target = 0;   ///< branch target block; access kind (kReport)
  std::uint32_t target2 = 0;  ///< false-branch target (kCondBr)
  bool instrumented = false;  ///< set by the instrumentation pass

  /// Compensation annotations (loads/stores only), set when the merging
  /// pass folds provably-same-address accesses into this one: when this
  /// instruction's runtime call fires it additionally delivers this many
  /// reads/writes of the same address and width, keeping the detector's
  /// view count-identical to the unmerged program.
  std::uint32_t extra_reads = 0;
  std::uint32_t extra_writes = 0;
};

struct BasicBlock {
  std::vector<Instr> instrs;
};

struct Function {
  std::string name;
  std::uint32_t num_regs = 0;
  std::uint32_t num_args = 0;  ///< args arrive in r0..r(num_args-1)
  std::vector<BasicBlock> blocks;
};

struct Module {
  std::vector<Function> functions;

  Function* find(const std::string& name) {
    for (auto& f : functions) {
      if (f.name == name) return &f;
    }
    return nullptr;
  }
  const Function* find(const std::string& name) const {
    for (const auto& f : functions) {
      if (f.name == name) return &f;
    }
    return nullptr;
  }
};

/// Structural validation: register indices in range, branch targets valid,
/// every block terminated exactly once (no dead tail instructions), call
/// targets within the module, nonzero access sizes. Returns an empty string
/// when the module is well-formed, otherwise the first problem found.
std::string verify(const Module& module);
std::string verify_function(const Module& module, const Function& fn);

/// Human-readable listing (a disassembler); instrumented accesses are
/// marked with '*', mirroring what the pass decided.
std::string to_string(const Function& fn);
std::string to_string(const Module& module);

/// Convenience builder used by tests and workload programs.
class FunctionBuilder {
 public:
  explicit FunctionBuilder(std::string name, std::uint32_t num_args = 0);

  Reg fresh_reg();
  /// Argument registers are r0..r(num_args-1).
  Reg arg(std::uint32_t i) const { return i; }

  /// Creates a new (empty) block and returns its index.
  std::uint32_t new_block();
  /// Redirects subsequent emission into block `b`.
  void set_block(std::uint32_t b) { current_ = b; }
  std::uint32_t current_block() const { return current_; }

  Reg const_val(std::int64_t v);
  /// Register move dst = src (mutable registers replace SSA phis for loops).
  void move(Reg dst, Reg src);
  Reg add(Reg a, Reg b);
  Reg sub(Reg a, Reg b);
  Reg mul(Reg a, Reg b);
  Reg rem(Reg a, Reg b);
  Reg cmp_lt(Reg a, Reg b);
  Reg cmp_eq(Reg a, Reg b);
  Reg load(Reg addr, std::int64_t offset = 0, std::uint32_t size = 8);
  void store(Reg addr, Reg value, std::int64_t offset = 0,
             std::uint32_t size = 8);
  /// dst = call functions[callee](regs[first_arg .. first_arg+num_args-1]).
  Reg call(std::uint32_t callee, Reg first_arg, std::uint32_t num_args);
  /// memset(regs[addr], value, regs[len]).
  void mem_set(Reg addr, Reg len, std::uint8_t value);
  /// memcpy(regs[dst_addr], regs[src_addr], regs[len]).
  void mem_copy(Reg dst_addr, Reg src_addr, Reg len);
  /// Bulk instrumentation report: regs[count] accesses (writes when
  /// `is_write`) at [regs[base] + offset], width `size`. Emitted marked
  /// instrumented — a report that calls nothing is dead weight.
  void report(Reg base, Reg count, bool is_write, std::int64_t offset = 0,
              std::uint32_t size = 8);
  /// Sync intrinsics: epoch bumps for the executing thread.
  void acquire();
  void release();
  /// handoff [regs[base] + offset, + regs[len]) to the executing thread.
  void handoff(Reg base, Reg len, std::int64_t offset = 0);
  void br(std::uint32_t target);
  void cond_br(Reg cond, std::uint32_t if_true, std::uint32_t if_false);
  void ret(Reg value);

  Function take();

 private:
  Instr& emit(Instr i);
  Function fn_;
  std::uint32_t current_ = 0;
};

}  // namespace pred::ir
