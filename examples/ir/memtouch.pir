# Intrinsics and narrow accesses: memset/memcpy sites are always
# instrumented and counted apart from the per-address candidate ledger
# (intrinsic sites = 2 here); the duplicate 4-byte load is removed by
# per-block selective dedup.
#
#   r0 = dst, r1 = src, r2 = len
func memtouch(3 args, 5 regs):
bb0:
  memset [r0], 0, len r2
  memcpy [r0] <- [r1], len r2
  r3 = load.4 [r1]
  r4 = load.4 [r1]
  store.4 [r0 + 4], r3
  ret r4
