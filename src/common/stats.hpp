// Tiny statistics and timing helpers used by the benchmark harnesses.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <numeric>
#include <vector>

namespace pred {

/// Wall-clock stopwatch in seconds.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Mean after dropping the min and max, the aggregation used for the paper's
/// overhead numbers ("average of 10 runs, excluding the maximum and minimum",
/// Section 4.2). Falls back to the plain mean for fewer than 3 samples.
inline double trimmed_mean(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  if (samples.size() < 3) {
    return std::accumulate(samples.begin(), samples.end(), 0.0) /
           static_cast<double>(samples.size());
  }
  std::sort(samples.begin(), samples.end());
  double sum = std::accumulate(samples.begin() + 1, samples.end() - 1, 0.0);
  return sum / static_cast<double>(samples.size() - 2);
}

inline double mean(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  return std::accumulate(samples.begin(), samples.end(), 0.0) /
         static_cast<double>(samples.size());
}

/// Geometric mean; conventional for normalized-runtime summaries.
inline double geomean(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double log_sum = 0.0;
  for (double s : samples) log_sum += std::log(s);
  return std::exp(log_sum / static_cast<double>(samples.size()));
}

}  // namespace pred
