file(REMOVE_RECURSE
  "CMakeFiles/test_shadow_runtime.dir/test_shadow_runtime.cpp.o"
  "CMakeFiles/test_shadow_runtime.dir/test_shadow_runtime.cpp.o.d"
  "test_shadow_runtime"
  "test_shadow_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shadow_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
