// Bottom-up interprocedural callee access summaries. A summary describes,
// EXACTLY, the instrumentation a callee delivers per invocation: a set of
// (argument base, constant offset, width, read/write) entries with exact
// per-invocation counts — or ⊤ ("unsummarizable") when no such finite exact
// description exists.
//
// Exactness is the load-bearing property: the call-batching stage of
// pass.cpp replaces a callee's dynamic deliveries with preheader kReports
// computed from the summary, and the detector report stays bit-identical
// only if the summary neither over- nor under-counts by even one access
// (tests/test_interprocedural.cpp fails on off-by-one in either direction).
//
// The summarizer is a symbolic interpreter over values of the form
//   constant | arg(j) + constant | opaque
// that follows the callee's unique statically-decided path: every branch
// condition must fold to a compile-time constant, every *delivered* address
// must be arg-relative (or the delivery count provably zero), and inner
// calls must have exact summaries themselves (instantiated by rebasing
// their entries through the call's argument values). Anything else — a
// branch on an argument or loaded value, a data-dependent delivered
// address, an instrumented memory intrinsic, recursion (detected up front
// via the call graph's SCCs), or a blown step budget — bails to ⊤.
// Because the followed path is decided by constants only, it is the path
// EVERY invocation takes, so the collected multiset is exact for all
// arguments and all memory contents.
#pragma once

#include <cstdint>
#include <vector>

#include "instrument/analysis/callgraph.hpp"
#include "instrument/ir.hpp"

namespace pred::ir {

struct AccessSummary {
  struct Entry {
    std::uint32_t arg = 0;     ///< argument index the address is relative to
    std::int64_t offset = 0;   ///< delivered address == arg value + offset
    std::uint32_t width = 0;   ///< access size in bytes
    bool is_write = false;
    std::uint64_t count = 0;   ///< exact deliveries per invocation (> 0)

    auto operator<=>(const Entry&) const = default;
  };

  bool exact = false;          ///< false == ⊤ (no exact finite description)
  /// The callee (or something it transitively calls) executes a sync
  /// intrinsic. Sync intrinsics deliver no instrumentation, so they do not
  /// break exactness — but a caller must not *batch* such a callee (its
  /// epoch bumps and handoff claims would be collapsed), and sync-scoped
  /// pruning must treat the call as a sync boundary.
  bool syncs = false;
  std::vector<Entry> entries;  ///< sorted, coalesced by (arg,offset,width,kind)

  /// Total access units delivered per invocation (meaningless for ⊤).
  std::uint64_t total_accesses() const {
    std::uint64_t t = 0;
    for (const Entry& e : entries) t += e.count;
    return t;
  }
};

struct SummaryTable {
  std::vector<AccessSummary> per_function;  ///< indexed like Module::functions

  std::uint64_t num_exact() const {
    std::uint64_t n = 0;
    for (const auto& s : per_function) n += s.exact ? 1 : 0;
    return n;
  }
};

/// Summarizes one function against already-computed callee summaries in
/// `table` (only entries for `f`'s callees are read — process functions in
/// CallGraph::bottom_up() order so they exist). Functions on call cycles
/// are ⊤ without inspection.
AccessSummary summarize_function(const Module& module, std::uint32_t f,
                                 const CallGraph& cg,
                                 const SummaryTable& table);

/// Summaries for every function of an (already instrumented) module.
SummaryTable summarize_module(const Module& module, const CallGraph& cg);

}  // namespace pred::ir
