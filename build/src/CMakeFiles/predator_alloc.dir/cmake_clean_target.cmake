file(REMOVE_RECURSE
  "libpredator_alloc.a"
)
