// Quickstart: detect false sharing in a tiny program.
//
// Two threads increment logically-distinct counters that happen to live on
// one cache line. PREDATOR's runtime observes the interleaved writes,
// counts the cache invalidations they would cause, separates false from
// true sharing at word granularity, and prints a Figure 5-style report with
// the allocation callsite.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <thread>

#include "api/predator.hpp"

int main() {
  pred::SessionOptions options;
  options.heap_size = 16 * 1024 * 1024;
  // On a many-core host the two threads interleave finely and invalidation
  // counts are huge; on a single-core CI box the scheduler may serialize
  // them almost completely. Record every access and accept any nonzero
  // invalidation evidence so the demo is robust everywhere.
  options.runtime.report_invalidation_threshold = 1;
  options.runtime.set_sampling_rate(1.0);
  pred::Session session(options);

  // A heap object holding one counter per thread — 8 bytes apart, so both
  // land on the same 64-byte cache line. This is the classic bug.
  auto* counters = static_cast<long*>(session.alloc(
      2 * sizeof(long), session.intern_frames({"quickstart.cpp:counters"})));
  counters[0] = counters[1] = 0;

  auto worker = [&session, counters](pred::ThreadId tid) {
    for (int i = 0; i < 200'000; ++i) {
      // In a compiler-instrumented build these calls are inserted for you;
      // here we invoke the runtime entry point explicitly.
      session.record(&counters[tid], pred::AccessType::kRead, tid, 8);
      counters[tid] += 1;
      session.record(&counters[tid], pred::AccessType::kWrite, tid, 8);
    }
  };
  std::thread t0(worker, 0);
  std::thread t1(worker, 1);
  t0.join();
  t1.join();

  std::printf("counter[0]=%ld counter[1]=%ld\n\n", counters[0], counters[1]);
  std::printf("%s", session.report_text().c_str());

  const pred::Report report = session.report();
  if (!report.findings.empty() && report.findings[0].is_false_sharing()) {
    std::printf(
        "\nDiagnosis: pad each counter to its own cache line "
        "(e.g. alignas(64)) to eliminate the invalidation traffic.\n");
  }
  return 0;
}
