// Module call graph: which functions call which, condensed into strongly
// connected components so recursion is explicit. The interprocedural passes
// (summaries.hpp, escape.hpp, and the call-batching stage of pass.cpp) all
// need the same two facts this structure provides:
//
//   * a bottom-up order — callees before callers — so a caller is analyzed
//     only after every function it can reach has been, and
//   * cycle membership — a function inside a recursive SCC (or calling
//     itself) has no statically bounded per-invocation behavior, so exact
//     summarization refuses it up front (⊤).
//
// kCall targets are function indices baked into the instruction, so the
// graph is exact: there are no indirect calls in the mini-IR and no edges
// the builder can miss.
#pragma once

#include <cstdint>
#include <vector>

#include "instrument/ir.hpp"

namespace pred::ir {

class CallGraph {
 public:
  explicit CallGraph(const Module& module);

  std::size_t num_functions() const { return callees_.size(); }

  /// Distinct callees of `f`, sorted ascending.
  const std::vector<std::uint32_t>& callees(std::uint32_t f) const {
    return callees_[f];
  }

  /// Total kCall sites across the module (counting duplicates).
  std::uint64_t num_call_sites() const { return call_sites_; }

  /// SCC id of `f`. Ids are numbered so that scc_of(callee) <= scc_of(caller)
  /// for every edge not inside one component (Tarjan emits components in
  /// reverse topological order).
  std::uint32_t scc_of(std::uint32_t f) const { return scc_of_[f]; }
  std::size_t num_sccs() const { return scc_members_.size(); }
  const std::vector<std::vector<std::uint32_t>>& scc_members() const {
    return scc_members_;
  }

  /// True when `f` sits on a call cycle: its SCC has more than one member,
  /// or it calls itself directly.
  bool in_cycle(std::uint32_t f) const { return in_cycle_[f]; }

  /// Function indices ordered callees-first: by ascending SCC id, so every
  /// function outside `f`'s component that `f` can call precedes `f`.
  const std::vector<std::uint32_t>& bottom_up() const { return bottom_up_; }

 private:
  std::vector<std::vector<std::uint32_t>> callees_;
  std::vector<std::uint32_t> scc_of_;
  std::vector<std::vector<std::uint32_t>> scc_members_;
  std::vector<bool> in_cycle_;
  std::vector<std::uint32_t> bottom_up_;
  std::uint64_t call_sites_ = 0;
};

}  // namespace pred::ir
