#include "instrument/analysis/escape.hpp"

#include <limits>

#include "common/check.hpp"
#include "instrument/analysis/cfg.hpp"
#include "instrument/analysis/constants.hpp"
#include "instrument/analysis/value_numbering.hpp"

namespace pred::ir {

// ---------------------------------------------------------------------------
// Harness contract
// ---------------------------------------------------------------------------

void EscapeBindings::declare_root(const std::string& function) {
  roots_.try_emplace(function);
}

void EscapeBindings::mark_transferable(const std::string& function,
                                       std::uint32_t arg) {
  declare_root(function);
  roots_[function][arg].transferable = true;
}

bool EscapeBindings::bind(const OwnershipMap& ownership,
                          const std::string& function, std::uint32_t arg,
                          Address addr, pred::ThreadId tid) {
  declare_root(function);
  ArgBinding& b = roots_[function][arg];
  const auto span = ownership.span_of(addr);
  if (!span.has_value() || (span->owner != tid && !b.transferable)) {
    // The promise is false for this invocation; no later bind can restore
    // confinement, because the analysis must hold over ALL invocations.
    // (A transferable argument tolerates an owner mismatch — ownership is
    // promised to migrate via handoffs — but never an unowned address.)
    b.poisoned = true;
    b.len = 0;
    return false;
  }
  const std::uint64_t headroom = span->base + span->len - addr;
  if (b.poisoned) return false;
  b.len = b.bound ? std::min(b.len, headroom) : headroom;
  b.bound = true;
  return true;
}

bool EscapeBindings::is_root(const std::string& function) const {
  return roots_.find(function) != roots_.end();
}

std::uint64_t EscapeBindings::bound_len(const std::string& function,
                                        std::uint32_t arg) const {
  const auto fit = roots_.find(function);
  if (fit == roots_.end()) return 0;
  const auto ait = fit->second.find(arg);
  if (ait == fit->second.end()) return 0;
  const ArgBinding& b = ait->second;
  return (b.bound && !b.poisoned && !b.transferable) ? b.len : 0;
}

std::uint64_t EscapeBindings::transfer_len(const std::string& function,
                                           std::uint32_t arg) const {
  const auto fit = roots_.find(function);
  if (fit == roots_.end()) return 0;
  const auto ait = fit->second.find(arg);
  if (ait == fit->second.end()) return 0;
  const ArgBinding& b = ait->second;
  return (b.bound && !b.poisoned && b.transferable) ? b.len : 0;
}

// ---------------------------------------------------------------------------
// Whole-module propagation
// ---------------------------------------------------------------------------

namespace {

/// ⊤ of the decreasing lattice: "no constraint observed yet". Survives to
/// the end only for functions never entered at all, where it collapses to 0
/// (nothing proven) rather than claiming vacuous confinement.
constexpr std::uint64_t kUnconstrained =
    std::numeric_limits<std::uint64_t>::max();

bool defines_register(const Instr& in) {
  switch (in.op) {
    case Opcode::kConst:
    case Opcode::kMove:
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kRem:
    case Opcode::kCmpLt:
    case Opcode::kCmpEq:
    case Opcode::kLoad:
    case Opcode::kCall:
      return true;
    default:
      return false;
  }
}

/// One call site's effect on a callee argument, precomputed: the passed
/// value is either (stable caller argument + non-negative constant) — so the
/// callee inherits the caller's proven headroom minus that constant — or
/// anything else, which constrains the callee argument to shared.
struct SiteEdge {
  std::uint32_t caller = 0;
  std::uint32_t callee = 0;
  std::uint32_t callee_arg = 0;
  bool known = false;
  std::uint32_t caller_arg = 0;
  std::uint64_t off = 0;
};

}  // namespace

std::vector<bool> stable_args(const Function& fn) {
  std::vector<bool> stable(fn.num_args, true);
  for (const BasicBlock& bb : fn.blocks) {
    for (const Instr& in : bb.instrs) {
      if (defines_register(in) && in.dst < fn.num_args) {
        stable[in.dst] = false;
      }
    }
  }
  return stable;
}

EscapeFacts analyze_escape(const Module& module, const CallGraph& cg,
                           const EscapeBindings& bindings) {
  const std::size_t nf = module.functions.size();
  PRED_CHECK(cg.num_functions() == nf);

  // Static part: evaluate every call site's passed values once. Value
  // numbering is per block (seeded with block-entry constant facts), and
  // `kEntryReg k` means "argument k" only when register k is never
  // reassigned anywhere in the function — block entry then equals function
  // entry on every path.
  std::vector<SiteEdge> edges;
  for (std::uint32_t f = 0; f < nf; ++f) {
    const Function& fn = module.functions[f];
    const std::vector<bool> stable = stable_args(fn);
    const Cfg cfg(fn);
    const ConstantFacts consts = analyze_constants(fn, cfg);
    for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
      ValueNumbering vn(fn);
      vn.seed_constants(consts.block_entry[b]);
      for (const Instr& in : fn.blocks[b].instrs) {
        if (in.op == Opcode::kCall) {
          const auto callee = static_cast<std::uint32_t>(in.imm);
          const Function& g = module.functions[callee];
          for (std::uint32_t j = 0; j < g.num_args; ++j) {
            const ValueNumbering::Value v = vn.value_of(in.a + j);
            SiteEdge e{f, callee, j, false, 0, 0};
            if (v.base == ValueNumbering::Value::Base::kEntryReg &&
                v.id < fn.num_args && stable[v.id] && v.offset >= 0) {
              e.known = true;
              e.caller_arg = v.id;
              e.off = static_cast<std::uint64_t>(v.offset);
            }
            edges.push_back(e);
          }
        }
        vn.apply(in);
      }
    }
  }

  // Decreasing fixpoint from ⊤: roots start at their verified bind
  // headroom, everything else unconstrained; every call site then meets in
  // its contribution. Values only ever decrease, so in-place min
  // accumulation converges to the greatest fixpoint. The confined and
  // transfer lattices propagate through the SAME call-site edges — a passed
  // pointer inherits whichever promise (single-owner confinement or
  // handoff-managed transfer) held for the caller's argument — but they
  // never mix: roots seed each from its own binding channel.
  using Matrix = std::vector<std::vector<std::uint64_t>>;
  const auto seed = [&](auto&& root_len) {
    Matrix m(nf);
    for (std::uint32_t f = 0; f < nf; ++f) {
      const Function& fn = module.functions[f];
      if (bindings.is_root(fn.name)) {
        m[f].resize(fn.num_args);
        for (std::uint32_t j = 0; j < fn.num_args; ++j) {
          m[f][j] = root_len(fn.name, j);
        }
      } else {
        m[f].assign(fn.num_args, kUnconstrained);
      }
    }
    return m;
  };

  const auto solve = [&](Matrix& m) {
    const auto sweep = [&]() {
      bool changed = false;
      for (const SiteEdge& e : edges) {
        std::uint64_t contrib = 0;
        if (e.known) {
          const std::uint64_t base = m[e.caller][e.caller_arg];
          contrib = base == kUnconstrained ? kUnconstrained
                    : base > e.off        ? base - e.off
                                          : 0;
        }
        std::uint64_t& slot = m[e.callee][e.callee_arg];
        if (contrib < slot) {
          slot = contrib;
          changed = true;
        }
      }
      return changed;
    };

    // Recursive calls at a positive offset shave the headroom by that
    // offset per sweep — a chain as long as headroom/offset. Cap the
    // sweeps; if the cap is hit, collapse every cycle member to shared
    // (sound: 0 is the lattice bottom) and let the now-acyclic remainder
    // settle, which takes at most one sweep per condensation level.
    const std::size_t cap = 4 * nf + 8;
    std::size_t sweeps = 0;
    while (sweep()) {
      if (++sweeps >= cap) {
        for (std::uint32_t f = 0; f < nf; ++f) {
          if (cg.in_cycle(f)) {
            m[f].assign(m[f].size(), 0);
          }
        }
        for (std::size_t i = 0; i <= nf + 1 && sweep(); ++i) {
        }
        break;
      }
    }

    std::uint64_t proven = 0;
    for (auto& per_fn : m) {
      for (std::uint64_t& len : per_fn) {
        if (len == kUnconstrained) len = 0;  // never entered: nothing proven
        if (len > 0) ++proven;
      }
    }
    return proven;
  };

  EscapeFacts facts;
  facts.confined_len = seed([&](const std::string& name, std::uint32_t j) {
    return bindings.bound_len(name, j);
  });
  facts.confined_args = solve(facts.confined_len);
  facts.transfer_len = seed([&](const std::string& name, std::uint32_t j) {
    return bindings.transfer_len(name, j);
  });
  facts.transfer_args = solve(facts.transfer_len);
  return facts;
}

}  // namespace pred::ir
