// Figure 5 reproduction: PREDATOR's report for the linear_regression
// benchmark — the heap object, its allocation callsite stack, access and
// invalidation totals, and per-word reads/writes by thread.
//
// Run at the clean line-aligned placement, so the finding is a *predicted*
// one (this is the paper's case study: "different threads are accessing
// different hardware cache lines"), then again at a hostile placement to
// show the observed variant of the same report.
#include <cstdio>

#include "bench_util.hpp"

using namespace pred;
using namespace pred::bench;

namespace {

void run_and_print(std::size_t offset, const char* label) {
  Session session(session_options());
  const wl::Workload* lreg = wl::find_workload("linear_regression");
  wl::Params p = default_params();
  p.offset = offset;
  lreg->run_replay(session, p);
  std::printf("=== %s (object offset %zu) ===\n\n", label, offset);
  std::printf("%s\n", session.report_text().c_str());
}

}  // namespace

int main() {
  std::printf("Figure 5: example PREDATOR report for linear_regression\n\n");
  run_and_print(0, "latent problem, found by prediction");
  run_and_print(24, "same problem observed directly at a hostile placement");
  return 0;
}
