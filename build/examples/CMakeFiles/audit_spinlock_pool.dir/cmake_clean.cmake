file(REMOVE_RECURSE
  "CMakeFiles/audit_spinlock_pool.dir/audit_spinlock_pool.cpp.o"
  "CMakeFiles/audit_spinlock_pool.dir/audit_spinlock_pool.cpp.o.d"
  "audit_spinlock_pool"
  "audit_spinlock_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audit_spinlock_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
