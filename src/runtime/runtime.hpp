// The PREDATOR runtime: the component every instrumented access funnels into
// (Figure 1 of the paper). Owns the shadow spaces, the object registry, the
// callsite table, and — when prediction is enabled — the virtual cache lines
// nominated by the prediction engine.
//
// Hot-path layering (see docs/architecture.md):
//   1. region resolution — per-thread last-region cache, then the flat
//      shadow page map (runtime/region_map.hpp); O(1) per access;
//   2. pre-threshold write counting — staged in thread-local slots
//      (runtime/write_stage.hpp) and drained in batches, so the common
//      case touches no shared cache line;
//   3. tracked path — lock-free by default (RuntimeConfig::lock_free_tracker):
//      per-OS-thread striped sampling clocks, CAS-packed history table,
//      atomic word histogram, RCU virtual-line fan-out; a per-line-spinlock
//      reference implementation remains selectable for ablation.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/cacheline.hpp"
#include "common/spinlock.hpp"
#include "runtime/callsite.hpp"
#include "runtime/config.hpp"
#include "runtime/object_registry.hpp"
#include "runtime/region_map.hpp"
#include "runtime/shadow.hpp"
#include "runtime/write_stage.hpp"

namespace pred {

class Monitor;

class Runtime {
 public:
  /// Upper bound on simultaneously tracked regions (the allocator heap plus
  /// a handful of global segments).
  static constexpr std::size_t kMaxRegions = 16;

  explicit Runtime(RuntimeConfig config = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // --- region management ---

  /// Starts tracking [base, base+size). Returns the region, which remains
  /// owned by the runtime. The base is rounded down to a line boundary.
  /// Thread-safe: concurrent callers claim distinct slots.
  ShadowSpace* register_region(Address base, std::size_t size);

  /// Region containing `addr`, or nullptr when the address is untracked.
  /// O(1): per-thread cache, then the shadow page map.
  ShadowSpace* find_region(Address addr) const;

  // --- the hot path (Figure 1) ---

  /// Records one memory access of `size` bytes issued by thread `tid`.
  /// Accesses that straddle a word boundary are split so the word histogram
  /// stays exact; accesses to untracked memory are ignored. Defined inline
  /// below: single-word writes to the current hot staged line retire with a
  /// few compares and two thread-local increments.
  void handle_access(Address addr, AccessType type, ThreadId tid,
                     std::size_t size = 8);

  /// Exactly `count` repetitions of handle_access. Deliberately a literal
  /// loop, not a counter shortcut: every per-access decision (staging,
  /// sampling clocks, escalation and prediction thresholds, history-table
  /// transitions) must match the unbatched execution bit for bit — that is
  /// the contract the instrumentation pruning passes' report-equivalence
  /// proof rests on. The savings batching buys live at the call site (one
  /// dispatch, one address computation), not here.
  void handle_access_n(Address addr, AccessType type, ThreadId tid,
                       std::size_t size, std::uint64_t count) {
    for (std::uint64_t i = 0; i < count; ++i) {
      handle_access(addr, type, tid, size);
    }
  }

  // --- threads ---

  /// Hands out dense thread ids in registration order.
  ThreadId register_thread();
  std::uint32_t thread_count() const {
    return next_thread_.load(std::memory_order_relaxed);
  }

  // --- synchronization events (sync-aware suppression) ---

  /// Records a synchronization event (lock acquire/release, barrier) by
  /// `tid`: bumps its epoch counter, so ownership words claimed before the
  /// event no longer match and the next access per line falls through to
  /// the full tracked path. Cheap enough to call unconditionally — one
  /// relaxed fetch_add on a line-padded slot.
  void handle_sync(ThreadId tid) {
    epoch_slot(tid).fetch_add(1, std::memory_order_relaxed);
  }

  /// Ownership handoff: bumps the receiving thread's epoch, then delivers a
  /// synthetic ownership claim (CacheTracker::claim_for_handoff) to every
  /// line overlapping [addr, addr+len), escalating untracked lines first.
  /// The claim stands in for the receiver's first write to the range when
  /// static sync-scoped pruning removed it, so no invalidation is lost; it
  /// runs regardless of RuntimeConfig::sync_suppression so reports stay
  /// comparable across knob settings.
  void handle_handoff(Address addr, std::size_t len, ThreadId tid);

  /// Current epoch of `tid`'s slot (slots are hashed by tid; collisions
  /// only cause extra fall-throughs, never wrong suppression).
  std::uint32_t thread_epoch(ThreadId tid) const {
    return epoch_slot(tid).load(std::memory_order_relaxed);
  }

  // --- prediction plumbing ---

  /// Callback invoked (once per line) when a line's write count crosses
  /// PredictionThreshold: step 3 of the Section 3.2 workflow. Installed by
  /// the prediction engine; the runtime stays ignorant of the analysis.
  using PredictionHook =
      std::function<void(Runtime&, ShadowSpace&, std::size_t line_index)>;
  void set_prediction_hook(PredictionHook hook) { hook_ = std::move(hook); }

  /// Creates a virtual line tracker, registers it with every physical line
  /// it overlaps (so subsequent sampled accesses feed it), and retains
  /// ownership. Returns the tracker for inspection.
  VirtualLineTracker* add_virtual_line(ShadowSpace& region, Address start,
                                       std::size_t size,
                                       VirtualLineTracker::Kind kind,
                                       std::size_t origin_line, Address hot_x,
                                       Address hot_y);

  const std::deque<VirtualLineTracker>& virtual_lines() const {
    return virtual_lines_;
  }

  // --- live monitoring (src/monitor/) ---

  /// Attaches/detaches the live monitor. While attached, the slow path and
  /// write-stage drains publish compact events (escalations, invalidations,
  /// sampling hits, prediction verdicts) into the monitor's per-thread
  /// rings; the inline pre-threshold fast path above is untouched. Emission
  /// compiles out entirely with PREDATOR_DISABLE_MONITOR (CMake option
  /// PREDATOR_MONITOR=OFF), in which case an attached monitor simply sees
  /// no events. Called by Monitor::start()/stop().
  void set_monitor(Monitor* monitor) {
    monitor_.store(monitor, std::memory_order_release);
  }
  Monitor* attached_monitor() const {
    return monitor_.load(std::memory_order_relaxed);
  }

  // --- shared services ---

  ObjectRegistry& objects() { return objects_; }
  const ObjectRegistry& objects() const { return objects_; }
  CallsiteTable& callsites() { return callsites_; }
  const CallsiteTable& callsites() const { return callsites_; }
  const RuntimeConfig& config() const { return config_; }

  template <typename F>
  void for_each_region(F&& fn) const {
    const std::size_t n = num_claimed_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n && i < kMaxRegions; ++i) {
      if (const ShadowSpace* r = visible_[i].load(std::memory_order_acquire)) {
        fn(*r);
      }
    }
  }

  /// Total shadow/tracker/virtual-line metadata bytes (Figure 8/9 input).
  std::size_t metadata_bytes() const;

  /// Metadata bytes excluding untouched reservation: per-line shadow slots
  /// for `used_heap_bytes` of carved heap, plus live trackers and virtual
  /// lines. This mirrors the paper's proportional-set-size measurement,
  /// which only counts pages the run actually touched.
  std::size_t touched_metadata_bytes(std::size_t used_heap_bytes) const;

 private:
  friend class WriteStage;

  void escalate(ShadowSpace& region, std::size_t line_index);

  /// Purges the calling thread's staged counts for the line and gives it a
  /// CacheTracker, emitting a monitor escalation event if the tracker is
  /// new. Shared by escalate() and add_virtual_line().
  void ensure_tracked_line(ShadowSpace& region, std::size_t line_index);

  void handle_access_slow(Address addr, AccessType type, ThreadId tid,
                          std::size_t size);
  void handle_access_one_word(ShadowSpace& region, Address addr,
                              AccessType type, ThreadId tid);

  /// Publishes and empties one staged slot (which just crossed
  /// TrackingThreshold on the fast path), running the threshold checks.
  void drain_slot(StagedSlot& s);

  /// Publishes (without threshold checks — a tracker is being created for
  /// the line right now) and empties any staged counts the calling thread
  /// holds for (region, line). Keeps the fast path honest when a line gains
  /// a tracker: its slot empties, so the next write misses and re-checks.
  void purge_staged(ShadowSpace& region, std::size_t line_index);

  /// Stages one pre-threshold write into the calling thread's WriteStage.
  void stage_write(ShadowSpace& region, std::size_t line_index);

  /// Publishes `count` staged writes for a line into the shared counter and
  /// runs the threshold checks (escalation, prediction hook) the individual
  /// increments skipped.
  void apply_staged(ShadowSpace& region, std::size_t line_index,
                    std::uint64_t count);

  /// Seed-style linear scan; fallback for page-straddling regions and the
  /// `fast_region_lookup = false` ablation.
  ShadowSpace* find_region_slow(Address addr) const;

  RuntimeConfig config_;

  /// Per-thread epoch counters for sync-aware suppression, hashed by tid
  /// into line-padded slots so two hot threads never bump the same host
  /// line. A collision merges two threads' epochs — sound (their accesses
  /// fall through more often), never unsound (a fast hit still requires the
  /// exact tid in the ownership word).
  static constexpr std::size_t kEpochSlots = 256;
  struct alignas(kCacheLineSize) EpochSlot {
    std::atomic<std::uint32_t> epoch{0};
  };
  std::atomic<std::uint32_t>& epoch_slot(ThreadId tid) {
    return epochs_[static_cast<std::size_t>(tid) & (kEpochSlots - 1)].epoch;
  }
  const std::atomic<std::uint32_t>& epoch_slot(ThreadId tid) const {
    return epochs_[static_cast<std::size_t>(tid) & (kEpochSlots - 1)].epoch;
  }
  EpochSlot epochs_[kEpochSlots];

  std::unique_ptr<ShadowSpace> regions_[kMaxRegions];  // slot-claimed owners
  std::atomic<ShadowSpace*> visible_[kMaxRegions];     // published to readers
  std::atomic<std::size_t> num_claimed_{0};
  Spinlock reg_lock_;  // serializes page-map rebuilds, not slot claims
  RegionMap region_map_;

  std::atomic<ThreadId> next_thread_{0};

  ObjectRegistry objects_;
  CallsiteTable callsites_;

  mutable Spinlock vl_lock_;
  std::deque<VirtualLineTracker> virtual_lines_;  // stable addresses

  PredictionHook hook_;

  std::atomic<Monitor*> monitor_{nullptr};
};

inline void Runtime::handle_access(Address addr, AccessType type, ThreadId tid,
                                   std::size_t size) {
  // Hot-region fast path: a single-word write into the region the calling
  // thread is staging, landing on a line whose staged slot is live. The
  // cache is only filled while staging is on, a live slot proves the line
  // had no tracker, and the generation compare rejects dead runtimes — so
  // no config, tracker, or region-map work is needed here.
  FastPathCache& fc = t_fastpath_cache;
  if (type == AccessType::kWrite && fc.rt == this &&
      addr >= fc.region_begin && addr + size <= fc.region_end &&
      (addr & fc.word_mask) + size <= fc.word_size &&
      fc.gen == detail::runtime_generation_counter.load(
                    std::memory_order_acquire)) [[likely]] {
    const std::size_t line =
        static_cast<std::size_t>(addr - fc.region_begin) >> fc.line_shift;
    StagedSlot& s =
        fc.stage->slots[WriteStage::slot_index(fc.region, line)];
    if (s.region == fc.region && s.line == line && s.gen == fc.gen)
        [[likely]] {
      ++s.count;
      if (++fc.stage->staged_since_epoch >= WriteStage::kEpochLength)
          [[unlikely]] {
        fc.stage->flush();
        return;
      }
      if (s.base + s.count >= fc.tracking_threshold) [[unlikely]] {
        drain_slot(s);
      }
      return;
    }
  }
  handle_access_slow(addr, type, tid, size);
}

}  // namespace pred
