file(REMOVE_RECURSE
  "libpredator_advice.a"
)
