# Empty compiler generated dependencies file for test_shadow_runtime.
# This may be replaced when dependencies are built.
