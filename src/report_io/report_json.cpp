#include "report_io/report_json.hpp"

#include <cinttypes>
#include <cstdio>

#include "report_io/json_writer.hpp"

namespace pred {

namespace {

std::string hex(Address a) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%" PRIxPTR, a);
  return buf;
}

void write_object_info(JsonWriter& w, const ObjectFinding& f,
                       const CallsiteTable& callsites) {
  w.key("object").begin_object();
  w.field("start", hex(f.object.start));
  w.field("size", static_cast<std::uint64_t>(f.object.size));
  w.field("global", f.object.is_global);
  w.field("attributed", f.attributed);
  if (f.object.is_global) {
    w.field("name", f.object.name);
  } else if (f.object.callsite != kNoCallsite) {
    w.key("callsite").begin_array();
    for (const auto& frame : callsites.get(f.object.callsite).frames) {
      w.value(frame);
    }
    w.end_array();
  }
  w.end_object();
}

void write_words(JsonWriter& w, const ObjectFinding& f) {
  w.key("words").begin_array();
  for (const LineFinding& lf : f.lines) {
    for (const WordReport& word : lf.words) {
      w.begin_object();
      w.field("address", hex(word.address));
      w.field("reads", word.reads);
      w.field("writes", word.writes);
      if (word.shared) {
        w.field("owner", "shared");
      } else {
        w.field("owner", static_cast<std::uint64_t>(word.owner));
      }
      w.end_object();
    }
  }
  w.end_array();
}

void write_virtual_lines(JsonWriter& w, const ObjectFinding& f) {
  w.key("virtual_lines").begin_array();
  for (const PredictedFinding& p : f.predictions) {
    w.begin_object();
    w.field("start", hex(p.start));
    w.field("size", static_cast<std::uint64_t>(p.size));
    w.field("kind", p.kind == VirtualLineTracker::Kind::kDoubleLine
                        ? "double_line"
                        : "shifted");
    w.field("invalidations", p.invalidations);
    w.field("hot_x", hex(p.hot_x));
    w.field("hot_y", hex(p.hot_y));
    w.end_object();
  }
  w.end_array();
}

void write_suggestion(JsonWriter& w, const FixSuggestion& s,
                      const CallsiteTable& callsites) {
  w.begin_object();
  w.field("kind", to_string(s.kind));
  w.field("object_start", hex(s.object.start));
  w.field("object_size", static_cast<std::uint64_t>(s.object.size));
  // The suggestion's stable identity, so a consumer can act on it without
  // chasing addresses back through the findings.
  if (s.object.is_global) {
    w.field("object_name", s.object.name);
  } else if (s.object.callsite != kNoCallsite) {
    w.key("callsite").begin_array();
    for (const auto& frame : callsites.get(s.object.callsite).frames) {
      w.value(frame);
    }
    w.end_array();
  }
  w.field("eliminated_invalidations", s.eliminated_invalidations);
  w.field("threads_involved",
          static_cast<std::uint64_t>(s.threads_involved));
  w.field("slot_stride", static_cast<std::uint64_t>(s.slot_stride));
  w.field("prescription", s.prescription);
  w.field("rationale", s.rationale);
  w.end_object();
}

}  // namespace

void write_plan_fields(JsonWriter& w, const repair::RepairPlan& plan) {
  w.field("origin_uid", plan.origin_uid);
  w.key("entries").begin_array();
  for (const repair::PlanEntry& e : plan.entries) {
    w.begin_object();
    w.field("site", e.site_key);
    w.field("global", e.is_global);
    w.field("action", repair::to_string(e.action));
    w.field("pad_to", e.pad_to);
    w.field("alignment", e.alignment);
    w.field("slot_stride", e.slot_stride);
    w.field("object_size", e.object_size);
    w.field("expected_eliminated", e.expected_eliminated);
    w.key("evidence").begin_array();
    for (const repair::OffsetEvidence& ev : e.evidence) {
      w.begin_object();
      w.field("offset", ev.offset);
      if (ev.owner == repair::kSharedOwner) {
        w.field("owner", "shared");
      } else {
        w.field("owner", static_cast<std::uint64_t>(ev.owner));
      }
      w.field("writes", ev.writes);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
}

std::string plan_to_json(const repair::RepairPlan& plan) {
  JsonWriter w;
  w.begin_object();
  write_plan_fields(w, plan);
  w.end_object();
  return w.str();
}

std::string report_to_json(const Report& report,
                           const CallsiteTable& callsites,
                           const std::vector<FixSuggestion>* suggestions,
                           const repair::RepairPlan* plan) {
  JsonWriter w;
  w.begin_object();
  w.field("total_invalidations", report.total_invalidations);
  w.field("finding_count",
          static_cast<std::uint64_t>(report.findings.size()));
  w.key("findings").begin_array();
  std::uint64_t rank = 1;
  for (const ObjectFinding& f : report.findings) {
    w.begin_object();
    w.field("rank", rank++);
    w.field("kind", to_string(f.kind));
    w.field("false_sharing", f.is_false_sharing());
    w.field("observed", f.observed);
    w.field("predicted", f.predicted);
    w.field("invalidations", f.invalidations);
    w.field("predicted_invalidations", f.predicted_invalidations);
    w.field("accesses", f.total_accesses);
    w.field("writes", f.total_writes);
    write_object_info(w, f, callsites);
    write_words(w, f);
    write_virtual_lines(w, f);
    w.end_object();
  }
  w.end_array();
  if (suggestions != nullptr) {
    w.key("suggestions").begin_array();
    for (const FixSuggestion& s : *suggestions) {
      write_suggestion(w, s, callsites);
    }
    w.end_array();
  }
  if (plan != nullptr) {
    w.key("repair_plan").begin_object();
    write_plan_fields(w, *plan);
    w.end_object();
  }
  w.end_object();
  return w.str();
}

}  // namespace pred
