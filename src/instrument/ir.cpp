#include "instrument/ir.hpp"

#include "common/check.hpp"

namespace pred::ir {

FunctionBuilder::FunctionBuilder(std::string name, std::uint32_t num_args) {
  fn_.name = std::move(name);
  fn_.num_args = num_args;
  fn_.num_regs = num_args;
  fn_.blocks.emplace_back();
}

Reg FunctionBuilder::fresh_reg() { return fn_.num_regs++; }

std::uint32_t FunctionBuilder::new_block() {
  fn_.blocks.emplace_back();
  return static_cast<std::uint32_t>(fn_.blocks.size() - 1);
}

Instr& FunctionBuilder::emit(Instr i) {
  PRED_CHECK(current_ < fn_.blocks.size());
  fn_.blocks[current_].instrs.push_back(i);
  return fn_.blocks[current_].instrs.back();
}

Reg FunctionBuilder::const_val(std::int64_t v) {
  Reg r = fresh_reg();
  emit({.op = Opcode::kConst, .dst = r, .imm = v});
  return r;
}

void FunctionBuilder::move(Reg dst, Reg src) {
  emit({.op = Opcode::kMove, .dst = dst, .a = src});
}

Reg FunctionBuilder::add(Reg a, Reg b) {
  Reg r = fresh_reg();
  emit({.op = Opcode::kAdd, .dst = r, .a = a, .b = b});
  return r;
}
Reg FunctionBuilder::sub(Reg a, Reg b) {
  Reg r = fresh_reg();
  emit({.op = Opcode::kSub, .dst = r, .a = a, .b = b});
  return r;
}
Reg FunctionBuilder::mul(Reg a, Reg b) {
  Reg r = fresh_reg();
  emit({.op = Opcode::kMul, .dst = r, .a = a, .b = b});
  return r;
}
Reg FunctionBuilder::rem(Reg a, Reg b) {
  Reg r = fresh_reg();
  emit({.op = Opcode::kRem, .dst = r, .a = a, .b = b});
  return r;
}
Reg FunctionBuilder::cmp_lt(Reg a, Reg b) {
  Reg r = fresh_reg();
  emit({.op = Opcode::kCmpLt, .dst = r, .a = a, .b = b});
  return r;
}
Reg FunctionBuilder::cmp_eq(Reg a, Reg b) {
  Reg r = fresh_reg();
  emit({.op = Opcode::kCmpEq, .dst = r, .a = a, .b = b});
  return r;
}

Reg FunctionBuilder::load(Reg addr, std::int64_t offset, std::uint32_t size) {
  Reg r = fresh_reg();
  emit({.op = Opcode::kLoad, .dst = r, .a = addr, .imm = offset, .size = size});
  return r;
}

void FunctionBuilder::store(Reg addr, Reg value, std::int64_t offset,
                            std::uint32_t size) {
  emit({.op = Opcode::kStore, .a = addr, .b = value, .imm = offset,
        .size = size});
}

Reg FunctionBuilder::call(std::uint32_t callee, Reg first_arg,
                          std::uint32_t num_args) {
  Reg r = fresh_reg();
  emit({.op = Opcode::kCall, .dst = r, .a = first_arg,
        .b = static_cast<Reg>(num_args),
        .imm = static_cast<std::int64_t>(callee)});
  return r;
}

void FunctionBuilder::mem_set(Reg addr, Reg len, std::uint8_t value) {
  emit({.op = Opcode::kMemSet, .a = addr, .b = len,
        .imm = static_cast<std::int64_t>(value)});
}

void FunctionBuilder::mem_copy(Reg dst_addr, Reg src_addr, Reg len) {
  emit({.op = Opcode::kMemCopy, .dst = len, .a = dst_addr, .b = src_addr});
}

void FunctionBuilder::report(Reg base, Reg count, bool is_write,
                             std::int64_t offset, std::uint32_t size) {
  emit({.op = Opcode::kReport, .a = base, .b = count, .imm = offset,
        .size = size, .target = is_write ? 1u : 0u, .instrumented = true});
}

void FunctionBuilder::acquire() { emit({.op = Opcode::kAcquire}); }

void FunctionBuilder::release() { emit({.op = Opcode::kRelease}); }

void FunctionBuilder::handoff(Reg base, Reg len, std::int64_t offset) {
  emit({.op = Opcode::kHandoff, .a = base, .b = len, .imm = offset});
}

void FunctionBuilder::br(std::uint32_t target) {
  emit({.op = Opcode::kBr, .target = target});
}

void FunctionBuilder::cond_br(Reg cond, std::uint32_t if_true,
                              std::uint32_t if_false) {
  emit({.op = Opcode::kCondBr, .a = cond, .target = if_true,
        .target2 = if_false});
}

void FunctionBuilder::ret(Reg value) {
  emit({.op = Opcode::kRet, .a = value});
}

Function FunctionBuilder::take() { return std::move(fn_); }

// ---------------------------------------------------------------------------
// Verification
// ---------------------------------------------------------------------------

namespace {

std::string problem(const Function& fn, std::size_t block, std::size_t idx,
                    const char* what) {
  return fn.name + ": block " + std::to_string(block) + " instr " +
         std::to_string(idx) + ": " + what;
}

bool defines_register(Opcode op) {
  switch (op) {
    case Opcode::kConst:
    case Opcode::kMove:
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kRem:
    case Opcode::kCmpLt:
    case Opcode::kCmpEq:
    case Opcode::kLoad:
    case Opcode::kCall:
      return true;
    default:
      return false;
  }
}

bool reads_a(Opcode op) {
  // Operand-less opcodes: constants and unconditional branches, plus the
  // epoch-only sync intrinsics (kHandoff does read a — its base register).
  return op != Opcode::kConst && op != Opcode::kBr &&
         op != Opcode::kAcquire && op != Opcode::kRelease;
}

bool reads_b(Opcode op) {
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kRem:
    case Opcode::kCmpLt:
    case Opcode::kCmpEq:
    case Opcode::kStore:
    case Opcode::kMemSet:
    case Opcode::kMemCopy:
    case Opcode::kReport:
    case Opcode::kHandoff:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::string verify_function(const Module& module, const Function& fn) {
  if (fn.blocks.empty()) return fn.name + ": function has no blocks";
  if (fn.num_args > fn.num_regs) {
    return fn.name + ": more arguments than registers";
  }
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    const auto& instrs = fn.blocks[b].instrs;
    if (instrs.empty()) return problem(fn, b, 0, "empty block");
    for (std::size_t i = 0; i < instrs.size(); ++i) {
      const Instr& in = instrs[i];
      const bool last = i + 1 == instrs.size();
      if (is_terminator(in.op) != last) {
        return problem(fn, b, i,
                       last ? "block does not end in a terminator"
                            : "terminator before end of block");
      }
      if (defines_register(in.op) && in.dst >= fn.num_regs) {
        return problem(fn, b, i, "dst register out of range");
      }
      if (reads_a(in.op) && in.a >= fn.num_regs) {
        return problem(fn, b, i, "operand a out of range");
      }
      if (reads_b(in.op) && in.b >= fn.num_regs &&
          in.op != Opcode::kCall) {
        return problem(fn, b, i, "operand b out of range");
      }
      if (in.op == Opcode::kMemCopy && in.dst >= fn.num_regs) {
        return problem(fn, b, i, "length register out of range");
      }
      if ((is_memory_access(in.op) || is_report(in.op)) &&
          (in.size == 0 || in.size > 8)) {
        return problem(fn, b, i, "access size must be 1..8");
      }
      if (is_report(in.op) && in.target > 1) {
        return problem(fn, b, i, "report kind must be read (0) or write (1)");
      }
      if ((in.extra_reads || in.extra_writes) && !is_memory_access(in.op)) {
        return problem(fn, b, i,
                       "compensation extras on a non-load/store instruction");
      }
      if (in.op == Opcode::kBr && in.target >= fn.blocks.size()) {
        return problem(fn, b, i, "branch target out of range");
      }
      if (in.op == Opcode::kCondBr &&
          (in.target >= fn.blocks.size() ||
           in.target2 >= fn.blocks.size())) {
        return problem(fn, b, i, "conditional branch target out of range");
      }
      if (in.op == Opcode::kCall) {
        if (in.imm < 0 ||
            static_cast<std::size_t>(in.imm) >= module.functions.size()) {
          return problem(fn, b, i, "call target out of range");
        }
        const Function& callee =
            module.functions[static_cast<std::size_t>(in.imm)];
        if (in.b != callee.num_args) {
          return problem(fn, b, i, "call argument count mismatch");
        }
        if (in.b > 0 && in.a + in.b > fn.num_regs) {
          return problem(fn, b, i, "call argument registers out of range");
        }
      }
    }
  }
  return {};
}

std::string verify(const Module& module) {
  for (const Function& fn : module.functions) {
    std::string err = verify_function(module, fn);
    if (!err.empty()) return err;
  }
  return {};
}

// ---------------------------------------------------------------------------
// Disassembly
// ---------------------------------------------------------------------------

namespace {

std::string instr_to_string(const Instr& in) {
  auto r = [](Reg reg) { return "r" + std::to_string(reg); };
  const std::string mark = in.instrumented ? "* " : "  ";
  // " +Nr +Nw" suffix carrying the merge compensation counts.
  auto extras = [&in] {
    std::string s;
    if (in.extra_reads) s += " +" + std::to_string(in.extra_reads) + "r";
    if (in.extra_writes) s += " +" + std::to_string(in.extra_writes) + "w";
    return s;
  };
  switch (in.op) {
    case Opcode::kConst:
      return mark + r(in.dst) + " = const " + std::to_string(in.imm);
    case Opcode::kMove:
      return mark + r(in.dst) + " = " + r(in.a);
    case Opcode::kAdd:
      return mark + r(in.dst) + " = " + r(in.a) + " + " + r(in.b);
    case Opcode::kSub:
      return mark + r(in.dst) + " = " + r(in.a) + " - " + r(in.b);
    case Opcode::kMul:
      return mark + r(in.dst) + " = " + r(in.a) + " * " + r(in.b);
    case Opcode::kDiv:
      return mark + r(in.dst) + " = " + r(in.a) + " / " + r(in.b);
    case Opcode::kRem:
      return mark + r(in.dst) + " = " + r(in.a) + " % " + r(in.b);
    case Opcode::kCmpLt:
      return mark + r(in.dst) + " = " + r(in.a) + " < " + r(in.b);
    case Opcode::kCmpEq:
      return mark + r(in.dst) + " = " + r(in.a) + " == " + r(in.b);
    case Opcode::kLoad:
      return mark + r(in.dst) + " = load." + std::to_string(in.size) + " [" +
             r(in.a) + (in.imm ? " + " + std::to_string(in.imm) : "") + "]" +
             extras();
    case Opcode::kStore:
      return mark + "store." + std::to_string(in.size) + " [" + r(in.a) +
             (in.imm ? " + " + std::to_string(in.imm) : "") + "], " +
             r(in.b) + extras();
    case Opcode::kCall:
      return mark + r(in.dst) + " = call @" + std::to_string(in.imm) + "(" +
             r(in.a) + " .. " + std::to_string(in.b) + " args)";
    case Opcode::kMemSet:
      return mark + "memset [" + r(in.a) + "], " + std::to_string(in.imm) +
             ", len " + r(in.b);
    case Opcode::kMemCopy:
      return mark + "memcpy [" + r(in.a) + "] <- [" + r(in.b) + "], len " +
             r(in.dst);
    case Opcode::kReport:
      return mark + "report." + std::to_string(in.size) + " [" + r(in.a) +
             (in.imm ? " + " + std::to_string(in.imm) : "") + "] x " +
             r(in.b) + ", " + (in.target ? "write" : "read");
    case Opcode::kBr:
      return mark + "br bb" + std::to_string(in.target);
    case Opcode::kCondBr:
      return mark + "br " + r(in.a) + " ? bb" + std::to_string(in.target) +
             " : bb" + std::to_string(in.target2);
    case Opcode::kRet:
      return mark + "ret " + r(in.a);
    case Opcode::kAcquire:
      return mark + "acquire";
    case Opcode::kRelease:
      return mark + "release";
    case Opcode::kHandoff:
      return mark + "handoff [" + r(in.a) +
             (in.imm ? " + " + std::to_string(in.imm) : "") + "], len " +
             r(in.b);
  }
  return mark + "?";
}

}  // namespace

std::string to_string(const Function& fn) {
  std::string out = "func " + fn.name + "(" + std::to_string(fn.num_args) +
                    " args, " + std::to_string(fn.num_regs) + " regs):\n";
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    out += "bb" + std::to_string(b) + ":\n";
    for (const Instr& in : fn.blocks[b].instrs) {
      out += "  " + instr_to_string(in) + "\n";
    }
  }
  return out;
}

std::string to_string(const Module& module) {
  std::string out;
  for (const Function& fn : module.functions) {
    out += to_string(fn);
    out += "\n";
  }
  return out;
}

}  // namespace pred::ir
