// Edge cases and failure-injection across layers: exhaustion paths, odd
// attribution layouts, dead-object reporting, and live-mode smoke coverage
// of the workload suite.
#include <gtest/gtest.h>

#include "api/predator.hpp"
#include "workloads/workload.hpp"

namespace pred {
namespace {

TEST(EdgeCases, AllocatorExhaustionReturnsNull) {
  RuntimeConfig cfg;
  Runtime rt(cfg);
  PredatorAllocator alloc(rt, 256 * 1024);  // deliberately tiny heap
  // Large allocations bypass size classes and drain the region directly.
  int succeeded = 0;
  for (int i = 0; i < 64; ++i) {
    if (alloc.allocate(32 * 1024, {"x.c:1"}) != nullptr) ++succeeded;
  }
  EXPECT_GT(succeeded, 4);
  EXPECT_LT(succeeded, 9);
  EXPECT_EQ(alloc.allocate(32 * 1024, {"x.c:2"}), nullptr);
  // Small allocations also eventually fail rather than corrupt.
  void* last = nullptr;
  for (int i = 0; i < 100000; ++i) {
    last = alloc.allocate(64, {"x.c:3"});
    if (last == nullptr) break;
  }
  EXPECT_EQ(last, nullptr);
}

TEST(EdgeCases, ZeroByteAllocationIsUsable) {
  RuntimeConfig cfg;
  Runtime rt(cfg);
  PredatorAllocator alloc(rt, 1024 * 1024);
  void* p = alloc.allocate(0, {"zero.c:1"});
  ASSERT_NE(p, nullptr);
  alloc.deallocate(p);
}

TEST(EdgeCases, DoubleFreeIsIgnored) {
  RuntimeConfig cfg;
  Runtime rt(cfg);
  PredatorAllocator alloc(rt, 1024 * 1024);
  void* p = alloc.allocate(64, {"df.c:1"});
  alloc.deallocate(p);
  alloc.deallocate(p);  // record is gone: must be a no-op
  alloc.deallocate(reinterpret_cast<void*>(
      reinterpret_cast<Address>(p) + 4));  // interior pointer: no-op
}

TEST(EdgeCases, TwoObjectsOnOneLineAttributeToTheHotterOne) {
  SessionOptions o;
  o.heap_size = 8 * 1024 * 1024;
  o.runtime.tracking_threshold = 2;
  o.runtime.report_invalidation_threshold = 20;
  Session s(o);
  // Two 16-byte objects share a line (same thread allocates both).
  auto* a = static_cast<long*>(s.alloc(16, s.intern_frames({"small.c:first"})));
  auto* b = static_cast<long*>(s.alloc(16, s.intern_frames({"small.c:second"})));
  ASSERT_EQ(reinterpret_cast<Address>(a) / 64,
            reinterpret_cast<Address>(b) / 64);
  // Object b carries nearly all the traffic (two threads, false sharing).
  for (int i = 0; i < 300; ++i) {
    s.record(&b[0], AccessType::kWrite, 0, 8);
    s.record(&b[1], AccessType::kWrite, 1, 8);
  }
  s.record(&a[0], AccessType::kWrite, 0, 8);
  const Report rep = s.report();
  ASSERT_EQ(rep.findings.size(), 1u);
  ASSERT_NE(rep.findings[0].object.callsite, kNoCallsite);
  const auto& frames =
      s.runtime().callsites().get(rep.findings[0].object.callsite).frames;
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], "small.c:second");
}

TEST(EdgeCases, FreedFalselySharedObjectStillReported) {
  // The reuse rule's purpose: the report survives the object's free.
  SessionOptions o;
  o.heap_size = 8 * 1024 * 1024;
  o.runtime.tracking_threshold = 2;
  o.runtime.report_invalidation_threshold = 20;
  Session s(o);
  auto* p = static_cast<long*>(s.alloc(64, s.intern_frames({"freed.c:42"})));
  for (int i = 0; i < 200; ++i) {
    s.record(&p[0], AccessType::kWrite, 0, 8);
    s.record(&p[1], AccessType::kWrite, 1, 8);
  }
  s.free(p);
  const Report rep = s.report();
  ASSERT_EQ(rep.findings.size(), 1u);
  EXPECT_FALSE(rep.findings[0].object.live);
  const std::string text = s.report_text();
  EXPECT_NE(text.find("freed.c:42"), std::string::npos);
}

TEST(EdgeCases, AccessSizeZeroTreatedAsOneByte) {
  SessionOptions o;
  o.heap_size = 4 * 1024 * 1024;
  o.runtime.tracking_threshold = 2;
  Session s(o);
  auto* p = static_cast<char*>(s.alloc(64, s.intern_frames({"sz.c:1"})));
  for (int i = 0; i < 10; ++i) s.record(p, AccessType::kWrite, 0, 0);  // size 0: no crash
  auto& shadow = s.allocator().shadow();
  CacheTracker* t =
      shadow.tracker(shadow.line_index(reinterpret_cast<Address>(p)));
  ASSERT_NE(t, nullptr);
}

TEST(EdgeCases, ReportThresholdZeroReportsEverythingTouchedByConflict) {
  SessionOptions o;
  o.heap_size = 4 * 1024 * 1024;
  o.runtime.tracking_threshold = 2;
  o.runtime.report_invalidation_threshold = 0;
  Session s(o);
  auto* p = static_cast<long*>(s.alloc(64, s.intern_frames({"t0.c:1"})));
  for (int i = 0; i < 5; ++i) s.record(&p[0], AccessType::kWrite, 0, 8);
  // Even a never-invalidated line passes a zero threshold.
  EXPECT_FALSE(s.report().findings.empty());
}

// Live-mode smoke over representative workloads: the real-thread execution
// path (used by the overhead/memory figures) must run cleanly for every
// suite, including the racy real-app kernels.
class LiveSmoke : public ::testing::TestWithParam<std::string> {};

TEST_P(LiveSmoke, RunsWithRealThreads) {
  const wl::Workload* w = wl::find_workload(GetParam());
  ASSERT_NE(w, nullptr);
  SessionOptions o;
  o.heap_size = 32 * 1024 * 1024;
  Session session(o);
  wl::Params p;
  p.threads = 4;
  const wl::Result live = w->run_live(session, p);
  (void)live;
  // The session saw traffic and reporting works.
  EXPECT_GT(session.allocator().live_bytes(), 0u);
  (void)session.report_text();
}

INSTANTIATE_TEST_SUITE_P(Representative, LiveSmoke,
                         ::testing::Values("histogram", "linear_regression",
                                           "streamcluster", "mysql", "boost",
                                           "memcached", "pbzip2",
                                           "blackscholes"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace pred
