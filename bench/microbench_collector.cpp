// Collector pipeline microbench: the three costs a fleet deployment pays.
//
// Phase A — codec: SnapshotCodec encode/decode of a realistic snapshot
//   (16 hot lines, 8 callsites, 4 rings), measured separately. This bounds
//   the per-publish cost a client adds to its monitor thread and the
//   per-frame cost the collector pays before merging.
//
// Phase B — ingest: pre-encoded frames from 32 simulated clients fed
//   through Collector::ingest_frame from 4 threads, with 1 shard (fully
//   serialized) vs 8 shards. The ratio shows how much of the ingest path
//   the shard locks actually cover.
//
// Phase C — rollup: folding a populated collector (64 clients) into the
//   fleet view, i.e. the cost of each periodic report in `serve`.
//
// Usage: microbench_collector [frames] [--json FILE]
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "collect/collector.hpp"
#include "trace/snapshot_codec.hpp"

namespace {

constexpr std::uint32_t kIngestThreads = 4;
constexpr std::size_t kClients = 32;

// A snapshot shaped like a busy client's: full top-K, attributed lines,
// sites with labels, a few rings.
pred::MonitorSnapshot make_snapshot(std::uint64_t client, std::uint64_t seq) {
  pred::MonitorSnapshot s;
  s.sequence = seq;
  s.events_seen = 100000 * seq;
  s.events_dropped = 17 * seq;
  s.aggregation_passes = 50 * seq;
  s.escalations = 12;
  s.invalidations = 9000 * seq;
  s.samples = 40000 * seq;
  s.predictions = 2;
  s.virtual_lines = 4;
  s.lines_tracked = 16;
  for (std::uint64_t i = 0; i < 16; ++i) {
    pred::MonitorSnapshot::LineEntry le;
    le.line_start = 0x4000000000ull + 64 * ((client * 7 + i) % 48);
    le.invalidations = 100 * seq + i;
    le.samples = 400 * seq + i;
    le.sample_writes = 300 * seq;
    le.escalated = i % 3 == 0;
    le.attributed = true;
    le.object_start = le.line_start & ~0xfffull;
    le.callsite = static_cast<pred::CallsiteId>(1 + i % 8);
    le.label = "bench.c:" + std::to_string(10 + i % 8);
    s.top_lines.push_back(le);
  }
  for (std::uint64_t i = 0; i < 8; ++i) {
    pred::MonitorSnapshot::CallsiteEntry ce;
    ce.callsite = static_cast<pred::CallsiteId>(1 + i);
    ce.label = "bench.c:" + std::to_string(10 + i);
    ce.invalidations = 200 * seq;
    ce.samples = 800 * seq;
    ce.lines = 2;
    s.callsites.push_back(ce);
  }
  for (int i = 0; i < 4; ++i) s.rings.push_back({5000 * seq, 4990 * seq, 10 * seq});
  return s;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

struct CodecRates {
  double encodes_per_sec = 0.0;
  double decodes_per_sec = 0.0;
  std::size_t frame_bytes = 0;
};

CodecRates bench_codec(std::uint64_t iters) {
  const pred::MonitorSnapshot snap = make_snapshot(1, 40);
  const pred::ClientId client{0x1234, 42};
  CodecRates r;

  std::string frame;
  auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    frame = pred::SnapshotCodec::encode(snap, client);
  }
  r.encodes_per_sec = static_cast<double>(iters) / seconds_since(start);
  r.frame_bytes = frame.size();

  pred::wire::Frame parsed;
  std::size_t consumed = 0;
  if (pred::wire::parse_frame(frame, &parsed, &consumed) !=
      pred::wire::FrameError::kOk) {
    std::fprintf(stderr, "codec self-check failed\n");
    std::exit(1);
  }
  start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    pred::DecodedSnapshot decoded;
    if (!pred::SnapshotCodec::decode(parsed.payload, &decoded)) {
      std::fprintf(stderr, "decode self-check failed\n");
      std::exit(1);
    }
  }
  r.decodes_per_sec = static_cast<double>(iters) / seconds_since(start);
  return r;
}

// Frames/sec through ingest_frame with the given shard count, kIngestThreads
// feeders striding over one shared pre-encoded frame set.
double bench_ingest(std::size_t shards, std::uint64_t frames_total) {
  std::vector<std::string> frames;
  frames.reserve(1024);
  for (std::size_t c = 0; c < kClients; ++c) {
    for (std::uint64_t seq = 1; seq <= 1024 / kClients; ++seq) {
      frames.push_back(pred::SnapshotCodec::encode(
          make_snapshot(c, seq), pred::ClientId{100 + c, 5000 + c}));
    }
  }

  pred::Collector collector({shards, 16});
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::uint32_t t = 0; t < kIngestThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = t; i < frames_total; i += kIngestThreads) {
        if (!collector.ingest_frame(frames[i % frames.size()])) {
          std::fprintf(stderr, "ingest rejected a valid frame\n");
          std::exit(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const double elapsed = seconds_since(start);
  if (collector.stats().snapshots_ingested == 0) {
    std::fprintf(stderr, "ingest self-check failed\n");
    std::exit(1);
  }
  return static_cast<double>(collector.stats().snapshots_ingested) / elapsed;
}

double bench_rollup(std::uint64_t iters) {
  pred::Collector collector({8, 16});
  for (std::size_t c = 0; c < 64; ++c) {
    for (std::uint64_t seq = 1; seq <= 4; ++seq) {
      collector.ingest(100 + c, 5000 + c, make_snapshot(c, seq));
    }
  }
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    const pred::FleetRollup r = collector.rollup();
    if (r.clients != 64) {
      std::fprintf(stderr, "rollup self-check failed\n");
      std::exit(1);
    }
  }
  return static_cast<double>(iters) / seconds_since(start);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t frames = 200'000;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      frames = std::strtoull(argv[i], nullptr, 10);
      if (frames == 0) {
        std::fprintf(stderr, "usage: %s [frames > 0] [--json FILE]\n",
                     argv[0]);
        return 1;
      }
    }
  }

  std::printf("collector pipeline: %zu clients, %u ingest threads, %" PRIu64
              " frames\n\n",
              kClients, kIngestThreads, frames);

  const CodecRates codec = bench_codec(frames / 4);
  std::printf("phase A: snapshot codec (%zu-byte frame)\n", codec.frame_bytes);
  std::printf("  %-28s %15.0f snapshots/sec\n", "encode", codec.encodes_per_sec);
  std::printf("  %-28s %15.0f snapshots/sec\n", "decode", codec.decodes_per_sec);

  const double ingest_1 = bench_ingest(1, frames);
  const double ingest_8 = bench_ingest(8, frames);
  std::printf("\nphase B: concurrent ingest\n");
  std::printf("  %-28s %15.0f frames/sec\n", "1 shard (serialized)", ingest_1);
  std::printf("  %-28s %15.0f frames/sec  (%.2fx)\n", "8 shards", ingest_8,
              ingest_1 > 0.0 ? ingest_8 / ingest_1 : 0.0);

  const double rollups = bench_rollup(frames / 100);
  std::printf("\nphase C: fleet rollup (64 clients)\n");
  std::printf("  %-28s %15.0f rollups/sec\n", "rollup()", rollups);

  if (!json_path.empty()) {
    pred::bench::JsonWriter json;
    json.add("frame_bytes", static_cast<double>(codec.frame_bytes));
    json.add("encode_per_sec", codec.encodes_per_sec);
    json.add("decode_per_sec", codec.decodes_per_sec);
    json.add("ingest_1shard_fps", ingest_1);
    json.add("ingest_8shard_fps", ingest_8);
    json.add("rollup_per_sec", rollups);
    if (!json.write_file(json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "json: %s\n", json_path.c_str());
  }
  return 0;
}
