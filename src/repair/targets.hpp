// Planted-false-sharing workloads the repair verifier closes the loop on.
// Each target is a tiny deterministic program with a known sharing defect —
// one per plan backend:
//
//   * "counter_pool": per-thread 16-byte heap counters allocated by one hot
//     callsite, packed four to a line by the thread heap. Repaired by the
//     ALLOCATOR backend: PredatorAllocator pads the callsite's requests to
//     pad_to, and the size classes then line-align them naturally.
//   * "global_grid": a packed global array of 16-byte per-thread slots
//     accessed by generated mini-IR slot kernels. Repaired by the IR
//     REWRITE backend: apply_repair_rewrite retargets every slot access to
//     the padded layout of a line-strided buffer.
//
// Both compute a layout-independent checksum, so the verifier can assert
// bit-identical results across the repair.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "api/predator.hpp"
#include "instrument/analysis/predict.hpp"
#include "repair/plan.hpp"
#include "repair/planner.hpp"
#include "sim/executor.hpp"

namespace pred::repair {

/// Everything the STATIC repair path needs to compile a plan without
/// running: the target's mini-IR module, the thread-role assignment its
/// harness would use, and names for the shared regions the roles touch
/// (indexed by ir::RoleSpec::region) so plan entries carry the same site
/// keys the dynamic detector would report.
struct StaticModuleSpec {
  ir::Module module;
  std::vector<ir::RoleSpec> roles;
  std::vector<StaticRegion> regions;
};

/// One target run: the per-thread traces to replay/simulate, the workload's
/// observable result, and whatever memory backs the traced addresses.
struct RunResult {
  std::vector<ThreadTrace> traces;  ///< traces[t] is logical thread t
  std::uint64_t checksum = 0;       ///< layout-independent observable
  /// Keeps the accessed memory alive (and its addresses meaningful) until
  /// the traces have been replayed and simulated. May be null when the
  /// session itself owns the memory (heap targets).
  std::shared_ptr<void> keep_alive;
};

class RepairTarget {
 public:
  virtual ~RepairTarget() = default;
  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;

  /// Runs the workload against `session` (allocating or registering its
  /// data there) and captures per-thread traces sequentially. `plan` is
  /// null for the baseline run. Targets repaired through the allocator
  /// ignore it — the verifier installs the plan into session.allocator()
  /// before calling — while targets repaired through the IR rewrite consume
  /// the matching entry directly.
  virtual RunResult run(Session& session, const RepairPlan* plan,
                        std::uint32_t threads, std::uint64_t scale) const = 0;

  /// Fills `*out` with the module/roles/regions a static predict→plan pass
  /// needs and returns true; the default says the target has no static
  /// description (heap targets whose defect lives in allocator behavior,
  /// not analyzable IR). The spec must describe the SAME program run()
  /// executes for the given (threads, scale) so the verifier's measurement
  /// runs measure what the plan was compiled against.
  virtual bool static_spec(StaticModuleSpec* out, std::uint32_t threads,
                           std::uint64_t scale) const {
    (void)out;
    (void)threads;
    (void)scale;
    return false;
  }
};

/// The built-in targets, in a stable order.
const std::vector<const RepairTarget*>& all_repair_targets();

/// Lookup by name(); nullptr when unknown.
const RepairTarget* find_repair_target(std::string_view name);

}  // namespace pred::repair
