file(REMOVE_RECURSE
  "CMakeFiles/predator-cli.dir/predator_cli.cpp.o"
  "CMakeFiles/predator-cli.dir/predator_cli.cpp.o.d"
  "predator-cli"
  "predator-cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predator-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
