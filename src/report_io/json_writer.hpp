// Minimal streaming JSON writer: enough structure for the report exporter
// (objects, arrays, string/number/bool fields) with correct escaping and
// comma management, no external dependencies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pred {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits a key inside an object; must be followed by a value call.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& s);
  JsonWriter& value(const char* s);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& null_value();

  // Convenience: key + value in one call.
  template <typename T>
  JsonWriter& field(const std::string& name, const T& v) {
    key(name);
    return value(v);
  }

  /// The document so far. Valid once every container is closed.
  const std::string& str() const { return out_; }
  bool complete() const { return depth_ == 0 && !out_.empty(); }

  static std::string escape(const std::string& raw);

 private:
  void before_value();

  std::string out_;
  std::vector<bool> needs_comma_;  // per open container
  int depth_ = 0;
  bool pending_key_ = false;
};

}  // namespace pred
