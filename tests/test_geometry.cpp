// Geometry sweeps: the detector and predictor must behave correctly for
// non-default cache-line sizes and word granularities (the paper's virtual
// lines explicitly target other line sizes, so the machinery must be
// geometry-clean).
#include <gtest/gtest.h>

#include "predict/predictor.hpp"
#include "runtime/report.hpp"
#include "runtime/runtime.hpp"

namespace pred {
namespace {

struct GeometryCase {
  std::size_t line_size;
  std::size_t word_size;
};

class GeometrySweep : public ::testing::TestWithParam<GeometryCase> {
 protected:
  RuntimeConfig config() const {
    RuntimeConfig cfg;
    cfg.geometry.line_size = GetParam().line_size;
    cfg.geometry.word_size = GetParam().word_size;
    cfg.tracking_threshold = 2;
    cfg.prediction_threshold = 64;
    cfg.report_invalidation_threshold = 50;
    return cfg;
  }
};

alignas(256) char g_buf[8192];

TEST_P(GeometrySweep, LineGeometryMathIsConsistent) {
  const LineGeometry geo{GetParam().line_size, GetParam().word_size};
  for (Address a = 0; a < 4 * geo.line_size; a += geo.word_size) {
    EXPECT_EQ(geo.line_index(a), a / geo.line_size);
    EXPECT_EQ(geo.line_base(a) % geo.line_size, 0u);
    EXPECT_LT(geo.word_in_line(a), geo.words_per_line());
    EXPECT_EQ(geo.word_in_line(a),
              (a - geo.line_base(a)) / geo.word_size);
  }
}

TEST_P(GeometrySweep, FalseSharingDetectedWithinOneLine) {
  Runtime rt(config());
  rt.register_region(reinterpret_cast<Address>(g_buf), sizeof(g_buf));
  const Address base = reinterpret_cast<Address>(g_buf);
  const std::size_t word = GetParam().word_size;
  for (int i = 0; i < 300; ++i) {
    rt.handle_access(base, AccessType::kWrite, 0, word);
    rt.handle_access(base + word, AccessType::kWrite, 1, word);
  }
  const Report rep = build_report(rt);
  ASSERT_EQ(rep.findings.size(), 1u);
  EXPECT_EQ(rep.findings[0].kind, SharingKind::kFalseSharing);
}

TEST_P(GeometrySweep, NoFalseSharingAcrossLineBoundary) {
  Runtime rt(config());
  rt.register_region(reinterpret_cast<Address>(g_buf), sizeof(g_buf));
  const Address base = reinterpret_cast<Address>(g_buf);
  const std::size_t line = GetParam().line_size;
  // Two threads on *different* lines: no observed invalidations (but the
  // predictor may flag a latent problem, which is by design).
  for (int i = 0; i < 300; ++i) {
    rt.handle_access(base, AccessType::kWrite, 0);
    rt.handle_access(base + 2 * line, AccessType::kWrite, 1);
  }
  EXPECT_EQ(build_report(rt).total_invalidations, 0u);
}

TEST_P(GeometrySweep, PredictionAcrossAdjacentLines) {
  RuntimeConfig cfg = config();
  Runtime rt(cfg);
  Predictor predictor;
  predictor.attach(rt);
  rt.register_region(reinterpret_cast<Address>(g_buf), sizeof(g_buf));
  const Address base = reinterpret_cast<Address>(g_buf);
  const std::size_t line = GetParam().line_size;
  const std::size_t word = GetParam().word_size;
  // Pick an even-indexed line so the double-line candidate is possible.
  const std::size_t idx0 = reinterpret_cast<Address>(g_buf) / line;
  const Address start = base + (idx0 % 2 == 0 ? 0 : line);
  for (int i = 0; i < 400; ++i) {
    rt.handle_access(start + line - word, AccessType::kWrite, 0, word);
    rt.handle_access(start + line, AccessType::kWrite, 1, word);
  }
  EXPECT_GT(predictor.candidates_nominated(), 0u);
  bool verified = false;
  for (const auto& vl : rt.virtual_lines()) {
    verified |= vl.invalidations() > 50;
    // Every virtual line's size is either one or two model lines.
    EXPECT_TRUE(vl.size() == line || vl.size() == 2 * line);
  }
  EXPECT_TRUE(verified);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GeometrySweep,
    ::testing::Values(GeometryCase{64, 8}, GeometryCase{64, 4},
                      GeometryCase{128, 8}, GeometryCase{32, 4},
                      GeometryCase{256, 8}),
    [](const auto& info) {
      return "line" + std::to_string(info.param.line_size) + "word" +
             std::to_string(info.param.word_size);
    });

// Larger modeled lines merge neighbors: accesses that false-share on a
// 128-byte machine but not on a 64-byte one.
TEST(GeometrySemantics, LargerLinesObserveMoreSharing) {
  auto run = [](std::size_t line_size) {
    RuntimeConfig cfg;
    cfg.geometry.line_size = line_size;
    cfg.tracking_threshold = 2;
    cfg.report_invalidation_threshold = 50;
    cfg.prediction_enabled = false;
    Runtime rt(cfg);
    rt.register_region(reinterpret_cast<Address>(g_buf), sizeof(g_buf));
    const Address base =
        round_up(reinterpret_cast<Address>(g_buf), 256);  // align both ways
    for (int i = 0; i < 300; ++i) {
      rt.handle_access(base + 56, AccessType::kWrite, 0);
      rt.handle_access(base + 72, AccessType::kWrite, 1);  // next 64B line
    }
    return build_report(rt).total_invalidations;
  };
  EXPECT_EQ(run(64), 0u);    // different 64-byte lines
  EXPECT_GT(run(128), 500u); // same 128-byte line: the Figure 3(b) scenario
}

}  // namespace
}  // namespace pred
