// Closed-loop repair verification: detect → plan → apply → re-run → prove.
//
// run_repair_loop drives a RepairTarget twice through fresh sessions. The
// first (baseline) run is replayed into the detector, its report compiled
// into a RepairPlan, and its traces pushed through the coherence simulator
// to count invalidations on the plan's sites. The second run executes with
// the plan applied — via the allocator (heap sites) and/or the IR rewrite
// (global sites) — and the same replay + simulation re-measure the sites.
// The outcome certifies two properties:
//
//   * effectiveness — simulated invalidations on the repaired sites drop by
//     at least `drop_threshold`, and no false-sharing finding survives on
//     them in the post-repair report;
//   * equivalence — the workload's layout-independent checksum is
//     bit-identical across the repair (the fix changed placement, not
//     behavior).
#pragma once

#include <cstddef>
#include <cstdint>

#include "api/predator.hpp"
#include "repair/plan.hpp"
#include "repair/targets.hpp"
#include "runtime/report.hpp"
#include "sim/cache_sim.hpp"

namespace pred::repair {

/// SessionOptions tuned for deterministic replay detection: every line
/// tracked and reported from the first write, full sampling, prediction
/// off, and a small heap — the same recipe the regression harnesses use.
SessionOptions detection_session_options(
    std::size_t heap_size = 4 * 1024 * 1024);

struct VerifierOptions {
  std::uint32_t threads = 8;
  std::uint64_t scale = 1;
  std::size_t quantum = 1;  ///< replay/simulation interleaving granule
  SimConfig sim{};
  /// Minimum fraction of the sites' simulated invalidations the repair must
  /// remove for `RepairOutcome::repaired()` to hold.
  double drop_threshold = 0.9;
  SessionOptions session = detection_session_options();
};

struct RepairOutcome {
  RepairPlan plan;
  Report baseline_report;
  Report repaired_report;

  /// Simulated invalidations summed over the objects matching plan sites.
  std::uint64_t baseline_invalidations = 0;
  std::uint64_t repaired_invalidations = 0;

  std::uint64_t baseline_checksum = 0;
  std::uint64_t repaired_checksum = 0;

  /// False-sharing findings on plan sites surviving in the repaired report.
  std::size_t repaired_site_findings = 0;

  // Phase timings (wall clock).
  double detect_ms = 0;
  double plan_ms = 0;
  double apply_ms = 0;
  double verify_ms = 0;

  /// Fraction of the baseline sites' invalidations removed, in [0, 1].
  double drop_pct() const {
    if (baseline_invalidations == 0) return 0.0;
    if (repaired_invalidations >= baseline_invalidations) return 0.0;
    return 1.0 - static_cast<double>(repaired_invalidations) /
                     static_cast<double>(baseline_invalidations);
  }
  bool checksums_match() const {
    return baseline_checksum == repaired_checksum;
  }
  /// The closed-loop verdict at `threshold` (see file comment).
  bool repaired(double threshold) const {
    return !plan.empty() && baseline_invalidations > 0 &&
           drop_pct() >= threshold && repaired_site_findings == 0 &&
           checksums_match();
  }
};

/// Runs the full loop on `target`. Deterministic for deterministic targets.
RepairOutcome run_repair_loop(const RepairTarget& target,
                              const VerifierOptions& options = {});

/// The PURELY STATIC loop: the plan is compiled from the target's
/// StaticModuleSpec through predict_static_fs + the static compile_plan
/// overload BEFORE anything runs — no profiling informs it. The target is
/// then executed only to MEASURE: a baseline run (detect phase timing)
/// establishes invalidations and checksum, a repaired run verifies the
/// drop, exactly as in run_repair_loop. Targets without a static spec
/// return an empty outcome (plan empty, never `repaired()`).
RepairOutcome run_static_repair_loop(const RepairTarget& target,
                                     const VerifierOptions& options = {});

/// Human-readable outcome block (the `predator-cli repair` output body).
std::string format_outcome(const RepairOutcome& outcome,
                           double drop_threshold);

}  // namespace pred::repair
