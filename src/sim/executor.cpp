#include "sim/executor.hpp"

#include <algorithm>

namespace pred {

ConcurrentResult simulate_concurrent(CacheSim& sim,
                                     std::span<const ThreadTrace> traces) {
  const std::size_t n = traces.size();
  std::vector<std::size_t> cursor(n, 0);
  std::vector<std::uint64_t> clock(n, 0);

  ConcurrentResult result;
  while (true) {
    // Pick the earliest thread that still has work.
    std::size_t best = n;
    for (std::size_t t = 0; t < n; ++t) {
      if (cursor[t] >= traces[t].size()) continue;
      if (best == n || clock[t] < clock[best]) best = t;
    }
    if (best == n) break;
    const TraceEvent& ev = traces[best][cursor[best]++];
    const std::uint32_t core =
        static_cast<std::uint32_t>(best % sim.config().num_cores);
    const std::uint64_t cost = sim.on_access(core, ev.addr, ev.type);
    clock[best] += ev.think_cycles + cost;
  }
  for (std::size_t t = 0; t < n; ++t) {
    result.finish_cycles = std::max(result.finish_cycles, clock[t]);
  }
  result.stats = sim.stats();
  return result;
}

SimStats simulate_interleaved(CacheSim& sim,
                              std::span<const ThreadTrace> traces,
                              std::size_t quantum) {
  if (quantum == 0) quantum = 1;
  std::vector<std::size_t> cursor(traces.size(), 0);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t t = 0; t < traces.size(); ++t) {
      const ThreadTrace& trace = traces[t];
      const std::uint32_t core =
          static_cast<std::uint32_t>(t % sim.config().num_cores);
      for (std::size_t q = 0; q < quantum && cursor[t] < trace.size(); ++q) {
        const TraceEvent& ev = trace[cursor[t]++];
        sim.on_access(core, ev.addr, ev.type);
        progressed = true;
      }
    }
  }
  return sim.stats();
}

}  // namespace pred
