# Call-graph demo: a straight-line leaf (exactly summarizable), a
# constant-bound loop callee (summarizable by unrolling), a self-recursive
# callee (unsummarizable by cycle membership), and a driver whose hot loop
# calls the leaf with loop-invariant arguments — the shape the
# interprocedural call-batching pass expands into preheader reports.
#
# Run `predator-cli analyze examples/ir/callgraph_demo.pir` to see the
# call-graph section and the pruning ledger: the loop in @3 batches through
# @0's summary, so per-iteration deliveries collapse into trip-count
# reports against an uninstrumented "$bare" clone.

# @0: leaf(buf, k) — three accesses per invocation, always.
func leaf(2 args, 4 regs):
bb0:
  r2 = const 1
  store.8 [r0], r2
  store.8 [r0 + 8], r2
  r3 = load.8 [r0 + 8]
  ret r2

# @1: quad(buf, k) — four iterations decided by constants alone.
func quad(2 args, 10 regs):
bb0:
  r2 = const 0
  r3 = const 4
  r5 = const 8
  r9 = const 1
  br bb1
bb1:
  r4 = r2 < r3
  br r4 ? bb2 : bb3
bb2:
  store.8 [r0 + 16], r2
  r6 = r2 * r5
  r7 = r0 + r6
  r8 = load.8 [r7]
  r2 = r2 + r9
  br bb1
bb3:
  ret r2

# @2: spin(buf, k) — folds its depth through k % 7, then recurses.
func spin(2 args, 9 regs):
bb0:
  r2 = const 7
  r3 = r1 % r2
  store.8 [r0], r3
  r4 = const 1
  r5 = r3 < r4
  br r5 ? bb2 : bb1
bb1:
  r6 = r0
  r7 = r3 - r4
  r8 = call @2(r6 .. 2 args)
  ret r8
bb2:
  ret r3

# @3: main(buf, n) — counted loop calling @0 with invariant (buf, 3), then
# one straight call to @1.
func main(2 args, 11 regs):
bb0:
  r2 = const 0
  r3 = const 1
  r4 = r0
  r5 = const 3
  br bb1
bb1:
  r6 = r2 < r1
  br r6 ? bb2 : bb3
bb2:
  r7 = call @0(r4 .. 2 args)
  r2 = r2 + r3
  br bb1
bb3:
  r8 = r0
  r9 = const 2
  r10 = call @1(r8 .. 2 args)
  ret r2
