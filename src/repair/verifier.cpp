#include "repair/verifier.hpp"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <utility>

#include "advice/fix_advisor.hpp"
#include "repair/planner.hpp"
#include "sim/executor.hpp"
#include "workloads/workload.hpp"

namespace pred::repair {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Stable site key of a registered object, mirroring the planner's keying.
std::string site_key_of(const ObjectInfo& obj, const CallsiteTable& callsites) {
  if (obj.is_global) return obj.name;
  if (obj.callsite == kNoCallsite) return {};
  return join_frames(callsites.get(obj.callsite).frames);
}

/// Simulated invalidations summed over every registered object whose site
/// key matches a plan entry. Walks the registry (not the report) so padded
/// objects that no longer misbehave are still measured.
std::uint64_t site_invalidations(Session& session, const RepairPlan& plan,
                                 const CacheSim& sim) {
  std::uint64_t total = 0;
  const CallsiteTable& callsites = session.runtime().callsites();
  session.runtime().objects().for_each([&](const ObjectInfo& obj) {
    const std::string key = site_key_of(obj, callsites);
    if (!key.empty() && plan.find(obj.is_global, key) != nullptr) {
      total += sim.invalidations_in(obj.start, obj.size ? obj.size : 1);
    }
  });
  return total;
}

std::size_t surviving_site_findings(const Report& report,
                                    const RepairPlan& plan,
                                    const CallsiteTable& callsites) {
  std::size_t n = 0;
  for (const ObjectFinding& f : report.findings) {
    if (!f.is_false_sharing() || f.impact() == 0) continue;
    const std::string key = site_key_of(f.object, callsites);
    if (!key.empty() && plan.find(f.object.is_global, key) != nullptr) ++n;
  }
  return n;
}

}  // namespace

SessionOptions detection_session_options(std::size_t heap_size) {
  SessionOptions opts;
  opts.runtime.tracking_threshold = 1;
  opts.runtime.prediction_threshold = 1;
  opts.runtime.report_invalidation_threshold = 1;
  opts.runtime.prediction_enabled = false;
  opts.runtime.set_sampling_rate(1.0);
  opts.heap_size = heap_size;
  return opts;
}

RepairOutcome run_repair_loop(const RepairTarget& target,
                              const VerifierOptions& options) {
  RepairOutcome out;

  // Phase 1 — detect: baseline run, replayed into a fresh detector.
  const auto t_detect = Clock::now();
  Session baseline(options.session);
  RunResult base =
      target.run(baseline, nullptr, options.threads, options.scale);
  out.baseline_checksum = base.checksum;
  wl::replay_into_session(baseline, base.traces, options.quantum);
  out.baseline_report = baseline.report();
  out.detect_ms = ms_since(t_detect);

  // Phase 2 — plan: advice lowered to machine-applicable directives.
  const auto t_plan = Clock::now();
  PlannerOptions popts;
  popts.line_size = options.session.runtime.geometry.line_size;
  out.plan = compile_plan(out.baseline_report, advise(out.baseline_report),
                          baseline.runtime().callsites(), popts);
  out.plan.origin_uid = baseline.uid();
  out.plan_ms = ms_since(t_plan);

  // Baseline coherence traffic on the plan's sites.
  CacheSim base_sim(options.sim);
  simulate_interleaved(base_sim, base.traces, options.quantum);
  out.baseline_invalidations = site_invalidations(baseline, out.plan,
                                                  base_sim);

  // Phase 3 — apply: a fresh session with the plan installed re-runs the
  // same workload; heap sites repair inside the allocator, global sites
  // through the target's IR rewrite.
  const auto t_apply = Clock::now();
  Session repaired(options.session);
  repaired.allocator().install_repair_plan(
      std::make_shared<const RepairPlan>(out.plan));
  RunResult fixed = target.run(repaired, out.plan.empty() ? nullptr
                                                          : &out.plan,
                               options.threads, options.scale);
  out.repaired_checksum = fixed.checksum;
  out.apply_ms = ms_since(t_apply);

  // Phase 4 — verify: re-detect and re-simulate the repaired layout.
  const auto t_verify = Clock::now();
  wl::replay_into_session(repaired, fixed.traces, options.quantum);
  out.repaired_report = repaired.report();
  CacheSim fixed_sim(options.sim);
  simulate_interleaved(fixed_sim, fixed.traces, options.quantum);
  out.repaired_invalidations = site_invalidations(repaired, out.plan,
                                                  fixed_sim);
  out.repaired_site_findings = surviving_site_findings(
      out.repaired_report, out.plan, repaired.runtime().callsites());
  out.verify_ms = ms_since(t_verify);
  return out;
}

RepairOutcome run_static_repair_loop(const RepairTarget& target,
                                     const VerifierOptions& options) {
  RepairOutcome out;

  // Phase 1 — plan, statically: no session exists yet, nothing has run.
  const auto t_plan = Clock::now();
  StaticModuleSpec spec;
  if (!target.static_spec(&spec, options.threads, options.scale)) {
    out.plan_ms = ms_since(t_plan);
    return out;
  }
  ir::PredictOptions popt;
  popt.line_size = options.session.runtime.geometry.line_size;
  popt.extra_line_sizes = {popt.line_size * 2};
  const ir::StaticFsReport prediction =
      ir::predict_static_fs(spec.module, spec.roles, popt);
  PlannerOptions popts;
  popts.line_size = options.session.runtime.geometry.line_size;
  out.plan = compile_plan(prediction, spec.regions, popts);
  out.plan_ms = ms_since(t_plan);

  // Phase 2 — baseline measurement run. The plan above never saw it; it
  // only establishes what the prediction claimed to eliminate.
  const auto t_detect = Clock::now();
  Session baseline(options.session);
  RunResult base =
      target.run(baseline, nullptr, options.threads, options.scale);
  out.baseline_checksum = base.checksum;
  wl::replay_into_session(baseline, base.traces, options.quantum);
  out.baseline_report = baseline.report();
  CacheSim base_sim(options.sim);
  simulate_interleaved(base_sim, base.traces, options.quantum);
  out.baseline_invalidations = site_invalidations(baseline, out.plan,
                                                  base_sim);
  out.detect_ms = ms_since(t_detect);

  // Phases 3/4 — apply + verify, identical to the profiled loop.
  const auto t_apply = Clock::now();
  Session repaired(options.session);
  repaired.allocator().install_repair_plan(
      std::make_shared<const RepairPlan>(out.plan));
  RunResult fixed = target.run(repaired, out.plan.empty() ? nullptr
                                                          : &out.plan,
                               options.threads, options.scale);
  out.repaired_checksum = fixed.checksum;
  out.apply_ms = ms_since(t_apply);

  const auto t_verify = Clock::now();
  wl::replay_into_session(repaired, fixed.traces, options.quantum);
  out.repaired_report = repaired.report();
  CacheSim fixed_sim(options.sim);
  simulate_interleaved(fixed_sim, fixed.traces, options.quantum);
  out.repaired_invalidations = site_invalidations(repaired, out.plan,
                                                  fixed_sim);
  out.repaired_site_findings = surviving_site_findings(
      out.repaired_report, out.plan, repaired.runtime().callsites());
  out.verify_ms = ms_since(t_verify);
  return out;
}

std::string format_outcome(const RepairOutcome& outcome,
                           double drop_threshold) {
  char buf[512];
  std::string text;
  std::snprintf(buf, sizeof buf,
                "sites planned:            %zu\n"
                "baseline invalidations:   %" PRIu64 "\n"
                "repaired invalidations:   %" PRIu64 "\n"
                "invalidation drop:        %.1f%% (need >= %.1f%%)\n"
                "surviving site findings:  %zu\n"
                "checksums:                %" PRIu64 " -> %" PRIu64 " (%s)\n"
                "phases (ms):              detect %.2f, plan %.2f, "
                "apply %.2f, verify %.2f\n",
                outcome.plan.entries.size(), outcome.baseline_invalidations,
                outcome.repaired_invalidations, 100.0 * outcome.drop_pct(),
                100.0 * drop_threshold, outcome.repaired_site_findings,
                outcome.baseline_checksum, outcome.repaired_checksum,
                outcome.checksums_match() ? "identical" : "DIVERGED",
                outcome.detect_ms, outcome.plan_ms, outcome.apply_ms,
                outcome.verify_ms);
  text += buf;
  std::snprintf(buf, sizeof buf, "verdict: %s\n",
                outcome.repaired(drop_threshold) ? "REPAIRED"
                                                 : "NOT REPAIRED");
  text += buf;
  return text;
}

}  // namespace pred::repair
