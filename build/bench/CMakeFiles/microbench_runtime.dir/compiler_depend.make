# Empty compiler generated dependencies file for microbench_runtime.
# This may be replaced when dependencies are built.
