// Scalability study: the MySQL quote behind Section 4.1.2 ("we were able
// to improve MySQL performance by 6x with those scalability fixes").
//
// Models throughput vs thread count for the srv_stats counter array, buggy
// (8-byte slots) vs fixed (line-padded slots), on the 8-core simulator.
// Expected shape: the fixed variant scales with cores while the buggy one
// flattens (or worsens) as more threads share each stats line — the gap at
// 8 threads is the "6x"-class win the paper cites.
#include <cstdio>

#include "bench_util.hpp"

using namespace pred;
using namespace pred::bench;

int main() {
  const wl::Workload* mysql = wl::find_workload("mysql");
  if (mysql == nullptr) return 1;

  std::printf("MySQL scalability: modeled transactions/second vs threads\n");
  std::printf("(srv_stats with 8-byte slots vs line-padded slots)\n\n");
  std::printf("%8s %16s %16s %10s\n", "threads", "buggy (txn/s)",
              "fixed (txn/s)", "fixed/buggy");
  print_rule('-', 56);

  double buggy1 = 0.0;
  double fixed1 = 0.0;
  double buggy8 = 0.0;
  double fixed8 = 0.0;
  for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    wl::Params p = default_params();
    p.threads = threads;
    const double txns = 4000.0 * threads;

    const double t_buggy = modeled_seconds(*mysql, p);
    p.fix_mask = ~0u;
    const double t_fixed = modeled_seconds(*mysql, p);

    const double tps_buggy = txns / t_buggy;
    const double tps_fixed = txns / t_fixed;
    std::printf("%8u %16.0f %16.0f %9.2fx\n", threads, tps_buggy, tps_fixed,
                tps_fixed / tps_buggy);
    if (threads == 1) {
      buggy1 = tps_buggy;
      fixed1 = tps_fixed;
    }
    if (threads == 8) {
      buggy8 = tps_buggy;
      fixed8 = tps_fixed;
    }
  }
  print_rule('-', 56);
  std::printf("\nspeedup from 1 -> 8 threads: buggy %.2fx, fixed %.2fx\n",
              buggy8 / buggy1, fixed8 / fixed1);
  std::printf("The fixed build scales; the buggy build's per-line "
              "ping-pong eats the added cores\n(the paper's MySQL story).\n");
  return 0;
}
