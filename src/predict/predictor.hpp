// The prediction engine: step 3 (candidate search, Section 3.3) and the
// setup of step 4 (virtual-line verification, Section 3.4) of the paper's
// workflow. Attach one Predictor to a Runtime; the runtime invokes it once
// per line whose write count crosses PredictionThreshold, and the predictor
// responds by nominating virtual lines that the runtime then tracks.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_set>

#include "common/cacheline.hpp"
#include "common/spinlock.hpp"
#include "predict/hot_access.hpp"
#include "runtime/runtime.hpp"

namespace pred {

struct PredictorConfig {
  bool predict_double_line = true;  ///< Figure 3(b): 2x hardware line size
  bool predict_shifted = true;      ///< Figure 3(c): different placement

  /// Section 3.4: "all cache lines related to the same object must be
  /// adjusted at the same time" — when a shifted virtual line is nominated
  /// for a hot pair inside a *registered object*, the same shift is applied
  /// across the object's other tracked lines, so verification sees the
  /// whole object under the hypothetical placement rather than one isolated
  /// window.
  bool adjust_whole_object = true;
  /// Cap on the additional per-object virtual lines (keeps pathological
  /// objects bounded).
  std::size_t max_object_lines = 64;
};

class Predictor {
 public:
  explicit Predictor(PredictorConfig config = {}) : config_(config) {}

  /// Installs this predictor as the runtime's prediction hook. The predictor
  /// must outlive the runtime's use of the hook.
  void attach(Runtime& rt);

  /// Analyzes line `line_index` of `region` for latent false sharing and
  /// registers virtual-line trackers for accepted candidates. Public so
  /// tests can drive it directly.
  void analyze_line(Runtime& rt, ShadowSpace& region, std::size_t line_index);

  std::uint64_t candidates_nominated() const {
    return candidates_.load(std::memory_order_relaxed);
  }

 private:
  void nominate(Runtime& rt, ShadowSpace& region, std::size_t origin_line,
                Address start, std::size_t size, VirtualLineTracker::Kind kind,
                const HotPair& pair);

  /// Applies a shifted placement across every tracked line of the object
  /// containing the hot pair (Section 3.4's whole-object adjustment).
  void adjust_object_lines(Runtime& rt, ShadowSpace& region,
                           std::size_t origin_line, Address shift_start,
                           const HotPair& pair);

  PredictorConfig config_;
  Spinlock lock_;
  std::unordered_set<std::uint64_t> nominated_;  ///< dedup key: start^size
  std::atomic<std::uint64_t> candidates_{0};
};

}  // namespace pred
