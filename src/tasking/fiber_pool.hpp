// Cooperative fiber pool: a user-level threading library with no pthreads
// underneath. Exists to demonstrate the paper's Section 6 claim that
// PREDATOR's architecture works "across the software stack ... applications
// using different threading libraries": detection only needs logical thread
// identities and an access stream, so fibers multiplexed on one OS thread
// are detected exactly like kernel threads.
//
// Implementation: ucontext_t coroutines, round-robin scheduled, explicit
// yield(). Single OS thread; no locking needed.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace pred {

class FiberPool {
 public:
  explicit FiberPool(std::size_t stack_size = 256 * 1024);
  ~FiberPool();

  FiberPool(const FiberPool&) = delete;
  FiberPool& operator=(const FiberPool&) = delete;

  /// Queues a fiber. Must be called before run().
  void spawn(std::function<void()> body);

  /// Runs all fibers round-robin until every one has finished. Fibers call
  /// FiberPool::yield() to hand the processor to the next fiber.
  void run();

  /// Runs all fibers with a seeded pseudo-random scheduler: at every step a
  /// xorshift64 stream picks which unfinished fiber resumes next. The same
  /// seed always produces the same schedule — this is what makes 256-"core"
  /// big-machine interleavings reproducible on one OS thread, and the
  /// property tests replay many seeds to prove interleaving-independence of
  /// the simulator's conservation invariants.
  void run_seeded(std::uint64_t seed);

  /// The exact resume order of the last run()/run_seeded() (one entry per
  /// fiber resume). Regression tests pin this to freeze the RNG stream.
  const std::vector<std::size_t>& schedule() const { return schedule_; }

  /// Yields from inside a fiber back to the scheduler. No-op if called
  /// outside a running pool.
  static void yield();

  /// Index of the currently running fiber, or SIZE_MAX outside a fiber.
  /// Usable as a logical ThreadId for instrumentation.
  static std::size_t current_fiber();

  std::size_t fiber_count() const { return fibers_.size(); }

 private:
  struct Fiber {
    ucontext_t context{};
    std::vector<char> stack;
    std::function<void()> body;
    bool finished = false;
  };

  static void trampoline();

  void switch_to(std::size_t index);
  void prepare_contexts();

  std::size_t stack_size_;
  std::vector<std::unique_ptr<Fiber>> fibers_;
  std::vector<std::size_t> schedule_;
  ucontext_t scheduler_context_{};
  std::size_t running_ = static_cast<std::size_t>(-1);
};

}  // namespace pred
