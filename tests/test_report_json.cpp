// Tests for the JSON writer and the report exporter: structural
// correctness, escaping, and end-to-end schema content from a real
// detection run.
#include <gtest/gtest.h>

#include "report_io/report_json.hpp"
#include "report_io/json_writer.hpp"
#include "workloads/workload.hpp"

namespace pred {
namespace {

TEST(JsonWriter, EmptyObjectAndArray) {
  {
    JsonWriter w;
    w.begin_object().end_object();
    EXPECT_EQ(w.str(), "{}");
    EXPECT_TRUE(w.complete());
  }
  {
    JsonWriter w;
    w.begin_array().end_array();
    EXPECT_EQ(w.str(), "[]");
  }
}

TEST(JsonWriter, FieldsAndCommas) {
  JsonWriter w;
  w.begin_object();
  w.field("a", std::uint64_t{1});
  w.field("b", "two");
  w.field("c", true);
  w.key("d").null_value();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":"two","c":true,"d":null})");
}

TEST(JsonWriter, NestedContainers) {
  JsonWriter w;
  w.begin_object();
  w.key("list").begin_array();
  w.value(std::uint64_t{1});
  w.begin_object().field("x", std::uint64_t{2}).end_object();
  w.value(std::uint64_t{3});
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"list":[1,{"x":2},3]})");
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonWriter::escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriter, NegativeAndFloatingValues) {
  JsonWriter w;
  w.begin_array();
  w.value(std::int64_t{-5});
  w.value(2.5);
  w.end_array();
  EXPECT_EQ(w.str(), "[-5,2.5]");
}

// --- end-to-end export ------------------------------------------------------

std::string detect_and_export(const char* workload, bool with_advice) {
  SessionOptions opts;
  opts.heap_size = 32 * 1024 * 1024;
  Session session(opts);
  const wl::Workload* w = wl::find_workload(workload);
  EXPECT_NE(w, nullptr);
  wl::Params p;
  p.threads = 8;
  w->run_replay(session, p);
  const Report rep = session.report();
  if (with_advice) {
    const auto fixes = advise(rep);
    return report_to_json(rep, session.runtime().callsites(), &fixes);
  }
  return report_to_json(rep, session.runtime().callsites());
}

TEST(ReportJson, ContainsSchemaFields) {
  const std::string json = detect_and_export("histogram", false);
  EXPECT_NE(json.find("\"total_invalidations\":"), std::string::npos);
  EXPECT_NE(json.find("\"findings\":["), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"FALSE SHARING\""), std::string::npos);
  EXPECT_NE(json.find("histogram-pthread.c:213"), std::string::npos);
  EXPECT_NE(json.find("\"words\":["), std::string::npos);
  EXPECT_EQ(json.find("\"suggestions\""), std::string::npos);
}

TEST(ReportJson, SuggestionsIncludedWhenRequested) {
  const std::string json = detect_and_export("histogram", true);
  EXPECT_NE(json.find("\"suggestions\":["), std::string::npos);
  EXPECT_NE(json.find("pad per-thread slots"), std::string::npos);
}

TEST(ReportJson, PredictedFindingsCarryVirtualLines) {
  const std::string json = detect_and_export("linear_regression", false);
  EXPECT_NE(json.find("\"predicted\":true"), std::string::npos);
  EXPECT_NE(json.find("\"virtual_lines\":["), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"double_line\""), std::string::npos);
}

TEST(ReportJson, BalancedBracesAndQuotes) {
  for (const char* name : {"histogram", "linear_regression", "memcached"}) {
    const std::string json = detect_and_export(name, true);
    long depth = 0;
    bool in_string = false;
    bool escaped = false;
    for (const char c : json) {
      if (escaped) {
        escaped = false;
        continue;
      }
      if (in_string) {
        if (c == '\\') escaped = true;
        if (c == '"') in_string = false;
        continue;
      }
      if (c == '"') in_string = true;
      if (c == '{' || c == '[') ++depth;
      if (c == '}' || c == ']') --depth;
      ASSERT_GE(depth, 0) << name;
    }
    EXPECT_EQ(depth, 0) << name;
    EXPECT_FALSE(in_string) << name;
  }
}

TEST(ReportJson, EmptyReportIsValid) {
  Report empty;
  CallsiteTable callsites;
  const std::string json = report_to_json(empty, callsites);
  EXPECT_EQ(json, R"({"total_invalidations":0,"finding_count":0,)"
                  R"("findings":[]})");
}

}  // namespace
}  // namespace pred
