// Tests for the interprocedural analysis layer: the call graph (SCC
// condensation), exact callee access summaries, call batching through
// "$bare" clones, and the thread-escape analysis — proven by
//
//   * a differential fuzz suite: modules pruned with summaries produce
//     BIT-IDENTICAL detector reports to selectively-instrumented ones over
//     100+ generator seeds, including recursive call graphs and calls
//     inside loops;
//   * an execution oracle: a shadow records every (address, thread) pair
//     actually touched, and no address ever accessed by two threads may
//     have had a delivery dropped as "provably thread-private";
//   * summary-exactness checks that fail if a summary over- or
//     under-counts a callee's per-invocation deliveries by even one; and
//   * negative regressions: summarization bails to ⊤ on data-dependent
//     addressing, instrumented intrinsics, and recursion, and call
//     batching never fires across a ⊤ callee or a varying pointer.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "alloc/heap_region.hpp"
#include "alloc/ownership_map.hpp"
#include "alloc/thread_heap.hpp"
#include "instrument/analysis/callgraph.hpp"
#include "instrument/analysis/escape.hpp"
#include "instrument/analysis/generator.hpp"
#include "instrument/analysis/summaries.hpp"
#include "instrument/interp.hpp"
#include "instrument/ir.hpp"
#include "instrument/ir_parser.hpp"
#include "instrument/pass.hpp"
#include "report_io/report_json.hpp"

namespace pred::ir {
namespace {

// ---------------------------------------------------------------------------
// Shared builders
// ---------------------------------------------------------------------------

/// Straight-line summarizable leaf: store [a0], store [a0+8], load [a0+8].
/// Exactly three deliveries per invocation.
Function make_leaf() {
  FunctionBuilder b("leaf", 2);
  b.store(b.arg(0), b.const_val(1), 0);
  b.store(b.arg(0), b.const_val(2), 8);
  (void)b.load(b.arg(0), 8);
  b.ret(b.const_val(0));
  return b.take();
}

/// Constant-bound loop leaf: for i in 0..3, store [a0 + 16] and load
/// [a0 + 8*i] — summarizable only by unrolling the constant-decided path.
Function make_const_loop_leaf() {
  FunctionBuilder b("quad", 2);
  const Reg i = b.fresh_reg();
  b.move(i, b.const_val(0));
  const Reg k = b.const_val(4);
  const std::uint32_t header = b.new_block();
  const std::uint32_t body = b.new_block();
  const std::uint32_t exit = b.new_block();
  b.br(header);
  b.set_block(header);
  b.cond_br(b.cmp_lt(i, k), body, exit);
  b.set_block(body);
  b.store(b.arg(0), i, 16);
  const Reg scaled = b.mul(i, b.const_val(8));
  (void)b.load(b.add(b.arg(0), scaled), 0);
  b.move(i, b.add(i, b.const_val(1)));
  b.br(header);
  b.set_block(exit);
  b.ret(i);
  return b.take();
}

/// Data-dependent leaf: the store address hinges on n — ⊤ by design.
Function make_data_dep_leaf() {
  FunctionBuilder b("datadep", 2);
  const Reg m = b.rem(b.arg(1), b.const_val(4));
  const Reg scaled = b.mul(m, b.const_val(8));
  b.store(b.add(b.arg(0), scaled), b.const_val(9), 0);
  b.ret(b.const_val(0));
  return b.take();
}

/// Self-recursive leaf: depth folded through n % 7 — ⊤ by cycle membership.
Function make_recursive_leaf(std::uint32_t self) {
  FunctionBuilder b("spin", 2);
  const Reg k = b.rem(b.arg(1), b.const_val(7));
  b.store(b.arg(0), k, 0);
  const std::uint32_t rec = b.new_block();
  const std::uint32_t done = b.new_block();
  b.cond_br(b.cmp_lt(k, b.const_val(1)), done, rec);
  b.set_block(rec);
  const Reg a0 = b.fresh_reg();
  const Reg a1 = b.fresh_reg();
  b.move(a0, b.arg(0));
  b.move(a1, b.sub(k, b.const_val(1)));
  b.call(self, a0, 2);
  b.ret(b.const_val(0));
  b.set_block(done);
  b.ret(b.const_val(0));
  return b.take();
}

/// Intrinsic leaf: an instrumented memset — ⊤ by definition.
Function make_intrinsic_leaf() {
  FunctionBuilder b("wiper", 2);
  b.mem_set(b.arg(0), b.const_val(32), 0);
  b.ret(b.const_val(0));
  return b.take();
}

/// main(buf, n): canonical counted loop whose body calls functions[0] once
/// per iteration. With `varying` false the callee receives (buf, 3) — the
/// exact shape call batching expands. With `varying` true it receives
/// (buf + i*8, 3), so the per-iteration access set moves and batching must
/// refuse.
Function make_call_loop_main(bool varying) {
  FunctionBuilder b("main", 2);
  const Reg i = b.fresh_reg();
  b.move(i, b.const_val(0));
  const std::uint32_t header = b.new_block();
  const std::uint32_t body = b.new_block();
  const std::uint32_t exit = b.new_block();
  b.br(header);
  b.set_block(header);
  b.cond_br(b.cmp_lt(i, b.arg(1)), body, exit);
  b.set_block(body);
  const Reg a0 = b.fresh_reg();
  const Reg a1 = b.fresh_reg();
  if (varying) {
    const Reg scaled = b.mul(i, b.const_val(8));
    b.move(a0, b.add(b.arg(0), scaled));
  } else {
    b.move(a0, b.arg(0));
  }
  b.move(a1, b.const_val(3));
  b.call(0, a0, 2);
  b.move(i, b.add(i, b.const_val(1)));
  b.br(header);
  b.set_block(exit);
  b.ret(i);
  return b.take();
}

Module make_call_loop_module(Function callee, bool varying) {
  Module m;
  m.functions.push_back(std::move(callee));
  m.functions.push_back(make_call_loop_main(varying));
  EXPECT_EQ(verify(m), "");
  return m;
}

/// wrap(buf, n) calls leaf(buf + 24, 1) twice.
Function make_wrap() {
  FunctionBuilder b("wrap", 2);
  const Reg a0 = b.fresh_reg();
  const Reg a1 = b.fresh_reg();
  b.move(a0, b.add(b.arg(0), b.const_val(24)));
  b.move(a1, b.const_val(1));
  b.call(0, a0, 2);
  b.call(0, a0, 2);
  b.ret(b.const_val(0));
  return b.take();
}

PassOptions interproc_all() {
  PassOptions opt;
  opt.loop_batching = true;
  opt.dominance_elim = true;
  opt.interprocedural = true;
  return opt;
}

// ---------------------------------------------------------------------------
// Detector harness (same deterministic configuration as test_analysis.cpp)
// ---------------------------------------------------------------------------

struct RunTotals {
  std::uint64_t calls = 0;
  std::uint64_t delivered = 0;
};

alignas(64) std::int64_t g_buffer[1024];

/// Executes the first `num_fns` functions of `m` (the originals — "$bare"
/// clones run only when called) from two alternating logical threads
/// against g_buffer under a fully deterministic runtime and returns the
/// detector report as JSON. `sync_suppression` toggles the runtime's
/// epoch/ownership fast path (on by default, as in production).
std::string run_module_report(const Module& m, std::size_t num_fns,
                              std::int64_t n, RunTotals* totals,
                              bool sync_suppression = true) {
  SessionOptions opts;
  opts.runtime.tracking_threshold = 1;
  opts.runtime.report_invalidation_threshold = 1;
  opts.runtime.prediction_enabled = false;
  opts.runtime.sync_suppression = sync_suppression;
  opts.runtime.set_sampling_rate(1.0);
  opts.heap_size = 4 * 1024 * 1024;
  Session session(opts);
  std::memset(g_buffer, 0, sizeof g_buffer);
  session.register_global(g_buffer, sizeof g_buffer, "gen_buffer");
  // Pre-escalate every line (threshold 1: one write creates the tracker) so
  // no later delivery can straddle the tracking boundary.
  for (std::size_t w = 0; w < 1024; w += 8) {
    session.record(&g_buffer[w], AccessType::kWrite, 0, 8);
  }
  Interpreter interp(&session);
  const std::int64_t args[] = {
      static_cast<std::int64_t>(reinterpret_cast<std::intptr_t>(g_buffer)),
      n};
  for (int round = 0; round < 2; ++round) {
    for (ThreadId tid = 0; tid < 2; ++tid) {
      for (std::size_t f = 0; f < num_fns; ++f) {
        const auto res = interp.run(m, m.functions[f], args, tid);
        EXPECT_FALSE(res.step_limit_exceeded);
        totals->calls += res.runtime_calls;
        totals->delivered += res.accesses_delivered;
      }
    }
  }
  return report_to_json(session.report(), session.runtime().callsites());
}

// ---------------------------------------------------------------------------
// Call graph
// ---------------------------------------------------------------------------

TEST(CallGraph, EdgesSccsAndBottomUpOrder) {
  Module m;
  m.functions.push_back(make_leaf());             // @0
  {                                               // @1: calls @0 twice
    FunctionBuilder b("caller", 2);
    const Reg a0 = b.fresh_reg();
    const Reg a1 = b.fresh_reg();
    b.move(a0, b.arg(0));
    b.move(a1, b.arg(1));
    b.call(0, a0, 2);
    b.call(0, a0, 2);
    b.ret(b.const_val(0));
    m.functions.push_back(b.take());
  }
  m.functions.push_back(make_recursive_leaf(2));  // @2: self cycle
  {                                               // @3 <-> @4 mutual
    FunctionBuilder b("mut_a", 2);
    const Reg a0 = b.fresh_reg();
    const Reg a1 = b.fresh_reg();
    b.move(a0, b.arg(0));
    b.move(a1, b.arg(1));
    b.call(4, a0, 2);
    b.ret(b.const_val(0));
    m.functions.push_back(b.take());
  }
  {
    FunctionBuilder b("mut_b", 2);
    const Reg a0 = b.fresh_reg();
    const Reg a1 = b.fresh_reg();
    b.move(a0, b.arg(0));
    b.move(a1, b.arg(1));
    b.call(3, a0, 2);
    b.ret(b.const_val(0));
    m.functions.push_back(b.take());
  }
  {                                               // @5: calls @1 and @3
    FunctionBuilder b("top", 2);
    const Reg a0 = b.fresh_reg();
    const Reg a1 = b.fresh_reg();
    b.move(a0, b.arg(0));
    b.move(a1, b.arg(1));
    b.call(1, a0, 2);
    b.call(3, a0, 2);
    b.ret(b.const_val(0));
    m.functions.push_back(b.take());
  }
  ASSERT_EQ(verify(m), "");

  const CallGraph cg(m);
  EXPECT_EQ(cg.num_functions(), 6u);
  EXPECT_EQ(cg.num_call_sites(), 7u);  // duplicates counted
  EXPECT_EQ(cg.callees(1), (std::vector<std::uint32_t>{0}));  // deduplicated
  EXPECT_EQ(cg.callees(5), (std::vector<std::uint32_t>{1, 3}));

  EXPECT_FALSE(cg.in_cycle(0));
  EXPECT_FALSE(cg.in_cycle(1));
  EXPECT_TRUE(cg.in_cycle(2));  // self-recursion
  EXPECT_TRUE(cg.in_cycle(3));  // mutual recursion
  EXPECT_TRUE(cg.in_cycle(4));
  EXPECT_FALSE(cg.in_cycle(5));

  // The mutual pair shares one SCC; everyone else is a singleton.
  EXPECT_EQ(cg.scc_of(3), cg.scc_of(4));
  EXPECT_EQ(cg.num_sccs(), 5u);

  // Callees precede callers for every cross-SCC edge, both in SCC ids and
  // in the bottom-up order.
  std::vector<std::size_t> pos(cg.num_functions());
  for (std::size_t i = 0; i < cg.bottom_up().size(); ++i) {
    pos[cg.bottom_up()[i]] = i;
  }
  for (std::uint32_t f = 0; f < cg.num_functions(); ++f) {
    for (const std::uint32_t callee : cg.callees(f)) {
      if (cg.scc_of(callee) == cg.scc_of(f)) continue;
      EXPECT_LT(cg.scc_of(callee), cg.scc_of(f)) << f << " -> " << callee;
      EXPECT_LT(pos[callee], pos[f]) << f << " -> " << callee;
    }
  }
}

// ---------------------------------------------------------------------------
// Summary exactness: counts reconcile with what the interpreter delivers.
// Each test fails if a summary over- or under-counts by even one access.
// ---------------------------------------------------------------------------

/// Instruments `m` selectively, summarizes it, and checks function `f`'s
/// summary total against a real single-invocation run: the interpreter's
/// conservation counter is the ground truth the summary must hit exactly.
void expect_summary_matches_delivery(Module m, std::uint32_t f,
                                     std::int64_t n) {
  const PassStats stats = run_instrumentation_pass(m, {});
  ASSERT_TRUE(stats.reconciles());
  const CallGraph cg(m);
  const SummaryTable table = summarize_module(m, cg);
  const AccessSummary& s = table.per_function[f];
  ASSERT_TRUE(s.exact) << m.functions[f].name;

  SessionOptions opts;
  opts.runtime.tracking_threshold = 1;
  opts.runtime.prediction_enabled = false;
  opts.runtime.set_sampling_rate(1.0);
  opts.heap_size = 4 * 1024 * 1024;
  Session session(opts);
  std::memset(g_buffer, 0, sizeof g_buffer);
  session.register_global(g_buffer, sizeof g_buffer, "gen_buffer");
  Interpreter interp(&session);
  const std::int64_t args[] = {
      static_cast<std::int64_t>(reinterpret_cast<std::intptr_t>(g_buffer)),
      n};
  const auto res = interp.run(m, m.functions[f], args, 0);
  ASSERT_FALSE(res.step_limit_exceeded);
  // Off-by-one in either direction breaks this equality.
  EXPECT_EQ(s.total_accesses(), res.accesses_delivered)
      << m.functions[f].name << " n=" << n;
}

TEST(Summaries, StraightLineLeafIsExact) {
  Module m;
  m.functions.push_back(make_leaf());
  run_instrumentation_pass(m, {});
  const CallGraph cg(m);
  const SummaryTable table = summarize_module(m, cg);
  const AccessSummary& s = table.per_function[0];
  ASSERT_TRUE(s.exact);
  ASSERT_EQ(s.entries.size(), 3u);
  for (const auto& e : s.entries) {
    EXPECT_EQ(e.arg, 0u);
    EXPECT_EQ(e.width, 8u);
    EXPECT_EQ(e.count, 1u);
  }
  EXPECT_EQ(s.total_accesses(), 3u);

  Module again;
  again.functions.push_back(make_leaf());
  expect_summary_matches_delivery(std::move(again), 0, 5);
}

TEST(Summaries, ConstLoopLeafUnrollsExactly) {
  Module m;
  m.functions.push_back(make_const_loop_leaf());
  run_instrumentation_pass(m, {});
  const CallGraph cg(m);
  const SummaryTable table = summarize_module(m, cg);
  const AccessSummary& s = table.per_function[0];
  ASSERT_TRUE(s.exact);
  // Four stores of [a0+16] coalesce into one entry of count 4; the four
  // loads of [a0 + 8*i] stay distinct (different offsets).
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  for (const auto& e : s.entries) {
    if (e.is_write) {
      EXPECT_EQ(e.offset, 16);
      writes += e.count;
    } else {
      reads += e.count;
    }
  }
  EXPECT_EQ(writes, 4u);
  EXPECT_EQ(reads, 4u);
  EXPECT_EQ(s.total_accesses(), 8u);

  Module again;
  again.functions.push_back(make_const_loop_leaf());
  expect_summary_matches_delivery(std::move(again), 0, 11);
}

TEST(Summaries, CallerRebasesCalleeEntriesThroughArgumentOffsets) {
  // wrap calls leaf(buf + 24, 1) twice: wrap's summary must carry leaf's
  // entries at offset + 24 with count 2.
  Module m;
  m.functions.push_back(make_leaf());
  m.functions.push_back(make_wrap());
  ASSERT_EQ(verify(m), "");
  run_instrumentation_pass(m, {});
  const CallGraph cg(m);
  const SummaryTable table = summarize_module(m, cg);
  const AccessSummary& s = table.per_function[1];
  ASSERT_TRUE(s.exact);
  ASSERT_EQ(s.entries.size(), 3u);
  for (const auto& e : s.entries) {
    EXPECT_EQ(e.arg, 0u);
    EXPECT_TRUE(e.offset == 24 || e.offset == 32) << e.offset;
    EXPECT_EQ(e.count, 2u);
  }
  EXPECT_EQ(s.total_accesses(), 6u);

  Module again;
  again.functions.push_back(make_leaf());
  again.functions.push_back(make_wrap());
  expect_summary_matches_delivery(std::move(again), 1, 3);
}

TEST(Summaries, RecursiveCalleesAreTop) {
  Module m;
  m.functions.push_back(make_recursive_leaf(0));
  run_instrumentation_pass(m, {});
  const CallGraph cg(m);
  EXPECT_TRUE(cg.in_cycle(0));
  const SummaryTable table = summarize_module(m, cg);
  EXPECT_FALSE(table.per_function[0].exact);
  EXPECT_EQ(table.num_exact(), 0u);
}

TEST(Summaries, PassLedgerCountsExactAndTopFunctions) {
  Module m = make_call_loop_module(make_leaf(), /*varying=*/false);
  m.functions.push_back(make_data_dep_leaf());
  SummaryTable table;
  const PassStats stats = run_instrumentation_pass(m, interproc_all(), &table);
  EXPECT_TRUE(stats.reconciles());
  // leaf is exact; main branches on its argument (⊤); datadep is ⊤.
  EXPECT_EQ(stats.callee_summaries, 1u);
  EXPECT_EQ(stats.summary_top, 2u);
  EXPECT_TRUE(table.per_function[0].exact);
  EXPECT_FALSE(table.per_function[2].exact);
}

// ---------------------------------------------------------------------------
// Call batching through summaries: structure
// ---------------------------------------------------------------------------

TEST(Pass, CallBatchingExpandsThroughSummarizableCallee) {
  Module m = make_call_loop_module(make_leaf(), /*varying=*/false);
  PassOptions opt;
  opt.loop_batching = true;
  opt.interprocedural = true;
  const PassStats stats = run_instrumentation_pass(m, opt);
  EXPECT_TRUE(stats.reconciles());
  EXPECT_EQ(stats.call_batched, 1u);
  EXPECT_EQ(stats.bare_clones, 1u);
  ASSERT_EQ(m.functions.size(), 3u);
  EXPECT_EQ(m.functions[2].name, "leaf$bare");
  EXPECT_EQ(verify(m), "");

  // The clone delivers nothing...
  for (const BasicBlock& bb : m.functions[2].blocks) {
    for (const Instr& in : bb.instrs) EXPECT_FALSE(in.instrumented);
  }
  // ...the loop's call now targets it...
  bool retargeted = false;
  for (const BasicBlock& bb : m.functions[1].blocks) {
    for (const Instr& in : bb.instrs) {
      if (in.op == Opcode::kCall) {
        EXPECT_EQ(in.imm, 2);
        retargeted = true;
      }
    }
  }
  EXPECT_TRUE(retargeted);
  // ...and the preheader reports leaf's whole per-invocation access set.
  std::uint64_t reports = 0;
  for (const Instr& in : m.functions[1].blocks[0].instrs) {
    if (in.op == Opcode::kReport) ++reports;
  }
  EXPECT_EQ(reports, 3u);
  EXPECT_EQ(stats.reports_inserted, 3u);
}

TEST(Pass, InterproceduralLayerIsOffByDefault) {
  Module m = make_call_loop_module(make_leaf(), /*varying=*/false);
  const PassStats stats = run_instrumentation_pass(m, {});
  EXPECT_EQ(stats.call_batched, 0u);
  EXPECT_EQ(stats.bare_clones, 0u);
  EXPECT_EQ(stats.callee_summaries, 0u);
  EXPECT_EQ(stats.summary_top, 0u);
  EXPECT_EQ(m.functions.size(), 2u);
}

/// Batched-through-call modules deliver bit-identical reports, including
/// the n = 0 edge where the loop never runs and the planted trip-count
/// reports must deliver nothing.
TEST(Pass, CallBatchingPreservesReportsIncludingZeroTrips) {
  for (Function (*leaf)() : {&make_leaf, &make_const_loop_leaf}) {
    const Module generated = make_call_loop_module(leaf(), /*varying=*/false);
    for (const std::int64_t n : {0, 1, 2, 7}) {
      Module base = generated;
      Module pruned = generated;
      run_instrumentation_pass(base, {});
      const PassStats stats = run_instrumentation_pass(pruned, interproc_all());
      EXPECT_TRUE(stats.reconciles());
      EXPECT_EQ(stats.call_batched, 1u);
      RunTotals bt;
      RunTotals pt;
      const std::string bj =
          run_module_report(base, base.functions.size(), n, &bt);
      const std::string pj =
          run_module_report(pruned, generated.functions.size(), n, &pt);
      EXPECT_EQ(bt.delivered, pt.delivered) << "n=" << n;
      EXPECT_LE(pt.calls, bt.calls) << "n=" << n;
      EXPECT_EQ(bj, pj) << "n=" << n;
    }
  }
}

// ---------------------------------------------------------------------------
// Negative regressions: where the machinery must keep its hands off
// ---------------------------------------------------------------------------

TEST(NegativeRegression, SummarizationBailsToTopOnDataDependentAddressing) {
  Module m;
  m.functions.push_back(make_data_dep_leaf());
  run_instrumentation_pass(m, {});
  const CallGraph cg(m);
  EXPECT_FALSE(summarize_module(m, cg).per_function[0].exact);
}

TEST(NegativeRegression, SummarizationBailsToTopOnInstrumentedIntrinsic) {
  Module m;
  m.functions.push_back(make_intrinsic_leaf());
  run_instrumentation_pass(m, {});
  const CallGraph cg(m);
  EXPECT_FALSE(summarize_module(m, cg).per_function[0].exact);
  // The same callee with instrumentation stripped delivers nothing and is
  // exactly summarizable as empty — ⊤ came from the instrumented intrinsic,
  // not the opcode.
  Module bare;
  bare.functions.push_back(make_intrinsic_leaf());
  const CallGraph cg2(bare);
  const SummaryTable t2 = summarize_module(bare, cg2);
  EXPECT_TRUE(t2.per_function[0].exact);
  EXPECT_EQ(t2.per_function[0].total_accesses(), 0u);
}

/// If the pass ignored summary exactness it would plant reports for a
/// data-dependent callee and break the delivered count — batching across a
/// ⊤ callee must never fire.
TEST(NegativeRegression, CallBatchingNeverFiresAcrossTopCallee) {
  std::vector<Module> modules;
  modules.push_back(make_call_loop_module(make_data_dep_leaf(), false));
  modules.push_back(make_call_loop_module(make_recursive_leaf(0), false));
  modules.push_back(make_call_loop_module(make_intrinsic_leaf(), false));
  for (const Module& generated : modules) {
    Module pruned = generated;
    const PassStats stats = run_instrumentation_pass(pruned, interproc_all());
    EXPECT_TRUE(stats.reconciles());
    EXPECT_EQ(stats.call_batched, 0u) << generated.functions[0].name;
    EXPECT_EQ(stats.bare_clones, 0u);
    for (const Function& fn : pruned.functions) {
      EXPECT_EQ(fn.name.find("$bare"), std::string::npos) << fn.name;
    }

    Module base = generated;
    run_instrumentation_pass(base, {});
    RunTotals bt;
    RunTotals pt;
    const std::string bj =
        run_module_report(base, base.functions.size(), 7, &bt);
    const std::string pj =
        run_module_report(pruned, generated.functions.size(), 7, &pt);
    EXPECT_EQ(bt.delivered, pt.delivered) << generated.functions[0].name;
    EXPECT_EQ(bj, pj) << generated.functions[0].name;
  }
}

/// A pointer that moves with the induction variable reaches a different
/// address set each iteration — batching through the (exactly summarized!)
/// callee would deliver every iteration's accesses at iteration 0's
/// address. The invariance predicate must reject it.
TEST(NegativeRegression, CallBatchingRejectsInductionVaryingPointer) {
  const Module generated = make_call_loop_module(make_leaf(), /*varying=*/true);
  Module pruned = generated;
  const PassStats stats = run_instrumentation_pass(pruned, interproc_all());
  EXPECT_TRUE(stats.reconciles());
  EXPECT_EQ(stats.call_batched, 0u);
  EXPECT_EQ(stats.bare_clones, 0u);

  Module base = generated;
  run_instrumentation_pass(base, {});
  RunTotals bt;
  RunTotals pt;
  const std::string bj = run_module_report(base, base.functions.size(), 9, &bt);
  const std::string pj =
      run_module_report(pruned, generated.functions.size(), 9, &pt);
  EXPECT_EQ(bt.delivered, pt.delivered);
  EXPECT_EQ(bj, pj);
}

/// Escape skipping requires the argument register to be stable: after a
/// reassignment, "entry register 0" no longer means the bound buffer.
TEST(NegativeRegression, EscapeRequiresStableArgumentRegister) {
  Module m;
  {
    FunctionBuilder b("shifty", 2);
    const Reg moved = b.add(b.arg(0), b.const_val(8));
    b.move(b.arg(0), moved);  // r0 is no longer the argument
    (void)b.load(b.arg(0), 0);
    b.ret(b.const_val(0));
    m.functions.push_back(b.take());
  }
  ASSERT_EQ(verify(m), "");

  alignas(64) static std::int64_t priv[64];
  OwnershipMap omap;
  omap.record_span(reinterpret_cast<Address>(priv), sizeof priv, 0);
  EscapeBindings eb;
  eb.declare_root("shifty");
  EXPECT_TRUE(eb.bind(omap, "shifty", 0, reinterpret_cast<Address>(priv), 0));

  PassOptions opt;
  opt.escape = &eb;
  const PassStats stats = run_instrumentation_pass(m, opt);
  EXPECT_TRUE(stats.reconciles());
  EXPECT_EQ(stats.escape_skipped, 0u);
  EXPECT_EQ(stats.instrumented_accesses, 1u);
}

TEST(NegativeRegression, BindFromWrongThreadPoisonsForever) {
  alignas(64) static std::int64_t priv[64];
  OwnershipMap omap;
  omap.record_span(reinterpret_cast<Address>(priv), sizeof priv, 0);
  EscapeBindings eb;
  eb.declare_root("f");
  eb.declare_root("g");
  // Owner mismatch: the span belongs to thread 0, the binder claims 1.
  EXPECT_FALSE(eb.bind(omap, "f", 0, reinterpret_cast<Address>(priv), 1));
  EXPECT_EQ(eb.bound_len("f", 0), 0u);
  // A later correct bind cannot resurrect the argument: the promise must
  // hold over ALL invocations.
  EXPECT_FALSE(eb.bind(omap, "f", 0, reinterpret_cast<Address>(priv), 0));
  EXPECT_EQ(eb.bound_len("f", 0), 0u);
  // An address outside every recorded span never binds.
  alignas(64) static std::int64_t other[8];
  EXPECT_FALSE(eb.bind(omap, "g", 0, reinterpret_cast<Address>(other), 0));
  EXPECT_EQ(eb.bound_len("g", 0), 0u);
}

// ---------------------------------------------------------------------------
// The differential fuzz suite: whole-program report equivalence
// ---------------------------------------------------------------------------

TEST(DifferentialFuzz, InterproceduralPruningKeepsReportsBitIdentical) {
  GeneratorOptions gopts;
  gopts.segments = 3;
  gopts.accesses_per_block = 2;
  std::uint64_t total_call_batched = 0;
  std::uint64_t total_clones = 0;
  std::uint64_t seeds_with_cycles = 0;
  std::uint64_t total_exact = 0;
  std::uint64_t total_top = 0;

  for (std::uint64_t seed = 1; seed <= 112; ++seed) {
    gopts.callees = 1 + static_cast<std::uint32_t>(seed % 4);
    const Module generated = generate_module(seed, gopts);
    {
      const CallGraph cg(generated);
      for (std::uint32_t f = 0; f < cg.num_functions(); ++f) {
        if (cg.in_cycle(f)) {
          ++seeds_with_cycles;
          break;
        }
      }
    }

    Module base = generated;
    Module pruned = generated;
    run_instrumentation_pass(base, {});
    const PassStats pstats = run_instrumentation_pass(pruned, interproc_all());
    ASSERT_TRUE(pstats.reconciles()) << "seed " << seed;
    total_call_batched += pstats.call_batched;
    total_clones += pstats.bare_clones;
    total_exact += pstats.callee_summaries;
    total_top += pstats.summary_top;

    const std::int64_t n = 3 + static_cast<std::int64_t>(seed % 13);
    RunTotals bt;
    RunTotals pt;
    const std::string bj =
        run_module_report(base, base.functions.size(), n, &bt);
    const std::string pj =
        run_module_report(pruned, generated.functions.size(), n, &pt);

    EXPECT_EQ(bt.delivered, pt.delivered) << "seed " << seed;
    EXPECT_LE(pt.calls, bt.calls) << "seed " << seed;
    EXPECT_EQ(bj, pj) << "seed " << seed;
  }

  // The sweep must actually exercise the machinery, or the property is
  // vacuous: many seeds batch through calls, many contain recursive SCCs,
  // and both summary outcomes occur.
  EXPECT_GE(total_call_batched, 10u);
  EXPECT_GE(total_clones, 10u);
  EXPECT_GE(seeds_with_cycles, 10u);
  EXPECT_GT(total_exact, 0u);
  EXPECT_GT(total_top, 0u);
}

// ---------------------------------------------------------------------------
// Sync-intrinsic fuzz: the sync-aware layer over the same corpus
// ---------------------------------------------------------------------------

std::uint64_t count_sync_ops(const Module& m) {
  std::uint64_t n = 0;
  for (const Function& fn : m.functions) {
    for (const BasicBlock& bb : fn.blocks) {
      for (const Instr& in : bb.instrs) {
        if (in.op == Opcode::kAcquire || in.op == Opcode::kRelease ||
            in.op == Opcode::kHandoff) {
          ++n;
        }
      }
    }
  }
  return n;
}

/// The generator's stability contract: with sync_segments = 0 the RNG
/// stream is untouched by the sync machinery, so sync-free modules are
/// deterministic and free of intrinsics — the 112-seed suite above keeps
/// meaning what it meant before the intrinsics existed. With it enabled,
/// every module gains sync structure.
TEST(SyncFuzz, SyncFreeGenerationIsDeterministicAndIntrinsicFree) {
  GeneratorOptions gopts;
  gopts.segments = 3;
  gopts.accesses_per_block = 2;
  GeneratorOptions synced = gopts;
  synced.sync_segments = 2;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    gopts.callees = synced.callees = 1 + static_cast<std::uint32_t>(seed % 4);
    const Module a = generate_module(seed, gopts);
    const Module b = generate_module(seed, gopts);
    EXPECT_EQ(to_string(a), to_string(b)) << "seed " << seed;
    EXPECT_EQ(count_sync_ops(a), 0u) << "seed " << seed;
    const Module s = generate_module(seed, synced);
    EXPECT_GT(count_sync_ops(s), 0u) << "seed " << seed;
    EXPECT_EQ(verify(s), "") << "seed " << seed;
  }
}

/// Collapses a report JSON to its invalidation content: the sorted multiset
/// of every "total_invalidations", "finding_count", and per-entry
/// "invalidations" counter. Word histograms and access totals are
/// deliberately excluded — suppressed and sync-pruned accesses skip them by
/// design (that IS the saved work) — so on synced streams only the
/// invalidation accounting is comparable across modes, and it must match
/// EXACTLY: the handoff claim stands in for every pruned first write.
std::string invalidation_signature(const std::string& json) {
  std::ostringstream sig;
  const auto grab = [&](const char* key) {
    std::vector<std::uint64_t> vals;
    const std::string needle = std::string("\"") + key + "\":";
    for (std::size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + 1)) {
      vals.push_back(
          std::strtoull(json.c_str() + pos + needle.size(), nullptr, 10));
    }
    std::sort(vals.begin(), vals.end());
    sig << key << '=';
    for (const std::uint64_t v : vals) sig << v << ',';
    sig << ';';
  };
  grab("total_invalidations");
  grab("finding_count");
  grab("invalidations");
  return sig.str();
}

/// The tentpole differential property for synced streams: modules with
/// acquire/release brackets and handoff runs, pruned with the sync-scoped
/// layer (stacked on the full interprocedural pipeline), lose NO
/// invalidations versus fully-instrumented ones — the runs are sequential
/// and deterministic, so the invalidation accounting must be exactly
/// equal, not merely bounded. Word histograms shrink by design: the static
/// layer drops exactly the deliveries the runtime fast path would have
/// suppressed (the handoff claim leaves each line's automaton in the
/// {owner, W} state, where the dropped accesses are provable no-ops).
TEST(SyncFuzz, SyncScopedPruningLosesNoInvalidations) {
  GeneratorOptions gopts;
  gopts.segments = 3;
  gopts.accesses_per_block = 2;
  gopts.sync_segments = 2;
  std::uint64_t total_sync_skipped = 0;
  std::uint64_t total_dropped = 0;
  std::uint64_t total_syncing_exact = 0;

  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    gopts.callees = 1 + static_cast<std::uint32_t>(seed % 4);
    const Module generated = generate_module(seed, gopts);
    {
      // The syncs bit must actually occur on exact summaries, or the
      // kCall held-range rule above is never exercised adversarially.
      const CallGraph cg(generated);
      const SummaryTable table = summarize_module(generated, cg);
      for (const AccessSummary& s : table.per_function) {
        if (s.exact && s.syncs) ++total_syncing_exact;
      }
    }

    Module base = generated;
    Module pruned = generated;
    run_instrumentation_pass(base, {});
    PassOptions popt = interproc_all();
    popt.sync_scoped = true;
    const PassStats pstats = run_instrumentation_pass(pruned, popt);
    ASSERT_TRUE(pstats.reconciles()) << "seed " << seed;
    total_sync_skipped += pstats.sync_scoped_skipped;

    const std::int64_t n = 3 + static_cast<std::int64_t>(seed % 13);
    RunTotals bt;
    RunTotals pt;
    const std::string bj =
        run_module_report(base, base.functions.size(), n, &bt);
    const std::string pj =
        run_module_report(pruned, generated.functions.size(), n, &pt);

    // Sync-scoped pruning genuinely drops deliveries (unlike batching,
    // which conserves them), so only <= holds — never more, and the
    // detector's invalidation accounting must not notice.
    EXPECT_LE(pt.delivered, bt.delivered) << "seed " << seed;
    total_dropped += bt.delivered - pt.delivered;
    EXPECT_EQ(invalidation_signature(bj), invalidation_signature(pj))
        << "seed " << seed;
  }

  EXPECT_GT(total_sync_skipped, 0u);   // the pruning pass actually fired
  EXPECT_GT(total_dropped, 0u);        // and removed live deliveries
  EXPECT_GT(total_syncing_exact, 0u);  // exact-but-syncing callees occurred
}

/// The runtime-level half of the same proof, split by the ISSUE contract:
/// on SYNC-FREE streams every thread's epoch stays zero, pack_sync refuses
/// to build an ownership word, and the knob must be completely invisible —
/// reports bit-identical byte for byte. On SYNCED streams the fast path
/// legitimately skips histogram work, so the requirement drops to
/// soundness: identical delivered streams and exactly equal invalidation
/// accounting. Sequential determinism makes both checks exact, not
/// statistical.
TEST(SyncFuzz, SuppressionKnobIsInvisibleWhereItMustBe) {
  GeneratorOptions gopts;
  gopts.segments = 3;
  gopts.accesses_per_block = 2;
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    gopts.callees = 1 + static_cast<std::uint32_t>(seed % 4);
    const std::int64_t n = 3 + static_cast<std::int64_t>(seed % 13);

    // Sync-free: bit-identical across modes (the epoch-0 policy end to
    // end — no sync event ever happened, so nothing may be suppressed).
    gopts.sync_segments = 0;
    Module plain = generate_module(seed, gopts);
    run_instrumentation_pass(plain, {});
    RunTotals pon;
    RunTotals poff;
    const std::string plain_on = run_module_report(
        plain, plain.functions.size(), n, &pon, /*sync_suppression=*/true);
    const std::string plain_off = run_module_report(
        plain, plain.functions.size(), n, &poff, /*sync_suppression=*/false);
    EXPECT_EQ(pon.delivered, poff.delivered) << "seed " << seed;
    EXPECT_EQ(plain_on, plain_off) << "seed " << seed;

    // Synced: same deliveries, zero lost invalidations.
    gopts.sync_segments = 2;
    Module synced = generate_module(seed, gopts);
    run_instrumentation_pass(synced, {});
    RunTotals son;
    RunTotals soff;
    const std::string synced_on = run_module_report(
        synced, synced.functions.size(), n, &son, /*sync_suppression=*/true);
    const std::string synced_off = run_module_report(
        synced, synced.functions.size(), n, &soff, /*sync_suppression=*/false);
    EXPECT_EQ(son.delivered, soff.delivered) << "seed " << seed;
    EXPECT_EQ(invalidation_signature(synced_on),
              invalidation_signature(synced_off))
        << "seed " << seed;
  }
}

/// Cross-call handoff evidence: a transferable root argument's verified
/// headroom propagates as a TRANSFER fact into its callees, where it seeds
/// the sync-scoped pass's held set at function entry — so a receiver whose
/// own body contains no kHandoff still gets its claimed accesses pruned.
/// caller(buf, n) hands off [buf, buf+32) and passes buf to recv, whose
/// four 8-byte accesses all land inside the claim.
TEST(SyncFuzz, TransferFactSeedsCrossCallHandoffPruning) {
  Module m;
  {
    FunctionBuilder b("caller", 2);
    b.handoff(b.arg(0), b.const_val(32), 0);
    const Reg a0 = b.fresh_reg();
    const Reg a1 = b.fresh_reg();
    b.move(a0, b.arg(0));
    b.move(a1, b.arg(1));
    b.call(1, a0, 2);
    b.ret(b.const_val(0));
    m.functions.push_back(b.take());
  }
  {
    FunctionBuilder b("recv", 2);
    b.store(b.arg(0), b.const_val(1), 0);
    b.store(b.arg(0), b.const_val(2), 8);
    (void)b.load(b.arg(0), 16);
    (void)b.load(b.arg(0), 24);
    b.ret(b.const_val(0));
    m.functions.push_back(b.take());
  }
  ASSERT_EQ(verify(m), "");

  // Harness promise, verified against the ownership map: caller's arg0 is
  // handoff-managed over a 32-byte span — binds from BOTH threads record
  // headroom instead of poisoning.
  OwnershipMap omap;
  omap.record_span(reinterpret_cast<Address>(g_buffer), 32, 0);
  EscapeBindings eb;
  eb.declare_root("caller");
  eb.mark_transferable("caller", 0);
  ASSERT_TRUE(
      eb.bind(omap, "caller", 0, reinterpret_cast<Address>(g_buffer), 0));
  ASSERT_TRUE(
      eb.bind(omap, "caller", 0, reinterpret_cast<Address>(g_buffer), 1));
  EXPECT_EQ(eb.transfer_len("caller", 0), 32u);
  EXPECT_EQ(eb.bound_len("caller", 0), 0u);  // never licenses escape skipping

  // Without the escape layer there is no transfer fact to seed recv's entry:
  // nothing in recv is inside a held range, so nothing prunes.
  Module plain = m;
  PassOptions sync_only = interproc_all();
  sync_only.sync_scoped = true;
  const PassStats s_plain = run_instrumentation_pass(plain, sync_only);
  ASSERT_TRUE(s_plain.reconciles());
  EXPECT_EQ(s_plain.sync_scoped_skipped, 0u);

  // With it, recv inherits transfer_len = 32 through the call site and all
  // four of its accesses fall to the entry-seeded claim.
  Module pruned = m;
  PassOptions opt = interproc_all();
  opt.sync_scoped = true;
  opt.escape = &eb;
  const PassStats s = run_instrumentation_pass(pruned, opt);
  ASSERT_TRUE(s.reconciles());
  EXPECT_EQ(s.sync_scoped_skipped, 4u);
  EXPECT_EQ(s.escape_skipped, 0u);

  // Soundness: running caller (the only harness-invoked function, honoring
  // the promise) from both threads, the pruned module drops exactly recv's
  // deliveries while the invalidation accounting stays exactly equal — the
  // runtime handoff claim stands in for every pruned access.
  Module base = m;
  run_instrumentation_pass(base, {});
  RunTotals bt;
  RunTotals pt;
  const std::string bj = run_module_report(base, 1, 5, &bt);
  const std::string pj = run_module_report(pruned, 1, 5, &pt);
  EXPECT_EQ(bt.delivered, pt.delivered + 16);  // 4 accesses x 2 tids x 2 rounds
  EXPECT_EQ(invalidation_signature(bj), invalidation_signature(pj));
}

// ---------------------------------------------------------------------------
// Escape soundness oracle
// ---------------------------------------------------------------------------

/// Delivered-access multiset key: (thread, address, width, is_write).
using DeliveryKey = std::tuple<ThreadId, Address, std::uint32_t, bool>;
using DeliveryMap = std::map<DeliveryKey, std::uint64_t>;

void observe_deliveries(Interpreter& interp, DeliveryMap* out) {
  interp.set_delivery_observer([out](Address a, std::uint32_t w, AccessType t,
                                     ThreadId tid, std::uint64_t count) {
    (*out)[DeliveryKey{tid, a, w, t == AccessType::kWrite}] += count;
  });
}

/// Byte-granular shadow of which threads touched which addresses.
void observe_touches(Interpreter& interp, std::map<Address, unsigned>* mask) {
  interp.set_touch_observer(
      [mask](Address a, std::uint32_t w, AccessType, ThreadId tid) {
        for (std::uint32_t i = 0; i < w; ++i) (*mask)[a + i] |= 1u << tid;
      });
}

/// The oracle: every delivery the escape-pruned module dropped (base
/// multiset minus pruned multiset) must land entirely on bytes only ever
/// touched by one thread. Accumulates the dropped access units into
/// `*dropped_out`.
void expect_drops_are_private(const DeliveryMap& base,
                              const DeliveryMap& pruned,
                              const std::map<Address, unsigned>& mask,
                              const std::string& label,
                              std::uint64_t* dropped_out) {
  for (const auto& [key, base_count] : base) {
    const auto it = pruned.find(key);
    const std::uint64_t pruned_count = it == pruned.end() ? 0 : it->second;
    EXPECT_GE(base_count, pruned_count) << label;  // pruning never adds
    if (base_count <= pruned_count) continue;
    *dropped_out += base_count - pruned_count;
    const auto& [tid, addr, width, is_write] = key;
    for (std::uint32_t i = 0; i < width; ++i) {
      const auto mit = mask.find(addr + i);
      if (mit == mask.end()) {
        ADD_FAILURE() << label << ": dropped delivery to untouched byte";
        continue;
      }
      const unsigned bits = mit->second;
      EXPECT_TRUE((bits & (bits - 1)) == 0)
          << label << ": byte " << std::hex << addr + i
          << " touched by thread mask " << bits
          << " yet a delivery to it was dropped as thread-private";
    }
  }
  // The pruned run must not deliver anything the base run didn't.
  for (const auto& [key, count] : pruned) {
    const auto it = base.find(key);
    const std::uint64_t base_count = it == base.end() ? 0 : it->second;
    EXPECT_LE(count, base_count) << label;
  }
}

/// Runs the first `num_fns` functions of `m` under the harness contract:
/// functions with a bound arg0 run on each thread's own private buffer;
/// unbound functions hammer the shared buffer from BOTH threads — the
/// adversarial case the propagation must survive (a bound callee also
/// reachable from an unbound caller loses its confinement).
void run_for_oracle(const Module& m, std::size_t num_fns,
                    const EscapeBindings& eb, Address b0, Address b1,
                    Address shared, std::int64_t n, DeliveryMap* deliveries,
                    std::map<Address, unsigned>* touches) {
  Interpreter interp;  // no session: observers are the entire ground truth
  observe_deliveries(interp, deliveries);
  observe_touches(interp, touches);
  for (std::size_t f = 0; f < num_fns; ++f) {
    const Function& fn = m.functions[f];
    const bool bound = eb.bound_len(fn.name, 0) > 0;
    const std::int64_t args0[] = {
        static_cast<std::int64_t>(bound ? b0 : shared), n};
    const std::int64_t args1[] = {
        static_cast<std::int64_t>(bound ? b1 : shared), n};
    EXPECT_FALSE(interp.run(m, fn, args0, 0).step_limit_exceeded);
    EXPECT_FALSE(interp.run(m, fn, args1, 1).step_limit_exceeded);
  }
}

TEST(EscapeOracle, NoSharedAddressIsEverClassifiedPrivate) {
  GeneratorOptions gopts;
  gopts.segments = 3;
  gopts.accesses_per_block = 2;
  std::uint64_t total_skipped = 0;
  std::uint64_t total_dropped = 0;

  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    gopts.callees = static_cast<std::uint32_t>(seed % 3);
    const Module generated = generate_module(seed, gopts);
    const std::int64_t n = 4 + static_cast<std::int64_t>(seed % 9);
    const std::size_t need =
        8 * (static_cast<std::size_t>(n) + gopts.max_offset_words +
             kCalleeSlackWords);

    // Real allocator plumbing: two per-thread heaps carve spans out of one
    // region and record ownership; each thread's private buffer is confined
    // to its own span by construction. The shared buffer ALSO lives in a
    // recorded span (thread 0's) — an analysis that trusted the ownership
    // map without the harness contract would misclassify it.
    HeapRegion region(8 * 1024 * 1024);
    OwnershipMap omap;
    ThreadHeap h0(region, 64, &omap, 0);
    ThreadHeap h1(region, 64, &omap, 1);
    const Address b0 = h0.allocate(need);
    const Address b1 = h1.allocate(need);
    const Address shared = h0.allocate(need);
    ASSERT_NE(b0, 0u);
    ASSERT_NE(b1, 0u);
    ASSERT_NE(shared, 0u);
    ASSERT_EQ(omap.owner_of(b0, need).value_or(kInvalidThread), 0u);
    ASSERT_EQ(omap.owner_of(b1, need).value_or(kInvalidThread), 1u);

    // The harness contract: even-indexed functions are promised to run on
    // the invoking thread's own buffer; odd-indexed ones make no promise
    // and will be run cross-thread on the shared buffer.
    EscapeBindings eb;
    for (std::size_t f = 0; f < generated.functions.size(); ++f) {
      const std::string& name = generated.functions[f].name;
      eb.declare_root(name);
      if (f % 2 == 0) {
        ASSERT_TRUE(eb.bind(omap, name, 0, b0, 0)) << "seed " << seed;
        ASSERT_TRUE(eb.bind(omap, name, 0, b1, 1)) << "seed " << seed;
      }
    }

    Module base = generated;
    Module pruned = generated;
    run_instrumentation_pass(base, {});
    std::vector<EscapeSkip> skip_log;
    PassOptions opt = interproc_all();
    opt.escape = &eb;
    opt.escape_log = &skip_log;
    const PassStats pstats = run_instrumentation_pass(pruned, opt);
    ASSERT_TRUE(pstats.reconciles()) << "seed " << seed;
    EXPECT_EQ(pstats.escape_skipped, skip_log.size());
    total_skipped += pstats.escape_skipped;

    DeliveryMap base_del;
    DeliveryMap pruned_del;
    std::map<Address, unsigned> touches;
    run_for_oracle(base, generated.functions.size(), eb, b0, b1, shared, n,
                   &base_del, &touches);
    run_for_oracle(pruned, generated.functions.size(), eb, b0, b1, shared, n,
                   &pruned_del, &touches);

    expect_drops_are_private(base_del, pruned_del, touches,
                             "seed " + std::to_string(seed), &total_dropped);
  }
  // The sweep must actually drop deliveries, or the soundness property is
  // vacuously true.
  EXPECT_GT(total_skipped, 0u);
  EXPECT_GT(total_dropped, 0u);
}

TEST(EscapeOracle, CorpusModulesStaySound) {
  const std::filesystem::path dir(PRED_EXAMPLES_IR_DIR);
  ASSERT_TRUE(std::filesystem::exists(dir)) << dir;
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".pir") continue;
    ++files;
    std::ifstream in(entry.path());
    std::stringstream ss;
    ss << in.rdbuf();
    const ParseResult parsed = parse_module(ss.str());
    ASSERT_TRUE(parsed.ok) << entry.path() << ": " << parsed.error;
    const Module& generated = parsed.module;

    HeapRegion region(8 * 1024 * 1024);
    OwnershipMap omap;
    ThreadHeap h0(region, 64, &omap, 0);
    ThreadHeap h1(region, 64, &omap, 1);
    const std::size_t kBuf = 8192;
    const Address b0 = h0.allocate(kBuf);
    const Address b1 = h1.allocate(kBuf);
    const Address b0b = h0.allocate(kBuf);  // second pointer arg, same owner
    const Address b1b = h1.allocate(kBuf);
    ASSERT_NE(b0, 0u);
    ASSERT_NE(b1b, 0u);

    // Corpus convention: arg0 is a buffer; three arguments mean
    // (dst, src, len), so arg1 is a buffer too; otherwise arg1 is a count.
    EscapeBindings eb;
    for (const Function& fn : generated.functions) {
      eb.declare_root(fn.name);
      if (fn.num_args >= 1) {
        ASSERT_TRUE(eb.bind(omap, fn.name, 0, b0, 0)) << fn.name;
        ASSERT_TRUE(eb.bind(omap, fn.name, 0, b1, 1)) << fn.name;
      }
      if (fn.num_args >= 3) {
        ASSERT_TRUE(eb.bind(omap, fn.name, 1, b0b, 0)) << fn.name;
        ASSERT_TRUE(eb.bind(omap, fn.name, 1, b1b, 1)) << fn.name;
      }
    }

    Module base = generated;
    Module pruned = generated;
    run_instrumentation_pass(base, {});
    std::vector<EscapeSkip> skip_log;
    PassOptions opt = interproc_all();
    opt.escape = &eb;
    opt.escape_log = &skip_log;
    const PassStats pstats = run_instrumentation_pass(pruned, opt);
    ASSERT_TRUE(pstats.reconciles()) << entry.path();
    EXPECT_EQ(pstats.escape_skipped, skip_log.size());

    auto make_args = [](const Function& fn, Address buf, Address buf2) {
      std::vector<std::int64_t> args;
      for (std::uint32_t a = 0; a < fn.num_args; ++a) {
        if (a == 0) {
          args.push_back(static_cast<std::int64_t>(buf));
        } else if (a == 1 && fn.num_args >= 3) {
          args.push_back(static_cast<std::int64_t>(buf2));
        } else {
          args.push_back(9);
        }
      }
      return args;
    };

    DeliveryMap base_del;
    DeliveryMap pruned_del;
    std::map<Address, unsigned> touches;
    for (const Module* mp : {&base, &pruned}) {
      DeliveryMap& del = mp == &base ? base_del : pruned_del;
      Interpreter interp;
      observe_deliveries(interp, &del);
      observe_touches(interp, &touches);
      for (std::size_t f = 0; f < generated.functions.size(); ++f) {
        const Function& fn = mp->functions[f];
        const auto a0 = make_args(fn, b0, b0b);
        const auto a1 = make_args(fn, b1, b1b);
        EXPECT_FALSE(interp.run(*mp, fn, a0, 0).step_limit_exceeded);
        EXPECT_FALSE(interp.run(*mp, fn, a1, 1).step_limit_exceeded);
      }
    }
    std::uint64_t dropped = 0;
    expect_drops_are_private(base_del, pruned_del, touches,
                             entry.path().string(), &dropped);
  }
  EXPECT_GE(files, 4u);  // hammer, stencil_chain, memtouch, callgraph_demo
}

// ---------------------------------------------------------------------------
// Escape skipping preserves detector reports
// ---------------------------------------------------------------------------

alignas(64) std::int64_t g_priv0[256];
alignas(64) std::int64_t g_priv1[256];
alignas(64) std::int64_t g_shared[256];

/// Bound functions run only on their owner's private buffer; unbound ones
/// hammer the shared buffer from both threads. Skipped-private accesses can
/// never contribute invalidations (their lines are single-thread by the
/// verified ownership contract), so the reports must stay bit-identical.
std::string run_escape_report(const Module& m, std::size_t num_fns,
                              const EscapeBindings& eb, std::int64_t n,
                              RunTotals* totals) {
  SessionOptions opts;
  opts.runtime.tracking_threshold = 1;
  opts.runtime.report_invalidation_threshold = 1;
  opts.runtime.prediction_enabled = false;
  opts.runtime.set_sampling_rate(1.0);
  opts.heap_size = 4 * 1024 * 1024;
  Session session(opts);
  std::memset(g_priv0, 0, sizeof g_priv0);
  std::memset(g_priv1, 0, sizeof g_priv1);
  std::memset(g_shared, 0, sizeof g_shared);
  session.register_global(g_priv0, sizeof g_priv0, "priv0");
  session.register_global(g_priv1, sizeof g_priv1, "priv1");
  session.register_global(g_shared, sizeof g_shared, "shared");
  // Pre-escalate with each buffer's actual writer so tracker creation
  // order and history seeds are identical across configurations.
  for (std::size_t w = 0; w < 256; w += 8) {
    session.record(&g_priv0[w], AccessType::kWrite, 0, 8);
    session.record(&g_priv1[w], AccessType::kWrite, 1, 8);
    session.record(&g_shared[w], AccessType::kWrite, 0, 8);
  }
  Interpreter interp(&session);
  for (int round = 0; round < 2; ++round) {
    for (std::size_t f = 0; f < num_fns; ++f) {
      const Function& fn = m.functions[f];
      const bool bound = eb.bound_len(fn.name, 0) > 0;
      const Address p0 = reinterpret_cast<Address>(g_priv0);
      const Address p1 = reinterpret_cast<Address>(g_priv1);
      const Address sh = reinterpret_cast<Address>(g_shared);
      const std::int64_t a0[] = {
          static_cast<std::int64_t>(bound ? p0 : sh), n};
      const std::int64_t a1[] = {
          static_cast<std::int64_t>(bound ? p1 : sh), n};
      const auto r0 = interp.run(m, fn, a0, 0);
      const auto r1 = interp.run(m, fn, a1, 1);
      EXPECT_FALSE(r0.step_limit_exceeded);
      EXPECT_FALSE(r1.step_limit_exceeded);
      totals->calls += r0.runtime_calls + r1.runtime_calls;
      totals->delivered += r0.accesses_delivered + r1.accesses_delivered;
    }
  }
  return report_to_json(session.report(), session.runtime().callsites());
}

TEST(EscapeOracle, SkippingPrivateAccessesKeepsReportsBitIdentical) {
  GeneratorOptions gopts;
  gopts.segments = 3;
  gopts.accesses_per_block = 2;
  std::uint64_t total_skipped = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    gopts.callees = static_cast<std::uint32_t>(seed % 3);
    const Module generated = generate_module(seed, gopts);

    OwnershipMap omap;
    omap.record_span(reinterpret_cast<Address>(g_priv0), sizeof g_priv0, 0);
    omap.record_span(reinterpret_cast<Address>(g_priv1), sizeof g_priv1, 1);
    EscapeBindings eb;
    for (std::size_t f = 0; f < generated.functions.size(); ++f) {
      const std::string& name = generated.functions[f].name;
      eb.declare_root(name);
      if (f % 2 == 0) {  // odd-indexed functions stay unbound: shared
        ASSERT_TRUE(
            eb.bind(omap, name, 0, reinterpret_cast<Address>(g_priv0), 0));
        ASSERT_TRUE(
            eb.bind(omap, name, 0, reinterpret_cast<Address>(g_priv1), 1));
      }
    }

    Module base = generated;
    Module pruned = generated;
    run_instrumentation_pass(base, {});
    PassOptions opt = interproc_all();
    opt.escape = &eb;
    const PassStats pstats = run_instrumentation_pass(pruned, opt);
    ASSERT_TRUE(pstats.reconciles()) << "seed " << seed;
    total_skipped += pstats.escape_skipped;

    const std::int64_t n = 5 + static_cast<std::int64_t>(seed % 7);
    RunTotals bt;
    RunTotals pt;
    const std::string bj =
        run_escape_report(base, base.functions.size(), eb, n, &bt);
    const std::string pj =
        run_escape_report(pruned, generated.functions.size(), eb, n, &pt);
    EXPECT_GE(bt.delivered, pt.delivered) << "seed " << seed;
    EXPECT_EQ(bj, pj) << "seed " << seed;
  }
  EXPECT_GT(total_skipped, 0u);  // the sweep must actually skip accesses
}

// ---------------------------------------------------------------------------
// Concurrency: interprocedurally pruned modules under a shared session
// (exercised under ThreadSanitizer in CI)
// ---------------------------------------------------------------------------

TEST(Interprocedural, ConcurrentThreadsShareOneSession) {
  GeneratorOptions gopts;
  gopts.segments = 3;
  gopts.accesses_per_block = 2;
  gopts.callees = 3;
  const Module generated = generate_module(42, gopts);
  Module pruned = generated;
  const PassStats stats = run_instrumentation_pass(pruned, interproc_all());
  ASSERT_TRUE(stats.reconciles());

  SessionOptions opts;
  opts.runtime.tracking_threshold = 1;
  opts.runtime.prediction_enabled = false;
  opts.runtime.set_sampling_rate(1.0);
  opts.heap_size = 4 * 1024 * 1024;
  Session session(opts);
  alignas(64) static std::int64_t buffer[1024];
  std::memset(buffer, 0, sizeof buffer);
  session.register_global(buffer, sizeof buffer, "shared_buffer");

  std::atomic<std::uint64_t> delivered{0};
  auto worker = [&](ThreadId tid) {
    Interpreter interp(&session);
    const std::int64_t args[] = {
        static_cast<std::int64_t>(reinterpret_cast<std::intptr_t>(buffer)),
        11};
    std::uint64_t local = 0;
    for (int round = 0; round < 2; ++round) {
      for (std::size_t f = 0; f < generated.functions.size(); ++f) {
        const auto res = interp.run(pruned, pruned.functions[f], args, tid);
        EXPECT_FALSE(res.step_limit_exceeded);
        local += res.accesses_delivered;
      }
    }
    delivered.fetch_add(local, std::memory_order_relaxed);
  };
  std::thread t0(worker, 0);
  std::thread t1(worker, 1);
  t0.join();
  t1.join();
  EXPECT_GT(delivered.load(), 0u);
  (void)session.report();
}

// ---------------------------------------------------------------------------
// Repaired-module differential fuzz (src/repair/ IR rewrite backend)
// ---------------------------------------------------------------------------

/// False-sharing findings attributed to g_buffer with nonzero impact.
std::size_t fs_findings_on_buffer(const Report& report) {
  std::size_t n = 0;
  for (const ObjectFinding& f : report.findings) {
    if (f.is_false_sharing() && f.impact() > 0 &&
        f.object.name == "gen_buffer") {
      ++n;
    }
  }
  return n;
}

TEST(RepairedModuleFuzz, RewriteKeepsResultsAndRemovesPlantedFindings) {
  // Generated modules with a planted packed-slot region, repaired by
  // apply_repair_rewrite before instrumentation. Two properties per seed:
  //
  //   * equivalence — every function (the random mains AND the slot
  //     kernels) returns bit-identical values, delivers the same number of
  //     accesses, and leaves the buffer in the same state (modulo the
  //     intended slot remap) as the packed module;
  //   * repair — running the slot kernels as distinct threads, the packed
  //     module's detector report contains the planted false-sharing finding
  //     and the rewritten module's report contains none.
  GeneratorOptions gopts;
  gopts.segments = 2;
  gopts.accesses_per_block = 2;
  const std::int64_t n = 8;
  std::uint64_t total_retargeted = 0;

  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const std::uint32_t slots = 2 + static_cast<std::uint32_t>(seed % 3);
    const std::uint32_t stride =
        8u * (1u + static_cast<std::uint32_t>(seed % 2));
    gopts.callees = static_cast<std::uint32_t>(seed % 3);
    gopts.planted_slots = slots;
    gopts.planted_stride = stride;
    // The planted region starts above everything the mains (and their
    // callees, with slack) can touch, so the rewrite moves only slot data.
    gopts.planted_base_words = static_cast<std::uint32_t>(n) +
                               gopts.max_offset_words + kCalleeSlackWords;
    gopts.planted_iters = 6;
    const Module generated = generate_module(seed * 0x9e3779b9ull, gopts);
    const std::size_t num_fns = generated.functions.size();
    const std::size_t base_w = gopts.planted_base_words;
    const std::size_t slot_words = stride / 8;

    Module packed = generated;
    Module padded = generated;
    RepairLayout layout;
    layout.base_arg = 0;
    layout.region_offset = static_cast<std::int64_t>(8 * base_w);
    layout.extent = std::uint64_t{slots} * stride;
    layout.slot_stride = stride;
    layout.pad_to = 64;
    const RepairRewriteStats rs = apply_repair_rewrite(padded, layout);
    ASSERT_GT(rs.retargeted, 0u) << "seed " << seed;
    total_retargeted += rs.retargeted;

    run_instrumentation_pass(packed, {});
    run_instrumentation_pass(padded, {});

    // Equivalence: single-threaded, uninstrumented-session sweep over every
    // original function in both modules.
    const std::int64_t args[] = {
        static_cast<std::int64_t>(reinterpret_cast<std::intptr_t>(g_buffer)),
        n};
    auto sweep = [&](const Module& m, std::vector<std::int64_t>* rets,
                     std::uint64_t* delivered) {
      std::memset(g_buffer, 0, sizeof g_buffer);
      Interpreter interp(nullptr);
      for (std::size_t f = 0; f < num_fns; ++f) {
        const auto res = interp.run(m, m.functions[f], args, 0);
        EXPECT_FALSE(res.step_limit_exceeded) << "seed " << seed;
        rets->push_back(res.return_value);
        *delivered += res.accesses_delivered;
      }
      return std::vector<std::int64_t>(g_buffer, g_buffer + 1024);
    };
    std::vector<std::int64_t> packed_rets;
    std::vector<std::int64_t> padded_rets;
    std::uint64_t packed_delivered = 0;
    std::uint64_t padded_delivered = 0;
    const auto packed_mem = sweep(packed, &packed_rets, &packed_delivered);
    const auto padded_mem = sweep(padded, &padded_rets, &padded_delivered);

    EXPECT_EQ(packed_rets, padded_rets) << "seed " << seed;
    EXPECT_EQ(packed_delivered, padded_delivered) << "seed " << seed;
    for (std::size_t w = 0; w < base_w; ++w) {
      ASSERT_EQ(padded_mem[w], packed_mem[w]) << "seed " << seed
                                              << " word " << w;
    }
    for (std::uint32_t t = 0; t < slots; ++t) {
      for (std::size_t w = 0; w < slot_words; ++w) {
        ASSERT_EQ(padded_mem[base_w + t * 8 + w],
                  packed_mem[base_w + t * slot_words + w])
            << "seed " << seed << " slot " << t << " word " << w;
      }
    }

    // Repair: run the slot kernels as distinct threads under a fully
    // deterministic detector; only the packed layout may report.
    auto detect = [&](const Module& m) {
      SessionOptions opts;
      opts.runtime.tracking_threshold = 1;
      opts.runtime.report_invalidation_threshold = 1;
      opts.runtime.prediction_enabled = false;
      opts.runtime.set_sampling_rate(1.0);
      opts.heap_size = 4 * 1024 * 1024;
      Session session(opts);
      std::memset(g_buffer, 0, sizeof g_buffer);
      session.register_global(g_buffer, sizeof g_buffer, "gen_buffer");
      Interpreter interp(&session);
      for (int round = 0; round < 3; ++round) {
        for (std::uint32_t t = 0; t < slots; ++t) {
          const std::string want = "slot" + std::to_string(t);
          const Function* fn = nullptr;
          for (std::size_t f = 0; f < num_fns; ++f) {
            if (m.functions[f].name == want) fn = &m.functions[f];
          }
          EXPECT_NE(fn, nullptr) << "seed " << seed;
          const auto res = interp.run(m, *fn, args, static_cast<ThreadId>(t));
          EXPECT_FALSE(res.step_limit_exceeded) << "seed " << seed;
        }
      }
      return session.report();
    };
    EXPECT_GT(fs_findings_on_buffer(detect(packed)), 0u) << "seed " << seed;
    EXPECT_EQ(fs_findings_on_buffer(detect(padded)), 0u) << "seed " << seed;
  }
  EXPECT_GT(total_retargeted, 100u);  // the sweep exercised the rewrite
}

}  // namespace
}  // namespace pred::ir
