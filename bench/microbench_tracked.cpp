// Tracked-path ablation: sampled-access throughput on ONE hot (escalated)
// cache line — the contention worst case. The bench drives
// CacheTracker::handle_access directly (no region lookup, no pre-threshold
// layers — microbench_fastpath owns those) so the measurement isolates
// exactly the code the tentpole rebuilt: sampling decision, sampled
// counters, word histogram, two-entry history table.
//
//   spin      lock_free_tracker=0   per-line spinlock + global sample clock
//   lockfree  lock_free_tracker=1   striped clocks + CAS history (default)
//
// Workload: T threads, each writing its own word of the same line (classic
// false sharing — every sampled write by a new thread invalidates), full
// sampling so every access takes the detail path. Reported as accesses/sec
// per thread count for both modes; `speedup_tN` = lockfree / spin.
//
// Usage: microbench_tracked [writes_per_thread] [--json FILE]
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "runtime/cache_tracker.hpp"

namespace {

constexpr std::uint32_t kThreadCounts[] = {1, 2, 4, 8, 16};
constexpr pred::LineGeometry kGeo{};  // 64-byte line, 8-byte words
constexpr pred::Address kLineBase = 0;

// The runtime passes the sampling window/interval from RuntimeConfig, so
// the spin reference's `n % interval` is a genuine hardware divide there.
// Source the bench's values through a volatile so the compiler cannot
// strength-reduce the modulo into multiply tricks and flatter the baseline.
volatile std::uint64_t g_window = 1'000'000;
volatile std::uint64_t g_interval = 1'000'000;

double run_mode(bool lock_free, std::uint32_t nthreads,
                std::uint64_t writes_per_thread) {
  pred::CacheTracker tracker(0, kGeo, lock_free);
  // window == interval: full sampling, every access walks the detail path.
  const std::uint64_t window = g_window;
  const std::uint64_t interval = g_interval;

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::uint32_t t = 0; t < nthreads; ++t) {
    threads.emplace_back([&tracker, t, writes_per_thread, window, interval] {
      const pred::Address word = kLineBase + (t % 8) * 8;
      for (std::uint64_t i = 0; i < writes_per_thread; ++i) {
        tracker.handle_access(word, pred::AccessType::kWrite, t, window,
                              interval);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto end = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(end - start).count();

  // Sanity: the books must balance whatever the interleaving.
  const std::uint64_t total =
      static_cast<std::uint64_t>(nthreads) * writes_per_thread;
  if (tracker.sampled_accesses() != total ||
      tracker.sampled_writes() != total) {
    std::fprintf(stderr, "conservation violated: %" PRIu64 " sampled of %"
                 PRIu64 "\n", tracker.sampled_accesses(), total);
    std::exit(1);
  }
  return static_cast<double>(total) / secs;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t writes = 250'000;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      writes = std::strtoull(argv[i], nullptr, 10);
      if (writes == 0) {
        std::fprintf(stderr,
                     "usage: %s [writes_per_thread > 0] [--json FILE]\n",
                     argv[0]);
        return 1;
      }
    }
  }

  std::printf("tracked-path ablation: one hot line, fully sampled, %" PRIu64
              " writes/thread\n\n",
              writes);
  std::printf("%8s %18s %18s %9s\n", "threads", "spin aps", "lockfree aps",
              "speedup");

  pred::bench::JsonWriter json;
  for (std::uint32_t t : kThreadCounts) {
    // Warm-up pass, then the measured pass, per mode.
    run_mode(false, t, writes / 8);
    const double spin = run_mode(false, t, writes);
    run_mode(true, t, writes / 8);
    const double lf = run_mode(true, t, writes);
    const double speedup = lf / spin;
    std::printf("%8u %18.0f %18.0f %8.2fx\n", t, spin, lf, speedup);
    char key[32];
    std::snprintf(key, sizeof(key), "spin_t%u_aps", t);
    json.add(key, spin);
    std::snprintf(key, sizeof(key), "lockfree_t%u_aps", t);
    json.add(key, lf);
    std::snprintf(key, sizeof(key), "speedup_t%u", t);
    json.add(key, speedup);
  }
  if (!json_path.empty()) {
    if (!json.write_file(json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "json: %s\n", json_path.c_str());
  }
  return 0;
}
