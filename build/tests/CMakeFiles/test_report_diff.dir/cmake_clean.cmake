file(REMOVE_RECURSE
  "CMakeFiles/test_report_diff.dir/test_report_diff.cpp.o"
  "CMakeFiles/test_report_diff.dir/test_report_diff.cpp.o.d"
  "test_report_diff"
  "test_report_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_report_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
