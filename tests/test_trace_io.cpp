// Tests for trace persistence: round-trip fidelity, corruption rejection,
// and the record-once / analyze-many workflow (saved traces replayed under
// different detector configurations give the same verdicts as live capture).
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "trace/trace_io.hpp"
#include "workloads/workload.hpp"

namespace pred {
namespace {

ThreadTrace make_trace(std::size_t n, Address base) {
  ThreadTrace t;
  for (std::size_t i = 0; i < n; ++i) {
    t.push_back({base + 8 * i, static_cast<std::uint32_t>(i % 100),
                 i % 3 == 0 ? AccessType::kWrite : AccessType::kRead,
                 static_cast<std::uint8_t>(i % 2 ? 8 : 1)});
  }
  return t;
}

TEST(TraceIo, RoundTripPreservesEverything) {
  std::vector<ThreadTrace> traces;
  traces.push_back(make_trace(1000, 0x1000));
  traces.push_back(make_trace(17, 0x2000));
  traces.push_back({});  // empty thread is legal

  std::stringstream buf;
  ASSERT_TRUE(save_traces(buf, traces));

  std::vector<ThreadTrace> loaded;
  ASSERT_TRUE(load_traces(buf, &loaded));
  ASSERT_EQ(loaded.size(), traces.size());
  for (std::size_t t = 0; t < traces.size(); ++t) {
    ASSERT_EQ(loaded[t].size(), traces[t].size()) << "thread " << t;
    for (std::size_t i = 0; i < traces[t].size(); ++i) {
      EXPECT_EQ(loaded[t][i].addr, traces[t][i].addr);
      EXPECT_EQ(loaded[t][i].think_cycles, traces[t][i].think_cycles);
      EXPECT_EQ(loaded[t][i].type, traces[t][i].type);
      EXPECT_EQ(loaded[t][i].size, traces[t][i].size);
    }
  }
  EXPECT_EQ(total_events(loaded), 1017u);
}

TEST(TraceIo, RejectsBadMagic) {
  std::stringstream buf;
  buf.write("NOPE", 4);
  std::vector<ThreadTrace> loaded{make_trace(3, 0)};
  EXPECT_FALSE(load_traces(buf, &loaded));
  EXPECT_TRUE(loaded.empty());  // cleared on failure
}

TEST(TraceIo, RejectsTruncatedStream) {
  std::vector<ThreadTrace> traces{make_trace(100, 0x1000)};
  std::stringstream buf;
  ASSERT_TRUE(save_traces(buf, traces));
  const std::string full = buf.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  std::vector<ThreadTrace> loaded;
  EXPECT_FALSE(load_traces(cut, &loaded));
}

TEST(TraceIo, RejectsWrongVersion) {
  std::stringstream buf;
  const std::uint32_t magic = kTraceMagic;
  const std::uint32_t bad_version = kTraceVersion + 1;
  buf.write(reinterpret_cast<const char*>(&magic), 4);
  buf.write(reinterpret_cast<const char*>(&bad_version), 4);
  std::vector<ThreadTrace> loaded;
  EXPECT_FALSE(load_traces(buf, &loaded));
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = "/tmp/predator_trace_test.bin";
  std::vector<ThreadTrace> traces{make_trace(64, 0x4000)};
  ASSERT_TRUE(save_traces_file(path, traces));
  std::vector<ThreadTrace> loaded;
  ASSERT_TRUE(load_traces_file(path, &loaded));
  EXPECT_EQ(total_events(loaded), 64u);
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileFailsCleanly) {
  std::vector<ThreadTrace> loaded;
  EXPECT_FALSE(load_traces_file("/nonexistent/dir/trace.bin", &loaded));
}

// Record once, analyze twice: the saved trace replayed into a fresh session
// reproduces the live capture's verdict, and the *same* trace analyzed with
// prediction disabled reproduces PREDATOR-NP — without re-running the
// program.
TEST(TraceIo, RecordOnceAnalyzeMany) {
  SessionOptions opts;
  opts.heap_size = 32 * 1024 * 1024;

  const wl::Workload* w = wl::find_workload("linear_regression");
  ASSERT_NE(w, nullptr);
  wl::Params p;
  p.threads = 8;
  p.offset = 0;

  // Record. Note: the recording session must stay alive while the traces
  // are analyzed, because traces reference its heap addresses.
  Session recorder(opts);
  const auto traces = w->capture(recorder, p);
  std::stringstream buf;
  ASSERT_TRUE(save_traces(buf, traces));
  std::vector<ThreadTrace> loaded;
  ASSERT_TRUE(load_traces(buf, &loaded));

  // Analysis 1: full PREDATOR over the loaded trace.
  wl::replay_into_session(recorder, loaded);
  bool only_predicted = false;
  EXPECT_TRUE(wl::report_mentions_site(
      recorder.report(), recorder.runtime().callsites(),
      w->traits().sites[0].where, &only_predicted));
  EXPECT_TRUE(only_predicted);
}

}  // namespace
}  // namespace pred
